* extracted folded-cascode OTA (case4)
MP5 tail vp1 vdd vdd pmos W=471.6u L=2u NF=12 AD=424.44p AS=455.88p PD=21.6u PS=101.8u M=1
MP1 x1 inp tail tail pmos W=253.2u L=1u NF=12 AD=227.88p AS=246.87p PD=21.6u PS=23.4u M=1
MP2 x2 inn tail tail pmos W=253.2u L=1u NF=12 AD=227.88p AS=246.87p PD=21.6u PS=23.4u M=1
MN5 x1 vbn 0 0 nmos W=76.5u L=1.5u NF=10 AD=68.85p AS=82.62p PD=18u PS=21.6u M=1
MN6 x2 vbn 0 0 nmos W=76.5u L=1.5u NF=10 AD=68.85p AS=82.62p PD=18u PS=21.6u M=1
MN1C y1 vc1 x1 0 nmos W=33.4u L=800n NF=4 AD=30.06p AS=36.74p PD=7.2u PS=25.5u M=1
MN2C out vc1 x2 0 nmos W=33.4u L=800n NF=4 AD=30.06p AS=36.74p PD=7.2u PS=25.5u M=1
MP3 z1 y1 vdd vdd pmos W=105u L=1.5u NF=4 AD=94.5p AS=115.5p PD=7.2u PS=61.3u M=1
MP4 z2 y1 vdd vdd pmos W=105u L=1.5u NF=4 AD=94.5p AS=115.5p PD=7.2u PS=61.3u M=1
MP3C y1 vc3 z1 vdd pmos W=73.8u L=800n NF=2 AD=66.42p AS=95.94p PD=3.6u PS=79u M=1
MP4C out vc3 z2 vdd pmos W=73.8u L=800n NF=2 AD=66.42p AS=95.94p PD=3.6u PS=79u M=1
CL out 0 3p
CPAR_out out 0 73.1532f
CCPL_out_tail out tail 1.53638f
CCPL_out_x2 out x2 3.63985f
CCPL_out_y1 out y1 6.69402f
CCPL_out_z1 out z1 1.04164f
CCPL_out_z2 out z2 8.96364e-16
CPAR_tail tail 0 363.026f
CCPL_tail_x1 tail x1 1.30369f
CCPL_tail_x2 tail x2 4.13873f
CCPL_tail_z1 tail z1 4.97636e-16
CCPL_tail_z2 tail z2 4.97636e-16
CPAR_vc1 vc1 0 18.2148f
CPAR_vc3 vc3 0 17.8756f
CCPL_vc3_y1 vc3 y1 4.32727f
CPAR_x1 x1 0 78.5166f
CCPL_x1_x2 x1 x2 14.9313f
CCPL_x1_y1 x1 y1 1.91648f
CPAR_x2 x2 0 83.3363f
CCPL_x2_y1 x2 y1 6.63532f
CCPL_x2_z1 x2 z1 3.58062e-16
CCPL_x2_z2 x2 z2 5.7375e-17
CPAR_y1 y1 0 54.1603f
CCPL_y1_z1 y1 z1 1.45273e-16
CPAR_z1 z1 0 23.0168f
CPAR_z2 z2 0 22.8638f
VDD vdd 0 DC 3.3
VP1 vp1 0 DC 2.19972
VBN vbn 0 DC 1.06968
VC1 vc1 0 DC 1.51759
VC3 vc3 0 DC 1.67226
.end
