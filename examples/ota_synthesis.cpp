// Full OTA synthesis with options: the command-line face of the engine.
//
//   $ ./ota_synthesis [--case 1..4] [--model level1|ekv] [--gbw MHz]
//                     [--pm deg] [--cl pF] [--aspect ratio] [--mc N]
//
// Prints the complete Table-1-style report (synthesised vs extracted
// simulation), the convergence history, the extracted netlist, and, with
// --mc N, a Monte-Carlo mismatch analysis.  Writes ota_<case>.svg/.cif and
// ota_<case>.sp under examples/out/.
#include <cstdio>
#include <cstring>
#include <string>

#include "circuit/spice_io.hpp"
#include "core/engine.hpp"
#include "core/ota_topology.hpp"
#include "layout/writers.hpp"
#include "sizing/montecarlo.hpp"
#include "sizing/ota_sizer.hpp"

int main(int argc, char** argv) {
  using namespace lo;
  using namespace lo::core;

  EngineOptions options;
  layout::OtaLayoutOptions layoutOptions;
  sizing::OtaSpecs specs;
  int mcSamples = 0;
  bool withBias = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--bias") {
      withBias = true;
      options.includeBiasGenerator = true;  // Draw it in the layout too.
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string key = argv[i];
    const std::string val = argv[i + 1];
    if (key == "--case") {
      options.sizingCase = static_cast<SizingCase>(std::stoi(val) - 1);
    } else if (key == "--model") {
      options.modelName = val;
    } else if (key == "--gbw") {
      specs.gbw = std::stod(val) * 1e6;
    } else if (key == "--pm") {
      specs.phaseMarginDeg = std::stod(val);
    } else if (key == "--cl") {
      specs.cload = std::stod(val) * 1e-12;
    } else if (key == "--aspect") {
      layoutOptions.shape = layout::ShapeConstraint{};
      layoutOptions.shape.aspectRatio = std::stod(val);
    } else if (key == "--mc") {
      mcSamples = std::stoi(val);
    } else {
      std::fprintf(stderr, "unknown option %s\n", key.c_str());
      return 1;
    }
  }

  const tech::Technology tech = tech::Technology::generic060();
  const SynthesisEngine engine(tech, options);
  FoldedCascodeOtaTopology topology(tech, engine.model(), layoutOptions);
  const EngineResult r = engine.run(topology, specs);
  const char* caseName = sizingCaseName(options.sizingCase);

  std::printf("=== layout-oriented synthesis, %s, model %s ===\n", caseName,
              options.modelName.c_str());
  std::printf("specs: GBW %.1f MHz, PM %.0f deg, CL %.1f pF, VDD %.1f V\n",
              specs.gbw / 1e6, specs.phaseMarginDeg, specs.cload * 1e12, specs.vdd);

  if (!r.iterations.empty()) {
    std::printf("\nsizing <-> layout convergence (%d calls):\n", r.layoutCalls);
    for (const EngineIteration& it : r.iterations) {
      std::printf("  call %d:", it.layoutCall);
      for (std::size_t n = 0; n < r.criticalNets.size(); ++n) {
        std::printf("  C(%s)=%.1f fF", r.criticalNets[n].c_str(),
                    it.netCaps[n] * 1e15);
      }
      std::printf("  Itail=%.0f uA\n", it.primaryCurrent * 1e6);
    }
  }

  std::printf("\n%-24s %12s %12s\n", "specification", "synthesised", "simulated");
  auto row = [](const char* name, double a, double b) {
    std::printf("%-24s %12.2f %12.2f\n", name, a, b);
  };
  row("DC gain (dB)", r.predicted.dcGainDb, r.measured.dcGainDb);
  row("GBW (MHz)", r.predicted.gbwHz / 1e6, r.measured.gbwHz / 1e6);
  row("Phase margin (deg)", r.predicted.phaseMarginDeg, r.measured.phaseMarginDeg);
  row("Slew rate (V/us)", r.predicted.slewRateVPerUs, r.measured.slewRateVPerUs);
  row("CMRR (dB)", r.predicted.cmrrDb, r.measured.cmrrDb);
  row("Offset (mV)", r.predicted.offsetMv, r.measured.offsetMv);
  row("Rout (MOhm)", r.predicted.outputResistanceMOhm, r.measured.outputResistanceMOhm);
  row("Input noise (uV)", r.predicted.inputNoiseUv, r.measured.inputNoiseUv);
  row("Thermal (nV/rtHz)", r.predicted.thermalNoiseDensityNv,
      r.measured.thermalNoiseDensityNv);
  row("Flicker (uV/rtHz)", r.predicted.flickerNoiseUv, r.measured.flickerNoiseUv);
  row("Power (mW)", r.predicted.powerMw, r.measured.powerMw);
  row("PSRR (dB, ext)", r.predicted.psrrDb, r.measured.psrrDb);
  row("Settling 1% (ns, ext)", r.predicted.settlingTimeNs, r.measured.settlingTimeNs);

  const layout::OtaLayoutResult& lay = topology.layout();
  const circuit::FoldedCascodeOtaDesign& extracted = topology.extractedDesign();

  if (mcSamples > 0) {
    sizing::MonteCarloOptions mc;
    mc.samples = mcSamples;
    const auto stats = sizing::runMonteCarlo(tech, engine.model(), extracted,
                                             &lay.parasitics, mc);
    std::printf("\nMonte Carlo (%d samples, %d failed):\n", stats.samples,
                stats.failures);
    std::printf("  offset: %.3f mV mean, %.3f mV sigma\n", stats.offsetMeanMv,
                stats.offsetSigmaMv);
    std::printf("  gain:   %.2f dB mean, %.3f dB sigma\n", stats.gainMeanDb,
                stats.gainSigmaDb);
  }

  if (withBias) {
    std::printf("\n(the simulated column above already uses the drawn bias "
                "generator, Iref %.1f uA)\n",
                topology.bias().biasCurrent * 1e6);
  }

  // Artifacts: layout views and the extracted netlist.
  const std::string base = layout::outputPath(std::string("ota_") + caseName);
  layout::writeFile(base + ".svg", layout::toSvg(lay.cell.shapes));
  layout::writeFile(base + ".cif", layout::toCif(lay.cell.shapes, "OTA"));
  layout::writeFile(base + ".gds", layout::toGds(lay.cell.shapes, "OTA"));
  {
    circuit::Circuit netlist;
    netlist.title = "extracted folded-cascode OTA (" + std::string(caseName) + ")";
    circuit::instantiateOta(netlist, extracted);
    layout::annotateCircuit(netlist, lay.parasitics);
    layout::writeFile(base + ".sp", circuit::writeNetlist(netlist));
  }
  std::printf("\nwrote %s.svg / .cif / .gds / .sp (layout %.1f x %.1f um)\n",
              base.c_str(), lay.width / 1e3, lay.height / 1e3);
  return 0;
}
