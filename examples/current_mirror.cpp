// Matched current-mirror layout (the paper's Fig. 3 scenario).
//
// Demonstrates the stack generator directly: a 1:2:4 NMOS mirror is planned
// as one diffusion row with symmetric placement, balanced current
// directions, shared source strips and end dummies; the drain trunks are
// routed with electromigration-sized wires; the result is DRC-checked and
// written as SVG and CIF.
//
//   $ ./current_mirror [ratio2 ratio3]
#include <cstdio>
#include <cstdlib>

#include "layout/drc.hpp"
#include "layout/router.hpp"
#include "layout/stack.hpp"
#include "layout/writers.hpp"

int main(int argc, char** argv) {
  using namespace lo;
  using namespace lo::layout;

  const int r2 = argc > 1 ? std::atoi(argv[1]) : 2;
  const int r3 = argc > 2 ? std::atoi(argv[2]) : 4;
  const tech::Technology tech = tech::Technology::generic060();

  StackSpec spec;
  spec.name = "mirror";
  spec.type = tech::MosType::kNmos;
  spec.unitWidth = 6e-6;
  spec.drawnL = 1.2e-6;
  spec.sourceNet = "gnd";
  spec.dummyGateNet = "gnd";
  const double unitI = 0.25e-3;
  spec.devices = {{"M1", 2, "d1", "bias", 2 * unitI},
                  {"M2", 2 * r2, "d2", "bias", 2 * r2 * unitI},
                  {"M3", 2 * r3, "d3", "bias", 2 * r3 * unitI}};
  spec.emitWellAndSelect = true;

  StackInfo info;
  Cell cell = generateStack(tech, spec, &info);

  std::printf("current mirror 1:%d:%d, %zu fingers (%d dummies)\n", r2, r3,
              info.plan.fingers.size(), info.plan.dummyCount);
  for (std::size_t d = 0; d < spec.devices.size(); ++d) {
    const StackDeviceMetrics& m = info.plan.metrics[d];
    std::printf("  %-3s centroid offset %.2f, orientation imbalance %d, "
                "AD %.1f um^2 (vs %.1f standalone)\n",
                spec.devices[d].name.c_str(), m.centroidOffset, m.orientationImbalance,
                m.junctions.ad * 1e12,
                spec.devices[d].fingers * spec.unitWidth *
                    (tech.rules.contactedDiffusionExtent() * 1e-9) * 1e12);
  }

  // Route drains and the common source with EM-sized trunks.
  const geom::Rect box = cell.bbox();
  const std::vector<Channel> channels = {
      {box.y0 - 30000, box.y0 - tech.rules.metal1Spacing},
      {box.y1 + tech.rules.metal1Spacing, box.y1 + 30000}};
  const RoutingResult routing =
      routeCell(tech, cell,
                {{"d1", 2 * unitI},
                 {"d2", 2 * r2 * unitI},
                 {"d3", 2 * r3 * unitI},
                 {"gnd", 2 * (1 + r2 + r3) * unitI},
                 {"bias", 0.0}},
                channels, true);
  cell.shapes.merge(routing.wires, geom::Orient::kR0, 0, 0);

  const auto violations = runDrc(tech, cell.shapes);
  std::printf("DRC: %zu violations\n", violations.size());
  if (!violations.empty()) std::printf("%s", formatViolations(violations).c_str());

  writeFile(outputPath("current_mirror.svg"), toSvg(cell.shapes));
  writeFile(outputPath("current_mirror.cif"), toCif(cell.shapes, "MIRROR"));
  std::printf("wrote %s / .cif (%.1f x %.1f um)\n",
              outputPath("current_mirror.svg").c_str(),
              cell.bbox().width() / 1e3, cell.bbox().height() / 1e3);
  return violations.empty() ? 0 : 1;
}
