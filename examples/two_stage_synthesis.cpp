// Two-stage Miller OTA synthesis -- the library's second topology, through
// the same topology-generic engine (the paper's "hierarchy simplifies the
// addition of new topologies" claim in action).
//
//   $ ./two_stage_synthesis [--gbw MHz] [--case 1..4]
//
// Writes two_stage.svg/.gds and the extracted netlist two_stage.sp under examples/out/.
#include <cstdio>
#include <string>

#include "circuit/spice_io.hpp"
#include "core/engine.hpp"
#include "core/two_stage_topology.hpp"
#include "layout/writers.hpp"
#include "sim/op_report.hpp"
#include "sizing/verify.hpp"

int main(int argc, char** argv) {
  using namespace lo;
  using namespace lo::core;

  EngineOptions options;
  options.topology = kTwoStageTopologyName;
  sizing::OtaSpecs specs;
  specs.gbw = 30e6;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string key = argv[i];
    if (key == "--gbw") {
      specs.gbw = std::stod(argv[i + 1]) * 1e6;
    } else if (key == "--case") {
      options.sizingCase = static_cast<SizingCase>(std::stoi(argv[i + 1]) - 1);
    } else {
      std::fprintf(stderr, "unknown option %s\n", key.c_str());
      return 1;
    }
  }

  const tech::Technology tech = tech::Technology::generic060();
  const SynthesisEngine engine(tech, options);
  TwoStageTopology topology(tech, engine.model());
  const EngineResult r = engine.run(topology, specs);
  const circuit::TwoStageOtaDesign& design = topology.sizingResult().design;
  const layout::TwoStageLayoutResult& lay = topology.layout();

  std::printf("=== two-stage Miller OTA, %s ===\n", sizingCaseName(options.sizingCase));
  std::printf("Itail %.0f uA, stage-2 %.0f uA, Cc %.2f pF, Rz %.0f ohm, "
              "%d layout calls\n",
              design.tailCurrent * 1e6, design.stage2Current * 1e6, design.cc * 1e12,
              design.rz, r.layoutCalls);

  std::printf("\n%-24s %12s %12s\n", "specification", "synthesised", "simulated");
  auto row = [](const char* name, double a, double b) {
    std::printf("%-24s %12.2f %12.2f\n", name, a, b);
  };
  row("DC gain (dB)", r.predicted.dcGainDb, r.measured.dcGainDb);
  row("GBW (MHz)", r.predicted.gbwHz / 1e6, r.measured.gbwHz / 1e6);
  row("Phase margin (deg)", r.predicted.phaseMarginDeg, r.measured.phaseMarginDeg);
  row("Slew rate (V/us)", r.predicted.slewRateVPerUs, r.measured.slewRateVPerUs);
  row("Power (mW)", r.predicted.powerMw, r.measured.powerMw);
  row("Offset (mV)", r.predicted.offsetMv, r.measured.offsetMv);

  // Operating-point report of the extracted design.
  {
    const circuit::Circuit tb = sizing::buildAmpAcTestbench(
        [&](circuit::Circuit& c) {
          circuit::instantiateTwoStage(c, topology.extractedDesign());
        },
        topology.extractedDesign().inputCm, &lay.parasitics, 1.0, 0.0, 0.0);
    sim::Simulator sim(tb, tech, engine.model());
    std::printf("\n%s", sim::opReport(tb, sim.dcOperatingPoint()).c_str());
  }

  const std::string base = layout::outputPath("two_stage");
  layout::writeFile(base + ".svg", layout::toSvg(lay.cell.shapes));
  layout::writeFile(base + ".gds", layout::toGds(lay.cell.shapes, "TWOSTAGE"));
  {
    circuit::Circuit netlist;
    netlist.title = "extracted two-stage Miller OTA";
    circuit::instantiateTwoStage(netlist, topology.extractedDesign());
    layout::annotateCircuit(netlist, lay.parasitics);
    layout::writeFile(base + ".sp", circuit::writeNetlist(netlist));
  }
  std::printf("\nwrote %s.svg / .gds / .sp (layout %.1f x %.1f um)\n",
              base.c_str(), lay.width / 1e3, lay.height / 1e3);
  return 0;
}
