// Switched-capacitor integrator built from the synthesised OTA -- the
// paper's stated future work ("synthesis of larger systems as switched
// capacitor filters ... using the same methodology", section 6).
//
// A parasitic-insensitive non-inverting SC integrator: during phase 1 the
// sampling capacitor Cs charges to (Vin - VCM); during phase 2 it is flipped
// into the virtual ground, dumping its charge into the feedback capacitor
// Cf.  With a DC input the output walks by +(Cs/Cf)(Vin - VCM) every clock
// period.  The OTA has no DC feedback here, so the staircase starts from
// the amplifier's open-loop equilibrium and integrates from there.
//
//   $ ./sc_integrator
#include <cmath>
#include <cstdio>

#include "core/flow.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace lo;
  using circuit::Waveform;

  const tech::Technology tech = tech::Technology::generic060();

  // Synthesise the OTA first (case 4, the full methodology).
  core::FlowOptions options;
  options.sizingCase = core::SizingCase::kCase4;
  core::SynthesisFlow flow(tech, options);
  const core::FlowResult ota = flow.run(sizing::OtaSpecs{});
  std::printf("OTA ready: %.1f dB, %.1f MHz GBW\n", ota.measured.dcGainDb,
              ota.measured.gbwHz / 1e6);

  // --- Build the integrator around the extracted OTA. ---
  circuit::Circuit c;
  c.title = "switched-capacitor integrator";
  circuit::FoldedCascodeOtaDesign d = ota.extractedDesign;
  d.cload = 1e-12;  // The integrator provides its own loading.
  const circuit::OtaNodes nodes = circuit::instantiateOta(c, d);

  const double vcm = d.inputCm;
  const double vin = vcm - 0.10;  // 100 mV below the reference: the
                                  // non-inverting integrator steps downward.
  const double cs = 1e-12, cf = 4e-12;
  const double period = 500e-9;

  const auto nIn = c.node("vin"), nCm = c.node("vcm");
  const auto csl = c.node("csl"), csr = c.node("csr");
  const auto ph1 = c.node("ph1"), ph2 = c.node("ph2");

  c.addVSource("VIN", nIn, circuit::kGround, Waveform::makeDc(vin));
  c.addVSource("VCMR", nCm, circuit::kGround, Waveform::makeDc(vcm));
  c.addVSource("PH1", ph1, circuit::kGround,
               Waveform::makePulse(0, 3.3, 10e-9, 2e-9, 2e-9, 0.44 * period, period));
  c.addVSource("PH2", ph2, circuit::kGround,
               Waveform::makePulse(0, 3.3, 10e-9 + period / 2, 2e-9, 2e-9,
                                   0.44 * period, period));

  c.addCapacitor("CS", csl, csr, cs);
  c.addCapacitor("CF", nodes.inn, nodes.out, cf);
  c.addResistor("RLEAK", nodes.inn, nCm, 1e9);  // DC definition of the virtual node.

  // Four NMOS switches (phase 1: sample; phase 2: transfer).
  device::MosGeometry sw;
  sw.w = 10e-6;
  sw.l = 0.6e-6;
  device::applyUnfoldedGeometry(tech.rules, sw);
  c.addMos("S1", nIn, ph1, csl, circuit::kGround, tech::MosType::kNmos, sw);
  c.addMos("S2", csr, ph1, nCm, circuit::kGround, tech::MosType::kNmos, sw);
  c.addMos("S3", csl, ph2, nCm, circuit::kGround, tech::MosType::kNmos, sw);
  c.addMos("S4", csr, ph2, nodes.inn, circuit::kGround, tech::MosType::kNmos, sw);

  // The OTA's positive input sits at the reference.
  c.addVSource("VINP", nodes.inp, circuit::kGround, Waveform::makeDc(vcm));

  // --- Transient: 8 clock periods. ---
  const auto model = device::MosModel::create("ekv");
  sim::Simulator sim(c, tech, *model);
  const double tStop = 8.5 * period;
  std::printf("running transient (%.1f us, this takes a moment)...\n", tStop * 1e6);
  const auto tran = sim.transient(tStop, 1e-9);

  // Sample the output at the end of each phase-1 window (out settled).
  std::printf("\n%8s %10s %10s\n", "period", "V(out)", "step [mV]");
  const double expectedStep = cs / cf * (vin - vcm);
  double prev = 0.0;
  double stepSum = 0.0;
  int steps = 0;
  for (int k = 0; k < 8; ++k) {  // Average from period 2 on (settled region).
    const double tSample = 10e-9 + k * period + 0.40 * period;
    double vout = 0.0;
    for (const sim::TranPoint& p : tran) {
      if (p.time <= tSample) vout = p.nodeV[nodes.out];
    }
    std::printf("%8d %10.4f %10.2f\n", k, vout, k ? (vout - prev) * 1e3 : 0.0);
    if (k >= 2) {
      stepSum += vout - prev;
      ++steps;
    }
    prev = vout;
  }
  const double meanStep = stepSum / steps;
  // The residual deficit against the ideal step is dominated by the Meyer
  // gate-capacitance model in the transient engine (it is not charge
  // conserving, the classic limitation for switched-capacitor simulation)
  // plus switch charge injection; a Ward-Dutton charge formulation would
  // close the gap.
  std::printf("\nmean step %.2f mV, ideal (Cs/Cf)(Vin-VCM) = %.2f mV (error %.1f%%)\n",
              meanStep * 1e3, expectedStep * 1e3,
              100.0 * std::fabs(meanStep / expectedStep - 1.0));
  return std::fabs(meanStep / expectedStep - 1.0) < 0.25 ? 0 : 1;
}
