// Technology evaluation (paper section 4: "A technology evaluation
// interface allows to easily characterize different technologies and helps
// to choose the most suitable technology").
//
// Sizes the same OTA specification in two processes (the built-in 0.6 um
// and 1.0 um classes), compares the achievable performance and area, and
// demonstrates the technology-file round trip that keeps the generators
// technology independent.
//
//   $ ./tech_eval
#include <cstdio>

#include "core/flow.hpp"
#include "layout/writers.hpp"

namespace {

using namespace lo;

void evaluate(const tech::Technology& tech, const sizing::OtaSpecs& specs) {
  core::FlowOptions options;
  options.sizingCase = core::SizingCase::kCase4;
  core::SynthesisFlow flow(tech, options);
  const core::FlowResult r = flow.run(specs);
  std::printf("%-12s gain %6.1f dB  GBW %6.1f MHz  PM %5.1f deg  power %5.2f mW  "
              "noise %6.1f uV  area %.3f mm^2\n",
              tech.name.c_str(), r.measured.dcGainDb, r.measured.gbwHz / 1e6,
              r.measured.phaseMarginDeg, r.measured.powerMw, r.measured.inputNoiseUv,
              (r.layout.width / 1e6) * (r.layout.height / 1e6));
}

}  // namespace

int main() {
  sizing::OtaSpecs specs;
  specs.gbw = 40e6;  // A target both processes can reach.

  std::printf("=== technology evaluation: same specs, two processes ===\n");
  std::printf("specs: GBW %.0f MHz, PM %.0f deg, CL %.0f pF\n\n", specs.gbw / 1e6,
              specs.phaseMarginDeg, specs.cload * 1e12);

  const tech::Technology t06 = tech::Technology::generic060();
  const tech::Technology t10 = tech::Technology::generic100();
  evaluate(t06, specs);
  evaluate(t10, specs);

  // Technology-file round trip: everything the tools need is plain text.
  const std::string techPath = layout::outputPath("generic060.tech");
  layout::writeFile(techPath, t06.toText());
  const tech::Technology reloaded = tech::Technology::fromFile(techPath);
  std::printf("\nwrote generic060.tech and reloaded it: name=%s, nmos vto=%.2f V, "
              "metal1 min width=%lld nm\n",
              reloaded.name.c_str(), reloaded.nmos.vto,
              static_cast<long long>(reloaded.rules.metal1MinWidth));
  return 0;
}
