// First-order switched-capacitor low-pass filter -- the paper's future work
// ("synthesis of larger systems as switched capacitor filters", section 6),
// built from the synthesised OTA.
//
// A damped (lossy) SC integrator: the input branch Cs1 samples Vin - VCM on
// phase 1 and dumps it into Cf on phase 2; the damping branch Cs2 is
// discharged on phase 1 and placed across the integrator on phase 2,
// draining charge proportional to the output.  In the z-domain this is a
// first-order low-pass with
//     DC gain  = Cs1 / Cs2
//     time constant tau ~= Cf / (fclk * Cs2)
// The example steps the input and checks both numbers against the measured
// staircase.
//
//   $ ./sc_filter
#include <cmath>
#include <cstdio>

#include "core/flow.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace lo;
  using circuit::Waveform;

  const tech::Technology tech = tech::Technology::generic060();
  core::FlowOptions options;
  core::SynthesisFlow flow(tech, options);
  const core::FlowResult ota = flow.run(sizing::OtaSpecs{});
  std::printf("OTA ready: %.1f dB, %.1f MHz GBW\n", ota.measured.dcGainDb,
              ota.measured.gbwHz / 1e6);

  circuit::Circuit c;
  c.title = "switched-capacitor first-order low-pass";
  circuit::FoldedCascodeOtaDesign d = ota.extractedDesign;
  d.cload = 1e-12;
  const circuit::OtaNodes nodes = circuit::instantiateOta(c, d);

  const double vcm = d.inputCm;
  const double step = -0.05;  // 50 mV input step below the reference.
  const double cs1 = 1e-12, cs2 = 0.5e-12, cf = 4e-12;
  const double period = 500e-9;
  const double fclk = 1.0 / period;

  const auto nIn = c.node("vin"), nCm = c.node("vcm");
  const auto s1l = c.node("s1l"), s1r = c.node("s1r");
  const auto s2l = c.node("s2l"), s2r = c.node("s2r");
  const auto ph1 = c.node("ph1"), ph2 = c.node("ph2");

  // The filter starts from the OTA's open-loop equilibrium and first has to
  // settle to the reference (~5 tau of idling) before the step is applied.
  const int idlePeriods = 40;
  c.addVSource("VIN", nIn, circuit::kGround,
               Waveform::makePulse(vcm, vcm + step, idlePeriods * period, 2e-9, 2e-9,
                                   1.0, 2.0));
  c.addVSource("VCMR", nCm, circuit::kGround, Waveform::makeDc(vcm));
  c.addVSource("PH1", ph1, circuit::kGround,
               Waveform::makePulse(0, 3.3, 10e-9, 2e-9, 2e-9, 0.44 * period, period));
  c.addVSource("PH2", ph2, circuit::kGround,
               Waveform::makePulse(0, 3.3, 10e-9 + period / 2, 2e-9, 2e-9,
                                   0.44 * period, period));

  c.addCapacitor("CS1", s1l, s1r, cs1);
  c.addCapacitor("CS2", s2l, s2r, cs2);
  c.addCapacitor("CF", nodes.inn, nodes.out, cf);
  c.addResistor("RLEAK", nodes.inn, nCm, 1e9);
  c.addVSource("VINP", nodes.inp, circuit::kGround, Waveform::makeDc(vcm));

  device::MosGeometry sw;
  sw.w = 10e-6;
  sw.l = 0.6e-6;
  device::applyUnfoldedGeometry(tech.rules, sw);
  auto nmosSwitch = [&](const char* name, circuit::NodeId a, circuit::NodeId gate,
                        circuit::NodeId b) {
    c.addMos(name, a, gate, b, circuit::kGround, tech::MosType::kNmos, sw);
  };
  // Input branch (non-inverting phasing).
  nmosSwitch("S1", nIn, ph1, s1l);
  nmosSwitch("S2", s1r, ph1, nCm);
  nmosSwitch("S3", s1l, ph2, nCm);
  nmosSwitch("S4", s1r, ph2, nodes.inn);
  // Damping branch: discharged on ph1, across the integrator on ph2.
  nmosSwitch("S5", s2l, ph1, nCm);
  nmosSwitch("S6", s2r, ph1, nCm);
  nmosSwitch("S7", s2l, ph2, nodes.inn);
  nmosSwitch("S8", s2r, ph2, nodes.out);

  const auto model = device::MosModel::create("ekv");
  sim::Simulator sim(c, tech, *model);
  const int periods = 40 + 48;  // Idle + six time constants after the step.
  std::printf("running transient (%.1f us)...\n", periods * period * 1e6);
  const auto tran = sim.transient(periods * period, 1e-9);

  // Sample the settled output at the end of each phase-1 window.
  std::printf("\n%8s %10s\n", "period", "V(out)");
  double v0 = 0.0, vInf = 0.0;
  std::vector<double> samples;
  for (int k = 0; k < periods; ++k) {
    const double tSample = 10e-9 + k * period + 0.40 * period;
    double vout = 0.0;
    for (const sim::TranPoint& p : tran) {
      if (p.time <= tSample) vout = p.nodeV[nodes.out];
    }
    samples.push_back(vout);
    if (k % 8 == 0) std::printf("%8d %10.4f\n", k, vout);
  }
  v0 = samples[idlePeriods - 1];  // Rest level just before the step.
  vInf = samples.back();          // Settled level.

  const double gainMeas = (vInf - v0) / step;
  const double gainIdeal = cs1 / cs2;
  // 63% crossing after the step (applied at the end of the idle run).
  const double target = v0 + 0.632 * (vInf - v0);
  double tau = 0.0;
  for (std::size_t k = idlePeriods; k < samples.size(); ++k) {
    const bool crossed = (vInf > v0) ? samples[k] >= target : samples[k] <= target;
    if (crossed) {
      tau = (static_cast<double>(k) - idlePeriods) * period;
      break;
    }
  }
  const double tauIdeal = cf / (fclk * cs2);

  std::printf("\nDC gain: measured %.2f, ideal Cs1/Cs2 = %.2f (error %.1f%%)\n",
              gainMeas, gainIdeal, 100.0 * std::fabs(gainMeas / gainIdeal - 1.0));
  std::printf("time constant: measured %.2f us, ideal Cf/(fclk Cs2) = %.2f us "
              "(error %.1f%%)\n",
              tau * 1e6, tauIdeal * 1e6, 100.0 * std::fabs(tau / tauIdeal - 1.0));
  std::printf("equivalent -3 dB corner: %.1f kHz\n", 1.0 / (2 * M_PI * tauIdeal) / 1e3);

  const bool ok = std::fabs(gainMeas / gainIdeal - 1.0) < 0.3 &&
                  std::fabs(tau / tauIdeal - 1.0) < 0.4;
  return ok ? 0 : 1;
}
