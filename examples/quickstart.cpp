// Quickstart: synthesise a folded-cascode OTA with the layout-oriented flow.
//
// This is the smallest end-to-end use of the library: pick a technology,
// state the electrical specs, run the case-4 flow (sizing with full layout
// feedback), and look at what came out -- sizes, predicted vs simulated
// performance, and the physical layout.
//
//   $ ./quickstart
#include <cstdio>

#include "core/flow.hpp"
#include "layout/writers.hpp"

int main() {
  using namespace lo;

  // 1. Technology: the built-in synthetic 0.6 um CMOS process.  Your own
  //    process would come from tech::Technology::fromFile("my.tech").
  const tech::Technology tech = tech::Technology::generic060();

  // 2. Electrical specifications (the paper's example).
  sizing::OtaSpecs specs;
  specs.vdd = 3.3;
  specs.gbw = 65e6;
  specs.phaseMarginDeg = 65.0;
  specs.cload = 3e-12;

  // 3. Run the layout-oriented synthesis flow: sizing <-> layout parasitic
  //    calls until the parasitics stop changing, then generate + extract +
  //    verify by simulation.
  core::FlowOptions options;
  options.sizingCase = core::SizingCase::kCase4;
  core::SynthesisFlow flow(tech, options);
  const core::FlowResult result = flow.run(specs);

  // 4. Inspect the outcome.
  const auto& d = result.sizing.design;
  std::printf("synthesised in %d layout calls (converged: %s)\n", result.layoutCalls,
              result.parasiticConverged ? "yes" : "no");
  std::printf("tail current %.0f uA, folded-branch current %.0f uA\n",
              d.tailCurrent * 1e6, d.cascodeCurrent * 1e6);
  std::printf("device widths [um]: pair %.1f  tail %.1f  sink %.1f  ncasc %.1f  "
              "psrc %.1f  pcasc %.1f\n",
              d.inputPair.w * 1e6, d.tail.w * 1e6, d.sink.w * 1e6, d.nCascode.w * 1e6,
              d.pSource.w * 1e6, d.pCascode.w * 1e6);

  std::printf("\n%-24s %12s %12s\n", "", "synthesised", "simulated");
  auto row = [](const char* name, double a, double b) {
    std::printf("%-24s %12.2f %12.2f\n", name, a, b);
  };
  row("DC gain (dB)", result.predicted.dcGainDb, result.measured.dcGainDb);
  row("GBW (MHz)", result.predicted.gbwHz / 1e6, result.measured.gbwHz / 1e6);
  row("Phase margin (deg)", result.predicted.phaseMarginDeg,
      result.measured.phaseMarginDeg);
  row("Slew rate (V/us)", result.predicted.slewRateVPerUs,
      result.measured.slewRateVPerUs);
  row("Power (mW)", result.predicted.powerMw, result.measured.powerMw);

  // 5. The physical layout.
  const std::string svgPath = layout::outputPath("quickstart_ota.svg");
  layout::writeFile(svgPath, layout::toSvg(result.layout.cell.shapes));
  std::printf("\nlayout: %.1f x %.1f um, written to %s\n",
              result.layout.width / 1e3, result.layout.height / 1e3,
              svgPath.c_str());
  return 0;
}
