// Reproduces paper Fig. 5: the generated layout of the case-4 OTA.
//
// Runs the full layout-oriented synthesis flow (case 4), generates the
// physical layout, and reports what the paper's figure shows: the Fig. 5
// floorplan, drains on internal diffusions everywhere, the common-centroid
// input pair with end dummies, and the floating well of the pair.  Writes
// fig5_ota_layout.svg / .cif under examples/out/.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/flow.hpp"
#include "layout/drc.hpp"
#include "layout/writers.hpp"

namespace {

using namespace lo;
using namespace lo::core;

void printFigure5() {
  const tech::Technology t = tech::Technology::generic060();
  FlowOptions opt;
  opt.sizingCase = SizingCase::kCase4;
  SynthesisFlow flow(t, opt);
  const FlowResult r = flow.run(sizing::OtaSpecs{});
  const layout::OtaLayoutResult& lay = r.layout;

  std::printf("\n=== Fig. 5: generated layout of the case-4 OTA ===\n");
  std::printf("outline: %.1f x %.1f um (aspect %.2f)\n", lay.width / 1e3,
              lay.height / 1e3, static_cast<double>(lay.width) / lay.height);

  std::printf("\nfloorplan rows (leaf, position, fold count):\n");
  for (const char* name : {"MP3C", "MP3", "MP5", "MP4", "MP4C", "PAIR", "MN1C", "SINK",
                           "MN2C"}) {
    const auto& leaf = lay.floorplan.leaves.at(name);
    std::printf("  %-5s at (%6.1f, %6.1f) um, %5.1f x %5.1f um, nf/fingers=%d\n", name,
                leaf.rect.x0 / 1e3, leaf.rect.y0 / 1e3, leaf.rect.width() / 1e3,
                leaf.rect.height() / 1e3, leaf.tag);
  }

  std::printf("\nfold style (paper: 'all transistor folds are chosen such that "
              "drains are internal diffusions'):\n");
  for (const auto& [g, plan] : lay.foldPlans) {
    std::printf("  %-10s nf=%2d  foldW=%5.2f um  drains %s\n", circuit::otaGroupName(g),
                plan.nf, plan.foldWidth * 1e6,
                plan.drainInternal ? "internal" : "mixed");
  }

  std::printf("\ninput pair (common centroid with dummies, paper Fig. 5):\n");
  std::printf("  centroid offsets: MP1=%.2f MP2=%.2f gate pitches, orientation "
              "imbalance %d/%d, dummies %d\n",
              lay.pairPlan.metrics[0].centroidOffset,
              lay.pairPlan.metrics[1].centroidOffset,
              lay.pairPlan.metrics[0].orientationImbalance,
              lay.pairPlan.metrics[1].orientationImbalance, lay.pairPlan.dummyCount);
  std::printf("  floating well capacitance on the tail node: %.1f fF\n",
              lay.parasitics.nets.count("tail")
                  ? lay.parasitics.nets.at("tail").wellCap * 1e15
                  : 0.0);

  std::printf("\nper-net routing parasitics (the numbers fed back to sizing):\n");
  for (const char* net : {"x1", "x2", "y1", "z1", "z2", "out", "tail"}) {
    if (!lay.parasitics.nets.count(net)) continue;
    const auto& p = lay.parasitics.nets.at(net);
    std::printf("  %-5s routing %6.2f fF  well %6.2f fF  coupling %6.2f fF\n", net,
                p.routingCap * 1e15, p.wellCap * 1e15,
                p.totalCap() * 1e15 - p.routingCap * 1e15 - p.wellCap * 1e15);
  }

  const auto violations = layout::runDrc(t, lay.cell.shapes);
  std::size_t shorts = 0;
  for (const auto& v : violations) {
    if (v.detail.find("short") != std::string::npos) ++shorts;
  }
  std::printf("\nDRC: %zu violations (%zu shorts) over %zu shapes\n", violations.size(),
              shorts, lay.cell.shapes.size());

  layout::writeFile(layout::outputPath("fig5_ota_layout.svg"),
                    layout::toSvg(lay.cell.shapes));
  layout::writeFile(layout::outputPath("fig5_ota_layout.cif"),
                    layout::toCif(lay.cell.shapes, "FIG5OTA"));
  std::printf("wrote %s / .cif\n", layout::outputPath("fig5_ota_layout.svg").c_str());
}

void BM_OtaLayoutParasiticMode(benchmark::State& state) {
  // The paper requires the layout tool to be "fast as it is normally called
  // several times during circuit sizing".
  const tech::Technology t = tech::Technology::generic060();
  FlowOptions opt;
  SynthesisFlow flow(t, opt);
  const FlowResult r = flow.run(sizing::OtaSpecs{});
  for (auto _ : state) {
    const auto lay = layout::generateOtaLayout(t, r.sizing.design,
                                               opt.layoutOptions, false);
    benchmark::DoNotOptimize(lay);
  }
}
BENCHMARK(BM_OtaLayoutParasiticMode)->Unit(benchmark::kMillisecond);

void BM_OtaLayoutGenerationMode(benchmark::State& state) {
  const tech::Technology t = tech::Technology::generic060();
  FlowOptions opt;
  SynthesisFlow flow(t, opt);
  const FlowResult r = flow.run(sizing::OtaSpecs{});
  for (auto _ : state) {
    const auto lay = layout::generateOtaLayout(t, r.sizing.design,
                                               opt.layoutOptions, true);
    benchmark::DoNotOptimize(lay);
  }
}
BENCHMARK(BM_OtaLayoutGenerationMode)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  printFigure5();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
