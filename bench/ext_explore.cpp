// Extension benchmark: the design-space explorer over the synthesis
// service.
//
// One GBW x load-capacitance space runs three ways:
//   cold     -- empty cache; seed grid plus adaptive refinement under the
//               budget.  The final front must weakly dominate the
//               coarse-grid (seed) front on every objective: refinement
//               only ever adds non-dominated points at the same budget.
//   repeat   -- same scheduler again; the trajectory must be bit-identical
//               (byte-equal CSV export), because the budget counts
//               distinct evaluated points whether or not they hit the
//               cache -- warmth changes wall-clock time, never the result.
//   rerun    -- a fresh scheduler on the same disk store; >= 90% of the
//               evaluations must be served from the result cache.
//
// --explore-budget=N (default 32) shortens the run for CI smoke.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "explore/explore.hpp"
#include "explore/export.hpp"

namespace {

using namespace lo;
using namespace lo::explore;

int gBudget = 32;

ExploreSpace makeSpace() {
  ExploreSpace space;
  space.engineOptions.sizingCase = core::SizingCase::kCase4;
  SpecAxis gbw;
  gbw.field = "gbw";
  gbw.lo = 45e6;
  gbw.hi = 75e6;
  gbw.points = 3;
  space.axes.push_back(gbw);
  SpecAxis cload;
  cload.field = "cload";
  cload.lo = 1.5e-12;
  cload.hi = 3.5e-12;
  cload.points = 3;
  space.axes.push_back(cload);
  return space;
}

ExploreOptions makeOptions() {
  ExploreOptions options;
  options.budget = gBudget;
  options.maxRounds = 3;
  options.specTolerance = 0.05;
  return options;
}

bool runExploreStudy() {
  const tech::Technology technology = tech::Technology::generic060();
  const ExploreSpace space = makeSpace();
  const ExploreOptions options = makeOptions();

  const std::filesystem::path diskDir =
      std::filesystem::temp_directory_path() / "lo_ext_explore_cache";
  std::filesystem::remove_all(diskDir);

  service::SchedulerOptions schedulerOptions;
  schedulerOptions.threads = 4;
  schedulerOptions.cache.diskDir = diskDir.string();

  std::printf("\n=== Design-space exploration: %zu-axis spec space, budget %d ===\n",
              space.axes.size(), options.budget);

  const auto timeRun = [&](service::JobScheduler& scheduler, ExploreResult& out) {
    Explorer explorer(scheduler, space, options);
    const auto start = std::chrono::steady_clock::now();
    out = explorer.run();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
        .count();
  };

  ExploreResult cold, repeat, rerun;
  double tCold = 0, tRepeat = 0, tRerun = 0;
  {
    service::JobScheduler scheduler(technology, schedulerOptions);
    tCold = timeRun(scheduler, cold);
    tRepeat = timeRun(scheduler, repeat);
  }
  {
    service::JobScheduler scheduler(technology, schedulerOptions);  // Same disk.
    tRerun = timeRun(scheduler, rerun);
  }

  bool ok = true;
  for (const PointEval& p : cold.points) {
    if (!p.ok) {
      std::printf("POINT FAILED: [%s]: %s\n", p.key.c_str(), p.error.c_str());
      ok = false;
    }
  }
  if (cold.front.empty() || cold.seedFront.empty()) {
    std::printf("EMPTY FRONT: final %zu, seed %zu\n", cold.front.size(),
                cold.seedFront.size());
    ok = false;
  }

  // Acceptance 1: the refined front weakly dominates the coarse-grid front
  // on every objective, at the same budget.
  bool dominates = true;
  for (const PointEval& p : cold.seedFront) {
    if (!ParetoArchive::frontWeaklyDominates(cold.front, p, options.objectives)) {
      std::printf("SEED POINT NOT DOMINATED: [%s]\n", p.key.c_str());
      dominates = false;
    }
  }

  // Acceptance 2: bit-identical trajectory regardless of cache warmth.
  const std::string coldCsv = frontCsv(cold, space);
  const bool repeatIdentical = coldCsv == frontCsv(repeat, space);
  const bool rerunIdentical = coldCsv == frontCsv(rerun, space);

  // Acceptance 3: a warm re-run is served almost entirely from the cache.
  const double hitRate =
      rerun.evaluations > 0
          ? static_cast<double>(rerun.cacheHits) / rerun.evaluations
          : 0.0;

  std::printf("cold:    %.3f s  (%d evaluations, %d rounds, front %zu, seed front %zu)\n",
              tCold, cold.evaluations, cold.rounds, cold.front.size(),
              cold.seedFront.size());
  std::printf("repeat:  %.3f s  (same scheduler; %d/%d cache hits)\n", tRepeat,
              repeat.cacheHits, repeat.evaluations);
  std::printf("rerun:   %.3f s  (fresh scheduler, same disk; hit rate %.0f%%, require >= 90%%)\n",
              tRerun, hitRate * 100.0);
  std::printf("refined front weakly dominates seed front: %s\n",
              dominates ? "yes" : "NO -- BUG");
  std::printf("repeat run byte-identical: %s\n",
              repeatIdentical ? "yes" : "NO -- BUG");
  std::printf("warm rerun byte-identical: %s\n",
              rerunIdentical ? "yes" : "NO -- BUG");

  ok = ok && dominates && repeatIdentical && rerunIdentical && hitRate >= 0.9;
  std::printf("ext_explore acceptance: %s\n", ok ? "PASS" : "FAIL");
  std::filesystem::remove_all(diskDir);
  return ok;
}

void BM_WarmExplore(benchmark::State& state) {
  const tech::Technology technology = tech::Technology::generic060();
  const ExploreSpace space = makeSpace();
  const ExploreOptions options = makeOptions();
  service::SchedulerOptions schedulerOptions;
  schedulerOptions.threads = 4;
  service::JobScheduler scheduler(technology, schedulerOptions);
  {
    Explorer explorer(scheduler, space, options);  // Prime the cache once.
    (void)explorer.run();
  }
  for (auto _ : state) {
    Explorer explorer(scheduler, space, options);
    const ExploreResult result = explorer.run();
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * gBudget);
}
BENCHMARK(BM_WarmExplore)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  // Strip our own flag before google-benchmark sees (and rejects) it.
  int outArgc = 0;
  for (int i = 0; i < argc; ++i) {
    constexpr const char* kFlag = "--explore-budget=";
    if (std::strncmp(argv[i], kFlag, std::strlen(kFlag)) == 0) {
      gBudget = std::atoi(argv[i] + std::strlen(kFlag));
      if (gBudget <= 0) {
        std::fprintf(stderr, "bad --explore-budget\n");
        return 2;
      }
      continue;
    }
    argv[outArgc++] = argv[i];
  }
  argc = outArgc;

  const bool ok = runExploreStudy();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return ok ? 0 : 1;
}
