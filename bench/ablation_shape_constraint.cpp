// Shape-constraint ablation (paper section 3: "The layout is usually driven
// by a shape constraint (for example a given height or aspect ratio). Given
// this constraint, the language tries to produce the corresponding most
// compact layout.").
//
// Sweeps the target aspect ratio and a height cap, reporting the chosen
// fold counts, the achieved outline and area, and how the routing parasitics
// move with the floorplan -- the coupling between shape and electrical
// behaviour that motivates feeding layout information back into sizing.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/engine.hpp"
#include "core/ota_topology.hpp"

namespace {

using namespace lo;
using namespace lo::core;

void printSweep() {
  const tech::Technology t = tech::Technology::generic060();
  EngineOptions base;
  base.sizingCase = SizingCase::kCase1;  // One fixed design for the sweep.
  const SynthesisEngine engine(t, base);
  FoldedCascodeOtaTopology topo(t, engine.model());
  (void)engine.run(topo, sizing::OtaSpecs{});
  const circuit::FoldedCascodeOtaDesign& refDesign = topo.sizingResult().design;

  std::printf("\n=== Shape constraint sweep (fixed design) ===\n");
  std::printf("%8s %10s %10s %8s %10s %8s %8s %10s\n", "aspect", "W um", "H um",
              "ratio", "area mm^2", "nf pair", "nf sink", "C(x1) fF");
  for (double aspect : {0.3, 0.5, 1.0, 2.0, 3.0}) {
    layout::OtaLayoutOptions opt;
    opt.shape = layout::ShapeConstraint{};
    opt.shape.aspectRatio = aspect;
    const auto lay = layout::generateOtaLayout(t, refDesign, opt, false);
    std::printf("%8.2f %10.1f %10.1f %8.2f %10.4f %8d %8d %10.2f\n", aspect,
                lay.width / 1e3, lay.height / 1e3,
                static_cast<double>(lay.width) / lay.height,
                lay.width / 1e6 * (lay.height / 1e6),
                lay.foldPlans.at(circuit::OtaGroup::kInputPair).nf,
                lay.foldPlans.at(circuit::OtaGroup::kSink).nf,
                lay.parasitics.capOn("x1") * 1e15);
  }

  std::printf("\nheight-cap sweep:\n%10s %10s %10s %10s\n", "cap um", "W um", "H um",
              "area mm^2");
  for (double capUm : {80.0, 100.0, 130.0, 200.0}) {
    layout::OtaLayoutOptions opt;
    opt.shape = layout::ShapeConstraint{};
    opt.shape.maxHeight = static_cast<geom::Coord>(capUm * 1000);
    const auto lay = layout::generateOtaLayout(t, refDesign, opt, false);
    std::printf("%10.0f %10.1f %10.1f %10.4f\n", capUm, lay.width / 1e3,
                lay.height / 1e3, lay.width / 1e6 * (lay.height / 1e6));
  }
}

void BM_FloorplanOnly(benchmark::State& state) {
  const tech::Technology t = tech::Technology::generic060();
  const SynthesisEngine engine(t, EngineOptions{});
  FoldedCascodeOtaTopology topo(t, engine.model());
  (void)engine.run(topo, sizing::OtaSpecs{});
  const circuit::FoldedCascodeOtaDesign& refDesign = topo.sizingResult().design;
  layout::OtaLayoutOptions opt;
  opt.shape = layout::ShapeConstraint{};
  opt.shape.aspectRatio = 1.0;
  opt.maxFoldCandidates = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto lay = layout::generateOtaLayout(t, refDesign, opt, false);
    benchmark::DoNotOptimize(lay);
  }
}
BENCHMARK(BM_FloorplanOnly)->Arg(3)->Arg(6)->Arg(10)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  printSweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
