// Simulator hot-path snapshot: cold DC latency distribution, warm-start
// Monte-Carlo-style chain throughput, and batched-AC throughput, each
// measured against the pre-optimization reference path kept alive as
// SolverMode::kReference -- the baseline is recorded in the same run, on
// the same machine, so the speedups in BENCH_sim.json are self-contained.
//
// Writes BENCH_sim.json under examples/out/ with:
//   * cold Newton p50/p99 single-solve latency and iters/sec (fast & ref),
//   * warm-chain points/sec vs per-point cold reference (sweep throughput),
//   * AC (frequency, excitation) points/sec, batched fast vs one-at-a-time
//     reference,
//   * heap allocation counts per AC point and per warm solve vs reference.
//
// Acceptance gates (exit 1 on violation):
//   * AC batch throughput   >= 2.0x the reference path,
//   * warm sweep throughput >= 1.5x the per-point cold reference,
//   * fast-path allocations <= 50% of the reference per AC point and per
//     warm solve,
//   * fast Newton iters/sec >= 0.9x the reference (the batched device
//     evaluation must not regress per-iteration cost).
//
// CI runs a short-budget pass: ext_sim --sim-reps=30 --benchmark_filter=none.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "circuit/ota.hpp"
#include "layout/writers.hpp"
#include "sim/simulator.hpp"
#include "sizing/ota_sizer.hpp"
#include "sizing/verify.hpp"
#include "tech/technology.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter.  Counting, not tracking: every path through
// operator new bumps one relaxed atomic, so section deltas give exact
// allocation counts for the code they bracket.

namespace {
std::atomic<unsigned long long> gAllocCount{0};
}  // namespace

// GCC flags std::free on aligned_alloc results inside replaced operator
// delete as a mismatched pair; it is the standard-blessed pairing.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  gAllocCount.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  gAllocCount.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
namespace {
void* alignedAlloc(std::size_t size, std::align_val_t align) {
  gAllocCount.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(align);
  if (void* p = std::aligned_alloc(a, (size + a - 1) / a * a)) return p;
  throw std::bad_alloc();
}
}  // namespace
void* operator new(std::size_t size, std::align_val_t align) {
  return alignedAlloc(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return alignedAlloc(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace {

using namespace lo;
using Clock = std::chrono::steady_clock;

int gSimReps = 60;  // Repetition budget; CI passes a smaller one.

[[nodiscard]] double secondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

[[nodiscard]] unsigned long long allocsNow() {
  return gAllocCount.load(std::memory_order_relaxed);
}

/// The workload circuit: the folded-cascode verification testbench
/// (11 transistors, feedback network, differential excitation) -- the exact
/// netlist the verification tier hammers in production.
struct Workload {
  std::unique_ptr<device::MosModel> model = device::MosModel::create("ekv");
  circuit::Circuit testbench;
  Workload() {
    const tech::Technology& t = technology();
    sizing::OtaSizer sizer(t, *model);
    const sizing::SizingResult sized =
        sizer.size(sizing::OtaSpecs{}, sizing::SizingPolicy::case2());
    sizing::OtaVerifier v(t, *model);
    testbench = v.buildAcTestbench(sized.design, nullptr, 1.0, 0.0, 0.0);
  }
  [[nodiscard]] static const tech::Technology& technology() {
    static const tech::Technology t = tech::Technology::generic060();
    return t;
  }
  [[nodiscard]] sim::SimOptions options(sim::SolverMode mode) const {
    sim::SimOptions opt;
    opt.tempK = technology().temperature;
    opt.solver = mode;
    return opt;
  }
};

struct DcSample {
  double p50Ms = 0.0;
  double p99Ms = 0.0;
  double itersPerSecFast = 0.0;
  double itersPerSecRef = 0.0;
  double itersRatio = 0.0;
};

/// Cold operating-point latency: every rep runs the full gmin ladder from
/// scratch on a per-rep Simulator, the honest "one solve, cold caches"
/// number a scheduler job pays.
DcSample runColdDc(const Workload& w) {
  DcSample s;
  std::vector<double> repMs;
  repMs.reserve(gSimReps);
  long fastIters = 0;
  double fastSec = 0.0;
  for (int rep = 0; rep < gSimReps; ++rep) {
    sim::Simulator sim(w.testbench, Workload::technology(), *w.model,
                       w.options(sim::SolverMode::kFast));
    const auto t0 = Clock::now();
    const sim::DcSolution op = sim.dcOperatingPoint();
    const double dt = secondsSince(t0);
    benchmark::DoNotOptimize(op.nodeVoltages.data());
    repMs.push_back(dt * 1e3);
    fastSec += dt;
    fastIters += sim.stats().newtonIterations;
  }
  std::sort(repMs.begin(), repMs.end());
  s.p50Ms = repMs[repMs.size() / 2];
  s.p99Ms = repMs[std::min(repMs.size() - 1, repMs.size() * 99 / 100)];
  s.itersPerSecFast = fastSec > 0.0 ? fastIters / fastSec : 0.0;

  long refIters = 0;
  double refSec = 0.0;
  for (int rep = 0; rep < gSimReps; ++rep) {
    sim::Simulator sim(w.testbench, Workload::technology(), *w.model,
                       w.options(sim::SolverMode::kReference));
    const auto t0 = Clock::now();
    const sim::DcSolution op = sim.dcOperatingPoint();
    refSec += secondsSince(t0);
    benchmark::DoNotOptimize(op.nodeVoltages.data());
    refIters += sim.stats().newtonIterations;
  }
  s.itersPerSecRef = refSec > 0.0 ? refIters / refSec : 0.0;
  s.itersRatio = s.itersPerSecRef > 0.0 ? s.itersPerSecFast / s.itersPerSecRef : 0.0;
  return s;
}

struct SweepSample {
  int trials = 0;
  double warmPointsPerSec = 0.0;
  double coldPointsPerSec = 0.0;
  double speedup = 0.0;
  long warmHits = 0;
  double allocsPerWarmSolve = 0.0;
  double allocsPerColdSolve = 0.0;
  double allocRatio = 0.0;
};

/// Monte-Carlo-style neighbouring-point chain: per trial, nudge every
/// device's threshold (the mismatch draw shape) and re-solve.  Fast side:
/// one Simulator + one WarmStart across the whole chain (what
/// sizing::monteCarlo now does).  Baseline: the pre-PR structure -- a fresh
/// circuit copy, fresh Simulator and full cold ladder per trial on the
/// reference solver.
SweepSample runWarmSweep(const Workload& w) {
  SweepSample s;
  s.trials = std::max(gSimReps / 2, 12);
  auto vtoAt = [](int trial, std::size_t dev) {
    return 2e-3 * std::sin(0.7 * trial + 1.3 * static_cast<double>(dev));
  };

  {
    circuit::Circuit work = w.testbench;
    sim::Simulator sim(work, Workload::technology(), *w.model,
                       w.options(sim::SolverMode::kFast));
    sim::Simulator::WarmStart warm;
    // Trial 0 outside the timed region: it runs the cold ladder and warms
    // the workspace; the steady-state chain is what the throughput and
    // allocation numbers describe.
    for (std::size_t d = 0; d < work.mosfets.size(); ++d) {
      work.mosfets[d].vtoDelta = vtoAt(0, d);
    }
    benchmark::DoNotOptimize(sim.dcOperatingPoint(warm).iterations);
    const auto t0 = Clock::now();
    const unsigned long long a0 = allocsNow();
    for (int trial = 1; trial <= s.trials; ++trial) {
      for (std::size_t d = 0; d < work.mosfets.size(); ++d) {
        work.mosfets[d].vtoDelta = vtoAt(trial, d);
      }
      benchmark::DoNotOptimize(sim.dcOperatingPoint(warm).iterations);
    }
    const double dt = secondsSince(t0);
    s.allocsPerWarmSolve = static_cast<double>(allocsNow() - a0) / s.trials;
    s.warmPointsPerSec = dt > 0.0 ? s.trials / dt : 0.0;
    s.warmHits = sim.stats().warmStartHits;
  }

  {
    const auto t0 = Clock::now();
    const unsigned long long a0 = allocsNow();
    for (int trial = 1; trial <= s.trials; ++trial) {
      circuit::Circuit work = w.testbench;
      for (std::size_t d = 0; d < work.mosfets.size(); ++d) {
        work.mosfets[d].vtoDelta = vtoAt(trial, d);
      }
      sim::Simulator sim(work, Workload::technology(), *w.model,
                         w.options(sim::SolverMode::kReference));
      benchmark::DoNotOptimize(sim.dcOperatingPoint().iterations);
    }
    const double dt = secondsSince(t0);
    s.allocsPerColdSolve = static_cast<double>(allocsNow() - a0) / s.trials;
    s.coldPointsPerSec = dt > 0.0 ? s.trials / dt : 0.0;
  }

  s.speedup = s.coldPointsPerSec > 0.0 ? s.warmPointsPerSec / s.coldPointsPerSec : 0.0;
  s.allocRatio =
      s.allocsPerColdSolve > 0.0 ? s.allocsPerWarmSolve / s.allocsPerColdSolve : 0.0;
  return s;
}

struct AcSample {
  int freqPoints = 0;
  int excitations = 0;
  double fastPointsPerSec = 0.0;
  double refPointsPerSec = 0.0;
  double speedup = 0.0;
  double allocsPerPointFast = 0.0;
  double allocsPerPointRef = 0.0;
  double allocRatio = 0.0;
};

/// The verification tier's small-signal block: differential, common-mode
/// and supply excitations over a dense grid.  Fast side solves the block
/// through acBatch (one factorization per frequency); the baseline runs
/// the three pre-PR one-excitation-at-a-time analyses.
AcSample runAcBatch(const Workload& w) {
  AcSample s;
  const double fStart = 10.0, fStop = 1e9;
  const int ppd = 16;
  const std::vector<sim::AcExcitation> block = {
      sim::AcExcitation::circuitSources(),
      sim::AcExcitation::unitVsource("VCM"),
      sim::AcExcitation::unitVsource("VDD"),
  };
  s.excitations = static_cast<int>(block.size());

  sim::Simulator fast(w.testbench, Workload::technology(), *w.model,
                      w.options(sim::SolverMode::kFast));
  const sim::DcSolution op = fast.dcOperatingPoint();

  // Warm the workspace outside the timed region (the reference path has no
  // equivalent to warm, by construction).
  benchmark::DoNotOptimize(fast.acBatch(op, block, fStart, 1e2, 2).size());

  const int reps = std::max(gSimReps / 10, 3);
  double fastSec = 0.0;
  unsigned long long fastAllocs = 0;
  std::size_t nFreq = 0;
  for (int rep = 0; rep < reps; ++rep) {
    const unsigned long long a0 = allocsNow();
    const auto t0 = Clock::now();
    const auto curves = fast.acBatch(op, block, fStart, fStop, ppd);
    fastSec += secondsSince(t0);
    fastAllocs += allocsNow() - a0;
    nFreq = curves.front().size();
    benchmark::DoNotOptimize(curves.front().front().nodeV.data());
  }
  s.freqPoints = static_cast<int>(nFreq);
  const double totalPoints = static_cast<double>(nFreq) * s.excitations * reps;
  // Every returned AcPoint owns exactly two heap vectors (nodeV, vsourceI)
  // in both modes; subtract them so the metric isolates the SOLVER's
  // allocations -- the traffic the workspace rewrite eliminates.
  const double kResultAllocsPerPoint = 2.0;
  s.fastPointsPerSec = fastSec > 0.0 ? totalPoints / fastSec : 0.0;
  s.allocsPerPointFast = std::max(0.0, fastAllocs / totalPoints - kResultAllocsPerPoint);

  sim::Simulator ref(w.testbench, Workload::technology(), *w.model,
                     w.options(sim::SolverMode::kReference));
  const sim::DcSolution opRef = ref.dcOperatingPoint();
  double refSec = 0.0;
  unsigned long long refAllocs = 0;
  for (int rep = 0; rep < reps; ++rep) {
    const unsigned long long a0 = allocsNow();
    const auto t0 = Clock::now();
    const auto diff = ref.ac(opRef, fStart, fStop, ppd);
    const auto cm = ref.acFrom(opRef, "VCM", fStart, fStop, ppd);
    const auto psrr = ref.acFrom(opRef, "VDD", fStart, fStop, ppd);
    refSec += secondsSince(t0);
    refAllocs += allocsNow() - a0;
    benchmark::DoNotOptimize(diff.front().nodeV.data());
    benchmark::DoNotOptimize(cm.front().nodeV.data());
    benchmark::DoNotOptimize(psrr.front().nodeV.data());
  }
  s.refPointsPerSec = refSec > 0.0 ? totalPoints / refSec : 0.0;
  s.allocsPerPointRef = std::max(0.0, refAllocs / totalPoints - kResultAllocsPerPoint);
  s.speedup = s.refPointsPerSec > 0.0 ? s.fastPointsPerSec / s.refPointsPerSec : 0.0;
  s.allocRatio =
      s.allocsPerPointRef > 0.0 ? s.allocsPerPointFast / s.allocsPerPointRef : 0.0;
  return s;
}

std::string toJson(const DcSample& dc, const SweepSample& sweep, const AcSample& ac,
                   int failures) {
  std::ostringstream out;
  out.precision(10);
  out << "{\n  \"bench\": \"ext_sim\",\n  \"reps\": " << gSimReps
      << ",\n  \"dc\": {\"cold_p50_ms\": " << dc.p50Ms
      << ", \"cold_p99_ms\": " << dc.p99Ms
      << ", \"newton_iters_per_sec_fast\": " << dc.itersPerSecFast
      << ", \"newton_iters_per_sec_ref\": " << dc.itersPerSecRef
      << ", \"iters_ratio\": " << dc.itersRatio
      << "},\n  \"sweep\": {\"trials\": " << sweep.trials
      << ", \"warm_points_per_sec\": " << sweep.warmPointsPerSec
      << ", \"cold_points_per_sec\": " << sweep.coldPointsPerSec
      << ", \"speedup\": " << sweep.speedup << ", \"warm_hits\": " << sweep.warmHits
      << ", \"allocs_per_warm_solve\": " << sweep.allocsPerWarmSolve
      << ", \"allocs_per_cold_solve\": " << sweep.allocsPerColdSolve
      << ", \"alloc_ratio\": " << sweep.allocRatio
      << "},\n  \"ac\": {\"freq_points\": " << ac.freqPoints
      << ", \"excitations\": " << ac.excitations
      << ", \"fast_points_per_sec\": " << ac.fastPointsPerSec
      << ", \"ref_points_per_sec\": " << ac.refPointsPerSec
      << ", \"speedup\": " << ac.speedup
      << ", \"solver_allocs_per_point_fast\": " << ac.allocsPerPointFast
      << ", \"solver_allocs_per_point_ref\": " << ac.allocsPerPointRef
      << ", \"alloc_ratio\": " << ac.allocRatio
      << "},\n  \"gates\": {\"ac_speedup_min\": 2.0, \"sweep_speedup_min\": 1.5,"
      << " \"alloc_ratio_max\": 0.5, \"iters_ratio_min\": 0.9, \"pass\": "
      << (failures == 0 ? "true" : "false") << "}\n}\n";
  return out.str();
}

int runSnapshot() {
  const Workload w;
  const DcSample dc = runColdDc(w);
  const SweepSample sweep = runWarmSweep(w);
  const AcSample ac = runAcBatch(w);

  std::printf("\n=== ext_sim: simulator hot-path snapshot (%d reps) ===\n", gSimReps);
  std::printf("cold DC    p50=%.3f ms  p99=%.3f ms  iters/s fast=%.3g ref=%.3g (%.2fx)\n",
              dc.p50Ms, dc.p99Ms, dc.itersPerSecFast, dc.itersPerSecRef, dc.itersRatio);
  std::printf("warm sweep %d trials  warm=%.3g pts/s cold=%.3g pts/s  speedup=%.2fx"
              "  hits=%ld  allocs/solve warm=%.0f cold=%.0f (%.2fx)\n",
              sweep.trials, sweep.warmPointsPerSec, sweep.coldPointsPerSec,
              sweep.speedup, sweep.warmHits, sweep.allocsPerWarmSolve,
              sweep.allocsPerColdSolve, sweep.allocRatio);
  std::printf("AC batch   %d freqs x %d exc  fast=%.3g pts/s ref=%.3g pts/s"
              "  speedup=%.2fx  solver allocs/pt fast=%.2f ref=%.2f (%.2fx)\n",
              ac.freqPoints, ac.excitations, ac.fastPointsPerSec, ac.refPointsPerSec,
              ac.speedup, ac.allocsPerPointFast, ac.allocsPerPointRef, ac.allocRatio);

  int failures = 0;
  if (ac.speedup < 2.0) {
    std::printf("ACCEPTANCE FAIL: AC batch speedup %.2fx < 2.0x\n", ac.speedup);
    ++failures;
  }
  if (sweep.speedup < 1.5) {
    std::printf("ACCEPTANCE FAIL: warm sweep speedup %.2fx < 1.5x\n", sweep.speedup);
    ++failures;
  }
  if (ac.allocRatio > 0.5) {
    std::printf("ACCEPTANCE FAIL: AC alloc ratio %.2f > 0.5\n", ac.allocRatio);
    ++failures;
  }
  if (sweep.allocRatio > 0.5) {
    std::printf("ACCEPTANCE FAIL: warm-solve alloc ratio %.2f > 0.5\n",
                sweep.allocRatio);
    ++failures;
  }
  if (dc.itersRatio < 0.9) {
    std::printf("ACCEPTANCE FAIL: fast Newton iters/sec %.2fx of reference < 0.9x\n",
                dc.itersRatio);
    ++failures;
  }
  if (sweep.warmHits < sweep.trials) {
    std::printf("ACCEPTANCE FAIL: only %ld/%d warm-start hits\n", sweep.warmHits,
                sweep.trials);
    ++failures;
  }
  if (failures == 0) {
    std::printf("acceptance: AC >= 2x, sweep >= 1.5x, allocs <= 50%%, "
                "iters/sec >= 0.9x -- all gates hold\n");
  }

  const std::string path = layout::outputPath("BENCH_sim.json");
  layout::writeFile(path, toJson(dc, sweep, ac, failures));
  std::printf("wrote %s\n", path.c_str());
  return failures;
}

// Micro-benchmarks for profiling individual hot paths (skipped in CI via
// --benchmark_filter=none).

void BM_WarmDcOperatingPoint(benchmark::State& state) {
  const Workload w;
  circuit::Circuit work = w.testbench;
  sim::Simulator sim(work, Workload::technology(), *w.model,
                     w.options(sim::SolverMode::kFast));
  sim::Simulator::WarmStart warm;
  benchmark::DoNotOptimize(sim.dcOperatingPoint(warm).iterations);
  int trial = 0;
  for (auto _ : state) {
    for (std::size_t d = 0; d < work.mosfets.size(); ++d) {
      work.mosfets[d].vtoDelta = 1e-3 * std::sin(0.7 * trial + static_cast<double>(d));
    }
    benchmark::DoNotOptimize(sim.dcOperatingPoint(warm).iterations);
    ++trial;
  }
}
BENCHMARK(BM_WarmDcOperatingPoint)->Unit(benchmark::kMicrosecond);

void BM_AcBatchThreeExcitations(benchmark::State& state) {
  const Workload w;
  sim::Simulator sim(w.testbench, Workload::technology(), *w.model,
                     w.options(sim::SolverMode::kFast));
  const sim::DcSolution op = sim.dcOperatingPoint();
  const std::vector<sim::AcExcitation> block = {
      sim::AcExcitation::circuitSources(),
      sim::AcExcitation::unitVsource("VCM"),
      sim::AcExcitation::unitVsource("VDD"),
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.acBatch(op, block, 10.0, 1e9, 8).size());
  }
}
BENCHMARK(BM_AcBatchThreeExcitations)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Strip our own flag before google-benchmark sees (and rejects) it.
  int outArgc = 0;
  for (int i = 0; i < argc; ++i) {
    constexpr const char* kFlag = "--sim-reps=";
    if (std::strncmp(argv[i], kFlag, std::strlen(kFlag)) == 0) {
      gSimReps = std::atoi(argv[i] + std::strlen(kFlag));
      if (gSimReps < 5) {
        std::fprintf(stderr, "bad --sim-reps\n");
        return 2;
      }
      continue;
    }
    argv[outArgc++] = argv[i];
  }
  argc = outArgc;

  const int failures = runSnapshot();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return failures == 0 ? 0 : 1;
}
