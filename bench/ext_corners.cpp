// Extension benchmark: process-corner robustness with and without the
// transistor-level bias generator, plus the Monte-Carlo mismatch spread --
// the "statistical analysis to check the reliability of the synthesized
// circuit" angle of the paper's verification interface (section 4).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/engine.hpp"
#include "core/ota_topology.hpp"
#include "sizing/montecarlo.hpp"
#include "sizing/ota_sizer.hpp"

namespace {

using namespace lo;

void printCorners() {
  const tech::Technology t = tech::Technology::generic060();
  const core::SynthesisEngine engine(t, core::EngineOptions{});
  core::FoldedCascodeOtaTopology topo(t, engine.model());
  (void)engine.run(topo, sizing::OtaSpecs{});
  const auto& extracted = topo.extractedDesign();
  const auto& parasitics = topo.layout().parasitics;
  const auto bias = sizing::designOtaBias(t, engine.model(), extracted);

  std::printf("\n=== Corner analysis of the case-4 OTA ===\n");
  std::printf("%-4s | %28s | %28s\n", "", "fixed ideal biases", "bias generator");
  std::printf("%-4s | %8s %9s %8s | %8s %9s %8s\n", "cnr", "gain dB", "GBW MHz",
              "PM deg", "gain dB", "GBW MHz", "PM deg");
  for (tech::ProcessCorner c :
       {tech::ProcessCorner::kTypical, tech::ProcessCorner::kSlow,
        tech::ProcessCorner::kFast, tech::ProcessCorner::kSlowNFastP,
        tech::ProcessCorner::kFastNSlowP}) {
    const tech::Technology corner = t.atCorner(c);
    sizing::OtaVerifier verifier(corner, engine.model());
    const auto fixed = verifier.verify(extracted, &parasitics);
    const auto gen = sizing::measureAmplifier(
        corner, engine.model(),
        [&](circuit::Circuit& ck) {
          circuit::instantiateOtaWithBias(ck, extracted, bias);
        },
        extracted.inputCm, extracted.vdd, &parasitics);
    std::printf("%-4s | %8.1f %9.1f %8.1f | %8.1f %9.1f %8.1f\n", tech::cornerName(c),
                fixed.dcGainDb, fixed.gbwHz / 1e6, fixed.phaseMarginDeg, gen.dcGainDb,
                gen.gbwHz / 1e6, gen.phaseMarginDeg);
  }
  std::printf("(cross corners sf/fs collapse with fixed ideal biases and are\n"
              " rescued by the tracking generator)\n");

  sizing::MonteCarloOptions mc;
  mc.samples = 60;
  const auto stats =
      sizing::runMonteCarlo(t, engine.model(), extracted, &parasitics, mc);
  std::printf("\nMonte Carlo (%d samples, Avt=%.0f mV*um): offset %.2f +/- %.2f mV, "
              "gain %.1f +/- %.2f dB, %d failures\n",
              stats.samples, mc.avt * 1e9, stats.offsetMeanMv, stats.offsetSigmaMv,
              stats.gainMeanDb, stats.gainSigmaDb, stats.failures);
}

void BM_MonteCarloSample(benchmark::State& state) {
  const tech::Technology t = tech::Technology::generic060();
  const core::SynthesisEngine engine(t, core::EngineOptions{});
  core::FoldedCascodeOtaTopology topo(t, engine.model());
  (void)engine.run(topo, sizing::OtaSpecs{});
  sizing::MonteCarloOptions mc;
  mc.samples = 1;
  for (auto _ : state) {
    mc.seed++;
    const auto stats = sizing::runMonteCarlo(t, engine.model(), topo.extractedDesign(),
                                             &topo.layout().parasitics, mc);
    benchmark::DoNotOptimize(stats);
  }
}
BENCHMARK(BM_MonteCarloSample)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  printCorners();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
