// Layout-engine perf/quality snapshot: the constraint-driven row placer
// on both topologies, declared backend (legacy-exact slicing) against the
// seeded search.  Prints the comparison, runs the acceptance check that
// the seeded placer stays within 5% of the legacy slicing area, and
// writes BENCH_layout.json (area, estimated wirelength, placer wall time
// per topology and mode) under examples/out/ -- the first entry of the
// perf trajectory the roadmap asks for.
//
// CI runs a short-budget pass: ext_layout --layout-candidates=24
// --benchmark_filter=none.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "device/mos_model.hpp"
#include "layout/ota_layout.hpp"
#include "layout/two_stage_layout.hpp"
#include "layout/writers.hpp"
#include "sizing/ota_sizer.hpp"
#include "sizing/two_stage.hpp"

namespace {

using namespace lo;

int gCandidates = 96;  // Seeded-search budget; CI passes a smaller one.

const tech::Technology& tech060() {
  static const tech::Technology t = tech::Technology::generic060();
  return t;
}

circuit::FoldedCascodeOtaDesign otaDesign() {
  static const circuit::FoldedCascodeOtaDesign d = [] {
    const auto model = device::MosModel::create("ekv");
    const sizing::OtaSizer sizer(tech060(), *model);
    return sizer.size(sizing::OtaSpecs{}, sizing::SizingPolicy::case2()).design;
  }();
  return d;
}

circuit::TwoStageOtaDesign twoStageDesign() {
  static const circuit::TwoStageOtaDesign d = [] {
    const auto model = device::MosModel::create("ekv");
    const sizing::TwoStageSizer sizer(tech060(), *model);
    sizing::OtaSpecs specs;
    specs.gbw = 30e6;
    return sizer.size(specs, sizing::SizingPolicy::case2()).design;
  }();
  return d;
}

/// One topology x placer-mode measurement.
struct Sample {
  std::string topology;
  std::string mode;
  double areaUm2 = 0.0;
  double wirelengthUm = 0.0;
  double scoreNm2 = 0.0;
  int candidates = 0;
  double wallMs = 0.0;
};

template <typename Fn>
Sample measure(const char* topology, const char* mode, Fn&& generate) {
  Sample s;
  s.topology = topology;
  s.mode = mode;
  double bestMs = 1e18;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto lay = generate();
    const auto t1 = std::chrono::steady_clock::now();
    bestMs = std::min(bestMs, std::chrono::duration<double, std::milli>(t1 - t0).count());
    s.areaUm2 = static_cast<double>(lay.width) / 1e3 * (static_cast<double>(lay.height) / 1e3);
    s.wirelengthUm = lay.placement.estimatedWirelengthNm / 1e3;
    s.scoreNm2 = lay.placement.scoreNm2;
    s.candidates = lay.placement.candidatesEvaluated;
  }
  s.wallMs = bestMs;
  return s;
}

Sample runOta(layout::RowSearch search) {
  layout::OtaLayoutOptions opt;
  opt.placerSearch = search;
  opt.placerCandidates = gCandidates;
  opt.placerThreads = 4;
  const char* mode = search == layout::RowSearch::kDeclared ? "declared" : "seeded";
  return measure("folded_cascode_ota", mode, [&] {
    return layout::generateOtaLayout(tech060(), otaDesign(), opt, false);
  });
}

Sample runTwoStage(layout::RowSearch search) {
  layout::TwoStageLayoutOptions opt;
  opt.placerSearch = search;
  opt.placerCandidates = gCandidates;
  opt.placerThreads = 4;
  const char* mode = search == layout::RowSearch::kDeclared ? "declared" : "seeded";
  return measure("two_stage_ota", mode, [&] {
    return layout::generateTwoStageLayout(tech060(), twoStageDesign(), opt, false);
  });
}

std::string toJson(const std::vector<Sample>& samples) {
  std::ostringstream out;
  out.precision(6);
  out << "{\n  \"bench\": \"ext_layout\",\n  \"candidates\": " << gCandidates
      << ",\n  \"samples\": [\n";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    out << "    {\"topology\": \"" << s.topology << "\", \"mode\": \"" << s.mode
        << "\", \"area_um2\": " << s.areaUm2 << ", \"wirelength_um\": " << s.wirelengthUm
        << ", \"score_nm2\": " << s.scoreNm2
        << ", \"candidates_evaluated\": " << s.candidates
        << ", \"wall_ms\": " << s.wallMs << '}' << (i + 1 < samples.size() ? "," : "")
        << '\n';
  }
  out << "  ]\n}\n";
  return out.str();
}

/// Acceptance: the seeded row placer must stay within 5% of the legacy
/// declared slicing area on both topologies.
int runSnapshot() {
  std::vector<Sample> samples;
  samples.push_back(runOta(layout::RowSearch::kDeclared));
  samples.push_back(runOta(layout::RowSearch::kSeeded));
  samples.push_back(runTwoStage(layout::RowSearch::kDeclared));
  samples.push_back(runTwoStage(layout::RowSearch::kSeeded));

  std::printf("\n=== ext_layout: row placer quality/perf snapshot (%d candidates) ===\n",
              gCandidates);
  std::printf("%-20s %-9s %12s %14s %8s %10s\n", "topology", "mode", "area um^2",
              "wirelength um", "cands", "wall ms");
  for (const Sample& s : samples) {
    std::printf("%-20s %-9s %12.0f %14.1f %8d %10.2f\n", s.topology.c_str(),
                s.mode.c_str(), s.areaUm2, s.wirelengthUm, s.candidates, s.wallMs);
  }

  const std::string path = layout::outputPath("BENCH_layout.json");
  layout::writeFile(path, toJson(samples));
  std::printf("wrote %s\n", path.c_str());

  int failures = 0;
  for (std::size_t i = 0; i + 1 < samples.size(); i += 2) {
    const Sample& declared = samples[i];
    const Sample& seeded = samples[i + 1];
    if (seeded.areaUm2 > declared.areaUm2 * 1.05) {
      std::printf("ACCEPTANCE FAIL: %s seeded area %.0f um^2 exceeds 1.05x declared "
                  "%.0f um^2\n",
                  declared.topology.c_str(), seeded.areaUm2, declared.areaUm2);
      ++failures;
    }
    if (seeded.scoreNm2 > declared.scoreNm2) {
      std::printf("ACCEPTANCE FAIL: %s seeded score %.3e beats nothing (declared "
                  "%.3e is the baseline candidate)\n",
                  declared.topology.c_str(), seeded.scoreNm2, declared.scoreNm2);
      ++failures;
    }
  }
  if (failures == 0) {
    std::printf("acceptance: seeded placer within 5%% of legacy slicing area on both "
                "topologies\n");
  }
  return failures;
}

void BM_OtaRowPlacerDeclared(benchmark::State& state) {
  for (auto _ : state) {
    const auto lay = layout::generateOtaLayout(
        tech060(), otaDesign(), layout::OtaLayoutOptions{}, false);
    benchmark::DoNotOptimize(lay);
  }
}
BENCHMARK(BM_OtaRowPlacerDeclared)->Unit(benchmark::kMillisecond);

void BM_OtaRowPlacerSeeded(benchmark::State& state) {
  layout::OtaLayoutOptions opt;
  opt.placerSearch = layout::RowSearch::kSeeded;
  opt.placerCandidates = gCandidates;
  opt.placerThreads = 4;
  for (auto _ : state) {
    const auto lay = layout::generateOtaLayout(tech060(), otaDesign(), opt, false);
    benchmark::DoNotOptimize(lay);
  }
}
BENCHMARK(BM_OtaRowPlacerSeeded)->Unit(benchmark::kMillisecond);

void BM_TwoStageRowPlacerSeeded(benchmark::State& state) {
  layout::TwoStageLayoutOptions opt;
  opt.placerSearch = layout::RowSearch::kSeeded;
  opt.placerCandidates = gCandidates;
  opt.placerThreads = 4;
  for (auto _ : state) {
    const auto lay =
        layout::generateTwoStageLayout(tech060(), twoStageDesign(), opt, false);
    benchmark::DoNotOptimize(lay);
  }
}
BENCHMARK(BM_TwoStageRowPlacerSeeded)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Strip our own flag before google-benchmark sees (and rejects) it.
  int outArgc = 0;
  for (int i = 0; i < argc; ++i) {
    constexpr const char* kFlag = "--layout-candidates=";
    if (std::strncmp(argv[i], kFlag, std::strlen(kFlag)) == 0) {
      gCandidates = std::atoi(argv[i] + std::strlen(kFlag));
      if (gCandidates <= 0) {
        std::fprintf(stderr, "bad --layout-candidates\n");
        return 2;
      }
      continue;
    }
    argv[outArgc++] = argv[i];
  }
  argc = outArgc;

  const int failures = runSnapshot();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return failures == 0 ? 0 : 1;
}
