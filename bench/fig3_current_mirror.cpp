// Reproduces paper Fig. 3: a three-output current mirror with width ratios
// M1:M2:M3 = 1:3:6, generated as one matched stack with
//   * symmetric placement (every device centred on the stack mid-point),
//   * balanced current directions (Malavasi-Pandini style orientation),
//   * dummies at the row ends,
//   * electromigration-sized wires and contact counts for the high current
//     densities the paper assumes.
// Writes fig3_current_mirror.svg / .cif under examples/out/.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "layout/drc.hpp"
#include "layout/router.hpp"
#include "layout/stack.hpp"
#include "layout/writers.hpp"

namespace {

using namespace lo;
using namespace lo::layout;

StackSpec mirrorSpec() {
  StackSpec s;
  s.name = "fig3_mirror";
  s.type = tech::MosType::kNmos;
  s.unitWidth = 5e-6;
  s.drawnL = 1.2e-6;
  s.sourceNet = "gnd";
  s.dummyGateNet = "gnd";
  // High current densities, as in the paper's example.
  s.devices = {{"M1", 2, "d1", "gate", 0.5e-3},
               {"M2", 6, "d2", "gate", 1.5e-3},
               {"M3", 12, "d3", "gate", 3.0e-3}};
  s.emitWellAndSelect = true;
  return s;
}

void printFigure3() {
  const tech::Technology t = tech::Technology::generic060();
  const StackSpec spec = mirrorSpec();
  StackInfo info;
  Cell cell = generateStack(t, spec, &info);

  std::printf("\n=== Fig. 3: current mirror M1:M2:M3 = 1:3:6 ===\n");
  std::printf("finger sequence (arrows = current direction):\n  ");
  for (std::size_t i = 0; i < info.plan.fingers.size(); ++i) {
    const StackFinger& f = info.plan.fingers[i];
    if (f.device < 0) {
      std::printf("[dum] ");
    } else {
      std::printf("[%s%s] ", spec.devices[f.device].name.c_str(),
                  f.currentLeftToRight ? ">" : "<");
    }
  }
  std::printf("\n\nper-device matching metrics:\n");
  std::printf("%4s %8s %18s %22s %14s\n", "dev", "fingers", "centroid offset",
              "orientation imbalance", "drain strips");
  for (std::size_t d = 0; d < spec.devices.size(); ++d) {
    const StackDeviceMetrics& m = info.plan.metrics[d];
    std::printf("%4s %8d %15.2f px %22d %8d int/%d ext\n",
                spec.devices[d].name.c_str(), m.fingers, m.centroidOffset,
                m.orientationImbalance, m.internalDrainStrips, m.externalDrainStrips);
  }

  std::printf("\nreliability sizing (EM limit %.1f mA/um metal1):\n",
              t.layer(tech::Layer::kMetal1).emMaxAmpPerM / 1e3 * 1e-3 * 1e6);
  std::printf("%4s %12s %14s %16s\n", "dev", "current", "wire width", "contacts req'd");
  for (const StackDevice& dev : spec.devices) {
    std::printf("%4s %9.2f mA %11lld nm %16d\n", dev.name.c_str(), dev.current * 1e3,
                static_cast<long long>(
                    t.wireWidthForCurrent(tech::Layer::kMetal1, dev.current)),
                t.contactsForCurrent(dev.current));
  }
  std::printf("contacts per strip drawn: %d\n", info.contactsPerStrip);

  // Route the drain trunks with EM widths in the channels above and below
  // the stack, and add them to the artwork.
  const geom::Rect box = cell.bbox();
  const std::vector<Channel> channels = {
      {box.y0 - 30000, box.y0 - t.rules.metal1Spacing},
      {box.y1 + t.rules.metal1Spacing, box.y1 + 30000}};
  const RoutingResult routing = routeCell(
      t, cell,
      {{"d1", 0.5e-3}, {"d2", 1.5e-3}, {"d3", 3.0e-3}, {"gnd", 5.0e-3}, {"gate", 0.0}},
      channels, true);
  for (const RoutedNet& rn : routing.nets) {
    std::printf("routed %-5s trunk %5lld nm wide, %6.1f um long, %5.2f fF\n",
                rn.net.c_str(), static_cast<long long>(rn.trunkWidth),
                rn.trunkLength * 1e6, rn.capToGround * 1e15);
  }
  cell.shapes.merge(routing.wires, geom::Orient::kR0, 0, 0);

  const auto violations = runDrc(t, cell.shapes);
  std::printf("DRC: %zu violations\n", violations.size());

  writeFile(outputPath("fig3_current_mirror.svg"), toSvg(cell.shapes));
  writeFile(outputPath("fig3_current_mirror.cif"), toCif(cell.shapes, "FIG3MIRROR"));
  std::printf("wrote %s / .cif (%lld x %lld um)\n",
              outputPath("fig3_current_mirror.svg").c_str(),
              static_cast<long long>(cell.bbox().width() / 1000),
              static_cast<long long>(cell.bbox().height() / 1000));
}

void BM_GenerateMirrorStack(benchmark::State& state) {
  const tech::Technology t = tech::Technology::generic060();
  const StackSpec spec = mirrorSpec();
  for (auto _ : state) {
    StackInfo info;
    const Cell cell = generateStack(t, spec, &info);
    benchmark::DoNotOptimize(cell);
  }
}
BENCHMARK(BM_GenerateMirrorStack);

void BM_PlanStackOnly(benchmark::State& state) {
  const StackSpec spec = mirrorSpec();
  for (auto _ : state) {
    const StackPlan plan = planStack(spec);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_PlanStackOnly);

}  // namespace

int main(int argc, char** argv) {
  printFigure3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
