// Extension benchmark: batched many-scenario synthesis with the
// SweepDriver.
//
// The paper's speed claim ("sizing ... does not exceed two minutes",
// enabling "interactive exploration of wide variety of design space
// points") compounds once the engine is topology generic: independent
// (topology, spec, corner) jobs fan out across cores with per-job model /
// technology isolation.  This bench runs a mixed OTA + two-stage job grid
// at several corners, checks that the multi-threaded run matches the
// sequential one bit for bit, and reports the speed-up.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "core/sweep.hpp"

namespace {

using namespace lo;
using namespace lo::core;

std::vector<SweepJob> makeJobs() {
  std::vector<SweepJob> jobs;
  // Folded-cascode OTA across a GBW grid and the sign corners.
  for (double gbwMhz : {40.0, 65.0, 90.0}) {
    for (tech::ProcessCorner corner :
         {tech::ProcessCorner::kTypical, tech::ProcessCorner::kSlow,
          tech::ProcessCorner::kFast}) {
      SweepJob job;
      job.label = std::string("ota_") + std::to_string(static_cast<int>(gbwMhz)) +
                  "MHz_" + tech::cornerName(corner);
      job.specs.gbw = gbwMhz * 1e6;
      job.corner = corner;
      jobs.push_back(job);
    }
  }
  // Two-stage Miller OTA at its own targets.
  for (double gbwMhz : {20.0, 30.0}) {
    SweepJob job;
    job.label = std::string("two_stage_") + std::to_string(static_cast<int>(gbwMhz)) +
                "MHz_tt";
    job.options.topology = kTwoStageTopologyName;
    job.specs.gbw = gbwMhz * 1e6;
    jobs.push_back(job);
  }
  return jobs;
}

bool identical(const std::vector<SweepOutcome>& a, const std::vector<SweepOutcome>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].ok != b[i].ok || a[i].label != b[i].label) return false;
    if (std::memcmp(&a[i].result.measured, &b[i].result.measured,
                    sizeof(sizing::OtaPerformance)) != 0) {
      return false;
    }
    if (a[i].result.layoutCalls != b[i].result.layoutCalls) return false;
  }
  return true;
}

void printSweep() {
  const tech::Technology t = tech::Technology::generic060();
  const std::vector<SweepJob> jobs = makeJobs();
  const unsigned cores = std::thread::hardware_concurrency();

  std::printf("\n=== Batched synthesis sweep: %zu jobs, %u cores ===\n", jobs.size(),
              cores);

  const auto timeRun = [&](int threads, std::vector<SweepOutcome>& out) {
    const SweepDriver driver(t, threads);
    const auto start = std::chrono::steady_clock::now();
    out = driver.run(jobs);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
        .count();
  };

  std::vector<SweepOutcome> serial, threaded;
  const double tSerial = timeRun(1, serial);
  const double tThreaded = timeRun(static_cast<int>(cores), threaded);

  std::printf("%-22s %8s %10s %10s %10s %8s\n", "job", "calls", "GBW MHz", "PM deg",
              "power mW", "conv");
  for (const SweepOutcome& o : serial) {
    if (!o.ok) {
      std::printf("%-22s FAILED: %s\n", o.label.c_str(), o.error.c_str());
      continue;
    }
    std::printf("%-22s %8d %10.1f %10.1f %10.2f %8s\n", o.label.c_str(),
                o.result.layoutCalls, o.result.measured.gbwHz / 1e6,
                o.result.measured.phaseMarginDeg, o.result.measured.powerMw,
                o.result.parasiticConverged ? "yes" : "n/a");
  }

  std::printf("\n1 thread: %.2f s, %u threads: %.2f s  (speed-up %.1fx)\n", tSerial,
              cores, tThreaded, tSerial / tThreaded);
  std::printf("deterministic across thread counts: %s\n",
              identical(serial, threaded) ? "yes (bit-identical)" : "NO -- BUG");
}

void BM_SweepThreads(benchmark::State& state) {
  const tech::Technology t = tech::Technology::generic060();
  const std::vector<SweepJob> jobs = makeJobs();
  const SweepDriver driver(t, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const auto outcomes = driver.run(jobs);
    benchmark::DoNotOptimize(outcomes);
  }
}
BENCHMARK(BM_SweepThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  printSweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
