// Reproduces paper Table 1: the folded-cascode OTA synthesised under four
// levels of layout-parasitic knowledge, with the synthesised (predicted)
// value and the extracted-netlist simulation in brackets for every
// specification.  The paper's own numbers are printed alongside for shape
// comparison (absolute values differ: our substrate is a synthetic 0.6 um
// process and an in-repo simulator, not the authors' foundry kit).
//
// Input specs (paper): VDD=3.3 V, GBW=65 MHz, PM=65 deg, CL=3 pF.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/engine.hpp"

namespace {

using namespace lo;
using namespace lo::core;

struct PaperRow {
  const char* name;
  double v[4];  // Paper's synthesised values, cases 1-4.
  double m[4];  // Paper's extracted-simulation values.
};

// Table 1 of the paper, for reference in the printout.
const PaperRow kPaper[] = {
    {"DC gain (dB)", {70.1, 55.0, 66.1, 64.7}, {70.1, 56.59, 66.1, 64.7}},
    {"GBW (MHz)", {64.9, 66.5, 65.0, 65.8}, {58.1, 71.2, 62.6, 66.1}},
    {"Phase margin (deg)", {65.3, 65.4, 65.4, 65.15}, {56.3, 72.4, 64.4, 65.4}},
    {"Slew rate (V/us)", {94.0, 103.0, 93.3, 93.0}, {86.5, 98.1, 93.3, 94.4}},
    {"CMRR (dB)", {100.7, 76.9, 93.9, 91.6}, {100.7, 79.6, 93.9, 91.6}},
    {"Offset (mV)", {0.0, 0.0, 0.0, 0.0}, {0.0, -0.1, 0.0, 0.0}},
    {"Rout (MOhm)", {2.4, 0.38, 1.5, 1.23}, {2.4, 0.47, 1.47, 1.23}},
    {"Input noise (uV)", {83.9, 101.6, 83.3, 82.7}, {96.1, 85.6, 87.8, 85.8}},
    {"Power (mW)", {2.0, 2.4, 2.1, 2.1}, {2.0, 2.2, 2.1, 2.1}},
};

void printRow(const char* name, double scale, double sizing::OtaPerformance::*field,
              const EngineResult* results) {
  std::printf("%-22s", name);
  for (int c = 0; c < 4; ++c) {
    std::printf("  %8.2f (%8.2f)", results[c].predicted.*field * scale,
                results[c].measured.*field * scale);
  }
  std::printf("\n");
}

void printTable1() {
  const tech::Technology t = tech::Technology::generic060();
  const sizing::OtaSpecs specs;
  EngineResult results[4];
  const SizingCase cases[] = {SizingCase::kCase1, SizingCase::kCase2, SizingCase::kCase3,
                              SizingCase::kCase4};
  for (int c = 0; c < 4; ++c) {
    EngineOptions opt;
    opt.sizingCase = cases[c];
    const SynthesisEngine engine(t, opt);
    results[c] = engine.run(specs);
  }

  std::printf("\n=== Table 1: sizing, layout and simulation results ===\n");
  std::printf("specs: VDD=%.1f V, GBW=%.0f MHz, PM=%.0f deg, CL=%.0f pF\n", specs.vdd,
              specs.gbw / 1e6, specs.phaseMarginDeg, specs.cload * 1e12);
  std::printf("format: synthesised (extracted-netlist simulation)\n\n");
  std::printf("%-22s  %19s  %19s  %19s  %19s\n", "Specification", "Case 1", "Case 2",
              "Case 3", "Case 4");

  using P = sizing::OtaPerformance;
  printRow("DC gain (dB)", 1.0, &P::dcGainDb, results);
  printRow("GBW (MHz)", 1e-6, &P::gbwHz, results);
  printRow("Phase margin (deg)", 1.0, &P::phaseMarginDeg, results);
  printRow("Slew rate (V/us)", 1.0, &P::slewRateVPerUs, results);
  printRow("CMRR (dB)", 1.0, &P::cmrrDb, results);
  printRow("Offset (mV)", 1.0, &P::offsetMv, results);
  printRow("Rout (MOhm)", 1.0, &P::outputResistanceMOhm, results);
  printRow("Input noise (uV)", 1.0, &P::inputNoiseUv, results);
  printRow("Thermal (nV/rtHz)", 1.0, &P::thermalNoiseDensityNv, results);
  printRow("Flicker (uV/rtHz)", 1.0, &P::flickerNoiseUv, results);
  printRow("Power (mW)", 1.0, &P::powerMw, results);
  printRow("PSRR (dB) [ext]", 1.0, &P::psrrDb, results);
  printRow("Settling (ns) [ext]", 1.0, &P::settlingTimeNs, results);

  std::printf("\nlayout calls before parasitic convergence: case3=%d case4=%d"
              "  (paper: 3)\n",
              results[2].layoutCalls, results[3].layoutCalls);

  std::printf("\n--- paper's Table 1 for shape comparison ---\n");
  std::printf("%-22s  %19s  %19s  %19s  %19s\n", "Specification", "Case 1", "Case 2",
              "Case 3", "Case 4");
  for (const PaperRow& row : kPaper) {
    std::printf("%-22s", row.name);
    for (int c = 0; c < 4; ++c) std::printf("  %8.2f (%8.2f)", row.v[c], row.m[c]);
    std::printf("\n");
  }

  std::printf("\nshape checks (ours vs paper):\n");
  auto check = [](const char* what, bool ours) {
    std::printf("  %-68s %s\n", what, ours ? "REPRODUCED" : "DIFFERS");
  };
  check("case 1 extracted GBW misses the target",
        results[0].measured.gbwHz < specs.gbw * 0.97);
  check("case 4 extracted GBW closest to the target",
        std::abs(results[3].measured.gbwHz - specs.gbw) <
            std::abs(results[0].measured.gbwHz - specs.gbw));
  check("case 2 has the lowest DC gain",
        results[1].measured.dcGainDb < results[0].measured.dcGainDb &&
            results[1].measured.dcGainDb < results[2].measured.dcGainDb);
  check("case 2 has the lowest CMRR and Rout",
        results[1].measured.cmrrDb < results[0].measured.cmrrDb &&
            results[1].measured.outputResistanceMOhm <
                results[0].measured.outputResistanceMOhm);
  check("case 2 burns the most power",
        results[1].measured.powerMw >= results[0].measured.powerMw &&
            results[1].measured.powerMw >= results[2].measured.powerMw);
  check("case 4 prediction matches its extracted simulation (GBW within 4%)",
        std::abs(results[3].measured.gbwHz / results[3].predicted.gbwHz - 1.0) < 0.04);
}

void BM_SynthesisEngineCase(benchmark::State& state) {
  // The paper: "The sizing time for each case including layout calls does
  // not exceed two minutes."  Ours is measured here.
  const tech::Technology t = tech::Technology::generic060();
  EngineOptions opt;
  opt.sizingCase = static_cast<SizingCase>(state.range(0));
  const SynthesisEngine engine(t, opt);
  for (auto _ : state) {
    const EngineResult r = engine.run(sizing::OtaSpecs{});
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SynthesisEngineCase)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  printTable1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
