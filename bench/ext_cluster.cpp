// Cluster scaling snapshot: lorouter's shard-routed fan-out against a
// single losynthd, on the workload the router exists for -- a
// duplicate-heavy summary sweep over a small pool of design points, the
// shape a parameter sweep or a population-based optimiser produces.
//
// Three measurements, written to BENCH_cluster.json under examples/out/:
//   * aggregate warm throughput (jobs/s) of the same sweep through a
//     1-shard and an N-shard cluster, best of 3 -- the acceptance gate
//     demands >= 2x at 4 shards;
//   * routing overhead: microseconds per job for the router's key
//     derivation + ring lookup (the only per-job serial work the router
//     adds on the request path);
//   * peer-fill: a fresh N-shard cluster pointed at an already-warm
//     shared store must answer the whole sweep with zero cache misses --
//     every shard's first touch of a key promotes from the shared disk
//     store instead of recomputing (second acceptance gate).
//
// Needs a losynthd binary: --losynthd=PATH or the LOSYNTHD_BIN env var
// (CI passes the freshly built one).  Without it the cluster phases are
// skipped and the exit is 0, so the micro benchmarks stay usable alone.
//
// CI runs: ext_cluster --losynthd=... --cluster-jobs=600
//          --benchmark_filter=none
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "cluster/ring.hpp"
#include "cluster/router.hpp"
#include "layout/writers.hpp"
#include "service/cache.hpp"
#include "service/json.hpp"
#include "service/protocol.hpp"
#include "tech/technology.hpp"

namespace {

using namespace lo;
using service::Json;

std::string gLosynthd;   // --losynthd= or LOSYNTHD_BIN.
int gJobs = 2000;        // Sweep size; CI passes a smaller one.
int gPool = 8;           // Distinct design points behind those jobs.
int gShards = 4;         // Cluster width for the scaling measurement.

double secondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

/// The pool entry for slot `i`: case-1 folded-cascode points that differ
/// only in GBW, cheap to synthesise and distinct under the cache key.
Json poolEntry(int i) {
  Json spec = Json::object();
  spec.set("gbw", (71.0 + i) * 1e6);
  Json job = Json::object();
  job.set("case", 1);
  job.set("spec", std::move(spec));
  return job;
}

/// A duplicate-heavy summary sweep: `jobs` entries drawn round-robin from
/// the pool.  summary:true keeps the responses small -- results stay
/// addressable by cache_key -- so the measurement is job turnaround, not
/// result-body serialisation.
std::string sweepLine(int jobs) {
  Json arr = Json::array();
  for (int i = 0; i < jobs; ++i) arr.push(poolEntry(i % gPool));
  Json request = Json::object();
  request.set("op", "sweep");
  request.set("summary", true);
  request.set("jobs", std::move(arr));
  return request.dump();
}

/// Routers run in the cluster's shipping configuration: shared disk store
/// (peer-fill) plus per-shard write-ahead journals (crash recovery).  The
/// journal matters for the throughput claim, not just recovery: every
/// submission fsyncs one record before it is acknowledged, so per-job
/// durability cost is the scaling resource -- N shards fsync N journals
/// in parallel.  `tag` keeps each phase's journals separate.
cluster::RouterOptions routerOptions(int shards, const std::string& cacheDir,
                                     const std::string& journalTag) {
  cluster::RouterOptions options;
  options.workerArgv = {gLosynthd, "--threads", "2"};
  options.shards = shards;
  options.cacheDir = cacheDir;
  options.journalRoot = cacheDir + "_journal_" + journalTag;
  options.requestTimeoutSeconds = 600.0;
  return options;
}

struct Throughput {
  int shards = 0;
  double bestSeconds = 0.0;
  double jobsPerSecond = 0.0;
};

/// Best-of-3 of the full sweep through a fresh cluster.  Repetition 1
/// peer-fills each shard's memory tier from the shared store; 2 and 3 are
/// pure warm throughput, which is what best-of captures.
Throughput measureThroughput(int shards, const std::string& cacheDir,
                             const std::string& line) {
  cluster::ClusterRouter router(
      routerOptions(shards, cacheDir, "tput" + std::to_string(shards)));
  Throughput t;
  t.shards = shards;
  t.bestSeconds = 1e18;
  for (int rep = 0; rep < 3; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    const std::string response = router.handleLine(line);
    const double seconds = secondsSince(start);
    const Json parsed = Json::parse(response);
    if (!parsed.at("ok").asBool() ||
        parsed.at("outcomes").items().size() != static_cast<std::size_t>(gJobs)) {
      std::fprintf(stderr, "ext_cluster: sweep failed at %d shard(s)\n", shards);
      std::exit(1);
    }
    t.bestSeconds = std::min(t.bestSeconds, seconds);
  }
  t.jobsPerSecond = static_cast<double>(gJobs) / t.bestSeconds;
  return t;
}

/// Microseconds per job of router-side serial key work: canonical cache
/// key derivation plus the consistent-hash lookup.
double measureRoutingMicros() {
  const tech::Technology technology = tech::Technology::generic060();
  const std::string techPrint = service::ResultCache::techFingerprint(technology);
  cluster::ShardRing ring(gShards);
  std::vector<Json> entries;
  for (int i = 0; i < gPool; ++i) entries.push_back(poolEntry(i));
  const int reps = 20000;
  int sink = 0;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) {
    const service::JobRequest job =
        service::parseJobRequest(entries[static_cast<std::size_t>(i % gPool)]);
    const std::string key =
        service::ResultCache::keyFor(job.options, job.specs, job.corner, techPrint);
    sink += ring.ownerOf(key);
  }
  benchmark::DoNotOptimize(sink);
  return secondsSince(start) / reps * 1e6;
}

struct PeerFill {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t diskHits = 0;
};

/// A fresh N-shard cluster on the warm store: every key's first touch on
/// each shard must promote from disk (hit + disk_hit), never recompute.
PeerFill measurePeerFill(const std::string& cacheDir, const std::string& line) {
  cluster::ClusterRouter router(routerOptions(gShards, cacheDir, "peerfill"));
  const Json sweep = Json::parse(router.handleLine(line));
  if (!sweep.at("ok").asBool()) {
    std::fprintf(stderr, "ext_cluster: peer-fill sweep failed\n");
    std::exit(1);
  }
  const Json stats = Json::parse(router.handleLine(R"({"op":"stats"})"));
  const Json& cache = stats.at("stats").at("cluster").at("cache");
  PeerFill p;
  p.hits = cache.at("hits").asUint64();
  p.misses = cache.at("misses").asUint64();
  p.diskHits = cache.at("disk_hits").asUint64();
  return p;
}

/// Seconds from SIGKILLing the shard that owns a batch of in-flight jobs
/// to every job answering through one multiplexed wait: death detection,
/// respawn, journal replay, and the answers themselves.  The store is
/// warm, so this isolates the recovery machinery from synthesis cost.
double measureFailoverSeconds(const std::string& cacheDir) {
  cluster::ClusterRouter router(routerOptions(2, cacheDir, "failover"));
  Json ids = Json::array();
  int victim = -1;
  for (int i = 0; i < gPool; ++i) {
    Json job = poolEntry(i);
    job.set("op", "synthesize");
    job.set("async", true);
    job.set("summary", true);
    const Json ack = Json::parse(router.handleLine(job.dump()));
    if (!ack.at("ok").asBool()) {
      std::fprintf(stderr, "ext_cluster: failover submission failed\n");
      std::exit(1);
    }
    if (i == 0) victim = ack.at("shard").asInt(-1);
    ids.push(ack.at("id").asUint64());
  }
  router.killShard(victim);
  Json wait = Json::object();
  wait.set("op", "wait");
  wait.set("summary", true);
  wait.set("ids", std::move(ids));
  const auto start = std::chrono::steady_clock::now();
  const Json done = Json::parse(router.handleLine(wait.dump()));
  const double seconds = secondsSince(start);
  if (!done.at("ok").asBool() ||
      done.at("outcomes").items().size() != static_cast<std::size_t>(gPool)) {
    std::fprintf(stderr, "ext_cluster: multiplexed wait failed after the kill\n");
    std::exit(1);
  }
  for (const Json& outcome : done.at("outcomes").items()) {
    if (!outcome.at("ok").asBool()) {
      std::fprintf(stderr, "ext_cluster: a job was lost across the failover\n");
      std::exit(1);
    }
  }
  return seconds;
}

/// Seconds for "drain" to take the shard owning in-flight work out of the
/// ring: waiting out its jobs, re-pinning, and shutting the worker down.
/// Afterwards every id must still resolve -- the zero-loss gate.
double measureDrainSeconds(const std::string& cacheDir) {
  cluster::ClusterRouter router(routerOptions(3, cacheDir, "drainbench"));
  Json ids = Json::array();
  int victim = -1;
  for (int i = 0; i < gPool; ++i) {
    Json job = poolEntry(i);
    job.set("op", "synthesize");
    job.set("async", true);
    job.set("summary", true);
    const Json ack = Json::parse(router.handleLine(job.dump()));
    if (!ack.at("ok").asBool()) {
      std::fprintf(stderr, "ext_cluster: drain submission failed\n");
      std::exit(1);
    }
    if (i == 0) victim = ack.at("shard").asInt(-1);
    ids.push(ack.at("id").asUint64());
  }
  Json drain = Json::object();
  drain.set("op", "drain");
  drain.set("shard", victim);
  const auto start = std::chrono::steady_clock::now();
  const Json drained = Json::parse(router.handleLine(drain.dump()));
  const double seconds = secondsSince(start);
  if (!drained.at("ok").asBool()) {
    std::fprintf(stderr, "ext_cluster: drain under load failed\n");
    std::exit(1);
  }
  Json wait = Json::object();
  wait.set("op", "wait");
  wait.set("summary", true);
  wait.set("ids", std::move(ids));
  const Json done = Json::parse(router.handleLine(wait.dump()));
  if (!done.at("ok").asBool()) {
    std::fprintf(stderr, "ext_cluster: wait failed after the drain\n");
    std::exit(1);
  }
  for (const Json& outcome : done.at("outcomes").items()) {
    if (!outcome.at("ok").asBool()) {
      std::fprintf(stderr, "ext_cluster: a job was lost across the drain\n");
      std::exit(1);
    }
  }
  return seconds;
}

int runSnapshot() {
  if (gLosynthd.empty() || !std::filesystem::exists(gLosynthd)) {
    std::printf("ext_cluster: SKIP cluster phases (no losynthd; pass "
                "--losynthd=PATH or set LOSYNTHD_BIN)\n");
    return 0;
  }

  const std::filesystem::path scratch =
      std::filesystem::temp_directory_path() /
      ("ext_cluster_" + std::to_string(::getpid()));
  std::filesystem::remove_all(scratch);
  const std::string store = (scratch / "store").string();
  const std::string line = sweepLine(gJobs);

  // Warm the shared store once through a 1-shard cluster: after this,
  // every pool point is on disk and no later phase recomputes anything.
  {
    cluster::ClusterRouter warmer(routerOptions(1, store, "warm"));
    const Json warm = Json::parse(warmer.handleLine(sweepLine(gPool)));
    if (!warm.at("ok").asBool()) {
      std::fprintf(stderr, "ext_cluster: warm phase failed\n");
      return 1;
    }
  }

  const Throughput one = measureThroughput(1, store, line);
  const Throughput many = measureThroughput(gShards, store, line);
  const double speedup = many.jobsPerSecond / one.jobsPerSecond;
  const double routingMicros = measureRoutingMicros();
  const PeerFill peer = measurePeerFill(store, line);
  const double failoverSeconds = measureFailoverSeconds(store);
  const double drainSeconds = measureDrainSeconds(store);
  std::filesystem::remove_all(scratch);

  // The speedup gate is bounded by the machine: N shards can only compute
  // concurrently on N cores.  Demand the full 2x on any box with 4+ cores
  // (multi-core CI included -- even narrower than the cluster, four cores
  // leave enough parallel slack for 2x over one shard) and degrade only on
  // genuinely narrow boxes, where journal group-commit is the sole
  // parallel resource.  Both the measured and required numbers land in the
  // JSON so the trajectory is comparable across hosts.
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  const double requiredSpeedup =
      cores >= static_cast<unsigned>(gShards) || cores >= 4 ? 2.0
      : cores >= 2                                          ? 1.75
                                                            : 1.0;

  std::printf("\n=== ext_cluster: %d duplicate-heavy jobs over %d pool points ===\n",
              gJobs, gPool);
  std::printf("%8s %12s %14s\n", "shards", "best s", "jobs/s");
  std::printf("%8d %12.3f %14.0f\n", one.shards, one.bestSeconds, one.jobsPerSecond);
  std::printf("%8d %12.3f %14.0f\n", many.shards, many.bestSeconds, many.jobsPerSecond);
  std::printf("speedup: %.2fx at %d shards\n", speedup, gShards);
  std::printf("routing overhead: %.2f us/job (key + ring, serial in the router)\n",
              routingMicros);
  std::printf("peer-fill: hits=%llu disk_hits=%llu misses=%llu\n",
              static_cast<unsigned long long>(peer.hits),
              static_cast<unsigned long long>(peer.diskHits),
              static_cast<unsigned long long>(peer.misses));
  std::printf("failover recovery: %.3f s (kill -9 to all %d jobs answered)\n",
              failoverSeconds, gPool);
  std::printf("drain under load: %.3f s (shard out of the ring, zero loss)\n",
              drainSeconds);

  std::ostringstream out;
  out.precision(6);
  out << "{\n  \"bench\": \"ext_cluster\",\n  \"jobs\": " << gJobs
      << ",\n  \"pool\": " << gPool << ",\n  \"shards\": " << gShards
      << ",\n  \"samples\": [\n"
      << "    {\"shards\": " << one.shards << ", \"best_s\": " << one.bestSeconds
      << ", \"jobs_per_s\": " << one.jobsPerSecond << "},\n"
      << "    {\"shards\": " << many.shards << ", \"best_s\": " << many.bestSeconds
      << ", \"jobs_per_s\": " << many.jobsPerSecond << "}\n  ],\n"
      << "  \"speedup\": " << speedup
      << ",\n  \"required_speedup\": " << requiredSpeedup
      << ",\n  \"hardware_concurrency\": " << cores
      << ",\n  \"routing_us_per_job\": " << routingMicros
      << ",\n  \"peer_fill\": {\"hits\": " << peer.hits
      << ", \"disk_hits\": " << peer.diskHits << ", \"misses\": " << peer.misses
      << "},\n  \"failover_recovery_s\": " << failoverSeconds
      << ",\n  \"drain_s\": " << drainSeconds << "\n}\n";
  const std::string path = layout::outputPath("BENCH_cluster.json");
  layout::writeFile(path, out.str());
  std::printf("wrote %s\n", path.c_str());

  int failures = 0;
  if (speedup < requiredSpeedup) {
    std::printf("ACCEPTANCE FAIL: %.2fx aggregate warm throughput at %d shards "
                "(>= %.1fx required on %u core(s))\n",
                speedup, gShards, requiredSpeedup, cores);
    ++failures;
  }
  if (peer.misses != 0) {
    std::printf("ACCEPTANCE FAIL: %llu cache miss(es) against a fully warm "
                "shared store -- peer-fill recomputed work\n",
                static_cast<unsigned long long>(peer.misses));
    ++failures;
  }
  if (failures == 0) {
    std::printf("acceptance: %.2fx at %d shards (>= %.1fx on %u core(s)), "
                "zero misses on peer-fill\n",
                speedup, gShards, requiredSpeedup, cores);
  }
  return failures;
}

void BM_RingLookup(benchmark::State& state) {
  cluster::ShardRing ring(static_cast<int>(state.range(0)));
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.ownerOf("0123456789abcd" + std::to_string(i++ & 1023)));
  }
}
BENCHMARK(BM_RingLookup)->Arg(2)->Arg(4)->Arg(16);

void BM_RoutingKey(benchmark::State& state) {
  const tech::Technology technology = tech::Technology::generic060();
  const std::string techPrint = service::ResultCache::techFingerprint(technology);
  const Json entry = poolEntry(0);
  for (auto _ : state) {
    const service::JobRequest job = service::parseJobRequest(entry);
    benchmark::DoNotOptimize(service::ResultCache::keyFor(
        job.options, job.specs, job.corner, techPrint));
  }
}
BENCHMARK(BM_RoutingKey)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
#ifdef LOSYNTHD_BIN_PATH
  gLosynthd = LOSYNTHD_BIN_PATH;  // Baked-in sibling build; overridable below.
#endif
  if (const char* env = std::getenv("LOSYNTHD_BIN")) gLosynthd = env;
  // Strip our own flags before google-benchmark sees (and rejects) them.
  int outArgc = 0;
  for (int i = 0; i < argc; ++i) {
    const auto eat = [&](const char* flag, auto apply) {
      if (std::strncmp(argv[i], flag, std::strlen(flag)) == 0) {
        apply(argv[i] + std::strlen(flag));
        return true;
      }
      return false;
    };
    if (eat("--losynthd=", [](const char* v) { gLosynthd = v; })) continue;
    if (eat("--cluster-jobs=", [](const char* v) { gJobs = std::atoi(v); })) continue;
    if (eat("--cluster-pool=", [](const char* v) { gPool = std::atoi(v); })) continue;
    if (eat("--cluster-shards=", [](const char* v) { gShards = std::atoi(v); })) continue;
    argv[outArgc++] = argv[i];
  }
  argc = outArgc;
  if (gJobs <= 0 || gPool <= 0 || gShards <= 0) {
    std::fprintf(stderr, "bad --cluster-jobs/--cluster-pool/--cluster-shards\n");
    return 2;
  }

  const int failures = runSnapshot();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return failures == 0 ? 0 : 1;
}
