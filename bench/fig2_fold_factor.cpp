// Reproduces paper Fig. 2: the capacitance reduction factor F versus the
// number of folds Nf for the three diffusion configurations
//   (a) even Nf, terminal on internal strips only,
//   (b) even Nf, terminal on external strips,
//   (c) odd Nf.
// Also reports the exact drawn junction figures behind the factor and
// benchmarks the fold-planning machinery.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "device/folding.hpp"
#include "tech/technology.hpp"

namespace {

using namespace lo;

void printFigure2() {
  std::printf("\n=== Fig. 2: capacitance reduction factor F(Nf) ===\n");
  std::printf("%4s  %12s  %12s  %12s\n", "Nf", "(a) internal", "(b) external",
              "(c) odd");
  for (int nf = 1; nf <= 20; ++nf) {
    std::printf("%4d", nf);
    if (nf > 1 && nf % 2 == 0) {
      std::printf("  %12.4f  %12.4f  %12s",
                  device::capReductionFactor(nf, device::DiffusionPosition::kInternal),
                  device::capReductionFactor(nf, device::DiffusionPosition::kExternal), "-");
    } else {
      std::printf("  %12s  %12s  %12.4f", "-", "-",
                  device::capReductionFactor(nf, device::DiffusionPosition::kExternal));
    }
    std::printf("\n");
  }

  // Exact drawn junction capacitance for a 60 um device, showing that the
  // drawn geometry tracks the abstract factor.
  const tech::Technology t = tech::Technology::generic060();
  std::printf("\nDrawn drain junction of a 60 um NMOS (cj=%.2f fF/um^2):\n",
              t.nmos.cj * 1e3);
  std::printf("%4s  %10s  %10s  %8s\n", "Nf", "AD [um^2]", "PD [um]", "style");
  for (int nf : {1, 2, 4, 6, 8, 12}) {
    device::MosGeometry geo;
    geo.l = 1e-6;
    const device::FoldPlan plan =
        device::planFoldsExact(t.rules, 60e-6, nf, device::FoldStyle::kDrainInternal);
    device::applyDiffusionGeometry(t.rules, plan, geo);
    std::printf("%4d  %10.2f  %10.2f  %8s\n", nf, geo.ad * 1e12, geo.pd * 1e6,
                plan.drainInternal ? "internal" : "ends");
  }
}

void BM_PlanFolds(benchmark::State& state) {
  const tech::Technology t = tech::Technology::generic060();
  for (auto _ : state) {
    const device::FoldPlan plan = device::planFolds(
        t.rules, 60e-6, 10e-6, device::FoldStyle::kDrainInternal);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_PlanFolds);

void BM_DiffusionGeometry(benchmark::State& state) {
  const tech::Technology t = tech::Technology::generic060();
  const device::FoldPlan plan = device::planFoldsExact(
      t.rules, 60e-6, static_cast<int>(state.range(0)), device::FoldStyle::kDrainInternal);
  device::MosGeometry geo;
  geo.l = 1e-6;
  for (auto _ : state) {
    device::applyDiffusionGeometry(t.rules, plan, geo);
    benchmark::DoNotOptimize(geo);
  }
}
BENCHMARK(BM_DiffusionGeometry)->Arg(2)->Arg(8)->Arg(16);

}  // namespace

int main(int argc, char** argv) {
  printFigure2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
