// Extension benchmark: the two-stage Miller OTA through the same
// topology-generic engine -- the paper's section-4 claim that the tool's
// hierarchy "simplifies the addition of new topologies", measured.
//
// Prints the four-case comparison for the second topology and benchmarks
// its flow; writes two_stage_ota.svg under examples/out/.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/engine.hpp"
#include "core/two_stage_topology.hpp"
#include "layout/writers.hpp"

namespace {

using namespace lo;
using namespace lo::core;

void printTwoStage() {
  const tech::Technology t = tech::Technology::generic060();
  sizing::OtaSpecs specs;
  specs.gbw = 30e6;

  std::printf("\n=== Extension: two-stage Miller OTA through the same engine ===\n");
  std::printf("specs: GBW %.0f MHz, PM %.0f deg, CL %.0f pF\n\n", specs.gbw / 1e6,
              specs.phaseMarginDeg, specs.cload * 1e12);
  std::printf("%-8s %10s %12s %12s %10s %10s %8s\n", "case", "calls", "GBW syn",
              "GBW meas", "PM meas", "power mW", "gain dB");

  for (SizingCase c : {SizingCase::kCase1, SizingCase::kCase2, SizingCase::kCase4}) {
    EngineOptions opt;
    opt.topology = kTwoStageTopologyName;
    opt.sizingCase = c;
    const SynthesisEngine engine(t, opt);
    TwoStageTopology topo(t, engine.model());
    const EngineResult r = engine.run(topo, specs);
    std::printf("%-8s %10d %9.2f MHz %9.2f MHz %10.1f %10.2f %8.1f\n", sizingCaseName(c),
                r.layoutCalls, r.predicted.gbwHz / 1e6, r.measured.gbwHz / 1e6,
                r.measured.phaseMarginDeg, r.measured.powerMw, r.measured.dcGainDb);
    if (c != SizingCase::kCase4) continue;

    const auto& lay = topo.layout();
    const auto& design = topo.sizingResult().design;
    std::printf("\ncase-4 layout: %.1f x %.1f um, CC drawn %.3f pF (target %.3f), "
                "RZ drawn %.0f ohm (target %.0f)\n",
                lay.width / 1e3, lay.height / 1e3, lay.ccInfo.drawnFarads * 1e12,
                design.cc * 1e12, lay.rzInfo.drawnOhms, design.rz);
    std::printf("pair matching: centroid offsets %.2f / %.2f, imbalance %d / %d\n",
                lay.pairPlan.metrics[0].centroidOffset,
                lay.pairPlan.metrics[1].centroidOffset,
                lay.pairPlan.metrics[0].orientationImbalance,
                lay.pairPlan.metrics[1].orientationImbalance);
    layout::writeFile(layout::outputPath("two_stage_ota.svg"),
                      layout::toSvg(lay.cell.shapes));
    std::printf("wrote %s\n", layout::outputPath("two_stage_ota.svg").c_str());
  }
}

void BM_TwoStageEngineCase4(benchmark::State& state) {
  const tech::Technology t = tech::Technology::generic060();
  EngineOptions opt;
  opt.topology = kTwoStageTopologyName;
  sizing::OtaSpecs specs;
  specs.gbw = 30e6;
  const SynthesisEngine engine(t, opt);
  for (auto _ : state) {
    const EngineResult r = engine.run(specs);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_TwoStageEngineCase4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  printTwoStage();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
