// Extension benchmark: write-ahead journal replay cost at restart.
//
// A crashed losynthd's reboot replays its job journal before serving, so
// replay time is boot latency.  Setup (untimed) writes synthetic journals
// of growing record counts -- every submitted record carries a fully
// serialised JobRequest, and half the jobs also carry a finished record,
// the shape a mid-batch crash leaves.  The timed region is
// JobJournal::replayFile: frame parsing, checksum verification and the
// pending-job digest.  An acceptance check first proves the digest is
// exact (pending == submitted - finished) so the numbers describe a
// correct replay, not a fast wrong one.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "service/journal.hpp"
#include "service/scheduler.hpp"
#include "service/serialize.hpp"

namespace {

using namespace lo;

/// Builds a journal with `records` submitted jobs, every even one
/// finished; returns the log path.  fsync is off: setup cost, not replay
/// cost, is what it would dominate.
std::string journalWithRecords(int records) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("lo_bench_recover_" + std::to_string(records));
  std::filesystem::remove_all(dir);
  service::JournalOptions options;
  options.dir = dir.string();
  options.fsyncEachRecord = false;
  service::JobJournal journal(options);
  (void)journal.replay();
  for (int i = 0; i < records; ++i) {
    service::JobRequest request;
    request.label = "bench" + std::to_string(i);
    request.options.sizingCase = core::SizingCase::kCase1;
    request.specs.gbw = 40e6 + 1e5 * i;
    service::JournalRecord rec;
    rec.type = service::JournalRecordType::kSubmitted;
    rec.id = static_cast<std::uint64_t>(i + 1);
    rec.cacheKey = "key" + std::to_string(i);
    rec.job = service::toJson(request);
    journal.append(rec);
    if (i % 2 == 0) {
      service::JournalRecord fin;
      fin.type = service::JournalRecordType::kFinished;
      fin.id = rec.id;
      fin.state = "done";
      fin.cacheKey = rec.cacheKey;
      journal.append(fin);
    }
  }
  return (dir / "journal.wal").string();
}

bool replayDigestIsExact() {
  const int records = 1000;
  const std::string path = journalWithRecords(records);
  const service::JournalReplay replay = service::JobJournal::replayFile(path);
  const std::uint64_t finished = (records + 1) / 2;
  const bool ok = replay.records.size() == records + finished &&
                  replay.finished == finished &&
                  replay.pending.size() == records - finished &&
                  !replay.tornTail;
  std::printf("replay digest over %d jobs: %zu frames, %llu finished, "
              "%zu pending -- %s\n",
              records, replay.records.size(),
              static_cast<unsigned long long>(replay.finished),
              replay.pending.size(), ok ? "exact" : "WRONG");
  return ok;
}

void BM_JournalReplay(benchmark::State& state) {
  const int records = static_cast<int>(state.range(0));
  const std::string path = journalWithRecords(records);
  std::uint64_t pending = 0;
  for (auto _ : state) {
    const service::JournalReplay replay = service::JobJournal::replayFile(path);
    pending += replay.pending.size();
  }
  benchmark::DoNotOptimize(pending);
  // Items = frames parsed per pass (every even job adds a finished frame).
  state.SetItemsProcessed(state.iterations() *
                          (records + (records + 1) / 2));
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(std::filesystem::file_size(path)));
}
BENCHMARK(BM_JournalReplay)->Arg(10)->Arg(100)->Arg(1000)->Arg(5000);

void BM_JournalAppend(benchmark::State& state) {
  // The submit-path cost a journalled scheduler adds per job (fsync off,
  // so this is the framing + serialisation floor, not disk latency).
  const auto dir =
      std::filesystem::temp_directory_path() / "lo_bench_recover_append";
  std::filesystem::remove_all(dir);
  service::JournalOptions options;
  options.dir = dir.string();
  options.fsyncEachRecord = false;
  service::JobJournal journal(options);
  (void)journal.replay();
  service::JobRequest request;
  request.options.sizingCase = core::SizingCase::kCase1;
  service::JournalRecord rec;
  rec.type = service::JournalRecordType::kSubmitted;
  rec.cacheKey = "key";
  rec.job = service::toJson(request);
  std::uint64_t id = 0;
  for (auto _ : state) {
    rec.id = ++id;
    journal.append(rec);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_JournalAppend);

}  // namespace

int main(int argc, char** argv) {
  const bool ok = replayDigestIsExact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return ok ? 0 : 1;
}
