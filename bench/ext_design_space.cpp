// Extension benchmark: design-space exploration.
//
// "The fact that the sizing process is very fast and highly accurate allows
// interactive exploration of wide variety of design space points" (paper,
// section 4).  Sweeps the GBW target and the load capacitance through the
// full case-4 engine and reports how power, current, device sizes, layout
// area and the extracted performance scale, plus a temperature sweep of the
// finished design.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/engine.hpp"
#include "core/ota_topology.hpp"
#include "sizing/verify.hpp"

namespace {

using namespace lo;
using namespace lo::core;

void printDesignSpace() {
  const tech::Technology t = tech::Technology::generic060();
  const SynthesisEngine engine(t, EngineOptions{});

  std::printf("\n=== Design-space sweep (full case-4 engine per point) ===\n");
  std::printf("%8s %10s %10s %10s %12s %10s %10s\n", "GBW MHz", "Itail uA", "Wpair um",
              "power mW", "area mm^2", "GBW meas", "PM meas");
  for (double gbwMhz : {20.0, 35.0, 50.0, 65.0, 80.0, 100.0}) {
    sizing::OtaSpecs specs;
    specs.gbw = gbwMhz * 1e6;
    FoldedCascodeOtaTopology topo(t, engine.model());
    const EngineResult r = engine.run(topo, specs);
    const auto& design = topo.sizingResult().design;
    const auto& lay = topo.layout();
    std::printf("%8.0f %10.1f %10.1f %10.2f %12.5f %10.1f %10.1f\n", gbwMhz,
                design.tailCurrent * 1e6, design.inputPair.w * 1e6,
                r.measured.powerMw, (lay.width / 1e6) * (lay.height / 1e6),
                r.measured.gbwHz / 1e6, r.measured.phaseMarginDeg);
  }

  std::printf("\nload sweep at 65 MHz:\n%8s %10s %10s %10s\n", "CL pF", "Itail uA",
              "power mW", "GBW meas");
  for (double clPf : {1.0, 2.0, 3.0, 5.0, 8.0}) {
    sizing::OtaSpecs specs;
    specs.cload = clPf * 1e-12;
    FoldedCascodeOtaTopology topo(t, engine.model());
    const EngineResult r = engine.run(topo, specs);
    std::printf("%8.1f %10.1f %10.2f %10.1f\n", clPf,
                topo.sizingResult().design.tailCurrent * 1e6, r.measured.powerMw,
                r.measured.gbwHz / 1e6);
  }

  // Temperature sweep of one finished design (verification only).
  std::printf("\ntemperature sweep of the 65 MHz design:\n%8s %10s %10s %10s\n",
              "T degC", "GBW MHz", "gain dB", "noise uV");
  FoldedCascodeOtaTopology topo(t, engine.model());
  (void)engine.run(topo, sizing::OtaSpecs{});
  for (double celsius : {-20.0, 27.0, 85.0, 125.0}) {
    tech::Technology warm = t;
    warm.temperature = celsius + 273.15;
    sizing::OtaVerifier verifier(warm, engine.model());
    const auto m = verifier.verify(topo.extractedDesign(), &topo.layout().parasitics);
    std::printf("%8.0f %10.1f %10.1f %10.1f\n", celsius, m.gbwHz / 1e6, m.dcGainDb,
                m.inputNoiseUv);
  }
}

void BM_DesignPoint(benchmark::State& state) {
  const tech::Technology t = tech::Technology::generic060();
  sizing::OtaSpecs specs;
  specs.gbw = static_cast<double>(state.range(0)) * 1e6;
  const SynthesisEngine engine(t, EngineOptions{});
  for (auto _ : state) {
    const EngineResult r = engine.run(specs);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_DesignPoint)->Arg(30)->Arg(65)->Arg(100)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  printDesignSpace();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
