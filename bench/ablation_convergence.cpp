// Convergence study (paper section 5: "Three calls of the layout tool were
// needed before parasitic convergence").
//
// Traces the per-iteration parasitic capacitances of the sizing <-> layout
// loop for cases 3 and 4, sweeps the convergence tolerance, and benchmarks
// the whole engine (paper: < 2 minutes per case on their machine).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/engine.hpp"
#include "sizing/ota_sizer.hpp"

namespace {

using namespace lo;
using namespace lo::core;

void printConvergence() {
  const tech::Technology t = tech::Technology::generic060();
  const sizing::OtaSpecs specs;

  std::printf("\n=== Parasitic convergence of the sizing <-> layout loop ===\n");
  for (SizingCase c : {SizingCase::kCase3, SizingCase::kCase4}) {
    EngineOptions opt;
    opt.sizingCase = c;
    const SynthesisEngine engine(t, opt);
    const EngineResult r = engine.run(specs);
    std::printf("\n%s: %d layout calls, converged=%s\n", sizingCaseName(c),
                r.layoutCalls, r.parasiticConverged ? "yes" : "no");
    std::printf("%6s", "call");
    for (const std::string& net : r.criticalNets) {
      std::printf(" %9s fF", ("C(" + net + ")").c_str());
    }
    std::printf(" %12s %12s\n", "Itail uA", "Wpair um");
    for (const EngineIteration& it : r.iterations) {
      std::printf("%6d", it.layoutCall);
      for (double cap : it.netCaps) std::printf(" %12.2f", cap * 1e15);
      std::printf(" %12.1f %12.1f\n", it.primaryCurrent * 1e6, it.pairWidth * 1e6);
    }
  }

  std::printf("\ntolerance sweep (case 4):\n%10s %14s %12s\n", "tol", "layout calls",
              "GBW meas MHz");
  for (double tol : {0.10, 0.05, 0.02, 0.01, 0.005}) {
    EngineOptions opt;
    opt.sizingCase = SizingCase::kCase4;
    opt.convergenceTol = tol;
    const SynthesisEngine engine(t, opt);
    const EngineResult r = engine.run(specs);
    std::printf("%10.3f %14d %12.2f\n", tol, r.layoutCalls, r.measured.gbwHz / 1e6);
  }
}

void BM_FullEngineCase4(benchmark::State& state) {
  const tech::Technology t = tech::Technology::generic060();
  EngineOptions opt;
  opt.sizingCase = SizingCase::kCase4;
  const SynthesisEngine engine(t, opt);
  for (auto _ : state) {
    const EngineResult r = engine.run(sizing::OtaSpecs{});
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_FullEngineCase4)->Unit(benchmark::kMillisecond);

void BM_SizingPassOnly(benchmark::State& state) {
  const tech::Technology t = tech::Technology::generic060();
  const auto model = device::MosModel::create("ekv");
  sizing::OtaSizer sizer(t, *model);
  for (auto _ : state) {
    const auto r = sizer.size(sizing::OtaSpecs{}, sizing::SizingPolicy::case2());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SizingPassOnly)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  printConvergence();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
