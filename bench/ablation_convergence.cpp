// Convergence study (paper section 5: "Three calls of the layout tool were
// needed before parasitic convergence").
//
// Traces the per-iteration parasitic capacitances of the sizing <-> layout
// loop for cases 3 and 4, sweeps the convergence tolerance, and benchmarks
// the whole flow (paper: < 2 minutes per case on their machine).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/flow.hpp"

namespace {

using namespace lo;
using namespace lo::core;

void printConvergence() {
  const tech::Technology t = tech::Technology::generic060();
  const sizing::OtaSpecs specs;

  std::printf("\n=== Parasitic convergence of the sizing <-> layout loop ===\n");
  for (SizingCase c : {SizingCase::kCase3, SizingCase::kCase4}) {
    FlowOptions opt;
    opt.sizingCase = c;
    SynthesisFlow flow(t, opt);
    const FlowResult r = flow.run(specs);
    std::printf("\n%s: %d layout calls, converged=%s\n", sizingCaseName(c),
                r.layoutCalls, r.parasiticConverged ? "yes" : "no");
    std::printf("%6s %12s %12s %12s %12s %12s\n", "call", "C(x1) fF", "C(out) fF",
                "C(tail) fF", "Itail uA", "Wpair um");
    for (const FlowIteration& it : r.iterations) {
      std::printf("%6d %12.2f %12.2f %12.2f %12.1f %12.1f\n", it.layoutCall,
                  it.capX1 * 1e15, it.capOut * 1e15, it.capTail * 1e15,
                  it.tailCurrent * 1e6, it.pairWidth * 1e6);
    }
  }

  std::printf("\ntolerance sweep (case 4):\n%10s %14s %12s\n", "tol", "layout calls",
              "GBW meas MHz");
  for (double tol : {0.10, 0.05, 0.02, 0.01, 0.005}) {
    FlowOptions opt;
    opt.sizingCase = SizingCase::kCase4;
    opt.convergenceTol = tol;
    SynthesisFlow flow(t, opt);
    const FlowResult r = flow.run(specs);
    std::printf("%10.3f %14d %12.2f\n", tol, r.layoutCalls, r.measured.gbwHz / 1e6);
  }
}

void BM_FullFlowCase4(benchmark::State& state) {
  const tech::Technology t = tech::Technology::generic060();
  FlowOptions opt;
  opt.sizingCase = SizingCase::kCase4;
  SynthesisFlow flow(t, opt);
  for (auto _ : state) {
    const FlowResult r = flow.run(sizing::OtaSpecs{});
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_FullFlowCase4)->Unit(benchmark::kMillisecond);

void BM_SizingPassOnly(benchmark::State& state) {
  const tech::Technology t = tech::Technology::generic060();
  const auto model = device::MosModel::create("ekv");
  sizing::OtaSizer sizer(t, *model);
  for (auto _ : state) {
    const auto r = sizer.size(sizing::OtaSpecs{}, sizing::SizingPolicy::case2());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SizingPassOnly)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  printConvergence();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
