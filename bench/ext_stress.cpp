// Extension benchmark: the service stack under concurrent fault-injected
// load (the lostress soak as an acceptance study).
//
// Two short soaks run over the in-process daemon, both with 4 client
// threads on a 2-worker scheduler:
//   clean    -- no fault plan; every invariant must hold and no transport
//               errors may occur;
//   faulted  -- the `basic` plan (every site at 10%): transient engine
//               errors, deadline overruns, cache-store write failures and
//               truncated responses all fire, and the invariants must
//               STILL hold -- no lost jobs, monotone stats, coherent cache
//               accounting, bounded drain.
// Both soaks cap each client at a fixed request count, so the workload --
// and the clean soak's request total -- is reproducible from the seed.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "tech/technology.hpp"
#include "testkit/soak.hpp"

namespace {

using namespace lo;

testkit::SoakOptions baseOptions() {
  testkit::SoakOptions options;
  options.seed = 1;
  options.clients = 4;
  options.schedulerThreads = 2;
  options.durationSeconds = 30.0;  // Generous; the request cap ends the soak.
  options.maxRequestsPerClient = 40;
  return options;
}

void printReport(const char* name, const testkit::SoakReport& report) {
  std::uint64_t faults = 0;
  for (const auto& [site, count] : report.faultsFired) faults += count;
  std::printf("%-8s %5llu requests in %.2fs (%.0f req/s), %llu jobs, "
              "%llu faults, %llu transport errors, %zu violation(s)\n",
              name, static_cast<unsigned long long>(report.requests),
              report.elapsedSeconds,
              report.elapsedSeconds > 0 ? static_cast<double>(report.requests) /
                                              report.elapsedSeconds
                                        : 0.0,
              static_cast<unsigned long long>(report.trackedJobs),
              static_cast<unsigned long long>(faults),
              static_cast<unsigned long long>(report.transportErrors),
              report.violations.size());
  for (const std::string& v : report.violations) {
    std::printf("  VIOLATION: %s\n", v.c_str());
  }
}

bool runStressStudy() {
  const tech::Technology technology = tech::Technology::generic060();

  std::printf("\n=== Service soak: 4 clients x 40 requests, 2 workers ===\n");

  testkit::SoakOptions clean = baseOptions();
  clean.faults = testkit::FaultPlanOptions::none(clean.seed);
  const testkit::SoakReport cleanReport = testkit::runSoak(technology, clean);
  printReport("clean:", cleanReport);

  testkit::SoakOptions faulted = baseOptions();
  faulted.faults = testkit::FaultPlanOptions::basic(faulted.seed);
  const testkit::SoakReport faultedReport = testkit::runSoak(technology, faulted);
  printReport("faulted:", faultedReport);

  const std::uint64_t expected =
      static_cast<std::uint64_t>(clean.clients) *
      static_cast<std::uint64_t>(clean.maxRequestsPerClient);
  const bool requestsExact = cleanReport.requests == expected &&
                             faultedReport.requests == expected;
  std::printf("request totals reproducible from the cap (%llu each): %s\n",
              static_cast<unsigned long long>(expected),
              requestsExact ? "yes" : "NO -- BUG");
  std::printf("faults actually fired under the basic plan: %s\n",
              faultedReport.faultsFired.empty() ? "NO -- BUG" : "yes");

  const bool ok = cleanReport.ok() && cleanReport.transportErrors == 0 &&
                  faultedReport.ok() && !faultedReport.faultsFired.empty() &&
                  requestsExact;
  std::printf("ext_stress acceptance: %s\n", ok ? "PASS" : "FAIL");
  return ok;
}

void BM_FaultDecision(benchmark::State& state) {
  const testkit::FaultPlan plan(testkit::FaultPlanOptions::basic(1));
  std::uint64_t op = 0, fired = 0;
  for (auto _ : state) {
    fired += plan.fires(testkit::FaultSite::kEngineTransient, op++) ? 1 : 0;
  }
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FaultDecision);

}  // namespace

int main(int argc, char** argv) {
  const bool ok = runStressStudy();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return ok ? 0 : 1;
}
