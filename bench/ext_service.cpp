// Extension benchmark: the synthesis job service under duplicate-heavy
// load (the sweep-with-overlapping-inputs pattern that motivates the
// content-addressed cache).
//
// A 16-job batch with 4 distinct design points (each repeated 4x) runs
// three ways:
//   cold  -- empty cache; single-flight coalescing still collapses the
//            in-flight duplicates, so each distinct point runs once;
//   warm  -- same scheduler again; every job is a cache hit;
//   disk  -- a fresh scheduler pointed at the cold run's on-disk store;
//            every job is a disk hit.
// The checks: warm throughput must be >= 10x cold, and every run must
// return byte-identical results (FNV hash over the canonical JSON).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "service/scheduler.hpp"
#include "service/serialize.hpp"

namespace {

using namespace lo;
using namespace lo::service;

std::vector<JobRequest> makeBatch() {
  std::vector<JobRequest> unique;
  {
    JobRequest job;
    job.label = "ota_40MHz_tt";
    job.specs.gbw = 40e6;
    unique.push_back(job);
  }
  {
    JobRequest job;
    job.label = "ota_65MHz_tt";
    unique.push_back(job);
  }
  {
    JobRequest job;
    job.label = "ota_65MHz_ss";
    job.corner = tech::ProcessCorner::kSlow;
    unique.push_back(job);
  }
  {
    JobRequest job;
    job.label = "two_stage_30MHz_tt";
    job.options.topology = core::kTwoStageTopologyName;
    job.specs.gbw = 30e6;
    unique.push_back(job);
  }
  std::vector<JobRequest> batch;
  for (int repeat = 0; repeat < 4; ++repeat) {
    for (const JobRequest& job : unique) batch.push_back(job);
  }
  return batch;  // 16 jobs, 4 distinct.
}

std::vector<std::uint64_t> resultHashes(const std::vector<JobStatus>& statuses) {
  std::vector<std::uint64_t> hashes;
  hashes.reserve(statuses.size());
  for (const JobStatus& status : statuses) {
    hashes.push_back(status.state == JobState::kDone
                         ? ResultCache::fnv1a(toJson(status.result).dump())
                         : 0);
  }
  return hashes;
}

bool runServiceStudy() {
  const tech::Technology technology = tech::Technology::generic060();
  const std::vector<JobRequest> batch = makeBatch();

  const std::filesystem::path diskDir =
      std::filesystem::temp_directory_path() / "lo_ext_service_cache";
  std::filesystem::remove_all(diskDir);

  SchedulerOptions options;
  options.cache.diskDir = diskDir.string();

  std::printf("\n=== Synthesis service: duplicate-heavy batch (%zu jobs, %zu distinct) ===\n",
              batch.size(), batch.size() / 4);

  const auto timeBatch = [&](JobScheduler& scheduler, std::vector<JobStatus>& out) {
    const auto start = std::chrono::steady_clock::now();
    out = scheduler.runBatch(batch);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
        .count();
  };

  std::vector<JobStatus> cold, warm, disk;
  double tCold = 0, tWarm = 0, tDisk = 0;
  MetricsSnapshot coldMetrics;
  CacheStats coldCache;
  {
    JobScheduler scheduler(technology, options);
    tCold = timeBatch(scheduler, cold);
    coldMetrics = scheduler.metrics();
    coldCache = scheduler.cacheStats();
    tWarm = timeBatch(scheduler, warm);
  }
  {
    JobScheduler scheduler(technology, options);  // Fresh memory, same disk.
    tDisk = timeBatch(scheduler, disk);
  }

  bool ok = true;
  for (const auto* phase : {&cold, &warm, &disk}) {
    for (const JobStatus& status : *phase) {
      if (status.state != JobState::kDone) {
        std::printf("JOB FAILED: %s: %s\n", status.label.c_str(),
                    status.error.c_str());
        ok = false;
      }
    }
  }

  const auto coldHashes = resultHashes(cold);
  const bool warmIdentical = coldHashes == resultHashes(warm);
  const bool diskIdentical = coldHashes == resultHashes(disk);
  const double speedup = tWarm > 0 ? tCold / tWarm : 0;

  std::printf("cold:  %.3f s  (%zu engine runs, %llu coalesced duplicates)\n",
              tCold, cold.size() - static_cast<std::size_t>(coldMetrics.coalesced) -
                         static_cast<std::size_t>(coldCache.hits),
              static_cast<unsigned long long>(coldMetrics.coalesced));
  std::printf("warm:  %.5f s  -> speed-up %.0fx (require >= 10x)\n", tWarm, speedup);
  std::printf("disk:  %.5f s  (fresh process, on-disk store)\n", tDisk);
  std::printf("warm results byte-identical to cold: %s\n",
              warmIdentical ? "yes" : "NO -- BUG");
  std::printf("disk results byte-identical to cold: %s\n",
              diskIdentical ? "yes" : "NO -- BUG");

  ok = ok && warmIdentical && diskIdentical && speedup >= 10.0;
  std::printf("ext_service acceptance: %s\n", ok ? "PASS" : "FAIL");
  std::filesystem::remove_all(diskDir);
  return ok;
}

void BM_WarmBatch(benchmark::State& state) {
  const tech::Technology technology = tech::Technology::generic060();
  const std::vector<JobRequest> batch = makeBatch();
  JobScheduler scheduler(technology, SchedulerOptions{});
  (void)scheduler.runBatch(batch);  // Prime the cache once.
  for (auto _ : state) {
    const auto statuses = scheduler.runBatch(batch);
    benchmark::DoNotOptimize(statuses);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_WarmBatch)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  const bool ok = runServiceStudy();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return ok ? 0 : 1;
}
