// Ablation of the paper's parasitic-control trick (section 3 / Fig. 5):
// "all transistor folds are chosen such that drains are internal diffusions
// to minimize drain capacitance and enhance the frequency behavior".
//
// Compares the internal-drain fold policy against a plain alternating
// policy: first the raw junction figures, then the uncompensated effect on
// the extracted OTA (same sized design, both layout styles), then the fully
// compensated flow (the methodology absorbs the difference).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/engine.hpp"
#include "core/ota_topology.hpp"
#include "sizing/verify.hpp"

namespace {

using namespace lo;
using namespace lo::core;

void printAblation() {
  const tech::Technology t = tech::Technology::generic060();
  const sizing::OtaSpecs specs;

  // A design sized without any layout knowledge, so neither layout style is
  // "expected" by the sizing.
  EngineOptions base;
  base.sizingCase = SizingCase::kCase1;
  const SynthesisEngine refEngine(t, base);
  FoldedCascodeOtaTopology refTopo(t, refEngine.model());
  (void)refEngine.run(refTopo, specs);
  const circuit::FoldedCascodeOtaDesign& refDesign = refTopo.sizingResult().design;

  layout::OtaLayoutOptions internal;
  layout::OtaLayoutOptions alternating;
  alternating.foldStyle = device::FoldStyle::kAlternating;

  std::printf("\n=== Fold-policy ablation: internal drains vs alternating ===\n");
  std::printf("\nper-group drain junction (same sized design, both styles):\n");
  const auto layInt = layout::generateOtaLayout(t, refDesign, internal, false);
  const auto layAlt = layout::generateOtaLayout(t, refDesign, alternating, false);
  std::printf("%-12s %6s %12s %6s %12s %9s\n", "group", "nf(i)", "AD(i) um^2", "nf(a)",
              "AD(a) um^2", "AD ratio");
  for (const auto& [g, ji] : layInt.junctions) {
    const auto& ja = layAlt.junctions.at(g);
    std::printf("%-12s %6d %12.2f %6d %12.2f %9.2f\n", circuit::otaGroupName(g), ji.nf,
                ji.ad * 1e12, ja.nf, ja.ad * 1e12, ja.ad / ji.ad);
  }

  // Uncompensated: verify the same electrical design against both layouts.
  const auto model = device::MosModel::create("ekv");
  sizing::OtaVerifier verifier(t, *model);
  const auto di = sizing::applyExtractedGeometry(refDesign, layInt.junctions);
  const auto da = sizing::applyExtractedGeometry(refDesign, layAlt.junctions);
  const auto pi = verifier.verify(di, &layInt.parasitics);
  const auto pa = verifier.verify(da, &layAlt.parasitics);
  std::printf("\nuncompensated extracted performance (same design, two styles):\n");
  std::printf("%-22s %14s %14s\n", "", "internal", "alternating");
  std::printf("%-22s %14.2f %14.2f\n", "GBW (MHz)", pi.gbwHz / 1e6, pa.gbwHz / 1e6);
  std::printf("%-22s %14.2f %14.2f\n", "Phase margin (deg)", pi.phaseMarginDeg,
              pa.phaseMarginDeg);
  std::printf("%-22s %14.2f %14.2f\n", "Slew rate (V/us)", pi.slewRateVPerUs,
              pa.slewRateVPerUs);
  std::printf("-> internal drains keep %.2f MHz and %.2f deg that the plain style "
              "gives away\n",
              (pi.gbwHz - pa.gbwHz) / 1e6, pi.phaseMarginDeg - pa.phaseMarginDeg);

  // Compensated: the full methodology with either style still meets spec.
  EngineOptions c4;
  c4.sizingCase = SizingCase::kCase4;
  const SynthesisEngine engine(t, c4);
  FoldedCascodeOtaTopology ti(t, engine.model(), internal);
  FoldedCascodeOtaTopology ta(t, engine.model(), alternating);
  const EngineResult ri = engine.run(ti, specs);
  const EngineResult ra = engine.run(ta, specs);
  std::printf("\ncompensated (full case-4 flow): GBW internal %.2f MHz, alternating "
              "%.2f MHz, power %.2f vs %.2f mW\n",
              ri.measured.gbwHz / 1e6, ra.measured.gbwHz / 1e6, ri.measured.powerMw,
              ra.measured.powerMw);
}

void BM_LayoutParasiticMode(benchmark::State& state) {
  const tech::Technology t = tech::Technology::generic060();
  EngineOptions base;
  base.sizingCase = SizingCase::kCase1;
  const SynthesisEngine engine(t, base);
  FoldedCascodeOtaTopology topo(t, engine.model());
  (void)engine.run(topo, sizing::OtaSpecs{});
  layout::OtaLayoutOptions opt;
  if (state.range(0)) opt.foldStyle = device::FoldStyle::kAlternating;
  for (auto _ : state) {
    const auto lay = layout::generateOtaLayout(t, topo.sizingResult().design, opt, false);
    benchmark::DoNotOptimize(lay);
  }
}
BENCHMARK(BM_LayoutParasiticMode)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  printAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
