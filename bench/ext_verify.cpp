// Post-layout verification tier snapshot: run the full engine with the
// kPostLayoutVerify stage enabled on both topologies, print the per-spec
// pre/post-layout deltas, and write BENCH_verify.json (deltas, the
// verification stage's wall time and its fraction of the whole run) under
// examples/out/ -- the verification entry of the perf trajectory.
//
// Acceptance: the report must run on both topologies, THD must come back
// finite and non-negative on both sides, and the tier's overhead must stay
// under 90% of the run (it re-simulates two netlists plus three extra
// testbenches each, so it is expensive -- but it must never dwarf the
// synthesis it verifies).
//
// CI runs a short-budget pass: ext_verify --verify-sweep-points=15
// --benchmark_filter=none.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <complex>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "layout/writers.hpp"
#include "sim/fft.hpp"

namespace {

using namespace lo;

int gSweepPoints = 41;  // DC sweep resolution; CI passes a smaller one.

/// One engine-with-verification run on one topology.
struct Sample {
  std::string topology;
  bool ran = false;
  bool pass = false;
  double totalMs = 0.0;   ///< Sum of all staged wall time.
  double verifyMs = 0.0;  ///< kPostLayoutVerify stage wall time.
  double overhead = 0.0;  ///< verifyMs / totalMs.
  verify::VerificationReport report;
};

Sample runTopology(const std::string& topology) {
  const tech::Technology t = tech::Technology::generic060();
  core::EngineOptions options;
  options.topology = topology;
  // Case 2 skips the parasitic feedback loop: the snapshot times the
  // verification tier, not convergence.
  options.sizingCase = core::SizingCase::kCase2;
  options.postLayoutVerify.enabled = true;
  options.postLayoutVerify.sweepPoints = gSweepPoints;

  std::map<core::EngineStage, double> stageSeconds;
  options.hooks.onStage = [&stageSeconds](core::EngineStage stage, double s) {
    stageSeconds[stage] += s;
  };

  sizing::OtaSpecs specs;
  if (topology == core::kTwoStageTopologyName) specs.gbw = 30e6;

  const core::SynthesisEngine engine(t, options);
  const core::EngineResult result = engine.run(specs);

  Sample s;
  s.topology = topology;
  s.ran = result.verification.ran;
  s.pass = result.verification.pass;
  s.report = result.verification;
  for (const auto& [stage, seconds] : stageSeconds) s.totalMs += seconds * 1e3;
  s.verifyMs = stageSeconds[core::EngineStage::kPostLayoutVerify] * 1e3;
  s.overhead = s.totalMs > 0.0 ? s.verifyMs / s.totalMs : 0.0;
  return s;
}

std::string toJson(const std::vector<Sample>& samples) {
  std::ostringstream out;
  out.precision(10);
  out << "{\n  \"bench\": \"ext_verify\",\n  \"sweep_points\": " << gSweepPoints
      << ",\n  \"samples\": [\n";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    out << "    {\"topology\": \"" << s.topology << "\", \"ran\": "
        << (s.ran ? "true" : "false") << ", \"pass\": "
        << (s.pass ? "true" : "false") << ",\n     \"total_wall_ms\": " << s.totalMs
        << ", \"verify_wall_ms\": " << s.verifyMs
        << ", \"overhead_fraction\": " << s.overhead << ",\n     \"deltas\": [\n";
    for (std::size_t k = 0; k < s.report.deltas.size(); ++k) {
      const verify::SpecDelta& d = s.report.deltas[k];
      out << "       {\"name\": \"" << d.name << "\", \"pre\": " << d.preLayout
          << ", \"post\": " << d.postLayout << ", \"delta\": " << d.delta()
          << ", \"constrained\": " << (d.constrained ? "true" : "false")
          << ", \"pass\": " << (d.pass ? "true" : "false") << '}'
          << (k + 1 < s.report.deltas.size() ? "," : "") << '\n';
    }
    out << "     ]}" << (i + 1 < samples.size() ? "," : "") << '\n';
  }
  out << "  ]\n}\n";
  return out.str();
}

int runSnapshot() {
  std::vector<Sample> samples;
  samples.push_back(runTopology(std::string(core::kFoldedCascodeOtaTopologyName)));
  samples.push_back(runTopology(std::string(core::kTwoStageTopologyName)));

  std::printf("\n=== ext_verify: post-layout verification snapshot (%d sweep points) ===\n",
              gSweepPoints);
  for (const Sample& s : samples) {
    std::printf("%-20s ran=%d pass=%d total=%.1f ms verify=%.1f ms (%.0f%%)\n",
                s.topology.c_str(), s.ran ? 1 : 0, s.pass ? 1 : 0, s.totalMs,
                s.verifyMs, s.overhead * 100.0);
    std::printf("  %-18s %14s %14s %12s %s\n", "spec", "pre-layout", "post-layout",
                "delta", "verdict");
    for (const verify::SpecDelta& d : s.report.deltas) {
      std::printf("  %-18s %14.6g %14.6g %12.3g %s\n", d.name.c_str(), d.preLayout,
                  d.postLayout, d.delta(),
                  d.constrained ? (d.pass ? "pass" : "FAIL") : "-");
    }
  }

  const std::string path = layout::outputPath("BENCH_verify.json");
  layout::writeFile(path, toJson(samples));
  std::printf("wrote %s\n", path.c_str());

  int failures = 0;
  for (const Sample& s : samples) {
    if (!s.ran) {
      std::printf("ACCEPTANCE FAIL: %s verification report never ran\n",
                  s.topology.c_str());
      ++failures;
    }
    const double thdPre = s.report.preExtended.thdPercent;
    const double thdPost = s.report.postExtended.thdPercent;
    if (!std::isfinite(thdPre) || !std::isfinite(thdPost) || thdPre < 0.0 ||
        thdPost < 0.0) {
      std::printf("ACCEPTANCE FAIL: %s THD not finite/non-negative (pre=%g post=%g)\n",
                  s.topology.c_str(), thdPre, thdPost);
      ++failures;
    }
    if (s.overhead >= 0.9) {
      std::printf("ACCEPTANCE FAIL: %s verification overhead %.0f%% >= 90%%\n",
                  s.topology.c_str(), s.overhead * 100.0);
      ++failures;
    }
  }
  if (failures == 0) {
    std::printf("acceptance: verification ran on both topologies, finite THD, "
                "bounded overhead\n");
  }
  return failures;
}

void BM_FftRadix2_1024(benchmark::State& state) {
  std::vector<std::complex<double>> base(1024);
  for (std::size_t i = 0; i < base.size(); ++i) {
    base[i] = {std::sin(0.1 * static_cast<double>(i)), 0.0};
  }
  for (auto _ : state) {
    auto data = base;
    sim::fftRadix2(data);
    benchmark::DoNotOptimize(data);
  }
}
BENCHMARK(BM_FftRadix2_1024)->Unit(benchmark::kMicrosecond);

void BM_ThdPureTone_256(benchmark::State& state) {
  std::vector<double> samples(256);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    samples[i] = std::sin(2.0 * M_PI * 4.0 * static_cast<double>(i) / 256.0);
  }
  for (auto _ : state) {
    const double thd = sim::thdPercent(samples, 4, 5);
    benchmark::DoNotOptimize(thd);
  }
}
BENCHMARK(BM_ThdPureTone_256)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  // Strip our own flag before google-benchmark sees (and rejects) it.
  int outArgc = 0;
  for (int i = 0; i < argc; ++i) {
    constexpr const char* kFlag = "--verify-sweep-points=";
    if (std::strncmp(argv[i], kFlag, std::strlen(kFlag)) == 0) {
      gSweepPoints = std::atoi(argv[i] + std::strlen(kFlag));
      if (gSweepPoints < 3) {
        std::fprintf(stderr, "bad --verify-sweep-points\n");
        return 2;
      }
      continue;
    }
    argv[outArgc++] = argv[i];
  }
  argc = outArgc;

  const int failures = runSnapshot();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return failures == 0 ? 0 : 1;
}
