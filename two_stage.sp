* extracted two-stage Miller OTA
MN1 d1 inn tail 0 nmos W=12.2u L=1u NF=2 AD=10.98p AS=16.47p PD=3.6u PS=5.4u M=1
MN2 o1 inp tail 0 nmos W=12.2u L=1u NF=2 AD=10.98p AS=16.47p PD=3.6u PS=5.4u M=1
MP3 d1 d1 vdd vdd pmos W=16.5u L=1.5u NF=2 AD=14.85p AS=22.275p PD=3.6u PS=5.4u M=1
MP4 o1 d1 vdd vdd pmos W=16.5u L=1.5u NF=2 AD=14.85p AS=22.275p PD=3.6u PS=5.4u M=1
MN5 tail vbn 0 0 nmos W=83.8u L=2u NF=4 AD=75.42p AS=92.18p PD=7.2u PS=50.7u M=1
MP6 out o1 vdd vdd pmos W=176.4u L=800n NF=12 AD=158.76p AS=170.52p PD=21.6u PS=52.6u M=1
MN7 out vbn 0 0 nmos W=468.6u L=1u NF=12 AD=421.74p AS=452.98p PD=21.6u PS=101.3u M=1
RZ o1 rzm 489.583
CC rzm out 900f
CL out 0 3p
CPAR_d1 d1 0 34.9703f
CCPL_d1_o1 d1 o1 9.04137f
CCPL_d1_out d1 out 1.57392f
CCPL_d1_tail d1 tail 1.77882f
CCPL_d1_vbn d1 vbn 1.31673f
CPAR_o1 o1 0 52.6961f
CCPL_o1_out o1 out 7.61364f
CCPL_o1_rzm o1 rzm 1.3685f
CCPL_o1_vbn o1 vbn 2.22545f
CPAR_out out 0 111.406f
CCPL_out_rzm out rzm 1.94109f
CCPL_out_tail out tail 1.07409f
CCPL_out_vbn out vbn 5.53031e-16
CPAR_rzm rzm 0 198.5f
CPAR_tail tail 0 45.6551f
CCPL_tail_vbn tail vbn 6.85313e-16
CPAR_vbn vbn 0 10.09f
VDD vdd 0 DC 3.3
VBN vbn 0 DC 870.581m
.end
