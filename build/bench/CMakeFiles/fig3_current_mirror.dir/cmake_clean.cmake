file(REMOVE_RECURSE
  "CMakeFiles/fig3_current_mirror.dir/fig3_current_mirror.cpp.o"
  "CMakeFiles/fig3_current_mirror.dir/fig3_current_mirror.cpp.o.d"
  "fig3_current_mirror"
  "fig3_current_mirror.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_current_mirror.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
