# Empty dependencies file for fig3_current_mirror.
# This may be replaced when dependencies are built.
