# Empty compiler generated dependencies file for ablation_fold_policy.
# This may be replaced when dependencies are built.
