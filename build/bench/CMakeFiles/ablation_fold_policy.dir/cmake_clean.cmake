file(REMOVE_RECURSE
  "CMakeFiles/ablation_fold_policy.dir/ablation_fold_policy.cpp.o"
  "CMakeFiles/ablation_fold_policy.dir/ablation_fold_policy.cpp.o.d"
  "ablation_fold_policy"
  "ablation_fold_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fold_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
