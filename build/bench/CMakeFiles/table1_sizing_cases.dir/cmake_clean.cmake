file(REMOVE_RECURSE
  "CMakeFiles/table1_sizing_cases.dir/table1_sizing_cases.cpp.o"
  "CMakeFiles/table1_sizing_cases.dir/table1_sizing_cases.cpp.o.d"
  "table1_sizing_cases"
  "table1_sizing_cases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_sizing_cases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
