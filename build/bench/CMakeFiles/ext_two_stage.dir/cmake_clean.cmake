file(REMOVE_RECURSE
  "CMakeFiles/ext_two_stage.dir/ext_two_stage.cpp.o"
  "CMakeFiles/ext_two_stage.dir/ext_two_stage.cpp.o.d"
  "ext_two_stage"
  "ext_two_stage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_two_stage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
