# Empty compiler generated dependencies file for ablation_shape_constraint.
# This may be replaced when dependencies are built.
