file(REMOVE_RECURSE
  "CMakeFiles/ablation_shape_constraint.dir/ablation_shape_constraint.cpp.o"
  "CMakeFiles/ablation_shape_constraint.dir/ablation_shape_constraint.cpp.o.d"
  "ablation_shape_constraint"
  "ablation_shape_constraint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_shape_constraint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
