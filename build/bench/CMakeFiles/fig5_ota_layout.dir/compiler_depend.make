# Empty compiler generated dependencies file for fig5_ota_layout.
# This may be replaced when dependencies are built.
