# Empty compiler generated dependencies file for fig2_fold_factor.
# This may be replaced when dependencies are built.
