file(REMOVE_RECURSE
  "CMakeFiles/fig2_fold_factor.dir/fig2_fold_factor.cpp.o"
  "CMakeFiles/fig2_fold_factor.dir/fig2_fold_factor.cpp.o.d"
  "fig2_fold_factor"
  "fig2_fold_factor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_fold_factor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
