# Empty compiler generated dependencies file for ext_corners.
# This may be replaced when dependencies are built.
