file(REMOVE_RECURSE
  "CMakeFiles/ext_corners.dir/ext_corners.cpp.o"
  "CMakeFiles/ext_corners.dir/ext_corners.cpp.o.d"
  "ext_corners"
  "ext_corners.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_corners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
