file(REMOVE_RECURSE
  "CMakeFiles/lo_sim.dir/measure.cpp.o"
  "CMakeFiles/lo_sim.dir/measure.cpp.o.d"
  "CMakeFiles/lo_sim.dir/op_report.cpp.o"
  "CMakeFiles/lo_sim.dir/op_report.cpp.o.d"
  "CMakeFiles/lo_sim.dir/simulator.cpp.o"
  "CMakeFiles/lo_sim.dir/simulator.cpp.o.d"
  "liblo_sim.a"
  "liblo_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lo_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
