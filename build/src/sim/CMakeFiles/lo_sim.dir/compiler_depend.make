# Empty compiler generated dependencies file for lo_sim.
# This may be replaced when dependencies are built.
