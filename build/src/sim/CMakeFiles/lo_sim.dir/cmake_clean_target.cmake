file(REMOVE_RECURSE
  "liblo_sim.a"
)
