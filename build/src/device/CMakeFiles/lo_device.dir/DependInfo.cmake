
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/device/folding.cpp" "src/device/CMakeFiles/lo_device.dir/folding.cpp.o" "gcc" "src/device/CMakeFiles/lo_device.dir/folding.cpp.o.d"
  "/root/repo/src/device/inversion.cpp" "src/device/CMakeFiles/lo_device.dir/inversion.cpp.o" "gcc" "src/device/CMakeFiles/lo_device.dir/inversion.cpp.o.d"
  "/root/repo/src/device/mos_model.cpp" "src/device/CMakeFiles/lo_device.dir/mos_model.cpp.o" "gcc" "src/device/CMakeFiles/lo_device.dir/mos_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tech/CMakeFiles/lo_tech.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
