file(REMOVE_RECURSE
  "liblo_device.a"
)
