file(REMOVE_RECURSE
  "CMakeFiles/lo_device.dir/folding.cpp.o"
  "CMakeFiles/lo_device.dir/folding.cpp.o.d"
  "CMakeFiles/lo_device.dir/inversion.cpp.o"
  "CMakeFiles/lo_device.dir/inversion.cpp.o.d"
  "CMakeFiles/lo_device.dir/mos_model.cpp.o"
  "CMakeFiles/lo_device.dir/mos_model.cpp.o.d"
  "liblo_device.a"
  "liblo_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lo_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
