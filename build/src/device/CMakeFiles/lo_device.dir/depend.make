# Empty dependencies file for lo_device.
# This may be replaced when dependencies are built.
