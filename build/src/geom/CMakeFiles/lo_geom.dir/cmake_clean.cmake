file(REMOVE_RECURSE
  "CMakeFiles/lo_geom.dir/geometry.cpp.o"
  "CMakeFiles/lo_geom.dir/geometry.cpp.o.d"
  "liblo_geom.a"
  "liblo_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lo_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
