file(REMOVE_RECURSE
  "liblo_geom.a"
)
