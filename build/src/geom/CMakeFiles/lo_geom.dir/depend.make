# Empty dependencies file for lo_geom.
# This may be replaced when dependencies are built.
