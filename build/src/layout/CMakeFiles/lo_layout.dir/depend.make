# Empty dependencies file for lo_layout.
# This may be replaced when dependencies are built.
