file(REMOVE_RECURSE
  "liblo_layout.a"
)
