
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/layout/drc.cpp" "src/layout/CMakeFiles/lo_layout.dir/drc.cpp.o" "gcc" "src/layout/CMakeFiles/lo_layout.dir/drc.cpp.o.d"
  "/root/repo/src/layout/extract.cpp" "src/layout/CMakeFiles/lo_layout.dir/extract.cpp.o" "gcc" "src/layout/CMakeFiles/lo_layout.dir/extract.cpp.o.d"
  "/root/repo/src/layout/mos_motif.cpp" "src/layout/CMakeFiles/lo_layout.dir/mos_motif.cpp.o" "gcc" "src/layout/CMakeFiles/lo_layout.dir/mos_motif.cpp.o.d"
  "/root/repo/src/layout/ota_layout.cpp" "src/layout/CMakeFiles/lo_layout.dir/ota_layout.cpp.o" "gcc" "src/layout/CMakeFiles/lo_layout.dir/ota_layout.cpp.o.d"
  "/root/repo/src/layout/passives.cpp" "src/layout/CMakeFiles/lo_layout.dir/passives.cpp.o" "gcc" "src/layout/CMakeFiles/lo_layout.dir/passives.cpp.o.d"
  "/root/repo/src/layout/router.cpp" "src/layout/CMakeFiles/lo_layout.dir/router.cpp.o" "gcc" "src/layout/CMakeFiles/lo_layout.dir/router.cpp.o.d"
  "/root/repo/src/layout/slicing.cpp" "src/layout/CMakeFiles/lo_layout.dir/slicing.cpp.o" "gcc" "src/layout/CMakeFiles/lo_layout.dir/slicing.cpp.o.d"
  "/root/repo/src/layout/stack.cpp" "src/layout/CMakeFiles/lo_layout.dir/stack.cpp.o" "gcc" "src/layout/CMakeFiles/lo_layout.dir/stack.cpp.o.d"
  "/root/repo/src/layout/two_stage_layout.cpp" "src/layout/CMakeFiles/lo_layout.dir/two_stage_layout.cpp.o" "gcc" "src/layout/CMakeFiles/lo_layout.dir/two_stage_layout.cpp.o.d"
  "/root/repo/src/layout/writers.cpp" "src/layout/CMakeFiles/lo_layout.dir/writers.cpp.o" "gcc" "src/layout/CMakeFiles/lo_layout.dir/writers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/circuit/CMakeFiles/lo_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/lo_device.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/lo_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/lo_tech.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
