file(REMOVE_RECURSE
  "CMakeFiles/lo_layout.dir/drc.cpp.o"
  "CMakeFiles/lo_layout.dir/drc.cpp.o.d"
  "CMakeFiles/lo_layout.dir/extract.cpp.o"
  "CMakeFiles/lo_layout.dir/extract.cpp.o.d"
  "CMakeFiles/lo_layout.dir/mos_motif.cpp.o"
  "CMakeFiles/lo_layout.dir/mos_motif.cpp.o.d"
  "CMakeFiles/lo_layout.dir/ota_layout.cpp.o"
  "CMakeFiles/lo_layout.dir/ota_layout.cpp.o.d"
  "CMakeFiles/lo_layout.dir/passives.cpp.o"
  "CMakeFiles/lo_layout.dir/passives.cpp.o.d"
  "CMakeFiles/lo_layout.dir/router.cpp.o"
  "CMakeFiles/lo_layout.dir/router.cpp.o.d"
  "CMakeFiles/lo_layout.dir/slicing.cpp.o"
  "CMakeFiles/lo_layout.dir/slicing.cpp.o.d"
  "CMakeFiles/lo_layout.dir/stack.cpp.o"
  "CMakeFiles/lo_layout.dir/stack.cpp.o.d"
  "CMakeFiles/lo_layout.dir/two_stage_layout.cpp.o"
  "CMakeFiles/lo_layout.dir/two_stage_layout.cpp.o.d"
  "CMakeFiles/lo_layout.dir/writers.cpp.o"
  "CMakeFiles/lo_layout.dir/writers.cpp.o.d"
  "liblo_layout.a"
  "liblo_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lo_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
