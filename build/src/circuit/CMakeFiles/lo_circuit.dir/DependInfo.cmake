
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/circuit.cpp" "src/circuit/CMakeFiles/lo_circuit.dir/circuit.cpp.o" "gcc" "src/circuit/CMakeFiles/lo_circuit.dir/circuit.cpp.o.d"
  "/root/repo/src/circuit/ota.cpp" "src/circuit/CMakeFiles/lo_circuit.dir/ota.cpp.o" "gcc" "src/circuit/CMakeFiles/lo_circuit.dir/ota.cpp.o.d"
  "/root/repo/src/circuit/spice_io.cpp" "src/circuit/CMakeFiles/lo_circuit.dir/spice_io.cpp.o" "gcc" "src/circuit/CMakeFiles/lo_circuit.dir/spice_io.cpp.o.d"
  "/root/repo/src/circuit/two_stage.cpp" "src/circuit/CMakeFiles/lo_circuit.dir/two_stage.cpp.o" "gcc" "src/circuit/CMakeFiles/lo_circuit.dir/two_stage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tech/CMakeFiles/lo_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/lo_device.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
