# Empty compiler generated dependencies file for lo_circuit.
# This may be replaced when dependencies are built.
