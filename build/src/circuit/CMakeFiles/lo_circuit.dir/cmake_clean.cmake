file(REMOVE_RECURSE
  "CMakeFiles/lo_circuit.dir/circuit.cpp.o"
  "CMakeFiles/lo_circuit.dir/circuit.cpp.o.d"
  "CMakeFiles/lo_circuit.dir/ota.cpp.o"
  "CMakeFiles/lo_circuit.dir/ota.cpp.o.d"
  "CMakeFiles/lo_circuit.dir/spice_io.cpp.o"
  "CMakeFiles/lo_circuit.dir/spice_io.cpp.o.d"
  "CMakeFiles/lo_circuit.dir/two_stage.cpp.o"
  "CMakeFiles/lo_circuit.dir/two_stage.cpp.o.d"
  "liblo_circuit.a"
  "liblo_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lo_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
