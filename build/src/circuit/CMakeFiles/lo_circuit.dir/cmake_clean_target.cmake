file(REMOVE_RECURSE
  "liblo_circuit.a"
)
