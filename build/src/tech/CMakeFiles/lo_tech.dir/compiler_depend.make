# Empty compiler generated dependencies file for lo_tech.
# This may be replaced when dependencies are built.
