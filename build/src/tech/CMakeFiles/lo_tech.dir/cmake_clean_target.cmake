file(REMOVE_RECURSE
  "liblo_tech.a"
)
