file(REMOVE_RECURSE
  "CMakeFiles/lo_tech.dir/technology.cpp.o"
  "CMakeFiles/lo_tech.dir/technology.cpp.o.d"
  "liblo_tech.a"
  "liblo_tech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lo_tech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
