file(REMOVE_RECURSE
  "liblo_core.a"
)
