# Empty dependencies file for lo_core.
# This may be replaced when dependencies are built.
