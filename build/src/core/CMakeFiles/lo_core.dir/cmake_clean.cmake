file(REMOVE_RECURSE
  "CMakeFiles/lo_core.dir/flow.cpp.o"
  "CMakeFiles/lo_core.dir/flow.cpp.o.d"
  "CMakeFiles/lo_core.dir/two_stage_flow.cpp.o"
  "CMakeFiles/lo_core.dir/two_stage_flow.cpp.o.d"
  "liblo_core.a"
  "liblo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
