# Empty compiler generated dependencies file for lo_sizing.
# This may be replaced when dependencies are built.
