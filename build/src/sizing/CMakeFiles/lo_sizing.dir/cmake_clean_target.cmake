file(REMOVE_RECURSE
  "liblo_sizing.a"
)
