
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sizing/montecarlo.cpp" "src/sizing/CMakeFiles/lo_sizing.dir/montecarlo.cpp.o" "gcc" "src/sizing/CMakeFiles/lo_sizing.dir/montecarlo.cpp.o.d"
  "/root/repo/src/sizing/ota_evaluator.cpp" "src/sizing/CMakeFiles/lo_sizing.dir/ota_evaluator.cpp.o" "gcc" "src/sizing/CMakeFiles/lo_sizing.dir/ota_evaluator.cpp.o.d"
  "/root/repo/src/sizing/ota_sizer.cpp" "src/sizing/CMakeFiles/lo_sizing.dir/ota_sizer.cpp.o" "gcc" "src/sizing/CMakeFiles/lo_sizing.dir/ota_sizer.cpp.o.d"
  "/root/repo/src/sizing/two_stage.cpp" "src/sizing/CMakeFiles/lo_sizing.dir/two_stage.cpp.o" "gcc" "src/sizing/CMakeFiles/lo_sizing.dir/two_stage.cpp.o.d"
  "/root/repo/src/sizing/verify.cpp" "src/sizing/CMakeFiles/lo_sizing.dir/verify.cpp.o" "gcc" "src/sizing/CMakeFiles/lo_sizing.dir/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/circuit/CMakeFiles/lo_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/lo_device.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/lo_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/lo_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/lo_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
