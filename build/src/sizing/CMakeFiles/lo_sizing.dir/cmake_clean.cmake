file(REMOVE_RECURSE
  "CMakeFiles/lo_sizing.dir/montecarlo.cpp.o"
  "CMakeFiles/lo_sizing.dir/montecarlo.cpp.o.d"
  "CMakeFiles/lo_sizing.dir/ota_evaluator.cpp.o"
  "CMakeFiles/lo_sizing.dir/ota_evaluator.cpp.o.d"
  "CMakeFiles/lo_sizing.dir/ota_sizer.cpp.o"
  "CMakeFiles/lo_sizing.dir/ota_sizer.cpp.o.d"
  "CMakeFiles/lo_sizing.dir/two_stage.cpp.o"
  "CMakeFiles/lo_sizing.dir/two_stage.cpp.o.d"
  "CMakeFiles/lo_sizing.dir/verify.cpp.o"
  "CMakeFiles/lo_sizing.dir/verify.cpp.o.d"
  "liblo_sizing.a"
  "liblo_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lo_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
