# Empty dependencies file for current_mirror.
# This may be replaced when dependencies are built.
