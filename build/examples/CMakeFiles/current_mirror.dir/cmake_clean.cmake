file(REMOVE_RECURSE
  "CMakeFiles/current_mirror.dir/current_mirror.cpp.o"
  "CMakeFiles/current_mirror.dir/current_mirror.cpp.o.d"
  "current_mirror"
  "current_mirror.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/current_mirror.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
