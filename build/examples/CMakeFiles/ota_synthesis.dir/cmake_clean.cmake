file(REMOVE_RECURSE
  "CMakeFiles/ota_synthesis.dir/ota_synthesis.cpp.o"
  "CMakeFiles/ota_synthesis.dir/ota_synthesis.cpp.o.d"
  "ota_synthesis"
  "ota_synthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ota_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
