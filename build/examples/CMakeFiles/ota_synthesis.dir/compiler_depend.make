# Empty compiler generated dependencies file for ota_synthesis.
# This may be replaced when dependencies are built.
