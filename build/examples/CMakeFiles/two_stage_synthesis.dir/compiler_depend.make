# Empty compiler generated dependencies file for two_stage_synthesis.
# This may be replaced when dependencies are built.
