file(REMOVE_RECURSE
  "CMakeFiles/two_stage_synthesis.dir/two_stage_synthesis.cpp.o"
  "CMakeFiles/two_stage_synthesis.dir/two_stage_synthesis.cpp.o.d"
  "two_stage_synthesis"
  "two_stage_synthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/two_stage_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
