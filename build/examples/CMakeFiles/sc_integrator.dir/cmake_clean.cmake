file(REMOVE_RECURSE
  "CMakeFiles/sc_integrator.dir/sc_integrator.cpp.o"
  "CMakeFiles/sc_integrator.dir/sc_integrator.cpp.o.d"
  "sc_integrator"
  "sc_integrator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sc_integrator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
