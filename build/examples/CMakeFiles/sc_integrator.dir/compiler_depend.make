# Empty compiler generated dependencies file for sc_integrator.
# This may be replaced when dependencies are built.
