# Empty compiler generated dependencies file for sc_filter.
# This may be replaced when dependencies are built.
