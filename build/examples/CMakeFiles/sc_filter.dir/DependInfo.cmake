
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/sc_filter.cpp" "examples/CMakeFiles/sc_filter.dir/sc_filter.cpp.o" "gcc" "examples/CMakeFiles/sc_filter.dir/sc_filter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sizing/CMakeFiles/lo_sizing.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/lo_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/lo_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/lo_device.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/lo_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/lo_tech.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
