file(REMOVE_RECURSE
  "CMakeFiles/sc_filter.dir/sc_filter.cpp.o"
  "CMakeFiles/sc_filter.dir/sc_filter.cpp.o.d"
  "sc_filter"
  "sc_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sc_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
