# Empty compiler generated dependencies file for tech_eval.
# This may be replaced when dependencies are built.
