file(REMOVE_RECURSE
  "CMakeFiles/tech_eval.dir/tech_eval.cpp.o"
  "CMakeFiles/tech_eval.dir/tech_eval.cpp.o.d"
  "tech_eval"
  "tech_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tech_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
