# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_tech[1]_include.cmake")
include("/root/repo/build/tests/test_geom[1]_include.cmake")
include("/root/repo/build/tests/test_device[1]_include.cmake")
include("/root/repo/build/tests/test_folding[1]_include.cmake")
include("/root/repo/build/tests/test_circuit[1]_include.cmake")
include("/root/repo/build/tests/test_spice_io[1]_include.cmake")
include("/root/repo/build/tests/test_sim_dc[1]_include.cmake")
include("/root/repo/build/tests/test_sim_ac[1]_include.cmake")
include("/root/repo/build/tests/test_sim_tran[1]_include.cmake")
include("/root/repo/build/tests/test_sim_noise[1]_include.cmake")
include("/root/repo/build/tests/test_measure[1]_include.cmake")
include("/root/repo/build/tests/test_motif[1]_include.cmake")
include("/root/repo/build/tests/test_stack[1]_include.cmake")
include("/root/repo/build/tests/test_slicing[1]_include.cmake")
include("/root/repo/build/tests/test_router_extract[1]_include.cmake")
include("/root/repo/build/tests/test_drc_writers[1]_include.cmake")
include("/root/repo/build/tests/test_ota_layout[1]_include.cmake")
include("/root/repo/build/tests/test_sizing[1]_include.cmake")
include("/root/repo/build/tests/test_verify[1]_include.cmake")
include("/root/repo/build/tests/test_flow[1]_include.cmake")
include("/root/repo/build/tests/test_two_stage[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_misc[1]_include.cmake")
