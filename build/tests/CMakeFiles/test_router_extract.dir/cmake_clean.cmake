file(REMOVE_RECURSE
  "CMakeFiles/test_router_extract.dir/router_extract_test.cpp.o"
  "CMakeFiles/test_router_extract.dir/router_extract_test.cpp.o.d"
  "test_router_extract"
  "test_router_extract.pdb"
  "test_router_extract[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_router_extract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
