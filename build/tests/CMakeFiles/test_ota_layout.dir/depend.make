# Empty dependencies file for test_ota_layout.
# This may be replaced when dependencies are built.
