file(REMOVE_RECURSE
  "CMakeFiles/test_ota_layout.dir/ota_layout_test.cpp.o"
  "CMakeFiles/test_ota_layout.dir/ota_layout_test.cpp.o.d"
  "test_ota_layout"
  "test_ota_layout.pdb"
  "test_ota_layout[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ota_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
