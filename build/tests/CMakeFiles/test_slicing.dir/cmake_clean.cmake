file(REMOVE_RECURSE
  "CMakeFiles/test_slicing.dir/slicing_test.cpp.o"
  "CMakeFiles/test_slicing.dir/slicing_test.cpp.o.d"
  "test_slicing"
  "test_slicing.pdb"
  "test_slicing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_slicing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
