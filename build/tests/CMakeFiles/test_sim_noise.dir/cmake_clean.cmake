file(REMOVE_RECURSE
  "CMakeFiles/test_sim_noise.dir/sim_noise_test.cpp.o"
  "CMakeFiles/test_sim_noise.dir/sim_noise_test.cpp.o.d"
  "test_sim_noise"
  "test_sim_noise.pdb"
  "test_sim_noise[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
