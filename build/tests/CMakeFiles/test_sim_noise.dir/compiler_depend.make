# Empty compiler generated dependencies file for test_sim_noise.
# This may be replaced when dependencies are built.
