file(REMOVE_RECURSE
  "CMakeFiles/test_sim_tran.dir/sim_tran_test.cpp.o"
  "CMakeFiles/test_sim_tran.dir/sim_tran_test.cpp.o.d"
  "test_sim_tran"
  "test_sim_tran.pdb"
  "test_sim_tran[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_tran.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
