# Empty compiler generated dependencies file for test_sim_tran.
# This may be replaced when dependencies are built.
