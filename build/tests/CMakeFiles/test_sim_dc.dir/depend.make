# Empty dependencies file for test_sim_dc.
# This may be replaced when dependencies are built.
