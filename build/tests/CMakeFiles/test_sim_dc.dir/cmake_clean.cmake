file(REMOVE_RECURSE
  "CMakeFiles/test_sim_dc.dir/sim_dc_test.cpp.o"
  "CMakeFiles/test_sim_dc.dir/sim_dc_test.cpp.o.d"
  "test_sim_dc"
  "test_sim_dc.pdb"
  "test_sim_dc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_dc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
