# Empty dependencies file for test_drc_writers.
# This may be replaced when dependencies are built.
