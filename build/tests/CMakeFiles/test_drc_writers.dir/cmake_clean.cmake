file(REMOVE_RECURSE
  "CMakeFiles/test_drc_writers.dir/drc_writers_test.cpp.o"
  "CMakeFiles/test_drc_writers.dir/drc_writers_test.cpp.o.d"
  "test_drc_writers"
  "test_drc_writers.pdb"
  "test_drc_writers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_drc_writers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
