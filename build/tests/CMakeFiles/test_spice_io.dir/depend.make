# Empty dependencies file for test_spice_io.
# This may be replaced when dependencies are built.
