file(REMOVE_RECURSE
  "CMakeFiles/test_spice_io.dir/spice_io_test.cpp.o"
  "CMakeFiles/test_spice_io.dir/spice_io_test.cpp.o.d"
  "test_spice_io"
  "test_spice_io.pdb"
  "test_spice_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spice_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
