file(REMOVE_RECURSE
  "CMakeFiles/test_sim_ac.dir/sim_ac_test.cpp.o"
  "CMakeFiles/test_sim_ac.dir/sim_ac_test.cpp.o.d"
  "test_sim_ac"
  "test_sim_ac.pdb"
  "test_sim_ac[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_ac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
