# Empty compiler generated dependencies file for test_sim_ac.
# This may be replaced when dependencies are built.
