#!/bin/sh
# losynthd shutdown smoke test (also run by CI): pile several slow async
# jobs onto a small worker pool, then send shutdown while they are queued
# and running.  The daemon must drain cleanly -- cancelling queued work,
# aborting running jobs at their next cancellation poll -- and exit within
# the time bound, never hang.
set -eu

BIN="$1"
BOUND="${2:-60}"

REQ='{"op":"synthesize","topology":"folded_cascode_ota","case":4,"async":true,"label":"shutdown-smoke"}'
SCRIPT=$(printf '%s\n%s\n%s\n%s\n%s\n%s\n' \
  "${REQ}" "${REQ%?},\"spec\":{\"gbw\":5.1e7}}" "${REQ%?},\"spec\":{\"gbw\":5.2e7}}" \
  "${REQ%?},\"spec\":{\"gbw\":5.3e7}}" "${REQ%?},\"spec\":{\"gbw\":5.4e7}}" \
  '{"op":"shutdown"}')

if command -v timeout >/dev/null 2>&1; then
  RUN="timeout ${BOUND}"
else
  RUN=""
fi

START=$(date +%s)
OUT=$(printf '%s\n' "$SCRIPT" | ${RUN} "$BIN" --threads 2) || {
  echo "FAIL: daemon did not exit cleanly within ${BOUND}s" >&2
  exit 1
}
ELAPSED=$(( $(date +%s) - START ))

printf '%s\n' "$OUT"

[ "$(printf '%s\n' "$OUT" | wc -l)" -eq 6 ] || {
  echo "FAIL: expected 6 response lines" >&2
  exit 1
}
[ "$(printf '%s\n' "$OUT" | sed -n '1,5p' | grep -c '"ok":true')" -eq 5 ] || {
  echo "FAIL: not every async submission was accepted" >&2
  exit 1
}
printf '%s\n' "$OUT" | sed -n 6p | grep -q '"shutting_down":true' || {
  echo "FAIL: shutdown was not acknowledged" >&2
  exit 1
}
echo "losynthd shutdown smoke OK (${ELAPSED}s with jobs in flight)"
