// loexplore: multi-objective design-space exploration from the command
// line.  Sweeps spec axes over the synthesis service, refines around the
// feasibility boundary and the Pareto front, and prints the front as CSV
// (or JSON with --json).
//
//   $ loexplore --axis gbw:40e6:90e6:3 --axis cload:1e-12:5e-12:3
//               --budget 40 --threads 4 --cache-dir default
//
// Flags:
//   --axis F:LO:HI[:N]   swept spec field (repeatable; N grid points, default 3)
//   --spec NAME=VALUE    base-spec override (repeatable)
//   --topology NAME      registered topology (default folded-cascode OTA)
//   --case caseK         sizing case 1..4 (default case4)
//   --model NAME         device model (default ekv)
//   --corner CC          process corner tt/ss/ff/sf/fs (default tt)
//   --objectives LIST    comma-separated subset of power,area,noise
//   --budget N           max distinct evaluated points (default 64)
//   --max-rounds N       refinement rounds after the seed grid (default 8)
//   --tolerance X        relative spec slack for feasibility (default 0.02)
//   --threads N          scheduler workers (0 = hardware concurrency)
//   --cache-dir PATH     on-disk result store ("default" = ~/.cache/lo_service)
//   --json               print the JSON export instead of CSV
//   --tech PATH          technology file (default: built-in generic060)
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "explore/explore.hpp"
#include "explore/export.hpp"
#include "service/serialize.hpp"
#include "tech/technology.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --axis F:LO:HI[:N] [--axis ...] [--spec NAME=VALUE]\n"
               "          [--topology NAME] [--case caseK] [--model NAME]\n"
               "          [--corner CC] [--objectives power,area,noise]\n"
               "          [--budget N] [--max-rounds N] [--tolerance X]\n"
               "          [--threads N] [--cache-dir PATH|default] [--json]\n"
               "          [--tech PATH]\n",
               argv0);
}

double parseDouble(const std::string& text, const std::string& what) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    std::fprintf(stderr, "loexplore: bad %s \"%s\"\n", what.c_str(), text.c_str());
    std::exit(2);
  }
  return v;
}

std::vector<std::string> splitOn(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    parts.push_back(text.substr(start, pos - start));
    if (pos == std::string::npos) break;
    start = pos + 1;
  }
  return parts;
}

lo::explore::SpecAxis parseAxis(const std::string& text) {
  const auto parts = splitOn(text, ':');
  if (parts.size() < 3 || parts.size() > 4) {
    std::fprintf(stderr,
                 "loexplore: --axis wants FIELD:LO:HI[:POINTS], got \"%s\"\n",
                 text.c_str());
    std::exit(2);
  }
  lo::explore::SpecAxis axis;
  axis.field = parts[0];
  axis.lo = parseDouble(parts[1], "axis lo");
  axis.hi = parseDouble(parts[2], "axis hi");
  if (parts.size() == 4) {
    axis.points = static_cast<int>(parseDouble(parts[3], "axis points"));
  }
  return axis;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lo;

  explore::ExploreSpace space;
  explore::ExploreOptions exploreOptions;
  service::SchedulerOptions schedulerOptions;
  std::string techPath;
  bool jsonOutput = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    try {
      if (arg == "--axis") space.axes.push_back(parseAxis(value()));
      else if (arg == "--spec") {
        const std::string pair = value();
        const std::size_t eq = pair.find('=');
        if (eq == std::string::npos) {
          std::fprintf(stderr, "loexplore: --spec wants NAME=VALUE\n");
          return 2;
        }
        service::setSpecField(space.base, pair.substr(0, eq),
                              parseDouble(pair.substr(eq + 1), "spec value"));
      } else if (arg == "--topology") space.engineOptions.topology = value();
      else if (arg == "--case") {
        space.engineOptions.sizingCase =
            service::sizingCaseFromJson(service::Json(value()));
      } else if (arg == "--model") space.engineOptions.modelName = value();
      else if (arg == "--corner") space.corner = service::cornerFromName(value());
      else if (arg == "--objectives") {
        exploreOptions.objectives.clear();
        for (const std::string& name : splitOn(value(), ',')) {
          exploreOptions.objectives.push_back(explore::objectiveFromName(name));
        }
      } else if (arg == "--budget") exploreOptions.budget = std::stoi(value());
      else if (arg == "--max-rounds") exploreOptions.maxRounds = std::stoi(value());
      else if (arg == "--tolerance") {
        exploreOptions.specTolerance = parseDouble(value(), "tolerance");
      } else if (arg == "--threads") schedulerOptions.threads = std::stoi(value());
      else if (arg == "--cache-dir") {
        const std::string dir = value();
        schedulerOptions.cache.diskDir =
            dir == "default" ? service::CacheOptions::defaultDiskDir() : dir;
      } else if (arg == "--json") jsonOutput = true;
      else if (arg == "--tech") techPath = value();
      else if (arg == "--help" || arg == "-h") {
        usage(argv[0]);
        return 0;
      } else {
        std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
        usage(argv[0]);
        return 2;
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "loexplore: %s\n", e.what());
      return 2;
    }
  }

  if (space.axes.empty()) {
    std::fprintf(stderr, "loexplore: at least one --axis is required\n");
    usage(argv[0]);
    return 2;
  }

  try {
    const tech::Technology technology = techPath.empty()
                                            ? tech::Technology::generic060()
                                            : tech::Technology::fromFile(techPath);
    service::JobScheduler scheduler(technology, schedulerOptions);
    explore::Explorer explorer(scheduler, space, exploreOptions);
    const explore::ExploreResult result = explorer.run();

    if (jsonOutput) {
      std::printf("%s\n",
                  explore::frontJson(result, space, exploreOptions).dump().c_str());
    } else {
      std::fputs(explore::frontCsv(result, space).c_str(), stdout);
    }
    std::fprintf(stderr,
                 "loexplore: %d evaluations (%d cache hits), %d refinement "
                 "rounds, front size %zu%s\n",
                 result.evaluations, result.cacheHits, result.rounds,
                 result.front.size(),
                 result.budgetExhausted ? ", budget exhausted" : "");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "loexplore: fatal: %s\n", e.what());
    return 1;
  }
  return 0;
}
