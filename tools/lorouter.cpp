// lorouter: shard-routing front-end over a cluster of losynthd workers.
//
// Speaks exactly the losynthd line protocol on stdin/stdout and fans the
// work out over N losynthd child processes (one --journal directory per
// shard, one shared --cache-dir).  synthesize/sweep jobs route by
// consistent-hashing their result-cache key, so duplicates of a design
// point always land on the same shard and its cache/coalescing absorb
// them; stats/health aggregate per-shard sections plus cluster totals.
// A shard that dies (EOF) or wedges (timeout) is killed, respawned on its
// journal -- the replay re-enqueues everything it had acknowledged -- and
// the failed request is retried; while a shard stays down its key ranges
// re-route to the next live shard, which peer-fills from the shared disk
// store instead of recomputing.  Respawns after the first death in a
// streak back off exponentially with seeded jitter; restart reasons and
// backoff state are visible per shard in "health".
//
// Fault-tolerance ops beyond the losynthd protocol:
//   {"op":"drain","shard":N}  remove shard N from the ring gracefully:
//                             new keys stop routing to it, its in-flight
//                             jobs are waited out, its explore sessions
//                             re-pin to the inheriting members, then the
//                             worker is shut down
//   {"op":"add","shard":N}    re-admit a drained shard N
//   {"op":"add"}              grow the ring by a brand-new shard (cold
//                             caches warm lazily via the shared store)
//   {"op":"wait","ids":[...]} multiplexed wait over many router job ids:
//                             one poll(2) loop over every involved
//                             shard's pipe, so a wedged shard cannot
//                             stall waits destined for healthy ones
// A wait/cancel/explore_result whose home shard cannot be revived
// re-pins the work onto a survivor and resolves there (byte-identical
// fronts for explorations, cache hits for finished jobs).
//
//   $ printf '%s\n' '{"op":"synthesize","topology":"two_stage"}' '{"op":"stats"}' |
//       lorouter --worker ./losynthd --shards 4 --journal-root /tmp/lr
//                --cache-dir /tmp/lr/cache
//
// Flags:
//   --worker PATH        losynthd binary to spawn (default: "losynthd",
//                        resolved through PATH)
//   --shards N           worker daemons (default 2)
//   --vnodes N           ring virtual nodes per shard (default 64)
//   --journal-root PATH  per-shard write-ahead journals at PATH/shard<i>;
//                        required for crash recovery (default: off)
//   --cache-dir PATH     shared on-disk result store for every shard --
//                        the peer-fill channel (default: off)
//   --threads N          forwarded to each worker (per-shard pool size)
//   --queue-depth N      forwarded to each worker
//   --cache-capacity N   forwarded to each worker (in-memory LRU entries)
//   --request-timeout T  seconds before a silent shard is declared wedged
//                        and recycled, e.g. 30s (default 300s)
//   --no-restart         never respawn dead shards; only re-route
//   --max-restarts N     restart budget per shard (default 16)
//   --backoff-base T     restart backoff base delay, e.g. 0.05s: the n-th
//                        consecutive death waits base*2^(n-1), jittered
//                        +-25% (first death revives immediately)
//   --backoff-max T      backoff cap; also the healthy-uptime span that
//                        resets the streak (default 5s)
//   --backoff-seed N     jitter RNG seed (deterministic chaos runs)
//   --tech PATH          technology file, used for the router's routing
//                        keys AND forwarded to each worker (default:
//                        built-in generic060)
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "cluster/router.hpp"
#include "tech/technology.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--worker PATH] [--shards N] [--vnodes N]\n"
               "          [--journal-root PATH] [--cache-dir PATH]\n"
               "          [--threads N] [--queue-depth N] [--cache-capacity N]\n"
               "          [--request-timeout T] [--no-restart]\n"
               "          [--max-restarts N] [--backoff-base T]\n"
               "          [--backoff-max T] [--backoff-seed N] [--tech PATH]\n",
               argv0);
}

/// "30s", "2.5s" or a bare number of seconds.
double parseDuration(const std::string& text) {
  std::string digits = text;
  if (!digits.empty() && digits.back() == 's') digits.pop_back();
  char* end = nullptr;
  const double v = std::strtod(digits.c_str(), &end);
  if (end == digits.c_str() || *end != '\0' || v < 0.0) {
    std::fprintf(stderr, "lorouter: bad duration \"%s\"\n", text.c_str());
    std::exit(2);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lo;

  cluster::RouterOptions options;
  std::string worker = "losynthd";
  std::vector<std::string> workerFlags;
  std::string techPath;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--worker") worker = value();
    else if (arg == "--shards") options.shards = std::stoi(value());
    else if (arg == "--vnodes") options.vnodesPerShard = std::stoi(value());
    else if (arg == "--journal-root") options.journalRoot = value();
    else if (arg == "--cache-dir") options.cacheDir = value();
    else if (arg == "--threads" || arg == "--queue-depth" ||
             arg == "--cache-capacity") {
      workerFlags.push_back(arg);
      workerFlags.push_back(value());
    } else if (arg == "--request-timeout") {
      options.requestTimeoutSeconds = parseDuration(value());
    } else if (arg == "--no-restart") options.restartDeadShards = false;
    else if (arg == "--max-restarts") options.maxRestartsPerShard = std::stoi(value());
    else if (arg == "--backoff-base") {
      options.restartBackoffBaseSeconds = parseDuration(value());
    } else if (arg == "--backoff-max") {
      options.restartBackoffMaxSeconds = parseDuration(value());
    } else if (arg == "--backoff-seed") {
      options.backoffJitterSeed = std::strtoull(value().c_str(), nullptr, 0);
    }
    else if (arg == "--tech") techPath = value();
    else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  try {
    if (!techPath.empty()) {
      options.technology = tech::Technology::fromFile(techPath);
      workerFlags.push_back("--tech");
      workerFlags.push_back(techPath);
    }
    options.workerArgv.push_back(worker);
    for (std::string& flag : workerFlags) {
      options.workerArgv.push_back(std::move(flag));
    }

    cluster::ClusterRouter router(std::move(options));
    std::fprintf(stderr, "lorouter: %d shard(s) up behind %s\n",
                 router.shardCount(), worker.c_str());
    router.serve(std::cin, std::cout);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lorouter: fatal: %s\n", e.what());
    return 1;
  }
  return 0;
}
