// lostress: concurrent soak of the synthesis service under a fault plan.
//
// Spins up an in-process daemon (the exact JobScheduler + ServiceProtocol
// objects losynthd serves) and hammers it with N client threads speaking
// the line protocol -- async submissions over a small pool of distinct
// design points, waits, cancellations, stats -- while a seeded fault plan
// injects transient engine errors, deadline overruns, cache-store write
// failures and truncated responses.  At the end the invariants from
// testkit/soak.hpp are checked: no lost jobs, stats monotonicity, cache
// hit accounting, bounded drain.  Exit 0 on a clean run, 1 on any
// violation; the full report prints as JSON on stdout.
//
//   $ lostress --seed 1 --faults basic --duration 10s --clients 4
//
// Flags:
//   --seed N             fault-plan and workload seed (default 1)
//   --faults NAME        plan preset: "basic" (recoverable sites @ 10%),
//                        "journal_torn_write" (torn journal appends) or "none"
//   --duration T         wall-clock soak length, e.g. 10s or 2.5 (seconds)
//   --clients N          client threads (default 4)
//   --threads N          scheduler workers (default 2)
//   --pool N             distinct design points clients draw from (default 12)
//   --max-requests N     per-client request cap, 0 = duration-only (default 0)
//   --cache-dir PATH     on-disk result store for the run
//   --journal-dir PATH   write-ahead job journal; arms the crash sites and
//                        adds a kill -> restart -> replay recovery phase
//   --drain-timeout T    bound on the post-soak drain (default 60s)
//   --tech PATH          technology file (default: built-in generic060)
//
// Cluster mode (--worker): instead of an in-process daemon, the soak
// boots a ClusterRouter over real losynthd child shards and drives it
// through the same line protocol; see cluster/soak.hpp for the invariants
// (no lost jobs, no leaked shard failures, post-drain resubmission all
// cache hits, kill evidence).
//
//   $ lostress --worker ./losynthd --shards 3 --kill-shard --duration 5s
//              --journal-dir /tmp/ls/journal --cache-dir /tmp/ls/cache
//
//   --worker PATH        losynthd binary: switches to cluster mode
//   --shards N           worker shards behind the router (default 2)
//   --kill-shard         SIGKILL one shard mid-soak; the run must absorb it
//                        (requires --journal-dir for the replay)
//   --chaos SEED         seeded chaos schedule: kill -9, SIGSTOP wedges and
//                        drain/re-add events at deterministic request
//                        indices, with an async exploration riding through
//                        the storm (its front must match a clean re-run
//                        byte for byte); SEED 0 derives one from --seed
#include <cstdio>
#include <cstdlib>
#include <string>

#include "cluster/soak.hpp"
#include "tech/technology.hpp"
#include "testkit/soak.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seed N] [--faults basic|none|journal_torn_write]\n"
               "          [--duration T] [--clients N] [--threads N] [--pool N]\n"
               "          [--max-requests N] [--cache-dir PATH]\n"
               "          [--journal-dir PATH] [--drain-timeout T] [--tech PATH]\n"
               "          [--worker LOSYNTHD [--shards N] [--kill-shard]\n"
               "           [--chaos SEED]]\n",
               argv0);
}

/// "10s", "2.5s" or a bare number of seconds.
double parseDuration(const std::string& text) {
  std::string digits = text;
  if (!digits.empty() && digits.back() == 's') digits.pop_back();
  char* end = nullptr;
  const double v = std::strtod(digits.c_str(), &end);
  if (end == digits.c_str() || *end != '\0' || v < 0.0) {
    std::fprintf(stderr, "lostress: bad duration \"%s\"\n", text.c_str());
    std::exit(2);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lo;

  testkit::SoakOptions options;
  std::string faultsName = "none";
  std::string techPath;
  std::string workerBin;
  int shards = 2;
  bool killShard = false;
  bool chaos = false;
  std::uint64_t chaosSeed = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seed") options.seed = std::stoull(value());
    else if (arg == "--faults") faultsName = value();
    else if (arg == "--duration") options.durationSeconds = parseDuration(value());
    else if (arg == "--clients") options.clients = std::stoi(value());
    else if (arg == "--threads") options.schedulerThreads = std::stoi(value());
    else if (arg == "--pool") options.poolSize = std::stoi(value());
    else if (arg == "--max-requests") options.maxRequestsPerClient = std::stoi(value());
    else if (arg == "--cache-dir") options.cacheDir = value();
    else if (arg == "--journal-dir") options.journalDir = value();
    else if (arg == "--drain-timeout") options.drainTimeoutSeconds = parseDuration(value());
    else if (arg == "--tech") techPath = value();
    else if (arg == "--worker") workerBin = value();
    else if (arg == "--shards") shards = std::stoi(value());
    else if (arg == "--kill-shard") killShard = true;
    else if (arg == "--chaos") {
      chaos = true;
      chaosSeed = std::stoull(value());
    }
    else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  try {
    if (!workerBin.empty()) {
      cluster::ClusterSoakOptions clusterOptions;
      clusterOptions.seed = options.seed;
      clusterOptions.clients = options.clients;
      clusterOptions.durationSeconds = options.durationSeconds;
      clusterOptions.maxRequestsPerClient = options.maxRequestsPerClient;
      clusterOptions.poolSize = options.poolSize;
      clusterOptions.drainTimeoutSeconds = options.drainTimeoutSeconds;
      clusterOptions.killOneShard = killShard;
      clusterOptions.chaos = chaos;
      clusterOptions.chaosSeed = chaosSeed;
      clusterOptions.router.shards = shards;
      if (chaos) {
        // Wedged shards stall a request for the full timeout; keep the
        // chaos run snappy and let backoff jitter follow the chaos seed.
        clusterOptions.router.requestTimeoutSeconds = 3.0;
        if (chaosSeed != 0) clusterOptions.router.backoffJitterSeed = chaosSeed;
      }
      clusterOptions.router.journalRoot = options.journalDir;
      clusterOptions.router.cacheDir = options.cacheDir;
      clusterOptions.router.workerArgv = {workerBin, "--threads",
                                          std::to_string(options.schedulerThreads)};
      if (!techPath.empty()) {
        clusterOptions.router.technology = tech::Technology::fromFile(techPath);
        clusterOptions.router.workerArgv.push_back("--tech");
        clusterOptions.router.workerArgv.push_back(techPath);
      }

      const cluster::ClusterSoakReport report = cluster::runClusterSoak(clusterOptions);
      std::printf("%s\n", report.toJson().dump().c_str());
      std::fprintf(stderr,
                   "lostress: cluster: %llu requests over %d shard(s) in "
                   "%.2fs, %llu jobs tracked, %llu restart(s), %llu "
                   "rerouted, %zu violation(s)\n",
                   static_cast<unsigned long long>(report.requests), shards,
                   report.elapsedSeconds,
                   static_cast<unsigned long long>(report.trackedJobs),
                   static_cast<unsigned long long>(report.restarts),
                   static_cast<unsigned long long>(report.rerouted),
                   report.violations.size());
      for (const std::string& v : report.violations) {
        std::fprintf(stderr, "lostress: VIOLATION: %s\n", v.c_str());
      }
      return report.ok() ? 0 : 1;
    }

    options.faults = testkit::FaultPlanOptions::preset(faultsName, options.seed);
    const tech::Technology technology = techPath.empty()
                                            ? tech::Technology::generic060()
                                            : tech::Technology::fromFile(techPath);

    const testkit::SoakReport report = testkit::runSoak(technology, options);
    std::printf("%s\n", report.toJson().dump().c_str());
    std::fprintf(stderr,
                 "lostress: %llu requests from %d clients in %.2fs, %llu jobs "
                 "tracked (%llu shed, %llu rejected), %llu faults fired, "
                 "%zu violation(s)\n",
                 static_cast<unsigned long long>(report.requests),
                 options.clients, report.elapsedSeconds,
                 static_cast<unsigned long long>(report.trackedJobs),
                 static_cast<unsigned long long>(report.metrics.shed),
                 static_cast<unsigned long long>(report.rejected),
                 static_cast<unsigned long long>(
                     [&] {
                       std::uint64_t total = 0;
                       for (const auto& [site, n] : report.faultsFired) total += n;
                       return total;
                     }()),
                 report.violations.size());
    if (report.recovery.ran) {
      std::fprintf(stderr,
                   "lostress: recovery: crashed=%d replayed=%llu pending=%llu "
                   "cache_served=%llu re_run=%llu compactions=%llu torn_tail=%d\n",
                   report.recovery.crashed ? 1 : 0,
                   static_cast<unsigned long long>(report.recovery.replayedRecords),
                   static_cast<unsigned long long>(report.recovery.pendingAtBoot),
                   static_cast<unsigned long long>(report.recovery.servedFromCache),
                   static_cast<unsigned long long>(report.recovery.reRun),
                   static_cast<unsigned long long>(report.recovery.compactions),
                   report.recovery.tornTail ? 1 : 0);
    }
    for (const std::string& v : report.violations) {
      std::fprintf(stderr, "lostress: VIOLATION: %s\n", v.c_str());
    }
    return report.ok() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lostress: fatal: %s\n", e.what());
    return 1;
  }
}
