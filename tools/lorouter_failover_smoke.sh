#!/bin/sh
# lorouter explore-failover smoke test (also run by CI): kill -9 the shard
# that owns an in-flight exploration, on a router that is NOT allowed to
# restart shards (--no-restart), and assert the study still completes --
# the router re-pins the journalled session onto a survivor and the
# failed-over front is byte-identical to a clean run of the same request
# (per-point cache_hit is provenance, not content, and is stripped before
# comparing).
set -eu

ROUTER="$1"
WORKER="$2"
SCRATCH="$(mktemp -d)"
trap 'rm -rf "$SCRATCH"' EXIT

# Case 1 with a loose tolerance: fast, deterministic, non-empty front.
EXPLORE='{"op":"explore","case":1,"budget":5,"max_rounds":2,"tolerance":0.2,"axes":[{"field":"gbw","lo":50e6,"hi":65e6,"points":2}]}'
EXPLORE_ASYNC='{"op":"explore","async":true,"case":1,"budget":5,"max_rounds":2,"tolerance":0.2,"axes":[{"field":"gbw","lo":50e6,"hi":65e6,"points":2}]}'

front_of() {
  # The front array, with each point's cache_hit flag scrubbed.
  grep -o '"front":\[[^]]*\]' \
    | sed -e 's/,"cache_hit":true//g' -e 's/,"cache_hit":false//g'
}

# --- Phase 1: a clean synchronous run captures the reference front. ------
REF_OUT="$SCRATCH/ref_out"
printf '%s\n%s\n' "$EXPLORE" '{"op":"shutdown"}' \
  | "$ROUTER" --worker "$WORKER" --shards 2 --threads 2 \
      --journal-root "$SCRATCH/ref_journals" --cache-dir "$SCRATCH/ref_cache" \
      --request-timeout 120s > "$REF_OUT" 2> "$SCRATCH/ref_err"
sed -n 1p "$REF_OUT" | grep -q '"ok":true' || {
  echo "FAIL: reference exploration failed" >&2
  cat "$REF_OUT" "$SCRATCH/ref_err" >&2
  exit 1
}
REF_FRONT=$(sed -n 1p "$REF_OUT" | front_of)
[ -n "$REF_FRONT" ] || {
  echo "FAIL: reference run produced no front" >&2
  exit 1
}

# --- Phase 2: fresh cluster, async explore, kill -9 the owning shard. ----
FIFO="$SCRATCH/in"
mkfifo "$FIFO"
OUT="$SCRATCH/out"
"$ROUTER" --worker "$WORKER" --shards 2 --threads 2 --no-restart \
  --journal-root "$SCRATCH/journals" --cache-dir "$SCRATCH/cache" \
  --request-timeout 120s < "$FIFO" > "$OUT" 2> "$SCRATCH/err" &
PID=$!
exec 3> "$FIFO"
printf '%s\n%s\n' "$EXPLORE_ASYNC" '{"op":"health"}' >&3

LINES=0
for _ in $(seq 1 600); do
  LINES=$(wc -l < "$OUT")
  [ "$LINES" -ge 2 ] && break
  sleep 0.1
done
[ "$LINES" -ge 2 ] || {
  echo "FAIL: no ack/health before timeout" >&2
  cat "$SCRATCH/err" >&2
  exit 1
}
ACK=$(sed -n 1p "$OUT")
printf '%s\n' "$ACK" | grep -q '"ok":true' || {
  echo "FAIL: async explore was not accepted" >&2
  cat "$OUT" >&2
  exit 1
}
VICTIM=$(printf '%s\n' "$ACK" | grep -o '"shard":[0-9]*' | head -1 | cut -d: -f2)
EXPLORE_ID=$(printf '%s\n' "$ACK" | grep -o '"explore_id":[0-9]*' | cut -d: -f2)
VICTIM_PID=$(sed -n 2p "$OUT" | grep -o '"pid":[0-9]*' \
  | sed -n "$((VICTIM + 1))p" | cut -d: -f2)
[ -n "$VICTIM_PID" ] || {
  echo "FAIL: could not extract shard $VICTIM pid from health" >&2
  sed -n 2p "$OUT" >&2
  exit 1
}
kill -9 "$VICTIM_PID"
sleep 0.3

# --- Phase 3: the result must come back anyway, from a survivor. ---------
printf '{"op":"explore_result","explore_id":%s}\n{"op":"shutdown"}\n' \
  "$EXPLORE_ID" >&3
exec 3>&-
wait "$PID" || {
  echo "FAIL: router exited non-zero" >&2
  cat "$SCRATCH/err" >&2
  exit 1
}

cat "$OUT"
RESULT=$(sed -n 3p "$OUT")
printf '%s\n' "$RESULT" | grep -q '"ok":true' || {
  echo "FAIL: explore_result failed after the shard kill" >&2
  exit 1
}
RESULT_SHARD=$(printf '%s\n' "$RESULT" | grep -o '"shard":[0-9]*' | head -1 \
  | cut -d: -f2)
[ "$RESULT_SHARD" != "$VICTIM" ] || {
  echo "FAIL: result claims the dead shard $VICTIM answered it" >&2
  exit 1
}
STORM_FRONT=$(printf '%s\n' "$RESULT" | front_of)
[ -n "$STORM_FRONT" ] || {
  echo "FAIL: failed-over exploration produced no front" >&2
  exit 1
}
[ "$STORM_FRONT" = "$REF_FRONT" ] || {
  echo "FAIL: failed-over front diverged from the clean reference run" >&2
  printf 'reference: %s\nfailover:  %s\n' "$REF_FRONT" "$STORM_FRONT" >&2
  exit 1
}
echo "lorouter failover smoke OK"
