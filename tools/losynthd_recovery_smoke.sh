#!/bin/sh
# losynthd crash-recovery smoke test (also run by CI): boot a daemon with a
# write-ahead journal, submit async work, SIGKILL the process mid-flight,
# then boot a second daemon on the same journal + cache directories and
# assert nothing was lost and nothing runs twice -- the replayed backlog
# drains by itself and identical resubmissions are all served from the
# result cache (exactly-once at the cache-key level).
set -eu

BIN="$1"
SCRATCH="$(mktemp -d)"
trap 'rm -rf "$SCRATCH"' EXIT
JOURNAL="$SCRATCH/journal"
CACHE="$SCRATCH/cache"
mkdir -p "$JOURNAL" "$CACHE"

JOBS=""
for GBW in 41 42 43 44 45 46; do
  JOBS="$JOBS{\"op\":\"synthesize\",\"async\":true,\"case\":1,\"label\":\"r$GBW\",\"spec\":{\"gbw\":${GBW}e6}}
"
done

# --- Phase 1: submit through a FIFO (stdin stays open), then kill -9. ----
FIFO="$SCRATCH/in"
mkfifo "$FIFO"
OUT1="$SCRATCH/out1"
"$BIN" --threads 1 --journal "$JOURNAL" --cache-dir "$CACHE" \
  < "$FIFO" > "$OUT1" 2> "$SCRATCH/err1" &
PID=$!
exec 3> "$FIFO"
printf '%s' "$JOBS" >&3

# Every async submission is acknowledged only after its journal append is
# durable, so once six acks are out the kill cannot lose a submission.
ACKED=0
for _ in $(seq 1 300); do
  ACKED=$(wc -l < "$OUT1")
  [ "$ACKED" -ge 6 ] && break
  sleep 0.1
done
[ "$ACKED" -ge 6 ] || {
  echo "FAIL: only $ACKED/6 submissions acknowledged before timeout" >&2
  cat "$SCRATCH/err1" >&2
  exit 1
}
kill -9 "$PID" 2>/dev/null || true
exec 3>&-
wait "$PID" 2>/dev/null || true

for N in 1 2 3 4 5 6; do
  sed -n "${N}p" "$OUT1" | grep -q '"ok":true' || {
    echo "FAIL: submission $N was not accepted" >&2
    cat "$OUT1" >&2
    exit 1
  }
done

# --- Phase 2: reboot on the same directories and demand exactly-once. ----
OUT2=$(printf '%s%s\n%s\n' "$JOBS" '{"op":"health"}' '{"op":"shutdown"}' \
  | sed 's/"async":true,//' \
  | "$BIN" --threads 1 --journal "$JOURNAL" --cache-dir "$CACHE" \
      2> "$SCRATCH/err2")

printf '%s\n' "$OUT2"
grep -q 'journal' "$SCRATCH/err2" || {
  echo "FAIL: reboot did not report journal replay" >&2
  cat "$SCRATCH/err2" >&2
  exit 1
}

[ "$(printf '%s\n' "$OUT2" | wc -l)" -eq 8 ] || {
  echo "FAIL: expected 8 response lines from the rebooted daemon" >&2
  exit 1
}
# The six resubmissions ran behind the replayed backlog: every one must be
# answered from the cache, proving no result was lost and no engine run
# was duplicated for an already-answered key.
for N in 1 2 3 4 5 6; do
  LINE=$(printf '%s\n' "$OUT2" | sed -n "${N}p")
  printf '%s\n' "$LINE" | grep -q '"ok":true' || {
    echo "FAIL: resubmission $N failed after recovery" >&2
    exit 1
  }
  printf '%s\n' "$LINE" | grep -q '"cache_hit":true' || {
    echo "FAIL: resubmission $N re-ran the engine (result lost in recovery)" >&2
    exit 1
  }
done
HEALTH=$(printf '%s\n' "$OUT2" | sed -n 7p)
printf '%s\n' "$HEALTH" | grep -q '"enabled":true' || {
  echo "FAIL: health does not report the journal as enabled" >&2
  exit 1
}
printf '%s\n' "$HEALTH" | grep -q '"recovered_remaining":0' || {
  echo "FAIL: recovered backlog did not drain" >&2
  exit 1
}
# (A torn final record is legitimate here: the kill can land mid-append of
# a worker's started/finished record.  Replay truncates it either way.)
echo "losynthd recovery smoke OK"
