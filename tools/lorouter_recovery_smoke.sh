#!/bin/sh
# lorouter kill-one-shard recovery smoke test (also run by CI): boot a
# router over three journalled losynthd shards, submit async work, SIGKILL
# the shard that owns the first job, then -- through the *same* router,
# which must absorb the death transparently -- resubmit everything and
# assert exactly-once at the cache-key level: every resubmission answers
# ok + cache_hit:true (the dead shard's backlog was replayed, not lost,
# and nothing ran twice), and cluster health shows the restart.
set -eu

ROUTER="$1"
WORKER="$2"
SCRATCH="$(mktemp -d)"
trap 'rm -rf "$SCRATCH"' EXIT
JOURNALS="$SCRATCH/journals"
CACHE="$SCRATCH/cache"
mkdir -p "$JOURNALS" "$CACHE"

JOBS=""
for GBW in 51 52 53 54 55 56 57 58; do
  JOBS="$JOBS{\"op\":\"synthesize\",\"async\":true,\"case\":1,\"label\":\"c$GBW\",\"spec\":{\"gbw\":${GBW}e6}}
"
done

# --- Phase 1: boot the cluster, submit through a FIFO, probe health. -----
FIFO="$SCRATCH/in"
mkfifo "$FIFO"
OUT="$SCRATCH/out"
"$ROUTER" --worker "$WORKER" --shards 3 --threads 1 \
  --journal-root "$JOURNALS" --cache-dir "$CACHE" --request-timeout 120s \
  < "$FIFO" > "$OUT" 2> "$SCRATCH/err" &
PID=$!
exec 3> "$FIFO"
printf '%s%s\n' "$JOBS" '{"op":"health"}' >&3

# Eight acks (each durably journalled on its shard before the ack) plus
# the health snapshot.
LINES=0
for _ in $(seq 1 600); do
  LINES=$(wc -l < "$OUT")
  [ "$LINES" -ge 9 ] && break
  sleep 0.1
done
[ "$LINES" -ge 9 ] || {
  echo "FAIL: only $LINES/9 responses before timeout" >&2
  cat "$SCRATCH/err" >&2
  exit 1
}

for N in 1 2 3 4 5 6 7 8; do
  LINE=$(sed -n "${N}p" "$OUT")
  printf '%s\n' "$LINE" | grep -q '"ok":true' || {
    echo "FAIL: submission $N was not accepted" >&2
    cat "$OUT" >&2
    exit 1
  }
  # The routed ack must say where the job went and what key it lives under.
  printf '%s\n' "$LINE" | grep -q '"shard":' || {
    echo "FAIL: ack $N carries no shard attribution" >&2
    exit 1
  }
  printf '%s\n' "$LINE" | grep -q '"cache_key":"' || {
    echo "FAIL: ack $N carries no cache_key" >&2
    exit 1
  }
done

# --- Phase 2: SIGKILL the shard owning job 1, from outside the router. ---
VICTIM=$(sed -n 1p "$OUT" | grep -o '"shard":[0-9]*' | head -1 | cut -d: -f2)
VICTIM_PID=$(sed -n 9p "$OUT" | grep -o '"pid":[0-9]*' \
  | sed -n "$((VICTIM + 1))p" | cut -d: -f2)
[ -n "$VICTIM_PID" ] || {
  echo "FAIL: could not extract shard $VICTIM pid from health" >&2
  sed -n 9p "$OUT" >&2
  exit 1
}
kill -9 "$VICTIM_PID"
sleep 0.3

# --- Phase 3: resubmit everything synchronously through the same router. -
printf '%s%s\n%s\n' "$JOBS" '{"op":"health"}' '{"op":"shutdown"}' \
  | sed 's/"async":true,//' >&3
exec 3>&-
wait "$PID" || {
  echo "FAIL: router exited non-zero" >&2
  cat "$SCRATCH/err" >&2
  exit 1
}

cat "$OUT"
[ "$(wc -l < "$OUT")" -eq 19 ] || {
  echo "FAIL: expected 19 response lines in total" >&2
  exit 1
}

# Every resubmission must be served from the cache: the live shards still
# hold their results, and the victim's journal replay finished the rest
# exactly once before the identical resend reached its queue.
for N in 10 11 12 13 14 15 16 17; do
  LINE=$(sed -n "${N}p" "$OUT")
  printf '%s\n' "$LINE" | grep -q '"ok":true' || {
    echo "FAIL: resubmission on line $N failed after the shard kill" >&2
    exit 1
  }
  printf '%s\n' "$LINE" | grep -q '"cache_hit":true' || {
    echo "FAIL: resubmission on line $N re-ran the engine (result lost)" >&2
    exit 1
  }
done

HEALTH=$(sed -n 18p "$OUT")
printf '%s\n' "$HEALTH" | grep -q '"all_alive":true' || {
  echo "FAIL: cluster is not fully alive after the kill" >&2
  exit 1
}
printf '%s\n' "$HEALTH" | grep -q '"restarts":1' || {
  echo "FAIL: health does not report the shard restart" >&2
  exit 1
}
printf '%s\n' "$HEALTH" | grep -o '"replayed_records":[0-9]*' \
  | grep -qv ':0$' || {
  echo "FAIL: no shard reports a journal replay" >&2
  exit 1
}
echo "lorouter recovery smoke OK"
