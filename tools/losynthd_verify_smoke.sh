#!/bin/sh
# losynthd verify-op smoke test (also run by CI): one "verify" request
# must run the post-layout verification tier end to end and answer with
# the verdict fields, and a duplicate must be served from the cache with
# the identical report.
set -eu

BIN="$1"

REQ='{"op":"verify","label":"vsmoke","case":"case1","summary":true}'
OUT=$(printf '%s\n%s\n' "$REQ" "$REQ" | "$BIN" --threads 1)

printf '%s\n' "$OUT"

[ "$(printf '%s\n' "$OUT" | wc -l)" -eq 2 ] || {
  echo "FAIL: expected 2 response lines" >&2
  exit 1
}
printf '%s\n' "$OUT" | sed -n 1p | grep -q '"ok":true' || {
  echo "FAIL: verify request did not succeed" >&2
  exit 1
}
printf '%s\n' "$OUT" | sed -n 1p | grep -q '"state":"done"' || {
  echo "FAIL: verify job did not finish" >&2
  exit 1
}
printf '%s\n' "$OUT" | sed -n 1p | grep -q '"post_layout_ran":true' || {
  echo "FAIL: post-layout verification tier did not run" >&2
  exit 1
}
printf '%s\n' "$OUT" | sed -n 1p | grep -q '"post_layout_pass":' || {
  echo "FAIL: response carries no post-layout verdict" >&2
  exit 1
}
printf '%s\n' "$OUT" | sed -n 1p | grep -q '"deltas":' || {
  echo "FAIL: response carries no per-spec delta rows" >&2
  exit 1
}
printf '%s\n' "$OUT" | sed -n 2p | grep -q '"cache_hit":true' || {
  echo "FAIL: duplicate verify was not served from the cache" >&2
  exit 1
}
echo "losynthd verify smoke OK"
