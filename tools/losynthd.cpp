// losynthd: the synthesis job daemon.
//
// Speaks the lo_service line protocol (protocol.hpp) over stdin/stdout:
// one JSON request per line in, one JSON response per line out.  External
// clients -- scripts, notebooks, other services -- drive the full
// size -> layout -> extract -> verify flow without linking any C++.
//
//   $ printf '%s\n' '{"op":"synthesize","topology":"two_stage"}' '{"op":"stats"}' |
//       losynthd --threads 4
//
// The lo_explore ops (explore / explore_result, plus the "explorations"
// stats section) are installed through the protocol's extension seam; see
// explore/service_ops.hpp for their schema.
//
// Flags:
//   --threads N          worker pool size (0 = hardware concurrency)
//   --queue-depth N      bounded submission queue (default 256)
//   --cache-capacity N   in-memory LRU entries (default 256)
//   --cache-dir PATH     on-disk result store ("default" = ~/.cache/lo_service)
//   --journal PATH       write-ahead job journal directory: every accepted
//                        job is durably logged before the ack, and a restart
//                        replays the log -- unfinished jobs re-enqueue under
//                        their original ids, finished ones serve from the
//                        cache (pair with --cache-dir for exactly-once).
//                        This covers clean shutdowns too: jobs still queued
//                        or running at `shutdown` stay live in the log and
//                        the next boot picks them up
//   --shed-watermark F   fraction of --queue-depth past which lower-priority
//                        work is shed / submissions answer "overloaded"
//                        (default 1.0 = only at the hard limit)
//   --breaker N          open a topology's circuit breaker after N
//                        consecutive non-transient failures (default 0 = off)
//   --breaker-reset T    seconds an open breaker waits before the half-open
//                        probe (default 30)
//   --trace-log PATH     append one JSON trace line per finished job
//   --tech PATH          technology file (default: built-in generic060)
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "explore/manager.hpp"
#include "explore/service_ops.hpp"
#include "service/protocol.hpp"
#include "service/verify_ops.hpp"
#include "tech/technology.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--threads N] [--queue-depth N] [--cache-capacity N]\n"
               "          [--cache-dir PATH|default] [--journal PATH]\n"
               "          [--shed-watermark F] [--breaker N] [--breaker-reset T]\n"
               "          [--trace-log PATH] [--tech PATH]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lo;

  service::SchedulerOptions options;
  std::string techPath;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--threads") options.threads = std::stoi(value());
    else if (arg == "--queue-depth") options.maxQueueDepth = std::stoul(value());
    else if (arg == "--cache-capacity") options.cache.capacity = std::stoul(value());
    else if (arg == "--cache-dir") {
      const std::string dir = value();
      options.cache.diskDir =
          dir == "default" ? service::CacheOptions::defaultDiskDir() : dir;
    } else if (arg == "--journal") options.journal.dir = value();
    else if (arg == "--shed-watermark") options.shedWatermark = std::stod(value());
    else if (arg == "--breaker") options.breakerFailureThreshold = std::stoi(value());
    else if (arg == "--breaker-reset") options.breakerResetSeconds = std::stod(value());
    else if (arg == "--trace-log") options.traceLogPath = value();
    else if (arg == "--tech") techPath = value();
    else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  try {
    const tech::Technology technology = techPath.empty()
                                            ? tech::Technology::generic060()
                                            : tech::Technology::fromFile(techPath);
    service::JobScheduler scheduler(technology, options);
    if (!options.journal.dir.empty()) {
      const service::HealthSnapshot h = scheduler.health();
      std::fprintf(stderr,
                   "losynthd: journal %s: replayed %llu record(s), recovered "
                   "%llu unfinished job(s)%s\n",
                   options.journal.dir.c_str(),
                   static_cast<unsigned long long>(h.journal.replayedRecords),
                   static_cast<unsigned long long>(h.journal.recoveredJobs),
                   h.journal.tornTailRecovered ? " (torn tail truncated)" : "");
    }
    service::ServiceProtocol protocol(scheduler);
    // The explore session journal shares the job journal's directory
    // (explore.wal next to journal.wal): with --journal set, explorations
    // survive kill -9 the same way jobs do.
    explore::ExploreManager explorations(scheduler, options.journal.dir);
    if (explorations.journalEnabled() && explorations.recoveredSessions() > 0) {
      std::fprintf(stderr, "losynthd: explore journal: restarted %llu session(s)\n",
                   static_cast<unsigned long long>(explorations.recoveredSessions()));
    }
    explore::installExploreOps(protocol, explorations);
    service::installVerifyOps(protocol, scheduler);
    protocol.serve(std::cin, std::cout);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "losynthd: fatal: %s\n", e.what());
    return 1;
  }
  return 0;
}
