#!/bin/sh
# losynthd exploration smoke test (also run by CI): start an exploration
# asynchronously, watch it through the `stats` op, block on its result with
# `explore_result`, then assert the scheduler actually ran points in
# parallel (metrics max_running > 1 with --threads 4).
set -eu

BIN="$1"

# Case 4 (full layout feedback) so the synthesised points actually meet
# their specs; case 1's extracted GBW falls ~9% short and the whole grid
# would be infeasible.
EXPLORE='{"op":"explore","async":true,"case":4,"budget":12,"max_rounds":1,"tolerance":0.05,"axes":[{"field":"gbw","lo":55e6,"hi":65e6,"points":2},{"field":"cload","lo":2e-12,"hi":3e-12,"points":2}]}'
OUT=$(printf '%s\n%s\n%s\n%s\n' \
  "$EXPLORE" \
  '{"op":"stats"}' \
  '{"op":"explore_result","explore_id":1}' \
  '{"op":"stats"}' | "$BIN" --threads 4)

printf '%s\n' "$OUT"

[ "$(printf '%s\n' "$OUT" | wc -l)" -eq 4 ] || {
  echo "FAIL: expected 4 response lines" >&2
  exit 1
}
printf '%s\n' "$OUT" | sed -n 1p | grep -q '"ok":true' || {
  echo "FAIL: explore submission did not succeed" >&2
  exit 1
}
printf '%s\n' "$OUT" | sed -n 1p | grep -q '"explore_id":1' || {
  echo "FAIL: explore did not return explore_id 1" >&2
  exit 1
}
printf '%s\n' "$OUT" | sed -n 2p | grep -q '"explorations":\[{"id":1' || {
  echo "FAIL: stats does not report the running exploration" >&2
  exit 1
}
printf '%s\n' "$OUT" | sed -n 3p | grep -q '"ok":true' || {
  echo "FAIL: explore_result did not succeed" >&2
  exit 1
}
printf '%s\n' "$OUT" | sed -n 3p | grep -q '"front":\[{' || {
  echo "FAIL: explore_result returned an empty front" >&2
  exit 1
}
printf '%s\n' "$OUT" | sed -n 4p | grep -q '"phase":"done"' || {
  echo "FAIL: final stats does not show the exploration as done" >&2
  exit 1
}
printf '%s\n' "$OUT" | sed -n 4p | grep -Eq '"max_running":([2-9]|[1-9][0-9])' || {
  echo "FAIL: scheduler never had more than one job running" >&2
  exit 1
}
echo "losynthd explore smoke OK"
