#!/bin/sh
# lorouter drain-under-load smoke test (also run by CI): submit a batch of
# async jobs across a three-shard cluster, drain the shard that owns the
# first one while the batch is in flight, and assert zero loss -- every
# router id still resolves "done" through a single multiplexed wait (the
# drained shard's ids on its inheritors), cluster health shows two members
# all alive, and re-admitting the shard restores the three-member ring.
set -eu

ROUTER="$1"
WORKER="$2"
SCRATCH="$(mktemp -d)"
trap 'rm -rf "$SCRATCH"' EXIT

FIFO="$SCRATCH/in"
mkfifo "$FIFO"
OUT="$SCRATCH/out"
"$ROUTER" --worker "$WORKER" --shards 3 --threads 1 \
  --journal-root "$SCRATCH/journals" --cache-dir "$SCRATCH/cache" \
  --request-timeout 120s < "$FIFO" > "$OUT" 2> "$SCRATCH/err" &
PID=$!
exec 3> "$FIFO"

JOBS=""
for GBW in 61 62 63 64 65 66 67 68 69; do
  JOBS="$JOBS{\"op\":\"synthesize\",\"async\":true,\"case\":1,\"spec\":{\"gbw\":${GBW}e6}}
"
done
printf '%s' "$JOBS" >&3

LINES=0
for _ in $(seq 1 600); do
  LINES=$(wc -l < "$OUT")
  [ "$LINES" -ge 9 ] && break
  sleep 0.1
done
[ "$LINES" -ge 9 ] || {
  echo "FAIL: only $LINES/9 acks before timeout" >&2
  cat "$SCRATCH/err" >&2
  exit 1
}
IDS=""
for N in 1 2 3 4 5 6 7 8 9; do
  LINE=$(sed -n "${N}p" "$OUT")
  printf '%s\n' "$LINE" | grep -q '"ok":true' || {
    echo "FAIL: submission $N was not accepted" >&2
    cat "$OUT" >&2
    exit 1
  }
  ID=$(printf '%s\n' "$LINE" | grep -o '"id":[0-9]*' | head -1 | cut -d: -f2)
  IDS="$IDS${IDS:+,}$ID"
done
VICTIM=$(sed -n 1p "$OUT" | grep -o '"shard":[0-9]*' | head -1 | cut -d: -f2)

# Drain under load, then resolve every id in one multiplexed wait.
printf '{"op":"drain","shard":%s}\n{"op":"wait","ids":[%s]}\n{"op":"health"}\n{"op":"add","shard":%s}\n{"op":"shutdown"}\n' \
  "$VICTIM" "$IDS" "$VICTIM" >&3
exec 3>&-
wait "$PID" || {
  echo "FAIL: router exited non-zero" >&2
  cat "$SCRATCH/err" >&2
  exit 1
}

cat "$OUT"
DRAIN=$(sed -n 10p "$OUT")
printf '%s\n' "$DRAIN" | grep -q '"ok":true' || {
  echo "FAIL: drain of shard $VICTIM was refused" >&2
  exit 1
}
printf '%s\n' "$DRAIN" | grep -q "\"drained\":$VICTIM" || {
  echo "FAIL: drain response does not name shard $VICTIM" >&2
  exit 1
}
printf '%s\n' "$DRAIN" | grep -q '"members":2' || {
  echo "FAIL: drain did not leave a two-member ring" >&2
  exit 1
}

WAIT=$(sed -n 11p "$OUT")
printf '%s\n' "$WAIT" | grep -q '"ok":true' || {
  echo "FAIL: multiplexed wait failed after the drain" >&2
  exit 1
}
DONE=$(printf '%s\n' "$WAIT" | grep -o '"state":"done"' | wc -l)
[ "$DONE" -eq 9 ] || {
  echo "FAIL: only $DONE/9 jobs resolved done across the drain (work lost)" >&2
  exit 1
}
if printf '%s\n' "$WAIT" | grep -q "\"shard\":$VICTIM[,}]"; then
  echo "FAIL: an outcome claims the drained shard $VICTIM answered it" >&2
  exit 1
fi

HEALTH=$(sed -n 12p "$OUT")
printf '%s\n' "$HEALTH" | grep -q '"members":2' || {
  echo "FAIL: health does not show two members after the drain" >&2
  exit 1
}
printf '%s\n' "$HEALTH" | grep -q '"all_alive":true' || {
  echo "FAIL: surviving members are not all alive" >&2
  exit 1
}

ADD=$(sed -n 13p "$OUT")
printf '%s\n' "$ADD" | grep -q '"ok":true' || {
  echo "FAIL: re-admitting shard $VICTIM was refused" >&2
  exit 1
}
printf '%s\n' "$ADD" | grep -q '"members":3' || {
  echo "FAIL: re-admission did not restore the three-member ring" >&2
  exit 1
}
echo "lorouter drain smoke OK"
