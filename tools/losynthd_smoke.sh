#!/bin/sh
# losynthd end-to-end smoke test (also run by CI): pipe a three-request
# script -- synthesize, the identical synthesize again, stats -- and assert
# the duplicate was served from the result cache.
set -eu

BIN="$1"

REQ='{"op":"synthesize","topology":"folded_cascode_ota","case":1,"label":"smoke"}'
OUT=$(printf '%s\n%s\n%s\n' "$REQ" "$REQ" '{"op":"stats"}' | "$BIN" --threads 1)

printf '%s\n' "$OUT"

[ "$(printf '%s\n' "$OUT" | wc -l)" -eq 3 ] || {
  echo "FAIL: expected 3 response lines" >&2
  exit 1
}
printf '%s\n' "$OUT" | sed -n 1p | grep -q '"ok":true' || {
  echo "FAIL: first synthesize did not succeed" >&2
  exit 1
}
printf '%s\n' "$OUT" | sed -n 1p | grep -q '"cache_hit":false' || {
  echo "FAIL: first synthesize should be a cold run" >&2
  exit 1
}
printf '%s\n' "$OUT" | sed -n 2p | grep -q '"cache_hit":true' || {
  echo "FAIL: duplicate synthesize was not served from the cache" >&2
  exit 1
}
printf '%s\n' "$OUT" | sed -n 3p | grep -q '"hits":1' || {
  echo "FAIL: stats does not report exactly one cache hit" >&2
  exit 1
}
printf '%s\n' "$OUT" | sed -n 3p | grep -q '"misses":1' || {
  echo "FAIL: stats does not report exactly one cache miss" >&2
  exit 1
}
echo "losynthd smoke OK"
