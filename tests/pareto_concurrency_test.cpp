// ParetoArchive under contention: 8 threads hammer insert/front with a
// seeded point set; the final front must equal the single-threaded
// reference exactly.  The non-dominated set of a fixed point set is
// order-independent, so any divergence is a synchronisation bug.
#include <gtest/gtest.h>

#include <random>
#include <thread>
#include <vector>

#include "explore/pareto.hpp"

namespace lo::explore {
namespace {

std::vector<PointEval> seededPoints(std::uint32_t seed, int n) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::vector<PointEval> points;
  points.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    PointEval p;
    p.key = "p" + std::to_string(1000 + i);  // Fixed-width: stable sort order.
    p.ok = true;
    p.feasible = unit(rng) > 0.15;  // A rejected tail, like a real sweep.
    p.powerMw = 0.5 + unit(rng);
    p.areaUm2 = 800.0 + 400.0 * unit(rng);
    p.noiseUv = 40.0 + 30.0 * unit(rng);
    points.push_back(std::move(p));
  }
  return points;
}

void expectSameFront(const std::vector<PointEval>& a,
                     const std::vector<PointEval>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(a[i].powerMw, b[i].powerMw);
    EXPECT_EQ(a[i].areaUm2, b[i].areaUm2);
    EXPECT_EQ(a[i].noiseUv, b[i].noiseUv);
  }
}

TEST(ParetoConcurrency, EightThreadsMatchTheSingleThreadedReference) {
  const std::vector<PointEval> points = seededPoints(99, 400);

  ParetoArchive reference;
  for (const PointEval& p : points) (void)reference.insert(p);
  const std::vector<PointEval> expected = reference.front();
  ASSERT_FALSE(expected.empty());
  ASSERT_LT(expected.size(), points.size());  // Dominance actually pruned.

  constexpr int kThreads = 8;
  for (int round = 0; round < 5; ++round) {
    ParetoArchive shared;
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&shared, &points, t] {
        // Strided partition: every thread's inserts interleave across the
        // whole set, maximising eviction races; front() snapshots mid-churn
        // must never crash or tear.
        for (std::size_t i = static_cast<std::size_t>(t); i < points.size();
             i += kThreads) {
          (void)shared.insert(points[i]);
          if (i % 31 == 0) {
            const std::vector<PointEval> snapshot = shared.front();
            for (std::size_t k = 1; k < snapshot.size(); ++k) {
              EXPECT_LT(snapshot[k - 1].key, snapshot[k].key);
            }
          }
        }
      });
    }
    for (std::thread& w : workers) w.join();
    expectSameFront(shared.front(), expected);
  }
}

TEST(ParetoConcurrency, ConcurrentDuplicateInsertsKeepOneCopy) {
  const std::vector<PointEval> points = seededPoints(7, 32);
  ParetoArchive reference;
  for (const PointEval& p : points) (void)reference.insert(p);

  ParetoArchive shared;
  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&shared, &points] {
      for (const PointEval& p : points) (void)shared.insert(p);
    });
  }
  for (std::thread& w : workers) w.join();
  expectSameFront(shared.front(), reference.front());
}

}  // namespace
}  // namespace lo::explore
