#include "service/cache.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "service/serialize.hpp"

namespace lo::service {
namespace {

/// A synthetic result with awkward doubles, so round trips are exercised
/// on values that do not format tidily.
core::EngineResult makeResult(int seed) {
  core::EngineResult result;
  result.criticalNets = {"out", "tail", "x1"};
  for (int call = 1; call <= 2; ++call) {
    core::EngineIteration it;
    it.layoutCall = call;
    it.netCaps = {seed / 3.0 * 1e-13, 2.5e-13 + seed * 1e-16, 1.0 / 7.0 * 1e-12};
    it.primaryCurrent = 1e-4 + seed * 1e-7;
    it.pairWidth = 17.3e-6 / (seed + 1);
    result.iterations.push_back(it);
  }
  result.layoutCalls = 2;
  result.parasiticConverged = true;
  result.predicted.dcGainDb = 70.0 + seed / 3.0;
  result.predicted.gbwHz = 65e6 + seed;
  result.measured.dcGainDb = 69.0 + seed / 7.0;
  result.measured.gbwHz = 64.9e6 + seed;
  result.measured.settlingTimeNs = 10.500000000000002;
  return result;
}

std::string keyText(const sizing::OtaSpecs& specs,
                    const core::EngineOptions& options = {},
                    tech::ProcessCorner corner = tech::ProcessCorner::kTypical,
                    const std::string& techPrint = "feedfacefeedface") {
  return ResultCache::canonicalText(options, specs, corner, techPrint);
}

TEST(CacheKey, Fnv1aKnownVectors) {
  // Standard FNV-1a 64-bit test vectors.
  EXPECT_EQ(ResultCache::fnv1a(""), 14695981039346656037ull);
  EXPECT_EQ(ResultCache::fnv1a("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(ResultCache::fnv1a("foobar"), 0x85944171f73967e8ull);
}

TEST(CacheKey, CanonicalTextIsFieldOrderAndFormattingInvariant) {
  // Same values, different construction order / literal spelling: the
  // canonical text emits fields in one fixed order from the binary values,
  // so the keys must agree.
  sizing::OtaSpecs a;
  a.gbw = 65e6;
  a.cload = 3e-12;
  sizing::OtaSpecs b;
  b.cload = 0.000000000003;  // Same double as 3e-12.
  b.gbw = 6.5e7;             // Same double as 65e6.
  EXPECT_EQ(keyText(a), keyText(b));

  sizing::OtaSpecs c = a;
  c.gbw = 65e6 + 1.0;  // A genuinely different value must change the key.
  EXPECT_NE(keyText(a), keyText(c));
}

TEST(CacheKey, EveryIdentityFieldFeedsTheKey) {
  const sizing::OtaSpecs specs;
  const std::string base = keyText(specs);

  core::EngineOptions other;
  other.topology = core::kTwoStageTopologyName;
  EXPECT_NE(keyText(specs, other), base);

  core::EngineOptions caseChange;
  caseChange.sizingCase = core::SizingCase::kCase2;
  EXPECT_NE(keyText(specs, caseChange), base);

  core::EngineOptions verifyChange;
  verifyChange.verifyOptions.pointsPerDecade = 24;
  EXPECT_NE(keyText(specs, verifyChange), base);

  EXPECT_NE(keyText(specs, {}, tech::ProcessCorner::kSlow), base);
  EXPECT_NE(keyText(specs, {}, tech::ProcessCorner::kTypical, "0123456789abcdef"),
            base);
}

TEST(CacheKey, HooksAndSchedulingMetadataAreExcluded) {
  // Hooks influence observation, never the numbers: a hooked job must hit
  // the cache entry of an unhooked one.
  core::EngineOptions hooked;
  hooked.hooks.cancelRequested = [] { return false; };
  hooked.hooks.onStage = [](core::EngineStage, double) {};
  EXPECT_EQ(keyText(sizing::OtaSpecs{}, hooked), keyText(sizing::OtaSpecs{}));
}

TEST(CacheKey, TechFingerprintSeparatesTechnologies) {
  const std::string p060 = ResultCache::techFingerprint(tech::Technology::generic060());
  const std::string p100 = ResultCache::techFingerprint(tech::Technology::generic100());
  EXPECT_EQ(p060.size(), 16u);
  EXPECT_NE(p060, p100);
  // Deterministic across calls.
  EXPECT_EQ(p060, ResultCache::techFingerprint(tech::Technology::generic060()));
}

TEST(ResultCacheLru, EvictsLeastRecentlyUsed) {
  CacheOptions options;
  options.capacity = 2;
  ResultCache cache(options);
  cache.insert("k1", makeResult(1));
  cache.insert("k2", makeResult(2));
  EXPECT_TRUE(cache.lookup("k1").has_value());  // Refreshes k1: k2 is now LRU.
  cache.insert("k3", makeResult(3));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.lookup("k2").has_value());  // Evicted.
  EXPECT_TRUE(cache.lookup("k1").has_value());
  EXPECT_TRUE(cache.lookup("k3").has_value());

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.inserts, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(ResultCacheLru, ReinsertRefreshesInsteadOfDuplicating) {
  CacheOptions options;
  options.capacity = 2;
  ResultCache cache(options);
  cache.insert("k1", makeResult(1));
  cache.insert("k2", makeResult(2));
  cache.insert("k1", makeResult(9));  // Refresh, not a new entry.
  EXPECT_EQ(cache.size(), 2u);
  cache.insert("k3", makeResult(3));  // Now k2 is the eviction victim.
  EXPECT_FALSE(cache.lookup("k2").has_value());
  const auto k1 = cache.lookup("k1");
  ASSERT_TRUE(k1.has_value());
  EXPECT_DOUBLE_EQ(k1->predicted.dcGainDb, makeResult(9).predicted.dcGainDb);
}

TEST(ResultCacheLru, ZeroCapacityClampsToOne) {
  CacheOptions options;
  options.capacity = 0;
  ResultCache cache(options);
  cache.insert("k1", makeResult(1));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.lookup("k1").has_value());
}

class DiskCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("lo_cache_test_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  CacheOptions diskOptions() {
    CacheOptions options;
    options.diskDir = dir_.string();
    return options;
  }

  std::filesystem::path dir_;
};

TEST_F(DiskCacheTest, RoundTripIsByteIdentical) {
  const core::EngineResult original = makeResult(5);
  {
    ResultCache writer(diskOptions());
    writer.insert("deadbeefdeadbeef", original);
    EXPECT_EQ(writer.stats().diskWrites, 1u);
  }
  ResultCache reader(diskOptions());  // Fresh memory tier, same store.
  const auto loaded = reader.lookup("deadbeefdeadbeef");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(reader.stats().diskHits, 1u);

  // Byte-identical: the canonical JSON of both must match exactly, and the
  // POD performance blocks must memcmp equal (no double drifted).
  EXPECT_EQ(toJson(*loaded).dump(), toJson(original).dump());
  EXPECT_EQ(std::memcmp(&loaded->measured, &original.measured,
                        sizeof(sizing::OtaPerformance)),
            0);
  EXPECT_EQ(std::memcmp(&loaded->predicted, &original.predicted,
                        sizeof(sizing::OtaPerformance)),
            0);
  ASSERT_EQ(loaded->iterations.size(), original.iterations.size());
  for (std::size_t i = 0; i < original.iterations.size(); ++i) {
    ASSERT_EQ(loaded->iterations[i].netCaps.size(),
              original.iterations[i].netCaps.size());
    for (std::size_t n = 0; n < original.iterations[i].netCaps.size(); ++n) {
      EXPECT_EQ(loaded->iterations[i].netCaps[n], original.iterations[i].netCaps[n]);
    }
  }
}

TEST_F(DiskCacheTest, CorruptEntryCountsAsMissAndIsRepairedByInsert) {
  {
    std::filesystem::create_directories(dir_);
    std::ofstream out(dir_ / "0000000000000bad.json");
    out << "{ not json ";
  }
  ResultCache cache(diskOptions());
  EXPECT_FALSE(cache.lookup("0000000000000bad").has_value());
  EXPECT_EQ(cache.stats().misses, 1u);
  cache.insert("0000000000000bad", makeResult(2));
  ResultCache reader(diskOptions());
  EXPECT_TRUE(reader.lookup("0000000000000bad").has_value());
}

TEST_F(DiskCacheTest, HandTruncatedEntryIsAMissAndIsRepairedByInsert) {
  // Write a genuine entry, then chop it mid-JSON -- the torn-write shape a
  // crash between fwrite and rename can leave behind.
  const core::EngineResult original = makeResult(4);
  {
    ResultCache writer(diskOptions());
    writer.insert("feedbeeffeedbeef", original);
  }
  const std::filesystem::path entry = dir_ / "feedbeeffeedbeef.json";
  const auto fullSize = std::filesystem::file_size(entry);
  std::filesystem::resize_file(entry, fullSize / 2);

  ResultCache cache(diskOptions());
  EXPECT_FALSE(cache.lookup("feedbeeffeedbeef").has_value());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().diskCorrupt, 1u);

  // The miss re-runs and re-inserts; the store heals.
  cache.insert("feedbeeffeedbeef", original);
  ResultCache reader(diskOptions());
  const auto healed = reader.lookup("feedbeeffeedbeef");
  ASSERT_TRUE(healed.has_value());
  EXPECT_EQ(toJson(*healed).dump(), toJson(original).dump());
}

TEST_F(DiskCacheTest, InjectedWriteFailureIsCountedAndToleratedOnRead) {
  CacheOptions faulty = diskOptions();
  faulty.diskWriteFault = [](const std::string& key) {
    return key == "00000000deadc0de";
  };
  {
    ResultCache writer(faulty);
    writer.insert("00000000deadc0de", makeResult(3));  // Store write fails.
    writer.insert("00000000feedf00d", makeResult(6));  // Unaffected key.
    const CacheStats stats = writer.stats();
    EXPECT_EQ(stats.diskWriteFailures, 1u);
    EXPECT_EQ(stats.diskWrites, 1u);
    // The memory tier still serves the result within this process.
    EXPECT_TRUE(writer.lookup("00000000deadc0de").has_value());
  }
  // A fresh process finds a torn entry: a miss, never an exception.
  ResultCache reader(diskOptions());
  EXPECT_FALSE(reader.lookup("00000000deadc0de").has_value());
  EXPECT_EQ(reader.stats().diskCorrupt, 1u);
  EXPECT_TRUE(reader.lookup("00000000feedf00d").has_value());
}

TEST_F(DiskCacheTest, ClearDropsMemoryButDiskSurvives) {
  ResultCache cache(diskOptions());
  cache.insert("cafecafecafecafe", makeResult(7));
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  const auto loaded = cache.lookup("cafecafecafecafe");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(cache.stats().diskHits, 1u);
}

// Two daemons share one store directory in the cluster (peer-fill), so
// concurrent writers racing the same keys must never corrupt an entry:
// staging files are pid/counter-uniquified before the atomic rename.
// With a fixed ".tmp" staging name this test's interleaved writes produce
// diskCorrupt hits on the fresh reader.
TEST_F(DiskCacheTest, TwoWritersOnOneStoreNeverPublishTornEntries) {
  constexpr int kKeys = 24;
  constexpr int kRounds = 40;
  const auto keyName = [](int k) {
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016x", 0x1000 + k);
    return std::string(buf);
  };

  // Two independent caches (as two daemons would have) hammer the same
  // key set from two threads each.
  ResultCache a(diskOptions());
  ResultCache b(diskOptions());
  std::vector<std::thread> writers;
  for (ResultCache* cache : {&a, &b}) {
    for (int t = 0; t < 2; ++t) {
      writers.emplace_back([cache, t, keyName] {
        for (int round = 0; round < kRounds; ++round) {
          for (int k = 0; k < kKeys; ++k) {
            cache->insert(keyName(k), makeResult(k + t));
          }
        }
      });
    }
  }
  for (std::thread& w : writers) w.join();
  EXPECT_EQ(a.stats().diskWriteFailures, 0u);
  EXPECT_EQ(b.stats().diskWriteFailures, 0u);

  // A fresh reader must find every key complete and parseable -- whichever
  // writer won each rename -- and no staging wreckage may linger.
  ResultCache reader(diskOptions());
  for (int k = 0; k < kKeys; ++k) {
    EXPECT_TRUE(reader.lookup(keyName(k)).has_value()) << keyName(k);
  }
  EXPECT_EQ(reader.stats().diskCorrupt, 0u);
  EXPECT_EQ(reader.stats().diskHits, static_cast<std::uint64_t>(kKeys));
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    EXPECT_NE(entry.path().extension(), ".tmp") << entry.path();
  }
}

}  // namespace
}  // namespace lo::service
