// Tests for the lo_cluster layer: the consistent-hash ring's balance and
// stability properties, ShardProcess's POSIX lifecycle (spawn, round
// trip, EOF on death, timeout on wedge), and -- when a losynthd binary is
// available (LOSYNTHD_BIN, or the build-time default) -- a real
// multi-process ClusterRouter end to end: duplicate co-location, sweep
// partitioning, aggregated stats, structured errors and kill-one-shard
// revival.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/process.hpp"
#include "cluster/ring.hpp"
#include "cluster/router.hpp"
#include "service/json.hpp"

namespace lo::cluster {
namespace {

using service::Json;

// ---------------------------------------------------------------- ring --

TEST(ShardRingTest, SpreadsKeysAcrossEveryShard) {
  const int shards = 4;
  ShardRing ring(shards);
  std::map<int, int> perShard;
  const int keys = 2000;
  for (int i = 0; i < keys; ++i) {
    const int owner = ring.ownerOf("key-" + std::to_string(i));
    ASSERT_GE(owner, 0);
    ASSERT_LT(owner, shards);
    ++perShard[owner];
  }
  // 64 vnodes per shard keeps the split well away from degenerate; demand
  // every shard owns at least 5% of a uniform key population.
  for (int s = 0; s < shards; ++s) {
    EXPECT_GT(perShard[s], keys / 20) << "shard " << s << " owns almost nothing";
  }
}

TEST(ShardRingTest, RoutingIsStableAndDeterministic) {
  ShardRing ring(3);
  const std::vector<bool> allAlive(3, true);
  for (int i = 0; i < 200; ++i) {
    const std::string key = "job-" + std::to_string(i);
    EXPECT_EQ(ring.ownerOf(key), ring.ownerOf(key));
    // With everyone alive the route IS the owner.
    EXPECT_EQ(ring.routeOf(key, allAlive), ring.ownerOf(key));
  }
}

TEST(ShardRingTest, DeadShardMovesOnlyItsOwnKeys) {
  ShardRing ring(4);
  std::vector<bool> alive(4, true);
  alive[2] = false;
  int moved = 0;
  for (int i = 0; i < 1000; ++i) {
    const std::string key = "key-" + std::to_string(i);
    const int home = ring.ownerOf(key);
    const int route = ring.routeOf(key, alive);
    ASSERT_GE(route, 0);
    ASSERT_NE(route, 2);
    if (home == 2) {
      ++moved;
    } else {
      // The failure of shard 2 must be invisible to everyone else's keys.
      EXPECT_EQ(route, home);
    }
  }
  EXPECT_GT(moved, 0) << "shard 2 owned no keys at all";
}

TEST(ShardRingTest, AddShardMatchesARingBuiltAtThatSizeUpFront) {
  ShardRing grown(3);
  EXPECT_EQ(grown.addShard(), 3);
  const ShardRing built(4);
  // Elastic growth is deterministic: the grown ring is indistinguishable
  // from one constructed with four shards, so every router that performs
  // the same `add` sequence routes identically.
  for (int i = 0; i < 500; ++i) {
    const std::string key = "key-" + std::to_string(i);
    EXPECT_EQ(grown.ownerOf(key), built.ownerOf(key)) << key;
  }
}

TEST(ShardRingTest, AllDeadRoutesNowhereAndBadArgsThrow) {
  ShardRing ring(2);
  EXPECT_EQ(ring.routeOf("k", {false, false}), -1);
  EXPECT_THROW(ShardRing(0), std::invalid_argument);
  EXPECT_THROW(ShardRing(2, 0), std::invalid_argument);
  EXPECT_THROW((void)ring.routeOf("k", {true}), std::invalid_argument);
}

// ------------------------------------------------------------- process --

TEST(ShardProcessTest, EchoRoundTripThenCleanTerminate) {
  ShardProcess child;
  child.spawn({"sh", "-c", "while read line; do echo \"ack $line\"; done"});
  ASSERT_TRUE(child.running());
  ASSERT_TRUE(child.writeLine("hello"));
  std::string line;
  ASSERT_EQ(child.readLine(line, 10.0), ReadStatus::kOk);
  EXPECT_EQ(line, "ack hello");
  ASSERT_TRUE(child.writeLine("again"));
  ASSERT_EQ(child.readLine(line, 10.0), ReadStatus::kOk);
  EXPECT_EQ(line, "ack again");
  // terminate closes the child's stdin; the read loop ends and it exits.
  child.terminate(5.0);
  EXPECT_FALSE(child.running());
}

TEST(ShardProcessTest, DeathSurfacesAsEofNotAHang) {
  ShardProcess child;
  child.spawn({"sh", "-c", "read one; echo got; exit 0"});
  ASSERT_TRUE(child.writeLine("x"));
  std::string line;
  ASSERT_EQ(child.readLine(line, 10.0), ReadStatus::kOk);
  EXPECT_EQ(line, "got");
  // The child has exited; the next read must be an EOF, promptly.
  EXPECT_EQ(child.readLine(line, 10.0), ReadStatus::kEof);
}

TEST(ShardProcessTest, WedgedChildTimesOutAndKill9Reaps) {
  ShardProcess child;
  child.spawn({"sh", "-c", "sleep 30"});
  std::string line;
  EXPECT_EQ(child.readLine(line, 0.2), ReadStatus::kTimeout);
  child.kill9();
  EXPECT_FALSE(child.running());
  EXPECT_FALSE(child.writeLine("dead"));
}

TEST(ShardProcessTest, ExecFailureIsAnImmediateEof) {
  ShardProcess child;
  child.spawn({"/nonexistent/definitely-not-a-binary"});
  std::string line;
  EXPECT_EQ(child.readLine(line, 10.0), ReadStatus::kEof);
}

// -------------------------------------------------------------- router --

#ifndef LOSYNTHD_BIN_PATH
#define LOSYNTHD_BIN_PATH ""
#endif

std::string losynthdBin() {
  if (const char* env = std::getenv("LOSYNTHD_BIN")) return env;
  return LOSYNTHD_BIN_PATH;
}

class ClusterRouterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    bin_ = losynthdBin();
    if (bin_.empty() || !std::filesystem::exists(bin_)) {
      GTEST_SKIP() << "losynthd binary not available (set LOSYNTHD_BIN)";
    }
    scratch_ = std::filesystem::path(::testing::TempDir()) /
               ("cluster_router_" + std::to_string(::getpid()) + "_" +
                ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(scratch_);
  }

  void TearDown() override {
    if (!scratch_.empty()) std::filesystem::remove_all(scratch_);
  }

  RouterOptions makeOptions(int shards) const {
    RouterOptions options;
    options.workerArgv = {bin_, "--threads", "1"};
    options.shards = shards;
    options.journalRoot = (scratch_ / "journals").string();
    options.cacheDir = (scratch_ / "cache").string();
    options.requestTimeoutSeconds = 120.0;
    return options;
  }

  static Json call(ClusterRouter& router, const std::string& line) {
    return Json::parse(router.handleLine(line));
  }

  static std::string synthLine(int gbwMHz) {
    return R"({"op":"synthesize","case":1,"summary":true,"spec":{"gbw":)" +
           std::to_string(gbwMHz) + R"(e6}})";
  }

  std::string bin_;
  std::filesystem::path scratch_;
};

TEST_F(ClusterRouterTest, DuplicatesLandOnTheSameShardAndHitItsCache) {
  ClusterRouter router(makeOptions(2));
  const Json first = call(router, synthLine(61));
  ASSERT_TRUE(first.at("ok").asBool()) << first.dump();
  EXPECT_EQ(first.at("state").asString(), "done");
  EXPECT_FALSE(first.at("cache_hit").asBool());
  ASSERT_FALSE(first.at("cache_key").asString().empty());
  // summary:true drops the heavy body but the result stays addressable.
  EXPECT_EQ(first.find("result"), nullptr);

  const Json second = call(router, synthLine(61));
  ASSERT_TRUE(second.at("ok").asBool()) << second.dump();
  EXPECT_TRUE(second.at("cache_hit").asBool());
  EXPECT_EQ(second.at("shard").asInt(-1), first.at("shard").asInt(-2));
  EXPECT_EQ(second.at("cache_key").asString(), first.at("cache_key").asString());
}

TEST_F(ClusterRouterTest, SweepPartitionsAcrossShardsAndKeepsRequestOrder) {
  ClusterRouter router(makeOptions(2));
  Json jobs = Json::array();
  std::vector<std::string> labels;
  for (int gbw : {62, 63, 64, 62, 63, 64}) {
    Json job = Json::object();
    job.set("case", 1);
    job.set("label", "g" + std::to_string(gbw));
    labels.push_back("g" + std::to_string(gbw));
    Json spec = Json::object();
    spec.set("gbw", static_cast<double>(gbw) * 1e6);
    job.set("spec", std::move(spec));
    jobs.push(std::move(job));
  }
  Json request = Json::object();
  request.set("op", "sweep");
  request.set("summary", true);
  request.set("jobs", std::move(jobs));

  const Json response = call(router, request.dump());
  ASSERT_TRUE(response.at("ok").asBool()) << response.dump();
  const auto& outcomes = response.at("outcomes").items();
  ASSERT_EQ(outcomes.size(), 6u);
  std::set<std::uint64_t> ids;
  std::map<std::string, int> keyShard;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const Json& outcome = outcomes[i];
    ASSERT_TRUE(outcome.at("ok").asBool()) << outcome.dump();
    // Outcomes come back in request order: the label still matches.
    EXPECT_EQ(outcome.at("label").asString(), labels[i]);
    ids.insert(outcome.at("id").asUint64());
    const std::string key = outcome.at("cache_key").asString();
    ASSERT_FALSE(key.empty());
    const int shard = outcome.at("shard").asInt(-1);
    const auto prior = keyShard.find(key);
    if (prior != keyShard.end()) {
      // A duplicated design point must have been computed on one shard.
      EXPECT_EQ(prior->second, shard);
    } else {
      keyShard[key] = shard;
    }
  }
  // Router ids are globally unique even though shards number independently.
  EXPECT_EQ(ids.size(), 6u);
  EXPECT_EQ(keyShard.size(), 3u);
}

TEST_F(ClusterRouterTest, AsyncAckThenWaitCrossesTheIdMap) {
  ClusterRouter router(makeOptions(2));
  const Json ack = call(
      router,
      R"({"op":"synthesize","async":true,"case":1,"spec":{"gbw":65e6}})");
  ASSERT_TRUE(ack.at("ok").asBool()) << ack.dump();
  const std::uint64_t id = ack.at("id").asUint64();
  ASSERT_GT(id, 0u);
  ASSERT_FALSE(ack.at("cache_key").asString().empty());

  Json wait = Json::object();
  wait.set("op", "wait");
  wait.set("id", id);
  wait.set("summary", true);
  const Json done = call(router, wait.dump());
  ASSERT_TRUE(done.at("ok").asBool()) << done.dump();
  EXPECT_EQ(done.at("id").asUint64(), id);
  EXPECT_EQ(done.at("state").asString(), "done");
  EXPECT_EQ(done.at("shard").asInt(-1), ack.at("shard").asInt(-2));

  const Json unknown = call(router, R"({"op":"wait","id":999999})");
  EXPECT_FALSE(unknown.at("ok").asBool());
}

TEST_F(ClusterRouterTest, UnknownOpAnswersTheStructuredShape) {
  ClusterRouter router(makeOptions(1));
  const Json response = call(router, R"({"op":"zap"})");
  ASSERT_FALSE(response.at("ok").asBool());
  const Json& error = response.at("error");
  ASSERT_TRUE(error.isObject()) << response.dump();
  EXPECT_EQ(error.at("code").asString(), "unknown_op");
  EXPECT_NE(error.at("message").asString().find("zap"), std::string::npos);
  bool sawSweep = false;
  for (const Json& op : error.at("known_ops").items()) {
    if (op.asString() == "sweep") sawSweep = true;
  }
  EXPECT_TRUE(sawSweep);
}

TEST_F(ClusterRouterTest, RegisteredOpsForwardToShardsWithoutRouterChanges) {
  // The router predates the "verify" op and has no handler for it; the
  // forwarding tail must land it on a shard, whose own registered handler
  // answers -- growing the protocol needs no router release.
  ClusterRouter router(makeOptions(1));
  const Json response = call(
      router, R"({"op":"verify","label":"fv","case":"case1","summary":true})");
  ASSERT_TRUE(response.at("ok").asBool()) << response.dump();
  EXPECT_EQ(response.at("state").asString(), "done");
  EXPECT_TRUE(response.at("post_layout_ran").asBool());
  EXPECT_TRUE(response.at("verification").isObject());
  EXPECT_GE(response.at("shard").asInt(-1), 0);

  // Shard-side failures come back as the shard's own error, stamped with
  // the shard that answered.
  const Json bad =
      call(router, R"({"op":"verify","label":"bad","spec":{"nope":1}})");
  EXPECT_FALSE(bad.at("ok").asBool());
  EXPECT_GE(bad.at("shard").asInt(-1), 0);
}

TEST_F(ClusterRouterTest, StatsAggregateClusterTotalsAndPerShardSections) {
  ClusterRouter router(makeOptions(2));
  ASSERT_TRUE(call(router, synthLine(66)).at("ok").asBool());
  ASSERT_TRUE(call(router, synthLine(67)).at("ok").asBool());

  const Json response = call(router, R"({"op":"stats"})");
  ASSERT_TRUE(response.at("ok").asBool()) << response.dump();
  const Json& stats = response.at("stats");
  EXPECT_GE(stats.at("cluster").at("jobs").at("submitted").asUint64(), 2u);
  EXPECT_NE(stats.at("shards").find("shard0"), nullptr);
  EXPECT_NE(stats.at("shards").find("shard1"), nullptr);
  EXPECT_EQ(stats.at("router").at("shards").asUint64(), 2u);
  EXPECT_EQ(stats.at("router").at("transport_errors").asUint64(), 0u);
}

TEST_F(ClusterRouterTest, KilledShardIsRevivedOnTheNextRequestItOwns) {
  ClusterRouter router(makeOptions(2));
  const Json first = call(router, synthLine(68));
  ASSERT_TRUE(first.at("ok").asBool()) << first.dump();
  const int shard = first.at("shard").asInt(-1);
  ASSERT_GE(shard, 0);

  router.killShard(shard);
  // The kill is asynchronous only in the narrow sense that the router has
  // not looked yet; the resend below forces it to look.
  const Json second = call(router, synthLine(68));
  ASSERT_TRUE(second.at("ok").asBool()) << second.dump();
  EXPECT_TRUE(second.at("cache_hit").asBool())
      << "the dead shard's result was lost: " << second.dump();
  EXPECT_EQ(router.restarts(), 1u);

  const Json health = call(router, R"({"op":"health"})");
  ASSERT_TRUE(health.at("ok").asBool());
  EXPECT_TRUE(health.at("health").at("cluster").at("all_alive").asBool())
      << health.dump();
}

TEST_F(ClusterRouterTest, SecondRapidDeathBacksOffAndReroutes) {
  RouterOptions options = makeOptions(2);
  options.restartBackoffBaseSeconds = 0.6;
  ClusterRouter router(options);
  const Json first = call(router, synthLine(68));
  ASSERT_TRUE(first.at("ok").asBool()) << first.dump();
  const int victim = first.at("shard").asInt(-1);
  ASSERT_GE(victim, 0);

  // First death in the streak: the revive is immediate.
  router.killShard(victim);
  const Json second = call(router, synthLine(68));
  ASSERT_TRUE(second.at("ok").asBool()) << second.dump();
  EXPECT_EQ(second.at("shard").asInt(-1), victim);
  EXPECT_EQ(router.restarts(), 1u);

  // Second death moments later: the revive is deferred by the backoff
  // (0.45--0.75s at base 0.6), so the victim's keys re-route to the
  // survivor, which peer-fills from the shared store.
  router.killShard(victim);
  const Json third = call(router, synthLine(68));
  ASSERT_TRUE(third.at("ok").asBool()) << third.dump();
  EXPECT_NE(third.at("shard").asInt(-1), victim);
  EXPECT_TRUE(third.at("cache_hit").asBool()) << third.dump();
  EXPECT_EQ(router.restarts(), 1u);
  EXPECT_GE(router.rerouted(), 1u);

  // Restart hygiene is health-visible: reason, bounded history, and the
  // remaining backoff window.
  const Json health = call(router, R"({"op":"health"})");
  ASSERT_TRUE(health.at("ok").asBool());
  const Json& entry =
      health.at("health").at("shards").at("shard" + std::to_string(victim));
  EXPECT_FALSE(entry.at("alive").asBool());
  EXPECT_TRUE(entry.at("member").asBool());
  EXPECT_FALSE(entry.at("last_restart_reason").asString().empty());
  EXPECT_GE(entry.at("restart_history").items().size(), 2u);
  EXPECT_GT(entry.at("backoff_seconds").asDouble(), 0.0) << entry.dump();

  // Past the backoff window the next owned request revives it again.
  std::this_thread::sleep_for(std::chrono::milliseconds(1000));
  const Json fourth = call(router, synthLine(68));
  ASSERT_TRUE(fourth.at("ok").asBool()) << fourth.dump();
  EXPECT_EQ(fourth.at("shard").asInt(-1), victim);
  EXPECT_EQ(router.restarts(), 2u);
}

TEST_F(ClusterRouterTest, MultiplexedWaitResolvesManyIdsAcrossShards) {
  ClusterRouter router(makeOptions(2));
  std::vector<std::uint64_t> ids;
  for (int gbw : {71, 72, 73, 74}) {
    const Json ack =
        call(router, R"({"op":"synthesize","async":true,"case":1,"spec":{"gbw":)" +
                         std::to_string(gbw) + R"(e6}})");
    ASSERT_TRUE(ack.at("ok").asBool()) << ack.dump();
    ids.push_back(ack.at("id").asUint64());
  }

  // Scrambled order plus one unknown id: outcomes come back in request
  // order, each stamped with its router id; the unknown id fails alone
  // without poisoning the batch.
  Json wait = Json::object();
  wait.set("op", "wait");
  Json list = Json::array();
  for (const std::size_t i : {2u, 0u, 3u, 1u}) list.push(ids[i]);
  list.push(std::uint64_t{999999});
  wait.set("ids", std::move(list));
  const Json response = call(router, wait.dump());
  ASSERT_TRUE(response.at("ok").asBool()) << response.dump();
  const auto& outcomes = response.at("outcomes").items();
  ASSERT_EQ(outcomes.size(), 5u);
  const std::vector<std::uint64_t> expected{ids[2], ids[0], ids[3], ids[1]};
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_TRUE(outcomes[i].at("ok").asBool()) << outcomes[i].dump();
    EXPECT_EQ(outcomes[i].at("id").asUint64(), expected[i]);
    EXPECT_EQ(outcomes[i].at("state").asString(), "done");
  }
  EXPECT_FALSE(outcomes[4].at("ok").asBool());

  // An empty or missing ids array is a request error, not a crash.
  EXPECT_FALSE(call(router, R"({"op":"wait","ids":[]})").at("ok").asBool());
}

TEST_F(ClusterRouterTest, DrainMovesWorkAndResolvesItsIdsOnSurvivors) {
  ClusterRouter router(makeOptions(2));
  struct Tracked {
    std::uint64_t id = 0;
    int shard = -1;
  };
  std::vector<Tracked> jobs;
  for (int gbw : {75, 76, 77, 78, 79, 80}) {
    const Json ack =
        call(router, R"({"op":"synthesize","async":true,"case":1,"spec":{"gbw":)" +
                         std::to_string(gbw) + R"(e6}})");
    ASSERT_TRUE(ack.at("ok").asBool()) << ack.dump();
    jobs.push_back({ack.at("id").asUint64(), ack.at("shard").asInt(-1)});
  }
  const int victim = jobs.front().shard;

  Json drain = Json::object();
  drain.set("op", "drain");
  drain.set("shard", victim);
  const Json drained = call(router, drain.dump());
  ASSERT_TRUE(drained.at("ok").asBool()) << drained.dump();
  EXPECT_EQ(drained.at("drained").asInt(-1), victim);
  EXPECT_EQ(drained.at("members").asUint64(), 1u);
  EXPECT_EQ(router.drains(), 1u);

  // Every id resolves -- the ones mapped to the drained shard on its
  // inheritor, never as an error.  That is the satellite regression: a
  // wait/cancel across a drain must re-pin, not 404.
  for (const Tracked& job : jobs) {
    Json wait = Json::object();
    wait.set("op", "wait");
    wait.set("id", job.id);
    wait.set("summary", true);
    const Json done = call(router, wait.dump());
    ASSERT_TRUE(done.at("ok").asBool()) << done.dump();
    EXPECT_EQ(done.at("state").asString(), "done");
    EXPECT_NE(done.at("shard").asInt(-1), victim);
    EXPECT_EQ(done.at("id").asUint64(), job.id);
  }
  // Cancel of a drained-shard id: already done, so cancelled:false -- the
  // same answer its original shard would have given.
  Json cancel = Json::object();
  cancel.set("op", "cancel");
  cancel.set("id", jobs.front().id);
  const Json cancelled = call(router, cancel.dump());
  ASSERT_TRUE(cancelled.at("ok").asBool()) << cancelled.dump();
  EXPECT_FALSE(cancelled.at("cancelled").asBool());

  // A drained member is out of the ring but not "down": the cluster is
  // healthy at one member.
  const Json health = call(router, R"({"op":"health"})");
  const Json& cluster = health.at("health").at("cluster");
  EXPECT_EQ(cluster.at("members").asUint64(), 1u);
  EXPECT_TRUE(cluster.at("all_alive").asBool()) << health.dump();
  EXPECT_FALSE(health.at("health")
                   .at("shards")
                   .at("shard" + std::to_string(victim))
                   .at("member")
                   .asBool());

  // The last member must refuse to drain.
  Json last = Json::object();
  last.set("op", "drain");
  last.set("shard", 1 - victim);
  EXPECT_FALSE(call(router, last.dump()).at("ok").asBool());

  // Re-admission restores the two-member ring and the shard serves again.
  Json add = Json::object();
  add.set("op", "add");
  add.set("shard", victim);
  const Json added = call(router, add.dump());
  ASSERT_TRUE(added.at("ok").asBool()) << added.dump();
  EXPECT_EQ(added.at("members").asUint64(), 2u);
  EXPECT_EQ(router.adds(), 1u);
  ASSERT_TRUE(call(router, synthLine(81)).at("ok").asBool());
  EXPECT_TRUE(call(router, R"({"op":"health"})")
                  .at("health")
                  .at("cluster")
                  .at("all_alive")
                  .asBool());
}

TEST_F(ClusterRouterTest, AddGrowsTheRingWithABrandNewShard) {
  ClusterRouter router(makeOptions(2));
  const Json added = call(router, R"({"op":"add"})");
  ASSERT_TRUE(added.at("ok").asBool()) << added.dump();
  EXPECT_EQ(added.at("shard").asInt(-1), 2);
  EXPECT_EQ(added.at("members").asUint64(), 3u);
  EXPECT_EQ(router.shardCount(), 3);

  ASSERT_TRUE(call(router, synthLine(82)).at("ok").asBool());
  const Json health = call(router, R"({"op":"health"})");
  EXPECT_EQ(health.at("health").at("cluster").at("shards").asUint64(), 3u);
  EXPECT_TRUE(health.at("health").at("cluster").at("all_alive").asBool());
}

TEST_F(ClusterRouterTest, ExplorationFailsOverWhenItsShardCannotRevive) {
  RouterOptions options = makeOptions(2);
  options.restartDeadShards = false;  // Force the failover path.
  ClusterRouter router(options);
  const std::string exploreLine =
      R"({"op":"explore","async":true,"case":1,"budget":5,"max_rounds":2,)"
      R"("tolerance":0.2,"axes":[{"field":"gbw","lo":50e6,"hi":65e6,)"
      R"("points":2}]})";
  const Json ack = call(router, exploreLine);
  ASSERT_TRUE(ack.at("ok").asBool()) << ack.dump();
  const std::uint64_t exploreId = ack.at("explore_id").asUint64();
  const int victim = ack.at("shard").asInt(-1);
  ASSERT_GE(victim, 0);

  router.killShard(victim);
  Json resultReq = Json::object();
  resultReq.set("op", "explore_result");
  resultReq.set("explore_id", exploreId);
  const Json stormy = call(router, resultReq.dump());
  ASSERT_TRUE(stormy.at("ok").asBool()) << stormy.dump();
  EXPECT_NE(stormy.at("shard").asInt(-1), victim);
  ASSERT_FALSE(stormy.at("front").items().empty()) << stormy.dump();
  EXPECT_EQ(router.exploreFailovers(), 1u);

  // Determinism makes the failover invisible: a clean re-run of the same
  // request on the survivor reproduces the front exactly (cache_hit is
  // provenance, not content, so it is stripped before comparing).
  Json rerun = Json::parse(exploreLine);
  rerun.set("async", false);
  const Json clean = call(router, rerun.dump());
  ASSERT_TRUE(clean.at("ok").asBool()) << clean.dump();
  auto fingerprint = [](const Json& front) {
    Json scrubbed = Json::array();
    for (const Json& point : front.items()) {
      Json p = Json::object();
      for (const auto& [key, value] : point.members()) {
        if (key != "cache_hit") p.set(key, value);
      }
      scrubbed.push(std::move(p));
    }
    return scrubbed.dump();
  };
  EXPECT_EQ(fingerprint(stormy.at("front")), fingerprint(clean.at("front")));
}

}  // namespace
}  // namespace lo::cluster
