#include "core/two_stage_flow.hpp"

#include <gtest/gtest.h>

#include "layout/drc.hpp"
#include "layout/passives.hpp"

namespace lo {
namespace {

const tech::Technology kTech = tech::Technology::generic060();

sizing::OtaSpecs twoStageSpecs() {
  sizing::OtaSpecs s;
  s.gbw = 30e6;  // A Miller OTA target this process reaches comfortably.
  return s;
}

// --- Passive generators. ---

TEST(Passives, CapacitorHitsTargetValue) {
  layout::CapacitorSpec spec;
  spec.farads = 1e-12;
  layout::CapacitorInfo info;
  const layout::Cell cell = layout::generateCapacitor(kTech, spec, &info);
  EXPECT_NEAR(info.drawnFarads, 1e-12, 0.03e-12);
  EXPECT_GT(info.bottomParasitic, 0.0);
  EXPECT_LT(info.bottomParasitic, 0.5e-12);  // Much smaller than the cap itself.
  EXPECT_EQ(cell.portsOn(spec.bottomNet).size(), 1u);
  EXPECT_EQ(cell.portsOn(spec.topNet).size(), 1u);
  const auto violations = layout::runDrc(kTech, cell.shapes);
  EXPECT_TRUE(violations.empty()) << layout::formatViolations(violations);
}

TEST(Passives, CapacitorAspectShapesThePlates) {
  layout::CapacitorSpec wide;
  wide.farads = 1e-12;
  wide.aspect = 4.0;
  layout::CapacitorInfo wi, si;
  (void)layout::generateCapacitor(kTech, wide, &wi);
  layout::CapacitorSpec square = wide;
  square.aspect = 1.0;
  (void)layout::generateCapacitor(kTech, square, &si);
  EXPECT_GT(static_cast<double>(wi.width) / wi.height,
            static_cast<double>(si.width) / si.height);
  EXPECT_NEAR(wi.drawnFarads, si.drawnFarads, 0.05e-12);
}

TEST(Passives, ResistorHitsTargetValue) {
  layout::ResistorSpec spec;
  spec.ohms = 1e3;
  layout::ResistorInfo info;
  const layout::Cell cell = layout::generateResistor(kTech, spec, &info);
  EXPECT_NEAR(info.drawnOhms, 1e3, 150.0);
  EXPECT_GT(info.segments, 0);
  EXPECT_EQ(cell.portsOn(spec.netA).size(), 1u);
  EXPECT_EQ(cell.portsOn(spec.netB).size(), 1u);
  const auto violations = layout::runDrc(kTech, cell.shapes);
  EXPECT_TRUE(violations.empty()) << layout::formatViolations(violations);
}

TEST(Passives, LongResistorSerpentines) {
  layout::ResistorSpec spec;
  spec.ohms = 20e3;  // 800 squares: must fold.
  layout::ResistorInfo info;
  (void)layout::generateResistor(kTech, spec, &info);
  EXPECT_GT(info.segments, 5);
  EXPECT_NEAR(info.drawnOhms, 20e3, 2e3);
}

TEST(Passives, RejectNonPositiveValues) {
  EXPECT_THROW((void)layout::generateCapacitor(kTech, {.farads = -1e-12}),
               std::invalid_argument);
  layout::ResistorSpec r;
  r.ohms = 0.0;
  EXPECT_THROW((void)layout::generateResistor(kTech, r), std::invalid_argument);
}

// --- Topology and sizing. ---

TEST(TwoStage, NetlistStructure) {
  circuit::Circuit c;
  circuit::TwoStageOtaDesign d;
  const circuit::TwoStageNodes nodes = circuit::instantiateTwoStage(c, d);
  EXPECT_EQ(c.mosfets.size(), 7u);
  EXPECT_EQ(c.resistors.size(), 1u);   // RZ.
  EXPECT_EQ(c.capacitors.size(), 2u);  // CC + CL.
  // Driver gate rides the first-stage output.
  EXPECT_EQ(c.findMos("MP6")->gate, nodes.o1);
  // Mirror diode.
  EXPECT_EQ(c.findMos("MP3")->gate, c.findMos("MP3")->drain);
}

TEST(TwoStage, SizerConvergesOnGbw) {
  const auto model = device::MosModel::create("ekv");
  sizing::TwoStageSizer sizer(kTech, *model);
  const auto r = sizer.size(twoStageSpecs(), sizing::SizingPolicy::case2());
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.predicted.gbwHz, 30e6, 30e6 * 0.01);
  EXPECT_GE(r.predicted.phaseMarginDeg, 64.0);
  EXPECT_GT(r.design.stage2Current, r.design.tailCurrent);
  EXPECT_GT(r.design.rz, 0.0);
}

TEST(TwoStage, SnapshotAllSaturated) {
  const auto model = device::MosModel::create("ekv");
  sizing::TwoStageSizer sizer(kTech, *model);
  const auto r = sizer.size(twoStageSpecs(), sizing::SizingPolicy::case2());
  const auto s = sizer.snapshot(r.design, twoStageSpecs().inputCmMid());
  for (const device::MosOpPoint* op :
       {&s.pair, &s.mirror, &s.tail, &s.driver, &s.sink2}) {
    EXPECT_EQ(op->region, device::MosRegion::kSaturation);
  }
}

TEST(TwoStage, VerificationTracksPrediction) {
  const auto model = device::MosModel::create("ekv");
  sizing::TwoStageSizer sizer(kTech, *model);
  const auto r = sizer.size(twoStageSpecs(), sizing::SizingPolicy::case2());
  const auto m = sizing::verifyTwoStage(kTech, *model, r.design, nullptr);
  EXPECT_NEAR(m.dcGainDb, r.predicted.dcGainDb, 2.0);
  EXPECT_NEAR(m.gbwHz, r.predicted.gbwHz, r.predicted.gbwHz * 0.15);
  EXPECT_NEAR(m.phaseMarginDeg, r.predicted.phaseMarginDeg, 6.0);
  EXPECT_NEAR(m.powerMw, r.predicted.powerMw, r.predicted.powerMw * 0.15);
  EXPECT_LT(std::abs(m.offsetMv), 5.0);
}

// --- Layout and flow. ---

TEST(TwoStage, LayoutIsDrcCleanAndReportsPassives) {
  const auto model = device::MosModel::create("ekv");
  sizing::TwoStageSizer sizer(kTech, *model);
  const auto r = sizer.size(twoStageSpecs(), sizing::SizingPolicy::case2());
  const auto lay =
      layout::generateTwoStageLayout(kTech, r.design, layout::TwoStageLayoutOptions{}, true);
  EXPECT_NEAR(lay.ccInfo.drawnFarads, r.design.cc, r.design.cc * 0.05);
  EXPECT_NEAR(lay.rzInfo.drawnOhms, r.design.rz, r.design.rz * 0.25);
  EXPECT_EQ(lay.junctions.size(), 5u);
  // The Rz/Cc midpoint carries the bottom-plate parasitic.
  EXPECT_GT(lay.parasitics.capOn("rzm"), lay.ccInfo.bottomParasitic * 0.9);
  const auto violations = layout::runDrc(kTech, lay.cell.shapes);
  std::vector<layout::DrcViolation> shorts;
  for (const auto& v : violations) {
    if (v.detail.find("short") != std::string::npos) shorts.push_back(v);
  }
  EXPECT_TRUE(shorts.empty()) << layout::formatViolations(shorts);
}

TEST(TwoStage, FullFlowConvergesAndMeetsSpecShape) {
  core::TwoStageFlowOptions opt;
  const auto r = core::runTwoStageFlow(kTech, opt, twoStageSpecs());
  EXPECT_TRUE(r.parasiticConverged);
  EXPECT_LE(r.layoutCalls, 5);
  // Extracted simulation within 12% of the (compensated) target.
  EXPECT_NEAR(r.measured.gbwHz, 30e6, 30e6 * 0.12);
  EXPECT_GE(r.measured.phaseMarginDeg, 58.0);
  // Drawn passives replaced the ideal ones in the extracted design.
  EXPECT_NEAR(r.extractedDesign.cc, r.layout.ccInfo.drawnFarads, 1e-18);
}

TEST(TwoStage, Case1MissesWithoutLayoutKnowledge) {
  core::TwoStageFlowOptions c1;
  c1.sizingCase = core::SizingCase::kCase1;
  core::TwoStageFlowOptions c4;
  const auto r1 = core::runTwoStageFlow(kTech, c1, twoStageSpecs());
  const auto r4 = core::runTwoStageFlow(kTech, c4, twoStageSpecs());
  // Case 4's extracted GBW must be at least as close to target as case 1's.
  EXPECT_LE(std::abs(r4.measured.gbwHz - 30e6), std::abs(r1.measured.gbwHz - 30e6) + 1e5);
  EXPECT_EQ(r1.layoutCalls, 0);
  EXPECT_GE(r4.layoutCalls, 2);
}

}  // namespace
}  // namespace lo
