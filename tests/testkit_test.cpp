// lo_testkit unit tests: fault-plan determinism, seeded generators, the
// structured diff, each injection seam end to end, and a short soak.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "service/serialize.hpp"
#include "testkit/diff.hpp"
#include "testkit/faults.hpp"
#include "testkit/generators.hpp"
#include "testkit/soak.hpp"

namespace lo::testkit {
namespace {

const tech::Technology kTech = tech::Technology::generic060();

// ---------------------------------------------------------------- faults --

TEST(FaultPlan, DecisionsAreAPureFunctionOfSeedSiteAndIndex) {
  FaultPlanOptions options = FaultPlanOptions::basic(42);
  const FaultPlan a(options);
  const FaultPlan b(options);
  int fired = 0;
  for (const FaultSite site : allFaultSites()) {
    for (std::uint64_t op = 0; op < 1000; ++op) {
      EXPECT_EQ(a.fires(site, op), b.fires(site, op));
      fired += a.fires(site, op) ? 1 : 0;
    }
  }
  // 5 sites x 1000 ops at 10%: the firing count sits near 500.
  EXPECT_GT(fired, 300);
  EXPECT_LT(fired, 700);

  // A different seed draws a different schedule.
  const FaultPlan c(FaultPlanOptions::basic(43));
  int differing = 0;
  for (std::uint64_t op = 0; op < 1000; ++op) {
    differing += a.fires(FaultSite::kEngineTransient, op) !=
                         c.fires(FaultSite::kEngineTransient, op)
                     ? 1
                     : 0;
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultPlan, ExplicitOpsFireRegardlessOfRateAndAreRecorded) {
  FaultPlanOptions options;  // rate 0, no sites: nothing fires by chance.
  options.explicitOps[FaultSite::kEngineTransient] = {2, 5};
  FaultPlan plan(options);

  std::vector<std::uint64_t> firedAt;
  for (std::uint64_t op = 0; op < 8; ++op) {
    if (plan.shouldFire(FaultSite::kEngineTransient)) firedAt.push_back(op);
    EXPECT_FALSE(plan.shouldFire(FaultSite::kCacheWrite));
  }
  EXPECT_EQ(firedAt, (std::vector<std::uint64_t>{2, 5}));
  EXPECT_EQ(plan.operations(FaultSite::kEngineTransient), 8u);
  EXPECT_EQ(plan.fired(FaultSite::kEngineTransient), 2u);
  EXPECT_EQ(plan.firedTotal(), 2u);
  ASSERT_EQ(plan.events().size(), 2u);
  EXPECT_EQ(plan.events()[0].opIndex, 2u);
  EXPECT_EQ(plan.events()[1].opIndex, 5u);
}

TEST(FaultPlan, PresetsParseAndUnknownNamesThrow) {
  const FaultPlanOptions basic = FaultPlanOptions::preset("basic", 9);
  EXPECT_EQ(basic.seed, 9u);
  EXPECT_DOUBLE_EQ(basic.rate, 0.1);
  // Every recoverable site — the two one-shot crash sites stay opt-in, or
  // the blanket rate would kill every soak in its first seconds.
  EXPECT_EQ(basic.sites.size(), allFaultSites().size() - 2);
  EXPECT_FALSE(basic.sites.count(FaultSite::kJournalTornWrite));
  EXPECT_FALSE(basic.sites.count(FaultSite::kProcessKill));

  const FaultPlanOptions torn = FaultPlanOptions::preset("journal_torn_write", 9);
  EXPECT_EQ(torn.sites.size(), 1u);
  EXPECT_TRUE(torn.sites.count(FaultSite::kJournalTornWrite));

  const FaultPlanOptions none = FaultPlanOptions::preset("none", 9);
  EXPECT_TRUE(none.sites.empty());
  EXPECT_DOUBLE_EQ(none.rate, 0.0);

  EXPECT_THROW((void)FaultPlanOptions::preset("chaotic", 9),
               std::invalid_argument);
}

// ------------------------------------------------------------ generators --

TEST(Generators, CorpusIsAPureFunctionOfItsSeed) {
  const std::vector<CorpusPoint> a = generateCorpus(7);
  const std::vector<CorpusPoint> b = generateCorpus(7);
  ASSERT_EQ(a.size(), 50u);
  ASSERT_EQ(b.size(), a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label, b[i].label);
    // Bit-identical inputs, checked through the canonical cache-key text.
    EXPECT_EQ(service::ResultCache::canonicalText(a[i].options, a[i].specs,
                                                  a[i].corner, "print"),
              service::ResultCache::canonicalText(b[i].options, b[i].specs,
                                                  b[i].corner, "print"));
  }

  const std::vector<CorpusPoint> other = generateCorpus(8);
  int differing = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    differing += a[i].label != other[i].label ? 1 : 0;
  }
  EXPECT_GT(differing, 0);
}

TEST(Generators, CorpusCoversTopologiesCornersAndStaysDistinct) {
  const std::vector<CorpusPoint> corpus = generateCorpus(1);
  std::set<std::string> topologies, keys;
  bool sawNonTypical = false;
  for (const CorpusPoint& point : corpus) {
    topologies.insert(point.options.topology);
    keys.insert(service::ResultCache::canonicalText(point.options, point.specs,
                                                    point.corner, "print"));
    sawNonTypical |= point.corner != tech::ProcessCorner::kTypical;
  }
  EXPECT_EQ(topologies.size(), 2u) << "both registered topologies drawn";
  EXPECT_EQ(keys.size(), corpus.size()) << "every corpus point is distinct";
  EXPECT_TRUE(sawNonTypical);
}

TEST(Generators, ToJobRequestCarriesTheIdentityFields) {
  CorpusOptions one;
  one.size = 1;
  const CorpusPoint point = generateCorpus(3, one).front();
  const service::JobRequest request = point.toJobRequest();
  EXPECT_EQ(request.label, point.label);
  EXPECT_FALSE(request.bypassCache);
  EXPECT_EQ(request.options.topology, point.options.topology);
  EXPECT_EQ(request.specs.gbw, point.specs.gbw);
  EXPECT_EQ(request.corner, point.corner);
}

// ------------------------------------------------------------------ diff --

TEST(DiffJson, ReportsTheFirstDivergingFieldWithItsPath) {
  core::EngineResult a;
  a.predicted.gbwHz = 65e6;
  a.measured.gbwHz = 64.5e6;
  core::EngineResult b = a;
  b.measured.gbwHz = 64.5e6 * (1.0 + 1e-6);

  EXPECT_FALSE(diffResults(a, a).has_value());

  const auto diff = diffResults(a, b);
  ASSERT_TRUE(diff.has_value());
  EXPECT_NE(diff->path.find("gbw"), std::string::npos) << diff->path;
  EXPECT_NEAR(diff->relError, 1e-6, 1e-9);
  EXPECT_NE(diff->describe().find(diff->path), std::string::npos);

  // A tolerance wider than the divergence accepts it; a tighter one does not.
  EXPECT_FALSE(diffResults(a, b, 1e-3).has_value());
  EXPECT_TRUE(diffResults(a, b, 1e-9).has_value());
}

TEST(DiffJson, CatchesTypeArityAndMissingKeyDrift) {
  const service::Json num(1.5);
  const service::Json text(std::string("1.5"));
  ASSERT_TRUE(diffJson(num, text).has_value());

  service::Json arrA = service::Json::array();
  arrA.push(service::Json(1.0));
  service::Json arrB = service::Json::array();
  arrB.push(service::Json(1.0));
  arrB.push(service::Json(2.0));
  const auto arity = diffJson(arrA, arrB);
  ASSERT_TRUE(arity.has_value());

  service::Json objA = service::Json::object();
  objA.set("x", 1.0);
  service::Json objB = service::Json::object();
  objB.set("y", 1.0);
  const auto keys = diffJson(objA, objB);
  ASSERT_TRUE(keys.has_value());
}

// ------------------------------------------------------- injection seams --

service::JobRequest cheapJob(const std::string& label, double gbw = 65e6) {
  service::JobRequest job;
  job.label = label;
  job.options.sizingCase = core::SizingCase::kCase1;
  job.specs.gbw = gbw;
  return job;
}

TEST(FaultInjection, ThreeInjectedEngineFailuresReportRetriesEqualsThree) {
  FaultPlanOptions faultOptions;
  faultOptions.explicitOps[FaultSite::kEngineTransient] = {0, 1, 2};
  FaultPlan plan(faultOptions);

  service::SchedulerOptions options;
  options.threads = 1;
  installSchedulerFaults(options, plan);
  service::JobScheduler scheduler(kTech, options);

  service::JobRequest job = cheapJob("injected-thrice");
  job.maxRetries = 3;
  const service::JobStatus status = scheduler.wait(scheduler.submit(job));
  EXPECT_EQ(status.state, service::JobState::kDone) << status.error;
  EXPECT_EQ(status.attempts, 4);
  EXPECT_EQ(status.retries, 3);
  EXPECT_EQ(plan.fired(FaultSite::kEngineTransient), 3u);
}

TEST(FaultInjection, StageTransientFiresMidEngineAndRetries) {
  FaultPlanOptions faultOptions;
  // Stage operation #1: the first attempt survives its first stage, then
  // dies between stages -- after real engine work already happened.
  faultOptions.explicitOps[FaultSite::kStageTransient] = {1};
  FaultPlan plan(faultOptions);

  service::SchedulerOptions options;
  options.threads = 1;
  service::JobScheduler scheduler(kTech, options);

  service::JobRequest job = cheapJob("mid-stage", 66e6);
  installEngineFaults(job.options, plan);
  job.maxRetries = 1;
  const service::JobStatus status = scheduler.wait(scheduler.submit(job));
  EXPECT_EQ(status.state, service::JobState::kDone) << status.error;
  EXPECT_EQ(status.retries, 1);
  EXPECT_EQ(plan.fired(FaultSite::kStageTransient), 1u);
}

TEST(FaultInjection, DeadlineOverrunExpiresTheJob) {
  FaultPlanOptions faultOptions;
  faultOptions.explicitOps[FaultSite::kDeadlineOverrun] = {0};
  faultOptions.overrunSeconds = 0.05;
  FaultPlan plan(faultOptions);

  service::SchedulerOptions options;
  options.threads = 1;
  installSchedulerFaults(options, plan);
  service::JobScheduler scheduler(kTech, options);

  service::JobRequest job = cheapJob("overrun", 67e6);
  job.deadlineSeconds = 0.01;  // Far shorter than the injected sleep.
  const service::JobStatus status = scheduler.wait(scheduler.submit(job));
  EXPECT_EQ(status.state, service::JobState::kExpired);
  EXPECT_EQ(plan.fired(FaultSite::kDeadlineOverrun), 1u);
}

TEST(FaultInjection, TruncatedResponseLeavesTheDaemonStateIntact) {
  FaultPlanOptions faultOptions;
  faultOptions.explicitOps[FaultSite::kResponseTruncate] = {0};
  FaultPlan plan(faultOptions);

  service::JobScheduler scheduler(kTech, service::SchedulerOptions{});
  service::ServiceProtocol protocol(scheduler);
  installProtocolFaults(protocol, plan);

  const std::string truncated = protocol.handleLine(
      R"({"op":"synthesize","case":1,"async":true,"label":"cut"})");
  EXPECT_THROW((void)service::Json::parse(truncated), std::exception);

  // The daemon's side of the operation still happened: the job exists and
  // the next (clean) response reports it.
  const std::string stats = protocol.handleLine(R"({"op":"stats"})");
  const service::Json parsed = service::Json::parse(stats);
  EXPECT_EQ(parsed.at("stats").at("jobs").at("submitted").asUint64(), 1u);
  (void)scheduler.wait(1);
}

// ------------------------------------------------------------------ soak --

TEST(Soak, ShortCappedRunHoldsEveryInvariant) {
  SoakOptions options;
  options.seed = 5;
  options.clients = 2;
  options.schedulerThreads = 2;
  options.durationSeconds = 30.0;  // The cap ends the soak, not the clock.
  options.maxRequestsPerClient = 25;
  options.faults = FaultPlanOptions::basic(5);
  options.cacheDir =
      (std::filesystem::temp_directory_path() /
       ("lo_testkit_soak_" + std::to_string(::getpid())))
          .string();

  const SoakReport report = runSoak(kTech, options);
  std::filesystem::remove_all(options.cacheDir);

  EXPECT_TRUE(report.ok()) << report.toJson().dump();
  EXPECT_EQ(report.requests, 50u);  // 2 clients x 25, exact under the cap.
  const service::Json json = report.toJson();
  EXPECT_TRUE(json.at("ok").asBool());
  EXPECT_EQ(json.at("requests").asUint64(), report.requests);
}

TEST(Soak, CrashRecoveryPhaseLosesAndDuplicatesNothing) {
  SoakOptions options;
  options.seed = 11;
  options.clients = 2;
  options.schedulerThreads = 2;
  options.durationSeconds = 30.0;
  options.maxRequestsPerClient = 20;
  const std::string scratch =
      (std::filesystem::temp_directory_path() /
       ("lo_testkit_recovery_" + std::to_string(::getpid())))
          .string();
  options.cacheDir = scratch + "/cache";
  options.journalDir = scratch + "/journal";
  // The crash mid-run is deterministic, not probabilistic: an explicit
  // process_kill op freezes the journal partway through the request load.
  options.faults.seed = 11;
  options.faults.rate = 0.0;
  options.faults.explicitOps[FaultSite::kProcessKill] = {13};

  const SoakReport report = runSoak(kTech, options);
  std::filesystem::remove_all(scratch);

  EXPECT_TRUE(report.ok()) << report.toJson().dump();
  ASSERT_TRUE(report.recovery.ran);
  EXPECT_TRUE(report.recovery.crashed);
  // Every pending job was accounted for, one way or the other.
  EXPECT_EQ(report.recovery.servedFromCache + report.recovery.reRun,
            report.recovery.pendingAtBoot);
  if (report.recovery.pendingAtBoot > 0) {
    EXPECT_GE(report.recovery.compactions, 1u);
  }
  const service::Json json = report.toJson();
  EXPECT_TRUE(json.at("recovery").at("crashed").asBool());
}

TEST(Soak, TornWritePresetSurvivesRecovery) {
  SoakOptions options;
  options.seed = 23;
  options.clients = 2;
  options.schedulerThreads = 2;
  options.durationSeconds = 30.0;
  options.maxRequestsPerClient = 15;
  const std::string scratch =
      (std::filesystem::temp_directory_path() /
       ("lo_testkit_torn_" + std::to_string(::getpid())))
          .string();
  options.cacheDir = scratch + "/cache";
  options.journalDir = scratch + "/journal";
  options.faults = FaultPlanOptions::journalTorn(23);

  const SoakReport report = runSoak(kTech, options);
  std::filesystem::remove_all(scratch);

  EXPECT_TRUE(report.ok()) << report.toJson().dump();
  ASSERT_TRUE(report.recovery.ran);
  // The torn append froze the journal; the reboot truncated the half-frame
  // and recovered what the log still held.
  EXPECT_TRUE(report.recovery.crashed);
  EXPECT_TRUE(report.recovery.tornTail);
  EXPECT_EQ(report.recovery.servedFromCache + report.recovery.reRun,
            report.recovery.pendingAtBoot);
}

}  // namespace
}  // namespace lo::testkit
