#include "sizing/ota_sizer.hpp"

#include <gtest/gtest.h>

#include "device/folding.hpp"
#include "sizing/ota_evaluator.hpp"

namespace lo::sizing {
namespace {

using circuit::OtaGroup;

const tech::Technology kTech = tech::Technology::generic060();

class SizerByModel : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<device::MosModel> model_ = device::MosModel::create(GetParam());
};

TEST_P(SizerByModel, ConvergesAndHitsGbwTarget) {
  OtaSizer sizer(kTech, *model_);
  const OtaSpecs specs;
  const SizingResult r = sizer.size(specs, SizingPolicy::case2());
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.predicted.gbwHz, specs.gbw, specs.gbw * 0.01);
  EXPECT_GE(r.predicted.phaseMarginDeg, specs.phaseMarginDeg - 0.5);
  EXPECT_LE(r.predicted.phaseMarginDeg, specs.phaseMarginDeg + 15.0);
}

TEST_P(SizerByModel, DesignIsElectricallySane) {
  OtaSizer sizer(kTech, *model_);
  const OtaSpecs specs;
  const SizingResult r = sizer.size(specs, SizingPolicy::case2());
  const auto& d = r.design;
  EXPECT_GT(d.tailCurrent, 20e-6);
  EXPECT_LT(d.tailCurrent, 2e-3);
  EXPECT_GT(d.cascodeCurrent, 0.3 * d.tailCurrent);
  for (OtaGroup g : circuit::kAllOtaGroups) {
    EXPECT_GT(d.geometry(g).w, 1e-6) << circuit::otaGroupName(g);
    EXPECT_LT(d.geometry(g).w, 2e-3) << circuit::otaGroupName(g);
  }
  // Bias voltages inside the rails.
  for (double v : {d.vp1, d.vbn, d.vc1, d.vc3}) {
    EXPECT_GT(v, 0.0);
    EXPECT_LT(v, specs.vdd);
  }
}

TEST_P(SizerByModel, SnapshotDevicesAllSaturated) {
  OtaSizer sizer(kTech, *model_);
  OtaEvaluator eval(kTech, *model_);
  const OtaSpecs specs;
  const SizingResult r = sizer.size(specs, SizingPolicy::case2());
  const OtaOpSnapshot s = eval.snapshot(r.design, specs.inputCmMid());
  for (const device::MosOpPoint* op :
       {&s.pair, &s.tail, &s.sink, &s.nCasc, &s.pSrc, &s.pCasc}) {
    EXPECT_EQ(op->region, device::MosRegion::kSaturation);
    EXPECT_GT(op->gm, 0.0);
  }
  // Node voltage sanity: gnd < vx < vout < vy < vtail-ish < vdd.
  EXPECT_GT(s.vx, 0.1);
  EXPECT_LT(s.vx, s.vout);
  EXPECT_LT(s.vy, specs.vdd);
  EXPECT_GT(s.vz, s.vy);
  EXPECT_GT(s.vtail, specs.inputCmMid());
}

TEST_P(SizerByModel, GroupCurrentsBalance) {
  OtaSizer sizer(kTech, *model_);
  OtaEvaluator eval(kTech, *model_);
  const OtaSpecs specs;
  const SizingResult r = sizer.size(specs, SizingPolicy::case2());
  const OtaOpSnapshot s = eval.snapshot(r.design, specs.inputCmMid());
  // Each device must carry roughly its planned current at the planned bias.
  EXPECT_NEAR(std::abs(s.pair.id), r.design.tailCurrent / 2, r.design.tailCurrent * 0.1);
  EXPECT_NEAR(std::abs(s.sink.id), r.design.sinkCurrent(), r.design.sinkCurrent() * 0.15);
  EXPECT_NEAR(std::abs(s.pSrc.id), r.design.cascodeCurrent,
              r.design.cascodeCurrent * 0.15);
}

INSTANTIATE_TEST_SUITE_P(Models, SizerByModel, ::testing::Values("level1", "ekv"));

TEST(SizingPolicy, Case1IgnoresJunctions) {
  const auto model = device::MosModel::create("ekv");
  OtaSizer sizer(kTech, *model);
  const OtaSpecs specs;
  const SizingResult r1 = sizer.size(specs, SizingPolicy::case1());
  // Case 1 zeroes the junction figures the sizer leaves on the design.
  EXPECT_EQ(r1.design.inputPair.ad, 0.0);
  EXPECT_EQ(r1.design.nCascode.pd, 0.0);
  const SizingResult r2 = sizer.size(specs, SizingPolicy::case2());
  EXPECT_GT(r2.design.inputPair.ad, 0.0);
}

TEST(SizingPolicy, PessimisticCapsDemandMorePower) {
  // Case 2's over-estimated junctions inflate the capacitance budget, so
  // the sizer provisions more gm -> more current than case 1.
  const auto model = device::MosModel::create("ekv");
  OtaSizer sizer(kTech, *model);
  const OtaSpecs specs;
  const SizingResult r1 = sizer.size(specs, SizingPolicy::case1());
  const SizingResult r2 = sizer.size(specs, SizingPolicy::case2());
  EXPECT_GT(r2.predicted.powerMw, r1.predicted.powerMw);
  // And the extra loading costs DC gain.
  EXPECT_LT(r2.predicted.dcGainDb, r1.predicted.dcGainDb + 0.1);
}

TEST(SizingPolicy, ExactJunctionTemplatesShrinkTheBudget) {
  const auto model = device::MosModel::create("ekv");
  OtaSizer sizer(kTech, *model);
  OtaEvaluator eval(kTech, *model);
  const OtaSpecs specs;
  const SizingResult pess = sizer.size(specs, SizingPolicy::case2());

  // Build exact templates: folded geometry has less diffusion than unfolded.
  SizingPolicy exact;
  exact.exactDiffusion = true;
  for (circuit::OtaGroup g : circuit::kAllOtaGroups) {
    device::MosGeometry tpl = pess.design.geometry(g);
    const device::FoldPlan plan =
        device::planFolds(kTech.rules, tpl.w, 15e-6, device::FoldStyle::kDrainInternal);
    device::applyDiffusionGeometry(kTech.rules, plan, tpl);
    exact.junctionTemplates[g] = tpl;
  }
  const SizingResult ex = sizer.size(specs, exact);
  const auto sPess = eval.snapshot(pess.design, specs.inputCmMid());
  const auto sEx = eval.snapshot(ex.design, specs.inputCmMid());
  EXPECT_LT(eval.capBudget(ex.design, sEx, exact).out,
            eval.capBudget(pess.design, sPess, SizingPolicy::case2()).out);
}

TEST(Evaluator, RoutingParasiticsLowerPredictedBandwidthMargin) {
  const auto model = device::MosModel::create("ekv");
  OtaSizer sizer(kTech, *model);
  OtaEvaluator eval(kTech, *model);
  const OtaSpecs specs;
  const SizingResult r = sizer.size(specs, SizingPolicy::case2());

  layout::ParasiticReport report;
  report.nets["out"].routingCap = 150e-15;
  report.nets["x1"].routingCap = 80e-15;
  SizingPolicy withRouting = SizingPolicy::case2();
  withRouting.routingParasitics = &report;

  const OtaPerformance base = eval.evaluate(r.design, specs, SizingPolicy::case2());
  const OtaPerformance loaded = eval.evaluate(r.design, specs, withRouting);
  EXPECT_LT(loaded.gbwHz, base.gbwHz);
  EXPECT_LT(loaded.phaseMarginDeg, base.phaseMarginDeg);
}

TEST(Evaluator, PerformanceFiguresInPhysicalRanges) {
  const auto model = device::MosModel::create("ekv");
  OtaSizer sizer(kTech, *model);
  const OtaSpecs specs;
  const OtaPerformance p = sizer.size(specs, SizingPolicy::case2()).predicted;
  EXPECT_GT(p.dcGainDb, 55.0);
  EXPECT_LT(p.dcGainDb, 90.0);
  EXPECT_GT(p.cmrrDb, 70.0);
  EXPECT_GT(p.slewRateVPerUs, 20.0);
  EXPECT_GT(p.outputResistanceMOhm, 0.2);
  EXPECT_GT(p.inputNoiseUv, 20.0);
  EXPECT_LT(p.inputNoiseUv, 300.0);
  EXPECT_GT(p.thermalNoiseDensityNv, 5.0);
  EXPECT_LT(p.thermalNoiseDensityNv, 50.0);
  EXPECT_GT(p.powerMw, 0.3);
  EXPECT_LT(p.powerMw, 10.0);
  EXPECT_LT(std::abs(p.offsetMv), 5.0);
}

TEST(OperatingChoices, GroupAccessorCoversAllGroups) {
  OperatingChoices c;
  c.of(circuit::OtaGroup::kSink).veff = 0.42;
  EXPECT_DOUBLE_EQ(c.sink.veff, 0.42);
  const OperatingChoices& cc = c;
  EXPECT_DOUBLE_EQ(cc.of(circuit::OtaGroup::kSink).veff, 0.42);
}

}  // namespace
}  // namespace lo::sizing
