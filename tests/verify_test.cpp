#include "sizing/verify.hpp"

#include <gtest/gtest.h>

#include "circuit/spice_io.hpp"
#include "sizing/ota_sizer.hpp"

namespace lo::sizing {
namespace {

const tech::Technology kTech = tech::Technology::generic060();

struct Sized {
  std::unique_ptr<device::MosModel> model = device::MosModel::create("ekv");
  SizingResult result;
  Sized() {
    OtaSizer sizer(kTech, *model);
    result = sizer.size(OtaSpecs{}, SizingPolicy::case2());
  }
};

/// One shared sizing run for the whole suite (sizing is deterministic).
const Sized& sized() {
  static Sized s;
  return s;
}

TEST(Verify, TestbenchHasFeedbackNetwork) {
  OtaVerifier v(kTech, *sized().model);
  circuit::Circuit c = v.buildAcTestbench(sized().result.design, nullptr, 1, 0, 0);
  EXPECT_NE(c.findVSource("VCM"), nullptr);
  EXPECT_NE(c.findVSource("VDIFF"), nullptr);
  EXPECT_NE(c.findCapacitor("CFB"), nullptr);
  EXPECT_EQ(c.mosfets.size(), 11u);
}

TEST(Verify, MeasurementsTrackAnalyticPrediction) {
  // The paper's core accuracy claim: with the same device model on both
  // sides, the sizing-time prediction and the simulation agree closely.
  OtaVerifier v(kTech, *sized().model);
  const OtaPerformance meas = v.verify(sized().result.design, nullptr);
  const OtaPerformance& pred = sized().result.predicted;

  EXPECT_NEAR(meas.dcGainDb, pred.dcGainDb, 1.5);
  EXPECT_NEAR(meas.gbwHz, pred.gbwHz, pred.gbwHz * 0.08);
  EXPECT_NEAR(meas.phaseMarginDeg, pred.phaseMarginDeg, 8.0);
  EXPECT_NEAR(meas.outputResistanceMOhm, pred.outputResistanceMOhm,
              pred.outputResistanceMOhm * 0.06);
  EXPECT_NEAR(meas.powerMw, pred.powerMw, pred.powerMw * 0.03);
  EXPECT_NEAR(meas.inputNoiseUv, pred.inputNoiseUv, pred.inputNoiseUv * 0.10);
  EXPECT_NEAR(meas.thermalNoiseDensityNv, pred.thermalNoiseDensityNv,
              pred.thermalNoiseDensityNv * 0.10);
  EXPECT_NEAR(meas.slewRateVPerUs, pred.slewRateVPerUs, pred.slewRateVPerUs * 0.35);
  EXPECT_GT(meas.cmrrDb, 80.0);
  EXPECT_LT(std::abs(meas.offsetMv), 5.0);
}

TEST(Verify, ParasiticAnnotationDegradesBandwidth) {
  OtaVerifier v(kTech, *sized().model);
  layout::ParasiticReport report;
  report.nets["out"].routingCap = 400e-15;
  report.nets["x1"].routingCap = 200e-15;
  report.nets["x2"].routingCap = 200e-15;
  const OtaPerformance clean = v.verify(sized().result.design, nullptr);
  const OtaPerformance loaded = v.verify(sized().result.design, &report);
  EXPECT_LT(loaded.gbwHz, clean.gbwHz * 0.95);
  EXPECT_LT(loaded.phaseMarginDeg, clean.phaseMarginDeg);
}

TEST(Verify, WireResistanceReachesTheSimulatedNetlist) {
  // Regression: annotateCircuit used to drop NetParasitics::routingRes, so
  // extracted wire resistance never influenced verification.  The series
  // RPAR_ element must appear in the testbench the simulator consumes, and
  // a resistive report must measure differently from a capacitive one.
  OtaVerifier v(kTech, *sized().model);
  layout::ParasiticReport report;
  report.nets["out"].routingCap = 400e-15;
  report.nets["out"].routingRes = 2000.0;

  const circuit::Circuit tb =
      v.buildAcTestbench(sized().result.design, &report, 1, 0, 0);
  bool sawRpar = false;
  for (const circuit::Resistor& r : tb.resistors) {
    if (r.name == "RPAR_out") {
      sawRpar = true;
      EXPECT_DOUBLE_EQ(r.ohms, 2000.0);
    }
  }
  EXPECT_TRUE(sawRpar);
  EXPECT_NE(circuit::writeNetlist(tb).find("RPAR_out"), std::string::npos);

  layout::ParasiticReport capOnly;
  capOnly.nets["out"].routingCap = 400e-15;
  const OtaPerformance withRes = v.verify(sized().result.design, &report);
  const OtaPerformance capOnlyPerf = v.verify(sized().result.design, &capOnly);
  EXPECT_NE(withRes.gbwHz, capOnlyPerf.gbwHz);
  EXPECT_NE(withRes.phaseMarginDeg, capOnlyPerf.phaseMarginDeg);
}

TEST(Verify, ApplyExtractedGeometryReplacesJunctions) {
  std::map<circuit::OtaGroup, device::MosGeometry> junctions;
  device::MosGeometry g;
  g.w = 123e-6;
  g.l = 1e-6;
  g.nf = 6;
  g.ad = 42e-12;
  junctions[circuit::OtaGroup::kInputPair] = g;
  const auto d = applyExtractedGeometry(sized().result.design, junctions);
  EXPECT_DOUBLE_EQ(d.inputPair.w, 123e-6);
  EXPECT_EQ(d.inputPair.nf, 6);
  EXPECT_DOUBLE_EQ(d.inputPair.ad, 42e-12);
  // Untouched groups keep their geometry.
  EXPECT_DOUBLE_EQ(d.sink.w, sized().result.design.sink.w);
}

TEST(Verify, AnnotateCircuitRoundTripThroughSimulation) {
  // Regression for the full annotate -> re-simulate loop the post-layout
  // tier depends on: the annotated elements carry exactly the reported
  // values, wire resistance on the output net degrades both GBW and phase
  // margin, and identical parasitics on the mirrored folding branches
  // leave the balance (offset) essentially untouched.
  OtaVerifier v(kTech, *sized().model);
  const OtaPerformance clean = v.verify(sized().result.design, nullptr);

  layout::ParasiticReport report;
  report.nets["out"].routingCap = 300e-15;
  report.nets["out"].routingRes = 3000.0;
  report.nets["x1"].routingCap = 150e-15;
  report.nets["x1"].routingRes = 800.0;
  report.nets["x2"].routingCap = 150e-15;
  report.nets["x2"].routingRes = 800.0;

  // Round trip: every annotated element restates its report entry.
  const circuit::Circuit tb =
      v.buildAcTestbench(sized().result.design, &report, 1, 0, 0);
  double rparX1 = 0.0, rparX2 = 0.0, cparX1 = 0.0, cparX2 = 0.0;
  for (const circuit::Resistor& r : tb.resistors) {
    if (r.name == "RPAR_out") EXPECT_DOUBLE_EQ(r.ohms, 3000.0);
    if (r.name == "RPAR_x1") rparX1 = r.ohms;
    if (r.name == "RPAR_x2") rparX2 = r.ohms;
  }
  for (const circuit::Capacitor& cap : tb.capacitors) {
    if (cap.name == "CPAR_x1") cparX1 = cap.farads;
    if (cap.name == "CPAR_x2") cparX2 = cap.farads;
  }
  EXPECT_DOUBLE_EQ(rparX1, 800.0);
  EXPECT_DOUBLE_EQ(rparX1, rparX2);  // Mirrored branches, identical elements.
  EXPECT_DOUBLE_EQ(cparX1, 150e-15);
  EXPECT_DOUBLE_EQ(cparX1, cparX2);

  // Re-simulate the annotated netlist: capacitive loading must cost
  // bandwidth.  Phase margin may move either way (the wire resistance
  // adds a zero alongside the pole), but only as a small perturbation.
  const OtaPerformance loaded = v.verify(sized().result.design, &report);
  EXPECT_LT(loaded.gbwHz, clean.gbwHz);
  EXPECT_NEAR(loaded.phaseMarginDeg, clean.phaseMarginDeg, 2.0);

  // Equal parasitics on the mirrored branches keep the input-referred
  // offset close to the clean measurement: symmetric annotation must not
  // unbalance the pair.
  layout::ParasiticReport mirrored;
  mirrored.nets["x1"] = report.nets["x1"];
  mirrored.nets["x2"] = report.nets["x2"];
  const OtaPerformance balanced = v.verify(sized().result.design, &mirrored);
  EXPECT_NEAR(balanced.offsetMv, clean.offsetMv, 0.05);
}

TEST(Verify, OffsetSignConsistency) {
  // Offset is small; flipping the inputs in the DC testbench flips the
  // measured offset.  Here we only check magnitude and stability across
  // repeated runs (determinism).
  OtaVerifier v(kTech, *sized().model);
  const OtaPerformance a = v.verify(sized().result.design, nullptr);
  const OtaPerformance b = v.verify(sized().result.design, nullptr);
  EXPECT_DOUBLE_EQ(a.offsetMv, b.offsetMv);
  EXPECT_LT(std::abs(a.offsetMv), 5.0);
}

}  // namespace
}  // namespace lo::sizing
