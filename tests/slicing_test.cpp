#include "layout/slicing.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace lo::layout {
namespace {

using geom::Coord;

/// Five alternatives trading width for height at constant area `side^2`.
std::vector<ShapeOption> squareish(Coord side) {
  std::vector<ShapeOption> opts;
  int tag = 0;
  for (Coord w : {side / 4, side / 2, side, side * 2, side * 4}) {
    opts.push_back({w, (side * side) / w, tag++});
  }
  return opts;
}

TEST(Slicing, LeafPicksOptionClosestToAspect) {
  SlicingTree tree(SlicingNode::leaf("a", squareish(1000)));
  ShapeConstraint c;
  c.aspectRatio = 1.0;
  const FloorplanResult r = tree.optimize(c);
  EXPECT_EQ(r.leaves.at("a").tag, 2);  // The square option.
  EXPECT_EQ(r.width, 1000);
  EXPECT_EQ(r.height, 1000);
}

TEST(Slicing, WideConstraintPicksWideOption) {
  SlicingTree tree(SlicingNode::leaf("a", squareish(1000)));
  ShapeConstraint c;
  c.aspectRatio = 4.0;
  const FloorplanResult r = tree.optimize(c);
  EXPECT_GT(r.width, r.height);
}

TEST(Slicing, RowAddsWidthsTakesMaxHeight) {
  std::vector<std::unique_ptr<SlicingNode>> kids;
  kids.push_back(SlicingNode::leaf("a", {{100, 200, 0}}));
  kids.push_back(SlicingNode::leaf("b", {{300, 150, 0}}));
  SlicingTree tree(SlicingNode::row(std::move(kids), 50));
  const FloorplanResult r = tree.optimize({});
  EXPECT_EQ(r.width, 100 + 300 + 50);
  EXPECT_EQ(r.height, 200);
  // b is centred vertically: (200-150)/2 = 25.
  EXPECT_EQ(r.leaves.at("b").rect.y0, 25);
  EXPECT_EQ(r.leaves.at("a").rect.x0, 0);
  EXPECT_EQ(r.leaves.at("b").rect.x0, 150);
}

TEST(Slicing, ColumnAddsHeightsTakesMaxWidth) {
  std::vector<std::unique_ptr<SlicingNode>> kids;
  kids.push_back(SlicingNode::leaf("a", {{100, 200, 0}}));
  kids.push_back(SlicingNode::leaf("b", {{300, 150, 0}}));
  SlicingTree tree(SlicingNode::column(std::move(kids), 40));
  const FloorplanResult r = tree.optimize({});
  EXPECT_EQ(r.width, 300);
  EXPECT_EQ(r.height, 390);
  EXPECT_EQ(r.leaves.at("a").rect.y0, 0);
  EXPECT_EQ(r.leaves.at("b").rect.y0, 240);
  EXPECT_EQ(r.leaves.at("a").rect.x0, 100);  // Centred in 300.
}

TEST(Slicing, ChoosesFoldCombinationMeetingAspect) {
  // Two leaves with flexible shapes; a square constraint forces mixed picks.
  std::vector<std::unique_ptr<SlicingNode>> kids;
  kids.push_back(SlicingNode::leaf("a", squareish(2000)));
  kids.push_back(SlicingNode::leaf("b", squareish(2000)));
  SlicingTree tree(SlicingNode::row(std::move(kids), 0));
  ShapeConstraint c;
  c.aspectRatio = 1.0;
  const FloorplanResult r = tree.optimize(c);
  // Pareto pruning keeps only area-optimal points; the closest achievable
  // aspect with these leaves is 2:1 (or 1:2).
  const double ratio = static_cast<double>(r.width) / r.height;
  EXPECT_LT(std::abs(std::log(ratio)), std::log(2.05));
}

TEST(Slicing, MaxWidthCapRespectedWhenFeasible) {
  SlicingTree tree(SlicingNode::leaf("a", squareish(1000)));
  ShapeConstraint c;
  c.maxWidth = 600;
  const FloorplanResult r = tree.optimize(c);
  EXPECT_LE(r.width, 600);
}

TEST(Slicing, InfeasibleCapPicksClosest) {
  SlicingTree tree(SlicingNode::leaf("a", {{1000, 1000, 0}, {2000, 500, 1}}));
  ShapeConstraint c;
  c.maxWidth = 100;  // Nothing fits.
  const FloorplanResult r = tree.optimize(c);
  EXPECT_EQ(r.leaves.at("a").tag, 0);  // Least violation.
}

TEST(Slicing, MinAreaWinsAmongFeasible) {
  SlicingTree tree(
      SlicingNode::leaf("a", {{1000, 1000, 0}, {900, 1050, 1}, {1000, 1200, 2}}));
  const FloorplanResult r = tree.optimize({});
  EXPECT_EQ(r.leaves.at("a").tag, 1);  // 945k < 1M < 1.2M.
}

TEST(Slicing, DeepTreePlacesEveryLeafDisjointly) {
  std::vector<std::unique_ptr<SlicingNode>> row1, row2, cols;
  for (int i = 0; i < 4; ++i) {
    row1.push_back(SlicingNode::leaf("r1_" + std::to_string(i), squareish(500 + 100 * i)));
    row2.push_back(SlicingNode::leaf("r2_" + std::to_string(i), squareish(800 - 100 * i)));
  }
  cols.push_back(SlicingNode::row(std::move(row1), 20));
  cols.push_back(SlicingNode::row(std::move(row2), 20));
  SlicingTree tree(SlicingNode::column(std::move(cols), 30));
  ShapeConstraint c;
  c.aspectRatio = 1.0;
  const FloorplanResult r = tree.optimize(c);
  ASSERT_EQ(r.leaves.size(), 8u);
  // No two leaf rects overlap.
  std::vector<geom::Rect> rects;
  for (const auto& [name, leaf] : r.leaves) rects.push_back(leaf.rect);
  for (std::size_t i = 0; i < rects.size(); ++i) {
    for (std::size_t j = i + 1; j < rects.size(); ++j) {
      EXPECT_FALSE(rects[i].overlaps(rects[j])) << i << " vs " << j;
    }
  }
  // All inside the reported outline.
  const geom::Rect outline(0, 0, r.width, r.height);
  for (const geom::Rect& rect : rects) EXPECT_TRUE(outline.containsRect(rect));
}

TEST(Slicing, EmptyLeafThrows) {
  EXPECT_THROW((void)SlicingNode::leaf("x", {}), std::invalid_argument);
  EXPECT_THROW((void)SlicingNode::row({}, 0), std::invalid_argument);
}

}  // namespace
}  // namespace lo::layout
