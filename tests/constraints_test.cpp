#include "layout/constraints.hpp"

#include <gtest/gtest.h>

#include "layout/ota_layout.hpp"
#include "layout/two_stage_layout.hpp"

namespace lo::layout {
namespace {

std::vector<std::string> detailsOf(const std::vector<ConstraintViolation>& violations) {
  std::vector<std::string> out;
  out.reserve(violations.size());
  for (const ConstraintViolation& v : violations) out.push_back(v.detail);
  return out;
}

bool anyDetailContains(const std::vector<ConstraintViolation>& violations,
                       const std::string& needle) {
  for (const ConstraintViolation& v : violations) {
    if (v.detail.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(Constraints, DescribeNamesKindGroupAndItems) {
  EXPECT_EQ(PlacementConstraint::mirrorPair("A", "B").describe(), "mirror_pair(A, B)");
  EXPECT_EQ(PlacementConstraint::commonCentroid("PAIR", {"M1", "M2"}).describe(),
            "common_centroid(PAIR: M1, M2)");
  EXPECT_EQ(PlacementConstraint::sameRow({"A", "B", "C"}).describe(),
            "same_row(A, B, C)");
}

TEST(Constraints, ValidSetPassesValidation) {
  ConstraintSet cs;
  cs.add(PlacementConstraint::commonCentroid("PAIR", {"M1", "M2"}));
  cs.add(PlacementConstraint::mirrorPair("A", "B"));
  cs.add(PlacementConstraint::sameRow({"A", "PAIR", "B"}));
  cs.add(PlacementConstraint::symmetryAxis({"PAIR"}));
  cs.add(PlacementConstraint::proximity("A", "B", 2.0));
  const std::vector<std::string> items = {"A", "B", "PAIR"};
  EXPECT_TRUE(validateConstraints(cs, &items).empty());
  EXPECT_NO_THROW(requireValidConstraints(cs, &items));
}

TEST(Constraints, CatchesStructuralViolations) {
  ConstraintSet cs;
  cs.add(PlacementConstraint::mirrorPair("A", "A"));          // Self mirror.
  cs.add(PlacementConstraint::commonCentroid("S", {"M1", "M2", "M3"}));  // Three devices.
  cs.add(PlacementConstraint::interdigitate("T", {"M1", "M4"}));  // M1 fused twice.
  cs.add(PlacementConstraint::sameRow({"A", "A"}));           // Duplicate in the row.
  cs.add(PlacementConstraint::proximity("A", "B", -1.0));     // Bad weight.
  const std::vector<ConstraintViolation> violations = validateConstraints(cs);
  EXPECT_TRUE(anyDetailContains(violations, "cannot mirror itself"));
  EXPECT_TRUE(anyDetailContains(violations, "exactly two devices"));
  EXPECT_TRUE(anyDetailContains(violations, "already fused into"));
  EXPECT_TRUE(anyDetailContains(violations, "duplicate item 'A'"));
  EXPECT_TRUE(anyDetailContains(violations, "weight must be positive"));
}

TEST(Constraints, CatchesUnknownItemsWhenNamesGiven) {
  ConstraintSet cs;
  cs.add(PlacementConstraint::sameRow({"A", "GHOST"}));
  const std::vector<std::string> items = {"A"};
  const auto violations = validateConstraints(cs, &items);
  ASSERT_FALSE(violations.empty());
  EXPECT_TRUE(anyDetailContains(violations, "unknown item 'GHOST'"));
  // Without names the same set is structurally fine.
  EXPECT_TRUE(validateConstraints(cs).empty());
}

TEST(Constraints, MirrorPairMayNotSpanTwoRows) {
  ConstraintSet cs;
  cs.add(PlacementConstraint::mirrorPair("A", "B"));
  cs.add(PlacementConstraint::sameRow({"A"}));
  cs.add(PlacementConstraint::sameRow({"B"}));
  const auto violations = validateConstraints(cs);
  ASSERT_FALSE(violations.empty());
  EXPECT_TRUE(anyDetailContains(violations, "spans two rows"));
}

TEST(Constraints, ItemInTwoMirrorPairsFlagged) {
  ConstraintSet cs;
  cs.add(PlacementConstraint::mirrorPair("A", "B"));
  cs.add(PlacementConstraint::mirrorPair("B", "C"));
  EXPECT_TRUE(anyDetailContains(validateConstraints(cs), "already belongs to"));
}

TEST(Constraints, RequireThrowsWithEveryViolationListed) {
  ConstraintSet cs;
  cs.add(PlacementConstraint::mirrorPair("A", "A"));
  cs.add(PlacementConstraint::proximity("A", "B", 0.0));
  try {
    requireValidConstraints(cs);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("cannot mirror itself"), std::string::npos) << msg;
    EXPECT_NE(msg.find("weight must be positive"), std::string::npos) << msg;
  }
}

TEST(Constraints, QueriesExposeLocksMatchingAndAxis) {
  ConstraintSet cs;
  cs.add(PlacementConstraint::mirrorPair("L", "R"));
  cs.add(PlacementConstraint::commonCentroid("PAIR", {"M1", "M2"}));
  cs.add(PlacementConstraint::symmetryAxis({"PAIR", "S"}));
  cs.add(PlacementConstraint::symmetryAxis({"S"}));  // Duplicate mention.

  const auto locks = cs.mirrorLocks();
  ASSERT_EQ(locks.size(), 1u);
  EXPECT_EQ(locks.at("R"), "L");

  const PlacementConstraint* matching = cs.matchingFor("PAIR");
  ASSERT_NE(matching, nullptr);
  EXPECT_EQ(matching->kind, ConstraintKind::kCommonCentroid);
  EXPECT_EQ(cs.matchingFor("NOPE"), nullptr);

  EXPECT_EQ(cs.axisItems(), (std::vector<std::string>{"PAIR", "S"}));
  EXPECT_EQ(cs.ofKind(ConstraintKind::kSymmetryAxis).size(), 2u);
}

// The built-in topologies' declared intent must itself validate -- this is
// what the engine checks before the first layout call.
TEST(Constraints, BuiltInTopologyDeclarationsAreValid) {
  for (bool bias : {false, true}) {
    const ConstraintSet ota = otaPlacementConstraints(OtaLayoutOptions{}, bias);
    EXPECT_TRUE(validateConstraints(ota).empty()) << "bias=" << bias;
    EXPECT_GE(ota.size(), 9u);
  }
  OtaLayoutOptions interdig;
  interdig.commonCentroidPair = false;
  ASSERT_NE(otaPlacementConstraints(interdig, false).matchingFor("PAIR"), nullptr);
  EXPECT_EQ(otaPlacementConstraints(interdig, false).matchingFor("PAIR")->kind,
            ConstraintKind::kInterdigitate);

  const ConstraintSet twoStage = twoStagePlacementConstraints();
  EXPECT_TRUE(validateConstraints(twoStage).empty());
  ASSERT_NE(twoStage.matchingFor("MIRROR"), nullptr);
  EXPECT_EQ(twoStage.matchingFor("MIRROR")->items,
            (std::vector<std::string>{"MP3", "MP4"}));
  EXPECT_TRUE(detailsOf(validateConstraints(twoStage)).empty());
}

}  // namespace
}  // namespace lo::layout
