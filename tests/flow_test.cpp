#include "core/flow.hpp"

#include <gtest/gtest.h>

namespace lo::core {
namespace {

const tech::Technology kTech = tech::Technology::generic060();

FlowResult runCase(SizingCase c) {
  FlowOptions opt;
  opt.sizingCase = c;
  SynthesisFlow flow(kTech, opt);
  return flow.run(sizing::OtaSpecs{});
}

/// All four cases, computed once (deterministic, ~0.2 s total).
const std::map<SizingCase, FlowResult>& allCases() {
  static const std::map<SizingCase, FlowResult> results = [] {
    std::map<SizingCase, FlowResult> m;
    for (SizingCase c : {SizingCase::kCase1, SizingCase::kCase2, SizingCase::kCase3,
                         SizingCase::kCase4}) {
      m.emplace(c, runCase(c));
    }
    return m;
  }();
  return results;
}

TEST(Flow, Case4ConvergesInFewLayoutCalls) {
  // Paper section 5: "Three calls of the layout tool were needed before
  // parasitic convergence."
  const FlowResult& r = allCases().at(SizingCase::kCase4);
  EXPECT_TRUE(r.parasiticConverged);
  EXPECT_GE(r.layoutCalls, 2);
  EXPECT_LE(r.layoutCalls, 5);
  EXPECT_EQ(static_cast<int>(r.iterations.size()), r.layoutCalls);
}

TEST(Flow, Case4MeetsGbwInExtractedSimulation) {
  const sizing::OtaSpecs specs;
  const FlowResult& r = allCases().at(SizingCase::kCase4);
  // Synthesised value on target, extracted simulation within a few percent.
  EXPECT_NEAR(r.predicted.gbwHz, specs.gbw, specs.gbw * 0.01);
  EXPECT_NEAR(r.measured.gbwHz, specs.gbw, specs.gbw * 0.04);
}

TEST(Flow, Case1MissesGbwWithoutLayoutKnowledge) {
  // Paper Table 1 case 1: GBW of the extracted netlist falls clearly below
  // the target when no layout capacitance was considered during sizing.
  const sizing::OtaSpecs specs;
  const FlowResult& r = allCases().at(SizingCase::kCase1);
  EXPECT_LT(r.measured.gbwHz, specs.gbw * 0.96);
  EXPECT_EQ(r.layoutCalls, 0);  // No parasitic feedback in case 1.
}

TEST(Flow, Case4IsClosestToTarget) {
  const sizing::OtaSpecs specs;
  const double err4 =
      std::abs(allCases().at(SizingCase::kCase4).measured.gbwHz - specs.gbw);
  for (SizingCase c : {SizingCase::kCase1, SizingCase::kCase2, SizingCase::kCase3}) {
    EXPECT_LT(err4, std::abs(allCases().at(c).measured.gbwHz - specs.gbw) + 1e3)
        << sizingCaseName(c);
  }
}

TEST(Flow, Case2OverEstimationCostsGainAndCmrr) {
  // Paper: "other specifications like the input noise, the dc gain and the
  // output resistance could not be optimized" under the pessimistic cap
  // assumption.
  const FlowResult& r1 = allCases().at(SizingCase::kCase1);
  const FlowResult& r2 = allCases().at(SizingCase::kCase2);
  EXPECT_LT(r2.measured.dcGainDb, r1.measured.dcGainDb);
  EXPECT_LT(r2.measured.cmrrDb, r1.measured.cmrrDb);
  EXPECT_LT(r2.measured.outputResistanceMOhm, r1.measured.outputResistanceMOhm);
  EXPECT_GT(r2.measured.powerMw, r1.measured.powerMw);
}

TEST(Flow, PredictionTracksSimulationForCase4) {
  // The whole point: when sizing knows everything the layout will do, the
  // synthesised numbers match the extracted simulation.
  const FlowResult& r = allCases().at(SizingCase::kCase4);
  EXPECT_NEAR(r.measured.dcGainDb, r.predicted.dcGainDb, 1.5);
  EXPECT_NEAR(r.measured.gbwHz, r.predicted.gbwHz, r.predicted.gbwHz * 0.04);
  EXPECT_NEAR(r.measured.powerMw, r.predicted.powerMw, r.predicted.powerMw * 0.03);
  EXPECT_NEAR(r.measured.outputResistanceMOhm, r.predicted.outputResistanceMOhm,
              r.predicted.outputResistanceMOhm * 0.06);
}

TEST(Flow, ExtractedDesignCarriesQuantisedFoldedGeometry) {
  const FlowResult& r = allCases().at(SizingCase::kCase4);
  for (circuit::OtaGroup g : circuit::kAllOtaGroups) {
    const device::MosGeometry& geo = r.extractedDesign.geometry(g);
    EXPECT_GT(geo.nf, 1) << circuit::otaGroupName(g);
    EXPECT_GT(geo.ad, 0.0) << circuit::otaGroupName(g);
    // Fold-quantised width differs slightly from the designed width (the
    // paper's grid-snapping effect) but stays within one grid per finger.
    const double designed = r.sizing.design.geometry(g).w;
    EXPECT_NEAR(geo.w, designed, geo.nf * 60e-9) << circuit::otaGroupName(g);
  }
}

TEST(Flow, IterationHistoryShowsParasiticSettling) {
  const FlowResult& r = allCases().at(SizingCase::kCase4);
  ASSERT_GE(r.iterations.size(), 2u);
  // Later iterations change less than the first step.
  const auto& it = r.iterations;
  const double first = std::abs(it[1].capX1 - it[0].capX1);
  const double last = std::abs(it.back().capX1 - it[it.size() - 2].capX1);
  EXPECT_LE(last, first + 1e-18);
  for (const FlowIteration& i : it) {
    EXPECT_GT(i.capX1, 0.0);
    EXPECT_GT(i.capTail, 0.0);
    EXPECT_GT(i.tailCurrent, 0.0);
  }
}

TEST(Flow, FoldPolicyAblationChangesLayoutStyle) {
  FlowOptions internal;
  internal.sizingCase = SizingCase::kCase4;
  FlowOptions alternating = internal;
  alternating.layoutOptions.foldStyle = device::FoldStyle::kAlternating;
  SynthesisFlow fi(kTech, internal), fa(kTech, alternating);
  const FlowResult ri = fi.run(sizing::OtaSpecs{});
  const FlowResult ra = fa.run(sizing::OtaSpecs{});
  // Internal-drain policy: even folds everywhere.
  for (const auto& [g, plan] : ri.layout.foldPlans) {
    EXPECT_EQ(plan.nf % 2, 0) << circuit::otaGroupName(g);
  }
  // Both still meet GBW after compensation -- the methodology absorbs the
  // style change; the drain capacitance differs.
  const sizing::OtaSpecs specs;
  EXPECT_NEAR(ri.measured.gbwHz, specs.gbw, specs.gbw * 0.05);
  EXPECT_NEAR(ra.measured.gbwHz, specs.gbw, specs.gbw * 0.05);
}

}  // namespace
}  // namespace lo::core
