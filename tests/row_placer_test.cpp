#include "layout/row.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "layout/drc.hpp"
#include "tech/technology.hpp"

namespace lo::layout {
namespace {

const tech::Technology kTech = tech::Technology::generic060();

RowItem item(std::string name, RowKind kind, std::vector<ShapeOption> options,
             std::vector<std::string> nets = {}, std::string wellNet = {},
             bool annex = false) {
  RowItem it;
  it.name = std::move(name);
  it.kind = kind;
  it.wellNet = std::move(wellNet);
  it.annex = annex;
  it.options = std::move(options);
  it.nets = std::move(nets);
  return it;
}

/// A small synthetic design: one matched NMOS row (mirror pair around a
/// centred stack, two free fillers, one annex leg), one unpinned NMOS
/// singleton that may hop in, and a PMOS load row.
struct Fixture {
  std::vector<RowItem> items;
  ConstraintSet constraints;

  Fixture() {
    const std::vector<ShapeOption> mirrorMenu = {{6000, 4000, 2}, {3000, 8000, 4}};
    items.push_back(item("L1", RowKind::kNmos, mirrorMenu, {"a"}));
    items.push_back(item("R1", RowKind::kNmos, mirrorMenu, {"a"}));
    items.push_back(item("S", RowKind::kNmos, {{4000, 4000, 0}}, {"a", "b"}));
    items.push_back(item("F1", RowKind::kNmos, {{2000, 4000, 0}}, {"a"}));
    items.push_back(item("F2", RowKind::kNmos, {{2000, 4000, 0}}, {"b"}));
    items.push_back(item("A", RowKind::kNmos, {{1500, 4000, 0}}, {"bias"}, {},
                         /*annex=*/true));
    items.push_back(item("U", RowKind::kNmos, {{2000, 3000, 0}}, {"b"}));
    items.push_back(
        item("P", RowKind::kPmos, {{9000, 3000, 0}, {4500, 6000, 1}}, {"b"}, "vdd"));

    constraints.add(PlacementConstraint::mirrorPair("L1", "R1"));
    constraints.add(PlacementConstraint::sameRow({"L1", "F1", "S", "F2", "R1", "A"}));
    constraints.add(PlacementConstraint::sameRow({"P"}));
    constraints.add(PlacementConstraint::symmetryAxis({"S"}));
    constraints.add(PlacementConstraint::proximity("S", "P", 2.0));
  }
};

std::string canon(const RowPlacement& p) {
  std::ostringstream out;
  out.precision(17);
  out << p.floorplan.width << 'x' << p.floorplan.height << ';';
  for (const auto& [name, leaf] : p.floorplan.leaves) {
    out << name << ':' << leaf.tag << ':' << leaf.rect.x0 << ',' << leaf.rect.y0 << ','
        << leaf.rect.x1 << ',' << leaf.rect.y1 << ';';
  }
  for (const RowAssignment& row : p.rows) {
    out << rowKindName(row.kind) << '[';
    for (const std::string& n : row.items) out << n << ',';
    out << row.band.lo << ':' << row.band.hi << ']';
  }
  out << p.estimatedWirelengthNm << '|' << p.scoreNm2 << '|' << p.candidatesEvaluated;
  return out.str();
}

TEST(RowPlacer, DeclaredModeRealisesDeclaredRowsBottomUp) {
  const Fixture f;
  const RowPlacer placer(kTech, f.items, f.constraints);
  RowPlacerOptions opt;
  const RowPlacement p = placer.place(opt);

  // Declared NMOS row, the unpinned NMOS singleton, then the PMOS row.
  ASSERT_EQ(p.rows.size(), 3u);
  EXPECT_EQ(p.rows[0].kind, RowKind::kNmos);
  EXPECT_EQ(p.rows[0].items,
            (std::vector<std::string>{"L1", "F1", "S", "F2", "R1", "A"}));
  EXPECT_EQ(p.rows[1].kind, RowKind::kNmos);
  EXPECT_EQ(p.rows[1].items, (std::vector<std::string>{"U"}));
  EXPECT_EQ(p.rows[2].kind, RowKind::kPmos);
  EXPECT_EQ(p.rows[2].wellNet, "vdd");

  // Rows stack bottom to top with room for routing between the bands.
  EXPECT_LT(p.rows[0].band.hi, p.rows[1].band.lo);
  EXPECT_LT(p.rows[1].band.hi, p.rows[2].band.lo);
  EXPECT_EQ(p.candidatesEvaluated, 1);
  EXPECT_GT(p.estimatedWirelengthNm, 0.0);
  EXPECT_DOUBLE_EQ(p.scoreNm2,
                   p.floorplan.areaNm2() + opt.wireCostNm * p.estimatedWirelengthNm);
}

TEST(RowPlacer, MirrorLockEqualisesFoldTags) {
  const Fixture f;
  const RowPlacer placer(kTech, f.items, f.constraints);
  for (RowSearch search : {RowSearch::kDeclared, RowSearch::kSeeded}) {
    RowPlacerOptions opt;
    opt.search = search;
    opt.candidates = 16;
    const RowPlacement p = placer.place(opt);
    EXPECT_EQ(p.tags.at("L1"), p.tags.at("R1"));
    EXPECT_EQ(p.floorplan.leaves.at("L1").rect.width(),
              p.floorplan.leaves.at("R1").rect.width());
  }
}

TEST(RowPlacer, ChannelsSurroundEveryRow) {
  const Fixture f;
  const RowPlacer placer(kTech, f.items, f.constraints);
  const RowPlacement p = placer.place(RowPlacerOptions{});
  const std::vector<Channel> channels = rowChannels(kTech, p, 20000);
  ASSERT_EQ(channels.size(), p.rows.size() + 1);
  EXPECT_EQ(channels.front().y1, p.rows.front().band.lo - kTech.rules.metal1Spacing);
  EXPECT_EQ(channels.front().y0, p.rows.front().band.lo - 20000);
  EXPECT_EQ(channels.back().y0, p.rows.back().band.hi + kTech.rules.metal1Spacing);
  for (std::size_t i = 0; i + 1 < channels.size(); ++i) {
    EXPECT_LE(channels[i].y1, channels[i + 1].y0);
  }
}

// Satellite requirement: the seeded search is reproducible -- the same
// constraints and seed give a byte-identical placement no matter how many
// evaluation threads run or how often it is repeated.
TEST(RowPlacer, SeededSearchIsDeterministicAcrossThreadCounts) {
  const Fixture f;
  const RowPlacer placer(kTech, f.items, f.constraints);
  RowPlacerOptions opt;
  opt.search = RowSearch::kSeeded;
  opt.seed = 7;
  opt.candidates = 64;

  opt.threads = 1;
  const std::string baseline = canon(placer.place(opt));
  EXPECT_EQ(canon(placer.place(opt)), baseline) << "repeat run diverged";
  for (int threads : {2, 8}) {
    opt.threads = threads;
    EXPECT_EQ(canon(placer.place(opt)), baseline) << "threads=" << threads;
  }
}

TEST(RowPlacer, SeededSearchNeverLosesToDeclared) {
  const Fixture f;
  const RowPlacer placer(kTech, f.items, f.constraints);
  RowPlacerOptions declared;
  const RowPlacement base = placer.place(declared);

  RowPlacerOptions seeded;
  seeded.search = RowSearch::kSeeded;
  seeded.seed = 7;
  seeded.candidates = 64;
  const RowPlacement best = placer.place(seeded);
  EXPECT_LE(best.scoreNm2, base.scoreNm2);
  // Duplicate draws are deduplicated, so the unique-candidate count sits
  // between the declared baseline and the full request.
  EXPECT_GT(best.candidatesEvaluated, 1);
  EXPECT_LE(best.candidatesEvaluated, 1 + 64);
}

TEST(RowPlacer, SeededWinnersStillHonourDeclaredSymmetry) {
  const Fixture f;
  const RowPlacer placer(kTech, f.items, f.constraints);
  RowPlacerOptions opt;
  opt.search = RowSearch::kSeeded;
  opt.candidates = 64;
  for (std::uint64_t seed : {1ull, 7ull, 42ull}) {
    opt.seed = seed;
    const RowPlacement p = placer.place(opt);
    EXPECT_TRUE(
        auditSymmetry(f.constraints, p.floorplan.leaves, kTech.rules.grid).empty())
        << "seed " << seed;
  }
}

TEST(RowPlacer, ConstructorRejectsMalformedInput) {
  // A row cannot mix NMOS and PMOS items.
  {
    std::vector<RowItem> items = {item("N", RowKind::kNmos, {{100, 100, 0}}),
                                  item("P", RowKind::kPmos, {{100, 100, 0}}, {}, "vdd")};
    ConstraintSet cs;
    cs.add(PlacementConstraint::sameRow({"N", "P"}));
    EXPECT_THROW(RowPlacer(kTech, items, cs), std::invalid_argument);
  }
  // PMOS items in one row must agree on the well net.
  {
    std::vector<RowItem> items = {item("P1", RowKind::kPmos, {{100, 100, 0}}, {}, "vdd"),
                                  item("P2", RowKind::kPmos, {{100, 100, 0}}, {}, "tail")};
    ConstraintSet cs;
    cs.add(PlacementConstraint::sameRow({"P1", "P2"}));
    EXPECT_THROW(RowPlacer(kTech, items, cs), std::invalid_argument);
  }
  // Every item needs a shape menu.
  {
    std::vector<RowItem> items = {item("N", RowKind::kNmos, {})};
    EXPECT_THROW(RowPlacer(kTech, items, ConstraintSet{}), std::invalid_argument);
  }
  // Item names must be unique.
  {
    std::vector<RowItem> items = {item("N", RowKind::kNmos, {{100, 100, 0}}),
                                  item("N", RowKind::kNmos, {{100, 100, 0}})};
    EXPECT_THROW(RowPlacer(kTech, items, ConstraintSet{}), std::invalid_argument);
  }
  // Constraints may only reference existing items.
  {
    std::vector<RowItem> items = {item("N", RowKind::kNmos, {{100, 100, 0}})};
    ConstraintSet cs;
    cs.add(PlacementConstraint::sameRow({"N", "GHOST"}));
    EXPECT_THROW(RowPlacer(kTech, items, cs), std::invalid_argument);
  }
}

TEST(RowPlacer, MergedWellsGroupByWellNetInFirstAppearanceOrder) {
  const std::vector<RowActive> actives = {
      {tech::MosType::kPmos, "vdd", {0, 100000, 50000, 200000}},
      {tech::MosType::kPmos, "tail", {0, 300000, 80000, 400000}},
      {tech::MosType::kPmos, "vdd", {60000, 100000, 120000, 200000}},
      {tech::MosType::kNmos, "", {0, 0, 50000, 50000}},
      {tech::MosType::kNmos, "", {60000, 0, 120000, 50000}},
  };
  const geom::ShapeList wells = mergedRowWells(kTech, actives);

  const auto nwells = wells.onLayer(tech::Layer::kNWell);
  ASSERT_EQ(nwells.size(), 2u);
  EXPECT_EQ(nwells[0].net, "vdd");
  EXPECT_EQ(nwells[1].net, "tail");
  const geom::Coord g = kTech.rules.nwellOverActive;
  EXPECT_EQ(nwells[0].rect, (geom::Rect{0 - g, 100000 - g, 120000 + g, 200000 + g}));

  EXPECT_EQ(wells.onLayer(tech::Layer::kPPlus).size(), 2u);
  const auto nplus = wells.onLayer(tech::Layer::kNPlus);
  ASSERT_EQ(nplus.size(), 1u);
  const geom::Coord s = kTech.rules.selectOverActive;
  EXPECT_EQ(nplus[0].rect, (geom::Rect{0 - s, 0 - s, 120000 + s, 50000 + s}));
}

// Satellite requirement: the DRC symmetry audit flags placements that
// break a declared MirrorPair / SymmetryAxis.
class SymmetryAudit : public ::testing::Test {
 protected:
  static constexpr geom::Coord kTol = 50;

  ConstraintSet constraints_;
  std::map<std::string, PlacedLeaf> leaves_;

  void SetUp() override {
    constraints_.add(PlacementConstraint::mirrorPair("L", "R"));
    constraints_.add(PlacementConstraint::symmetryAxis({"S"}));
    leaves_["L"] = {0, {0, 0, 1000, 2000}};
    leaves_["R"] = {0, {3000, 0, 4000, 2000}};
    leaves_["S"] = {0, {1500, 0, 2500, 2000}};
  }
};

TEST_F(SymmetryAudit, CleanMirroredPlacementPasses) {
  EXPECT_TRUE(auditSymmetry(constraints_, leaves_, kTol).empty());
}

TEST_F(SymmetryAudit, UnequalOutlinesFlagged) {
  leaves_["R"].rect = {3000, 0, 4200, 2000};  // 200 nm wider than L.
  const auto v = auditSymmetry(constraints_, leaves_, kTol);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "symmetry.mirror");
  EXPECT_NE(v[0].detail.find("outlines differ"), std::string::npos);
}

TEST_F(SymmetryAudit, PairSplitAcrossRowsFlagged) {
  leaves_["R"].rect = {3000, 2500, 4000, 4500};  // Moved to another row.
  const auto v = auditSymmetry(constraints_, leaves_, kTol);
  ASSERT_FALSE(v.empty());
  EXPECT_EQ(v[0].rule, "symmetry.mirror");
  EXPECT_NE(v[0].detail.find("different rows"), std::string::npos);
}

TEST_F(SymmetryAudit, AxisItemOffTheRowAxisFlagged) {
  leaves_["S"].rect = {1700, 0, 2700, 2000};  // Axis at 2200 vs the pair's 2000.
  const auto v = auditSymmetry(constraints_, leaves_, kTol);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "symmetry.axis");
  EXPECT_NE(v[0].detail.find("disagree on the symmetry axis"), std::string::npos);
}

TEST_F(SymmetryAudit, SkewWithinGridToleranceAccepted) {
  leaves_["S"].rect = {1510, 0, 2510, 2000};  // 10 nm off-axis: within grid.
  EXPECT_TRUE(auditSymmetry(constraints_, leaves_, kTol).empty());
}

TEST_F(SymmetryAudit, MissingItemReported) {
  leaves_.erase("R");
  const auto v = auditSymmetry(constraints_, leaves_, kTol);
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v[0].detail.find("not placed"), std::string::npos);
}

TEST_F(SymmetryAudit, RunDrcOverloadAppendsSymmetryViolations) {
  leaves_["R"].rect = {3000, 0, 4200, 2000};
  const geom::ShapeList noShapes;
  const auto v = runDrc(kTech, noShapes, constraints_, leaves_);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "symmetry.mirror");
}

}  // namespace
}  // namespace lo::layout
