// Tests for the explore-session write-ahead log: record round trips,
// pending/finished digestion, the torn-tail regression (a mid-frame
// truncation must fold back to the last good frame boundary, never
// surface as corruption), idempotent replay, and ExploreManager's
// restore-on-boot path that re-runs recovered sessions to byte-identical
// fronts.
#include "explore/session_journal.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "explore/export.hpp"
#include "explore/manager.hpp"
#include "explore/service_ops.hpp"
#include "service/scheduler.hpp"
#include "tech/technology.hpp"

namespace lo::explore {
namespace {

using service::Json;

class SessionJournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path(::testing::TempDir()) /
           ("explore_session_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  static ExploreSpace quickSpace() {
    ExploreSpace space;
    space.engineOptions.sizingCase = core::SizingCase::kCase1;
    space.axes.push_back({"gbw", 50e6, 65e6, 2});
    return space;
  }

  static ExploreOptions quickOptions() {
    ExploreOptions options;
    options.budget = 5;
    options.maxRounds = 2;
    options.specTolerance = 0.2;
    return options;
  }

  static SessionRecord startedRecord(std::uint64_t id) {
    SessionRecord rec;
    rec.type = SessionRecordType::kStarted;
    rec.id = id;
    rec.request = exploreRequestJson(quickSpace(), quickOptions());
    return rec;
  }

  std::filesystem::path dir_;
};

TEST_F(SessionJournalTest, RecordsRoundTripThroughJson) {
  SessionRecord started = startedRecord(3);
  const SessionRecord started2 = SessionRecord::fromJson(started.toJson());
  EXPECT_EQ(started2.type, SessionRecordType::kStarted);
  EXPECT_EQ(started2.id, 3u);
  EXPECT_EQ(started2.request.dump(), started.request.dump());

  SessionRecord progress;
  progress.type = SessionRecordType::kProgress;
  progress.id = 3;
  progress.evaluated = 4;
  progress.frontSize = 2;
  progress.frontDigest = frontDigestOf({"a", "b"});
  const SessionRecord progress2 = SessionRecord::fromJson(progress.toJson());
  EXPECT_EQ(progress2.type, SessionRecordType::kProgress);
  EXPECT_EQ(progress2.evaluated, 4);
  EXPECT_EQ(progress2.frontSize, 2);
  EXPECT_EQ(progress2.frontDigest, progress.frontDigest);

  SessionRecord finished;
  finished.type = SessionRecordType::kFinished;
  finished.id = 3;
  finished.ok = false;
  finished.error = "deadline";
  const SessionRecord finished2 = SessionRecord::fromJson(finished.toJson());
  EXPECT_EQ(finished2.type, SessionRecordType::kFinished);
  EXPECT_FALSE(finished2.ok);
  EXPECT_EQ(finished2.error, "deadline");

  // The digest is a pure function of the key set, and order-sensitive
  // inputs are the caller's bug -- the explorer always hands over the
  // archive's canonical order.
  EXPECT_EQ(frontDigestOf({"a", "b"}), frontDigestOf({"a", "b"}));
  EXPECT_NE(frontDigestOf({"a", "b"}), frontDigestOf({"b", "a"}));
  EXPECT_NE(frontDigestOf({"a"}), frontDigestOf({}));

  // Corrupt records throw rather than deserialise nonsense.
  EXPECT_THROW((void)SessionRecord::fromJson(Json::parse(R"({"type":"started"})")),
               std::invalid_argument);  // id 0
  EXPECT_THROW(
      (void)SessionRecord::fromJson(Json::parse(R"({"type":"started","id":4})")),
      std::invalid_argument);  // started without a request
  EXPECT_THROW((void)sessionRecordTypeFromName("bogus"), std::invalid_argument);
}

TEST_F(SessionJournalTest, ReplayDigestsPendingAndFinished) {
  SessionJournalOptions options;
  options.dir = dir_.string();
  {
    SessionJournal journal(options);
    (void)journal.replay();
    journal.append(startedRecord(1));
    journal.append(startedRecord(2));
    SessionRecord progress;
    progress.type = SessionRecordType::kProgress;
    progress.id = 1;
    progress.evaluated = 3;
    journal.append(progress, /*durable=*/false);
    SessionRecord finished;
    finished.type = SessionRecordType::kFinished;
    finished.id = 1;
    finished.ok = true;
    journal.append(finished);
  }
  SessionJournal journal(options);
  const SessionReplay replay = journal.replay();
  EXPECT_EQ(replay.records.size(), 4u);
  EXPECT_EQ(replay.finished, 1u);
  EXPECT_EQ(replay.maxId, 2u);
  EXPECT_FALSE(replay.tornTail);
  // Only session 2 is still owed: 1 finished.
  ASSERT_EQ(replay.pending.size(), 1u);
  EXPECT_EQ(replay.pending[0].id, 2u);
  EXPECT_FALSE(replay.pending[0].request.isNull());

  // Duplicate started records for one id (a session handed off between
  // shards) must restart once, not once per record.
  journal.append(startedRecord(2));
  const SessionReplay again = SessionJournal::replayFile(journal.logPath());
  ASSERT_EQ(again.pending.size(), 1u);
  EXPECT_EQ(again.pending[0].id, 2u);
}

TEST_F(SessionJournalTest, TornMidFrameTailTruncatesToLastGoodBoundary) {
  SessionJournalOptions options;
  options.dir = dir_.string();
  std::string path;
  {
    SessionJournal journal(options);
    (void)journal.replay();
    journal.append(startedRecord(1));
    journal.append(startedRecord(2));
    journal.append(startedRecord(3));
    path = journal.logPath();
  }

  // Hand-truncate mid-frame: chop five bytes out of the last record's
  // payload, as if the process died partway through a write the page
  // cache had only half-flushed.
  const auto fullSize = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, fullSize - 5);

  {
    SessionJournal journal(options);
    const SessionReplay replay = journal.replay();
    EXPECT_TRUE(replay.tornTail);
    EXPECT_GT(replay.truncatedBytes, 0u);
    // The torn record is gone; everything before the tear survives whole.
    ASSERT_EQ(replay.records.size(), 2u);
    EXPECT_EQ(replay.pending.size(), 2u);
    EXPECT_EQ(replay.maxId, 2u);
    // And the file itself was folded back to the last good frame
    // boundary, so subsequent appends start clean...
    EXPECT_LT(std::filesystem::file_size(path), fullSize - 5);
    journal.append(startedRecord(7));
  }

  // ...and a fresh replay sees a healthy log again: no torn tail, the
  // two survivors plus the post-repair append.
  const SessionReplay healed = SessionJournal::replayFile(path);
  EXPECT_FALSE(healed.tornTail);
  ASSERT_EQ(healed.records.size(), 3u);
  EXPECT_EQ(healed.maxId, 7u);
}

TEST_F(SessionJournalTest, ReplayFileIsIdempotentAndSideEffectFree) {
  SessionJournalOptions options;
  options.dir = dir_.string();
  {
    SessionJournal journal(options);
    (void)journal.replay();
    journal.append(startedRecord(1));
  }
  const std::string path = (dir_ / "explore.wal").string();
  const auto size = std::filesystem::file_size(path);
  for (int i = 0; i < 3; ++i) {
    const SessionReplay replay = SessionJournal::replayFile(path);
    EXPECT_EQ(replay.records.size(), 1u);
    EXPECT_EQ(std::filesystem::file_size(path), size);
  }
}

TEST_F(SessionJournalTest, ManagerRestartsPendingSessionsOnBoot) {
  service::SchedulerOptions schedulerOptions;
  schedulerOptions.threads = 1;
  service::JobScheduler scheduler(tech::Technology::generic060(),
                                  schedulerOptions);

  // A previous incarnation journalled session 7 as started and died
  // before finishing it.
  SessionJournalOptions options;
  options.dir = dir_.string();
  {
    SessionJournal journal(options);
    (void)journal.replay();
    journal.append(startedRecord(7));
  }

  ExploreManager manager(scheduler, dir_.string());
  EXPECT_EQ(manager.recoveredSessions(), 1u);
  // The recovered session resumes under its original id and completes.
  const ExploreManager::Outcome outcome = manager.wait(7);
  EXPECT_TRUE(outcome.ok) << outcome.error;
  EXPECT_FALSE(outcome.result.front.empty());

  // Fresh ids continue past everything the journal has seen.
  const std::uint64_t next = manager.start(quickSpace(), quickOptions());
  EXPECT_GT(next, 7u);
  EXPECT_TRUE(manager.wait(next).ok);

  // Determinism is the recovery contract: the resumed session's front is
  // byte-identical to a fresh run of the same request.
  EXPECT_EQ(frontCsv(outcome.result, quickSpace()),
            frontCsv(manager.wait(next).result, quickSpace()));

  // A second boot on the same directory owes nothing: both sessions
  // journalled their finished records.
  ExploreManager rebooted(scheduler, dir_.string());
  EXPECT_EQ(rebooted.recoveredSessions(), 0u);
}

}  // namespace
}  // namespace lo::explore
