// Property-based and fuzz-style tests: deterministic pseudo-random inputs
// driving invariants that must hold for any input.
#include <gtest/gtest.h>

#include <random>

#include "circuit/spice_io.hpp"
#include "core/flow.hpp"
#include "layout/drc.hpp"
#include "layout/router.hpp"
#include "layout/slicing.hpp"
#include "sim/measure.hpp"
#include "sim/simulator.hpp"

namespace lo {
namespace {

const tech::Technology kTech = tech::Technology::generic060();

// --- Router fuzz: random port fields must route without shorts. ---

class RouterFuzz : public ::testing::TestWithParam<int> {};

TEST_P(RouterFuzz, RandomPortFieldsRouteWithoutShorts) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> colDist(0, 11);
  std::uniform_int_distribution<int> netDist(0, 3);

  // Ports on a coarse grid inside two "rows"; pitch is comfortably legal.
  layout::Cell cell;
  geom::ShapeList portMetal;
  const char* nets[] = {"n0", "n1", "n2", "n3"};
  for (int row = 0; row < 2; ++row) {
    for (int k = 0; k < 8; ++k) {
      const geom::Coord x = colDist(rng) * 4000;
      const geom::Coord y = row * 40000 + (k % 2) * 6000;
      const geom::Rect port(x, y, x + 1000, y + 10000);
      // Skip overlapping placements (illegal input).
      bool clash = false;
      for (const geom::Shape& s : cell.shapes.shapes()) {
        if (s.rect.inflated(kTech.rules.metal1Spacing).overlaps(port)) clash = true;
      }
      if (clash) continue;
      const char* net = nets[netDist(rng)];
      cell.addPort(net, tech::Layer::kMetal1, port);
      cell.shapes.add(tech::Layer::kMetal1, port, net);
    }
  }

  // Rows occupy y in [0, 16000] and [40000, 56000].
  const std::vector<layout::Channel> channels = {
      {-30000, -kTech.rules.metal1Spacing},
      {16000 + kTech.rules.metal1Spacing, 40000 - kTech.rules.metal1Spacing},
      {56000 + kTech.rules.metal1Spacing, 86000}};
  const auto routing = layout::routeCell(
      kTech, cell, {{"n0", 1e-4}, {"n1", 0.0}, {"n2", 5e-4}, {"n3", 0.0}}, channels, true);

  geom::ShapeList all = cell.shapes;
  all.merge(routing.wires, geom::Orient::kR0, 0, 0);
  const auto violations = layout::runDrc(kTech, all);
  std::vector<layout::DrcViolation> shorts;
  for (const auto& v : violations) {
    if (v.detail.find("short") != std::string::npos) shorts.push_back(v);
  }
  EXPECT_TRUE(shorts.empty()) << layout::formatViolations(shorts);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RouterFuzz, ::testing::Range(1, 13));

// --- Device model invariants over a bias/geometry grid. ---

class ModelGrid : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(ModelGrid, InvariantsHoldAcrossTheGrid) {
  const auto model = device::MosModel::create(std::get<0>(GetParam()));
  std::mt19937 rng(std::get<1>(GetParam()));
  std::uniform_real_distribution<double> wDist(1e-6, 200e-6);
  std::uniform_real_distribution<double> lDist(0.6e-6, 5e-6);
  std::uniform_real_distribution<double> vDist(0.0, 3.3);

  for (int i = 0; i < 40; ++i) {
    device::MosGeometry geo;
    geo.w = wDist(rng);
    geo.l = lDist(rng);
    device::applyUnfoldedGeometry(kTech.rules, geo);
    const double vgs = vDist(rng), vds = vDist(rng);
    const double vbs = -vDist(rng) / 2;
    const auto op = model->evaluate(kTech.nmos, geo, vgs, vds, vbs);

    // Current and conductances are finite and correctly signed (deep
    // cutoff may leave sub-zeptoampere numerical residue).
    EXPECT_TRUE(std::isfinite(op.id));
    EXPECT_GE(op.id, -1e-18) << "NMOS with vds >= 0 conducts forward";
    EXPECT_GE(op.gm, 0.0);
    EXPECT_GT(op.gds, 0.0);
    EXPECT_GE(op.gmb, 0.0);
    // All capacitances positive and bounded by the gate oxide scale.
    const double coxTotal = kTech.nmos.cox() * geo.w * geo.l;
    for (double c : {op.cgs, op.cgd, op.cgb}) {
      EXPECT_GE(c, 0.0);
      EXPECT_LT(c, 2.0 * coxTotal + 1e-12);
    }
    EXPECT_GT(op.cdb, 0.0);
    EXPECT_GT(op.csb, 0.0);
    // Monotonicity spot check: more gate drive, no less current.
    const double id2 =
        model->currentNormalized(kTech.nmos, geo, vgs + 0.05, vds, vbs, 300.15);
    EXPECT_GE(id2 + 1e-18, op.id);
  }
}

INSTANTIATE_TEST_SUITE_P(ModelsAndSeeds, ModelGrid,
                         ::testing::Combine(::testing::Values("level1", "ekv"),
                                            ::testing::Values(7, 11)));

// --- Slicing invariants on random trees. ---

class SlicingFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SlicingFuzz, RandomTreesPlaceDisjointLeavesInsideTheOutline) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> sizeDist(500, 5000);
  std::uniform_int_distribution<int> kidsDist(2, 4);
  std::uniform_int_distribution<int> optsDist(1, 4);
  int leafId = 0;

  // Random tree of depth 3.
  std::function<std::unique_ptr<layout::SlicingNode>(int)> build =
      [&](int depth) -> std::unique_ptr<layout::SlicingNode> {
    if (depth == 0) {
      std::vector<layout::ShapeOption> opts;
      const int n = optsDist(rng);
      for (int i = 0; i < n; ++i) {
        opts.push_back({sizeDist(rng), sizeDist(rng), i});
      }
      return layout::SlicingNode::leaf("L" + std::to_string(leafId++), std::move(opts));
    }
    std::vector<std::unique_ptr<layout::SlicingNode>> kids;
    const int n = kidsDist(rng);
    for (int i = 0; i < n; ++i) kids.push_back(build(depth - 1));
    return (rng() % 2) ? layout::SlicingNode::row(std::move(kids), 100)
                       : layout::SlicingNode::column(std::move(kids), 100);
  };

  layout::SlicingTree tree(build(3));
  layout::ShapeConstraint c;
  c.aspectRatio = 1.0;
  const layout::FloorplanResult r = tree.optimize(c);

  ASSERT_EQ(static_cast<int>(r.leaves.size()), leafId);
  const geom::Rect outline(0, 0, r.width, r.height);
  std::vector<geom::Rect> rects;
  for (const auto& [name, leaf] : r.leaves) {
    EXPECT_TRUE(outline.containsRect(leaf.rect)) << name;
    rects.push_back(leaf.rect);
  }
  for (std::size_t i = 0; i < rects.size(); ++i) {
    for (std::size_t j = i + 1; j < rects.size(); ++j) {
      EXPECT_FALSE(rects[i].overlaps(rects[j]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SlicingFuzz, ::testing::Range(100, 110));

// --- Netlist round trip through text preserves simulation results. ---

TEST(Integration, ExtractedNetlistRoundTripSimulatesIdentically) {
  core::FlowOptions opt;
  core::SynthesisFlow flow(kTech, opt);
  const auto r = flow.run(sizing::OtaSpecs{});

  // Build the extracted AC testbench, write it to SPICE text, parse it back.
  sizing::OtaVerifier verifier(kTech, flow.model());
  const circuit::Circuit direct =
      verifier.buildAcTestbench(r.extractedDesign, &r.layout.parasitics, 1.0, 0.0, 0.0);
  const circuit::Circuit reparsed = circuit::parseNetlist(circuit::writeNetlist(direct));
  ASSERT_EQ(reparsed.mosfets.size(), direct.mosfets.size());
  ASSERT_EQ(reparsed.capacitors.size(), direct.capacitors.size());

  sim::Simulator simA(direct, kTech, flow.model());
  sim::Simulator simB(reparsed, kTech, flow.model());
  const auto opA = simA.dcOperatingPoint();
  const auto opB = simB.dcOperatingPoint();
  const auto outA = *direct.findNode("out");
  const auto outB = *reparsed.findNode("out");
  EXPECT_NEAR(opA.voltage(outA), opB.voltage(outB), 1e-6);

  const auto acA = simA.ac(opA, 10.0, 1e9, 8);
  const auto acB = simB.ac(opB, 10.0, 1e9, 8);
  const double gbwA = sim::unityGainFrequency(sim::curveAt(acA, outA));
  const double gbwB = sim::unityGainFrequency(sim::curveAt(acB, outB));
  EXPECT_NEAR(gbwA, gbwB, gbwA * 1e-3);
}

// --- Technology text round trip preserves the whole flow result. ---

TEST(Integration, TechFileRoundTripPreservesFlowResult) {
  const tech::Technology reparsed = tech::Technology::parse(kTech.toText());
  core::FlowOptions opt;
  core::SynthesisFlow flowA(kTech, opt);
  core::SynthesisFlow flowB(reparsed, opt);
  const auto a = flowA.run(sizing::OtaSpecs{});
  const auto b = flowB.run(sizing::OtaSpecs{});
  EXPECT_NEAR(a.measured.gbwHz, b.measured.gbwHz, a.measured.gbwHz * 1e-6);
  EXPECT_NEAR(a.measured.dcGainDb, b.measured.dcGainDb, 1e-6);
  EXPECT_EQ(a.layoutCalls, b.layoutCalls);
}

}  // namespace
}  // namespace lo
