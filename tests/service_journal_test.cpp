// Crash-safety tests for the write-ahead job journal and the scheduler's
// restart recovery: replay idempotence, torn-tail tolerance, finished-job
// replay served from the cache without an engine run, and the
// kill-mid-batch -> restart -> all-jobs-accounted-for contract.
#include "service/journal.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "service/scheduler.hpp"
#include "service/serialize.hpp"

namespace lo::service {
namespace {

const tech::Technology kTech = tech::Technology::generic060();

/// A fresh scratch directory per test.
std::string scratchDir(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("lo_journal_test_" + name + "_" +
                    std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

JournalOptions dirOptions(const std::string& dir) {
  JournalOptions options;
  options.dir = dir;
  return options;
}

JobRequest fastJob(const std::string& label, double gbwMhz = 65.0) {
  JobRequest job;
  job.label = label;
  // Case 1 skips the parasitic loop: the cheapest real end-to-end run.
  job.options.sizingCase = core::SizingCase::kCase1;
  job.specs.gbw = gbwMhz * 1e6;
  return job;
}

JournalRecord submittedRecord(std::uint64_t id, const std::string& label) {
  JournalRecord rec;
  rec.type = JournalRecordType::kSubmitted;
  rec.id = id;
  rec.cacheKey = "key" + std::to_string(id);
  rec.job = toJson(fastJob(label));
  return rec;
}

JournalRecord finishedRecord(std::uint64_t id, const std::string& state) {
  JournalRecord rec;
  rec.type = JournalRecordType::kFinished;
  rec.id = id;
  rec.state = state;
  return rec;
}

TEST(JobJournal, RoundTripsRecordsAndDigestsPending) {
  const std::string dir = scratchDir("roundtrip");
  {
    JobJournal journal(dirOptions(dir));
    (void)journal.replay();
    journal.append(submittedRecord(1, "a"));
    journal.append(submittedRecord(2, "b"));
    JournalRecord started;
    started.type = JournalRecordType::kStarted;
    started.id = 1;
    started.attempt = 1;
    journal.append(started);
    journal.append(finishedRecord(1, "done"));
    EXPECT_EQ(journal.appended(), 4u);
  }

  JobJournal journal(dirOptions(dir));
  const JournalReplay replay = journal.replay();
  EXPECT_EQ(replay.records.size(), 4u);
  EXPECT_FALSE(replay.tornTail);
  EXPECT_EQ(replay.finished, 1u);
  EXPECT_EQ(replay.maxId, 2u);
  ASSERT_EQ(replay.pending.size(), 1u);
  EXPECT_EQ(replay.pending[0].id, 2u);
  EXPECT_EQ(replay.pending[0].cacheKey, "key2");
  // The serialised request survives the round trip.
  const JobRequest restored = jobRequestFromJson(replay.pending[0].job);
  EXPECT_EQ(restored.label, "b");
  EXPECT_EQ(restored.options.sizingCase, core::SizingCase::kCase1);
}

TEST(JobJournal, DoubleReplayIsIdempotent) {
  const std::string dir = scratchDir("idempotent");
  JobJournal journal(dirOptions(dir));
  (void)journal.replay();
  journal.append(submittedRecord(1, "a"));
  journal.append(submittedRecord(2, "b"));
  journal.append(finishedRecord(2, "failed"));

  const JournalReplay first = journal.replay();
  const JournalReplay second = journal.replay();
  EXPECT_EQ(first.records.size(), second.records.size());
  ASSERT_EQ(first.pending.size(), second.pending.size());
  ASSERT_EQ(first.pending.size(), 1u);
  EXPECT_EQ(first.pending[0].id, second.pending[0].id);
  EXPECT_EQ(first.maxId, second.maxId);
  EXPECT_EQ(first.pending[0].job.dump(), second.pending[0].job.dump());
}

TEST(JobJournal, ToleratesAndTruncatesTornFinalRecord) {
  const std::string dir = scratchDir("torn");
  {
    JobJournal journal(dirOptions(dir));
    (void)journal.replay();
    journal.append(submittedRecord(1, "a"));
    journal.append(submittedRecord(2, "b"));
  }
  // Tear the tail: drop the final 5 bytes, as a SIGKILL mid-append would.
  const std::string path =
      (std::filesystem::path(dir) / "journal.wal").string();
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 5);

  JobJournal journal(dirOptions(dir));
  const JournalReplay replay = journal.replay();
  EXPECT_TRUE(replay.tornTail);
  EXPECT_GT(replay.truncatedBytes, 0u);
  ASSERT_EQ(replay.records.size(), 1u);
  EXPECT_EQ(replay.records[0].id, 1u);

  // After truncation the log is clean: appends land on a frame boundary
  // and a second replay sees no tear.
  journal.append(submittedRecord(3, "c"));
  const JournalReplay again = journal.replay();
  EXPECT_FALSE(again.tornTail);
  EXPECT_EQ(again.records.size(), 2u);
  EXPECT_EQ(again.pending.size(), 2u);
}

TEST(JobJournal, TornWriteFaultLeavesReplayableLog) {
  const std::string dir = scratchDir("torn_fault");
  std::atomic<int> appends{0};
  JournalOptions options = dirOptions(dir);
  // The third append tears mid-frame and freezes the journal.
  options.tornWriteFault = [&appends] { return ++appends == 3; };
  {
    JobJournal journal(options);
    (void)journal.replay();
    journal.append(submittedRecord(1, "a"));
    journal.append(submittedRecord(2, "b"));
    journal.append(finishedRecord(1, "done"));  // Torn.
    EXPECT_TRUE(journal.frozen());
    journal.append(finishedRecord(2, "done"));  // Silently dropped.
    EXPECT_EQ(journal.appended(), 2u);
  }

  JobJournal journal(dirOptions(dir));
  const JournalReplay replay = journal.replay();
  EXPECT_TRUE(replay.tornTail);
  EXPECT_EQ(replay.records.size(), 2u);
  // Neither job has a surviving terminal record: both replay as pending.
  EXPECT_EQ(replay.pending.size(), 2u);
}

TEST(JobJournal, AppendFailureTruncatesBackToGoodBoundary) {
  const std::string dir = scratchDir("short_write");
  std::atomic<int> appends{0};
  JournalOptions options = dirOptions(dir);
  // The second append suffers a transient short write (half a frame lands,
  // as an ENOSPC would leave).
  options.shortWriteFault = [&appends] { return ++appends == 2; };
  JobJournal journal(options);
  (void)journal.replay();
  journal.append(submittedRecord(1, "a"));
  EXPECT_THROW(journal.append(submittedRecord(2, "b")), std::runtime_error);
  // Transient failure, not a crash: the journal stays usable, and the torn
  // bytes were truncated away so the next acknowledged append lands on a
  // clean frame boundary instead of behind a frame replay stops at.
  EXPECT_FALSE(journal.frozen());
  journal.append(finishedRecord(1, "done"));
  const JournalReplay replay = journal.replay();
  EXPECT_FALSE(replay.tornTail);
  ASSERT_EQ(replay.records.size(), 2u);
  EXPECT_EQ(replay.records[1].type, JournalRecordType::kFinished);
  EXPECT_TRUE(replay.pending.empty());
}

TEST(JobJournal, StaleMagicResetsInsteadOfMisparsing) {
  const std::string dir = scratchDir("magic");
  {
    std::ofstream out(std::filesystem::path(dir) / "journal.wal",
                      std::ios::binary);
    out << "not a journal at all";
  }
  JobJournal journal(dirOptions(dir));
  const JournalReplay replay = journal.replay();
  EXPECT_TRUE(replay.records.empty());
  EXPECT_FALSE(replay.tornTail);  // A reset, not a torn tail.
  // The journal is usable after the reset.
  journal.append(submittedRecord(1, "a"));
  EXPECT_EQ(journal.replay().records.size(), 1u);
}

TEST(JobJournal, CompactKeepsOnlyLiveRecords) {
  const std::string dir = scratchDir("compact");
  JobJournal journal(dirOptions(dir));
  (void)journal.replay();
  journal.append(submittedRecord(1, "a"));
  journal.append(finishedRecord(1, "done"));
  journal.append(submittedRecord(2, "b"));
  EXPECT_EQ(journal.recordsInLog(), 3u);

  journal.compact({submittedRecord(2, "b")});
  EXPECT_EQ(journal.recordsInLog(), 1u);
  EXPECT_EQ(journal.compactions(), 1u);
  const JournalReplay replay = journal.replay();
  ASSERT_EQ(replay.pending.size(), 1u);
  EXPECT_EQ(replay.pending[0].id, 2u);
}

TEST(SchedulerJournal, CleanShutdownLeavesEmptyJournal) {
  const std::string dir = scratchDir("clean_shutdown");
  SchedulerOptions options;
  options.threads = 1;
  options.journal.dir = dir;
  {
    JobScheduler scheduler(kTech, options);
    const JobStatus status = scheduler.wait(scheduler.submit(fastJob("a")));
    EXPECT_EQ(status.state, JobState::kDone);
  }
  // The destructor compacts a fully-terminal job set down to nothing.
  const JournalReplay replay = JobJournal::replayFile(
      (std::filesystem::path(dir) / "journal.wal").string());
  EXPECT_TRUE(replay.pending.empty());
  EXPECT_TRUE(replay.records.empty());

  // A reboot on the empty journal recovers nothing.
  JobScheduler rebooted(kTech, options);
  EXPECT_EQ(rebooted.health().journal.recoveredJobs, 0u);
}

TEST(SchedulerJournal, CleanShutdownPreservesUnfinishedJobsForRecovery) {
  const std::string dir = scratchDir("shutdown_preserve");
  std::atomic<bool> hold{true};
  std::atomic<bool> entered{false};

  SchedulerOptions options;
  options.threads = 1;
  options.journal.dir = dir;
  // Pin the single worker so no job can complete before the destructor
  // runs -- otherwise a fast job could legitimately finish and compact
  // away, and the test would race the machine.  Once released, the held
  // job enters its engine run with cancellation already requested and
  // aborts at the first stage check, so it stays preserved too.
  options.preRunHook = [&hold, &entered](const JobRequest&, int) {
    entered = true;
    while (hold) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  };

  std::vector<std::uint64_t> ids;
  std::thread releaser;
  {
    JobScheduler scheduler(kTech, options);
    for (int i = 0; i < 3; ++i) {
      ids.push_back(scheduler.submit(fastJob("q" + std::to_string(i),
                                             60.0 + i)));
    }
    while (!entered) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    // The destructor joins the pinned worker; release it from outside
    // once shutdown is underway.
    releaser = std::thread([&hold] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      hold = false;
    });
  }  // Clean shutdown with the whole batch unfinished.
  releaser.join();

  // Every acknowledged job is accounted for: finished in the log, or kept
  // live for the next boot -- never silently erased by the shutdown
  // compaction.
  const std::string path =
      (std::filesystem::path(dir) / "journal.wal").string();
  const JournalReplay replay = JobJournal::replayFile(path);
  std::set<std::uint64_t> pending;
  for (const JournalRecord& rec : replay.pending) pending.insert(rec.id);
  std::set<std::uint64_t> finished;
  for (const JournalRecord& rec : replay.records) {
    if (rec.type == JournalRecordType::kFinished) finished.insert(rec.id);
  }
  for (const std::uint64_t id : ids) {
    EXPECT_TRUE(pending.count(id) > 0 || finished.count(id) > 0)
        << "job " << id << " vanished from the journal at clean shutdown";
  }
  // The pinned worker drained nothing: the running head and the queued
  // tail must all have been preserved.
  EXPECT_EQ(pending.size(), 3u);

  // A reboot on the same journal recovers exactly the preserved jobs and
  // finishes them.
  JobScheduler rebooted(kTech, options);
  EXPECT_EQ(rebooted.health().journal.recoveredJobs, pending.size());
  for (const std::uint64_t id : pending) {
    const JobStatus status = rebooted.wait(id);
    EXPECT_EQ(status.state, JobState::kDone) << status.error;
    EXPECT_TRUE(status.recovered);
  }
}

TEST(SchedulerJournal, SubmitJournalFailureDoesNotShedQueuedVictim) {
  const std::string dir = scratchDir("shed_append_fail");
  std::atomic<bool> hold{true};
  std::atomic<bool> entered{false};
  std::atomic<bool> failNext{false};

  SchedulerOptions options;
  options.threads = 1;
  options.maxQueueDepth = 4;
  options.shedWatermark = 0.5;  // Shed depth: 2.
  options.journal.dir = dir;
  options.journal.shortWriteFault = [&failNext] {
    return failNext.exchange(false);
  };
  // Pin the single worker so the queue cannot drain underneath the test.
  options.preRunHook = [&hold, &entered](const JobRequest&, int) {
    entered = true;
    while (hold) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  };

  {
    JobScheduler scheduler(kTech, options);
    (void)scheduler.submit(fastJob("blocker", 60.0));
    while (!entered) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    (void)scheduler.submit(fastJob("low1", 61.0));
    const std::uint64_t victimId = scheduler.submit(fastJob("low2", 62.0));

    // The queue sits at the watermark; a higher-priority submission would
    // displace low2 -- but its journal append fails, so the submission is
    // rejected and the victim must survive untouched.
    JobRequest high = fastJob("high", 63.0);
    high.priority = 5;
    failNext = true;
    EXPECT_THROW((void)scheduler.submit(high), std::runtime_error);
    ASSERT_TRUE(scheduler.status(victimId).has_value());
    EXPECT_EQ(scheduler.status(victimId)->state, JobState::kQueued);
    EXPECT_EQ(scheduler.metrics().shed, 0u);

    // With the journal healthy again the same submission is admitted and
    // the displacement actually happens.
    (void)scheduler.submit(high);
    EXPECT_EQ(scheduler.status(victimId)->state, JobState::kShed);
    EXPECT_EQ(scheduler.metrics().shed, 1u);

    hold = false;
  }
}

TEST(SchedulerJournal, KillMidBatchRestartAccountsForEveryJob) {
  const std::string dir = scratchDir("kill_mid_batch");
  const std::string cacheDir = scratchDir("kill_mid_batch_cache");

  SchedulerOptions options;
  options.threads = 1;
  options.journal.dir = dir;
  options.cache.diskDir = cacheDir;

  std::vector<std::uint64_t> ids;
  {
    JobScheduler scheduler(kTech, options);
    for (int i = 0; i < 4; ++i) {
      ids.push_back(scheduler.submit(fastJob("job" + std::to_string(i),
                                             60.0 + i)));
    }
    // The "SIGKILL": from here on nothing reaches the journal -- the four
    // submitted records are the log's final word.  The in-process daemon
    // still finishes the batch, so every result lands in the disk cache.
    scheduler.journal()->simulateCrash();
    for (const std::uint64_t id : ids) {
      EXPECT_EQ(scheduler.wait(id).state, JobState::kDone);
    }
  }  // Destructor compaction is skipped: the journal is frozen.

  // Restart on the same directories.  The engine must never run: every
  // replayed job's result already survived in the content-addressed cache.
  std::atomic<int> engineRuns{0};
  SchedulerOptions bootOptions = options;
  bootOptions.journal.tornWriteFault = nullptr;
  bootOptions.preRunHook = [&engineRuns](const JobRequest&, int) {
    ++engineRuns;
  };
  JobScheduler rebooted(kTech, bootOptions);

  const HealthSnapshot boot = rebooted.health();
  EXPECT_EQ(boot.journal.recoveredJobs, 4u);

  std::set<std::uint64_t> seen;
  for (const std::uint64_t id : ids) {
    const JobStatus status = rebooted.wait(id);  // Original ids survive.
    EXPECT_EQ(status.state, JobState::kDone) << status.error;
    EXPECT_TRUE(status.cacheHit);
    EXPECT_TRUE(status.recovered);
    seen.insert(status.id);
  }
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_EQ(engineRuns.load(), 0);

  // The drained backlog triggered a compaction: no journal lag remains.
  const HealthSnapshot drained = rebooted.health();
  EXPECT_GE(drained.journal.compactions, 1u);
  EXPECT_EQ(drained.journal.recoveredRemaining, 0u);
  EXPECT_EQ(drained.journal.lag, 0u);
}

TEST(SchedulerJournal, CrashBeforeResultsRerunsTheEngine) {
  const std::string dir = scratchDir("rerun");
  SchedulerOptions options;
  options.threads = 1;
  options.journal.dir = dir;
  // No disk cache: after the crash nothing durable holds the result, so
  // recovery must actually re-run the engine.
  std::uint64_t id = 0;
  {
    JobScheduler scheduler(kTech, options);
    scheduler.journal()->simulateCrash();
    id = scheduler.submit(fastJob("volatile"));
    (void)scheduler.wait(id);
  }
  // simulateCrash happened before the submit: the submitted record never
  // reached the log, so this scenario needs its own pre-crash submit.
  const JournalReplay replay = JobJournal::replayFile(
      (std::filesystem::path(dir) / "journal.wal").string());
  EXPECT_TRUE(replay.pending.empty());

  // Now the real scenario: submit, then crash, then restart.
  {
    JobScheduler scheduler(kTech, options);
    id = scheduler.submit(fastJob("volatile"));
    scheduler.journal()->simulateCrash();
    (void)scheduler.wait(id);
  }
  std::atomic<int> engineRuns{0};
  SchedulerOptions bootOptions = options;
  bootOptions.preRunHook = [&engineRuns](const JobRequest&, int) {
    ++engineRuns;
  };
  JobScheduler rebooted(kTech, bootOptions);
  const JobStatus status = rebooted.wait(id);
  EXPECT_EQ(status.state, JobState::kDone) << status.error;
  EXPECT_TRUE(status.recovered);
  EXPECT_EQ(engineRuns.load(), 1);
}

}  // namespace
}  // namespace lo::service
