#include <gtest/gtest.h>

#include <cmath>

#include "circuit/spice_io.hpp"
#include "device/folding.hpp"
#include "sim/simulator.hpp"
#include "tech/technology.hpp"

namespace lo::sim {
namespace {

using circuit::Circuit;
using circuit::Waveform;

const tech::Technology kTech = tech::Technology::generic060();

DcSolution solve(const Circuit& c, const char* modelName = "level1") {
  const auto model = device::MosModel::create(modelName);
  Simulator sim(c, kTech, *model);
  return sim.dcOperatingPoint();
}

TEST(SimDc, ResistorDivider) {
  Circuit c;
  const auto in = c.node("in"), mid = c.node("mid");
  c.addVSource("V1", in, circuit::kGround, Waveform::makeDc(3.0));
  c.addResistor("R1", in, mid, 10e3);
  c.addResistor("R2", mid, circuit::kGround, 20e3);
  const DcSolution sol = solve(c);
  EXPECT_TRUE(sol.converged);
  EXPECT_NEAR(sol.voltage(mid), 2.0, 1e-6);
  // Branch current through V1: 3 V over 30 kOhm flowing out of the source.
  EXPECT_NEAR(sol.vsourceCurrents[0], -1e-4, 1e-9);
}

TEST(SimDc, CurrentSourceIntoResistor) {
  Circuit c;
  const auto n = c.node("n");
  c.addISource("I1", circuit::kGround, n, Waveform::makeDc(1e-3));
  c.addResistor("R1", n, circuit::kGround, 1e3);
  const DcSolution sol = solve(c);
  EXPECT_NEAR(sol.voltage(n), 1.0, 1e-6);
}

TEST(SimDc, VcvsAmplifier) {
  Circuit c;
  const auto in = c.node("in"), out = c.node("out");
  c.addVSource("V1", in, circuit::kGround, Waveform::makeDc(0.01));
  c.addVcvs("E1", out, circuit::kGround, in, circuit::kGround, 100.0);
  c.addResistor("RL", out, circuit::kGround, 1e3);
  const DcSolution sol = solve(c);
  EXPECT_NEAR(sol.voltage(out), 1.0, 1e-6);
}

TEST(SimDc, DiodeConnectedNmosMatchesModelInversion) {
  Circuit c;
  const auto d = c.node("d");
  device::MosGeometry geo;
  geo.w = 50e-6;
  geo.l = 1e-6;
  device::applyUnfoldedGeometry(kTech.rules, geo);
  c.addISource("I1", circuit::kGround, d, Waveform::makeDc(100e-6));
  c.addMos("M1", d, d, circuit::kGround, circuit::kGround, tech::MosType::kNmos, geo);

  const auto model = device::MosModel::create("level1");
  Simulator sim(c, kTech, *model);
  const DcSolution sol = sim.dcOperatingPoint();
  // The solved gate voltage must reproduce the target current.
  const double id =
      model->currentNormalized(kTech.nmos, geo, sol.voltage(d), sol.voltage(d), 0.0, 300.15);
  EXPECT_NEAR(id, 100e-6, 100e-6 * 1e-4);
  EXPECT_EQ(sol.mosOps[0].region, device::MosRegion::kSaturation);
}

class MirrorByModel : public ::testing::TestWithParam<const char*> {};

TEST_P(MirrorByModel, SimpleCurrentMirrorReproducesRatio) {
  Circuit c;
  const auto d1 = c.node("d1"), d2 = c.node("d2"), vdd = c.node("vdd");
  device::MosGeometry g1, g2;
  g1.w = 10e-6;
  g1.l = 2e-6;
  device::applyUnfoldedGeometry(kTech.rules, g1);
  g2 = g1;
  g2.w = 30e-6;  // 1:3 mirror.
  device::applyUnfoldedGeometry(kTech.rules, g2);

  c.addVSource("VDD", vdd, circuit::kGround, Waveform::makeDc(3.3));
  c.addISource("IREF", d1, circuit::kGround, Waveform::makeDc(50e-6));
  c.addMos("M1", d1, d1, vdd, vdd, tech::MosType::kPmos, g1);
  c.addMos("M2", d2, d1, vdd, vdd, tech::MosType::kPmos, g2);
  c.addResistor("RL", d2, circuit::kGround, 10e3);

  const DcSolution sol = solve(c, GetParam());
  const double iOut = sol.voltage(d2) / 10e3;
  // 1:3 ratio within a few percent (finite output resistance).
  EXPECT_NEAR(iOut, 150e-6, 150e-6 * 0.05);
}

INSTANTIATE_TEST_SUITE_P(Models, MirrorByModel, ::testing::Values("level1", "ekv"));

TEST(SimDc, CmosInverterSwitchesState) {
  Circuit c;
  const auto in = c.node("in"), out = c.node("out"), vdd = c.node("vdd");
  device::MosGeometry gn, gp;
  gn.w = 10e-6;
  gn.l = 0.6e-6;
  device::applyUnfoldedGeometry(kTech.rules, gn);
  gp = gn;
  gp.w = 25e-6;
  device::applyUnfoldedGeometry(kTech.rules, gp);
  c.addVSource("VDD", vdd, circuit::kGround, Waveform::makeDc(3.3));
  c.addVSource("VIN", in, circuit::kGround, Waveform::makeDc(0.0));
  c.addMos("MN", out, in, circuit::kGround, circuit::kGround, tech::MosType::kNmos, gn);
  c.addMos("MP", out, in, vdd, vdd, tech::MosType::kPmos, gp);

  const auto model = device::MosModel::create("ekv");
  Simulator sim(c, kTech, *model);
  const auto sweep = sim.dcSweep("VIN", 0.0, 3.3, 12);
  EXPECT_GT(sweep.front().solution.voltage(out), 3.2);  // Input low -> output high.
  EXPECT_LT(sweep.back().solution.voltage(out), 0.1);   // Input high -> output low.
  // Output is monotonically non-increasing along the sweep.
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_LE(sweep[i].solution.voltage(out), sweep[i - 1].solution.voltage(out) + 1e-6);
  }
}

TEST(SimDc, MultiplierActsAsParallelDevices) {
  Circuit c;
  const auto d = c.node("d"), g = c.node("g");
  device::MosGeometry geo;
  geo.w = 10e-6;
  geo.l = 1e-6;
  device::applyUnfoldedGeometry(kTech.rules, geo);
  c.addVSource("VG", g, circuit::kGround, Waveform::makeDc(1.5));
  c.addVSource("VD", d, circuit::kGround, Waveform::makeDc(2.0));
  c.addMos("M1", d, g, circuit::kGround, circuit::kGround, tech::MosType::kNmos, geo, 4.0);
  const DcSolution sol = solve(c);
  device::MosGeometry wide = geo;
  wide.w = 40e-6;
  const auto model = device::MosModel::create("level1");
  const double idWide = model->currentNormalized(kTech.nmos, wide, 1.5, 2.0, 0.0, 300.15);
  EXPECT_NEAR(std::abs(sol.mosOps[0].id), idWide, idWide * 1e-9);
}

TEST(SimDc, SweepRequiresKnownSource) {
  Circuit c;
  c.addResistor("R1", c.node("a"), circuit::kGround, 1e3);
  const auto model = device::MosModel::create("level1");
  Simulator sim(c, kTech, *model);
  EXPECT_THROW((void)sim.dcSweep("VMISSING", 0, 1, 3), SimulationError);
  EXPECT_THROW((void)sim.dcSweep("VMISSING", 0, 1, 1), std::invalid_argument);
}

TEST(SimDc, FloatingNodeHeldByGmin) {
  // A node with no DC path to ground must still solve (pulled by gmin).
  Circuit c;
  const auto a = c.node("a"), b = c.node("b");
  c.addVSource("V1", a, circuit::kGround, Waveform::makeDc(1.0));
  c.addCapacitor("C1", a, b, 1e-12);
  const DcSolution sol = solve(c);
  EXPECT_TRUE(sol.converged);
  EXPECT_NEAR(sol.voltage(b), 0.0, 1e-6);
}

}  // namespace
}  // namespace lo::sim
