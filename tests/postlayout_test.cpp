// The post-layout verification tier end to end: the engine's
// kPostLayoutVerify stage on both topologies, the report's verdict logic,
// its serialization round trip, determinism, and the acFrom() simulator
// primitive the PSRR measurement rides on.
#include "verify/verify.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>

#include "core/engine.hpp"
#include "core/ota_topology.hpp"
#include "service/scheduler.hpp"
#include "service/serialize.hpp"
#include "sim/simulator.hpp"

namespace lo {
namespace {

const tech::Technology kTech = tech::Technology::generic060();

core::EngineOptions verifyEnabledOptions(const std::string& topology) {
  core::EngineOptions options;
  options.topology = topology;
  options.sizingCase = core::SizingCase::kCase2;  // Cheap: no parasitic loop.
  options.postLayoutVerify.enabled = true;
  options.postLayoutVerify.sweepPoints = 15;
  return options;
}

sizing::OtaSpecs specsFor(const std::string& topology) {
  sizing::OtaSpecs specs;
  if (topology == core::kTwoStageTopologyName) specs.gbw = 30e6;
  return specs;
}

void expectFullReport(const verify::VerificationReport& report) {
  ASSERT_TRUE(report.ran);
  // Every spec row is present, pre and post.
  for (const char* name :
       {"gbw_hz", "phase_margin_deg", "output_swing_low", "output_swing_high",
        "icmr_low", "icmr_high", "thd_percent", "psrr_db", "offset_mv"}) {
    ASSERT_NE(report.find(name), nullptr) << name;
  }
  EXPECT_GT(report.preLayout.gbwHz, 0.0);
  EXPECT_GT(report.postLayout.gbwHz, 0.0);
  for (const verify::ExtendedMeasures* m :
       {&report.preExtended, &report.postExtended}) {
    EXPECT_TRUE(std::isfinite(m->thdPercent));
    EXPECT_GE(m->thdPercent, 0.0);
    EXPECT_GT(m->psrrDb, 0.0);
    EXPECT_GT(m->outputSwingHigh, m->outputSwingLow);
    EXPECT_GT(m->icmrHigh, m->icmrLow);
    EXPECT_TRUE(std::isfinite(m->offsetMv));
  }
  // The unconstrained extended rows never fail on their own.
  EXPECT_FALSE(report.find("thd_percent")->constrained);
  EXPECT_FALSE(report.find("psrr_db")->constrained);
  EXPECT_FALSE(report.find("offset_mv")->constrained);
  EXPECT_TRUE(report.find("gbw_hz")->constrained);
}

TEST(PostLayoutVerify, ReportRunsOnFoldedCascode) {
  const core::SynthesisEngine engine(
      kTech, verifyEnabledOptions(core::kFoldedCascodeOtaTopologyName));
  const core::EngineResult result =
      engine.run(specsFor(core::kFoldedCascodeOtaTopologyName));
  expectFullReport(result.verification);
}

TEST(PostLayoutVerify, ReportRunsOnTwoStage) {
  const core::SynthesisEngine engine(
      kTech, verifyEnabledOptions(core::kTwoStageTopologyName));
  const core::EngineResult result = engine.run(specsFor(core::kTwoStageTopologyName));
  expectFullReport(result.verification);
  // Post-layout GBW moves below the schematic figure: annotation only adds
  // parasitics, never removes them.
  const verify::SpecDelta* gbw = result.verification.find("gbw_hz");
  EXPECT_LT(gbw->postLayout, gbw->preLayout);
}

TEST(PostLayoutVerify, DisabledByDefaultAndAbsentFromJson) {
  core::EngineOptions options;
  options.sizingCase = core::SizingCase::kCase2;
  const core::SynthesisEngine engine(kTech, options);
  const core::EngineResult result = engine.run(sizing::OtaSpecs{});
  EXPECT_FALSE(result.verification.ran);
  // Results from verification-free runs serialise exactly as before the
  // tier existed: no "verification" member at all.
  const std::string dump = service::toJson(result).dump();
  EXPECT_EQ(dump.find("\"verification\""), std::string::npos);
}

TEST(PostLayoutVerify, DeterministicAcrossRuns) {
  const core::EngineOptions options =
      verifyEnabledOptions(core::kFoldedCascodeOtaTopologyName);
  const sizing::OtaSpecs specs = specsFor(core::kFoldedCascodeOtaTopologyName);
  const core::SynthesisEngine engine(kTech, options);
  const std::string a = service::toJson(engine.run(specs)).dump();
  const std::string b = service::toJson(engine.run(specs)).dump();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"verification\""), std::string::npos);
}

TEST(PostLayoutVerify, ToleranceFlipsVerdict) {
  const auto model = device::MosModel::create("ekv");
  core::FoldedCascodeOtaTopology topology(kTech, *model);
  core::EngineOptions options =
      verifyEnabledOptions(core::kFoldedCascodeOtaTopologyName);
  const core::SynthesisEngine engine(kTech, options);
  const sizing::OtaSpecs specs = specsFor(core::kFoldedCascodeOtaTopologyName);
  (void)engine.run(topology, specs);
  const verify::VerificationSetup setup = topology.verificationSetup();
  ASSERT_TRUE(setup.supported);

  // A sub-microvolt offset budget no real OTA meets: the offset row is now
  // constrained and fails, dragging the overall verdict down.
  sizing::OtaSpecs strict = specs;
  strict.offsetMaxMv = 1e-4;
  const verify::VerificationReport failing = verify::runVerification(
      kTech, *model, setup, strict, options.verifyOptions, options.postLayoutVerify);
  ASSERT_TRUE(failing.ran);
  const verify::SpecDelta* strictRow = failing.find("offset_mv");
  EXPECT_TRUE(strictRow->constrained);
  EXPECT_FALSE(strictRow->pass);
  EXPECT_FALSE(failing.pass);

  // A 100 mV budget passes; the row stays constrained.
  sizing::OtaSpecs loose = specs;
  loose.offsetMaxMv = 100.0;
  const verify::VerificationReport passing = verify::runVerification(
      kTech, *model, setup, loose, options.verifyOptions, options.postLayoutVerify);
  const verify::SpecDelta* looseRow = passing.find("offset_mv");
  EXPECT_TRUE(looseRow->constrained);
  EXPECT_TRUE(looseRow->pass);
}

TEST(PostLayoutVerify, RejectsUnusableSetupAndOptions) {
  const auto model = device::MosModel::create("ekv");
  const sizing::OtaSpecs specs;
  const sizing::VerifyOptions simOptions;
  verify::VerificationOptions options;
  options.enabled = true;

  verify::VerificationSetup unsupported;  // supported = false.
  EXPECT_THROW(verify::runVerification(kTech, *model, unsupported, specs,
                                       simOptions, options),
               std::invalid_argument);

  core::FoldedCascodeOtaTopology topology(kTech, *model);
  core::EngineOptions engineOptions =
      verifyEnabledOptions(core::kFoldedCascodeOtaTopologyName);
  const core::SynthesisEngine engine(kTech, engineOptions);
  (void)engine.run(topology, specs);
  const verify::VerificationSetup setup = topology.verificationSetup();

  verify::VerificationOptions badFft = options;
  badFft.thdSamplesPerCycle = 60;  // 4 * 60 = 240, not a power of two.
  EXPECT_THROW(
      verify::runVerification(kTech, *model, setup, specs, simOptions, badFft),
      std::invalid_argument);

  verify::VerificationOptions badSweep = options;
  badSweep.sweepPoints = 2;
  EXPECT_THROW(
      verify::runVerification(kTech, *model, setup, specs, simOptions, badSweep),
      std::invalid_argument);
}

TEST(PostLayoutVerify, ReportJsonRoundTripIsExact) {
  verify::VerificationReport report;
  report.ran = true;
  report.pass = false;
  report.preLayout.gbwHz = 6.453234190871e7;
  report.postLayout.gbwHz = 6.221198700031e7;
  report.preExtended.thdPercent = 0.0123456789;
  report.preExtended.psrrDb = 61.7;
  report.preExtended.outputSwingLow = 0.6048;
  report.preExtended.outputSwingHigh = 2.6903;
  report.preExtended.icmrLow = 0.2785;
  report.preExtended.icmrHigh = 2.3357;
  report.preExtended.offsetMv = -1.5525;
  report.postExtended = report.preExtended;
  report.postExtended.thdPercent = 0.0123;
  verify::SpecDelta d;
  d.name = "gbw_hz";
  d.preLayout = report.preLayout.gbwHz;
  d.postLayout = report.postLayout.gbwHz;
  d.limit = 6.38e7;
  d.constrained = true;
  d.pass = false;
  report.deltas.push_back(d);

  const service::Json j = service::toJson(report);
  const std::string dump = j.dump();
  const verify::VerificationReport back =
      service::verificationFromJson(service::Json::parse(dump));
  EXPECT_EQ(back.ran, report.ran);
  EXPECT_EQ(back.pass, report.pass);
  EXPECT_EQ(back.preLayout.gbwHz, report.preLayout.gbwHz);
  EXPECT_EQ(back.preExtended.thdPercent, report.preExtended.thdPercent);
  ASSERT_EQ(back.deltas.size(), 1u);
  EXPECT_EQ(back.deltas[0].name, "gbw_hz");
  EXPECT_EQ(back.deltas[0].limit, d.limit);
  EXPECT_TRUE(back.deltas[0].constrained);
  EXPECT_FALSE(back.deltas[0].pass);
  // Bit-exact round trip: re-serialising reproduces the bytes.
  EXPECT_EQ(service::toJson(back).dump(), dump);
}

TEST(PostLayoutVerify, SchedulerResultsInvariantAcrossWorkerCounts) {
  service::JobRequest job;
  job.label = "plv";
  job.options = verifyEnabledOptions(core::kFoldedCascodeOtaTopologyName);
  job.specs = specsFor(core::kFoldedCascodeOtaTopologyName);

  std::string dumps[2];
  const int threads[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    service::SchedulerOptions options;
    options.threads = threads[i];
    service::JobScheduler scheduler(kTech, options);
    const std::uint64_t id = scheduler.submit(job);
    const service::JobStatus status = scheduler.wait(id);
    ASSERT_EQ(status.state, service::JobState::kDone) << status.error;
    ASSERT_TRUE(status.result.verification.ran);
    dumps[i] = service::toJson(status.result).dump();
  }
  EXPECT_EQ(dumps[0], dumps[1]);
}

TEST(SimAcFrom, MatchesExplicitSupplyExcitationBitwise) {
  // acFrom(op, "VDD") must produce exactly the solve that ac() produces
  // when VDD is the only source with a non-zero AC magnitude -- same
  // matrix, same RHS, bit-identical solution.
  using circuit::Waveform;
  circuit::Circuit manual;
  {
    const auto in = manual.node("in"), out = manual.node("out"),
               vdd = manual.node("vdd");
    manual.addVSource("VIN", in, circuit::kGround, Waveform::makeDc(1.0), 0.0);
    manual.addVSource("VDD", vdd, circuit::kGround, Waveform::makeDc(3.0), 1.0);
    manual.addResistor("R1", vdd, out, 10e3);
    manual.addResistor("R2", out, in, 5e3);
    manual.addCapacitor("C1", out, circuit::kGround, 2e-12);
  }
  circuit::Circuit probed;
  {
    const auto in = probed.node("in"), out = probed.node("out"),
               vdd = probed.node("vdd");
    probed.addVSource("VIN", in, circuit::kGround, Waveform::makeDc(1.0), 0.0);
    probed.addVSource("VDD", vdd, circuit::kGround, Waveform::makeDc(3.0), 0.0);
    probed.addResistor("R1", vdd, out, 10e3);
    probed.addResistor("R2", out, in, 5e3);
    probed.addCapacitor("C1", out, circuit::kGround, 2e-12);
  }
  const auto model = device::MosModel::create("level1");
  sim::Simulator simManual(manual, kTech, *model);
  sim::Simulator simProbed(probed, kTech, *model);
  const auto acManual =
      simManual.ac(simManual.dcOperatingPoint(), 10.0, 1e9, 10);
  const auto acProbed =
      simProbed.acFrom(simProbed.dcOperatingPoint(), "VDD", 10.0, 1e9, 10);
  ASSERT_EQ(acManual.size(), acProbed.size());
  for (std::size_t i = 0; i < acManual.size(); ++i) {
    ASSERT_EQ(acManual[i].nodeV.size(), acProbed[i].nodeV.size());
    for (std::size_t n = 0; n < acManual[i].nodeV.size(); ++n) {
      EXPECT_EQ(acManual[i].nodeV[n], acProbed[i].nodeV[n])
          << "freq " << acManual[i].freq << " node " << n;
    }
  }
}

TEST(SimAcFrom, UnknownSourceThrows) {
  circuit::Circuit c;
  const auto in = c.node("in");
  c.addVSource("VIN", in, circuit::kGround, circuit::Waveform::makeDc(1.0), 1.0);
  c.addResistor("R1", in, circuit::kGround, 1e3);
  const auto model = device::MosModel::create("level1");
  sim::Simulator sim(c, kTech, *model);
  const sim::DcSolution op = sim.dcOperatingPoint();
  EXPECT_THROW((void)sim.acFrom(op, "VNOPE", 10.0, 1e6, 5),
               sim::SimulationError);
}

}  // namespace
}  // namespace lo
