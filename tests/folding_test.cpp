#include "device/folding.hpp"

#include <gtest/gtest.h>

#include "tech/technology.hpp"
#include "tech/units.hpp"

namespace lo::device {
namespace {

const tech::DesignRules kRules = tech::Technology::generic060().rules;

// --- The paper's Fig. 2 formulas. ---

TEST(CapReductionFactor, UnfoldedIsUnity) {
  EXPECT_DOUBLE_EQ(capReductionFactor(1, DiffusionPosition::kInternal), 1.0);
  EXPECT_DOUBLE_EQ(capReductionFactor(1, DiffusionPosition::kExternal), 1.0);
}

TEST(CapReductionFactor, EvenInternalIsHalf) {
  for (int nf = 2; nf <= 20; nf += 2) {
    EXPECT_DOUBLE_EQ(capReductionFactor(nf, DiffusionPosition::kInternal), 0.5) << nf;
  }
}

TEST(CapReductionFactor, EvenExternalFormula) {
  EXPECT_DOUBLE_EQ(capReductionFactor(2, DiffusionPosition::kExternal), 1.0);
  EXPECT_DOUBLE_EQ(capReductionFactor(4, DiffusionPosition::kExternal), 0.75);
  EXPECT_DOUBLE_EQ(capReductionFactor(6, DiffusionPosition::kExternal), 8.0 / 12.0);
}

TEST(CapReductionFactor, OddFormulaIgnoresPosition) {
  EXPECT_DOUBLE_EQ(capReductionFactor(3, DiffusionPosition::kInternal), 4.0 / 6.0);
  EXPECT_DOUBLE_EQ(capReductionFactor(3, DiffusionPosition::kExternal), 4.0 / 6.0);
  EXPECT_DOUBLE_EQ(capReductionFactor(5, DiffusionPosition::kExternal), 0.6);
}

TEST(CapReductionFactor, RejectsNonPositiveNf) {
  EXPECT_THROW((void)capReductionFactor(0, DiffusionPosition::kInternal),
               std::invalid_argument);
}

class FoldFactorSweep : public ::testing::TestWithParam<int> {};

TEST_P(FoldFactorSweep, AllCasesConvergeTowardHalfAndStayOrdered) {
  const int nf = GetParam();
  const double internal = capReductionFactor(nf - nf % 2, DiffusionPosition::kInternal);
  const double external = capReductionFactor(nf - nf % 2, DiffusionPosition::kExternal);
  const int odd = nf | 1;
  const double oddF = capReductionFactor(odd, DiffusionPosition::kExternal);
  // Case (a) is the floor; (b) and (c) approach it from above (Fig. 2).
  EXPECT_GE(external, internal);
  EXPECT_GE(oddF, 0.5);
  EXPECT_LE(external, 1.0);
  EXPECT_LE(oddF, 1.0);
  if (nf >= 16) {
    EXPECT_NEAR(external, 0.5, 0.08);
    EXPECT_NEAR(oddF, 0.5, 0.08);
  }
}

INSTANTIATE_TEST_SUITE_P(NfRange, FoldFactorSweep, ::testing::Range(2, 21));

// --- Exact strip geometry. ---

TEST(DiffusionGeometry, UnfoldedGeometryMatchesHandCalc) {
  MosGeometry geo;
  geo.w = 10e-6;
  geo.l = 1e-6;
  applyUnfoldedGeometry(kRules, geo);
  const double eExt = nmToMeters(kRules.contactedDiffusionExtent());
  EXPECT_DOUBLE_EQ(geo.ad, eExt * 10e-6);
  EXPECT_DOUBLE_EQ(geo.as, geo.ad);
  EXPECT_DOUBLE_EQ(geo.pd, 2 * eExt + 10e-6);
  EXPECT_DOUBLE_EQ(geo.ps, geo.pd);
}

TEST(DiffusionGeometry, DrainInternalEvenFoldHalvesDrainArea) {
  const double w = 20e-6;
  const FoldPlan plan = planFoldsExact(kRules, w, 4, FoldStyle::kDrainInternal);
  MosGeometry geo;
  geo.l = 1e-6;
  applyDiffusionGeometry(kRules, plan, geo);
  const double eInt = nmToMeters(kRules.sharedContactedDiffusionExtent());
  // Drain: nf/2 = 2 internal strips of width w/4 each.
  EXPECT_NEAR(geo.ad, 2 * eInt * w / 4, 1e-18);
  // Source owns both external strips: its area must exceed the drain's.
  EXPECT_GT(geo.as, geo.ad);
}

TEST(DiffusionGeometry, StripAccountingConservesTotalStrips) {
  // For any nf, drain strips + source strips == nf + 1.
  for (int nf = 1; nf <= 9; ++nf) {
    for (FoldStyle style : {FoldStyle::kDrainInternal, FoldStyle::kDrainExternal}) {
      const FoldPlan plan = planFoldsExact(kRules, 18e-6, nf, style);
      MosGeometry geo;
      geo.l = 1e-6;
      applyDiffusionGeometry(kRules, plan, geo);
      const double eInt = nmToMeters(kRules.sharedContactedDiffusionExtent());
      const double eExt = nmToMeters(kRules.contactedDiffusionExtent());
      // Reconstruct strip counts from areas.
      const double wf = plan.foldWidth;
      const double totalArea = geo.ad + geo.as;
      const double expected =
          nf == 1 ? 2 * eExt * wf : (2 * eExt + (nf - 1) * eInt) * wf;
      EXPECT_NEAR(totalArea, expected, 1e-18) << "nf=" << nf;
    }
  }
}

TEST(DiffusionGeometry, FoldedDrainCapMatchesPaperFactorApproximately) {
  // The F factor abstracts strip counting; verify the exact geometry tracks
  // it: the drain area of an even/internal fold is F * (area of the same
  // terminal unfolded) when measured in strip width terms.
  const double w = 24e-6;
  MosGeometry unfolded;
  unfolded.w = w;
  unfolded.l = 1e-6;
  applyUnfoldedGeometry(kRules, unfolded);

  const FoldPlan plan = planFoldsExact(kRules, w, 6, FoldStyle::kDrainInternal);
  MosGeometry folded;
  folded.l = 1e-6;
  applyDiffusionGeometry(kRules, plan, folded);

  // Effective widths: unfolded drain strip width w; folded internal drain
  // strips total 3 * w/6 = w/2 -> F = 0.5.
  const double weffUnfolded = unfolded.ad / nmToMeters(kRules.contactedDiffusionExtent());
  const double weffFolded = folded.ad / nmToMeters(kRules.sharedContactedDiffusionExtent());
  EXPECT_NEAR(weffFolded / weffUnfolded,
              capReductionFactor(6, DiffusionPosition::kInternal), 1e-9);
}

// --- Fold planning. ---

TEST(PlanFolds, RespectsMaxFoldWidth) {
  const FoldPlan plan = planFolds(kRules, 50e-6, 10e-6, FoldStyle::kAlternating);
  EXPECT_GE(plan.nf, 5);
  EXPECT_LE(plan.foldWidth, 10e-6 + 1e-9);
}

TEST(PlanFolds, DrainInternalForcesEvenNf) {
  for (double w : {8e-6, 15e-6, 33e-6, 47e-6}) {
    const FoldPlan plan = planFolds(kRules, w, 10e-6, FoldStyle::kDrainInternal);
    EXPECT_EQ(plan.nf % 2, 0) << w;
    EXPECT_TRUE(plan.drainInternal);
  }
}

TEST(PlanFolds, FingerNeverBelowMinActiveWidth) {
  const FoldPlan plan = planFolds(kRules, 2e-6, 0.5e-6, FoldStyle::kAlternating);
  EXPECT_GE(plan.foldWidth, nmToMeters(kRules.activeMinWidth) - 1e-12);
}

TEST(PlanFolds, GridSnappingIntroducesSmallWidthError) {
  // 10 um in 3 fingers: 3.333 um per finger snaps to the 50 nm grid.
  const FoldPlan plan = planFoldsExact(kRules, 10e-6, 3, FoldStyle::kAlternating);
  const double snapped = plan.foldWidth * 1e9;
  EXPECT_EQ(static_cast<long long>(snapped + 0.5) % kRules.grid, 0);
  // The quantisation error stays below one grid per finger.
  EXPECT_NEAR(plan.totalWidth, 10e-6, 3 * nmToMeters(kRules.grid));
  EXPECT_NE(plan.totalWidth, 10e-6);  // The paper's offset-after-folding effect.
}

TEST(PlanFolds, RejectsBadArguments) {
  EXPECT_THROW((void)planFolds(kRules, -1e-6, 5e-6, FoldStyle::kAlternating),
               std::invalid_argument);
  EXPECT_THROW((void)planFoldsExact(kRules, 10e-6, 0, FoldStyle::kAlternating),
               std::invalid_argument);
}

}  // namespace
}  // namespace lo::device
