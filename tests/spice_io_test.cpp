#include "circuit/spice_io.hpp"

#include <gtest/gtest.h>

namespace lo::circuit {
namespace {

TEST(SpiceNumber, ParsesSuffixes) {
  EXPECT_DOUBLE_EQ(parseSpiceNumber("2.5u"), 2.5e-6);
  EXPECT_DOUBLE_EQ(parseSpiceNumber("3meg"), 3e6);
  EXPECT_DOUBLE_EQ(parseSpiceNumber("10k"), 1e4);
  EXPECT_DOUBLE_EQ(parseSpiceNumber("4.7n"), 4.7e-9);
  EXPECT_DOUBLE_EQ(parseSpiceNumber("100f"), 1e-13);
  EXPECT_DOUBLE_EQ(parseSpiceNumber("-3m"), -3e-3);
  EXPECT_DOUBLE_EQ(parseSpiceNumber("1.5"), 1.5);
  EXPECT_DOUBLE_EQ(parseSpiceNumber("2G"), 2e9);
}

TEST(SpiceNumber, RejectsGarbage) {
  EXPECT_THROW((void)parseSpiceNumber("abc"), NetlistParseError);
  EXPECT_THROW((void)parseSpiceNumber("1.5x"), NetlistParseError);
}

TEST(SpiceNumber, SuffixesAreCaseInsensitiveAndMegIsNotMilli) {
  // "meg" in any case is mega; a single "m" in any case is milli -- the
  // classic SPICE trap.
  EXPECT_DOUBLE_EQ(parseSpiceNumber("3MEG"), 3e6);
  EXPECT_DOUBLE_EQ(parseSpiceNumber("3Meg"), 3e6);
  EXPECT_DOUBLE_EQ(parseSpiceNumber("3mEg"), 3e6);
  EXPECT_DOUBLE_EQ(parseSpiceNumber("3m"), 3e-3);
  EXPECT_DOUBLE_EQ(parseSpiceNumber("3M"), 3e-3);
  EXPECT_DOUBLE_EQ(parseSpiceNumber("10K"), 1e4);
  EXPECT_DOUBLE_EQ(parseSpiceNumber("100F"), 1e-13);
  EXPECT_DOUBLE_EQ(parseSpiceNumber("2g"), 2e9);
  EXPECT_DOUBLE_EQ(parseSpiceNumber("1T"), 1e12);
}

TEST(SpiceNumber, NegativeExponentsComposeWithSuffixes) {
  EXPECT_DOUBLE_EQ(parseSpiceNumber("1e-3k"), 1.0);
  EXPECT_DOUBLE_EQ(parseSpiceNumber("2.5e-6meg"), 2.5);
  EXPECT_DOUBLE_EQ(parseSpiceNumber("-1.5e-2m"), -1.5e-5);
  EXPECT_DOUBLE_EQ(parseSpiceNumber("4E-9"), 4e-9);
  EXPECT_DOUBLE_EQ(parseSpiceNumber("1e3u"), 1e-3);
}

TEST(SpiceNumber, MalformedSuffixesThrowInsteadOfParsingThePrefix) {
  // A recognised suffix followed by trailing junk must not silently parse
  // as the shorter suffix ("10megx" is not 10 milli, "1m5" is not 1 milli).
  EXPECT_THROW((void)parseSpiceNumber("10megx"), NetlistParseError);
  EXPECT_THROW((void)parseSpiceNumber("1m5"), NetlistParseError);
  EXPECT_THROW((void)parseSpiceNumber("5kk"), NetlistParseError);
  EXPECT_THROW((void)parseSpiceNumber("3me"), NetlistParseError);
  EXPECT_THROW((void)parseSpiceNumber("3megmeg"), NetlistParseError);
  EXPECT_THROW((void)parseSpiceNumber("2uF"), NetlistParseError);
  EXPECT_THROW((void)parseSpiceNumber(""), NetlistParseError);
  EXPECT_THROW((void)parseSpiceNumber("meg"), NetlistParseError);
  EXPECT_THROW((void)parseSpiceNumber("1.5 k"), NetlistParseError);
}

TEST(SpiceNumber, FormatRoundTrips) {
  for (double v : {2.5e-6, 3e6, 1e4, 4.7e-9, -3e-3, 1.5, 0.0}) {
    EXPECT_DOUBLE_EQ(parseSpiceNumber(formatSpiceNumber(v)), v) << v;
  }
  EXPECT_EQ(formatSpiceNumber(0.0), "0");
}

TEST(NetlistParse, BasicRlcAndSources) {
  const Circuit c = parseNetlist(
      "* divider\n"
      "V1 in 0 DC 3.3 AC 1 0\n"
      "R1 in out 10k\n"
      "R2 out 0 10k\n"
      "C1 out 0 1p\n"
      ".end\n");
  EXPECT_EQ(c.title, "divider");
  EXPECT_EQ(c.resistors.size(), 2u);
  EXPECT_EQ(c.capacitors.size(), 1u);
  ASSERT_EQ(c.vsources.size(), 1u);
  EXPECT_DOUBLE_EQ(c.vsources[0].wave.dc, 3.3);
  EXPECT_DOUBLE_EQ(c.vsources[0].acMag, 1.0);
}

TEST(NetlistParse, MosWithGeometry) {
  const Circuit c = parseNetlist(
      "* mos\n"
      "M1 d g s 0 nmos W=20u L=1u NF=4 AD=12p AS=14p PD=8u PS=9u M=2\n");
  ASSERT_EQ(c.mosfets.size(), 1u);
  const Mos& m = c.mosfets[0];
  EXPECT_EQ(m.type, tech::MosType::kNmos);
  EXPECT_DOUBLE_EQ(m.geo.w, 20e-6);
  EXPECT_DOUBLE_EQ(m.geo.l, 1e-6);
  EXPECT_EQ(m.geo.nf, 4);
  EXPECT_DOUBLE_EQ(m.geo.ad, 12e-12);
  EXPECT_DOUBLE_EQ(m.geo.ps, 9e-6);
  EXPECT_DOUBLE_EQ(m.mult, 2.0);
}

TEST(NetlistParse, PulseAndSinSources) {
  const Circuit c = parseNetlist(
      "* srcs\n"
      "V1 a 0 PULSE(0 1 10n 1n 1n 50n 200n)\n"
      "V2 b 0 SIN(1.65 0.1 1meg)\n"
      "I1 a b DC 10u AC 1\n");
  ASSERT_EQ(c.vsources.size(), 2u);
  EXPECT_EQ(c.vsources[0].wave.kind, Waveform::Kind::kPulse);
  EXPECT_DOUBLE_EQ(c.vsources[0].wave.width, 50e-9);
  EXPECT_EQ(c.vsources[1].wave.kind, Waveform::Kind::kSin);
  EXPECT_DOUBLE_EQ(c.vsources[1].wave.freq, 1e6);
  ASSERT_EQ(c.isources.size(), 1u);
  EXPECT_DOUBLE_EQ(c.isources[0].wave.dc, 10e-6);
  EXPECT_DOUBLE_EQ(c.isources[0].acMag, 1.0);
}

TEST(NetlistParse, Vcvs) {
  const Circuit c = parseNetlist("* e\nE1 out 0 inp inn 1000\n");
  ASSERT_EQ(c.vcvs.size(), 1u);
  EXPECT_DOUBLE_EQ(c.vcvs[0].gain, 1000.0);
}

TEST(NetlistParse, ErrorsCarryLineContext) {
  try {
    (void)parseNetlist("* t\nR1 a b\n");
    FAIL() << "expected NetlistParseError";
  } catch (const NetlistParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(NetlistParse, RejectsUnknownElementsAndModels) {
  EXPECT_THROW((void)parseNetlist("* t\nQ1 a b c model\n"), NetlistParseError);
  EXPECT_THROW((void)parseNetlist("* t\nM1 d g s 0 bjt W=1u L=1u\n"), NetlistParseError);
  EXPECT_THROW((void)parseNetlist("* t\nM1 d g s 0 nmos BOGUS=3\n"), NetlistParseError);
}

TEST(NetlistRoundTrip, WriteThenParsePreservesCircuit) {
  Circuit c;
  c.title = "roundtrip";
  const NodeId in = c.node("in"), out = c.node("out");
  device::MosGeometry geo;
  geo.w = 33e-6;
  geo.l = 0.8e-6;
  geo.nf = 4;
  geo.ad = 10e-12;
  geo.as = 11e-12;
  geo.pd = 5e-6;
  geo.ps = 6e-6;
  c.addMos("M1", out, in, kGround, kGround, tech::MosType::kNmos, geo);
  c.addResistor("R1", in, out, 4.7e3);
  c.addCapacitor("C1", out, kGround, 2.2e-12);
  c.addVSource("V1", in, kGround, Waveform::makePulse(0, 3.3, 0, 1e-9, 1e-9, 1e-6, 2e-6),
               0.5, 45.0);
  c.addISource("I1", in, out, Waveform::makeDc(1e-6));
  c.addVcvs("E1", out, kGround, in, kGround, 12.0);

  const Circuit u = parseNetlist(writeNetlist(c));
  EXPECT_EQ(u.title, "roundtrip");
  ASSERT_EQ(u.mosfets.size(), 1u);
  EXPECT_DOUBLE_EQ(u.mosfets[0].geo.w, 33e-6);
  EXPECT_EQ(u.mosfets[0].geo.nf, 4);
  ASSERT_EQ(u.vsources.size(), 1u);
  EXPECT_EQ(u.vsources[0].wave.kind, Waveform::Kind::kPulse);
  EXPECT_DOUBLE_EQ(u.vsources[0].acMag, 0.5);
  EXPECT_DOUBLE_EQ(u.vsources[0].acPhase, 45.0);
  ASSERT_EQ(u.vcvs.size(), 1u);
  EXPECT_DOUBLE_EQ(u.vcvs[0].gain, 12.0);
  // Node wiring preserved.
  EXPECT_EQ(u.mosfets[0].gate, *u.findNode("in"));
  EXPECT_EQ(u.mosfets[0].drain, *u.findNode("out"));
}

}  // namespace
}  // namespace lo::circuit
