#include "sim/fft.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <stdexcept>
#include <vector>

namespace lo::sim {
namespace {

std::vector<double> sineSamples(std::size_t n, double cyclesInWindow,
                                double amplitude, double phase = 0.0,
                                double dc = 0.0) {
  std::vector<double> samples(n);
  for (std::size_t k = 0; k < n; ++k) {
    samples[k] = dc + amplitude * std::sin(2.0 * M_PI * cyclesInWindow *
                                               static_cast<double>(k) /
                                               static_cast<double>(n) +
                                           phase);
  }
  return samples;
}

/// Direct O(n^2) DFT, the oracle the FFT is checked against.
std::vector<std::complex<double>> directDft(
    const std::vector<std::complex<double>>& x) {
  const std::size_t n = x.size();
  std::vector<std::complex<double>> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    std::complex<double> acc{0.0, 0.0};
    for (std::size_t j = 0; j < n; ++j) {
      const double angle =
          -2.0 * M_PI * static_cast<double>(k) * static_cast<double>(j) /
          static_cast<double>(n);
      acc += x[j] * std::complex<double>{std::cos(angle), std::sin(angle)};
    }
    out[k] = acc;
  }
  return out;
}

TEST(Fft, IsPowerOfTwo) {
  EXPECT_FALSE(isPowerOfTwo(0));
  EXPECT_TRUE(isPowerOfTwo(1));
  EXPECT_TRUE(isPowerOfTwo(2));
  EXPECT_FALSE(isPowerOfTwo(3));
  EXPECT_TRUE(isPowerOfTwo(256));
  EXPECT_FALSE(isPowerOfTwo(255));
}

TEST(Fft, MatchesDirectDft) {
  std::vector<std::complex<double>> x(64);
  for (std::size_t k = 0; k < x.size(); ++k) {
    // Deterministic pseudo-arbitrary data; no randomness needed.
    x[k] = {std::sin(0.37 * static_cast<double>(k)) +
                0.21 * std::cos(1.7 * static_cast<double>(k)),
            std::cos(0.91 * static_cast<double>(k))};
  }
  const std::vector<std::complex<double>> expected = directDft(x);
  std::vector<std::complex<double>> actual = x;
  fftRadix2(actual);
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t k = 0; k < actual.size(); ++k) {
    EXPECT_NEAR(actual[k].real(), expected[k].real(), 1e-9) << "bin " << k;
    EXPECT_NEAR(actual[k].imag(), expected[k].imag(), 1e-9) << "bin " << k;
  }
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<std::complex<double>> x(48, {1.0, 0.0});
  EXPECT_THROW(fftRadix2(x), std::invalid_argument);
  std::vector<std::complex<double>> empty;
  EXPECT_THROW(fftRadix2(empty), std::invalid_argument);
}

TEST(Fft, ParsevalHolds) {
  // sum |x|^2 == (1/N) sum |X|^2.
  std::vector<std::complex<double>> x(128);
  for (std::size_t k = 0; k < x.size(); ++k) {
    x[k] = {std::sin(0.13 * static_cast<double>(k)),
            0.5 * std::sin(0.71 * static_cast<double>(k))};
  }
  double timeEnergy = 0.0;
  for (const auto& v : x) timeEnergy += std::norm(v);
  std::vector<std::complex<double>> spectrum = x;
  fftRadix2(spectrum);
  double freqEnergy = 0.0;
  for (const auto& v : spectrum) freqEnergy += std::norm(v);
  freqEnergy /= static_cast<double>(x.size());
  EXPECT_NEAR(freqEnergy, timeEnergy, 1e-9 * timeEnergy);
}

TEST(Fft, AmplitudeSpectrumRecoversToneAndDc) {
  const double amp = 0.75, dc = 1.2;
  const std::vector<double> samples = sineSamples(256, 4.0, amp, 0.3, dc);
  const std::vector<double> spectrum = amplitudeSpectrum(samples);
  ASSERT_EQ(spectrum.size(), 129u);  // N/2 + 1 single-sided bins.
  EXPECT_NEAR(spectrum[0], dc, 1e-9);
  EXPECT_NEAR(spectrum[4], amp, 1e-9);
  // Exact bin alignment: every other bin is empty.
  for (std::size_t k = 1; k < spectrum.size(); ++k) {
    if (k == 4) continue;
    EXPECT_NEAR(spectrum[k], 0.0, 1e-9) << "bin " << k;
  }
}

TEST(Fft, AmplitudeSpectrumTwoTones) {
  std::vector<double> samples = sineSamples(256, 3.0, 1.0);
  const std::vector<double> second = sineSamples(256, 9.0, 0.25);
  for (std::size_t k = 0; k < samples.size(); ++k) samples[k] += second[k];
  const std::vector<double> spectrum = amplitudeSpectrum(samples);
  EXPECT_NEAR(spectrum[3], 1.0, 1e-9);
  EXPECT_NEAR(spectrum[9], 0.25, 1e-9);
  EXPECT_NEAR(spectrum[6], 0.0, 1e-9);
}

TEST(Fft, HannWindowEndpointsAndSum) {
  const std::vector<double> w = hannWindow(8);
  ASSERT_EQ(w.size(), 8u);
  EXPECT_NEAR(w[0], 0.0, 1e-12);        // Periodic variant starts at zero...
  EXPECT_NEAR(w[4], 1.0, 1e-12);        // ...peaks at n/2...
  EXPECT_GT(w[7], 0.0);                 // ...and does NOT return to zero.
  double sum = 0.0;
  for (const double v : w) sum += v;
  EXPECT_NEAR(sum, 4.0, 1e-12);  // Coherent gain of periodic Hann is n/2.
}

TEST(Fft, ThdOfPureToneIsZero) {
  const std::vector<double> samples = sineSamples(256, 4.0, 1.0);
  EXPECT_NEAR(thdPercent(samples, 4, 5), 0.0, 1e-7);
}

TEST(Fft, ThdOfKnownDistortion) {
  // Fundamental amplitude 1 at bin 4, second harmonic 0.03, third 0.04:
  // THD = sqrt(0.03^2 + 0.04^2) / 1 = 5%.
  std::vector<double> samples = sineSamples(256, 4.0, 1.0);
  const std::vector<double> h2 = sineSamples(256, 8.0, 0.03, 0.4);
  const std::vector<double> h3 = sineSamples(256, 12.0, 0.04, 1.1);
  for (std::size_t k = 0; k < samples.size(); ++k) samples[k] += h2[k] + h3[k];
  EXPECT_NEAR(thdPercent(samples, 4, 5), 5.0, 1e-6);
  // Restricting the harmonic count excludes the third harmonic.
  EXPECT_NEAR(thdPercent(samples, 4, 2), 3.0, 1e-6);
}

TEST(Fft, ThdIgnoresHarmonicsBeyondNyquist) {
  // Fundamental at bin 100 of a 256-sample window: the second harmonic
  // (bin 200) is beyond Nyquist (128) and must not contribute.
  const std::vector<double> samples = sineSamples(256, 100.0, 1.0);
  EXPECT_NEAR(thdPercent(samples, 100, 5), 0.0, 1e-7);
}

TEST(Fft, ThdEmptyFundamentalReturnsZero) {
  const std::vector<double> samples(256, 0.0);  // No tone at all.
  EXPECT_DOUBLE_EQ(thdPercent(samples, 4, 5), 0.0);
}

TEST(Fft, ThdRejectsOutOfRangeFundamental) {
  const std::vector<double> samples = sineSamples(256, 4.0, 1.0);
  EXPECT_THROW(thdPercent(samples, 0, 5), std::invalid_argument);
  EXPECT_THROW(thdPercent(samples, 129, 5), std::invalid_argument);
}

}  // namespace
}  // namespace lo::sim
