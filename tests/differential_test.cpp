// The differential oracle over a seeded corpus: every route through the
// stack -- engine-direct, scheduler, cache-warm (through the on-disk JSON
// store), explore-cell -- must produce byte-identical canonical results,
// and a fault-injected run must leave every job in a definite terminal
// state, reproducibly from the seed.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "testkit/differential.hpp"
#include "testkit/faults.hpp"

namespace lo::testkit {
namespace {

const tech::Technology kTech = tech::Technology::generic060();

class DifferentialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("lo_differential_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(DifferentialTest, FiftyPointCorpusAgreesByteForByteAcrossAllPaths) {
  service::SchedulerOptions options;
  options.threads = 1;  // Exact reproducibility: one deterministic schedule.
  options.cache.diskDir = dir_.string();
  service::JobScheduler scheduler(kTech, options);

  DifferentialDriver driver = standardDriver(scheduler);
  ASSERT_EQ(driver.pathNames(),
            (std::vector<std::string>{"engine_direct", "engine_reference_solver",
                                      "scheduler", "cache_warm", "explore_cell"}));

  const std::vector<CorpusPoint> corpus = generateCorpus(1);
  ASSERT_GE(corpus.size(), 50u);

  const DiffReport report = driver.run(corpus);
  EXPECT_EQ(report.points, static_cast<int>(corpus.size()));
  for (const PointReport& divergence : report.divergences) {
    ADD_FAILURE() << divergence.detail;
  }
  EXPECT_TRUE(report.allAgree());
}

TEST(DifferentialDriverApi, RejectsDuplicateAndNullPaths) {
  DifferentialDriver driver;
  driver.registerPath("p", [](const CorpusPoint&) { return PathOutcome{}; });
  EXPECT_THROW(
      driver.registerPath("p", [](const CorpusPoint&) { return PathOutcome{}; }),
      std::invalid_argument);
  EXPECT_THROW(driver.registerPath("q", nullptr), std::invalid_argument);
  EXPECT_THROW((void)driver.run({}), std::logic_error);  // One path only.
}

/// One fault-injected pass over a small corpus; returns the terminal
/// (state, retries) sequence.  Fresh scheduler + fresh plan each call, so
/// with one worker the whole schedule is a pure function of the seed.
std::vector<std::string> faultedPass(const std::vector<CorpusPoint>& corpus,
                                     std::uint64_t seed) {
  FaultPlan plan(FaultPlanOptions::basic(seed));
  service::SchedulerOptions options;
  options.threads = 1;
  installSchedulerFaults(options, plan);
  service::JobScheduler scheduler(kTech, options);

  std::vector<std::uint64_t> ids;
  for (const CorpusPoint& point : corpus) {
    service::JobRequest request = point.toJobRequest();
    request.maxRetries = 1;
    ids.push_back(scheduler.submit(request));
  }
  std::vector<std::string> outcomes;
  for (const std::uint64_t id : ids) {
    const service::JobStatus status = scheduler.wait(id);
    EXPECT_TRUE(service::isTerminal(status.state));
    outcomes.push_back(std::string(service::jobStateName(status.state)) + "/" +
                       std::to_string(status.retries));
  }
  return outcomes;
}

TEST(DifferentialFaulted, EveryJobTerminatesAndTheRunReplaysFromTheSeed) {
  CorpusOptions corpusOptions;
  corpusOptions.size = 20;
  corpusOptions.cases = {core::SizingCase::kCase1, core::SizingCase::kCase2};
  const std::vector<CorpusPoint> corpus = generateCorpus(11, corpusOptions);

  const std::vector<std::string> first = faultedPass(corpus, 11);
  const std::vector<std::string> second = faultedPass(corpus, 11);
  EXPECT_EQ(first, second) << "fault schedule did not replay from the seed";

  // Under the basic plan some states beyond kDone should actually occur
  // (injected transients against maxRetries=1 fail some jobs); if not, the
  // plan never engaged and this test is vacuous.
  bool sawNonDone = false;
  for (const std::string& outcome : first) {
    sawNonDone |= outcome.rfind("done/0", 0) != 0;
  }
  EXPECT_TRUE(sawNonDone) << "no fault visibly engaged over 20 points";
}

}  // namespace
}  // namespace lo::testkit
