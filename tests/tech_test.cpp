#include "tech/technology.hpp"

#include <gtest/gtest.h>

#include "tech/units.hpp"

namespace lo::tech {
namespace {

TEST(DesignRules, SnapUpRoundsToGridMultiples) {
  DesignRules r;
  r.grid = 50;
  EXPECT_EQ(r.snapUp(100), 100);
  EXPECT_EQ(r.snapUp(101), 150);
  EXPECT_EQ(r.snapUp(149), 150);
  EXPECT_EQ(r.snapUp(0), 0);
}

TEST(DesignRules, SnapDownAndNearest) {
  DesignRules r;
  r.grid = 50;
  EXPECT_EQ(r.snapDown(149), 100);
  EXPECT_EQ(r.snapNearest(124), 100);
  EXPECT_EQ(r.snapNearest(125), 150);
  EXPECT_EQ(r.snapNearest(150), 150);
}

TEST(DesignRules, ContactedDiffusionExtents) {
  DesignRules r;
  // Outer strip: gate spacing + cut + enclosure.
  EXPECT_EQ(r.contactedDiffusionExtent(), r.contactToGate + r.contactSize + r.activeOverContact);
  // Shared strip: gate spacing on both sides around the cut.
  EXPECT_EQ(r.sharedContactedDiffusionExtent(), 2 * r.contactToGate + r.contactSize);
  // A shared strip must be narrower than two outer strips (that is the whole
  // point of folding).
  EXPECT_LT(r.sharedContactedDiffusionExtent(), 2 * r.contactedDiffusionExtent());
}

TEST(Layers, NamesRoundTrip) {
  for (Layer l : kAllLayers) {
    const auto parsed = layerFromName(layerName(l));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, l);
  }
  EXPECT_FALSE(layerFromName("bogus").has_value());
}

TEST(Technology, Generic060HasConsistentCards) {
  const Technology t = Technology::generic060();
  EXPECT_EQ(t.nmos.type, MosType::kNmos);
  EXPECT_EQ(t.pmos.type, MosType::kPmos);
  // NMOS mobility advantage.
  EXPECT_GT(t.nmos.kp, t.pmos.kp);
  EXPECT_GT(t.nmos.cox(), 1e-3);  // ~2.5 mF/m^2 for 14 nm oxide.
  EXPECT_LT(t.nmos.cox(), 5e-3);
}

TEST(Technology, WireWidthForCurrentHonoursElectromigration) {
  const Technology t = Technology::generic060();
  // Tiny current: minimum width.
  EXPECT_EQ(t.wireWidthForCurrent(Layer::kMetal1, 1e-6), t.rules.metal1MinWidth);
  // 5 mA at 1 mA/um needs a 5 um wire.
  const Nm w = t.wireWidthForCurrent(Layer::kMetal1, 5e-3);
  EXPECT_GE(w, 5000);
  EXPECT_LE(w, 5000 + t.rules.grid);
  // Wider for poly, whose EM limit is lower.
  EXPECT_GT(t.wireWidthForCurrent(Layer::kPoly, 5e-3), w);
}

TEST(Technology, WireWidthRejectsNonRoutingLayer) {
  const Technology t = Technology::generic060();
  EXPECT_THROW((void)t.minWireWidth(Layer::kActive), std::invalid_argument);
}

TEST(Technology, ContactsForCurrentScales) {
  const Technology t = Technology::generic060();
  EXPECT_EQ(t.contactsForCurrent(0.0), 1);
  EXPECT_EQ(t.contactsForCurrent(t.contactMaxAmp * 0.5), 1);
  EXPECT_EQ(t.contactsForCurrent(t.contactMaxAmp * 3.5), 4);
}

TEST(Technology, TextRoundTripPreservesEverything) {
  Technology t = Technology::generic060();
  t.name = "roundtrip";
  t.nmos.vto = 0.66;
  t.rules.metal1MinWidth = 850;
  t.layer(Layer::kMetal2).capAreaPerM2 = 0.123e-3;

  const Technology u = Technology::parse(t.toText());
  EXPECT_EQ(u.name, "roundtrip");
  EXPECT_DOUBLE_EQ(u.nmos.vto, 0.66);
  EXPECT_EQ(u.rules.metal1MinWidth, 850);
  EXPECT_DOUBLE_EQ(u.layer(Layer::kMetal2).capAreaPerM2, 0.123e-3);
  EXPECT_EQ(u.pmos.type, MosType::kPmos);
}

TEST(Technology, ParseRejectsMalformedInput) {
  EXPECT_THROW((void)Technology::parse("[rules]\nbogus_rule = 1\n"), TechParseError);
  EXPECT_THROW((void)Technology::parse("[tech]\nname value-without-equals\n"), TechParseError);
  EXPECT_THROW((void)Technology::parse("[layer nosuch]\ncap_area = 1\n"), TechParseError);
  EXPECT_THROW((void)Technology::parse("[model nmos]\nvto = abc\n"), TechParseError);
  EXPECT_THROW((void)Technology::parse("[unknown-section]\nx = 1\n"), TechParseError);
}

TEST(Technology, ParseIgnoresCommentsAndBlankLines) {
  const Technology t =
      Technology::parse("# comment\n\n[tech]\nname = commented\n# another\n");
  EXPECT_EQ(t.name, "commented");
}

TEST(Technology, Generic100IsCoarser) {
  const Technology t06 = Technology::generic060();
  const Technology t10 = Technology::generic100();
  EXPECT_GT(t10.rules.polyMinWidth, t06.rules.polyMinWidth);
  EXPECT_LT(t10.nmos.cox(), t06.nmos.cox());
  EXPECT_LT(t10.nmos.kp, t06.nmos.kp);
}

TEST(Units, ThermalVoltageAtRoomTemperature) {
  EXPECT_NEAR(thermalVoltage(300.15), 0.02587, 1e-4);
}

TEST(Units, NmConversionRoundTrip) {
  EXPECT_DOUBLE_EQ(nmToMeters(650), 650e-9);
  EXPECT_EQ(metersToNm(650e-9), 650);
}

}  // namespace
}  // namespace lo::tech
