#include <gtest/gtest.h>

#include <cmath>

#include "device/folding.hpp"
#include "sim/measure.hpp"
#include "sim/simulator.hpp"
#include "tech/technology.hpp"

namespace lo::sim {
namespace {

using circuit::Circuit;
using circuit::Waveform;

const tech::Technology kTech = tech::Technology::generic060();

TEST(SimTran, RcStepResponseMatchesAnalytic) {
  Circuit c;
  const auto in = c.node("in"), out = c.node("out");
  const double r = 10e3, cap = 1e-9, tau = r * cap;
  c.addVSource("VIN", in, circuit::kGround,
               Waveform::makePulse(0.0, 1.0, 0.0, 1e-12, 1e-12, 1.0, 2.0));
  c.addResistor("R1", in, out, r);
  c.addCapacitor("C1", out, circuit::kGround, cap);

  const auto model = device::MosModel::create("level1");
  Simulator sim(c, kTech, *model);
  const auto tran = sim.transient(5 * tau, tau / 200);
  const auto outId = *c.findNode("out");
  for (const TranPoint& p : tran) {
    const double expected = 1.0 - std::exp(-p.time / tau);
    EXPECT_NEAR(p.nodeV[outId], expected, 0.01) << "t=" << p.time;
  }
}

TEST(SimTran, CurrentSourceIntegratesOnCapacitor) {
  // I = C dV/dt: a 1 uA step on 1 pF ramps 1 V/us.  The source is zero at
  // t = 0 so the DC starting point is trivially V = 0.
  Circuit c;
  const auto n = c.node("n");
  c.addISource("I1", circuit::kGround, n,
               Waveform::makePulse(0.0, 1e-6, 100e-9, 1e-12, 1e-12, 1.0, 2.0));
  c.addCapacitor("C1", n, circuit::kGround, 1e-12);
  c.addResistor("RB", n, circuit::kGround, 1e9);  // DC path for the op point.

  const auto model = device::MosModel::create("level1");
  Simulator sim(c, kTech, *model);
  const auto tran = sim.transient(2e-6, 2e-9);
  const auto nId = *c.findNode("n");
  EXPECT_NEAR(tran.front().nodeV[nId], 0.0, 1e-6);
  const SlewRates sr = slewRates(tran, nId, 150e-9, 2e-6);
  EXPECT_NEAR(sr.rising, 1e6, 1e4);  // 1 V/us.
  // End value: 1.9 us of integration.
  EXPECT_NEAR(tran.back().nodeV[nId], 1.9, 0.02);
}

TEST(SimTran, SinSourceReproducedAtNodes) {
  Circuit c;
  const auto in = c.node("in"), out = c.node("out");
  c.addVSource("VIN", in, circuit::kGround, Waveform::makeSin(1.0, 0.5, 1e6));
  c.addResistor("R1", in, out, 1e3);
  c.addResistor("R2", out, circuit::kGround, 1e3);

  const auto model = device::MosModel::create("level1");
  Simulator sim(c, kTech, *model);
  const auto tran = sim.transient(2e-6, 5e-9);
  const auto outId = *c.findNode("out");
  for (const TranPoint& p : tran) {
    const double expected = 0.5 * (1.0 + 0.5 * std::sin(2 * M_PI * 1e6 * p.time));
    EXPECT_NEAR(p.nodeV[outId], expected, 1e-3);
  }
}

TEST(SimTran, NmosSourceFollowerTracksStep) {
  Circuit c;
  const auto in = c.node("in"), out = c.node("out"), vdd = c.node("vdd");
  device::MosGeometry geo;
  geo.w = 50e-6;
  geo.l = 0.6e-6;
  device::applyUnfoldedGeometry(kTech.rules, geo);
  c.addVSource("VDD", vdd, circuit::kGround, Waveform::makeDc(3.3));
  c.addVSource("VIN", in, circuit::kGround,
               Waveform::makePulse(2.0, 2.5, 100e-9, 1e-9, 1e-9, 1e-6, 2e-6));
  // Bulk tied to source: no body effect, so the follower tracks closely.
  c.addMos("M1", vdd, in, out, out, tech::MosType::kNmos, geo);
  c.addISource("IB", out, circuit::kGround, Waveform::makeDc(100e-6));
  c.addCapacitor("CL", out, circuit::kGround, 1e-12);

  const auto model = device::MosModel::create("ekv");
  Simulator sim(c, kTech, *model);
  const auto tran = sim.transient(400e-9, 1e-9);
  const auto outId = *c.findNode("out");
  const double before = tran.front().nodeV[outId];
  const double after = tran.back().nodeV[outId];
  // The follower shifts by ~VGS but tracks the 0.5 V step closely.
  EXPECT_NEAR(after - before, 0.5, 0.05);
}

TEST(SimTran, RejectsBadTimeArguments) {
  Circuit c;
  c.addResistor("R1", c.node("a"), circuit::kGround, 1e3);
  const auto model = device::MosModel::create("level1");
  Simulator sim(c, kTech, *model);
  EXPECT_THROW((void)sim.transient(-1.0, 1e-9), std::invalid_argument);
  EXPECT_THROW((void)sim.transient(1e-6, 0.0), std::invalid_argument);
}

TEST(SimTran, EnergyConservationOnLinearRc) {
  // Trapezoidal integration is A-stable and nearly lossless: after charging,
  // the capacitor holds its voltage when the source is flat.
  Circuit c;
  const auto in = c.node("in"), out = c.node("out");
  c.addVSource("VIN", in, circuit::kGround,
               Waveform::makePulse(0.0, 1.0, 0.0, 1e-12, 1e-12, 1.0, 2.0));
  c.addResistor("R1", in, out, 1e3);
  c.addCapacitor("C1", out, circuit::kGround, 1e-9);
  const auto model = device::MosModel::create("level1");
  Simulator sim(c, kTech, *model);
  const auto tran = sim.transient(50e-6, 50e-9);  // 50 tau.
  const auto outId = *c.findNode("out");
  EXPECT_NEAR(tran.back().nodeV[outId], 1.0, 1e-6);
}

}  // namespace
}  // namespace lo::sim
