#include "sim/measure.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <stdexcept>

namespace lo::sim {
namespace {

/// Build a synthetic curve for H(s) = a0 / ((1 + s/p1)(1 + s/p2)).
AcCurve twoPoleCurve(double a0, double p1, double p2, double fStart = 1.0,
                     double fStop = 1e10, int pointsPerDecade = 40) {
  AcCurve c;
  const int n = static_cast<int>(std::log10(fStop / fStart) * pointsPerDecade) + 1;
  for (int i = 0; i < n; ++i) {
    const double f = fStart * std::pow(10.0, std::log10(fStop / fStart) * i / (n - 1));
    const std::complex<double> s{0.0, 2 * M_PI * f};
    c.freq.push_back(f);
    c.h.push_back(a0 / ((1.0 + s / (2 * M_PI * p1)) * (1.0 + s / (2 * M_PI * p2))));
  }
  return c;
}

TEST(Measure, ToDb) {
  EXPECT_DOUBLE_EQ(toDb(1.0), 0.0);
  EXPECT_NEAR(toDb(1000.0), 60.0, 1e-9);
  EXPECT_NEAR(toDb(1.0 / std::sqrt(2.0)), -3.0103, 1e-3);
}

TEST(Measure, SinglePoleUnityGainFrequency) {
  // One dominant pole: GBW = a0 * p1 (second pole far away).
  const double a0 = 1000.0, p1 = 1e4;
  const AcCurve c = twoPoleCurve(a0, p1, 1e12);
  EXPECT_NEAR(dcGain(c), a0, a0 * 1e-3);
  EXPECT_NEAR(unityGainFrequency(c) / (a0 * p1), 1.0, 0.01);
  // Phase margin ~90 degrees for a single pole.
  EXPECT_NEAR(phaseMarginDeg(c), 90.0, 1.5);
}

TEST(Measure, TwoPolePhaseMargin) {
  // Second pole at the single-pole unity estimate a0*p1: the real crossing
  // moves down to u = f/p2 with u^2 (1 + u^2) = 1, i.e. u = 0.786, giving
  // PM = 90 - atan(0.786) = 51.8 degrees.
  const double a0 = 1000.0, p1 = 1e4;
  const AcCurve c = twoPoleCurve(a0, p1, a0 * p1);
  EXPECT_NEAR(phaseMarginDeg(c), 51.8, 1.5);
}

TEST(Measure, UnityNeverCrossed) {
  const AcCurve c = twoPoleCurve(0.5, 1e4, 1e8);  // Max gain 0.5.
  EXPECT_DOUBLE_EQ(unityGainFrequency(c), 0.0);
  EXPECT_DOUBLE_EQ(phaseMarginDeg(c), 180.0);
}

TEST(Measure, GainAtInterpolatesOnLogGrid) {
  const AcCurve c = twoPoleCurve(100.0, 1e5, 1e12);
  EXPECT_NEAR(gainAt(c, 1e5), 100.0 / std::sqrt(2.0), 1.0);
  EXPECT_NEAR(gainAt(c, 1e7), 1.0, 0.05);  // -20 dB/dec: two decades past pole.
  // Ends clamp.
  EXPECT_NEAR(gainAt(c, 0.1), 100.0, 0.5);
}

TEST(Measure, UnwrappedPhaseIsContinuous) {
  const AcCurve c = twoPoleCurve(1000.0, 1e3, 1e5);
  const auto phase = unwrappedPhaseDeg(c);
  for (std::size_t i = 1; i < phase.size(); ++i) {
    EXPECT_LT(std::abs(phase[i] - phase[i - 1]), 45.0);
  }
  // Two poles: phase approaches -180.
  EXPECT_NEAR(phase.back(), -180.0, 2.0);
}

TEST(Measure, SlewRatesOfTriangleWave) {
  std::vector<TranPoint> tran;
  // Triangle: up 2 V/us for 1 us, down 1 V/us for 2 us.
  for (int i = 0; i <= 300; ++i) {
    TranPoint p;
    p.time = i * 1e-8;
    const double t = p.time;
    p.nodeV = {0.0, t < 1e-6 ? 2e6 * t : 2.0 - 1e6 * (t - 1e-6)};
    tran.push_back(std::move(p));
  }
  const SlewRates sr = slewRates(tran, 1);
  EXPECT_NEAR(sr.rising, 2e6, 1e3);
  EXPECT_NEAR(sr.falling, 1e6, 1e3);
  // Window restriction sees only the falling segment.
  const SlewRates srLate = slewRates(tran, 1, 1.5e-6, 3e-6);
  EXPECT_NEAR(srLate.rising, 0.0, 1e-9);
  EXPECT_NEAR(srLate.falling, 1e6, 1e3);
}

TEST(Measure, SlewRatesDegenerateTransients) {
  // Empty and single-sample transients report zero instead of reading
  // past the end.
  const std::vector<TranPoint> empty;
  EXPECT_DOUBLE_EQ(slewRates(empty, 0).rising, 0.0);
  std::vector<TranPoint> one(1);
  one[0].time = 0.0;
  one[0].nodeV = {0.0, 1.0};
  EXPECT_DOUBLE_EQ(slewRates(one, 1).rising, 0.0);
  EXPECT_DOUBLE_EQ(slewRates(one, 1).falling, 0.0);
}

TEST(Measure, SlewRatesInvertedWindowIsZero) {
  std::vector<TranPoint> tran(3);
  for (int i = 0; i < 3; ++i) {
    tran[static_cast<std::size_t>(i)].time = i * 1e-6;
    tran[static_cast<std::size_t>(i)].nodeV = {0.0, static_cast<double>(i)};
  }
  const SlewRates sr = slewRates(tran, 1, 2e-6, 1e-6);  // tStop < tStart.
  EXPECT_DOUBLE_EQ(sr.rising, 0.0);
  EXPECT_DOUBLE_EQ(sr.falling, 0.0);
}

TEST(Measure, SlewRatesConstantWaveformIsZero) {
  std::vector<TranPoint> tran(10);
  for (int i = 0; i < 10; ++i) {
    tran[static_cast<std::size_t>(i)].time = i * 1e-7;
    tran[static_cast<std::size_t>(i)].nodeV = {0.0, 1.5};
  }
  const SlewRates sr = slewRates(tran, 1);
  EXPECT_DOUBLE_EQ(sr.rising, 0.0);
  EXPECT_DOUBLE_EQ(sr.falling, 0.0);
}

TEST(Measure, SlewRatesWindowNarrowerThanStepFallsBack) {
  // 1 us steps, ramp at 1 V/us; a 0.2 us window between samples contains
  // no whole interval -- the fallback reports the overlapping interval's
  // slope instead of a silent zero.
  std::vector<TranPoint> tran(5);
  for (int i = 0; i < 5; ++i) {
    tran[static_cast<std::size_t>(i)].time = i * 1e-6;
    tran[static_cast<std::size_t>(i)].nodeV = {0.0, static_cast<double>(i)};
  }
  const SlewRates sr = slewRates(tran, 1, 1.4e-6, 1.6e-6);
  EXPECT_NEAR(sr.rising, 1e6, 1.0);
  EXPECT_DOUBLE_EQ(sr.falling, 0.0);
}

TEST(Measure, TailSamplesReturnsNewestOldestFirst) {
  std::vector<TranPoint> tran(6);
  for (int i = 0; i < 6; ++i) {
    tran[static_cast<std::size_t>(i)].time = i * 1e-9;
    tran[static_cast<std::size_t>(i)].nodeV = {0.0, 10.0 + i};
  }
  const std::vector<double> tail = tailSamples(tran, 1, 4);
  ASSERT_EQ(tail.size(), 4u);
  EXPECT_DOUBLE_EQ(tail[0], 12.0);
  EXPECT_DOUBLE_EQ(tail[3], 15.0);
  EXPECT_THROW(tailSamples(tran, 1, 7), std::invalid_argument);
}

TEST(Measure, CurveExtractionFromAcPoints) {
  std::vector<AcPoint> ac(2);
  ac[0].freq = 10.0;
  ac[0].nodeV = {{0, 0}, {1.0, 0.0}, {0.25, 0.0}};
  ac[1].freq = 100.0;
  ac[1].nodeV = {{0, 0}, {0.5, 0.0}, {0.25, 0.0}};
  const AcCurve c1 = curveAt(ac, 1);
  EXPECT_DOUBLE_EQ(std::abs(c1.h[0]), 1.0);
  const AcCurve cd = curveDiff(ac, 1, 2);
  EXPECT_DOUBLE_EQ(std::abs(cd.h[0]), 0.75);
  EXPECT_DOUBLE_EQ(std::abs(cd.h[1]), 0.25);
}

}  // namespace
}  // namespace lo::sim
