#include "service/protocol.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <condition_variable>
#include <filesystem>
#include <mutex>
#include <sstream>

#include "service/cache.hpp"
#include "service/json.hpp"
#include "service/serialize.hpp"
#include "service/verify_ops.hpp"

namespace lo::service {
namespace {

// ---------------------------------------------------------------------------
// Json value type
// ---------------------------------------------------------------------------

TEST(Json, DumpIsCompactAndInsertionOrdered) {
  Json obj = Json::object();
  obj.set("b", 1);
  obj.set("a", true);
  Json arr = Json::array();
  arr.push("x");
  arr.push(Json());
  obj.set("list", std::move(arr));
  EXPECT_EQ(obj.dump(), "{\"b\":1,\"a\":true,\"list\":[\"x\",null]}");
}

TEST(Json, NumbersRoundTripExactly) {
  for (const double v : {0.0, 1.0, -1.0, 65e6, 3e-12, 1.0 / 3.0, 0.1,
                         10.500000000000002, 1e300, -2.2250738585072014e-308}) {
    const Json parsed = Json::parse(Json(v).dump());
    EXPECT_EQ(parsed.asDouble(), v) << Json(v).dump();
  }
  // Integers print without an exponent or decimal point.
  EXPECT_EQ(Json(42.0).dump(), "42");
  EXPECT_EQ(Json(-7).dump(), "-7");
  // Non-finite values have no JSON spelling; they degrade to null.
  EXPECT_EQ(Json(std::nan("")).dump(), "null");
}

TEST(Json, ParseHandlesEscapesAndNesting) {
  const Json j = Json::parse(
      R"({"s":"a\"b\\c\nA","arr":[1,2.5,-3e2],"o":{"k":false}})");
  EXPECT_EQ(j.at("s").asString(), "a\"b\\c\nA");
  ASSERT_EQ(j.at("arr").items().size(), 3u);
  EXPECT_EQ(j.at("arr").items()[2].asDouble(), -300.0);
  EXPECT_FALSE(j.at("o").at("k").asBool(true));
  EXPECT_TRUE(j.at("missing").isNull());
  EXPECT_EQ(j.find("missing"), nullptr);
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_THROW((void)Json::parse("{ not json"), JsonParseError);
  EXPECT_THROW((void)Json::parse(""), JsonParseError);
  EXPECT_THROW((void)Json::parse("{} trailing"), JsonParseError);
  EXPECT_THROW((void)Json::parse("[1,2,"), JsonParseError);
  EXPECT_THROW((void)Json::parse("\"unterminated"), JsonParseError);
}

TEST(Json, SetOverwritesInPlaceKeepingPosition) {
  Json obj = Json::object();
  obj.set("a", 1);
  obj.set("b", 2);
  obj.set("a", 3);  // Overwrite must not move "a" behind "b".
  EXPECT_EQ(obj.dump(), "{\"a\":3,\"b\":2}");
}

// ---------------------------------------------------------------------------
// Serialisation of the engine value types
// ---------------------------------------------------------------------------

TEST(Serialize, PerformanceRoundTripIsExact) {
  sizing::OtaPerformance perf{};
  perf.dcGainDb = 71.3000000000000007;
  perf.gbwHz = 64.93e6;
  perf.phaseMarginDeg = 61.0 / 7.0 * 7.0;
  perf.settlingTimeNs = 10.500000000000002;
  const sizing::OtaPerformance back =
      performanceFromJson(Json::parse(toJson(perf).dump()));
  EXPECT_EQ(back.dcGainDb, perf.dcGainDb);
  EXPECT_EQ(back.gbwHz, perf.gbwHz);
  EXPECT_EQ(back.phaseMarginDeg, perf.phaseMarginDeg);
  EXPECT_EQ(back.settlingTimeNs, perf.settlingTimeNs);
}

TEST(Serialize, SpecsApplyPartialOverridesAndRejectTypos) {
  sizing::OtaSpecs specs;
  const double defaultVdd = specs.vdd;
  specsFromJson(Json::parse(R"({"gbw":40e6,"cload":5e-12})"), specs);
  EXPECT_EQ(specs.gbw, 40e6);
  EXPECT_EQ(specs.cload, 5e-12);
  EXPECT_EQ(specs.vdd, defaultVdd);  // Untouched fields keep defaults.
  EXPECT_THROW(specsFromJson(Json::parse(R"({"gwb":40e6})"), specs),
               std::invalid_argument);
}

TEST(Serialize, SizingCaseAcceptsNamesAndNumbers) {
  EXPECT_EQ(sizingCaseFromJson(Json("case1")), core::SizingCase::kCase1);
  EXPECT_EQ(sizingCaseFromJson(Json("case4")), core::SizingCase::kCase4);
  EXPECT_EQ(sizingCaseFromJson(Json(2)), core::SizingCase::kCase2);
  EXPECT_THROW((void)sizingCaseFromJson(Json("case9")), std::invalid_argument);
  EXPECT_THROW((void)sizingCaseFromJson(Json(0)), std::invalid_argument);
}

TEST(Serialize, CornerNamesMapToEnum) {
  EXPECT_EQ(cornerFromName("tt"), tech::ProcessCorner::kTypical);
  EXPECT_EQ(cornerFromName("ss"), tech::ProcessCorner::kSlow);
  EXPECT_EQ(cornerFromName("ff"), tech::ProcessCorner::kFast);
  EXPECT_THROW((void)cornerFromName("xx"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Line protocol
// ---------------------------------------------------------------------------

class ProtocolTest : public ::testing::Test {
 protected:
  ProtocolTest()
      : scheduler_(tech::Technology::generic060(), singleThread()),
        protocol_(scheduler_) {}

  static SchedulerOptions singleThread() {
    SchedulerOptions options;
    options.threads = 1;
    return options;
  }

  Json respond(const std::string& line) {
    return Json::parse(protocol_.handleLine(line));
  }

  JobScheduler scheduler_;
  ServiceProtocol protocol_;
};

TEST_F(ProtocolTest, MalformedAndUnknownRequestsFailGracefully) {
  EXPECT_FALSE(respond("{ nope").at("ok").asBool(true));
  EXPECT_FALSE(respond("[1,2,3]").at("ok").asBool(true));
  // Unknown ops answer with the structured error object, like admission
  // rejections: code, message naming the op, and the op inventory.
  const Json unknown = respond(R"({"op":"frobnicate"})");
  EXPECT_FALSE(unknown.at("ok").asBool(true));
  const Json& error = unknown.at("error");
  ASSERT_TRUE(error.isObject()) << unknown.dump();
  EXPECT_EQ(error.at("code").asString(), "unknown_op");
  EXPECT_NE(error.at("message").asString().find("frobnicate"), std::string::npos);
  ASSERT_TRUE(error.at("known_ops").isArray());
  bool sawSynthesize = false;
  bool sawShutdown = false;
  for (const Json& name : error.at("known_ops").items()) {
    sawSynthesize = sawSynthesize || name.asString() == "synthesize";
    sawShutdown = sawShutdown || name.asString() == "shutdown";
  }
  EXPECT_TRUE(sawSynthesize);
  EXPECT_TRUE(sawShutdown);
}

TEST_F(ProtocolTest, SynthesizeRunsEndToEndAndDuplicateHitsCache) {
  const std::string request =
      R"({"op":"synthesize","case":"case1","label":"p1","trace":true})";
  const Json first = respond(request);
  ASSERT_TRUE(first.at("ok").asBool()) << first.dump();
  EXPECT_EQ(first.at("state").asString(), "done");
  EXPECT_FALSE(first.at("cache_hit").asBool(true));
  EXPECT_GT(first.at("result").at("measured").at("gbw_hz").asDouble(), 0.0);
  EXPECT_FALSE(first.at("trace").at("stages").items().empty());

  const Json second = respond(request);
  ASSERT_TRUE(second.at("ok").asBool());
  EXPECT_TRUE(second.at("cache_hit").asBool());
  // The duplicate's payload is byte-identical to the cold run's.
  EXPECT_EQ(second.at("result").dump(), first.at("result").dump());
}

TEST_F(ProtocolTest, AsyncSynthesizeThenWait) {
  const Json queued =
      respond(R"({"op":"synthesize","case":"case1","async":true})");
  ASSERT_TRUE(queued.at("ok").asBool()) << queued.dump();
  const std::uint64_t id = queued.at("id").asUint64();
  ASSERT_GT(id, 0u);
  const Json done = respond(R"({"op":"wait","id":)" + std::to_string(id) + "}");
  ASSERT_TRUE(done.at("ok").asBool()) << done.dump();
  EXPECT_EQ(done.at("state").asString(), "done");
}

TEST_F(ProtocolTest, FailedJobReportsErrorWithOkTrue) {
  // Transport succeeded, the job itself failed: ok stays true and the
  // outcome carries state + error.
  const Json out =
      respond(R"({"op":"synthesize","topology":"no_such_topology"})");
  ASSERT_TRUE(out.at("ok").asBool()) << out.dump();
  EXPECT_EQ(out.at("state").asString(), "failed");
  EXPECT_NE(out.at("error").asString().find("no_such_topology"),
            std::string::npos);
}

TEST_F(ProtocolTest, SweepReturnsOutcomesInOrder) {
  const Json out = respond(
      R"({"op":"sweep","jobs":[)"
      R"({"label":"a","case":"case1"},)"
      R"({"label":"b","case":"case1","spec":{"gbw":40e6}}]})");
  ASSERT_TRUE(out.at("ok").asBool()) << out.dump();
  const auto& outcomes = out.at("outcomes").items();
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes[0].at("label").asString(), "a");
  EXPECT_EQ(outcomes[1].at("label").asString(), "b");
  EXPECT_EQ(outcomes[0].at("state").asString(), "done");
  EXPECT_EQ(outcomes[1].at("state").asString(), "done");
  EXPECT_NE(outcomes[0].at("result").dump(), outcomes[1].at("result").dump());
}

TEST_F(ProtocolTest, StatsReflectSchedulerActivity) {
  (void)respond(R"({"op":"synthesize","case":"case1"})");
  (void)respond(R"({"op":"synthesize","case":"case1"})");
  const Json out = respond(R"({"op":"stats"})");
  ASSERT_TRUE(out.at("ok").asBool());
  const Json& stats = out.at("stats");
  EXPECT_EQ(stats.at("jobs").at("submitted").asUint64(), 2u);
  EXPECT_EQ(stats.at("jobs").at("completed").asUint64(), 2u);
  EXPECT_EQ(stats.at("cache").at("hits").asUint64(), 1u);
  EXPECT_EQ(stats.at("cache").at("misses").asUint64(), 1u);
  EXPECT_EQ(stats.at("workers").asInt(), 1);
  EXPECT_GT(stats.at("stages").at("sizing").at("calls").asUint64(), 0u);
}

TEST_F(ProtocolTest, CancelUnknownIdReturnsFalse) {
  const Json out = respond(R"({"op":"cancel","id":424242})");
  ASSERT_TRUE(out.at("ok").asBool());
  EXPECT_FALSE(out.at("cancelled").asBool(true));
}

TEST_F(ProtocolTest, TopologiesListsRegistry) {
  const Json out = respond(R"({"op":"topologies"})");
  ASSERT_TRUE(out.at("ok").asBool());
  bool sawOta = false, sawTwoStage = false;
  for (const Json& name : out.at("topologies").items()) {
    if (name.asString() == core::kFoldedCascodeOtaTopologyName) sawOta = true;
    if (name.asString() == core::kTwoStageTopologyName) sawTwoStage = true;
  }
  EXPECT_TRUE(sawOta);
  EXPECT_TRUE(sawTwoStage);
}

TEST_F(ProtocolTest, ServeStopsAtShutdownAndAnswersEveryLine) {
  std::istringstream in(
      "{\"op\":\"topologies\"}\n"
      "\n"
      "{\"op\":\"shutdown\"}\n"
      "{\"op\":\"stats\"}\n");  // After shutdown: must never be answered.
  std::ostringstream out;
  protocol_.serve(in, out);
  EXPECT_TRUE(protocol_.shutdownRequested());

  std::istringstream lines(out.str());
  std::string line;
  std::vector<Json> responses;
  while (std::getline(lines, line)) responses.push_back(Json::parse(line));
  ASSERT_EQ(responses.size(), 2u);  // Blank line skipped, post-shutdown unread.
  EXPECT_TRUE(responses[0].at("ok").asBool());
  EXPECT_TRUE(responses[1].at("shutting_down").asBool());
}

// ---------------------------------------------------------------------------
// Hardening: hostile input must produce structured errors, never kill the
// serving loop.
// ---------------------------------------------------------------------------

TEST_F(ProtocolTest, GarbageAndTruncatedLinesAnswerStructuredErrors) {
  const char* kGarbage[] = {
      "\x01\x02\xff binary noise",
      "{\"op\":\"synthesize\"",          // Truncated mid-object.
      "{\"op\":\"synthesize\",\"spec\"", // Truncated mid-key.
      "}{",
      "null",
      "42",
      "\"just a string\"",
      "{\"op\":12}",                     // Wrong op type.
      "{}",                              // No op at all.
  };
  for (const char* line : kGarbage) {
    const Json out = respond(line);
    EXPECT_FALSE(out.at("ok").asBool(true)) << line;
    // Parse/type failures answer a string reason; an absent/garbage "op"
    // reaches the structured unknown_op object.  Either way the error is
    // populated.
    const Json& error = out.at("error");
    if (error.isObject()) {
      EXPECT_FALSE(error.at("message").asString().empty()) << line;
    } else {
      EXPECT_FALSE(error.asString().empty()) << line;
    }
  }
  // The protocol object is still fully functional afterwards.
  EXPECT_TRUE(respond(R"({"op":"topologies"})").at("ok").asBool());
}

TEST_F(ProtocolTest, OversizedLineIsRejectedBeforeParsing) {
  std::string line = R"({"op":"synthesize","label":")";
  line.append(kMaxRequestLineBytes, 'x');
  line += R"("})";
  const Json out = respond(line);
  EXPECT_FALSE(out.at("ok").asBool(true));
  EXPECT_NE(out.at("error").asString().find("too long"), std::string::npos);
  EXPECT_TRUE(respond(R"({"op":"topologies"})").at("ok").asBool());
}

TEST_F(ProtocolTest, ServeSurvivesHostileScript) {
  std::istringstream in(
      "{ nope\n"
      "]]]\n"
      "{\"op\":\"definitely_not_an_op\"}\n"
      "{\"op\":\"topologies\"}\n");
  std::ostringstream out;
  protocol_.serve(in, out);
  std::istringstream lines(out.str());
  std::string line;
  std::vector<Json> responses;
  while (std::getline(lines, line)) responses.push_back(Json::parse(line));
  ASSERT_EQ(responses.size(), 4u);
  EXPECT_FALSE(responses[0].at("ok").asBool(true));
  EXPECT_FALSE(responses[1].at("ok").asBool(true));
  EXPECT_FALSE(responses[2].at("ok").asBool(true));
  EXPECT_TRUE(responses[3].at("ok").asBool());
}

// ---------------------------------------------------------------------------
// Structured errors and the health op
// ---------------------------------------------------------------------------

TEST(ProtocolStructuredErrors, OverloadAnswersCodeDepthAndRetryHint) {
  std::mutex m;
  std::condition_variable cv;
  bool entered = false, open = false;
  SchedulerOptions options;
  options.threads = 1;
  options.maxQueueDepth = 1;
  options.preRunHook = [&](const JobRequest&, int) {
    std::unique_lock<std::mutex> lock(m);
    entered = true;
    cv.notify_all();
    cv.wait(lock, [&] { return open; });
  };
  JobScheduler scheduler(tech::Technology::generic060(), options);
  ServiceProtocol protocol(scheduler);
  const auto respond = [&](const std::string& line) {
    return Json::parse(protocol.handleLine(line));
  };

  // One job held inside the worker, one filling the single queue slot
  // (distinct specs, so they neither coalesce nor hit the cache).
  ASSERT_TRUE(respond(R"({"op":"synthesize","async":true,"case":"case1",)"
                      R"("spec":{"gbw":41e6}})")
                  .at("ok")
                  .asBool());
  {
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return entered; });
  }
  ASSERT_TRUE(respond(R"({"op":"synthesize","async":true,"case":"case1",)"
                      R"("spec":{"gbw":42e6}})")
                  .at("ok")
                  .asBool());

  // The third submission is turned away with a machine-readable error
  // object instead of a bare string.
  const Json rejected = respond(
      R"({"op":"synthesize","async":true,"case":"case1","spec":{"gbw":43e6}})");
  EXPECT_FALSE(rejected.at("ok").asBool(true));
  const Json& error = rejected.at("error");
  EXPECT_EQ(error.at("code").asString(), "overloaded");
  EXPECT_EQ(error.at("queue_depth").asUint64(), 1u);
  EXPECT_GE(error.at("retry_after_ms").asInt(), 100);
  EXPECT_FALSE(error.at("message").asString().empty());

  {
    const std::lock_guard<std::mutex> lock(m);
    open = true;
  }
  cv.notify_all();
}

TEST(ProtocolStructuredErrors, CircuitOpenAnswersCode) {
  SchedulerOptions options;
  options.threads = 1;
  options.breakerFailureThreshold = 1;
  JobScheduler scheduler(tech::Technology::generic060(), options);
  ServiceProtocol protocol(scheduler);
  const auto respond = [&](const std::string& line) {
    return Json::parse(protocol.handleLine(line));
  };

  // One non-transient failure opens the breaker for that topology...
  const Json failed = respond(R"({"op":"synthesize","topology":"no_such_topology"})");
  ASSERT_TRUE(failed.at("ok").asBool()) << failed.dump();
  EXPECT_EQ(failed.at("state").asString(), "failed");

  // ...and the next submission answers circuit_open with a retry hint.
  const Json rejected =
      respond(R"({"op":"synthesize","topology":"no_such_topology"})");
  EXPECT_FALSE(rejected.at("ok").asBool(true));
  EXPECT_EQ(rejected.at("error").at("code").asString(), "circuit_open");
  EXPECT_GT(rejected.at("error").at("retry_after_ms").asInt(), 0);
  EXPECT_NE(rejected.at("error").at("message").asString().find("no_such_topology"),
            std::string::npos);
}

TEST(ProtocolHealth, HealthOpCoversQueueBreakersAndJournal) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "lo_protocol_health_journal";
  std::filesystem::remove_all(dir);
  SchedulerOptions options;
  options.threads = 1;
  options.maxQueueDepth = 8;
  options.shedWatermark = 0.5;
  options.breakerFailureThreshold = 3;
  options.journal.dir = dir.string();
  JobScheduler scheduler(tech::Technology::generic060(), options);
  ServiceProtocol protocol(scheduler);
  const auto respond = [&](const std::string& line) {
    return Json::parse(protocol.handleLine(line));
  };

  ASSERT_TRUE(respond(R"({"op":"synthesize","case":"case1"})").at("ok").asBool());
  ASSERT_TRUE(respond(R"({"op":"synthesize","topology":"no_such_topology"})")
                  .at("ok")
                  .asBool());

  const Json out = respond(R"({"op":"health"})");
  ASSERT_TRUE(out.at("ok").asBool()) << out.dump();
  const Json& health = out.at("health");
  EXPECT_EQ(health.at("queue").at("depth").asUint64(), 0u);
  EXPECT_EQ(health.at("queue").at("limit").asUint64(), 8u);
  EXPECT_EQ(health.at("queue").at("shed_depth").asUint64(), 4u);
  EXPECT_EQ(health.at("queue").at("workers").asInt(), 1);
  EXPECT_FALSE(health.at("queue").at("overloaded").asBool(true));

  const Json* breaker = health.at("breakers").find("no_such_topology");
  ASSERT_NE(breaker, nullptr) << out.dump();
  EXPECT_EQ(breaker->at("state").asString(), "closed");
  EXPECT_EQ(breaker->at("consecutive_failures").asInt(), 1);

  const Json& journal = health.at("journal");
  EXPECT_TRUE(journal.at("enabled").asBool());
  EXPECT_GE(journal.at("records_in_log").asUint64(), 2u);
  EXPECT_EQ(journal.at("live_jobs").asUint64(), 0u);
  EXPECT_EQ(journal.at("replayed_records").asUint64(), 0u);
  EXPECT_FALSE(journal.at("torn_tail_recovered").asBool(true));
}

TEST_F(ProtocolTest, AcksCarryCacheKeyAndSummaryOmitsResultBody) {
  const std::string request =
      R"({"op":"synthesize","case":"case1","label":"keyed"})";
  const Json first = respond(request);
  ASSERT_TRUE(first.at("ok").asBool()) << first.dump();
  const std::string key = first.at("cache_key").asString();
  ASSERT_EQ(key.size(), 16u);  // Fixed-width hex of the FNV-1a hash.
  EXPECT_EQ(key, scheduler_.cacheKeyFor(parseJobRequest(Json::parse(request))));

  // The async ack carries the key before the job has run: that is what
  // lets a router shard by key without waiting for the outcome.
  const Json ack = respond(R"({"op":"synthesize","case":"case1","async":true})");
  ASSERT_TRUE(ack.at("ok").asBool());
  EXPECT_EQ(ack.at("cache_key").asString(), key);

  const Json waited = respond("{\"op\":\"wait\",\"id\":" +
                              std::to_string(ack.at("id").asUint64()) +
                              ",\"summary\":true}");
  ASSERT_TRUE(waited.at("ok").asBool());
  EXPECT_EQ(waited.at("state").asString(), "done");
  EXPECT_TRUE(waited.at("cache_hit").asBool());
  EXPECT_EQ(waited.at("cache_key").asString(), key);
  EXPECT_EQ(waited.find("result"), nullptr);  // summary drops the body.

  // no_cache jobs have no key to report.
  const Json bypass = respond(
      R"({"op":"synthesize","case":"case1","no_cache":true,"summary":true})");
  ASSERT_TRUE(bypass.at("ok").asBool());
  EXPECT_EQ(bypass.find("cache_key"), nullptr);
  EXPECT_EQ(bypass.find("result"), nullptr);
}

TEST_F(ProtocolTest, SweepSummaryOutcomesCarryDistinctCacheKeys) {
  const Json out = respond(
      R"({"op":"sweep","summary":true,"jobs":[)"
      R"({"case":"case1"},{"case":"case1","spec":{"gbw":45e6}}]})");
  ASSERT_TRUE(out.at("ok").asBool()) << out.dump();
  const auto& outcomes = out.at("outcomes").items();
  ASSERT_EQ(outcomes.size(), 2u);
  for (const Json& outcome : outcomes) {
    ASSERT_TRUE(outcome.at("ok").asBool());
    EXPECT_EQ(outcome.at("cache_key").asString().size(), 16u);
    EXPECT_EQ(outcome.find("result"), nullptr);
  }
  EXPECT_NE(outcomes[0].at("cache_key").asString(),
            outcomes[1].at("cache_key").asString());
}

// ---------------------------------------------------------------------------
// Extension seam
// ---------------------------------------------------------------------------

TEST_F(ProtocolTest, RegisteredOpDispatchesAndFailuresStayStructured) {
  protocol_.registerOp("echo", [](const Json& request) {
    Json out = Json::object();
    out.set("ok", true);
    out.set("echo", request.at("payload").asString());
    return out;
  });
  protocol_.registerOp("boom", [](const Json&) -> Json {
    throw std::runtime_error("handler exploded");
  });

  const Json echoed = respond(R"({"op":"echo","payload":"hello"})");
  ASSERT_TRUE(echoed.at("ok").asBool());
  EXPECT_EQ(echoed.at("echo").asString(), "hello");

  const Json boomed = respond(R"({"op":"boom"})");
  EXPECT_FALSE(boomed.at("ok").asBool(true));
  EXPECT_NE(boomed.at("error").asString().find("handler exploded"),
            std::string::npos);

  // Unknown-op errors advertise extension ops alongside the builtins.
  const Json unknown = respond(R"({"op":"nope"})");
  ASSERT_TRUE(unknown.at("error").isObject());
  EXPECT_EQ(unknown.at("error").at("code").asString(), "unknown_op");
  bool sawEcho = false;
  for (const Json& name : unknown.at("error").at("known_ops").items()) {
    sawEcho = sawEcho || name.asString() == "echo";
  }
  EXPECT_TRUE(sawEcho);
}

TEST_F(ProtocolTest, RegisterOpRejectsBuiltinsDuplicatesAndNullHandlers) {
  EXPECT_THROW(protocol_.registerOp("synthesize", [](const Json&) { return Json(); }),
               std::invalid_argument);
  EXPECT_THROW(protocol_.registerOp("stats", [](const Json&) { return Json(); }),
               std::invalid_argument);
  protocol_.registerOp("mine", [](const Json&) { return Json::object(); });
  EXPECT_THROW(protocol_.registerOp("mine", [](const Json&) { return Json(); }),
               std::invalid_argument);
  EXPECT_THROW(protocol_.registerOp("null_op", ServiceProtocol::OpHandler{}),
               std::invalid_argument);
}

TEST_F(ProtocolTest, RegisteredStatsSectionAppearsInStats) {
  protocol_.registerStatsSection("custom_section", [] {
    Json j = Json::object();
    j.set("answer", 42);
    return j;
  });
  EXPECT_THROW(
      protocol_.registerStatsSection("custom_section", [] { return Json(); }),
      std::invalid_argument);
  const Json out = respond(R"({"op":"stats"})");
  ASSERT_TRUE(out.at("ok").asBool());
  EXPECT_EQ(out.at("stats").at("custom_section").at("answer").asInt(), 42);
}

// ---------------------------------------------------------------------------
// Post-layout verification tier surface
// ---------------------------------------------------------------------------

TEST(Serialize, SpecFieldNamesIncludeExtendedAxes) {
  const std::vector<std::string>& names = specFieldNames();
  for (const char* name : {"thd_max_percent", "psrr_min_db", "offset_max_mv"}) {
    bool found = false;
    for (const std::string& n : names) found = found || n == name;
    EXPECT_TRUE(found) << name;
  }
  sizing::OtaSpecs specs;
  setSpecField(specs, "psrr_min_db", 60.0);
  EXPECT_DOUBLE_EQ(specs.psrrMinDb, 60.0);
  EXPECT_DOUBLE_EQ(specField(specs, "psrr_min_db"), 60.0);
  setSpecField(specs, "thd_max_percent", 0.5);
  setSpecField(specs, "offset_max_mv", 2.0);
  EXPECT_DOUBLE_EQ(specs.thdMaxPercent, 0.5);
  EXPECT_DOUBLE_EQ(specs.offsetMaxMv, 2.0);
}

TEST(Serialize, JobRequestJournalRoundTripWithPostLayoutVerify) {
  JobRequest request;
  request.label = "plv-journal";
  request.options.postLayoutVerify.enabled = true;
  request.options.postLayoutVerify.relTolerance = 0.05;
  request.options.postLayoutVerify.thdFundamentalHz = 2e6;
  request.options.postLayoutVerify.thdCycles = 8;
  request.options.postLayoutVerify.sweepPoints = 21;
  request.specs.psrrMinDb = 55.0;

  const std::string dump = toJson(request).dump();
  const JobRequest back = jobRequestFromJson(Json::parse(dump));
  EXPECT_TRUE(back.options.postLayoutVerify.enabled);
  EXPECT_DOUBLE_EQ(back.options.postLayoutVerify.relTolerance, 0.05);
  EXPECT_DOUBLE_EQ(back.options.postLayoutVerify.thdFundamentalHz, 2e6);
  EXPECT_EQ(back.options.postLayoutVerify.thdCycles, 8);
  EXPECT_EQ(back.options.postLayoutVerify.sweepPoints, 21);
  EXPECT_DOUBLE_EQ(back.specs.psrrMinDb, 55.0);
  // Replayed jobs must recompute the original's cache key exactly.
  EXPECT_EQ(toJson(back).dump(), dump);

  // Verification-free requests keep their pre-tier bytes: no
  // post_layout_verify member at all.
  const JobRequest plain;
  EXPECT_EQ(toJson(plain).dump().find("post_layout_verify"), std::string::npos);
}

TEST(CacheKey, PostLayoutSegmentsAreGated) {
  const core::EngineOptions plainOptions;
  const sizing::OtaSpecs plainSpecs;
  const std::string base = ResultCache::canonicalText(
      plainOptions, plainSpecs, tech::ProcessCorner::kTypical, "t");
  // Default configurations carry neither gated segment.
  EXPECT_EQ(base.find("|plv="), std::string::npos);
  EXPECT_EQ(base.find("|xspec="), std::string::npos);

  core::EngineOptions verifyOptions = plainOptions;
  verifyOptions.postLayoutVerify.enabled = true;
  const std::string withPlv = ResultCache::canonicalText(
      verifyOptions, plainSpecs, tech::ProcessCorner::kTypical, "t");
  EXPECT_NE(withPlv.find("|plv="), std::string::npos);
  EXPECT_NE(withPlv, base);

  sizing::OtaSpecs extendedSpecs = plainSpecs;
  extendedSpecs.thdMaxPercent = 0.5;
  const std::string withXspec = ResultCache::canonicalText(
      plainOptions, extendedSpecs, tech::ProcessCorner::kTypical, "t");
  EXPECT_NE(withXspec.find("|xspec="), std::string::npos);
  EXPECT_NE(withXspec, base);
  EXPECT_NE(withXspec, withPlv);
}

TEST_F(ProtocolTest, SynthesizeParsesPostLayoutVerifyBoolAndObject) {
  // Bare bool turns the tier on with defaults.
  const Json boolForm = respond(
      R"({"op":"synthesize","case":"case1","label":"plv-b","post_layout_verify":true})");
  ASSERT_TRUE(boolForm.at("ok").asBool()) << boolForm.dump();
  ASSERT_EQ(boolForm.at("state").asString(), "done");
  EXPECT_TRUE(boolForm.at("result").at("verification").at("ran").asBool());

  // Object form tunes the knobs; a different key space than the bool form.
  const Json objForm = respond(
      R"({"op":"synthesize","case":"case1","label":"plv-o","post_layout_verify":{"sweep_points":15}})");
  ASSERT_TRUE(objForm.at("ok").asBool()) << objForm.dump();
  EXPECT_TRUE(objForm.at("result").at("verification").at("ran").asBool());
  EXPECT_NE(objForm.at("cache_key").asString(), boolForm.at("cache_key").asString());

  // Without the field the tier stays off and the result carries no report.
  const Json off = respond(R"({"op":"synthesize","case":"case1","label":"plv-off"})");
  ASSERT_TRUE(off.at("ok").asBool());
  EXPECT_EQ(off.at("result").find("verification"), nullptr);
  EXPECT_NE(off.at("cache_key").asString(), boolForm.at("cache_key").asString());
}

TEST_F(ProtocolTest, VerifyOpRunsEndToEnd) {
  installVerifyOps(protocol_, scheduler_);
  const Json out = respond(
      R"({"op":"verify","label":"vop","case":"case1","summary":true})");
  ASSERT_TRUE(out.at("ok").asBool()) << out.dump();
  EXPECT_EQ(out.at("state").asString(), "done");
  EXPECT_TRUE(out.at("post_layout_ran").asBool());
  // The verdict and the structured report ride on the response even in
  // summary mode; the full result body is omitted.
  ASSERT_NE(out.find("post_layout_pass"), nullptr);
  ASSERT_TRUE(out.at("verification").isObject());
  EXPECT_FALSE(out.at("verification").at("deltas").items().empty());
  EXPECT_EQ(out.find("result"), nullptr);

  // The op shares the synthesize cache: an identical verify request hits.
  const Json again = respond(
      R"({"op":"verify","label":"vop","case":"case1","summary":true})");
  EXPECT_TRUE(again.at("cache_hit").asBool());
  EXPECT_EQ(again.at("verification").dump(), out.at("verification").dump());
}

}  // namespace
}  // namespace lo::service
