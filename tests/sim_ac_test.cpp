#include <gtest/gtest.h>

#include <cmath>

#include "device/folding.hpp"
#include "sim/measure.hpp"
#include "sim/simulator.hpp"
#include "tech/technology.hpp"

namespace lo::sim {
namespace {

using circuit::Circuit;
using circuit::Waveform;

const tech::Technology kTech = tech::Technology::generic060();

TEST(SimAc, RcLowPassPole) {
  Circuit c;
  const auto in = c.node("in"), out = c.node("out");
  c.addVSource("VIN", in, circuit::kGround, Waveform::makeDc(0.0), 1.0);
  c.addResistor("R1", in, out, 10e3);
  c.addCapacitor("C1", out, circuit::kGround, 1e-9);  // fp = 15.9 kHz.
  const auto model = device::MosModel::create("level1");
  Simulator sim(c, kTech, *model);
  const DcSolution op = sim.dcOperatingPoint();
  const auto ac = sim.ac(op, 10.0, 10e6, 20);
  const AcCurve curve = curveAt(ac, out);

  const double fp = 1.0 / (2 * M_PI * 10e3 * 1e-9);
  // DC gain 1, -3 dB at the pole, -20 dB/dec after.
  EXPECT_NEAR(dcGain(curve), 1.0, 1e-3);
  EXPECT_NEAR(gainAt(curve, fp), 1.0 / std::sqrt(2.0), 0.02);
  EXPECT_NEAR(gainAt(curve, 100 * fp), 0.01, 0.002);
  // Phase at the pole is -45 degrees.
  const double pm = phaseMarginDeg(curve);  // Unity never crossed from above 1... gain==1 at DC.
  (void)pm;
  const auto phase = unwrappedPhaseDeg(curve);
  // Find the grid point closest to fp.
  std::size_t k = 0;
  for (std::size_t i = 0; i < curve.size(); ++i) {
    if (std::abs(std::log10(curve.freq[i] / fp)) < std::abs(std::log10(curve.freq[k] / fp))) {
      k = i;
    }
  }
  EXPECT_NEAR(phase[k], -45.0, 3.0);
}

TEST(SimAc, DividerIsFrequencyFlat) {
  Circuit c;
  const auto in = c.node("in"), out = c.node("out");
  c.addVSource("VIN", in, circuit::kGround, Waveform::makeDc(1.0), 2.0);
  c.addResistor("R1", in, out, 30e3);
  c.addResistor("R2", out, circuit::kGround, 10e3);
  const auto model = device::MosModel::create("level1");
  Simulator sim(c, kTech, *model);
  const auto ac = sim.ac(sim.dcOperatingPoint(), 1.0, 1e9, 5);
  for (const AcPoint& p : ac) {
    EXPECT_NEAR(std::abs(p.at(out)), 0.5, 1e-6) << p.freq;  // 2 V excitation / 4.
    EXPECT_NEAR(std::arg(p.at(out)), 0.0, 1e-6);
  }
}

class CommonSourceByModel : public ::testing::TestWithParam<const char*> {};

TEST_P(CommonSourceByModel, GainMatchesGmTimesRout) {
  // NMOS common-source stage with resistive load.
  Circuit c;
  const auto in = c.node("in"), out = c.node("out"), vdd = c.node("vdd");
  device::MosGeometry geo;
  geo.w = 40e-6;
  geo.l = 1e-6;
  device::applyUnfoldedGeometry(kTech.rules, geo);
  c.addVSource("VDD", vdd, circuit::kGround, Waveform::makeDc(3.3));
  c.addVSource("VIN", in, circuit::kGround, Waveform::makeDc(1.0), 1.0);
  c.addResistor("RL", vdd, out, 10e3);
  c.addMos("M1", out, in, circuit::kGround, circuit::kGround, tech::MosType::kNmos, geo);

  const auto model = device::MosModel::create(GetParam());
  Simulator sim(c, kTech, *model);
  const DcSolution op = sim.dcOperatingPoint();
  ASSERT_EQ(op.mosOps[0].region, device::MosRegion::kSaturation);

  const auto ac = sim.ac(op, 10.0, 100e3, 10);
  const double gain = dcGain(curveAt(ac, out));
  const double expected =
      op.mosOps[0].gm / (1.0 / 10e3 + op.mosOps[0].gds);
  EXPECT_NEAR(gain, expected, expected * 0.01);
}

INSTANTIATE_TEST_SUITE_P(Models, CommonSourceByModel,
                         ::testing::Values("level1", "ekv"));

TEST(SimAc, CascodeBoostsOutputResistance) {
  // Compare a single device current source with a cascoded one; the output
  // resistance seen at the drain must rise by roughly gm*ro.  A V source at
  // the output provides both the DC bias and the AC probe; Rout = 1/|I|.
  const auto model = device::MosModel::create("level1");
  auto routOf = [&](bool cascode) {
    Circuit c;
    const auto out = c.node("out"), vb = c.node("vb"), vb2 = c.node("vb2");
    device::MosGeometry geo;
    geo.w = 20e-6;
    geo.l = 1e-6;
    device::applyUnfoldedGeometry(kTech.rules, geo);
    c.addVSource("VB", vb, circuit::kGround, Waveform::makeDc(1.2));
    c.addVSource("VOUT", out, circuit::kGround, Waveform::makeDc(2.5), 1.0);
    if (cascode) {
      const auto mid = c.node("mid");
      c.addVSource("VB2", vb2, circuit::kGround, Waveform::makeDc(2.0));
      c.addMos("M1", mid, vb, circuit::kGround, circuit::kGround, tech::MosType::kNmos, geo);
      c.addMos("M2", out, vb2, mid, circuit::kGround, tech::MosType::kNmos, geo);
    } else {
      c.addMos("M1", out, vb, circuit::kGround, circuit::kGround, tech::MosType::kNmos, geo);
    }
    Simulator sim(c, kTech, *model);
    const DcSolution op = sim.dcOperatingPoint();
    const auto ac = sim.ac(op, 1.0, 10.0, 2);
    // VOUT is the second V source added.
    return 1.0 / std::abs(ac.front().vsourceI[1]);
  };
  const double rSingle = routOf(false);
  const double rCascode = routOf(true);
  EXPECT_GT(rCascode, 20.0 * rSingle);
}

TEST(SimAc, MosCapacitancesCreateOutputPole) {
  // Common-source stage loaded only by its own cdb + RL: check the pole
  // location is near 1/(2 pi RL (cdb + cgd*(1+gm RL))) (Miller).
  Circuit c;
  const auto in = c.node("in"), out = c.node("out"), vdd = c.node("vdd");
  device::MosGeometry geo;
  geo.w = 40e-6;
  geo.l = 1e-6;
  device::applyUnfoldedGeometry(kTech.rules, geo);
  c.addVSource("VDD", vdd, circuit::kGround, Waveform::makeDc(3.3));
  c.addVSource("VIN", in, circuit::kGround, Waveform::makeDc(1.0), 1.0);
  c.addResistor("RL", vdd, out, 10e3);
  c.addCapacitor("CL", out, circuit::kGround, 2e-12);
  c.addMos("M1", out, in, circuit::kGround, circuit::kGround, tech::MosType::kNmos, geo);

  const auto model = device::MosModel::create("level1");
  Simulator sim(c, kTech, *model);
  const DcSolution op = sim.dcOperatingPoint();
  ASSERT_EQ(op.mosOps[0].region, device::MosRegion::kSaturation);
  const auto ac = sim.ac(op, 1e3, 10e9, 20);
  const AcCurve curve = curveAt(ac, out);
  const double a0 = dcGain(curve);

  const auto& mos = op.mosOps[0];
  const double rl = 1.0 / (1.0 / 10e3 + mos.gds);
  const double cTotal = 2e-12 + mos.cdb + mos.cgd * (1.0 + mos.gm * rl) * rl / 10e3;
  const double fpExpected = 1.0 / (2 * M_PI * rl * cTotal);
  // Find measured -3 dB frequency.
  double fMeas = 0.0;
  for (std::size_t i = 0; i + 1 < curve.size(); ++i) {
    if (std::abs(curve.h[i]) >= a0 / std::sqrt(2.0) &&
        std::abs(curve.h[i + 1]) < a0 / std::sqrt(2.0)) {
      fMeas = std::sqrt(curve.freq[i] * curve.freq[i + 1]);
      break;
    }
  }
  ASSERT_GT(fMeas, 0.0);
  EXPECT_NEAR(std::log10(fMeas), std::log10(fpExpected), 0.15);
}

}  // namespace
}  // namespace lo::sim
