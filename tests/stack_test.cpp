#include "layout/stack.hpp"

#include "device/folding.hpp"

#include <gtest/gtest.h>

#include "layout/drc.hpp"
#include "tech/units.hpp"

namespace lo::layout {
namespace {

const tech::Technology kTech = tech::Technology::generic060();

/// The paper's Fig. 3 current mirror: M1:M2:M3 = 1:3:6 in unit fingers
/// (even finger counts so drains stay internal).
StackSpec mirrorSpec(int unit = 2) {
  StackSpec s;
  s.name = "mirror";
  s.type = tech::MosType::kNmos;
  s.unitWidth = 4e-6;
  s.drawnL = 1e-6;
  s.sourceNet = "gnd";
  s.dummyGateNet = "gnd";
  s.devices = {{"M1", 1 * unit, "d1", "gate", 50e-6},
               {"M2", 3 * unit, "d2", "gate", 150e-6},
               {"M3", 6 * unit, "d3", "gate", 300e-6}};
  return s;
}

StackSpec pairSpec(int fingers = 4) {
  StackSpec s;
  s.name = "pair";
  s.type = tech::MosType::kPmos;
  s.unitWidth = 5e-6;
  s.drawnL = 1e-6;
  s.sourceNet = "tail";
  s.dummyGateNet = "vdd";
  s.bulkNet = "tail";
  s.devices = {{"MA", fingers, "x1", "inp", 100e-6}, {"MB", fingers, "x2", "inn", 100e-6}};
  s.pattern = StackPattern::kCommonCentroid;
  return s;
}

TEST(StackPlanning, MirrorFingersAndStripsConsistent) {
  const StackPlan plan = planStack(mirrorSpec());
  // 20 device fingers + 2 end dummies.
  EXPECT_EQ(plan.fingers.size(), 22u);
  EXPECT_EQ(plan.stripNets.size(), 23u);
  EXPECT_EQ(plan.dummyCount, 2);
  // Finger counts per device.
  EXPECT_EQ(plan.metrics[0].fingers, 2);
  EXPECT_EQ(plan.metrics[1].fingers, 6);
  EXPECT_EQ(plan.metrics[2].fingers, 12);
}

TEST(StackPlanning, MirrorOrientationPerfectlyBalanced) {
  // All devices have even fingers arranged in pairs: zero imbalance, the
  // Malavasi-Pandini optimum.
  const StackPlan plan = planStack(mirrorSpec());
  for (const StackDeviceMetrics& m : plan.metrics) {
    EXPECT_EQ(m.orientationImbalance, 0);
  }
}

TEST(StackPlanning, MirrorDrainsAllInternal) {
  const StackPlan plan = planStack(mirrorSpec());
  for (const StackDeviceMetrics& m : plan.metrics) {
    EXPECT_EQ(m.externalDrainStrips, 0);
    EXPECT_EQ(m.internalDrainStrips, m.fingers / 2);
  }
}

TEST(StackPlanning, MirrorDevicesRoughlyCentred) {
  const StackPlan plan = planStack(mirrorSpec());
  const double span = static_cast<double>(plan.fingers.size());
  for (const StackDeviceMetrics& m : plan.metrics) {
    EXPECT_LT(m.centroidOffset, span / 4.0) << "device poorly centred";
  }
}

TEST(StackPlanning, OddFingersGetBridgeDummies) {
  StackSpec s = mirrorSpec();
  s.devices = {{"M1", 1, "d1", "gate", 10e-6}, {"M2", 3, "d2", "gate", 30e-6}};
  const StackPlan plan = planStack(s);
  // Two singles -> two bridge dummies + 2 end dummies.
  EXPECT_EQ(plan.dummyCount, 4);
  // Odd-fingered devices carry one unavoidable orientation imbalance.
  EXPECT_EQ(plan.metrics[0].orientationImbalance, 1);
  EXPECT_EQ(plan.metrics[1].orientationImbalance, 1);
  // Strip sequence stays consistent: every adjacent strip differs from its
  // finger's other side only via the planned nets.
  EXPECT_EQ(plan.stripNets.size(), plan.fingers.size() + 1);
}

TEST(StackPlanning, CommonCentroidIsAbba) {
  const StackPlan plan = planStack(pairSpec(2));  // One pair each + dummies.
  // Sequence (ignoring dummies): A A B B? No -- units are pairs: A-pair then
  // B-pair mirrored -> fingers A A B B B B A A for 4 fingers each... with 2
  // fingers each: A A B B | mirrored -> actually ABBA in units.
  std::vector<int> order;
  for (const StackFinger& f : plan.fingers) {
    if (f.device >= 0) order.push_back(f.device);
  }
  ASSERT_EQ(order.size(), 4u);
  // Unit-level ABBA: first unit A (2 fingers), second unit B (2 fingers) --
  // with one pair each the mirrored arrangement is A A B B reversed = ABBA
  // at unit granularity.
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[3], 1);
}

TEST(StackPlanning, CommonCentroidCentroidsCoincide) {
  for (int fingers : {2, 4, 8}) {
    const StackPlan plan = planStack(pairSpec(fingers));
    EXPECT_NEAR(plan.metrics[0].centroidOffset, plan.metrics[1].centroidOffset, 1e-9)
        << fingers;
    EXPECT_EQ(plan.metrics[0].orientationImbalance, 0);
    EXPECT_EQ(plan.metrics[1].orientationImbalance, 0);
  }
}

TEST(StackPlanning, RejectsBadConfigs) {
  StackSpec s = mirrorSpec();
  s.devices.clear();
  EXPECT_THROW((void)planStack(s), std::invalid_argument);

  s = mirrorSpec();
  s.devices[0].fingers = 0;
  EXPECT_THROW((void)planStack(s), std::invalid_argument);

  s = mirrorSpec();
  s.devices[0].gateNet = "a";
  s.devices[1].gateNet = "b";
  s.devices[2].gateNet = "c";
  EXPECT_THROW((void)planStack(s), std::invalid_argument);

  s = pairSpec(3);  // Odd fingers: no common centroid.
  EXPECT_THROW((void)planStack(s), std::invalid_argument);
}

TEST(StackPlanning, CommonCentroidErrorsNameTheOffendingDevices) {
  auto messageOf = [](const StackSpec& s) -> std::string {
    try {
      (void)planStack(s);
    } catch (const std::invalid_argument& e) {
      return e.what();
    }
    return {};
  };

  StackSpec odd = pairSpec(3);
  const std::string oddMsg = messageOf(odd);
  EXPECT_NE(oddMsg.find("'pair'"), std::string::npos) << oddMsg;
  EXPECT_NE(oddMsg.find("even"), std::string::npos) << oddMsg;
  EXPECT_NE(oddMsg.find("MA (nf=3)"), std::string::npos) << oddMsg;
  EXPECT_NE(oddMsg.find("MB (nf=3)"), std::string::npos) << oddMsg;

  StackSpec unequal = pairSpec(4);
  unequal.devices[1].fingers = 6;
  const std::string unequalMsg = messageOf(unequal);
  EXPECT_NE(unequalMsg.find("equal finger counts"), std::string::npos) << unequalMsg;
  EXPECT_NE(unequalMsg.find("MA (nf=4)"), std::string::npos) << unequalMsg;
  EXPECT_NE(unequalMsg.find("MB (nf=6)"), std::string::npos) << unequalMsg;

  StackSpec crowd = mirrorSpec();
  crowd.pattern = StackPattern::kCommonCentroid;
  const std::string crowdMsg = messageOf(crowd);
  EXPECT_NE(crowdMsg.find("exactly 2 devices, got 3"), std::string::npos) << crowdMsg;
  EXPECT_NE(crowdMsg.find("M3 (nf=12)"), std::string::npos) << crowdMsg;
}

TEST(StackJunctions, SharedSourceStripsSplitBetweenNeighbours) {
  StackSpec s = pairSpec(4);
  StackPlan plan = planStack(s);
  fillStackJunctions(kTech.rules, s, plan);
  const double eInt = nmToMeters(kTech.rules.sharedContactedDiffusionExtent());
  // Drain of each device: fingers/2 = 2 internal strips, fully owned.
  EXPECT_NEAR(plan.metrics[0].junctions.ad, 2 * eInt * s.unitWidth, 1e-18);
  // Total drawn diffusion is conserved across devices (dummy-adjacent strips
  // are attributed to the device side only).
  EXPECT_GT(plan.metrics[0].junctions.as, 0.0);
  EXPECT_NEAR(plan.metrics[0].junctions.as, plan.metrics[1].junctions.as,
              plan.metrics[0].junctions.as * 1e-9);
}

TEST(StackJunctions, StackSharingBeatsStandaloneDevices) {
  // The whole point of stacking: the same devices drawn standalone (one fold
  // each) carry much more source diffusion than in the shared stack.
  StackSpec s = mirrorSpec();
  StackPlan plan = planStack(s);
  fillStackJunctions(kTech.rules, s, plan);
  device::MosGeometry standalone;
  standalone.w = s.devices[2].fingers * s.unitWidth;
  standalone.l = s.drawnL;
  device::applyUnfoldedGeometry(kTech.rules, standalone);
  EXPECT_LT(plan.metrics[2].junctions.ad, 0.75 * standalone.ad);
  EXPECT_LT(plan.metrics[2].junctions.as, 0.85 * standalone.as);
}

TEST(StackGeometry, ExtentsMatchGeneratedBbox) {
  for (StackSpec s : {mirrorSpec(), pairSpec(4), pairSpec(8)}) {
    s.emitWellAndSelect = false;  // stackExtents describes the core stack.
    StackInfo info;
    const Cell cell = generateStack(kTech, s, &info);
    const StackExtents est = stackExtents(kTech, s);
    EXPECT_EQ(cell.bbox().width(), est.width) << s.name;
    EXPECT_EQ(cell.bbox().height(), est.height) << s.name;
  }
}

TEST(StackGeometry, MirrorIsDrcClean) {
  StackSpec s = mirrorSpec();
  s.emitWellAndSelect = true;
  const Cell cell = generateStack(kTech, s);
  const auto violations = runDrc(kTech, cell.shapes);
  EXPECT_TRUE(violations.empty()) << formatViolations(violations);
}

TEST(StackGeometry, PairIsDrcClean) {
  StackSpec s = pairSpec(4);
  s.emitWellAndSelect = true;
  const Cell cell = generateStack(kTech, s);
  const auto violations = runDrc(kTech, cell.shapes);
  EXPECT_TRUE(violations.empty()) << formatViolations(violations);
}

TEST(StackGeometry, PortsForEveryStripAndStrap) {
  StackSpec s = pairSpec(4);
  const Cell cell = generateStack(kTech, s);
  // 8 device fingers + 2 dummies = 10 fingers -> 11 strips.
  EXPECT_EQ(cell.portsOn("tail").size() + cell.portsOn("x1").size() +
                cell.portsOn("x2").size() + cell.portsOn("vdd").size(),
            11u + 1u);  // Strips + the dummy-gate strap port (vdd).
  EXPECT_EQ(cell.portsOn("inp").size(), 1u);
  EXPECT_EQ(cell.portsOn("inn").size(), 1u);
}

}  // namespace
}  // namespace lo::layout
