#include "device/mos_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "device/folding.hpp"
#include "device/inversion.hpp"
#include "tech/technology.hpp"
#include "tech/units.hpp"

namespace lo::device {
namespace {

tech::Technology tech060() { return tech::Technology::generic060(); }

MosGeometry defaultGeo(double w = 20e-6, double l = 1e-6) {
  MosGeometry g;
  g.w = w;
  g.l = l;
  applyUnfoldedGeometry(tech060().rules, g);
  return g;
}

// --- Properties shared by both models (parameterised suite). ---

class ModelProperties : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<MosModel> model_ = MosModel::create(GetParam());
  tech::Technology tech_ = tech060();
};

TEST_P(ModelProperties, CurrentIncreasesWithGateDrive) {
  const MosGeometry geo = defaultGeo();
  double prev = -1.0;
  for (double vgs = 0.5; vgs <= 3.0; vgs += 0.1) {
    const double id = model_->currentNormalized(tech_.nmos, geo, vgs, 2.0, 0.0, 300.15);
    EXPECT_GT(id, prev) << "vgs=" << vgs;
    prev = id;
  }
}

TEST_P(ModelProperties, CurrentIncreasesWithVds) {
  const MosGeometry geo = defaultGeo();
  double prev = 0.0;
  for (double vds = 0.05; vds <= 3.0; vds += 0.05) {
    const double id = model_->currentNormalized(tech_.nmos, geo, 1.5, vds, 0.0, 300.15);
    EXPECT_GT(id, prev) << "vds=" << vds;
    prev = id;
  }
}

TEST_P(ModelProperties, CurrentScalesLinearlyWithWidth) {
  MosGeometry geo = defaultGeo();
  const double i1 = model_->currentNormalized(tech_.nmos, geo, 1.5, 2.0, 0.0, 300.15);
  geo.w *= 3.0;
  const double i3 = model_->currentNormalized(tech_.nmos, geo, 1.5, 2.0, 0.0, 300.15);
  EXPECT_NEAR(i3 / i1, 3.0, 1e-9);
}

TEST_P(ModelProperties, SubthresholdCurrentIsTinyButPositive) {
  const MosGeometry geo = defaultGeo();
  const double idOn = model_->currentNormalized(tech_.nmos, geo, 1.5, 2.0, 0.0, 300.15);
  const double idOff = model_->currentNormalized(tech_.nmos, geo, 0.2, 2.0, 0.0, 300.15);
  EXPECT_GT(idOff, 0.0);
  EXPECT_LT(idOff, idOn * 1e-4);
}

TEST_P(ModelProperties, SourceDrainSymmetry) {
  const MosGeometry geo = defaultGeo();
  // Swapping source and drain negates the current: id(vgs,vds,vbs) with the
  // terminals exchanged equals -id measured from the other side.
  const double fwd = model_->currentNormalized(tech_.nmos, geo, 1.5, 1.0, -0.5, 300.15);
  const double rev = model_->currentNormalized(tech_.nmos, geo, 0.5, -1.0, -1.5, 300.15);
  EXPECT_NEAR(rev, -fwd, std::abs(fwd) * 1e-9);
}

TEST_P(ModelProperties, PmosMirrorsNmosBehaviour) {
  const MosGeometry geo = defaultGeo();
  const double idP =
      model_->drainCurrent(tech_.pmos, geo, -1.5, -2.0, 0.0, 300.15);
  EXPECT_LT(idP, 0.0);  // PMOS conducts negative drain current.
  const MosOpPoint op = model_->evaluate(tech_.pmos, geo, -1.5, -2.0, 0.0, 300.15);
  EXPECT_GT(op.gm, 0.0);
  EXPECT_GT(op.gds, 0.0);
  EXPECT_EQ(op.region, MosRegion::kSaturation);
}

TEST_P(ModelProperties, BodyEffectRaisesThreshold) {
  EXPECT_GT(model_->threshold(tech_.nmos, -1.0), model_->threshold(tech_.nmos, 0.0));
  EXPECT_GT(model_->threshold(tech_.nmos, -2.0), model_->threshold(tech_.nmos, -1.0));
}

TEST_P(ModelProperties, GmMatchesNumericalDerivative) {
  const MosGeometry geo = defaultGeo();
  const MosOpPoint op = model_->evaluate(tech_.nmos, geo, 1.2, 2.0, 0.0, 300.15);
  const double h = 1e-5;
  const double gmRef =
      (model_->currentNormalized(tech_.nmos, geo, 1.2 + h, 2.0, 0.0, 300.15) -
       model_->currentNormalized(tech_.nmos, geo, 1.2 - h, 2.0, 0.0, 300.15)) /
      (2 * h);
  EXPECT_NEAR(op.gm, gmRef, std::abs(gmRef) * 1e-3);
}

TEST_P(ModelProperties, LongerChannelLowersOutputConductance) {
  MosGeometry geo = defaultGeo();
  const MosOpPoint shortL = model_->evaluate(tech_.nmos, geo, 1.2, 2.0, 0.0, 300.15);
  geo.l = 4e-6;
  const MosOpPoint longL = model_->evaluate(tech_.nmos, geo, 1.2, 2.0, 0.0, 300.15);
  // gds/id (1/VA) must drop substantially with channel length.
  EXPECT_LT(longL.gds / longL.id, 0.5 * shortL.gds / shortL.id);
}

TEST_P(ModelProperties, JunctionCapsShrinkWithReverseBias) {
  const MosGeometry geo = defaultGeo();
  const MosOpPoint lowRev = model_->evaluate(tech_.nmos, geo, 1.2, 0.5, 0.0, 300.15);
  const MosOpPoint highRev = model_->evaluate(tech_.nmos, geo, 1.2, 3.0, 0.0, 300.15);
  EXPECT_LT(highRev.cdb, lowRev.cdb);
  EXPECT_DOUBLE_EQ(highRev.csb, lowRev.csb);  // Source bias unchanged.
}

TEST_P(ModelProperties, NoisePsdsArePhysical) {
  const MosGeometry geo = defaultGeo();
  const MosOpPoint op = model_->evaluate(tech_.nmos, geo, 1.2, 2.0, 0.0, 300.15);
  // Thermal PSD ~ 4kT(2/3)gm.
  const double expected = 4.0 * kBoltzmann * 300.15 * (2.0 / 3.0) * op.gm;
  EXPECT_NEAR(op.thermalNoisePsd, expected, expected * 0.01);
  EXPECT_GT(op.flickerCoeff, 0.0);
}

TEST_P(ModelProperties, TriodeVsSaturationRegionLabels) {
  const MosGeometry geo = defaultGeo();
  EXPECT_EQ(model_->evaluate(tech_.nmos, geo, 2.0, 0.05, 0.0, 300.15).region,
            MosRegion::kTriode);
  EXPECT_EQ(model_->evaluate(tech_.nmos, geo, 1.2, 2.5, 0.0, 300.15).region,
            MosRegion::kSaturation);
  EXPECT_EQ(model_->evaluate(tech_.nmos, geo, 0.0, 2.5, 0.0, 300.15).region,
            MosRegion::kCutoff);
}

INSTANTIATE_TEST_SUITE_P(AllModels, ModelProperties, ::testing::Values("level1", "ekv"));

// --- Model-specific checks. ---

TEST(Level1, SquareLawInStrongInversion) {
  const tech::Technology t = tech060();
  Level1Model model;
  const MosGeometry geo = defaultGeo(100e-6, 2e-6);
  // With theta and CLM disabled the current must follow (KP/2)(W/Leff)Veff^2.
  tech::MosModelCard card = t.nmos;
  card.theta = 0.0;
  card.earlyPerMeter = 1e12;  // No CLM.
  const double veff = 0.5;
  const double vgs = card.vto + veff;
  const double id = model.currentNormalized(card, geo, vgs, 2.0, 0.0, 300.15);
  const double expected = 0.5 * card.kp * geo.w / card.leff(geo.l) * veff * veff;
  EXPECT_NEAR(id, expected, expected * 0.02);
}

TEST(Ekv, WeakInversionSlopeIsExponential) {
  const tech::Technology t = tech060();
  EkvModel model;
  const MosGeometry geo = defaultGeo();
  // 100 mV of gate drive deep in weak inversion must change the current by
  // about exp(0.1 / (n vt)).
  const double i1 = model.currentNormalized(t.nmos, geo, 0.30, 1.0, 0.0, 300.15);
  const double i2 = model.currentNormalized(t.nmos, geo, 0.40, 1.0, 0.0, 300.15);
  const double n = EkvModel::slopeFactorAt(t.nmos, EkvModel::pinchOff(t.nmos, 0.35));
  const double expectedRatio = std::exp(0.1 / (n * thermalVoltage()));
  EXPECT_NEAR(std::log(i2 / i1), std::log(expectedRatio), 0.35);
}

TEST(MosModelFactory, RejectsUnknownName) {
  EXPECT_THROW((void)MosModel::create("bsim4"), std::invalid_argument);
}

// --- Inversion helpers. ---

TEST(Inversion, WidthForCurrentHitsTarget) {
  const tech::Technology t = tech060();
  const auto model = MosModel::create("level1");
  MosGeometry geo = defaultGeo();
  const double target = 150e-6;
  const double w = widthForCurrent(*model, t.nmos, geo, target, 1.3, 1.5, 0.0);
  geo.w = w;
  const double id = model->currentNormalized(t.nmos, geo, 1.3, 1.5, 0.0, 300.15);
  EXPECT_NEAR(id, target, target * 1e-6);
}

TEST(Inversion, VgsForCurrentHitsTarget) {
  const tech::Technology t = tech060();
  const auto model = MosModel::create("ekv");
  const MosGeometry geo = defaultGeo();
  const double target = 80e-6;
  const double vgs = vgsForCurrent(*model, t.nmos, geo, target, 1.5, 0.0, 3.3);
  const double id = model->currentNormalized(t.nmos, geo, vgs, 1.5, 0.0, 300.15);
  EXPECT_NEAR(id, target, target * 1e-6);
}

TEST(Inversion, VgsForCurrentThrowsWhenUnreachable) {
  const tech::Technology t = tech060();
  const auto model = MosModel::create("level1");
  MosGeometry geo = defaultGeo(1e-6, 1e-6);
  EXPECT_THROW((void)vgsForCurrent(*model, t.nmos, geo, 1.0, 1.5, 0.0, 3.3),
               std::runtime_error);
}

TEST(Inversion, SizeForGmMeetsBothTargets) {
  const tech::Technology t = tech060();
  const auto model = MosModel::create("level1");
  MosGeometry geo = defaultGeo();
  const double targetGm = 1.3e-3, targetId = 100e-6;
  const GmSizing s = sizeForGm(*model, t.nmos, geo, targetGm, targetId, 1.5, 0.0);
  EXPECT_NEAR(s.gm, targetGm, targetGm * 1e-3);
  geo.w = s.w;
  const double id = model->currentNormalized(t.nmos, geo, s.vgs, 1.5, 0.0, 300.15);
  EXPECT_NEAR(id, targetId, targetId * 1e-4);
}

TEST(Inversion, RejectsNonPositiveTargets) {
  const tech::Technology t = tech060();
  const auto model = MosModel::create("level1");
  MosGeometry geo = defaultGeo();
  EXPECT_THROW((void)widthForCurrent(*model, t.nmos, geo, -1e-6, 1.3, 1.5, 0.0),
               std::invalid_argument);
  EXPECT_THROW((void)sizeForGm(*model, t.nmos, geo, 0.0, 1e-6, 1.5, 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace lo::device
