#include "layout/ota_layout.hpp"

#include <gtest/gtest.h>

#include "circuit/circuit.hpp"
#include "layout/drc.hpp"

namespace lo::layout {
namespace {

const tech::Technology kTech = tech::Technology::generic060();

/// A plausibly sized OTA (exact sizing quality does not matter here).
circuit::FoldedCascodeOtaDesign testDesign() {
  circuit::FoldedCascodeOtaDesign d;
  auto setW = [](device::MosGeometry& g, double w, double l) {
    g.w = w;
    g.l = l;
  };
  setW(d.inputPair, 120e-6, 1e-6);
  setW(d.tail, 80e-6, 2e-6);
  setW(d.sink, 60e-6, 1.5e-6);
  setW(d.nCascode, 40e-6, 0.8e-6);
  setW(d.pSource, 90e-6, 1.5e-6);
  setW(d.pCascode, 70e-6, 0.8e-6);
  d.tailCurrent = 200e-6;
  d.cascodeCurrent = 110e-6;
  return d;
}

TEST(OtaLayout, ParasiticModeReportsEverything) {
  const OtaLayoutResult r =
      generateOtaLayout(kTech, testDesign(), OtaLayoutOptions{}, /*generateGeometry=*/false);
  // Fold plans for all six matched groups.
  EXPECT_EQ(r.foldPlans.size(), 6u);
  EXPECT_EQ(r.junctions.size(), 6u);
  // Parasitic mode keeps no geometry.
  EXPECT_TRUE(r.cell.shapes.empty());
  // The critical nets all have routing capacitance.
  for (const char* net : {"x1", "x2", "y1", "out", "tail"}) {
    EXPECT_GT(r.parasitics.capOn(net), 0.0) << net;
    EXPECT_LT(r.parasitics.capOn(net), 1e-12) << net;  // Sub-pF sanity.
  }
  // Floating well of the input pair shows up on the tail net.
  EXPECT_GT(r.parasitics.nets.at("tail").wellCap, 10e-15);
}

TEST(OtaLayout, DrainInternalPolicyGivesEvenFoldsEverywhere) {
  const OtaLayoutResult r =
      generateOtaLayout(kTech, testDesign(), OtaLayoutOptions{}, false);
  for (const auto& [group, plan] : r.foldPlans) {
    EXPECT_EQ(plan.nf % 2, 0) << circuit::otaGroupName(group);
  }
  // Junction check: drain area is the internal-strip value.
  const auto& nc = r.junctions.at(circuit::OtaGroup::kNCascode);
  EXPECT_LT(nc.ad, nc.as);
}

TEST(OtaLayout, SymmetricDevicesShareFoldCounts) {
  const OtaLayoutResult r =
      generateOtaLayout(kTech, testDesign(), OtaLayoutOptions{}, false);
  // Matched groups share one plan by construction; verify the floorplan kept
  // mirror positions symmetric: MP3C and MP4C have equal widths.
  const auto& fp = r.floorplan;
  EXPECT_EQ(fp.leaves.at("MP3C").rect.width(), fp.leaves.at("MP4C").rect.width());
  EXPECT_EQ(fp.leaves.at("MP3").rect.width(), fp.leaves.at("MP4").rect.width());
  EXPECT_EQ(fp.leaves.at("MN1C").rect.width(), fp.leaves.at("MN2C").rect.width());
  EXPECT_EQ(fp.leaves.at("MP3C").tag, fp.leaves.at("MP4C").tag);
}

TEST(OtaLayout, ShapeConstraintChangesFloorplan) {
  OtaLayoutOptions wide;
  wide.shape = ShapeConstraint{};
  wide.shape.aspectRatio = 3.0;
  OtaLayoutOptions tall;
  tall.shape = ShapeConstraint{};
  tall.shape.aspectRatio = 0.4;
  const OtaLayoutResult rw = generateOtaLayout(kTech, testDesign(), wide, false);
  const OtaLayoutResult rt = generateOtaLayout(kTech, testDesign(), tall, false);
  const double ratioW = static_cast<double>(rw.width) / rw.height;
  const double ratioT = static_cast<double>(rt.width) / rt.height;
  EXPECT_GT(ratioW, ratioT);
}

TEST(OtaLayout, GenerationModeEmitsGeometryMatchingEstimate) {
  const OtaLayoutResult est =
      generateOtaLayout(kTech, testDesign(), OtaLayoutOptions{}, false);
  const OtaLayoutResult gen =
      generateOtaLayout(kTech, testDesign(), OtaLayoutOptions{}, true);
  EXPECT_FALSE(gen.cell.shapes.empty());
  // Same fold decisions in both modes.
  for (const auto& [group, plan] : est.foldPlans) {
    EXPECT_EQ(plan.nf, gen.foldPlans.at(group).nf) << circuit::otaGroupName(group);
  }
  // Identical parasitic reports: the parasitic mode is exact, not an
  // estimate (the paper's convergence criterion depends on this).
  for (const auto& [net, par] : est.parasitics.nets) {
    EXPECT_DOUBLE_EQ(par.totalCap(), gen.parasitics.capOn(net)) << net;
  }
}

TEST(OtaLayout, PairMatchingMetrics) {
  const OtaLayoutResult r =
      generateOtaLayout(kTech, testDesign(), OtaLayoutOptions{}, false);
  EXPECT_EQ(r.pairPlan.metrics[0].orientationImbalance, 0);
  EXPECT_EQ(r.pairPlan.metrics[1].orientationImbalance, 0);
  EXPECT_NEAR(r.pairPlan.metrics[0].centroidOffset, r.pairPlan.metrics[1].centroidOffset,
              1e-9);
  EXPECT_GE(r.pairPlan.dummyCount, 2);
}

TEST(OtaLayout, AlternatingAblationRaisesDrainCap) {
  OtaLayoutOptions internal;
  OtaLayoutOptions alternating;
  alternating.foldStyle = device::FoldStyle::kAlternating;
  const OtaLayoutResult ri = generateOtaLayout(kTech, testDesign(), internal, false);
  const OtaLayoutResult ra = generateOtaLayout(kTech, testDesign(), alternating, false);
  // The cascade devices' drain capacitance area must be no better (usually
  // worse) without the internal-drain policy.
  const auto& di = ri.junctions.at(circuit::OtaGroup::kNCascode);
  const auto& da = ra.junctions.at(circuit::OtaGroup::kNCascode);
  EXPECT_GE(da.ad / da.w, di.ad / di.w * 0.999);
}

TEST(OtaLayout, PlacementReportsConstraintDerivedRows) {
  const OtaLayoutResult r =
      generateOtaLayout(kTech, testDesign(), OtaLayoutOptions{}, false);
  // Fig. 5's three diffusion rows, bottom to top: NMOS core, the pair's
  // floating-well stack, the VDD PMOS row.
  ASSERT_EQ(r.placement.rows.size(), 3u);
  EXPECT_EQ(r.placement.rows[0].kind, RowKind::kNmos);
  EXPECT_EQ(r.placement.rows[0].items,
            (std::vector<std::string>{"MN1C", "SINK", "MN2C"}));
  EXPECT_EQ(r.placement.rows[1].kind, RowKind::kPmos);
  EXPECT_EQ(r.placement.rows[1].wellNet, "tail");
  EXPECT_EQ(r.placement.rows[1].items, (std::vector<std::string>{"PAIR"}));
  EXPECT_EQ(r.placement.rows[2].kind, RowKind::kPmos);
  EXPECT_EQ(r.placement.rows[2].wellNet, "vdd");
  EXPECT_EQ(r.placement.rows[2].items,
            (std::vector<std::string>{"MP3C", "MP3", "MP5", "MP4", "MP4C"}));
  EXPECT_EQ(r.placement.floorplan.width, r.floorplan.width);
  EXPECT_GT(r.placement.scoreNm2, r.placement.floorplan.areaNm2());
}

TEST(OtaLayout, DeclaredPlacementPassesSymmetryAudit) {
  const OtaLayoutOptions options;
  const OtaLayoutResult r = generateOtaLayout(kTech, testDesign(), options, false);
  const ConstraintSet constraints = otaPlacementConstraints(options, /*includeBias=*/false);
  const auto violations = auditSymmetry(constraints, r.floorplan.leaves, kTech.rules.grid);
  EXPECT_TRUE(violations.empty()) << formatViolations(violations);
}

TEST(OtaLayout, SeededPlacerKeepsSymmetryAndNeverLoses) {
  OtaLayoutOptions seeded;
  seeded.placerSearch = RowSearch::kSeeded;
  seeded.placerSeed = 11;
  seeded.placerCandidates = 24;
  const OtaLayoutResult rd =
      generateOtaLayout(kTech, testDesign(), OtaLayoutOptions{}, false);
  const OtaLayoutResult rs = generateOtaLayout(kTech, testDesign(), seeded, false);
  EXPECT_LE(rs.placement.scoreNm2, rd.placement.scoreNm2);
  const auto& fp = rs.floorplan;
  EXPECT_EQ(fp.leaves.at("MP3C").rect.width(), fp.leaves.at("MP4C").rect.width());
  const ConstraintSet constraints = otaPlacementConstraints(seeded, false);
  EXPECT_TRUE(auditSymmetry(constraints, fp.leaves, kTech.rules.grid).empty());
}

// Satellite requirement: the mirrored placement is electrically matched --
// the two symmetric cascode nets see the same routed wire resistance, so
// the annotated circuit carries equal RPAR_ elements on both sides.
TEST(OtaLayout, MirroredPlacementMatchesWireResistances) {
  const OtaLayoutResult r =
      generateOtaLayout(kTech, testDesign(), OtaLayoutOptions{}, /*generateGeometry=*/true);
  const double resX1 = r.parasitics.nets.at("x1").routingRes;
  const double resX2 = r.parasitics.nets.at("x2").routingRes;
  ASSERT_GT(resX1, 0.0);
  EXPECT_NEAR(resX1, resX2, 0.02 * resX1);

  circuit::Circuit c;
  (void)c.node("x1");
  (void)c.node("x2");
  annotateCircuit(c, r.parasitics, /*minSeriesRes=*/1e-6);
  double rparX1 = -1.0, rparX2 = -1.0;
  for (const auto& res : c.resistors) {
    if (res.name == "RPAR_x1") rparX1 = res.ohms;
    if (res.name == "RPAR_x2") rparX2 = res.ohms;
  }
  ASSERT_GT(rparX1, 0.0);
  ASSERT_GT(rparX2, 0.0);
  EXPECT_NEAR(rparX1, rparX2, 0.02 * rparX1);
}

TEST(OtaLayout, GeneratedLayoutHasNoShorts) {
  const OtaLayoutResult gen =
      generateOtaLayout(kTech, testDesign(), OtaLayoutOptions{}, true);
  const auto violations = runDrc(kTech, gen.cell.shapes);
  std::vector<DrcViolation> shorts;
  for (const DrcViolation& v : violations) {
    if (v.detail.find("short") != std::string::npos) shorts.push_back(v);
  }
  EXPECT_TRUE(shorts.empty()) << formatViolations(shorts);
}

}  // namespace
}  // namespace lo::layout
