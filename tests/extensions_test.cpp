// Tests for the extension features: GDSII output, wiring resistance,
// process corners, and Monte-Carlo statistical verification.
#include <gtest/gtest.h>

#include <cstring>

#include "core/flow.hpp"
#include "layout/writers.hpp"
#include "sizing/montecarlo.hpp"
#include "sizing/ota_sizer.hpp"
#include "layout/drc.hpp"
#include "sim/op_report.hpp"
#include "sizing/two_stage.hpp"

namespace lo {
namespace {

const tech::Technology kTech = tech::Technology::generic060();

// --- GDSII writer. ---

TEST(Gds, StreamStructure) {
  geom::ShapeList shapes;
  shapes.add(tech::Layer::kMetal1, geom::Rect(0, 0, 1000, 2000));
  shapes.add(tech::Layer::kPoly, geom::Rect(-500, 0, 100, 600));
  const std::string gds = layout::toGds(shapes, "CELL");

  // HEADER record: length 6, type 0x00, data type 0x02, version 600.
  ASSERT_GE(gds.size(), 6u);
  EXPECT_EQ(static_cast<unsigned char>(gds[0]), 0x00);
  EXPECT_EQ(static_cast<unsigned char>(gds[1]), 0x06);
  EXPECT_EQ(static_cast<unsigned char>(gds[2]), 0x00);
  EXPECT_EQ(static_cast<unsigned char>(gds[3]), 0x02);
  // Ends with ENDLIB (0x04).
  EXPECT_EQ(static_cast<unsigned char>(gds[gds.size() - 2]), 0x04);

  // Walk the records: count BOUNDARY (0x08) elements == shapes.
  std::size_t pos = 0;
  int boundaries = 0;
  bool sawUnits = false, sawStrname = false;
  while (pos + 4 <= gds.size()) {
    const std::size_t len = (static_cast<unsigned char>(gds[pos]) << 8) |
                            static_cast<unsigned char>(gds[pos + 1]);
    const unsigned char type = gds[pos + 2];
    if (type == 0x08) ++boundaries;
    if (type == 0x03) sawUnits = true;
    if (type == 0x06) {
      sawStrname = true;
      EXPECT_EQ(gds.substr(pos + 4, 4), "CELL");
    }
    ASSERT_GE(len, 4u);
    pos += len;
  }
  EXPECT_EQ(pos, gds.size());  // Records tile the stream exactly.
  EXPECT_EQ(boundaries, 2);
  EXPECT_TRUE(sawUnits);
  EXPECT_TRUE(sawStrname);
}

TEST(Gds, Real8EncodingOfUnits) {
  // The UNITS record must carry 1e-3 and 1e-9 in GDS real8.  Spot-check the
  // canonical encoding of 1e-3: 0x3E 0x41 0x89 0x37 0x4B 0xC6 0xA7 0xEF.
  geom::ShapeList shapes;
  shapes.add(tech::Layer::kMetal1, geom::Rect(0, 0, 10, 10));
  const std::string gds = layout::toGds(shapes);
  const std::size_t unitsPos = gds.find(std::string("\x00\x14\x03\x05", 4));
  ASSERT_NE(unitsPos, std::string::npos);
  const unsigned char* u =
      reinterpret_cast<const unsigned char*>(gds.data()) + unitsPos + 4;
  EXPECT_EQ(u[0], 0x3e);
  EXPECT_EQ(u[1], 0x41);
  EXPECT_EQ(u[2], 0x89);
}

TEST(Gds, LayerNumbersAreUniqueAndStable) {
  std::set<int> seen;
  for (tech::Layer l : tech::kAllLayers) {
    EXPECT_TRUE(seen.insert(layout::gdsLayerNumber(l)).second);
  }
  EXPECT_EQ(layout::gdsLayerNumber(tech::Layer::kMetal1), 7);
}

// --- Wiring resistance extraction. ---

TEST(Resistance, TrunkResistanceScalesWithLength) {
  layout::Cell c;
  for (int i = 0; i < 2; ++i) {
    c.addPort("a", tech::Layer::kMetal1,
              geom::Rect(i * 100000, 0, i * 100000 + 1000, 1000));
    c.addPort("b", tech::Layer::kMetal1,
              geom::Rect(i * 400000, 5000, i * 400000 + 1000, 6000));
  }
  const auto r = layout::routeCell(kTech, c, {{"a", 0.0}, {"b", 0.0}}, false);
  const auto* a = r.find("a");
  const auto* b = r.find("b");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  // 4x the span; the constant via-stack term dilutes the ratio.
  EXPECT_GT(b->resistanceOhm, 2.0 * a->resistanceOhm);
  // 100 um of 1 um metal1 at 0.07 ohm/sq is about 7 ohm.
  EXPECT_GT(a->resistanceOhm, 2.0);
  EXPECT_LT(a->resistanceOhm, 30.0);
}

TEST(Resistance, ReportCarriesRoutingResistance) {
  const core::FlowOptions opt;
  core::SynthesisFlow flow(kTech, opt);
  const auto r = flow.run(sizing::OtaSpecs{});
  for (const char* net : {"x1", "out", "tail"}) {
    ASSERT_TRUE(r.layout.parasitics.nets.count(net)) << net;
    EXPECT_GT(r.layout.parasitics.nets.at(net).routingRes, 0.1) << net;
    EXPECT_LT(r.layout.parasitics.nets.at(net).routingRes, 500.0) << net;
  }
}

// --- Process corners. ---

TEST(Corners, ShiftDirections) {
  const tech::Technology ss = kTech.atCorner(tech::ProcessCorner::kSlow);
  const tech::Technology ff = kTech.atCorner(tech::ProcessCorner::kFast);
  EXPECT_GT(ss.nmos.vto, kTech.nmos.vto);
  EXPECT_LT(ss.nmos.kp, kTech.nmos.kp);
  EXPECT_LT(ff.pmos.vto, kTech.pmos.vto);
  EXPECT_GT(ff.pmos.kp, kTech.pmos.kp);
  const tech::Technology sf = kTech.atCorner(tech::ProcessCorner::kSlowNFastP);
  EXPECT_GT(sf.nmos.vto, kTech.nmos.vto);
  EXPECT_LT(sf.pmos.vto, kTech.pmos.vto);
  EXPECT_EQ(sf.name, "generic060_sf");
}

TEST(Corners, DesignSurvivesAllCorners) {
  // Design at typical, verify the extracted netlist at every corner: the
  // amplifier must stay functional (this is the statistical-reliability
  // angle of the paper's verification interface).
  core::FlowOptions opt;
  core::SynthesisFlow flow(kTech, opt);
  const auto r = flow.run(sizing::OtaSpecs{});
  const auto model = device::MosModel::create("ekv");

  // Same-direction corners keep the branch currents balanced, so the fixed
  // (ideal) bias voltages still hold the amplifier together.  Cross corners
  // (sf/fs) unbalance the PMOS sources against the NMOS sinks and need a
  // tracking bias generator -- with ideal ground-referenced biases the
  // output saturates, which we assert below as the documented limitation.
  double gbwSlow = 0.0, gbwFast = 0.0;
  for (tech::ProcessCorner c : {tech::ProcessCorner::kSlow, tech::ProcessCorner::kTypical,
                                tech::ProcessCorner::kFast}) {
    const tech::Technology corner = kTech.atCorner(c);
    sizing::OtaVerifier verifier(corner, *model);
    const auto m = verifier.verify(r.extractedDesign, &r.layout.parasitics);
    EXPECT_GT(m.dcGainDb, 55.0) << tech::cornerName(c);
    EXPECT_GT(m.phaseMarginDeg, 45.0) << tech::cornerName(c);
    EXPECT_GT(m.gbwHz, 30e6) << tech::cornerName(c);
    if (c == tech::ProcessCorner::kSlow) gbwSlow = m.gbwHz;
    if (c == tech::ProcessCorner::kFast) gbwFast = m.gbwHz;
  }
  EXPECT_LT(gbwSlow, gbwFast);
  // Cross corners still simulate (no convergence failure), even though the
  // fixed biases cannot keep the output in range.
  for (tech::ProcessCorner c :
       {tech::ProcessCorner::kSlowNFastP, tech::ProcessCorner::kFastNSlowP}) {
    const tech::Technology corner = kTech.atCorner(c);
    sizing::OtaVerifier verifier(corner, *model);
    EXPECT_NO_THROW((void)verifier.verify(r.extractedDesign, &r.layout.parasitics))
        << tech::cornerName(c);
  }
}

TEST(Corners, BiasGeneratorRescuesCrossCorners) {
  // With the transistor-level bias generator the bias voltages track the
  // process, so even the cross corners that break fixed ideal biases keep
  // the amplifier healthy.
  core::FlowOptions opt;
  core::SynthesisFlow flow(kTech, opt);
  const auto r = flow.run(sizing::OtaSpecs{});
  const auto bias = sizing::designOtaBias(kTech, flow.model(), r.extractedDesign);
  for (tech::ProcessCorner c :
       {tech::ProcessCorner::kTypical, tech::ProcessCorner::kSlow,
        tech::ProcessCorner::kFast, tech::ProcessCorner::kSlowNFastP,
        tech::ProcessCorner::kFastNSlowP}) {
    const tech::Technology corner = kTech.atCorner(c);
    const auto m = sizing::measureAmplifier(
        corner, flow.model(),
        [&](circuit::Circuit& ck) {
          circuit::instantiateOtaWithBias(ck, r.extractedDesign, bias);
        },
        r.extractedDesign.inputCm, r.extractedDesign.vdd, &r.layout.parasitics);
    EXPECT_GT(m.dcGainDb, 60.0) << tech::cornerName(c);
    EXPECT_GT(m.phaseMarginDeg, 55.0) << tech::cornerName(c);
    EXPECT_NEAR(m.gbwHz, 65e6, 65e6 * 0.12) << tech::cornerName(c);
  }
}

TEST(Corners, BiasGeneratorMatchesIdealBiasAtTypical) {
  core::FlowOptions opt;
  core::SynthesisFlow flow(kTech, opt);
  const auto r = flow.run(sizing::OtaSpecs{});
  const auto bias = sizing::designOtaBias(kTech, flow.model(), r.extractedDesign);
  const auto m = sizing::measureAmplifier(
      kTech, flow.model(),
      [&](circuit::Circuit& ck) {
        circuit::instantiateOtaWithBias(ck, r.extractedDesign, bias);
      },
      r.extractedDesign.inputCm, r.extractedDesign.vdd, &r.layout.parasitics);
  // Within a few percent of the ideal-bias measurement.
  EXPECT_NEAR(m.gbwHz, r.measured.gbwHz, r.measured.gbwHz * 0.06);
  EXPECT_NEAR(m.dcGainDb, r.measured.dcGainDb, 1.5);
  // The generator's four reference legs cost a little extra power.
  EXPECT_GT(m.powerMw, r.measured.powerMw);
  EXPECT_LT(m.powerMw, r.measured.powerMw + 4.0 * bias.biasCurrent * 3.3 * 1e3 + 0.05);
}

TEST(Corners, FlowDrawsTheBiasGenerator) {
  core::FlowOptions opt;
  opt.includeBiasGenerator = true;
  core::SynthesisFlow flow(kTech, opt);
  const auto r = flow.run(sizing::OtaSpecs{});
  // Bias devices drawn and DRC-clean.
  EXPECT_TRUE(r.layout.floorplan.leaves.count("MNB1"));
  EXPECT_TRUE(r.layout.floorplan.leaves.count("MPB2"));
  const auto violations = layout::runDrc(kTech, r.layout.cell.shapes);
  std::size_t shorts = 0;
  for (const auto& v : violations) {
    if (v.detail.find("short") != std::string::npos) ++shorts;
  }
  EXPECT_EQ(shorts, 0u);
  // Verified with the generator in the loop; bias nets now carry routing
  // parasitics.
  EXPECT_NEAR(r.measured.gbwHz, 65e6, 65e6 * 0.06);
  EXPECT_GT(r.layout.parasitics.capOn("vbn"), 1e-15);
  EXPECT_GT(r.bias.biasCurrent, 1e-6);
}

// --- Monte Carlo. ---

TEST(MonteCarlo, OffsetSpreadScalesWithMismatch) {
  core::FlowOptions opt;
  core::SynthesisFlow flow(kTech, opt);
  const auto r = flow.run(sizing::OtaSpecs{});

  sizing::MonteCarloOptions small;
  small.samples = 25;
  small.avt = 5e-9;
  sizing::MonteCarloOptions big = small;
  big.avt = 20e-9;
  const auto rs = sizing::runMonteCarlo(kTech, flow.model(), r.extractedDesign,
                                        &r.layout.parasitics, small);
  const auto rb = sizing::runMonteCarlo(kTech, flow.model(), r.extractedDesign,
                                        &r.layout.parasitics, big);
  EXPECT_EQ(rs.failures, 0);
  EXPECT_EQ(static_cast<int>(rs.offsetsMv.size()), small.samples);
  EXPECT_GT(rb.offsetSigmaMv, 2.0 * rs.offsetSigmaMv);
  // Random offset sigma in a sane band for these device areas.
  EXPECT_GT(rs.offsetSigmaMv, 0.01);
  EXPECT_LT(rs.offsetSigmaMv, 10.0);
}

TEST(MonteCarlo, Deterministic) {
  core::FlowOptions opt;
  core::SynthesisFlow flow(kTech, opt);
  const auto r = flow.run(sizing::OtaSpecs{});
  sizing::MonteCarloOptions mc;
  mc.samples = 10;
  const auto a = sizing::runMonteCarlo(kTech, flow.model(), r.extractedDesign, nullptr, mc);
  const auto b = sizing::runMonteCarlo(kTech, flow.model(), r.extractedDesign, nullptr, mc);
  ASSERT_EQ(a.offsetsMv.size(), b.offsetsMv.size());
  for (std::size_t i = 0; i < a.offsetsMv.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.offsetsMv[i], b.offsetsMv[i]);
  }
}

// --- Usable range (input CM range / output swing intersection). ---

TEST(Range, BufferTracksInsideTheDesignWindow) {
  core::FlowOptions opt;
  core::SynthesisFlow flow(kTech, opt);
  const auto r = flow.run(sizing::OtaSpecs{});
  const auto range = sizing::measureUsableRange(
      kTech, flow.model(),
      [&](circuit::Circuit& ck) { circuit::instantiateOta(ck, r.extractedDesign); },
      r.extractedDesign.vdd);
  // A healthy window around the design common mode.
  EXPECT_LT(range.low, 1.0);
  EXPECT_GT(range.high, 1.6);
  EXPECT_GT(range.span(), 0.8);
  // The design common mode sits inside it.
  EXPECT_GT(r.extractedDesign.inputCm, range.low);
  EXPECT_LT(r.extractedDesign.inputCm, range.high);
}

TEST(Range, TwoStageBufferHasItsOwnWindow) {
  const auto model = device::MosModel::create("ekv");
  sizing::TwoStageSizer sizer(kTech, *model);
  sizing::OtaSpecs specs;
  specs.gbw = 30e6;
  const auto r = sizer.size(specs, sizing::SizingPolicy::case2());
  const auto range = sizing::measureUsableRange(
      kTech, *model,
      [&](circuit::Circuit& ck) { circuit::instantiateTwoStage(ck, r.design); },
      r.design.vdd);
  EXPECT_GT(range.span(), 0.5);
  EXPECT_GT(r.design.inputCm, range.low);
  EXPECT_LT(r.design.inputCm, range.high);
}

// --- Temperature dependence. ---

TEST(Temperature, StrongInversionCurrentDropsWithHeat) {
  // Mobility degradation dominates at high gate drive.
  const auto model = device::MosModel::create("ekv");
  device::MosGeometry geo;
  geo.w = 20e-6;
  geo.l = 1e-6;
  device::applyUnfoldedGeometry(kTech.rules, geo);
  const double cold = model->currentNormalized(kTech.nmos, geo, 2.0, 2.0, 0.0, 273.15);
  const double hot = model->currentNormalized(kTech.nmos, geo, 2.0, 2.0, 0.0, 398.15);
  EXPECT_LT(hot, cold * 0.75);
}

TEST(Temperature, SubthresholdCurrentRisesWithHeat) {
  // Threshold reduction wins near/below threshold.
  const auto model = device::MosModel::create("ekv");
  device::MosGeometry geo;
  geo.w = 20e-6;
  geo.l = 1e-6;
  device::applyUnfoldedGeometry(kTech.rules, geo);
  const double cold = model->currentNormalized(kTech.nmos, geo, 0.6, 2.0, 0.0, 273.15);
  const double hot = model->currentNormalized(kTech.nmos, geo, 0.6, 2.0, 0.0, 398.15);
  EXPECT_GT(hot, cold * 1.5);
}

TEST(Temperature, VerificationFollowsTechnologyTemperature) {
  core::FlowOptions opt;
  core::SynthesisFlow flow(kTech, opt);
  const auto r = flow.run(sizing::OtaSpecs{});
  tech::Technology hot = kTech;
  hot.temperature = 273.15 + 125.0;
  sizing::OtaVerifier hotVerifier(hot, flow.model());
  const auto m = hotVerifier.verify(r.extractedDesign, &r.layout.parasitics);
  // The amplifier must survive 125 C with degraded but sane numbers, and the
  // hot run must differ measurably from nominal.
  EXPECT_GT(m.dcGainDb, 55.0);
  EXPECT_GT(m.gbwHz, 30e6);
  // The fixed gate biases sit near the zero-temperature-coefficient point
  // (mobility loss compensates the threshold drop), so the GBW shift is
  // small but must be nonzero.
  EXPECT_GT(std::abs(m.gbwHz - r.measured.gbwHz), 1e5);
  // Thermal noise grows roughly as sqrt(T).
  EXPECT_GT(m.thermalNoiseDensityNv, r.measured.thermalNoiseDensityNv);
}

// --- Operating-point report. ---

TEST(OpReport, ListsEveryDeviceAndNode) {
  core::FlowOptions opt;
  core::SynthesisFlow flow(kTech, opt);
  const auto r = flow.run(sizing::OtaSpecs{});
  sizing::OtaVerifier v(kTech, flow.model());
  const circuit::Circuit c =
      v.buildAcTestbench(r.extractedDesign, &r.layout.parasitics, 1, 0, 0);
  sim::Simulator sim(c, kTech, flow.model());
  const auto op = sim.dcOperatingPoint();
  const std::string report = sim::opReport(c, op);
  for (const char* token : {"MP1", "MN2C", "saturation", "node voltages", "VDD", "out"}) {
    EXPECT_NE(report.find(token), std::string::npos) << token;
  }
  // One line per device.
  std::size_t count = 0, pos = 0;
  while ((pos = report.find("MP", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_GE(count, 7u);  // MP1/2/3/4/5/3C/4C.
}

// --- PSRR / settling (measured vs analytic). ---

TEST(Psrr, MeasuredAndPredictedAgreeOnScale) {
  core::FlowOptions opt;
  core::SynthesisFlow flow(kTech, opt);
  const auto r = flow.run(sizing::OtaSpecs{});
  EXPECT_GT(r.measured.psrrDb, 55.0);
  // The analytic PSRR is an order-of-magnitude figure (the tail and mirror
  // supply paths partially cancel in ways the closed form cannot see), and
  // it errs conservative: predicted rejection <= measured.
  EXPECT_GT(r.predicted.psrrDb, 40.0);
  EXPECT_LE(r.predicted.psrrDb, r.measured.psrrDb + 5.0);
  EXPECT_NEAR(r.measured.psrrDb, r.predicted.psrrDb, 25.0);
  EXPECT_GT(r.measured.settlingTimeNs, 1.0);
  EXPECT_LT(r.measured.settlingTimeNs, 200.0);
  // Settling estimate within a factor of ~2.5 of the simulation.
  EXPECT_LT(std::abs(std::log(r.measured.settlingTimeNs / r.predicted.settlingTimeNs)),
            std::log(2.5));
}

}  // namespace
}  // namespace lo
