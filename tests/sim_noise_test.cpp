#include <gtest/gtest.h>

#include <cmath>

#include "device/folding.hpp"
#include "sim/simulator.hpp"
#include "tech/technology.hpp"
#include "tech/units.hpp"

namespace lo::sim {
namespace {

using circuit::Circuit;
using circuit::Waveform;

const tech::Technology kTech = tech::Technology::generic060();

TEST(SimNoise, SingleResistorThermalNoise) {
  // Output PSD across a resistor driven by an ideal source through itself:
  // the divider of two equal resistors shows 4kT * (R || R).
  Circuit c;
  const auto in = c.node("in"), out = c.node("out");
  const double r = 100e3;
  c.addVSource("VIN", in, circuit::kGround, Waveform::makeDc(0.0), 1.0);
  c.addResistor("R1", in, out, r);
  c.addResistor("R2", out, circuit::kGround, r);

  const auto model = device::MosModel::create("level1");
  Simulator sim(c, kTech, *model);
  const DcSolution op = sim.dcOperatingPoint();
  const auto pts = sim.noise(op, out, "VIN", 1e3, 1e6, 5);
  const double expected = 4.0 * kBoltzmann * 300.15 * (r / 2.0);
  for (const NoisePoint& p : pts) {
    EXPECT_NEAR(p.outputPsd, expected, expected * 1e-3) << p.freq;
    // Gain to output is 1/2; input-referred PSD is 4x output.
    EXPECT_NEAR(p.inputRefPsd, 4.0 * expected, 4.0 * expected * 1e-3);
  }
}

TEST(SimNoise, KTOverCIntegral) {
  // Total integrated output noise of an RC filter is kT/C regardless of R.
  Circuit c;
  const auto in = c.node("in"), out = c.node("out");
  const double r = 10e3, cap = 10e-12;
  c.addVSource("VIN", in, circuit::kGround, Waveform::makeDc(0.0), 1.0);
  c.addResistor("R1", in, out, r);
  c.addCapacitor("C1", out, circuit::kGround, cap);

  const auto model = device::MosModel::create("level1");
  Simulator sim(c, kTech, *model);
  const DcSolution op = sim.dcOperatingPoint();
  // Integrate far past the pole (fp = 1.6 MHz): 1 Hz .. 10 GHz.
  const auto pts = sim.noise(op, out, "VIN", 1.0, 10e9, 20);
  const double total = integratePsd(pts, 1.0, 10e9, /*inputReferred=*/false);
  const double expected = kBoltzmann * 300.15 / cap;
  EXPECT_NEAR(total, expected, expected * 0.02);
}

TEST(SimNoise, CommonSourceInputReferredThermalNoise) {
  // Input-referred white noise of a common-source stage: the device's own
  // 4kT(2/3)/gm plus the load resistor referred by 1/(gm^2 RL^2) * 4kT RL.
  Circuit c;
  const auto in = c.node("in"), out = c.node("out"), vdd = c.node("vdd");
  device::MosGeometry geo;
  geo.w = 80e-6;
  geo.l = 1e-6;
  device::applyUnfoldedGeometry(kTech.rules, geo);
  c.addVSource("VDD", vdd, circuit::kGround, Waveform::makeDc(3.3));
  c.addVSource("VIN", in, circuit::kGround, Waveform::makeDc(0.95), 1.0);
  c.addResistor("RL", vdd, out, 10e3);
  c.addMos("M1", out, in, circuit::kGround, circuit::kGround, tech::MosType::kNmos, geo);

  const auto model = device::MosModel::create("level1");
  Simulator sim(c, kTech, *model);
  const DcSolution op = sim.dcOperatingPoint();
  ASSERT_EQ(op.mosOps[0].region, device::MosRegion::kSaturation);
  const double gm = op.mosOps[0].gm;
  const double gout = 1.0 / 10e3 + op.mosOps[0].gds;

  // Measure at a frequency high enough to be past the flicker corner but
  // below any pole (no explicit caps; device caps give >100 MHz poles).
  const auto pts = sim.noise(op, out, "VIN", 1e6, 10e6, 3);
  const double kT4 = 4.0 * kBoltzmann * 300.15;
  const double gainSq = std::pow(gm / gout, 2.0);
  const double flicker = op.mosOps[0].flickerCoeff / pts.front().freq / (gm * gm);
  const double expected =
      (kT4 * (2.0 / 3.0) * gm + kT4 / 10e3) / (gout * gout) / gainSq + flicker;
  EXPECT_NEAR(pts.front().inputRefPsd, expected, expected * 0.05);
}

TEST(SimNoise, FlickerDominatesAtLowFrequency) {
  Circuit c;
  const auto in = c.node("in"), out = c.node("out"), vdd = c.node("vdd");
  device::MosGeometry geo;
  geo.w = 40e-6;
  geo.l = 1e-6;
  device::applyUnfoldedGeometry(kTech.rules, geo);
  c.addVSource("VDD", vdd, circuit::kGround, Waveform::makeDc(3.3));
  c.addVSource("VIN", in, circuit::kGround, Waveform::makeDc(0.95), 1.0);
  c.addResistor("RL", vdd, out, 10e3);
  c.addMos("M1", out, in, circuit::kGround, circuit::kGround, tech::MosType::kNmos, geo);

  const auto model = device::MosModel::create("level1");
  Simulator sim(c, kTech, *model);
  const DcSolution op = sim.dcOperatingPoint();
  const auto pts = sim.noise(op, out, "VIN", 1.0, 10e6, 4);
  // PSD at 1 Hz far exceeds PSD at 10 MHz, and the low-frequency part falls
  // as ~1/f.
  EXPECT_GT(pts.front().outputPsd, 100.0 * pts.back().outputPsd);
  const double ratio = pts.front().outputPsd / pts[1].outputPsd;
  const double fRatio = pts[1].freq / pts.front().freq;
  EXPECT_NEAR(std::log(ratio) / std::log(fRatio), 1.0, 0.15);
}

TEST(SimNoise, UnknownInputSourceThrows) {
  Circuit c;
  c.addResistor("R1", c.node("a"), circuit::kGround, 1e3);
  const auto model = device::MosModel::create("level1");
  Simulator sim(c, kTech, *model);
  const DcSolution op = sim.dcOperatingPoint();
  EXPECT_THROW((void)sim.noise(op, circuit::kGround, "VX", 1.0, 1e6, 5), SimulationError);
}

}  // namespace
}  // namespace lo::sim
