// Warm-start correctness: the carried Newton state (Simulator::WarmStart)
// must be a pure speed lever.  Where the old sweep continuation guaranteed
// a result, the warm API reproduces it byte for byte; where a seed is
// hostile, the cold ladder fallback makes the result indistinguishable from
// a cold solve.  Suite names deliberately contain "SimWarmStart" -- CI runs
// them under --repeat until-fail to shake out state leaking between solves.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include "circuit/circuit.hpp"
#include "device/folding.hpp"
#include "sim/simulator.hpp"
#include "tech/technology.hpp"

namespace lo::sim {
namespace {

using circuit::Circuit;
using circuit::Waveform;

const tech::Technology kTech = tech::Technology::generic060();

[[nodiscard]] std::uint64_t bitsOf(double v) {
  std::uint64_t u = 0;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

#define EXPECT_BIT_EQ(a, b) \
  EXPECT_EQ(bitsOf(a), bitsOf(b)) << #a " = " << (a) << " vs " #b " = " << (b)

/// FNV-1a over the solution doubles, for cross-thread digest comparison.
[[nodiscard]] std::uint64_t digestOf(const DcSolution& sol) {
  std::uint64_t h = 14695981039346656037ULL;
  auto mix = [&h](double v) {
    unsigned char bytes[sizeof(double)];
    std::memcpy(bytes, &v, sizeof(double));
    for (unsigned char byte : bytes) {
      h ^= byte;
      h *= 1099511628211ULL;
    }
  };
  for (double v : sol.nodeVoltages) mix(v);
  for (double v : sol.vsourceCurrents) mix(v);
  return h;
}

void expectSolutionBitEqual(const DcSolution& a, const DcSolution& b) {
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.iterations, b.iterations);
  ASSERT_EQ(a.nodeVoltages.size(), b.nodeVoltages.size());
  for (std::size_t i = 0; i < a.nodeVoltages.size(); ++i) {
    EXPECT_BIT_EQ(a.nodeVoltages[i], b.nodeVoltages[i]);
  }
  ASSERT_EQ(a.vsourceCurrents.size(), b.vsourceCurrents.size());
  for (std::size_t i = 0; i < a.vsourceCurrents.size(); ++i) {
    EXPECT_BIT_EQ(a.vsourceCurrents[i], b.vsourceCurrents[i]);
  }
  EXPECT_EQ(digestOf(a), digestOf(b));
}

/// CMOS inverter: nonlinear enough that a cold solve needs the gmin
/// ladder, with a supply source whose branch current the continuation must
/// carry between points.
[[nodiscard]] Circuit makeInverter() {
  Circuit c;
  const auto in = c.node("in"), out = c.node("out"), vdd = c.node("vdd");
  device::MosGeometry gn, gp;
  gn.w = 10e-6;
  gn.l = 0.6e-6;
  device::applyUnfoldedGeometry(kTech.rules, gn);
  gp = gn;
  gp.w = 25e-6;
  device::applyUnfoldedGeometry(kTech.rules, gp);
  c.addVSource("VDD", vdd, circuit::kGround, Waveform::makeDc(3.3));
  c.addVSource("VIN", in, circuit::kGround, Waveform::makeDc(0.0));
  c.addMos("MN", out, in, circuit::kGround, circuit::kGround, tech::MosType::kNmos, gn);
  c.addMos("MP", out, in, vdd, vdd, tech::MosType::kPmos, gp);
  return c;
}

TEST(SimWarmStart, ManualWarmChainReproducesDcSweepByteForByte) {
  // dcSweep is now a thin client of the warm-start API; composing the same
  // loop by hand through the public surface must give identical bytes.
  const Circuit c = makeInverter();
  const auto model = device::MosModel::create("ekv");
  Simulator sweeper(c, kTech, *model);
  const auto sweep = sweeper.dcSweep("VIN", 0.0, 3.3, 23);

  Circuit manual = c;
  circuit::VSource* src = manual.findVSource("VIN");
  ASSERT_NE(src, nullptr);
  Simulator sim(manual, kTech, *model);
  Simulator::WarmStart warm;
  EXPECT_FALSE(warm.valid());
  ASSERT_EQ(sweep.size(), 23u);
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    src->wave = Waveform::makeDc(sweep[i].value);
    const DcSolution sol = sim.dcOperatingPoint(warm);
    EXPECT_TRUE(warm.valid());
    expectSolutionBitEqual(sol, sweep[i].solution);
  }
  // The chain must actually have run warm: one cold first point, then hits
  // (a miss in the middle would also be legal, but on this smooth curve it
  // would mean the carried state -- including the V-source branch
  // currents -- regressed).
  EXPECT_EQ(sim.stats().warmStartMisses, 1);
  EXPECT_EQ(sim.stats().warmStartHits, 22);
}

TEST(SimWarmStart, VsourceCurrentCarryOverSurvivesTheApiSeam) {
  // Regression for the dcSweep refactor: the old continuation packed node
  // voltages AND V-source branch currents into the next point's start
  // vector.  A warm chain seeded from a converged solution via
  // warmStartFrom must behave identically to continuing the internal
  // state -- if the branch-current carry-over were dropped, the warm
  // Newton would start from a zero supply current and converge along a
  // different iterate path.
  Circuit c = makeInverter();
  circuit::VSource* src = c.findVSource("VIN");
  const auto model = device::MosModel::create("level1");

  Simulator sim(c, kTech, *model);
  Simulator::WarmStart chained;
  src->wave = Waveform::makeDc(1.2);
  const DcSolution first = sim.dcOperatingPoint(chained);
  src->wave = Waveform::makeDc(1.3);
  const DcSolution viaChain = sim.dcOperatingPoint(chained);
  ASSERT_GE(sim.stats().warmStartHits, 1);

  // Same two points, but the second warm state is reconstructed from the
  // first solution through the public seeding API.
  Simulator sim2(c, kTech, *model);
  src->wave = Waveform::makeDc(1.2);
  Simulator::WarmStart seeded = sim2.warmStartFrom(first);
  EXPECT_TRUE(seeded.valid());
  src->wave = Waveform::makeDc(1.3);
  const DcSolution viaSeed = sim2.dcOperatingPoint(seeded);
  expectSolutionBitEqual(viaChain, viaSeed);
  EXPECT_EQ(sim2.stats().warmStartHits, 1);
}

TEST(SimWarmStart, HostileSeedFallsBackToColdAndMatchesItByteForByte) {
  // A garbage seed (rails at +/-50 V) must not poison the result: the warm
  // Newton may reject it, the cold ladder answers, and the answer is
  // byte-identical to a plain cold solve.
  const Circuit c = makeInverter();
  const auto model = device::MosModel::create("ekv");
  Simulator sim(c, kTech, *model);
  const DcSolution cold = sim.dcOperatingPoint();

  DcSolution garbage = cold;
  for (std::size_t i = 1; i < garbage.nodeVoltages.size(); ++i) {
    garbage.nodeVoltages[i] = (i % 2 == 0) ? 50.0 : -50.0;
  }
  for (double& i : garbage.vsourceCurrents) i = 10.0;

  Simulator sim2(c, kTech, *model);
  Simulator::WarmStart warm = sim2.warmStartFrom(garbage);
  const DcSolution rescued = sim2.dcOperatingPoint(warm);
  expectSolutionBitEqual(rescued, cold);
  EXPECT_EQ(sim2.stats().warmStartHits, 0);
  EXPECT_EQ(sim2.stats().warmStartMisses, 1);
  // And the state left behind is the good solution: the next point runs warm.
  const DcSolution again = sim2.dcOperatingPoint(warm);
  EXPECT_EQ(sim2.stats().warmStartHits, 1);
  EXPECT_TRUE(again.converged);
}

TEST(SimWarmStart, SeedingFromMismatchedLayoutThrows) {
  const Circuit c = makeInverter();
  const auto model = device::MosModel::create("level1");
  Simulator sim(c, kTech, *model);

  DcSolution wrong = sim.dcOperatingPoint();
  wrong.nodeVoltages.push_back(0.0);
  EXPECT_THROW((void)sim.warmStartFrom(wrong), std::invalid_argument);

  DcSolution wrongCurrents = sim.dcOperatingPoint();
  wrongCurrents.vsourceCurrents.clear();
  EXPECT_THROW((void)sim.warmStartFrom(wrongCurrents), std::invalid_argument);
}

TEST(SimWarmStart, ForeignWarmStateIsIgnoredNotTrusted) {
  // A WarmStart built against a different circuit (different unknown
  // count) must be treated as cold -- counted as a miss, never read.
  Circuit small;
  const auto n = small.node("n");
  small.addVSource("V1", n, circuit::kGround, Waveform::makeDc(1.0));
  small.addResistor("R1", n, circuit::kGround, 1e3);
  const auto model = device::MosModel::create("level1");
  Simulator simSmall(small, kTech, *model);
  Simulator::WarmStart foreign = simSmall.warmStartFrom(simSmall.dcOperatingPoint());

  const Circuit c = makeInverter();
  Simulator sim(c, kTech, *model);
  const DcSolution cold = sim.dcOperatingPoint();
  const DcSolution viaForeign = sim.dcOperatingPoint(foreign);
  expectSolutionBitEqual(viaForeign, cold);
  EXPECT_EQ(sim.stats().warmStartHits, 0);
  EXPECT_EQ(sim.stats().warmStartMisses, 1);
}

TEST(SimWarmStart, NonMonotoneZigzagChainConvergesAndTracksCold) {
  // Hostile sweep order: big jumps in both directions.  Warm iterates are
  // allowed to differ from cold ones (different Newton start), but every
  // point must converge and land on the same solution to solver tolerance.
  Circuit c = makeInverter();
  circuit::VSource* src = c.findVSource("VIN");
  const auto model = device::MosModel::create("ekv");
  Simulator sim(c, kTech, *model);
  Simulator::WarmStart warm;

  const double zigzag[] = {0.0, 3.3, 0.4, 2.9, 1.1, 2.2, 0.05, 3.25, 1.65};
  for (const double v : zigzag) {
    src->wave = Waveform::makeDc(v);
    const DcSolution hot = sim.dcOperatingPoint(warm);
    EXPECT_TRUE(hot.converged);

    Simulator coldSim(c, kTech, *model);
    const DcSolution cold = coldSim.dcOperatingPoint();
    ASSERT_EQ(hot.nodeVoltages.size(), cold.nodeVoltages.size());
    for (std::size_t i = 0; i < hot.nodeVoltages.size(); ++i) {
      EXPECT_NEAR(hot.nodeVoltages[i], cold.nodeVoltages[i], 1e-6) << "vin=" << v;
    }
  }
  EXPECT_EQ(sim.stats().warmStartHits + sim.stats().warmStartMisses,
            static_cast<long>(std::size(zigzag)));
}

TEST(SimWarmStart, ResetForgetsTheCarriedState) {
  Circuit c = makeInverter();
  const auto model = device::MosModel::create("level1");
  Simulator sim(c, kTech, *model);
  Simulator::WarmStart warm;
  (void)sim.dcOperatingPoint(warm);
  ASSERT_TRUE(warm.valid());
  warm.reset();
  EXPECT_FALSE(warm.valid());
  (void)sim.dcOperatingPoint(warm);
  EXPECT_EQ(sim.stats().warmStartMisses, 2);  // Both solves ran cold.
}

TEST(SimWarmStartConcurrency, ParallelWarmChainsAreDeterministicPerThread) {
  // One shared (const) template circuit; each thread owns its mutable
  // copy, Simulator and WarmStart, as the codebase convention requires.
  // Every thread must produce exactly the same bytes -- any cross-thread
  // digest difference means simulator state escaped its instance.
  const Circuit base = makeInverter();
  const auto model = device::MosModel::create("ekv");
  constexpr int kThreads = 4;
  constexpr int kPoints = 12;

  std::vector<std::uint64_t> digests(kThreads, 0);
  std::vector<long> hits(kThreads, 0);
  {
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int tIdx = 0; tIdx < kThreads; ++tIdx) {
      workers.emplace_back([&base, &model, &digests, &hits, tIdx] {
        Circuit mine = base;
        circuit::VSource* src = mine.findVSource("VIN");
        Simulator sim(mine, kTech, *model);
        Simulator::WarmStart warm;
        std::uint64_t h = 14695981039346656037ULL;
        for (int i = 0; i < kPoints; ++i) {
          src->wave = Waveform::makeDc(3.3 * i / (kPoints - 1));
          const DcSolution sol = sim.dcOperatingPoint(warm);
          const std::uint64_t d = digestOf(sol);
          h ^= d;
          h *= 1099511628211ULL;
        }
        digests[tIdx] = h;
        hits[tIdx] = sim.stats().warmStartHits;
      });
    }
    for (std::thread& w : workers) w.join();
  }
  for (int tIdx = 1; tIdx < kThreads; ++tIdx) {
    EXPECT_EQ(digests[tIdx], digests[0]) << "thread " << tIdx;
    EXPECT_EQ(hits[tIdx], hits[0]);
  }
  EXPECT_GT(hits[0], 0);
}

}  // namespace
}  // namespace lo::sim
