#include <gtest/gtest.h>

#include <fstream>

#include "layout/drc.hpp"
#include "layout/writers.hpp"

namespace lo::layout {
namespace {

using geom::Rect;
using tech::Layer;

const tech::Technology kTech = tech::Technology::generic060();

TEST(Drc, FlagsNarrowWire) {
  geom::ShapeList shapes;
  shapes.add(Layer::kMetal1, Rect(0, 0, 500, 5000));  // 500 < 800 min.
  const auto v = runDrc(kTech, shapes);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "metal1.width");
}

TEST(Drc, FlagsSpacingViolation) {
  geom::ShapeList shapes;
  shapes.add(Layer::kMetal1, Rect(0, 0, 1000, 1000), "a");
  shapes.add(Layer::kMetal1, Rect(1400, 0, 2400, 1000), "b");  // 400 < 800.
  const auto v = runDrc(kTech, shapes);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "metal1.spacing");
}

TEST(Drc, SameNetTouchingIsLegal) {
  geom::ShapeList shapes;
  shapes.add(Layer::kMetal1, Rect(0, 0, 1000, 1000), "a");
  shapes.add(Layer::kMetal1, Rect(1000, 0, 2000, 1000), "a");  // Abutting.
  EXPECT_TRUE(runDrc(kTech, shapes).empty());
}

TEST(Drc, DifferentNetOverlapIsShort) {
  geom::ShapeList shapes;
  shapes.add(Layer::kMetal1, Rect(0, 0, 1000, 1000), "a");
  shapes.add(Layer::kMetal1, Rect(500, 0, 1500, 1000), "b");
  const auto v = runDrc(kTech, shapes);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v[0].detail.find("short"), std::string::npos);
}

TEST(Drc, ContactNeedsEnclosures) {
  geom::ShapeList shapes;
  const tech::Nm cs = kTech.rules.contactSize;
  // Bare contact: missing both bottom layer and metal.
  shapes.add(Layer::kContact, Rect(0, 0, cs, cs));
  auto v = runDrc(kTech, shapes);
  EXPECT_EQ(v.size(), 2u);

  // Properly enclosed contact passes.
  geom::ShapeList good;
  good.add(Layer::kContact, Rect(0, 0, cs, cs));
  good.add(Layer::kActive, Rect(-200, -200, cs + 200, cs + 200));
  good.add(Layer::kNPlus, Rect(-900, -900, cs + 900, cs + 900));
  good.add(Layer::kMetal1, Rect(-200, -200, cs + 200, cs + 200));
  EXPECT_TRUE(runDrc(kTech, good).empty()) << formatViolations(runDrc(kTech, good));
}

TEST(Drc, WrongCutSizeFlagged) {
  geom::ShapeList shapes;
  shapes.add(Layer::kContact, Rect(0, 0, 700, 700));
  const auto v = runDrc(kTech, shapes);
  ASSERT_GE(v.size(), 1u);
  EXPECT_NE(v[0].detail.find("cut size"), std::string::npos);
}

TEST(Drc, PActiveRequiresWell) {
  geom::ShapeList shapes;
  shapes.add(Layer::kActive, Rect(0, 0, 2000, 2000));
  shapes.add(Layer::kPPlus, Rect(-400, -400, 2400, 2400));
  auto v = runDrc(kTech, shapes);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "nwell.enclosure");
  shapes.add(Layer::kNWell, Rect(-1200, -1200, 3200, 3200));
  EXPECT_TRUE(runDrc(kTech, shapes).empty());
}

TEST(Writers, SvgContainsRectsAndNets) {
  geom::ShapeList shapes;
  shapes.add(Layer::kMetal1, Rect(0, 0, 1000, 1000), "mynet");
  shapes.add(Layer::kPoly, Rect(2000, 0, 3000, 1000));
  const std::string svg = toSvg(shapes);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("mynet"), std::string::npos);
  // Two drawn rects + background.
  std::size_t count = 0, pos = 0;
  while ((pos = svg.find("<rect", pos)) != std::string::npos) {
    ++count;
    pos += 5;
  }
  EXPECT_EQ(count, 3u);
}

TEST(Writers, CifBoxesInCentimicrons) {
  geom::ShapeList shapes;
  shapes.add(Layer::kMetal1, Rect(0, 0, 1000, 2000));  // 100 x 200 cu, centre (50,100).
  const std::string cif = toCif(shapes, "CELL");
  EXPECT_NE(cif.find("L CMF;"), std::string::npos);
  EXPECT_NE(cif.find("B 100 200 50 100;"), std::string::npos);
  EXPECT_NE(cif.find("9 CELL;"), std::string::npos);
  EXPECT_NE(cif.find("E\n"), std::string::npos);
}

TEST(Writers, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/writer_test.svg";
  writeFile(path, "hello");
  std::ifstream in(path);
  std::string content;
  in >> content;
  EXPECT_EQ(content, "hello");
  EXPECT_THROW(writeFile("/nonexistent-dir/x.svg", "x"), std::runtime_error);
}

}  // namespace
}  // namespace lo::layout
