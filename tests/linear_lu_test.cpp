// Property tests for the split factor/solve LU API (linear.hpp).
//
// The hot-path contract is exact: luFactorize + luSolveFactored must
// reproduce the one-shot luSolve BIT FOR BIT, for every matrix the one-shot
// path accepts, and must reject exactly the matrices the one-shot path
// rejects.  The fast AC/noise paths lean on this equivalence to reuse one
// factorization across a whole excitation block without changing a single
// result bit.
#include <gtest/gtest.h>

#include <complex>
#include <random>
#include <vector>

#include "sim/linear.hpp"

namespace lo::sim {
namespace {

using Cplx = std::complex<double>;

template <typename T>
struct Maker;

template <>
struct Maker<double> {
  static double entry(std::mt19937& rng) {
    std::uniform_real_distribution<double> u(-1.0, 1.0);
    return u(rng);
  }
  static double dominant() { return 4.0; }
};

template <>
struct Maker<Cplx> {
  static Cplx entry(std::mt19937& rng) {
    std::uniform_real_distribution<double> u(-1.0, 1.0);
    const double re = u(rng);
    const double im = u(rng);
    return {re, im};
  }
  static Cplx dominant() { return {4.0, 0.0}; }
};

/// Random diagonally-dominant (well-conditioned) system of size n.
template <typename T>
void makeSystem(std::mt19937& rng, std::size_t n, DenseMatrix<T>& a, std::vector<T>& b) {
  a = DenseMatrix<T>(n);
  b.assign(n, T{});
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      a.at(r, c) = Maker<T>::entry(rng);
      if (r == c) a.at(r, c) += Maker<T>::dominant();
    }
    b[r] = Maker<T>::entry(rng);
  }
}

template <typename T>
void expectBitEqual(const std::vector<T>& x, const std::vector<T>& y) {
  ASSERT_EQ(x.size(), y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    // operator== on double / complex<double> is exact; the generators
    // never produce NaN, so bit equality and == coincide.
    EXPECT_EQ(x[i], y[i]) << "component " << i;
  }
}

template <typename T>
void runBitwiseProperty(std::uint32_t seed, int trials) {
  std::mt19937 rng(seed);
  for (int trial = 0; trial < trials; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(trial) % 40;
    DenseMatrix<T> a;
    std::vector<T> b;
    makeSystem(rng, n, a, b);
    DenseMatrix<T> aCopy = a;
    std::vector<T> bCopy = b;

    ASSERT_TRUE(luSolve(a, b)) << "one-shot rejected a dominant matrix, n=" << n;
    std::vector<std::size_t> perm;
    ASSERT_TRUE(luFactorize(aCopy, perm));
    luSolveFactored(aCopy, perm, bCopy);
    expectBitEqual(b, bCopy);
  }
}

TEST(LinearLu, FactorSolveMatchesOneShotBitwiseReal) {
  runBitwiseProperty<double>(1234, 200);
}

TEST(LinearLu, FactorSolveMatchesOneShotBitwiseComplex) {
  runBitwiseProperty<Cplx>(4321, 200);
}

TEST(LinearLu, OneFactorizationServesManyRhsBitwise) {
  std::mt19937 rng(99);
  const std::size_t n = 24;
  DenseMatrix<Cplx> a;
  std::vector<Cplx> unused;
  makeSystem(rng, n, a, unused);

  DenseMatrix<Cplx> lu = a;
  std::vector<std::size_t> perm;
  ASSERT_TRUE(luFactorize(lu, perm));

  for (int rhs = 0; rhs < 8; ++rhs) {
    std::vector<Cplx> b(n);
    for (auto& v : b) v = Maker<Cplx>::entry(rng);
    std::vector<Cplx> viaFactored = b;
    luSolveFactored(lu, perm, viaFactored);

    DenseMatrix<Cplx> aFresh = a;  // One-shot destroys its matrix.
    std::vector<Cplx> viaOneShot = b;
    ASSERT_TRUE(luSolve(aFresh, viaOneShot));
    expectBitEqual(viaOneShot, viaFactored);
  }
}

TEST(LinearLu, PermutationReplayCoversLatePivotSwaps) {
  // Regression for the interleaved-replay seam: a later pivot swap must
  // not relocate multipliers already stored by earlier columns.  This
  // matrix forces a swap at every step (each column's largest entry sits
  // below the diagonal).
  const std::size_t n = 5;
  DenseMatrix<double> a(n);
  std::vector<double> b(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) a.at(r, c) = 1.0 / (1.0 + r + 2 * c);
    a.at((r + 1) % n, r) = 10.0 + static_cast<double>(r);
    b[r] = static_cast<double>(r) - 2.0;
  }
  DenseMatrix<double> lu = a;
  std::vector<std::size_t> perm;
  ASSERT_TRUE(luFactorize(lu, perm));
  bool swapped = false;
  for (std::size_t col = 0; col < n; ++col) swapped |= perm[col] != col;
  ASSERT_TRUE(swapped);

  std::vector<double> viaFactored = b;
  luSolveFactored(lu, perm, viaFactored);
  ASSERT_TRUE(luSolve(a, b));
  expectBitEqual(b, viaFactored);
}

TEST(LinearLu, SingularRejectionParity) {
  // Exactly singular: duplicated row.
  DenseMatrix<double> a(3);
  for (std::size_t c = 0; c < 3; ++c) {
    a.at(0, c) = 1.0 + static_cast<double>(c);
    a.at(1, c) = a.at(0, c);
    a.at(2, c) = 5.0 - static_cast<double>(c);
  }
  DenseMatrix<double> a2 = a;
  std::vector<double> b{1.0, 2.0, 3.0};
  std::vector<std::size_t> perm;
  EXPECT_FALSE(luSolve(a, b));
  EXPECT_FALSE(luFactorize(a2, perm));
}

TEST(LinearLu, NearSingularRejectionParity) {
  std::mt19937 rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t n = 2 + static_cast<std::size_t>(trial) % 10;
    DenseMatrix<double> a;
    std::vector<double> b;
    makeSystem(rng, n, a, b);
    // Scale one row below the 1e-300 pivot threshold and zero its
    // off-diagonal couplings so both paths see the same tiny pivot.
    const std::size_t bad = static_cast<std::size_t>(trial) % n;
    for (std::size_t c = 0; c < n; ++c) a.at(bad, c) = 0.0;
    for (std::size_t r = 0; r < n; ++r) a.at(r, bad) = 0.0;
    a.at(bad, bad) = 1e-301;
    DenseMatrix<double> a2 = a;
    std::vector<double> b2 = b;
    std::vector<std::size_t> perm;
    const bool oneShot = luSolve(a, b);
    const bool factored = luFactorize(a2, perm);
    EXPECT_EQ(oneShot, factored) << "trial " << trial;
    EXPECT_FALSE(factored);
  }
}

TEST(LinearLu, SolveFactoredRejectsDimensionMismatch) {
  DenseMatrix<double> a(3);
  for (std::size_t i = 0; i < 3; ++i) a.at(i, i) = 1.0;
  std::vector<std::size_t> perm;
  ASSERT_TRUE(luFactorize(a, perm));
  std::vector<double> shortB{1.0, 2.0};
  EXPECT_THROW(luSolveFactored(a, perm, shortB), std::invalid_argument);
  std::vector<double> okB{1.0, 2.0, 3.0};
  std::vector<std::size_t> shortPerm{0};
  EXPECT_THROW(luSolveFactored(a, shortPerm, okB), std::invalid_argument);
}

}  // namespace
}  // namespace lo::sim
