// Golden-value harness for the simulator hot-path rewrite.
//
// SolverMode::kReference keeps the pre-optimization solve path alive
// verbatim; every test here proves the fast path (factor reuse, AC
// skeleton re-stamping, batched excitations, workspace reuse, batched
// device evaluation) reproduces it BIT FOR BIT -- full double precision,
// byte-identical, across DC operating points, sweeps, AC curves, noise
// integrals and transients, on both amplifier topologies.  The companion
// system-level proof is the differential oracle's engine_reference_solver
// path (testkit), which byte-compares whole engine runs over the 50-point
// corpus.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <random>
#include <vector>

#include "circuit/ota.hpp"
#include "circuit/two_stage.hpp"
#include "device/folding.hpp"
#include "sim/measure.hpp"
#include "sim/simulator.hpp"
#include "sizing/ota_sizer.hpp"
#include "sizing/two_stage.hpp"
#include "sizing/verify.hpp"
#include "tech/technology.hpp"

namespace lo::sim {
namespace {

using circuit::Circuit;
using circuit::NodeId;
using circuit::Waveform;

const tech::Technology kTech = tech::Technology::generic060();

// ---------------------------------------------------------------------------
// Bit-level comparison plumbing.  EXPECT_EQ on doubles would call -0.0 and
// +0.0 equal; the golden contract is byte identity, so compare the bits.

[[nodiscard]] std::uint64_t bitsOf(double v) {
  std::uint64_t u = 0;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

#define EXPECT_BIT_EQ(a, b) \
  EXPECT_EQ(bitsOf(a), bitsOf(b)) << #a " = " << (a) << " vs " #b " = " << (b)

/// FNV-1a over raw double bytes: the "digest" half of the byte-identity
/// proof -- two solution sets agree iff their digests agree.
class Fnv1a {
 public:
  void add(double v) {
    unsigned char bytes[sizeof(double)];
    std::memcpy(bytes, &v, sizeof(double));
    for (unsigned char byte : bytes) {
      h_ ^= byte;
      h_ *= 1099511628211ULL;
    }
  }
  void add(const std::complex<double>& v) {
    add(v.real());
    add(v.imag());
  }
  template <typename T>
  void add(const std::vector<T>& vs) {
    for (const T& v : vs) add(v);
  }
  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 14695981039346656037ULL;
};

void digestSolution(Fnv1a& h, const DcSolution& sol) {
  h.add(static_cast<double>(sol.iterations));
  h.add(sol.nodeVoltages);
  h.add(sol.vsourceCurrents);
  for (const device::MosOpPoint& op : sol.mosOps) {
    h.add(op.id);
    h.add(op.vgs);
    h.add(op.vds);
    h.add(op.vbs);
    h.add(op.vth);
    h.add(op.veff);
    h.add(op.vdsat);
    h.add(op.gm);
    h.add(op.gds);
    h.add(op.gmb);
    h.add(op.cgs);
    h.add(op.cgd);
    h.add(op.cgb);
    h.add(op.cdb);
    h.add(op.csb);
    h.add(op.thermalNoisePsd);
    h.add(op.flickerCoeff);
  }
}

void expectSolutionBitEqual(const DcSolution& a, const DcSolution& b) {
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.iterations, b.iterations);
  ASSERT_EQ(a.nodeVoltages.size(), b.nodeVoltages.size());
  for (std::size_t i = 0; i < a.nodeVoltages.size(); ++i) {
    EXPECT_BIT_EQ(a.nodeVoltages[i], b.nodeVoltages[i]);
  }
  ASSERT_EQ(a.vsourceCurrents.size(), b.vsourceCurrents.size());
  for (std::size_t i = 0; i < a.vsourceCurrents.size(); ++i) {
    EXPECT_BIT_EQ(a.vsourceCurrents[i], b.vsourceCurrents[i]);
  }
  ASSERT_EQ(a.mosOps.size(), b.mosOps.size());
  Fnv1a ha, hb;
  digestSolution(ha, a);
  digestSolution(hb, b);
  EXPECT_EQ(ha.value(), hb.value()) << "mos op digests diverge";
}

void expectAcBitEqual(const std::vector<AcPoint>& a, const std::vector<AcPoint>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_BIT_EQ(a[i].freq, b[i].freq);
    ASSERT_EQ(a[i].nodeV.size(), b[i].nodeV.size());
    for (std::size_t n = 0; n < a[i].nodeV.size(); ++n) {
      EXPECT_BIT_EQ(a[i].nodeV[n].real(), b[i].nodeV[n].real());
      EXPECT_BIT_EQ(a[i].nodeV[n].imag(), b[i].nodeV[n].imag());
    }
    ASSERT_EQ(a[i].vsourceI.size(), b[i].vsourceI.size());
    for (std::size_t n = 0; n < a[i].vsourceI.size(); ++n) {
      EXPECT_BIT_EQ(a[i].vsourceI[n].real(), b[i].vsourceI[n].real());
      EXPECT_BIT_EQ(a[i].vsourceI[n].imag(), b[i].vsourceI[n].imag());
    }
  }
}

void expectNoiseBitEqual(const std::vector<NoisePoint>& a,
                         const std::vector<NoisePoint>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_BIT_EQ(a[i].freq, b[i].freq);
    EXPECT_BIT_EQ(a[i].outputPsd, b[i].outputPsd);
    EXPECT_BIT_EQ(a[i].inputRefPsd, b[i].inputRefPsd);
    EXPECT_BIT_EQ(a[i].gainMag, b[i].gainMag);
  }
}

void expectTranBitEqual(const std::vector<TranPoint>& a,
                        const std::vector<TranPoint>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_BIT_EQ(a[i].time, b[i].time);
    ASSERT_EQ(a[i].nodeV.size(), b[i].nodeV.size());
    for (std::size_t n = 0; n < a[i].nodeV.size(); ++n) {
      EXPECT_BIT_EQ(a[i].nodeV[n], b[i].nodeV[n]);
    }
  }
}

// ---------------------------------------------------------------------------
// Shared sized designs (sizing is deterministic; one run serves the suite).

struct Designs {
  std::unique_ptr<device::MosModel> model = device::MosModel::create("ekv");
  sizing::SizingResult ota;
  sizing::TwoStageSizingResult twoStage;
  Designs() {
    sizing::OtaSizer sizer(kTech, *model);
    ota = sizer.size(sizing::OtaSpecs{}, sizing::SizingPolicy::case2());
    sizing::TwoStageSizer ts(kTech, *model);
    twoStage = ts.size(sizing::OtaSpecs{}, sizing::SizingPolicy::case2());
  }
};

const Designs& designs() {
  static Designs d;
  return d;
}

[[nodiscard]] SimOptions optionsFor(SolverMode mode) {
  SimOptions opt;
  opt.tempK = kTech.temperature;
  opt.solver = mode;
  return opt;
}

/// The full golden sweep for one amplifier AC testbench: every analysis the
/// verification tier runs, fast vs reference, bit for bit.  `c` carries the
/// differential excitation (VDIFF acMag=1); `quiet` is the same testbench
/// with every acMag zeroed, for the probe-circuit comparison.  Both must
/// expose "out" and V sources "VDIFF" / "VDD" / "VCM".
void runGoldenSuite(const Circuit& c, const Circuit& quiet,
                    const device::MosModel& model) {
  const NodeId out = *c.findNode("out");
  Simulator fast(c, kTech, model, optionsFor(SolverMode::kFast));
  Simulator ref(c, kTech, model, optionsFor(SolverMode::kReference));

  // DC operating point, including the full per-device small-signal set.
  const DcSolution opF = fast.dcOperatingPoint();
  const DcSolution opR = ref.dcOperatingPoint();
  expectSolutionBitEqual(opF, opR);

  // Full-band differential AC via the circuit's own sources.
  expectAcBitEqual(fast.ac(opF, 10.0, 1e9, 6), ref.ac(opR, 10.0, 1e9, 6));

  // Excitation moved onto a branch at solve time.
  expectAcBitEqual(fast.acFrom(opF, "VDD", 10.0, 1e4, 4),
                   ref.acFrom(opR, "VDD", 10.0, 1e4, 4));

  // A whole excitation block against the equivalent individual reference
  // calls: one factorization per frequency must not change a single bit
  // of any curve.
  const std::vector<AcExcitation> block = {
      AcExcitation::circuitSources(),
      AcExcitation::unitVsource("VCM"),
      AcExcitation::unitVsource("VDD"),
      AcExcitation::unitCurrent(circuit::kGround, out),
  };
  const auto batch = fast.acBatch(opF, block, 10.0, 1e4, 4);
  ASSERT_EQ(batch.size(), block.size());
  expectAcBitEqual(batch[0], ref.ac(opR, 10.0, 1e4, 4));
  expectAcBitEqual(batch[1], ref.acFrom(opR, "VCM", 10.0, 1e4, 4));
  expectAcBitEqual(batch[2], ref.acFrom(opR, "VDD", 10.0, 1e4, 4));
  // Reference rout probe: the pre-PR idiom was a dedicated IPROBE current
  // source baked into an otherwise quiet netlist; unitCurrent replaces it.
  // The current injection ignores the circuit's own acMags, so it must
  // match a reference run over the quiet copy with the probe baked in.
  Circuit probed = quiet;
  probed.addISource("IPROBE", circuit::kGround, out, Waveform::makeDc(0.0), 1.0);
  Simulator refProbe(probed, kTech, model, optionsFor(SolverMode::kReference));
  const DcSolution opP = refProbe.dcOperatingPoint();
  const auto routRef = refProbe.ac(opP, 10.0, 1e4, 4);
  ASSERT_EQ(batch[3].size(), routRef.size());
  for (std::size_t i = 0; i < routRef.size(); ++i) {
    EXPECT_BIT_EQ(std::abs(batch[3][i].at(out)), std::abs(routRef[i].at(out)));
  }

  // Noise (adjoint method) and its band integral.
  const auto nzF = fast.noise(opF, out, "VDIFF", 1.0, 1e8, 8);
  const auto nzR = ref.noise(opR, out, "VDIFF", 1.0, 1e8, 8);
  expectNoiseBitEqual(nzF, nzR);
  EXPECT_BIT_EQ(integratePsd(nzF, 1.0, 1e7, true), integratePsd(nzR, 1.0, 1e7, true));
  EXPECT_BIT_EQ(integratePsd(nzF, 1.0, 1e7, false), integratePsd(nzR, 1.0, 1e7, false));

  // Transient (trapezoidal, DC-op initial condition).
  expectTranBitEqual(fast.transient(50e-9, 0.5e-9), ref.transient(50e-9, 0.5e-9));

  // The fast path must actually have taken the fast path.
  EXPECT_GT(fast.stats().luFactorizations, 0);
  EXPECT_GT(fast.stats().luSolves, fast.stats().luFactorizations);
  EXPECT_EQ(ref.stats().luFactorizations, 0);
}

TEST(SimGolden, FoldedCascodeSuiteBitIdenticalAcrossSolverModes) {
  sizing::OtaVerifier v(kTech, *designs().model);
  const Circuit c = v.buildAcTestbench(designs().ota.design, nullptr, 1.0, 0.0, 0.0);
  const Circuit quiet = v.buildAcTestbench(designs().ota.design, nullptr, 0.0, 0.0, 0.0);
  runGoldenSuite(c, quiet, *designs().model);
}

TEST(SimGolden, TwoStageSuiteBitIdenticalAcrossSolverModes) {
  const circuit::TwoStageOtaDesign& d = designs().twoStage.design;
  const sizing::AmpInstantiateFn instantiate = [&](Circuit& cc) {
    circuit::instantiateTwoStage(cc, d);
  };
  const Circuit c =
      sizing::buildAmpAcTestbench(instantiate, d.inputCm, nullptr, 1.0, 0.0, 0.0);
  const Circuit quiet =
      sizing::buildAmpAcTestbench(instantiate, d.inputCm, nullptr, 0.0, 0.0, 0.0);
  runGoldenSuite(c, quiet, *designs().model);
}

TEST(SimGolden, DcSweepBitIdenticalAcrossSolverModes) {
  // CMOS inverter transfer curve: the sweep exercises the warm-start
  // continuation on the fast side against the fresh-simulator-per-point
  // reference implementation.
  Circuit c;
  const auto in = c.node("in"), out = c.node("out"), vdd = c.node("vdd");
  device::MosGeometry gn, gp;
  gn.w = 10e-6;
  gn.l = 0.6e-6;
  device::applyUnfoldedGeometry(kTech.rules, gn);
  gp = gn;
  gp.w = 25e-6;
  device::applyUnfoldedGeometry(kTech.rules, gp);
  c.addVSource("VDD", vdd, circuit::kGround, Waveform::makeDc(3.3));
  c.addVSource("VIN", in, circuit::kGround, Waveform::makeDc(0.0));
  c.addMos("MN", out, in, circuit::kGround, circuit::kGround, tech::MosType::kNmos, gn);
  c.addMos("MP", out, in, vdd, vdd, tech::MosType::kPmos, gp);

  for (const char* modelName : {"level1", "ekv"}) {
    const auto model = device::MosModel::create(modelName);
    Simulator fast(c, kTech, *model, optionsFor(SolverMode::kFast));
    Simulator ref(c, kTech, *model, optionsFor(SolverMode::kReference));
    const auto sweepF = fast.dcSweep("VIN", 0.0, 3.3, 34);
    const auto sweepR = ref.dcSweep("VIN", 0.0, 3.3, 34);
    ASSERT_EQ(sweepF.size(), sweepR.size());
    for (std::size_t i = 0; i < sweepF.size(); ++i) {
      EXPECT_BIT_EQ(sweepF[i].value, sweepR[i].value);
      expectSolutionBitEqual(sweepF[i].solution, sweepR[i].solution);
    }
  }
}

TEST(SimGolden, DeviceBatchEvaluationMatchesScalarBitwise) {
  // The batched device inner loop hoists bias-independent card terms; the
  // contract is per-point bit identity with the scalar path, including
  // reverse-mode (vds < 0) points where the source/drain flip engages.
  std::mt19937 rng(2024);
  std::uniform_real_distribution<double> uVgs(-0.5, 3.0);
  std::uniform_real_distribution<double> uVds(-2.0, 2.0);
  std::uniform_real_distribution<double> uVbs(-2.0, 0.0);

  device::MosGeometry geo;
  geo.w = 40e-6;
  geo.l = 1.2e-6;
  device::applyUnfoldedGeometry(kTech.rules, geo);

  for (const char* modelName : {"level1", "ekv"}) {
    const auto model = device::MosModel::create(modelName);
    for (const tech::MosModelCard* card : {&kTech.nmos, &kTech.pmos}) {
      // Cover the stack-buffer (n <= 8) and heap (n > 8) code paths.
      for (const std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{8},
                                  std::size_t{9}, std::size_t{64}}) {
        std::vector<double> vgs(n), vds(n), vbs(n), batch(n);
        for (std::size_t i = 0; i < n; ++i) {
          vgs[i] = uVgs(rng);
          vds[i] = uVds(rng);
          vbs[i] = uVbs(rng);
        }
        model->currentNormalizedBatch(*card, geo, vgs.data(), vds.data(), vbs.data(),
                                      batch.data(), n, 300.15);
        for (std::size_t i = 0; i < n; ++i) {
          const double scalar =
              model->currentNormalized(*card, geo, vgs[i], vds[i], vbs[i], 300.15);
          EXPECT_BIT_EQ(scalar, batch[i])
              << modelName << " n=" << n << " i=" << i << " vgs=" << vgs[i]
              << " vds=" << vds[i] << " vbs=" << vbs[i];
        }
      }
    }
  }
}

TEST(SimGolden, MeasureAmplifierMatchesLegacyFourCircuitStructure) {
  // measureAmplifier used to bake each excitation into its own testbench
  // copy (diff acMag=1, cm acMag=1, acFrom supply, IPROBE rout circuit) and
  // solve a fresh DC op for every one.  The restructured single-testbench /
  // acBatch flow must reproduce those numbers exactly.  This replays the
  // legacy structure inline on the reference solver and compares against
  // measureAmplifier in BOTH solver modes.
  const auto& d = designs().ota.design;
  const device::MosModel& model = *designs().model;
  const sizing::AmpInstantiateFn instantiate = [&](Circuit& c) {
    circuit::instantiateOta(c, d);
  };
  const sizing::VerifyOptions vOpt;
  const double fLow = vOpt.fStart;

  double legacyGainDb = 0.0, legacyGbw = 0.0, legacyPm = 0.0, legacyOffset = 0.0;
  double legacyPower = 0.0, legacyCmrr = 0.0, legacyPsrr = 0.0, legacyRout = 0.0;
  {  // Differential open-loop circuit with acMag baked onto VDIFF.
    const Circuit c =
        sizing::buildAmpAcTestbench(instantiate, d.inputCm, nullptr, 1.0, 0.0, 0.0);
    Simulator sim(c, kTech, model, optionsFor(SolverMode::kReference));
    const DcSolution op = sim.dcOperatingPoint();
    const NodeId out = *c.findNode("out");
    legacyOffset = (op.voltage(*c.findNode("inp")) - op.voltage(out)) * 1e3;
    for (std::size_t i = 0; i < c.vsources.size(); ++i) {
      if (c.vsources[i].name == "VDD") {
        legacyPower = std::abs(op.vsourceCurrents[i]) * d.vdd * 1e3;
      }
    }
    const auto ac = sim.ac(op, fLow, vOpt.fStop, vOpt.pointsPerDecade);
    const AcCurve adm = curveAt(ac, out);
    legacyGainDb = toDb(dcGain(adm));
    legacyGbw = unityGainFrequency(adm);
    legacyPm = phaseMarginDeg(adm);
  }
  {  // Common-mode circuit with acMag baked onto VCM.
    const Circuit c =
        sizing::buildAmpAcTestbench(instantiate, d.inputCm, nullptr, 0.0, 1.0, 0.0);
    Simulator sim(c, kTech, model, optionsFor(SolverMode::kReference));
    const DcSolution op = sim.dcOperatingPoint();
    const auto ac = sim.ac(op, fLow, 10.0 * fLow, 4);
    const double acm = dcGain(curveAt(ac, *c.findNode("out")));
    legacyCmrr = toDb(std::pow(10.0, legacyGainDb / 20.0) / std::max(acm, 1e-12));
  }
  {  // Supply rejection via acFrom on a quiet circuit.
    const Circuit c =
        sizing::buildAmpAcTestbench(instantiate, d.inputCm, nullptr, 0.0, 0.0, 0.0);
    Simulator sim(c, kTech, model, optionsFor(SolverMode::kReference));
    const DcSolution op = sim.dcOperatingPoint();
    const auto ac = sim.acFrom(op, "VDD", fLow, 10.0 * fLow, 4);
    const double avdd = dcGain(curveAt(ac, *c.findNode("out")));
    legacyPsrr = toDb(std::pow(10.0, legacyGainDb / 20.0) / std::max(avdd, 1e-12));
  }
  {  // Output resistance via the baked-in IPROBE current source.
    const Circuit c =
        sizing::buildAmpAcTestbench(instantiate, d.inputCm, nullptr, 0.0, 0.0, 1.0);
    Simulator sim(c, kTech, model, optionsFor(SolverMode::kReference));
    const DcSolution op = sim.dcOperatingPoint();
    const auto ac = sim.ac(op, fLow, 10.0 * fLow, 4);
    legacyRout = std::abs(ac.front().at(*c.findNode("out"))) / 1e6;
  }

  for (const bool reference : {false, true}) {
    sizing::VerifyOptions opt;
    opt.referenceSolver = reference;
    const sizing::OtaPerformance p = sizing::measureAmplifier(
        kTech, model, instantiate, d.inputCm, d.vdd, nullptr, opt);
    SCOPED_TRACE(reference ? "referenceSolver" : "fastSolver");
    EXPECT_BIT_EQ(p.dcGainDb, legacyGainDb);
    EXPECT_BIT_EQ(p.gbwHz, legacyGbw);
    EXPECT_BIT_EQ(p.phaseMarginDeg, legacyPm);
    EXPECT_BIT_EQ(p.offsetMv, legacyOffset);
    EXPECT_BIT_EQ(p.powerMw, legacyPower);
    EXPECT_BIT_EQ(p.cmrrDb, legacyCmrr);
    EXPECT_BIT_EQ(p.psrrDb, legacyPsrr);
    EXPECT_BIT_EQ(p.outputResistanceMOhm, legacyRout);
  }
}

TEST(SimGolden, DigestOfFullAnalysisSetMatchesAcrossModes) {
  // The digest form of the byte-identity proof: hash every byte of every
  // solution the verification tier consumes, in both modes, and require
  // the digests -- not just spot-checked fields -- to collide.
  sizing::OtaVerifier v(kTech, *designs().model);
  const Circuit c = v.buildAcTestbench(designs().ota.design, nullptr, 1.0, 0.0, 0.0);
  const NodeId out = *c.findNode("out");

  std::uint64_t digest[2] = {0, 0};
  for (const SolverMode mode : {SolverMode::kFast, SolverMode::kReference}) {
    Simulator sim(c, kTech, *designs().model, optionsFor(mode));
    Fnv1a h;
    const DcSolution op = sim.dcOperatingPoint();
    digestSolution(h, op);
    for (const auto& pt : sim.ac(op, 10.0, 1e9, 8)) {
      h.add(pt.freq);
      h.add(pt.nodeV);
      h.add(pt.vsourceI);
    }
    for (const auto& pt : sim.noise(op, out, "VDIFF", 1.0, 1e8, 6)) {
      h.add(pt.freq);
      h.add(pt.outputPsd);
      h.add(pt.inputRefPsd);
      h.add(pt.gainMag);
    }
    for (const auto& pt : sim.transient(40e-9, 0.5e-9)) {
      h.add(pt.time);
      h.add(pt.nodeV);
    }
    digest[mode == SolverMode::kFast ? 0 : 1] = h.value();
  }
  EXPECT_EQ(digest[0], digest[1]);
}

}  // namespace
}  // namespace lo::sim
