// Coverage for smaller public APIs not exercised elsewhere.
#include <gtest/gtest.h>

#include <fstream>

#include "layout/drc.hpp"
#include "layout/router.hpp"
#include "layout/writers.hpp"
#include "sim/measure.hpp"
#include "tech/technology.hpp"

namespace lo {
namespace {

const tech::Technology kTech = tech::Technology::generic060();

TEST(Misc, RoutingTotalCapIncludesCoupling) {
  layout::RoutingResult r;
  r.nets.push_back({"a", 1000, 1e-4, 0.0, 5e-15, 0.0, 0});
  r.nets.push_back({"b", 1000, 1e-4, 0.0, 3e-15, 0.0, 0});
  r.coupling[{"a", "b"}] = 2e-15;
  EXPECT_DOUBLE_EQ(r.totalCapOn("a"), 7e-15);
  EXPECT_DOUBLE_EQ(r.totalCapOn("b"), 5e-15);
  EXPECT_DOUBLE_EQ(r.totalCapOn("missing"), 0.0);  // Unknown net: nothing.
  EXPECT_EQ(r.find("a")->trunkWidth, 1000);
  EXPECT_EQ(r.find("zz"), nullptr);
}

TEST(Misc, FormatViolationsIsReadable) {
  std::vector<layout::DrcViolation> v = {
      {"metal1.width", "too narrow", geom::Rect(0, 0, 10, 20)}};
  const std::string text = layout::formatViolations(v);
  EXPECT_NE(text.find("metal1.width"), std::string::npos);
  EXPECT_NE(text.find("too narrow"), std::string::npos);
  EXPECT_NE(text.find("(0,0)-(10,20)"), std::string::npos);
}

TEST(Misc, TechnologyFromFileErrors) {
  EXPECT_THROW((void)tech::Technology::fromFile("/no/such/file.tech"),
               tech::TechParseError);
  const std::string path = ::testing::TempDir() + "/mini.tech";
  layout::writeFile(path, "[tech]\nname = minimal\n");
  const tech::Technology t = tech::Technology::fromFile(path);
  EXPECT_EQ(t.name, "minimal");
  // Unset keys fall back to the generic 0.6 um defaults.
  EXPECT_EQ(t.rules.polyMinWidth, kTech.rules.polyMinWidth);
}

TEST(Misc, GdsFileWritesBinaryIntact) {
  geom::ShapeList shapes;
  shapes.add(tech::Layer::kMetal1, geom::Rect(0, 0, 1000, 1000));
  const std::string gds = layout::toGds(shapes);
  const std::string path = ::testing::TempDir() + "/mini.gds";
  layout::writeFile(path, gds);
  std::ifstream in(path, std::ios::binary);
  std::string back((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(back, gds);  // No newline translation corrupted the stream.
}

TEST(Misc, SvgScaleChangesCanvasSize) {
  geom::ShapeList shapes;
  shapes.add(tech::Layer::kPoly, geom::Rect(0, 0, 100000, 50000));
  const std::string small = layout::toSvg(shapes, 0.001);
  const std::string big = layout::toSvg(shapes, 0.01);
  EXPECT_LT(small.find("width"), big.size());
  EXPECT_NE(small, big);
}

TEST(Misc, MeasureGainAtEmptyCurve) {
  sim::AcCurve empty;
  EXPECT_DOUBLE_EQ(sim::gainAt(empty, 1e6), 0.0);
  EXPECT_DOUBLE_EQ(sim::dcGain(empty), 0.0);
}

TEST(Misc, CornerNamesCoverAllCorners) {
  std::set<std::string> names;
  for (tech::ProcessCorner c :
       {tech::ProcessCorner::kTypical, tech::ProcessCorner::kSlow,
        tech::ProcessCorner::kFast, tech::ProcessCorner::kSlowNFastP,
        tech::ProcessCorner::kFastNSlowP}) {
    names.insert(tech::cornerName(c));
  }
  EXPECT_EQ(names.size(), 5u);
}

TEST(Misc, ModelCardTemperatureHelpers) {
  const tech::MosModelCard& card = kTech.nmos;
  EXPECT_DOUBLE_EQ(card.vtoAt(card.tempRef), card.vto);
  EXPECT_LT(card.vtoAt(card.tempRef + 100.0), card.vto);
  EXPECT_DOUBLE_EQ(card.kpAt(card.tempRef), card.kp);
  EXPECT_LT(card.kpAt(card.tempRef + 100.0), card.kp);
  EXPECT_GT(card.kpAt(card.tempRef - 50.0), card.kp);
}

TEST(Misc, TechTextIncludesTemperatureKeys) {
  const std::string text = kTech.toText();
  EXPECT_NE(text.find("vto_temp_coeff"), std::string::npos);
  EXPECT_NE(text.find("plate_cap"), std::string::npos);
  const tech::Technology back = tech::Technology::parse(text);
  EXPECT_DOUBLE_EQ(back.nmos.vtoTempCoeff, kTech.nmos.vtoTempCoeff);
  EXPECT_DOUBLE_EQ(back.plateCapPerM2, kTech.plateCapPerM2);
}

TEST(Misc, GdsRoundTripPreservesGeometry) {
  geom::ShapeList shapes;
  shapes.add(tech::Layer::kMetal1, geom::Rect(0, 0, 1000, 2000));
  shapes.add(tech::Layer::kPoly, geom::Rect(-500, 100, 100, 700));
  shapes.add(tech::Layer::kNWell, geom::Rect(-2000, -2000, 5000, 5000));
  const layout::Cell dummy;
  const geom::ShapeList back = layout::fromGds(layout::toGds(shapes));
  ASSERT_EQ(back.size(), shapes.size());
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back.shapes()[i].layer, shapes.shapes()[i].layer) << i;
    EXPECT_EQ(back.shapes()[i].rect, shapes.shapes()[i].rect) << i;
  }
  EXPECT_THROW((void)layout::fromGds("garbage"), std::runtime_error);
}

TEST(Misc, GateEndcapRule) {
  geom::ShapeList shapes;
  // Proper gate: poly crosses the active with end caps.
  shapes.add(tech::Layer::kActive, geom::Rect(0, 0, 5000, 2000));
  shapes.add(tech::Layer::kNPlus, geom::Rect(-400, -400, 5400, 2400));
  shapes.add(tech::Layer::kPoly, geom::Rect(1000, -600, 1600, 2600));
  EXPECT_TRUE(layout::runDrc(kTech, shapes).empty())
      << layout::formatViolations(layout::runDrc(kTech, shapes));

  // Short end cap: flagged.
  geom::ShapeList bad;
  bad.add(tech::Layer::kActive, geom::Rect(0, 0, 5000, 2000));
  bad.add(tech::Layer::kNPlus, geom::Rect(-400, -400, 5400, 2400));
  bad.add(tech::Layer::kPoly, geom::Rect(1000, -200, 1600, 2200));
  const auto v = layout::runDrc(kTech, bad);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "gate.endcap");
}

TEST(Misc, ContactOverGateRule) {
  geom::ShapeList shapes;
  shapes.add(tech::Layer::kActive, geom::Rect(0, 0, 5000, 2000));
  shapes.add(tech::Layer::kNPlus, geom::Rect(-400, -400, 5400, 2400));
  shapes.add(tech::Layer::kPoly, geom::Rect(1000, -600, 1600, 2600));
  // A cut right on the gate (with legal enclosures so only the gate rule
  // fires).
  shapes.add(tech::Layer::kContact, geom::Rect(1100, 700, 1700, 1300));
  shapes.add(tech::Layer::kMetal1, geom::Rect(900, 500, 1900, 1500));
  const auto v = layout::runDrc(kTech, shapes);
  bool sawGateRule = false;
  for (const auto& x : v) sawGateRule |= x.rule == "contact.over_gate";
  EXPECT_TRUE(sawGateRule);
}

TEST(Misc, CsvExports) {
  std::vector<sim::AcPoint> ac(1);
  ac[0].freq = 1000.0;
  ac[0].nodeV = {{0, 0}, {2.0, 0.0}};
  const std::string csv = sim::acToCsv(ac, 1);
  EXPECT_NE(csv.find("freq,mag,mag_db,phase_deg"), std::string::npos);
  EXPECT_NE(csv.find("6.021"), std::string::npos);  // 20 log10(2).

  std::vector<sim::TranPoint> tr(2);
  tr[0].time = 0.0;
  tr[0].nodeV = {0.0, 1.5};
  tr[1].time = 1e-9;
  tr[1].nodeV = {0.0, 1.6};
  const std::string tcsv = sim::tranToCsv(tr, 1);
  EXPECT_NE(tcsv.find("time,v"), std::string::npos);
  EXPECT_NE(tcsv.find("1.500000e+00"), std::string::npos);
}

}  // namespace
}  // namespace lo
