#include "layout/mos_motif.hpp"

#include <gtest/gtest.h>

#include "layout/drc.hpp"
#include "tech/units.hpp"

namespace lo::layout {
namespace {

const tech::Technology kTech = tech::Technology::generic060();

MosMotifSpec specFor(int nf, double w = 20e-6, double l = 1e-6,
                     device::FoldStyle style = device::FoldStyle::kDrainInternal) {
  MosMotifSpec spec;
  spec.plan = device::planFoldsExact(kTech.rules, w, nf, style);
  spec.drawnL = l;
  spec.terminalCurrent = 100e-6;
  return spec;
}

TEST(MosMotif, ShapeMatchesGeneratedBbox) {
  for (int nf : {1, 2, 3, 4, 6, 8}) {
    MosMotifSpec spec = specFor(nf);
    spec.emitWellAndSelect = false;  // motifShape describes the core device.
    MosMotifInfo genInfo;
    const Cell cell = generateMosMotif(kTech, spec, &genInfo);
    const MosMotifInfo est = motifShape(kTech, spec.plan, spec.drawnL, spec.terminalCurrent);
    const geom::Rect box = cell.bbox();
    EXPECT_EQ(box.width(), est.width) << "nf=" << nf;
    EXPECT_EQ(box.height(), est.height) << "nf=" << nf;
  }
}

TEST(MosMotif, StripCountsFollowFoldPlan) {
  const MosMotifInfo i4 = motifShape(kTech, specFor(4).plan, 1e-6);
  EXPECT_EQ(i4.drainStrips, 2);   // Even, internal drains.
  EXPECT_EQ(i4.sourceStrips, 3);
  const MosMotifInfo i5 =
      motifShape(kTech, specFor(5, 20e-6, 1e-6, device::FoldStyle::kAlternating).plan, 1e-6);
  EXPECT_EQ(i5.drainStrips, 3);
  EXPECT_EQ(i5.sourceStrips, 3);
}

TEST(MosMotif, PortsCoverAllTerminals) {
  MosMotifSpec spec = specFor(4);
  spec.drainNet = "D";
  spec.gateNet = "G";
  spec.sourceNet = "S";
  const Cell cell = generateMosMotif(kTech, spec);
  EXPECT_EQ(cell.portsOn("D").size(), 2u);  // nf/2 internal drain strips.
  EXPECT_EQ(cell.portsOn("S").size(), 3u);
  EXPECT_EQ(cell.portsOn("G").size(), 1u);
}

TEST(MosMotif, WidthGrowsWithFoldsHeightShrinksPerFinger) {
  // More folds: wider (more strips+gates) but each finger is shorter.
  const MosMotifInfo i2 = motifShape(kTech, specFor(2, 40e-6).plan, 1e-6);
  const MosMotifInfo i8 = motifShape(kTech, specFor(8, 40e-6).plan, 1e-6);
  EXPECT_GT(i8.width, i2.width);
  EXPECT_LT(i8.height, i2.height);
}

class MotifDrc : public ::testing::TestWithParam<int> {};

TEST_P(MotifDrc, GeneratedMotifIsDrcClean) {
  MosMotifSpec spec = specFor(GetParam());
  spec.type = GetParam() % 2 == 0 ? tech::MosType::kPmos : tech::MosType::kNmos;
  spec.emitWellAndSelect = true;
  const Cell cell = generateMosMotif(kTech, spec);
  const auto violations = runDrc(kTech, cell.shapes);
  EXPECT_TRUE(violations.empty()) << formatViolations(violations);
}

INSTANTIATE_TEST_SUITE_P(FoldSweep, MotifDrc, ::testing::Values(1, 2, 3, 4, 6, 8, 10));

TEST(MosMotif, ContactsScaleWithFingerWidth) {
  // A 40 um device in 2 fingers has 20 um fingers: room for many cuts.
  MosMotifInfo wide, narrow;
  (void)generateMosMotif(kTech, specFor(2, 40e-6), &wide);
  (void)generateMosMotif(kTech, specFor(8, 8e-6), &narrow);
  EXPECT_GT(wide.contactsPerStrip, 10);
  EXPECT_LE(narrow.contactsPerStrip, 2);
}

TEST(MosMotif, EmContactRequirementTracksCurrent) {
  MosMotifSpec lowI = specFor(2);
  lowI.terminalCurrent = 10e-6;
  MosMotifSpec highI = specFor(2);
  highI.terminalCurrent = 5e-3;
  MosMotifInfo a, b;
  (void)generateMosMotif(kTech, lowI, &a);
  (void)generateMosMotif(kTech, highI, &b);
  EXPECT_EQ(a.contactsRequired, 1);
  EXPECT_GT(b.contactsRequired, 4);
}

TEST(MosMotif, WellOnlyForPmos) {
  MosMotifSpec spec = specFor(2);
  spec.type = tech::MosType::kPmos;
  spec.bulkNet = "tailnet";
  const Cell pmos = generateMosMotif(kTech, spec);
  const auto wells = pmos.shapes.onLayer(tech::Layer::kNWell);
  ASSERT_EQ(wells.size(), 1u);
  EXPECT_EQ(wells[0].net, "tailnet");

  spec.type = tech::MosType::kNmos;
  const Cell nmos = generateMosMotif(kTech, spec);
  EXPECT_TRUE(nmos.shapes.onLayer(tech::Layer::kNWell).empty());
}

TEST(MosMotif, GateLengthSnapsUpToMinimum) {
  MosMotifSpec spec = specFor(2, 20e-6, 0.3e-6);  // Below the 0.6 um minimum.
  const Cell cell = generateMosMotif(kTech, spec);
  for (const geom::Shape& s : cell.shapes.onLayer(tech::Layer::kPoly)) {
    EXPECT_GE(std::min(s.rect.width(), s.rect.height()), kTech.rules.polyMinWidth);
  }
}

}  // namespace
}  // namespace lo::layout
