#include "explore/explore.hpp"

#include <gtest/gtest.h>

#include "explore/export.hpp"
#include "explore/manager.hpp"
#include "explore/service_ops.hpp"
#include "service/protocol.hpp"

namespace lo::explore {
namespace {

using service::Json;

// ---------------------------------------------------------------------------
// Pareto archive
// ---------------------------------------------------------------------------

PointEval makePoint(const std::string& key, double power, double area,
                    double noise, bool feasible = true) {
  PointEval p;
  p.key = key;
  p.ok = true;
  p.feasible = feasible;
  p.powerMw = power;
  p.areaUm2 = area;
  p.noiseUv = noise;
  return p;
}

TEST(Pareto, DominanceDefinitions) {
  const auto objectives = allObjectives();
  const PointEval a = makePoint("a", 1.0, 10.0, 5.0);
  const PointEval b = makePoint("b", 2.0, 10.0, 5.0);
  const PointEval c = makePoint("c", 0.5, 20.0, 5.0);

  EXPECT_TRUE(ParetoArchive::weaklyDominates(a, a, objectives));
  EXPECT_FALSE(ParetoArchive::dominates(a, a, objectives));
  EXPECT_TRUE(ParetoArchive::dominates(a, b, objectives));
  EXPECT_FALSE(ParetoArchive::dominates(b, a, objectives));
  // a and c trade power against area: neither dominates.
  EXPECT_FALSE(ParetoArchive::weaklyDominates(a, c, objectives));
  EXPECT_FALSE(ParetoArchive::weaklyDominates(c, a, objectives));
}

TEST(Pareto, DominanceRespectsObjectiveSubset) {
  const std::vector<Objective> powerOnly{Objective::kPowerMw};
  const PointEval a = makePoint("a", 1.0, 99.0, 99.0);
  const PointEval b = makePoint("b", 2.0, 1.0, 1.0);
  EXPECT_TRUE(ParetoArchive::dominates(a, b, powerOnly));
}

TEST(Pareto, InsertKeepsOnlyNonDominatedFeasiblePoints) {
  ParetoArchive archive;
  EXPECT_TRUE(archive.insert(makePoint("a", 2.0, 10.0, 5.0)));
  // Dominated by a: rejected.
  EXPECT_FALSE(archive.insert(makePoint("b", 3.0, 11.0, 6.0)));
  // Duplicate objectives (weakly dominated): rejected.
  EXPECT_FALSE(archive.insert(makePoint("c", 2.0, 10.0, 5.0)));
  // Infeasible: rejected regardless of objectives.
  EXPECT_FALSE(archive.insert(makePoint("d", 0.1, 0.1, 0.1, false)));
  // Trade-off: accepted.
  EXPECT_TRUE(archive.insert(makePoint("e", 1.0, 20.0, 5.0)));
  // Dominates a: accepted, evicts a.
  EXPECT_TRUE(archive.insert(makePoint("f", 1.5, 9.0, 4.0)));

  const auto front = archive.front();
  ASSERT_EQ(front.size(), 2u);
  EXPECT_EQ(front[0].key, "e");  // Sorted by key.
  EXPECT_EQ(front[1].key, "f");
}

TEST(Pareto, FrontWeaklyDominatesQuery) {
  ParetoArchive archive;
  (void)archive.insert(makePoint("a", 1.0, 10.0, 5.0));
  const auto front = archive.front();
  EXPECT_TRUE(ParetoArchive::frontWeaklyDominates(
      front, makePoint("q", 2.0, 10.0, 5.0), archive.objectives()));
  EXPECT_FALSE(ParetoArchive::frontWeaklyDominates(
      front, makePoint("q", 0.5, 10.0, 5.0), archive.objectives()));
}

TEST(Pareto, RequirePostLayoutRejectsUnverifiedPoints) {
  ParetoArchive archive(allObjectives(), /*requirePostLayout=*/true);
  // Feasible but never re-confirmed post-layout: rejected.
  EXPECT_FALSE(archive.insert(makePoint("a", 1.0, 10.0, 5.0)));
  EXPECT_EQ(archive.size(), 0u);
  PointEval verified = makePoint("b", 2.0, 12.0, 6.0);
  verified.postLayoutPass = true;
  EXPECT_TRUE(archive.insert(verified));
  EXPECT_EQ(archive.size(), 1u);
  // The default archive keeps accepting unverified feasible points.
  ParetoArchive relaxed;
  EXPECT_TRUE(relaxed.insert(makePoint("a", 1.0, 10.0, 5.0)));
}

TEST(Pareto, ObjectiveNamesRoundTrip) {
  for (const Objective o : allObjectives()) {
    EXPECT_EQ(objectiveFromName(objectiveName(o)), o);
  }
  EXPECT_EQ(objectiveFromName("power"), Objective::kPowerMw);
  EXPECT_EQ(objectiveFromName("area"), Objective::kAreaUm2);
  EXPECT_EQ(objectiveFromName("noise"), Objective::kNoiseUv);
  EXPECT_THROW((void)objectiveFromName("speed"), std::invalid_argument);
  EXPECT_THROW(ParetoArchive(std::vector<Objective>{}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Spec space and grid machinery
// ---------------------------------------------------------------------------

ExploreSpace twoAxisSpace() {
  ExploreSpace space;
  space.axes.push_back({"gbw", 40e6, 80e6, 3});
  space.axes.push_back({"cload", 1e-12, 3e-12, 2});
  return space;
}

TEST(Space, ValidateRejectsDegenerateSpaces) {
  EXPECT_THROW(validateSpace(ExploreSpace{}), std::invalid_argument);

  ExploreSpace unknown;
  unknown.axes.push_back({"frequency", 0.0, 1.0, 2});
  EXPECT_THROW(validateSpace(unknown), std::invalid_argument);

  ExploreSpace inverted;
  inverted.axes.push_back({"gbw", 80e6, 40e6, 3});
  EXPECT_THROW(validateSpace(inverted), std::invalid_argument);

  ExploreSpace onePoint;
  onePoint.axes.push_back({"gbw", 40e6, 80e6, 1});
  EXPECT_THROW(validateSpace(onePoint), std::invalid_argument);

  ExploreSpace duplicate;
  duplicate.axes.push_back({"gbw", 40e6, 80e6, 2});
  duplicate.axes.push_back({"gbw", 40e6, 80e6, 2});
  EXPECT_THROW(validateSpace(duplicate), std::invalid_argument);

  EXPECT_NO_THROW(validateSpace(twoAxisSpace()));
}

TEST(Space, SeedGridIsRowMajorWithExactEndpoints) {
  const auto grid = seedGrid(twoAxisSpace());
  ASSERT_EQ(grid.size(), 6u);  // 3 x 2, last axis fastest.
  EXPECT_EQ(grid[0], (std::vector<double>{40e6, 1e-12}));
  EXPECT_EQ(grid[1], (std::vector<double>{40e6, 3e-12}));
  EXPECT_EQ(grid[2], (std::vector<double>{60e6, 1e-12}));
  EXPECT_EQ(grid[5], (std::vector<double>{80e6, 3e-12}));
}

TEST(Space, CoordKeyIsCanonicalAndInjective) {
  EXPECT_EQ(coordKey({40e6, 1e-12}), coordKey({40e6, 1e-12}));
  EXPECT_NE(coordKey({40e6, 1e-12}), coordKey({40e6, 2e-12}));
  EXPECT_NE(coordKey({1.0, 2.0}), coordKey({1.0}));
}

TEST(Space, SpecsAtOverridesOnlyTheAxisFields) {
  const ExploreSpace space = twoAxisSpace();
  const sizing::OtaSpecs specs = specsAt(space, {50e6, 2e-12});
  EXPECT_DOUBLE_EQ(specs.gbw, 50e6);
  EXPECT_DOUBLE_EQ(specs.cload, 2e-12);
  EXPECT_DOUBLE_EQ(specs.vdd, sizing::OtaSpecs{}.vdd);
  EXPECT_DOUBLE_EQ(specs.phaseMarginDeg, sizing::OtaSpecs{}.phaseMarginDeg);
}

TEST(Space, CellsCornersLatticeAndSplit) {
  const auto cells = seedCells(twoAxisSpace());
  ASSERT_EQ(cells.size(), 2u);  // (3-1) x (2-1) intervals.
  EXPECT_EQ(cells[0].lo, (std::vector<double>{40e6, 1e-12}));
  EXPECT_EQ(cells[0].hi, (std::vector<double>{60e6, 3e-12}));
  EXPECT_EQ(cells[1].lo, (std::vector<double>{60e6, 1e-12}));

  const auto corners = cellCorners(cells[0]);
  ASSERT_EQ(corners.size(), 4u);  // 2^2.
  EXPECT_EQ(corners[0], (std::vector<double>{40e6, 1e-12}));
  EXPECT_EQ(corners[3], (std::vector<double>{60e6, 3e-12}));

  const auto lattice = cellLattice(cells[0]);
  ASSERT_EQ(lattice.size(), 9u);  // 3^2 including corners.
  EXPECT_EQ(lattice[4], (std::vector<double>{50e6, 2e-12}));  // Centre.

  const auto children = splitCell(cells[0]);
  ASSERT_EQ(children.size(), 4u);  // 2^2.
  for (const Cell& child : children) {
    EXPECT_EQ(child.level, 1);
    for (std::size_t k = 0; k < child.lo.size(); ++k) {
      EXPECT_GE(child.lo[k], cells[0].lo[k]);
      EXPECT_LE(child.hi[k], cells[0].hi[k]);
      EXPECT_LT(child.lo[k], child.hi[k]);
    }
  }
}

// ---------------------------------------------------------------------------
// Explorer over a real scheduler (case 1 for speed; generous tolerance so
// the fast sizing case still counts as feasible).
// ---------------------------------------------------------------------------

ExploreSpace quickSpace() {
  ExploreSpace space;
  space.engineOptions.sizingCase = core::SizingCase::kCase1;
  space.axes.push_back({"gbw", 50e6, 65e6, 2});
  return space;
}

ExploreOptions quickOptions() {
  ExploreOptions options;
  options.budget = 5;
  options.maxRounds = 2;
  options.specTolerance = 0.2;
  return options;
}

class ExplorerTest : public ::testing::Test {
 protected:
  ExplorerTest() : scheduler_(tech::Technology::generic060(), singleThread()) {}
  static service::SchedulerOptions singleThread() {
    service::SchedulerOptions options;
    options.threads = 1;
    return options;
  }
  service::JobScheduler scheduler_;
};

TEST_F(ExplorerTest, SeedAndRefineUnderBudgetDeterministically) {
  Explorer first(scheduler_, quickSpace(), quickOptions());
  const ExploreResult a = first.run();

  EXPECT_GT(a.evaluations, 2);  // Seed (2) plus at least one refinement.
  EXPECT_LE(a.evaluations, quickOptions().budget);
  EXPECT_EQ(a.points.size(), static_cast<std::size_t>(a.evaluations));
  EXPECT_FALSE(a.front.empty());
  EXPECT_FALSE(a.seedFront.empty());
  EXPECT_GE(a.rounds, 1);

  // The final front weakly dominates the coarse-grid front.
  for (const PointEval& p : a.seedFront) {
    EXPECT_TRUE(ParetoArchive::frontWeaklyDominates(a.front, p,
                                                    quickOptions().objectives))
        << p.key;
  }

  // A second run on the warm scheduler is bit-identical: budget counts
  // distinct points whether or not they hit the cache.
  Explorer second(scheduler_, quickSpace(), quickOptions());
  const ExploreResult b = second.run();
  EXPECT_EQ(b.evaluations, a.evaluations);
  EXPECT_GT(b.cacheHits, 0);
  EXPECT_EQ(frontCsv(b, quickSpace()), frontCsv(a, quickSpace()));

  // Progress reached its terminal phase.
  EXPECT_EQ(second.progress().phase, ExplorePhase::kDone);
  EXPECT_EQ(second.progress().evaluated, b.evaluations);
}

TEST_F(ExplorerTest, BudgetIsAHardCeiling) {
  ExploreOptions options = quickOptions();
  options.budget = 1;  // Cannot even finish the 2-point seed grid.
  Explorer explorer(scheduler_, quickSpace(), options);
  const ExploreResult result = explorer.run();
  EXPECT_EQ(result.evaluations, 1);
  EXPECT_TRUE(result.budgetExhausted);
  EXPECT_EQ(result.rounds, 0);
}

TEST_F(ExplorerTest, InvalidSpaceAndBudgetThrow) {
  Explorer noAxes(scheduler_, ExploreSpace{}, quickOptions());
  EXPECT_THROW((void)noAxes.run(), std::invalid_argument);

  ExploreOptions zeroBudget = quickOptions();
  zeroBudget.budget = 0;
  Explorer broke(scheduler_, quickSpace(), zeroBudget);
  EXPECT_THROW((void)broke.run(), std::invalid_argument);
}

TEST_F(ExplorerTest, CsvExportHasAxisColumnsAndOneRowPerFrontPoint) {
  Explorer explorer(scheduler_, quickSpace(), quickOptions());
  const ExploreResult result = explorer.run();
  const std::string csv = frontCsv(result, quickSpace());
  EXPECT_EQ(csv.rfind("gbw,power_mw,area_um2,noise_uv,gbw_hz,", 0), 0u);
  std::size_t lines = 0;
  for (const char ch : csv) lines += ch == '\n';
  EXPECT_EQ(lines, result.front.size() + 1);  // Header + one per point.

  const Json j = frontJson(result, quickSpace(), quickOptions());
  EXPECT_EQ(j.at("front").items().size(), result.front.size());
  EXPECT_EQ(j.at("evaluations").asInt(), result.evaluations);
  EXPECT_EQ(j.at("axes").items().size(), 1u);
  // Every exported front member carries its convergence verdict (and only
  // converged points ever reach the front).
  for (const Json& point : j.at("front").items()) {
    EXPECT_TRUE(point.at("converged").asBool());
  }
}

TEST_F(ExplorerTest, UnconvergedPointsAreExcludedFromTheFront) {
  ExploreSpace space = quickSpace();
  // Case 4 runs the parasitic loop; a zero tolerance guarantees it falls
  // out of the call cap still moving, so the watchdog flags every point.
  space.engineOptions.sizingCase = core::SizingCase::kCase4;
  space.engineOptions.convergenceTol = 0.0;
  space.engineOptions.maxLayoutCalls = 2;
  Explorer explorer(scheduler_, space, quickOptions());
  const ExploreResult result = explorer.run();

  EXPECT_GT(result.evaluations, 0);
  EXPECT_TRUE(result.front.empty());
  for (const PointEval& p : result.points) {
    EXPECT_TRUE(p.ok) << p.error;       // The jobs themselves succeeded...
    EXPECT_FALSE(p.converged);          // ...but never reached a fixed point,
    EXPECT_FALSE(p.feasible) << p.key;  // so none may anchor the front.
  }
}

TEST_F(ExplorerTest, ManagerRunsInBackgroundAndReportsSnapshots) {
  ExploreManager manager(scheduler_);
  const std::uint64_t id = manager.start(quickSpace(), quickOptions());
  const ExploreManager::Outcome outcome = manager.wait(id);
  EXPECT_TRUE(outcome.ok) << outcome.error;
  EXPECT_FALSE(outcome.result.front.empty());

  const auto snapshots = manager.snapshots();
  ASSERT_EQ(snapshots.size(), 1u);
  EXPECT_EQ(snapshots[0].id, id);
  EXPECT_TRUE(snapshots[0].done);
  EXPECT_EQ(snapshots[0].progress.phase, ExplorePhase::kDone);

  EXPECT_THROW((void)manager.wait(999), std::invalid_argument);
}

TEST_F(ExplorerTest, ManagerSurfacesFailuresAsOutcomes) {
  ExploreManager manager(scheduler_);
  const std::uint64_t id = manager.start(ExploreSpace{}, quickOptions());
  const ExploreManager::Outcome outcome = manager.wait(id);
  EXPECT_FALSE(outcome.ok);
  EXPECT_FALSE(outcome.error.empty());
}

// ---------------------------------------------------------------------------
// Protocol ops
// ---------------------------------------------------------------------------

TEST(ExploreOps, SpaceAndOptionsParseFromJson) {
  const Json request = Json::parse(R"({
    "op": "explore", "case": "case2", "corner": "ss",
    "spec": {"vdd": 3.0},
    "axes": [{"field": "gbw", "lo": 4e7, "hi": 8e7, "points": 4}],
    "budget": 10, "max_rounds": 2, "tolerance": 0.1,
    "objectives": ["power", "noise"]})");
  const ExploreSpace space = spaceFromJson(request);
  EXPECT_EQ(space.engineOptions.sizingCase, core::SizingCase::kCase2);
  EXPECT_EQ(space.corner, tech::ProcessCorner::kSlow);
  EXPECT_DOUBLE_EQ(space.base.vdd, 3.0);
  ASSERT_EQ(space.axes.size(), 1u);
  EXPECT_EQ(space.axes[0].points, 4);

  const ExploreOptions options = optionsFromJson(request);
  EXPECT_EQ(options.budget, 10);
  EXPECT_EQ(options.maxRounds, 2);
  EXPECT_DOUBLE_EQ(options.specTolerance, 0.1);
  ASSERT_EQ(options.objectives.size(), 2u);
  EXPECT_EQ(options.objectives[0], Objective::kPowerMw);
  EXPECT_EQ(options.objectives[1], Objective::kNoiseUv);
  EXPECT_FALSE(options.requirePostLayout);  // Off unless requested.

  const ExploreOptions withPlv = optionsFromJson(Json::parse(
      R"({"budget": 4, "require_post_layout": true})"));
  EXPECT_TRUE(withPlv.requirePostLayout);
}

TEST(ExploreOps, ParsersRejectBadRequests) {
  EXPECT_THROW((void)spaceFromJson(Json::parse(R"({"op":"explore"})")),
               std::invalid_argument);
  EXPECT_THROW(
      (void)spaceFromJson(Json::parse(
          R"({"axes":[{"field":"nope","lo":0,"hi":1,"points":2}]})")),
      std::invalid_argument);
  EXPECT_THROW(
      (void)optionsFromJson(Json::parse(R"({"budget":-1})")),
      std::invalid_argument);
  EXPECT_THROW(
      (void)optionsFromJson(Json::parse(R"({"objectives":[]})")),
      std::invalid_argument);
}

TEST(ExploreOps, EndToEndOverTheProtocol) {
  service::SchedulerOptions schedulerOptions;
  schedulerOptions.threads = 1;
  service::JobScheduler scheduler(tech::Technology::generic060(), schedulerOptions);
  service::ServiceProtocol protocol(scheduler);
  ExploreManager manager(scheduler);
  installExploreOps(protocol, manager);

  const Json sync = Json::parse(protocol.handleLine(
      R"({"op":"explore","case":1,"budget":3,"max_rounds":1,"tolerance":0.2,)"
      R"("axes":[{"field":"gbw","lo":5e7,"hi":6.5e7,"points":2}],"csv":true})"));
  ASSERT_TRUE(sync.at("ok").asBool()) << sync.dump();
  EXPECT_EQ(sync.at("explore_id").asUint64(), 1u);
  EXPECT_FALSE(sync.at("front").items().empty());
  EXPECT_EQ(sync.at("csv").asString().rfind("gbw,power_mw", 0), 0u);

  // explore_result re-serves the finished exploration.
  const Json again = Json::parse(
      protocol.handleLine(R"({"op":"explore_result","explore_id":1})"));
  ASSERT_TRUE(again.at("ok").asBool());
  EXPECT_EQ(again.at("front").dump(), sync.at("front").dump());

  // The stats section lists it as done.
  const Json stats = Json::parse(protocol.handleLine(R"({"op":"stats"})"));
  const Json& explorations = stats.at("stats").at("explorations");
  ASSERT_EQ(explorations.items().size(), 1u);
  EXPECT_EQ(explorations.items()[0].at("phase").asString(), "done");

  // Bad requests answer structured errors through the protocol layer.
  const Json bad = Json::parse(protocol.handleLine(R"({"op":"explore"})"));
  EXPECT_FALSE(bad.at("ok").asBool(true));
  const Json unknownId = Json::parse(
      protocol.handleLine(R"({"op":"explore_result","explore_id":77})"));
  EXPECT_FALSE(unknownId.at("ok").asBool(true));
}

}  // namespace
}  // namespace lo::explore
