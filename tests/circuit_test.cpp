#include "circuit/circuit.hpp"

#include <gtest/gtest.h>

#include "circuit/ota.hpp"

namespace lo::circuit {
namespace {

TEST(Circuit, GroundAliases) {
  Circuit c;
  EXPECT_EQ(c.node("0"), kGround);
  EXPECT_EQ(c.node("gnd"), kGround);
  EXPECT_EQ(c.nodeCount(), 1);
}

TEST(Circuit, NodeCreationIsIdempotent) {
  Circuit c;
  const NodeId a = c.node("a");
  EXPECT_EQ(c.node("a"), a);
  EXPECT_EQ(c.nodeCount(), 2);
  EXPECT_EQ(c.nodeName(a), "a");
  EXPECT_FALSE(c.findNode("b").has_value());
  EXPECT_EQ(c.findNode("a"), a);
}

TEST(Circuit, AddAndFindElements) {
  Circuit c;
  const NodeId a = c.node("a"), b = c.node("b");
  c.addResistor("R1", a, b, 1e3);
  c.addCapacitor("C1", a, kGround, 1e-12);
  c.addVSource("V1", a, kGround, Waveform::makeDc(1.0));
  EXPECT_NE(c.findVSource("V1"), nullptr);
  EXPECT_EQ(c.findVSource("VX"), nullptr);
  EXPECT_NE(c.findCapacitor("C1"), nullptr);
  EXPECT_THROW(c.addResistor("R2", a, b, 0.0), std::invalid_argument);
  EXPECT_THROW(c.addCapacitor("C2", a, b, -1e-15), std::invalid_argument);
}

TEST(Circuit, ExplicitCapAtSumsAttachedCaps) {
  Circuit c;
  const NodeId a = c.node("a"), b = c.node("b");
  c.addCapacitor("C1", a, kGround, 1e-12);
  c.addCapacitor("C2", a, b, 2e-12);
  c.addCapacitor("C3", b, kGround, 4e-12);
  EXPECT_DOUBLE_EQ(c.explicitCapAt(a), 3e-12);
  EXPECT_DOUBLE_EQ(c.explicitCapAt(b), 6e-12);
}

TEST(Waveform, PulseShape) {
  const Waveform w = Waveform::makePulse(0.0, 1.0, 10e-9, 2e-9, 2e-9, 50e-9, 200e-9);
  EXPECT_DOUBLE_EQ(w.at(0.0), 0.0);
  EXPECT_NEAR(w.at(11e-9), 0.5, 1e-6);   // Mid-rise.
  EXPECT_NEAR(w.at(30e-9), 1.0, 1e-6);   // Flat top.
  EXPECT_NEAR(w.at(63e-9), 0.5, 1e-6);   // Mid-fall.
  EXPECT_NEAR(w.at(100e-9), 0.0, 1e-6);  // Back to v1.
  EXPECT_NEAR(w.at(211e-9), 0.5, 1e-6);  // Periodic repeat.
  EXPECT_DOUBLE_EQ(w.dcValue(), 0.0);
}

TEST(Waveform, SinShape) {
  const Waveform w = Waveform::makeSin(1.0, 0.5, 1e6);
  EXPECT_DOUBLE_EQ(w.at(0.0), 1.0);
  EXPECT_NEAR(w.at(0.25e-6), 1.5, 1e-9);
  EXPECT_DOUBLE_EQ(w.dcValue(), 1.0);
}

TEST(Ota, InstantiateCreatesElevenTransistors) {
  Circuit c;
  FoldedCascodeOtaDesign d;
  const OtaNodes nodes = instantiateOta(c, d);
  EXPECT_EQ(c.mosfets.size(), 11u);
  EXPECT_EQ(c.vsources.size(), 5u);  // VDD + 4 bias sources.
  EXPECT_EQ(c.capacitors.size(), 1u);
  EXPECT_NE(c.findMos("MP1"), nullptr);
  EXPECT_NE(c.findMos("MN2C"), nullptr);
  EXPECT_DOUBLE_EQ(c.explicitCapAt(nodes.out), d.cload);
}

TEST(Ota, InputPairBulkRidesTheTailNode) {
  Circuit c;
  FoldedCascodeOtaDesign d;
  const OtaNodes nodes = instantiateOta(c, d);
  const Mos* mp1 = c.findMos("MP1");
  ASSERT_NE(mp1, nullptr);
  EXPECT_EQ(mp1->bulk, nodes.tail);
  EXPECT_EQ(mp1->source, nodes.tail);
  const Mos* mp5 = c.findMos("MP5");
  ASSERT_NE(mp5, nullptr);
  EXPECT_EQ(mp5->bulk, nodes.vdd);
}

TEST(Ota, MirrorNodeDrivesBothPSourceGates) {
  Circuit c;
  FoldedCascodeOtaDesign d;
  const OtaNodes nodes = instantiateOta(c, d);
  EXPECT_EQ(c.findMos("MP3")->gate, nodes.y1);
  EXPECT_EQ(c.findMos("MP4")->gate, nodes.y1);
  EXPECT_EQ(c.findMos("MP3C")->drain, nodes.y1);
  EXPECT_EQ(c.findMos("MP4C")->drain, nodes.out);
}

TEST(Ota, PrefixKeepsInstancesSeparate) {
  Circuit c;
  FoldedCascodeOtaDesign d;
  instantiateOta(c, d, "_a");
  instantiateOta(c, d, "_b");
  EXPECT_EQ(c.mosfets.size(), 22u);
  EXPECT_NE(c.findMos("MP1_a"), nullptr);
  EXPECT_NE(*c.findNode("out_a"), *c.findNode("out_b"));
}

TEST(Ota, BranchCurrentAccounting) {
  FoldedCascodeOtaDesign d;
  d.tailCurrent = 200e-6;
  d.cascodeCurrent = 120e-6;
  EXPECT_DOUBLE_EQ(otaGroupCurrent(d, OtaGroup::kInputPair), 100e-6);
  EXPECT_DOUBLE_EQ(otaGroupCurrent(d, OtaGroup::kSink), 220e-6);
  EXPECT_DOUBLE_EQ(otaGroupCurrent(d, OtaGroup::kPCascode), 120e-6);
  EXPECT_DOUBLE_EQ(d.supplyCurrent(), 440e-6);
}

}  // namespace
}  // namespace lo::circuit
