#include "geom/geometry.hpp"

#include <gtest/gtest.h>

namespace lo::geom {
namespace {

using tech::Layer;

TEST(Rect, ConstructorNormalises) {
  const Rect r(10, 20, 0, 5);
  EXPECT_EQ(r.x0, 0);
  EXPECT_EQ(r.y0, 5);
  EXPECT_EQ(r.x1, 10);
  EXPECT_EQ(r.y1, 20);
  EXPECT_EQ(r.width(), 10);
  EXPECT_EQ(r.height(), 15);
}

TEST(Rect, AreaAndPerimeterInSi) {
  const Rect r(0, 0, 1000, 2000);  // 1 um x 2 um
  EXPECT_DOUBLE_EQ(r.areaM2(), 2e-12);
  EXPECT_DOUBLE_EQ(r.perimeterM(), 6e-6);
}

TEST(Rect, OverlapsVsTouches) {
  const Rect a(0, 0, 10, 10);
  const Rect b(10, 0, 20, 10);  // Shares an edge.
  const Rect c(5, 5, 15, 15);   // Overlaps a.
  const Rect d(11, 0, 20, 10);  // Disjoint from a.
  EXPECT_FALSE(a.overlaps(b));
  EXPECT_TRUE(a.touches(b));
  EXPECT_TRUE(a.overlaps(c));
  EXPECT_FALSE(a.overlaps(d));
  EXPECT_FALSE(a.touches(d));
}

TEST(Rect, IntersectionAndMerge) {
  const Rect a(0, 0, 10, 10);
  const Rect b(5, 5, 20, 20);
  const Rect i = a.intersected(b);
  EXPECT_EQ(i, Rect(5, 5, 10, 10));
  EXPECT_EQ(a.merged(b), Rect(0, 0, 20, 20));
  EXPECT_TRUE(a.intersected(Rect(50, 50, 60, 60)).empty());
}

TEST(Rect, DistanceBetweenDisjointRects) {
  const Rect a(0, 0, 10, 10);
  EXPECT_EQ(a.distanceTo(Rect(15, 0, 20, 10)), 5);   // Horizontal gap.
  EXPECT_EQ(a.distanceTo(Rect(0, 17, 10, 20)), 7);   // Vertical gap.
  EXPECT_EQ(a.distanceTo(Rect(13, 14, 20, 20)), 4);  // Diagonal: max-norm.
  EXPECT_EQ(a.distanceTo(Rect(5, 5, 20, 20)), 0);    // Overlapping.
}

TEST(Orient, RotationsMapPointsCorrectly) {
  const Point p{3, 1};
  EXPECT_EQ(apply(Orient::kR0, p), (Point{3, 1}));
  EXPECT_EQ(apply(Orient::kR90, p), (Point{-1, 3}));
  EXPECT_EQ(apply(Orient::kR180, p), (Point{-3, -1}));
  EXPECT_EQ(apply(Orient::kR270, p), (Point{1, -3}));
  EXPECT_EQ(apply(Orient::kMX, p), (Point{3, -1}));
  EXPECT_EQ(apply(Orient::kMY, p), (Point{-3, 1}));
}

TEST(Orient, RectTransformNormalises) {
  const Rect r(0, 0, 10, 4);
  const Rect rot = apply(Orient::kR90, r);
  EXPECT_EQ(rot.width(), 4);
  EXPECT_EQ(rot.height(), 10);
  EXPECT_LE(rot.x0, rot.x1);
}

TEST(Orient, FourQuarterTurnsAreIdentity) {
  Point p{7, -2};
  Point q = p;
  for (int i = 0; i < 4; ++i) q = apply(Orient::kR90, q);
  EXPECT_EQ(q, p);
}

TEST(ShapeList, AddSkipsEmptyRects) {
  ShapeList sl;
  sl.add(Layer::kMetal1, Rect(0, 0, 0, 10));
  EXPECT_TRUE(sl.empty());
  sl.add(Layer::kMetal1, Rect(0, 0, 5, 10));
  EXPECT_EQ(sl.size(), 1u);
}

TEST(ShapeList, BboxPerLayerAndOverall) {
  ShapeList sl;
  sl.add(Layer::kMetal1, Rect(0, 0, 10, 10));
  sl.add(Layer::kPoly, Rect(20, 20, 30, 40));
  EXPECT_EQ(sl.bbox(), Rect(0, 0, 30, 40));
  EXPECT_EQ(sl.bbox(Layer::kPoly), Rect(20, 20, 30, 40));
  EXPECT_TRUE(sl.bbox(Layer::kMetal2).empty());
}

TEST(ShapeList, MergeAppliesTransformThenTranslation) {
  ShapeList child;
  child.add(Layer::kMetal1, Rect(0, 0, 10, 4), "netA");
  ShapeList parent;
  parent.merge(child, Orient::kR90, 100, 200);
  ASSERT_EQ(parent.size(), 1u);
  const Shape& s = parent.shapes()[0];
  EXPECT_EQ(s.rect, Rect(96, 200, 100, 210));
  EXPECT_EQ(s.net, "netA");
}

TEST(ShapeList, NetAndLayerQueries) {
  ShapeList sl;
  sl.add(Layer::kMetal1, Rect(0, 0, 10, 10), "vdd");
  sl.add(Layer::kMetal1, Rect(20, 0, 30, 10), "gnd");
  sl.add(Layer::kPoly, Rect(0, 0, 5, 5), "vdd");
  EXPECT_EQ(sl.onLayer(Layer::kMetal1).size(), 2u);
  EXPECT_EQ(sl.onNet("vdd").size(), 2u);
  EXPECT_DOUBLE_EQ(sl.drawnAreaM2(Layer::kMetal1), 2.0e-16);
}

}  // namespace
}  // namespace lo::geom
