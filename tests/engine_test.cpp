#include "core/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "core/flow.hpp"
#include "core/sweep.hpp"

namespace lo::core {
namespace {

const tech::Technology kTech = tech::Technology::generic060();

// --- Registry. ---

TEST(TopologyRegistry, BuiltInsAreRegistered) {
  auto& reg = TopologyRegistry::instance();
  EXPECT_TRUE(reg.contains(kFoldedCascodeOtaTopologyName));
  EXPECT_TRUE(reg.contains(kTwoStageTopologyName));
  const auto names = reg.names();
  EXPECT_GE(names.size(), 2u);
}

TEST(TopologyRegistry, CreateKnownTopology) {
  const auto model = device::MosModel::create("ekv");
  for (const char* name : {kFoldedCascodeOtaTopologyName, kTwoStageTopologyName}) {
    const auto topo = TopologyRegistry::instance().create(name, kTech, *model);
    ASSERT_NE(topo, nullptr);
    EXPECT_EQ(topo->name(), name);
    EXPECT_FALSE(topo->criticalNets().empty());
    EXPECT_EQ(topo->parasiticSnapshot(), nullptr);  // No layout call yet.
  }
}

TEST(TopologyRegistry, UnknownTopologyThrowsWithNames) {
  const auto model = device::MosModel::create("ekv");
  try {
    (void)TopologyRegistry::instance().create("no_such_topology", kTech, *model);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    // The message names the bad key and lists the registered ones.
    EXPECT_NE(std::strstr(e.what(), "no_such_topology"), nullptr);
    EXPECT_NE(std::strstr(e.what(), kFoldedCascodeOtaTopologyName), nullptr);
  }
}

TEST(TopologyRegistry, CustomRegistrationRoundTrips) {
  auto& reg = TopologyRegistry::instance();
  reg.add("custom_test_topology",
          [](const tech::Technology& t, const device::MosModel& m) {
            return TopologyRegistry::instance().create(kTwoStageTopologyName, t, m);
          });
  EXPECT_TRUE(reg.contains("custom_test_topology"));
  const auto model = device::MosModel::create("ekv");
  const auto topo = reg.create("custom_test_topology", kTech, *model);
  EXPECT_EQ(topo->name(), kTwoStageTopologyName);
}

TEST(TopologyRegistry, DuplicateRegistrationIsRejected) {
  auto& reg = TopologyRegistry::instance();
  try {
    reg.add(kTwoStageTopologyName,
            [](const tech::Technology& t, const device::MosModel& m) {
              return TopologyRegistry::instance().create(kTwoStageTopologyName, t,
                                                         m);
            });
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::strstr(e.what(), kTwoStageTopologyName), nullptr);
    EXPECT_NE(std::strstr(e.what(), "already registered"), nullptr);
  }
  // The original factory survives the rejected overwrite attempt.
  const auto model = device::MosModel::create("ekv");
  EXPECT_EQ(reg.create(kTwoStageTopologyName, kTech, *model)->name(),
            kTwoStageTopologyName);
}

// --- Shared loop plumbing. ---

TEST(Engine, PolicyForMatchesTableOneCases) {
  const auto p1 = SynthesisEngine::policyFor(SizingCase::kCase1);
  EXPECT_FALSE(p1.diffusionCaps);
  const auto p2 = SynthesisEngine::policyFor(SizingCase::kCase2);
  EXPECT_TRUE(p2.diffusionCaps);
  EXPECT_FALSE(p2.exactDiffusion);
  for (SizingCase c : {SizingCase::kCase3, SizingCase::kCase4}) {
    const auto p = SynthesisEngine::policyFor(c);
    EXPECT_TRUE(p.diffusionCaps);
    EXPECT_TRUE(p.exactDiffusion);
    EXPECT_EQ(p.routingParasitics, nullptr);  // Fed back later by the loop.
  }
}

TEST(Engine, RelativeChangeIsWorstPerNetRatio) {
  EXPECT_DOUBLE_EQ(SynthesisEngine::relativeChange({1.0, 2.0}, {1.0, 2.0}), 0.0);
  EXPECT_NEAR(SynthesisEngine::relativeChange({1.0, 2.0}, {1.1, 2.0}), 0.1, 1e-12);
  // The largest per-net change dominates, not the average.
  EXPECT_NEAR(SynthesisEngine::relativeChange({1.0, 1.0, 1.0}, {1.01, 1.5, 1.0}), 0.5,
              1e-12);
}

TEST(Engine, SingleLayoutCallCannotConverge) {
  // Convergence needs two successive snapshots; one call must report
  // parasiticConverged == false but still finish the generation tail.
  EngineOptions opt;
  opt.maxLayoutCalls = 1;
  const SynthesisEngine engine(kTech, opt);
  const EngineResult r = engine.run(sizing::OtaSpecs{});
  EXPECT_EQ(r.layoutCalls, 1);
  EXPECT_FALSE(r.parasiticConverged);
  EXPECT_EQ(r.iterations.size(), 1u);
  EXPECT_GT(r.measured.gbwHz, 0.0);
}

TEST(Engine, ZeroToleranceNeverConverges) {
  EngineOptions opt;
  opt.convergenceTol = 0.0;
  opt.maxLayoutCalls = 4;
  const SynthesisEngine engine(kTech, opt);
  const EngineResult r = engine.run(sizing::OtaSpecs{});
  EXPECT_FALSE(r.parasiticConverged);
  EXPECT_EQ(r.layoutCalls, 4);  // Runs to the cap.
  EXPECT_EQ(r.iterations.size(), 4u);
}

// --- Convergence watchdog. ---

EngineIteration snapshot(std::vector<double> caps) {
  EngineIteration it;
  it.netCaps = std::move(caps);
  return it;
}

TEST(Engine, RelativeChangeSizeMismatchIsTotalChange) {
  // A changed critical-net set between snapshots must read as 100% change,
  // not as a comparison of the common prefix.
  EXPECT_DOUBLE_EQ(SynthesisEngine::relativeChange({1.0}, {1.0, 2.0}), 1.0);
  EXPECT_DOUBLE_EQ(SynthesisEngine::relativeChange({1.0, 2.0}, {}), 1.0);
}

TEST(ConvergenceWatchdog, EmptyHistoryIsConvergedWithoutLoop) {
  // Cases 1/2 never run the parasitic loop: nothing to converge, and the
  // report must say the loop never ran rather than claim a settled loop.
  const ConvergenceReport r = analyzeConvergence({}, false, 0.01);
  EXPECT_TRUE(r.converged());
  EXPECT_FALSE(r.loopRan);
  EXPECT_DOUBLE_EQ(r.worstResidual, 0.0);
  EXPECT_TRUE(r.callDeltas.empty());
  EXPECT_EQ(r.cycleLength, 0);
}

TEST(ConvergenceWatchdog, SettledLoopStaysConverged) {
  const std::vector<EngineIteration> history = {
      snapshot({1.0e-12}), snapshot({1.2e-12}), snapshot({1.2e-12})};
  const ConvergenceReport r = analyzeConvergence(history, true, 0.01);
  EXPECT_TRUE(r.converged());
  EXPECT_TRUE(r.loopRan);
  ASSERT_EQ(r.callDeltas.size(), 2u);
  EXPECT_DOUBLE_EQ(r.worstResidual, r.callDeltas.back());
}

TEST(ConvergenceWatchdog, AlternatingCapsReadAsPeriodTwoOscillation) {
  // A -> B -> A -> B: the loop revisits states instead of approaching one.
  const std::vector<EngineIteration> history = {
      snapshot({1.0e-12}), snapshot({2.0e-12}),
      snapshot({1.0e-12}), snapshot({2.0e-12})};
  const ConvergenceReport r = analyzeConvergence(history, false, 0.01);
  EXPECT_EQ(r.verdict, ConvergenceVerdict::kOscillating);
  EXPECT_EQ(r.cycleLength, 2);
  EXPECT_FALSE(r.converged());
  // The oscillation amplitude is the residual: |1-2|/1 = 1.0.
  EXPECT_DOUBLE_EQ(r.worstResidual, 1.0);
}

TEST(ConvergenceWatchdog, MonotoneGrowthReadsAsDrift) {
  const std::vector<EngineIteration> history = {
      snapshot({1.0e-12}), snapshot({2.0e-12}),
      snapshot({4.0e-12}), snapshot({8.0e-12})};
  const ConvergenceReport r = analyzeConvergence(history, false, 0.01);
  EXPECT_EQ(r.verdict, ConvergenceVerdict::kDrifting);
  EXPECT_EQ(r.cycleLength, 0);
  ASSERT_EQ(r.callDeltas.size(), 3u);
  EXPECT_DOUBLE_EQ(r.worstResidual, 1.0);  // Last step: |4-8|/4.
}

TEST(ConvergenceWatchdog, SingleSnapshotNeverLooksSettled) {
  // One snapshot carries no settling evidence: the residual pins to 1.0
  // and the verdict is drift, not convergence.
  const ConvergenceReport r =
      analyzeConvergence({snapshot({1.0e-12})}, false, 0.01);
  EXPECT_EQ(r.verdict, ConvergenceVerdict::kDrifting);
  EXPECT_DOUBLE_EQ(r.worstResidual, 1.0);
  EXPECT_TRUE(r.callDeltas.empty());
}

TEST(ConvergenceWatchdog, EngineResultCarriesTheVerdict) {
  // A converged real run reports kConverged with the loop's own deltas; a
  // zero-tolerance run that fell out of the cap reports a failure verdict.
  const SynthesisEngine engine(kTech, EngineOptions{});
  const EngineResult ok = engine.run(sizing::OtaSpecs{});
  EXPECT_EQ(ok.convergence.converged(), ok.parasiticConverged);
  EXPECT_TRUE(ok.convergence.loopRan);
  EXPECT_EQ(ok.convergence.callDeltas.size(), ok.iterations.size() - 1);

  EngineOptions strict;
  strict.convergenceTol = 0.0;
  strict.maxLayoutCalls = 4;
  const EngineResult stuck = SynthesisEngine(kTech, strict).run(sizing::OtaSpecs{});
  EXPECT_FALSE(stuck.convergence.converged());
  EXPECT_TRUE(stuck.convergence.loopRan);
  EXPECT_EQ(stuck.convergence.callDeltas.size(), stuck.iterations.size() - 1);
}

TEST(Engine, IterationsCarryAllCriticalNets) {
  const SynthesisEngine engine(kTech, EngineOptions{});
  const EngineResult r = engine.run(sizing::OtaSpecs{});
  ASSERT_GE(r.criticalNets.size(), 3u);
  for (const EngineIteration& it : r.iterations) {
    ASSERT_EQ(it.netCaps.size(), r.criticalNets.size());
    for (double cap : it.netCaps) EXPECT_GT(cap, 0.0);
    EXPECT_GT(it.primaryCurrent, 0.0);
    EXPECT_GT(it.pairWidth, 0.0);
  }
}

TEST(Engine, RegistryRunMatchesWrapperRun) {
  // The registry-driven overload and the explicit-topology overload must
  // produce identical numbers.
  EngineOptions opt;
  const SynthesisEngine engine(kTech, opt);
  const EngineResult viaRegistry = engine.run(sizing::OtaSpecs{});
  FlowOptions flowOpt;
  const FlowResult viaWrapper = SynthesisFlow(kTech, flowOpt).run(sizing::OtaSpecs{});
  EXPECT_DOUBLE_EQ(viaRegistry.measured.gbwHz, viaWrapper.measured.gbwHz);
  EXPECT_DOUBLE_EQ(viaRegistry.predicted.dcGainDb, viaWrapper.predicted.dcGainDb);
  EXPECT_EQ(viaRegistry.layoutCalls, viaWrapper.layoutCalls);
}

TEST(Engine, TwoStageConvergenceWatchesCompensationNets) {
  // The multi-net criterion must include both amplifying nodes and the
  // Rz/Cc midpoint (regression: the old two-stage flow watched only
  // out + o1 summed into one number).
  EngineOptions opt;
  opt.topology = kTwoStageTopologyName;
  const SynthesisEngine engine(kTech, opt);
  sizing::OtaSpecs specs;
  specs.gbw = 30e6;
  const EngineResult r = engine.run(specs);
  EXPECT_TRUE(r.parasiticConverged);
  const auto& nets = r.criticalNets;
  for (const char* net : {"out", "o1", "rzm", "tail"}) {
    EXPECT_NE(std::find(nets.begin(), nets.end(), net), nets.end()) << net;
  }
  for (const EngineIteration& it : r.iterations) {
    EXPECT_EQ(it.netCaps.size(), nets.size());
  }
}

// --- Engine hooks (cancellation + stage timing). ---

TEST(EngineHooks, CancelRequestedAbortsBeforeAnyWork) {
  EngineOptions opt;
  opt.hooks.cancelRequested = [] { return true; };
  const SynthesisEngine engine(kTech, opt);
  EXPECT_THROW((void)engine.run(sizing::OtaSpecs{}), JobCancelled);
}

TEST(EngineHooks, OnStageReportsEveryLoopPhase) {
  EngineOptions opt;
  std::vector<std::string> stages;
  opt.hooks.onStage = [&stages](EngineStage stage, double seconds) {
    EXPECT_GE(seconds, 0.0);
    stages.push_back(engineStageName(stage));
  };
  const SynthesisEngine engine(kTech, opt);
  const EngineResult r = engine.run(sizing::OtaSpecs{});
  EXPECT_GT(r.measured.gbwHz, 0.0);
  ASSERT_FALSE(stages.empty());
  EXPECT_EQ(stages.front(), "sizing");
  for (const char* expected :
       {"sizing", "parasitic_layout", "generation", "extraction", "verification"}) {
    EXPECT_NE(std::find(stages.begin(), stages.end(), expected), stages.end())
        << expected;
  }
}

TEST(EngineHooks, HookedRunIsBitIdenticalToUnhooked) {
  // Observation must not perturb the numbers: the cache stores unhooked
  // results and serves them to hooked jobs.
  const EngineResult plain = SynthesisEngine(kTech, EngineOptions{}).run(sizing::OtaSpecs{});
  EngineOptions opt;
  opt.hooks.cancelRequested = [] { return false; };
  opt.hooks.onStage = [](EngineStage, double) {};
  const EngineResult hooked = SynthesisEngine(kTech, opt).run(sizing::OtaSpecs{});
  EXPECT_EQ(std::memcmp(&plain.measured, &hooked.measured,
                        sizeof(sizing::OtaPerformance)),
            0);
  EXPECT_EQ(std::memcmp(&plain.predicted, &hooked.predicted,
                        sizeof(sizing::OtaPerformance)),
            0);
  EXPECT_EQ(plain.layoutCalls, hooked.layoutCalls);
}

// --- Sweep driver. ---

std::vector<SweepJob> sweepJobs() {
  std::vector<SweepJob> jobs;
  for (double gbwMhz : {40.0, 65.0}) {
    for (tech::ProcessCorner corner :
         {tech::ProcessCorner::kTypical, tech::ProcessCorner::kSlow,
          tech::ProcessCorner::kFast}) {
      SweepJob job;
      job.label = "ota_" + std::to_string(static_cast<int>(gbwMhz)) + "_" +
                  tech::cornerName(corner);
      job.specs.gbw = gbwMhz * 1e6;
      job.corner = corner;
      jobs.push_back(job);
    }
  }
  for (double gbwMhz : {20.0, 30.0}) {
    SweepJob job;
    job.label = "two_stage_" + std::to_string(static_cast<int>(gbwMhz));
    job.options.topology = kTwoStageTopologyName;
    job.specs.gbw = gbwMhz * 1e6;
    jobs.push_back(job);
  }
  return jobs;  // 8 jobs.
}

TEST(SweepDriver, DeterministicAcrossThreadCounts) {
  const std::vector<SweepJob> jobs = sweepJobs();
  ASSERT_GE(jobs.size(), 8u);
  const auto serial = SweepDriver(kTech, 1).run(jobs);
  const auto threaded = SweepDriver(kTech, 4).run(jobs);
  ASSERT_EQ(serial.size(), jobs.size());
  ASSERT_EQ(threaded.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    SCOPED_TRACE(jobs[i].label);
    EXPECT_EQ(serial[i].index, i);
    EXPECT_EQ(threaded[i].index, i);
    EXPECT_EQ(serial[i].label, jobs[i].label);
    ASSERT_TRUE(serial[i].ok) << serial[i].error;
    ASSERT_TRUE(threaded[i].ok) << threaded[i].error;
    // Bit-for-bit: the performance records and convergence history must be
    // byte-identical regardless of scheduling.
    EXPECT_EQ(std::memcmp(&serial[i].result.measured, &threaded[i].result.measured,
                          sizeof(sizing::OtaPerformance)),
              0);
    EXPECT_EQ(std::memcmp(&serial[i].result.predicted, &threaded[i].result.predicted,
                          sizeof(sizing::OtaPerformance)),
              0);
    EXPECT_EQ(serial[i].result.layoutCalls, threaded[i].result.layoutCalls);
    ASSERT_EQ(serial[i].result.iterations.size(), threaded[i].result.iterations.size());
    for (std::size_t k = 0; k < serial[i].result.iterations.size(); ++k) {
      const auto& a = serial[i].result.iterations[k];
      const auto& b = threaded[i].result.iterations[k];
      ASSERT_EQ(a.netCaps.size(), b.netCaps.size());
      for (std::size_t n = 0; n < a.netCaps.size(); ++n) {
        EXPECT_DOUBLE_EQ(a.netCaps[n], b.netCaps[n]);
      }
    }
  }
}

TEST(SweepDriver, BadJobReportsErrorWithoutAbortingSweep) {
  std::vector<SweepJob> jobs;
  SweepJob good;
  good.label = "good";
  jobs.push_back(good);
  SweepJob bad;
  bad.label = "bad";
  bad.options.topology = "no_such_topology";
  jobs.push_back(bad);
  const auto outcomes = SweepDriver(kTech, 2).run(jobs);
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_TRUE(outcomes[0].ok);
  EXPECT_FALSE(outcomes[1].ok);
  EXPECT_NE(outcomes[1].error.find("no_such_topology"), std::string::npos);
}

TEST(SweepDriver, WorkerCountClampsToJobsAndFloorsAtOne) {
  const SweepDriver driver(kTech, 8);
  EXPECT_EQ(driver.workerCount(3), 3);
  EXPECT_EQ(driver.workerCount(100), 8);
  EXPECT_EQ(SweepDriver(kTech, -5).workerCount(0), 1);
}

}  // namespace
}  // namespace lo::core
