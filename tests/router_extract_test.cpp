#include <gtest/gtest.h>

#include "layout/extract.hpp"
#include "layout/router.hpp"
#include "tech/units.hpp"

namespace lo::layout {
namespace {

const tech::Technology kTech = tech::Technology::generic060();

/// Cell with two ports on net "a" 100 um apart horizontally and two ports on
/// net "b" below them.
Cell twoNetCell() {
  Cell c;
  c.addPort("a", tech::Layer::kMetal1, geom::Rect(0, 50000, 1000, 51000));
  c.addPort("a", tech::Layer::kMetal1, geom::Rect(100000, 50000, 101000, 51000));
  c.addPort("b", tech::Layer::kMetal1, geom::Rect(0, 0, 1000, 1000));
  c.addPort("b", tech::Layer::kMetal1, geom::Rect(100000, 0, 101000, 1000));
  return c;
}

TEST(Router, TrunkLengthSpansPorts) {
  const Cell c = twoNetCell();
  const RoutingResult r = routeCell(kTech, c, {{"a", 0.0}}, false);
  ASSERT_EQ(r.nets.size(), 1u);
  EXPECT_NEAR(r.nets[0].trunkLength, 100e-6, 5e-6);
  // Minimum trunk width: via landing (cut + metal1 enclosure both sides).
  EXPECT_EQ(r.nets[0].trunkWidth,
            kTech.rules.via1Size + 2 * kTech.rules.metal1OverVia1);
  EXPECT_GT(r.nets[0].capToGround, 0.0);
}

TEST(Router, SinglePortNetsSkipped) {
  Cell c;
  c.addPort("solo", tech::Layer::kMetal1, geom::Rect(0, 0, 1000, 1000));
  const RoutingResult r = routeCell(kTech, c, {{"solo", 0.0}}, false);
  EXPECT_TRUE(r.nets.empty());
}

TEST(Router, EmWidensHighCurrentTrunk) {
  const Cell c = twoNetCell();
  const RoutingResult lo = routeCell(kTech, c, {{"a", 1e-6}}, false);
  const RoutingResult hi = routeCell(kTech, c, {{"a", 4e-3}}, false);
  EXPECT_GT(hi.nets[0].trunkWidth, lo.nets[0].trunkWidth);
  EXPECT_GE(hi.nets[0].trunkWidth, 4000);  // 4 mA at 1 mA/um.
  // Wider wire, more capacitance.
  EXPECT_GT(hi.nets[0].capToGround, lo.nets[0].capToGround);
}

TEST(Router, ConflictingTrunksGetSeparatedTracks) {
  // Nets "a" and "b" have overlapping x spans and nearby desired heights,
  // so their trunks must land on separated tracks.
  Cell c;
  for (int i = 0; i < 2; ++i) {
    const geom::Coord x = i * 80000;
    c.addPort("a", tech::Layer::kMetal1, geom::Rect(x, 10000, x + 1000, 11000));
    c.addPort("b", tech::Layer::kMetal1, geom::Rect(x, 12000, x + 1000, 13000));
  }
  const RoutingResult r = routeCell(kTech, c, {{"a", 0.0}, {"b", 0.0}}, true);
  ASSERT_EQ(r.nets.size(), 2u);
  // Emitted trunk rects (metal1, spanning the full port range) must not
  // violate metal1 spacing.
  std::vector<geom::Rect> trunkRects;
  for (const geom::Shape& s : r.wires.onLayer(tech::Layer::kMetal1)) {
    if (s.rect.width() > 50000) trunkRects.push_back(s.rect);
  }
  ASSERT_EQ(trunkRects.size(), 2u);
  EXPECT_GE(trunkRects[0].distanceTo(trunkRects[1]), kTech.rules.metal1Spacing);
}

TEST(Router, CouplingReportedForAdjacentTrunks) {
  Cell c;
  for (int i = 0; i < 2; ++i) {
    const geom::Coord x = i * 200000;  // 200 um parallel run.
    c.addPort("a", tech::Layer::kMetal1, geom::Rect(x, 10000, x + 1000, 11000));
    c.addPort("b", tech::Layer::kMetal1, geom::Rect(x, 12000, x + 1000, 13000));
  }
  const RoutingResult r = routeCell(kTech, c, {{"a", 0.0}, {"b", 0.0}}, false);
  const auto key = std::make_pair(std::string("a"), std::string("b"));
  ASSERT_TRUE(r.coupling.count(key));
  // Of the order of 200 um * 0.07 fF/um, scaled by spacing: > 1 fF.
  EXPECT_GT(r.coupling.at(key), 1e-15);
  EXPECT_LT(r.coupling.at(key), 100e-15);
}

TEST(Router, GeometryModeEmitsDrcCompatibleWires) {
  const Cell c = twoNetCell();
  const RoutingResult r = routeCell(kTech, c, {{"a", 1e-3}, {"b", 0.0}}, true);
  EXPECT_FALSE(r.wires.empty());
  // Via cuts present for each branch.
  EXPECT_FALSE(r.wires.onLayer(tech::Layer::kVia1).empty());
  // Parasitic mode produces identical electrical numbers.
  const RoutingResult rp = routeCell(kTech, c, {{"a", 1e-3}, {"b", 0.0}}, false);
  ASSERT_EQ(r.nets.size(), rp.nets.size());
  for (std::size_t i = 0; i < r.nets.size(); ++i) {
    EXPECT_DOUBLE_EQ(r.nets[i].capToGround, rp.nets[i].capToGround);
  }
  EXPECT_TRUE(rp.wires.empty());
}

TEST(Extract, WellCapMatchesAreaPlusPerimeter) {
  const geom::Rect well(0, 0, 10000, 20000);  // 10 x 20 um.
  const double cap = wellCapOf(kTech, well);
  const double expected = 200e-12 * kTech.nwellCapAreaPerM2 + 60e-6 * kTech.nwellCapPerimPerM;
  EXPECT_NEAR(cap, expected, expected * 1e-9);
}

TEST(Extract, ReportSkipsAcGroundNets) {
  RoutingResult routing;
  routing.nets.push_back({"sig", 800, 1e-4, 0.0, 5e-15, 0});
  routing.nets.push_back({"vdd", 800, 1e-4, 0.0, 9e-15, 0});
  routing.coupling[{"sig", "vdd"}] = 2e-15;
  geom::ShapeList wells;
  wells.add(tech::Layer::kNWell, geom::Rect(0, 0, 10000, 10000), "tailn");
  const ParasiticReport rep = buildReport(kTech, routing, wells, {"vdd"});
  EXPECT_TRUE(rep.nets.count("sig"));
  EXPECT_FALSE(rep.nets.count("vdd"));
  // Coupling to AC ground folds into the signal net's ground cap.
  EXPECT_NEAR(rep.nets.at("sig").routingCap, 7e-15, 1e-21);
  EXPECT_GT(rep.nets.at("tailn").wellCap, 0.0);
}

TEST(Extract, CouplingBetweenSignalNetsKeptSymmetric) {
  RoutingResult routing;
  routing.nets.push_back({"x1", 800, 1e-4, 0.0, 1e-15, 0});
  routing.nets.push_back({"x2", 800, 1e-4, 0.0, 1e-15, 0});
  routing.coupling[{"x1", "x2"}] = 3e-15;
  const ParasiticReport rep = buildReport(kTech, routing, {}, {});
  EXPECT_DOUBLE_EQ(rep.nets.at("x1").coupling.at("x2"), 3e-15);
  EXPECT_DOUBLE_EQ(rep.nets.at("x2").coupling.at("x1"), 3e-15);
  EXPECT_DOUBLE_EQ(rep.nets.at("x1").totalCap(), 4e-15);
}

TEST(Extract, AnnotateSplitsNetWithSeriesResistance) {
  circuit::Circuit c;
  const auto x1 = c.node("x1");
  ParasiticReport rep;
  rep.nets["x1"].routingRes = 50.0;
  rep.nets["x1"].routingCap = 5e-15;
  annotateCircuit(c, rep);

  // The wire resistance becomes a series RPAR_ element to a tap node, and
  // the net's parasitic capacitance hangs off the tap (the far end of the
  // wire), not the original node.
  ASSERT_EQ(c.resistors.size(), 1u);
  EXPECT_EQ(c.resistors[0].name, "RPAR_x1");
  EXPECT_DOUBLE_EQ(c.resistors[0].ohms, 50.0);
  const auto tap = c.findNode("x1_rpar");
  ASSERT_TRUE(tap.has_value());
  EXPECT_EQ(c.resistors[0].a, x1);
  EXPECT_EQ(c.resistors[0].b, *tap);
  EXPECT_DOUBLE_EQ(c.explicitCapAt(*tap), 5e-15);
  EXPECT_DOUBLE_EQ(c.explicitCapAt(x1), 0.0);
}

TEST(Extract, AnnotateSkipsNegligibleSeriesResistance) {
  circuit::Circuit c;
  const auto x1 = c.node("x1");
  ParasiticReport rep;
  rep.nets["x1"].routingRes = 0.5;  // Below the 1-ohm default threshold.
  rep.nets["x1"].routingCap = 5e-15;
  annotateCircuit(c, rep);
  EXPECT_TRUE(c.resistors.empty());
  EXPECT_FALSE(c.findNode("x1_rpar").has_value());
  EXPECT_DOUBLE_EQ(c.explicitCapAt(x1), 5e-15);
}

TEST(Extract, AnnotateSeriesResistanceThresholdIsConfigurable) {
  circuit::Circuit c;
  (void)c.node("x1");
  ParasiticReport rep;
  rep.nets["x1"].routingRes = 0.5;
  annotateCircuit(c, rep, /*minSeriesRes=*/0.1);
  ASSERT_EQ(c.resistors.size(), 1u);
  EXPECT_DOUBLE_EQ(c.resistors[0].ohms, 0.5);
}

TEST(Extract, AnnotateCouplingAttachesToTapNodes) {
  circuit::Circuit c;
  (void)c.node("x1");
  (void)c.node("x2");
  ParasiticReport rep;
  rep.nets["x1"].routingRes = 20.0;
  rep.nets["x1"].coupling["x2"] = 2e-15;
  rep.nets["x2"].coupling["x1"] = 2e-15;
  annotateCircuit(c, rep);
  // x1 splits (20 ohm), x2 does not; the coupling cap runs tap-to-node.
  ASSERT_EQ(c.resistors.size(), 1u);
  ASSERT_EQ(c.capacitors.size(), 1u);
  const auto tap = c.findNode("x1_rpar");
  ASSERT_TRUE(tap.has_value());
  const auto x2 = *c.findNode("x2");
  EXPECT_TRUE((c.capacitors[0].a == *tap && c.capacitors[0].b == x2) ||
              (c.capacitors[0].a == x2 && c.capacitors[0].b == *tap));
}

TEST(Extract, AnnotateCircuitAddsLumpedCaps) {
  circuit::Circuit c;
  const auto x1 = c.node("x1"), x2 = c.node("x2");
  ParasiticReport rep;
  rep.nets["x1"].routingCap = 5e-15;
  rep.nets["x1"].coupling["x2"] = 2e-15;
  rep.nets["x2"].coupling["x1"] = 2e-15;
  rep.nets["x2"].wellCap = 7e-15;
  rep.nets["missing"].routingCap = 1e-15;  // Not in the circuit: ignored.
  annotateCircuit(c, rep);
  ASSERT_EQ(c.capacitors.size(), 3u);
  EXPECT_DOUBLE_EQ(c.explicitCapAt(x1), 5e-15 + 2e-15);
  EXPECT_DOUBLE_EQ(c.explicitCapAt(x2), 7e-15 + 2e-15);
}

}  // namespace
}  // namespace lo::layout
