#include "service/scheduler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>

#include "core/sweep.hpp"
#include "service/serialize.hpp"

namespace lo::service {
namespace {

const tech::Technology kTech = tech::Technology::generic060();

JobRequest fastJob(const std::string& label, double gbwMhz = 65.0) {
  JobRequest job;
  job.label = label;
  // Case 1 skips the parasitic loop: the cheapest real end-to-end run.
  job.options.sizingCase = core::SizingCase::kCase1;
  job.specs.gbw = gbwMhz * 1e6;
  return job;
}

/// A job that reaches the worker but fails instantly inside the engine
/// (unknown topology), so ordering / queue tests stay cheap.
JobRequest stubJob(const std::string& label, int priority = 0) {
  JobRequest job;
  job.label = label;
  job.options.topology = "no_such_topology";
  job.priority = priority;
  return job;
}

/// Lets a test hold the single worker inside a designated job while it
/// arranges the queue behind it.
struct Gate {
  std::mutex mutex;
  std::condition_variable cv;
  bool open = false;
  bool entered = false;

  void release() {
    {
      const std::lock_guard<std::mutex> lock(mutex);
      open = true;
    }
    cv.notify_all();
  }
  void waitUntilEntered() {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [this] { return entered; });
  }
  void enterAndWait() {
    std::unique_lock<std::mutex> lock(mutex);
    entered = true;
    cv.notify_all();
    cv.wait(lock, [this] { return open; });
  }
};

TEST(SchedulerBatch, MatchesSweepDriverBitForBit) {
  std::vector<core::SweepJob> sweepJobs(2);
  sweepJobs[0].label = "ota";
  sweepJobs[1].label = "two_stage";
  sweepJobs[1].options.topology = core::kTwoStageTopologyName;
  sweepJobs[1].specs.gbw = 30e6;
  const auto sweep = core::SweepDriver(kTech, 2).run(sweepJobs);

  std::vector<JobRequest> requests(2);
  requests[0].label = "ota";
  requests[1].label = "two_stage";
  requests[1].options.topology = core::kTwoStageTopologyName;
  requests[1].specs.gbw = 30e6;
  JobScheduler scheduler(kTech, SchedulerOptions{});
  const auto statuses = scheduler.runBatch(requests);

  ASSERT_EQ(statuses.size(), sweep.size());
  for (std::size_t i = 0; i < statuses.size(); ++i) {
    SCOPED_TRACE(statuses[i].label);
    ASSERT_TRUE(sweep[i].ok) << sweep[i].error;
    ASSERT_EQ(statuses[i].state, JobState::kDone) << statuses[i].error;
    EXPECT_EQ(std::memcmp(&statuses[i].result.measured, &sweep[i].result.measured,
                          sizeof(sizing::OtaPerformance)),
              0);
    EXPECT_EQ(std::memcmp(&statuses[i].result.predicted, &sweep[i].result.predicted,
                          sizeof(sizing::OtaPerformance)),
              0);
    EXPECT_EQ(statuses[i].result.layoutCalls, sweep[i].result.layoutCalls);
  }
}

TEST(SchedulerCache, DuplicateSubmissionsAreServedByteIdentically) {
  SchedulerOptions options;
  options.threads = 1;  // Sequential: later duplicates find the cache warm.
  JobScheduler scheduler(kTech, options);
  const auto statuses =
      scheduler.runBatch({fastJob("first"), fastJob("dup1"), fastJob("dup2")});

  ASSERT_EQ(statuses.size(), 3u);
  for (const JobStatus& status : statuses) {
    ASSERT_EQ(status.state, JobState::kDone) << status.error;
  }
  EXPECT_FALSE(statuses[0].cacheHit);
  EXPECT_TRUE(statuses[1].cacheHit);
  EXPECT_TRUE(statuses[2].cacheHit);

  // The Table-1-grade determinism claim: a cache hit is byte-identical to
  // the cold run, down to the serialised JSON.
  const std::string cold = toJson(statuses[0].result).dump();
  EXPECT_EQ(toJson(statuses[1].result).dump(), cold);
  EXPECT_EQ(toJson(statuses[2].result).dump(), cold);

  const CacheStats stats = scheduler.cacheStats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.inserts, 1u);
}

TEST(SchedulerCache, BypassCacheForcesFreshRuns) {
  SchedulerOptions options;
  options.threads = 1;
  std::atomic<int> engineRuns{0};
  options.preRunHook = [&engineRuns](const JobRequest&, int) { ++engineRuns; };
  JobScheduler scheduler(kTech, options);
  JobRequest job = fastJob("nocache");
  job.bypassCache = true;
  const auto statuses = scheduler.runBatch({job, job});
  ASSERT_EQ(statuses[0].state, JobState::kDone);
  ASSERT_EQ(statuses[1].state, JobState::kDone);
  EXPECT_FALSE(statuses[1].cacheHit);
  EXPECT_EQ(engineRuns.load(), 2);
}

TEST(SchedulerCoalescing, ConcurrentDuplicatesRunTheEngineOnce) {
  Gate gate;
  std::atomic<int> engineRuns{0};
  SchedulerOptions options;
  options.threads = 4;
  options.preRunHook = [&](const JobRequest&, int) {
    ++engineRuns;
    gate.enterAndWait();  // Hold the leader until all duplicates queued up.
  };
  JobScheduler scheduler(kTech, options);

  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 4; ++i) ids.push_back(scheduler.submit(fastJob("dup")));
  gate.waitUntilEntered();
  // Wait until the other three workers popped their jobs and parked as
  // waiters on the leader (parked jobs count as coalesced immediately).
  while (scheduler.metrics().coalesced < 3) std::this_thread::yield();
  gate.release();

  std::string leaderJson;
  int hits = 0;
  for (const std::uint64_t id : ids) {
    const JobStatus status = scheduler.wait(id);
    ASSERT_EQ(status.state, JobState::kDone) << status.error;
    const std::string json = toJson(status.result).dump();
    if (leaderJson.empty()) leaderJson = json;
    EXPECT_EQ(json, leaderJson);
    if (status.cacheHit) ++hits;
  }
  EXPECT_EQ(engineRuns.load(), 1);  // Single-flight: one real run.
  EXPECT_EQ(hits, 3);
  EXPECT_EQ(scheduler.metrics().coalesced, 3u);
}

TEST(SchedulerPriority, HigherPriorityOvertakesFifo) {
  Gate gate;
  std::vector<std::string> runOrder;
  std::mutex orderMutex;
  SchedulerOptions options;
  options.threads = 1;
  options.preRunHook = [&](const JobRequest& request, int) {
    {
      const std::lock_guard<std::mutex> lock(orderMutex);
      runOrder.push_back(request.label);
    }
    if (request.label == "blocker") gate.enterAndWait();
  };
  JobScheduler scheduler(kTech, options);

  const std::uint64_t blocker = scheduler.submit(stubJob("blocker"));
  gate.waitUntilEntered();  // Worker is pinned; everything below stays queued.
  const std::uint64_t low = scheduler.submit(stubJob("low", 0));
  const std::uint64_t urgent = scheduler.submit(stubJob("urgent", 10));
  gate.release();

  (void)scheduler.wait(blocker);
  (void)scheduler.wait(low);
  (void)scheduler.wait(urgent);
  ASSERT_EQ(runOrder.size(), 3u);
  EXPECT_EQ(runOrder[0], "blocker");
  EXPECT_EQ(runOrder[1], "urgent");  // Priority 10 overtakes the earlier submit.
  EXPECT_EQ(runOrder[2], "low");
}

TEST(SchedulerCancel, QueuedJobDiesWithoutRunning) {
  Gate gate;
  std::atomic<int> engineRuns{0};
  SchedulerOptions options;
  options.threads = 1;
  options.preRunHook = [&](const JobRequest& request, int) {
    ++engineRuns;
    if (request.label == "blocker") gate.enterAndWait();
  };
  JobScheduler scheduler(kTech, options);

  const std::uint64_t blocker = scheduler.submit(stubJob("blocker"));
  gate.waitUntilEntered();
  const std::uint64_t victim = scheduler.submit(fastJob("victim"));
  EXPECT_TRUE(scheduler.cancel(victim));
  gate.release();

  (void)scheduler.wait(blocker);
  const JobStatus status = scheduler.wait(victim);
  EXPECT_EQ(status.state, JobState::kCancelled);
  EXPECT_EQ(status.attempts, 0);
  EXPECT_EQ(engineRuns.load(), 1);  // Only the blocker entered the engine.
  EXPECT_EQ(scheduler.metrics().cancelled, 1u);
}

TEST(SchedulerCancel, RunningJobAbortsAtTheNextEnginePoll) {
  Gate gate;
  SchedulerOptions options;
  options.threads = 1;
  options.preRunHook = [&](const JobRequest&, int) { gate.enterAndWait(); };
  JobScheduler scheduler(kTech, options);

  const std::uint64_t id = scheduler.submit(fastJob("victim"));
  gate.waitUntilEntered();           // The job is now running (pre-engine).
  EXPECT_TRUE(scheduler.cancel(id)); // Sets the flag the engine will poll.
  gate.release();

  const JobStatus status = scheduler.wait(id);
  EXPECT_EQ(status.state, JobState::kCancelled);
  EXPECT_FALSE(scheduler.cancel(id));  // Already terminal.
}

TEST(SchedulerDeadline, ExpiresBeforeRunning) {
  Gate gate;
  SchedulerOptions options;
  options.threads = 1;
  options.preRunHook = [&](const JobRequest& request, int) {
    if (request.label == "blocker") gate.enterAndWait();
  };
  JobScheduler scheduler(kTech, options);

  const std::uint64_t blocker = scheduler.submit(stubJob("blocker"));
  gate.waitUntilEntered();
  JobRequest doomed = fastJob("doomed");
  doomed.deadlineSeconds = 0.001;
  const std::uint64_t id = scheduler.submit(doomed);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  gate.release();

  (void)scheduler.wait(blocker);
  const JobStatus status = scheduler.wait(id);
  EXPECT_EQ(status.state, JobState::kExpired);
  EXPECT_NE(status.error.find("deadline"), std::string::npos);
  EXPECT_EQ(scheduler.metrics().expired, 1u);
}

TEST(SchedulerRetry, TransientFailuresRetryUpToBudget) {
  SchedulerOptions options;
  options.threads = 1;
  options.preRunHook = [](const JobRequest& request, int attempt) {
    if (request.label == "flaky" && attempt <= 2) {
      throw TransientError("backend hiccup");
    }
  };
  JobScheduler scheduler(kTech, options);

  JobRequest flaky = fastJob("flaky");
  flaky.maxRetries = 2;
  const JobStatus ok = scheduler.wait(scheduler.submit(flaky));
  EXPECT_EQ(ok.state, JobState::kDone) << ok.error;
  EXPECT_EQ(ok.attempts, 3);  // Two transient failures, then success.
  EXPECT_EQ(scheduler.metrics().retries, 2u);

  JobRequest exhausted = fastJob("flaky", 40.0);  // Distinct cache key.
  exhausted.label = "flaky";
  exhausted.maxRetries = 1;
  const JobStatus failed = scheduler.wait(scheduler.submit(exhausted));
  EXPECT_EQ(failed.state, JobState::kFailed);
  EXPECT_NE(failed.error.find("retries exhausted"), std::string::npos);
}

TEST(SchedulerRetry, RetryCountIsSurfacedInTheStatus) {
  SchedulerOptions options;
  options.threads = 1;
  options.preRunHook = [](const JobRequest& request, int attempt) {
    if (request.label == "thrice" && attempt <= 3) {
      throw TransientError("injected fault: engine_transient");
    }
  };
  JobScheduler scheduler(kTech, options);

  JobRequest job = fastJob("thrice");
  job.maxRetries = 3;
  const JobStatus status = scheduler.wait(scheduler.submit(job));
  EXPECT_EQ(status.state, JobState::kDone) << status.error;
  EXPECT_EQ(status.attempts, 4);  // Three injected failures, then success.
  EXPECT_EQ(status.retries, 3);
  EXPECT_EQ(scheduler.metrics().retries, 3u);
}

TEST(SchedulerRetry, RetryBudgetIsClampedToTheSchedulerLimit) {
  SchedulerOptions options;
  options.threads = 1;
  options.maxRetryLimit = 2;
  std::atomic<int> attempts{0};
  options.preRunHook = [&attempts](const JobRequest&, int) {
    ++attempts;
    throw TransientError("always down");  // Never lets an attempt through.
  };
  JobScheduler scheduler(kTech, options);

  JobRequest hostile = fastJob("hostile");
  hostile.maxRetries = 1000000;  // A client cannot pin a worker forever.
  const JobStatus status = scheduler.wait(scheduler.submit(hostile));
  EXPECT_EQ(status.state, JobState::kFailed);
  EXPECT_EQ(status.retries, 2);
  EXPECT_EQ(attempts.load(), 3);  // 1 + the clamped retry budget.
}

TEST(SchedulerQueue, BoundedSubmissionRejectsOverflow) {
  Gate gate;
  SchedulerOptions options;
  options.threads = 1;
  options.maxQueueDepth = 1;
  options.preRunHook = [&](const JobRequest&, int) { gate.enterAndWait(); };
  JobScheduler scheduler(kTech, options);

  const std::uint64_t running = scheduler.submit(stubJob("running"));
  gate.waitUntilEntered();  // Popped: the queue itself is empty again.
  (void)scheduler.submit(stubJob("queued"));
  EXPECT_THROW((void)scheduler.submit(stubJob("overflow")), QueueFullError);
  gate.release();
  (void)scheduler.wait(running);
}

TEST(SchedulerAdmission, OverloadShedsLowestPriorityWork) {
  Gate gate;
  SchedulerOptions options;
  options.threads = 1;
  options.maxQueueDepth = 4;
  options.shedWatermark = 0.5;  // Shed depth: 2 of 4.
  options.preRunHook = [&](const JobRequest&, int) { gate.enterAndWait(); };
  JobScheduler scheduler(kTech, options);

  const std::uint64_t running = scheduler.submit(stubJob("running"));
  gate.waitUntilEntered();  // Popped: only the two below stay queued.
  const std::uint64_t keep = scheduler.submit(stubJob("keep", 1));
  const std::uint64_t victimId = scheduler.submit(stubJob("victim", 0));

  // At the watermark: higher-priority work displaces the lowest queued job.
  const std::uint64_t vip = scheduler.submit(stubJob("vip", 5));
  const JobStatus victim = scheduler.wait(victimId);
  EXPECT_EQ(victim.state, JobState::kShed);
  EXPECT_NE(victim.error.find("displaced"), std::string::npos);
  EXPECT_EQ(scheduler.metrics().shed, 1u);

  // Nothing strictly lower-priority remains to displace: the submission is
  // pushed back with a structured retry hint, catchable as the legacy
  // QueueFullError too.
  try {
    (void)scheduler.submit(stubJob("turned-away", 1));
    FAIL() << "expected OverloadedError";
  } catch (const OverloadedError& e) {
    EXPECT_EQ(e.queueDepth(), 2u);
    EXPECT_GE(e.retryAfterMs(), 100);
    EXPECT_LE(e.retryAfterMs(), 30000);
  }
  EXPECT_THROW((void)scheduler.submit(stubJob("legacy", 1)), QueueFullError);
  EXPECT_EQ(scheduler.metrics().overloadRejections, 2u);

  gate.release();
  (void)scheduler.wait(running);
  (void)scheduler.wait(keep);
  (void)scheduler.wait(vip);
}

TEST(SchedulerBreaker, OpensAfterConsecutiveFailuresThenReopensOnBadProbe) {
  SchedulerOptions options;
  options.threads = 1;
  options.breakerFailureThreshold = 2;
  options.breakerResetSeconds = 0.05;
  JobScheduler scheduler(kTech, options);

  (void)scheduler.wait(scheduler.submit(stubJob("f1")));
  (void)scheduler.wait(scheduler.submit(stubJob("f2")));
  // Two consecutive non-transient failures: the topology's breaker is open.
  try {
    (void)scheduler.submit(stubJob("rejected"));
    FAIL() << "expected CircuitOpenError";
  } catch (const CircuitOpenError& e) {
    EXPECT_EQ(e.topology(), "no_such_topology");
    EXPECT_GE(e.retryAfterMs(), 1);
  }
  EXPECT_EQ(scheduler.metrics().breakerOpens, 1u);
  EXPECT_EQ(scheduler.metrics().breakerRejections, 1u);
  // Healthy topologies are unaffected: breakers are per-topology.
  EXPECT_EQ(scheduler.wait(scheduler.submit(fastJob("healthy"))).state,
            JobState::kDone);

  // After the reset window one half-open probe gets through; its failure
  // slams the breaker shut again.
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_EQ(scheduler.wait(scheduler.submit(stubJob("probe"))).state,
            JobState::kFailed);
  EXPECT_THROW((void)scheduler.submit(stubJob("still-open")), CircuitOpenError);
  EXPECT_EQ(scheduler.metrics().breakerOpens, 2u);
}

TEST(SchedulerBreaker, SuccessfulProbeClosesTheBreaker) {
  std::atomic<bool> poison{true};
  SchedulerOptions options;
  options.threads = 1;
  options.breakerFailureThreshold = 1;
  options.breakerResetSeconds = 0.05;
  options.preRunHook = [&](const JobRequest&, int) {
    if (poison.load()) throw std::runtime_error("injected engine failure");
  };
  JobScheduler scheduler(kTech, options);

  EXPECT_EQ(scheduler.wait(scheduler.submit(fastJob("poisoned"))).state,
            JobState::kFailed);
  EXPECT_THROW((void)scheduler.submit(fastJob("while-open", 66.0)),
               CircuitOpenError);

  poison.store(false);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_EQ(scheduler.wait(scheduler.submit(fastJob("probe", 67.0))).state,
            JobState::kDone);
  // The good probe closed the breaker: submissions flow freely again.
  EXPECT_EQ(scheduler.wait(scheduler.submit(fastJob("after", 68.0))).state,
            JobState::kDone);
}

TEST(SchedulerHealth, SnapshotCoversQueueBreakersAndJournal) {
  SchedulerOptions options;
  options.threads = 2;
  options.maxQueueDepth = 8;
  options.shedWatermark = 0.5;
  options.breakerFailureThreshold = 3;
  JobScheduler scheduler(kTech, options);
  (void)scheduler.wait(scheduler.submit(stubJob("fail")));

  const HealthSnapshot h = scheduler.health();
  EXPECT_EQ(h.queueLimit, 8u);
  EXPECT_EQ(h.shedDepth, 4u);
  EXPECT_EQ(h.workers, 2);
  EXPECT_EQ(h.queueDepth, 0u);
  EXPECT_FALSE(h.overloaded);
  EXPECT_FALSE(h.journal.enabled);  // No --journal: the section says so.
  ASSERT_EQ(h.breakers.size(), 1u);
  EXPECT_EQ(h.breakers[0].topology, "no_such_topology");
  EXPECT_EQ(h.breakers[0].state, "closed");
  EXPECT_EQ(h.breakers[0].consecutiveFailures, 1);
  EXPECT_EQ(h.breakers[0].opens, 0u);
}

TEST(SchedulerErrors, EngineFailureIsReportedNotThrown) {
  JobScheduler scheduler(kTech, SchedulerOptions{});
  const JobStatus status = scheduler.wait(scheduler.submit(stubJob("bad")));
  EXPECT_EQ(status.state, JobState::kFailed);
  EXPECT_NE(status.error.find("no_such_topology"), std::string::npos);
  EXPECT_EQ(scheduler.metrics().failed, 1u);
}

TEST(SchedulerErrors, UnknownIdsAreHandled) {
  JobScheduler scheduler(kTech, SchedulerOptions{});
  EXPECT_THROW((void)scheduler.wait(12345), std::invalid_argument);
  EXPECT_FALSE(scheduler.cancel(12345));
  EXPECT_FALSE(scheduler.status(12345).has_value());
}

TEST(SchedulerTrace, StagesAndTimingsAreRecorded) {
  SchedulerOptions options;
  options.threads = 1;
  JobScheduler scheduler(kTech, options);
  const JobStatus status = scheduler.wait(scheduler.submit(fastJob("traced")));
  ASSERT_EQ(status.state, JobState::kDone) << status.error;
  ASSERT_FALSE(status.trace.stages.empty());
  EXPECT_EQ(status.trace.stages.front().stage, "sizing");
  bool sawVerification = false;
  for (const StageTiming& st : status.trace.stages) {
    EXPECT_GE(st.seconds, 0.0);
    if (st.stage == "verification") sawVerification = true;
  }
  EXPECT_TRUE(sawVerification);
  EXPECT_GT(status.trace.runSeconds, 0.0);

  // A cache hit reports no engine stages.
  const JobStatus hit = scheduler.wait(scheduler.submit(fastJob("traced")));
  EXPECT_TRUE(hit.cacheHit);
  EXPECT_TRUE(hit.trace.stages.empty());

  const MetricsSnapshot metrics = scheduler.metrics();
  EXPECT_GT(metrics.stageSeconds.at("verification"), 0.0);
  EXPECT_EQ(metrics.stageCalls.at("generation"), 1u);
}

}  // namespace
}  // namespace lo::service
