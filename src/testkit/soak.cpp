#include "testkit/soak.hpp"

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <mutex>
#include <set>
#include <thread>

#include "core/topology.hpp"
#include "service/serialize.hpp"
#include "testkit/generators.hpp"

namespace lo::testkit {

namespace {

using Clock = std::chrono::steady_clock;

double seconds(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

/// Monotonicity monitor: snapshots the counters on a short period and
/// records the first decrease it ever sees.
class Monitor {
 public:
  Monitor(service::JobScheduler& scheduler, std::vector<std::string>& violations,
          std::mutex& violationsMutex)
      : scheduler_(scheduler),
        violations_(violations),
        violationsMutex_(violationsMutex),
        thread_([this] { loop(); }) {}

  ~Monitor() {
    stop_.store(true);
    thread_.join();
  }

 private:
  void check(const char* name, std::uint64_t now, std::uint64_t& last) {
    if (now < last) {
      const std::lock_guard<std::mutex> lock(violationsMutex_);
      violations_.push_back(std::string("monotonicity: ") + name + " fell from " +
                            std::to_string(last) + " to " + std::to_string(now));
    }
    last = now;
  }

  void loop() {
    service::MetricsSnapshot m{};
    service::CacheStats c{};
    while (!stop_.load()) {
      const service::MetricsSnapshot now = scheduler_.metrics();
      const service::CacheStats cache = scheduler_.cacheStats();
      check("submitted", now.submitted, m.submitted);
      check("completed", now.completed, m.completed);
      check("failed", now.failed, m.failed);
      check("cancelled", now.cancelled, m.cancelled);
      check("expired", now.expired, m.expired);
      check("retries", now.retries, m.retries);
      check("coalesced", now.coalesced, m.coalesced);
      check("max_running", now.maxRunning, m.maxRunning);
      check("cache.hits", cache.hits, c.hits);
      check("cache.misses", cache.misses, c.misses);
      check("cache.inserts", cache.inserts, c.inserts);
      check("cache.evictions", cache.evictions, c.evictions);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }

  service::JobScheduler& scheduler_;
  std::vector<std::string>& violations_;
  std::mutex& violationsMutex_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

service::Json submitRequest(const CorpusPoint& point, bool withDeadline,
                            const SoakOptions& options) {
  service::Json req = service::Json::object();
  req.set("op", "synthesize");
  req.set("async", true);
  req.set("label", point.label);
  req.set("topology", point.options.topology);
  req.set("case", core::sizingCaseName(point.options.sizingCase));
  req.set("spec", service::toJson(point.specs));
  req.set("corner", tech::cornerName(point.corner));
  req.set("max_retries", options.maxRetries);
  if (withDeadline) req.set("deadline_seconds", options.deadlineSeconds);
  return req;
}

}  // namespace

service::Json SoakReport::toJson() const {
  service::Json out = service::Json::object();
  out.set("ok", ok());
  out.set("requests", requests);
  out.set("rejected", rejected);
  out.set("transport_errors", transportErrors);
  out.set("tracked_jobs", trackedJobs);
  out.set("elapsed_seconds", elapsedSeconds);

  service::Json states = service::Json::object();
  for (const auto& [state, count] : terminalStates) states.set(state, count);
  out.set("terminal_states", std::move(states));

  service::Json faults = service::Json::object();
  for (const auto& [site, count] : faultsFired) faults.set(site, count);
  out.set("faults_fired", std::move(faults));

  if (recovery.ran) {
    service::Json rec = service::Json::object();
    rec.set("crashed", recovery.crashed);
    rec.set("replayed_records", recovery.replayedRecords);
    rec.set("pending_at_boot", recovery.pendingAtBoot);
    rec.set("served_from_cache", recovery.servedFromCache);
    rec.set("re_run", recovery.reRun);
    rec.set("compactions", recovery.compactions);
    rec.set("torn_tail", recovery.tornTail);
    out.set("recovery", std::move(rec));
  }

  out.set("stats", metricsToJson(metrics, cache, 0, 0, 0));

  service::Json viol = service::Json::array();
  for (const std::string& v : violations) viol.push(v);
  out.set("violations", std::move(viol));
  return out;
}

SoakReport runSoak(const tech::Technology& technology, const SoakOptions& options) {
  SoakReport report;
  FaultPlan plan(options.faults);

  service::SchedulerOptions schedulerOptions;
  schedulerOptions.threads = options.schedulerThreads;
  schedulerOptions.maxQueueDepth = 512;
  schedulerOptions.cache.diskDir = options.cacheDir;
  schedulerOptions.cache.capacity = 64;
  installSchedulerFaults(schedulerOptions, plan);
  if (!options.journalDir.empty()) {
    schedulerOptions.journal.dir = options.journalDir;
    installJournalFaults(schedulerOptions, plan);
  }

  auto schedulerPtr =
      std::make_unique<service::JobScheduler>(technology, schedulerOptions);
  service::JobScheduler& scheduler = *schedulerPtr;
  service::ServiceProtocol protocol(scheduler);
  installProtocolFaults(protocol, plan);

  // A small pool of distinct cheap points, drawn from the seed, so the
  // clients' duplicate submissions engage coalescing and the cache.
  CorpusOptions corpusOptions;
  corpusOptions.size = options.poolSize;
  corpusOptions.cases = {core::SizingCase::kCase1, core::SizingCase::kCase2};
  const std::vector<CorpusPoint> pool =
      generateCorpus(options.seed, corpusOptions);

  std::mutex stateMutex;
  std::vector<std::uint64_t> trackedIds;
  std::uint64_t requests = 0, rejected = 0, transportErrors = 0;

  std::mutex violationsMutex;
  const auto started = Clock::now();
  const auto stopAt =
      started + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(options.durationSeconds));

  {
    Monitor monitor(scheduler, report.violations, violationsMutex);
    std::vector<std::thread> clients;
    clients.reserve(static_cast<std::size_t>(options.clients));
    for (int c = 0; c < options.clients; ++c) {
      clients.emplace_back([&, c] {
        SpecGen gen(options.seed * 7919 + static_cast<std::uint64_t>(c));
        std::vector<std::uint64_t> pending;
        int sent = 0;
        const auto sendLine = [&](const service::Json& req) {
          const std::string responseText = protocol.handleLine(req.dump());
          {
            const std::lock_guard<std::mutex> lock(stateMutex);
            ++requests;
          }
          ++sent;
          try {
            return service::Json::parse(responseText);
          } catch (const std::exception&) {
            // A truncated response: the transport failed but the daemon's
            // side of the operation still happened (a submitted job keeps
            // its id); the drain phase accounts for such orphans.
            const std::lock_guard<std::mutex> lock(stateMutex);
            ++transportErrors;
            return service::Json();
          }
        };
        while (Clock::now() < stopAt &&
               (options.maxRequestsPerClient == 0 ||
                sent < options.maxRequestsPerClient)) {
          const int dice = gen.pick(100);
          if (dice < 65 || pending.empty()) {
            if (scheduler.journal() != nullptr &&
                plan.shouldFire(FaultSite::kProcessKill)) {
              // The simulated SIGKILL: from here on nothing reaches the
              // journal, exactly as if the process had died at this
              // instant.  The in-process daemon keeps serving (phase 1's
              // invariants still apply); the recovery phase below replays
              // whatever the frozen log claims is unfinished.
              scheduler.journal()->simulateCrash();
            }
            const CorpusPoint& point =
                pool[static_cast<std::size_t>(gen.pick(options.poolSize))];
            const bool deadline =
                gen.uniform(0.0, 1.0) < options.deadlineFraction;
            const service::Json response =
                sendLine(submitRequest(point, deadline, options));
            if (response.isObject()) {
              if (response.at("ok").asBool()) {
                const std::uint64_t id = response.at("id").asUint64();
                pending.push_back(id);
                const std::lock_guard<std::mutex> lock(stateMutex);
                trackedIds.push_back(id);
              } else {
                const std::lock_guard<std::mutex> lock(stateMutex);
                ++rejected;
              }
            }
          } else if (dice < 85) {
            service::Json req = service::Json::object();
            req.set("op", "wait");
            req.set("id", pending.back());
            pending.pop_back();
            (void)sendLine(req);
          } else if (dice < 93) {
            service::Json req = service::Json::object();
            req.set("op", "cancel");
            req.set("id", pending[static_cast<std::size_t>(
                        gen.pick(static_cast<int>(pending.size())))]);
            (void)sendLine(req);
          } else {
            service::Json req = service::Json::object();
            req.set("op", "stats");
            (void)sendLine(req);
          }
        }
      });
    }
    for (std::thread& t : clients) t.join();

    // Drain: every submission -- including those whose response was
    // truncated before the client saw the id -- must reach a terminal
    // state within the timeout, with nothing queued or running.
    const auto drainDeadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(
                               options.drainTimeoutSeconds));
    while (Clock::now() < drainDeadline) {
      const service::MetricsSnapshot m = scheduler.metrics();
      const std::uint64_t terminal =
          m.completed + m.failed + m.cancelled + m.expired + m.shed;
      if (terminal == m.submitted && scheduler.queueDepth() == 0 &&
          scheduler.runningCount() == 0) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }  // Monitor stops here, before the final snapshot checks.

  report.requests = requests;
  report.rejected = rejected;
  report.transportErrors = transportErrors;
  report.trackedJobs = trackedIds.size();
  report.metrics = scheduler.metrics();
  report.cache = scheduler.cacheStats();
  for (const FaultSite site : allFaultSites()) {
    const std::uint64_t count = plan.fired(site);
    if (count > 0) report.faultsFired[faultSiteName(site)] = count;
  }

  // Invariant: no lost jobs.
  const std::uint64_t terminal = report.metrics.completed +
                                 report.metrics.failed +
                                 report.metrics.cancelled +
                                 report.metrics.expired +
                                 report.metrics.shed;
  if (terminal != report.metrics.submitted || scheduler.queueDepth() != 0 ||
      scheduler.runningCount() != 0) {
    report.violations.push_back(
        "lost jobs: submitted=" + std::to_string(report.metrics.submitted) +
        " terminal=" + std::to_string(terminal) +
        " queued=" + std::to_string(scheduler.queueDepth()) +
        " running=" + std::to_string(scheduler.runningCount()) +
        " after the drain timeout");
  }

  // Invariant: every id a client saw reports a definite terminal state.
  for (const std::uint64_t id : trackedIds) {
    const auto status = scheduler.status(id);
    if (!status.has_value() || !service::isTerminal(status->state)) {
      report.violations.push_back("job " + std::to_string(id) +
                                  " has no definite terminal state");
      continue;
    }
    ++report.terminalStates[service::jobStateName(status->state)];
  }

  // Invariant: cache accounting.  Memory-tier inserts come from engine
  // runs after a miss or from disk-hit promotions, never anywhere else.
  const service::CacheStats& cache = report.cache;
  if (cache.inserts > cache.misses + cache.diskHits) {
    report.violations.push_back(
        "cache accounting: inserts (" + std::to_string(cache.inserts) +
        ") > misses (" + std::to_string(cache.misses) + ") + disk hits (" +
        std::to_string(cache.diskHits) + ")");
  }
  if (cache.evictions > cache.inserts) {
    report.violations.push_back("cache accounting: evictions > inserts");
  }
  if (cache.diskHits > cache.hits) {
    report.violations.push_back("cache accounting: disk hits > hits");
  }
  if (scheduler.cache().size() > schedulerOptions.cache.capacity) {
    report.violations.push_back("cache memory tier exceeded its capacity");
  }

  // Without response faults there is no excuse for a transport error.
  if (options.faults.sites.count(FaultSite::kResponseTruncate) == 0 &&
      options.faults.explicitOps.count(FaultSite::kResponseTruncate) == 0 &&
      transportErrors > 0) {
    report.violations.push_back("transport errors without response faults");
  }

  // Recovery phase: tear the daemon down and boot a fresh one on the same
  // journal + cache directories, then hold it to crash-safety's contract:
  //   * zero lost -- every job the dead daemon's log still owes reaches a
  //     definite terminal state after replay;
  //   * zero duplicated -- the engine never re-runs a cache key whose
  //     result already survived on disk (exactly-once at the key level);
  //   * the journal compacts once the replayed backlog drains.
  if (!options.journalDir.empty()) {
    report.recovery.ran = true;
    report.recovery.crashed =
        scheduler.journal() != nullptr && scheduler.journal()->frozen();
    const std::string logPath = scheduler.journal()->logPath();
    schedulerPtr.reset();  // A frozen journal skips the shutdown compaction.

    const service::JournalReplay digest =
        service::JobJournal::replayFile(logPath);
    report.recovery.pendingAtBoot = digest.pending.size();
    report.recovery.tornTail = digest.tornTail;

    // Keys whose results already survived on the disk cache: re-running
    // the engine for one of these would be a duplicated result.
    std::set<std::string> durableKeys;
    if (!options.cacheDir.empty()) {
      for (const service::JournalRecord& rec : digest.pending) {
        if (rec.cacheKey.empty()) continue;
        if (std::filesystem::exists(std::filesystem::path(options.cacheDir) /
                                    (rec.cacheKey + ".json"))) {
          durableKeys.insert(rec.cacheKey);
        }
      }
    }

    const std::string techPrint =
        service::ResultCache::techFingerprint(technology);
    service::SchedulerOptions bootOptions;
    bootOptions.threads = options.schedulerThreads;
    bootOptions.maxQueueDepth = 512;
    bootOptions.cache.diskDir = options.cacheDir;
    bootOptions.cache.capacity = 64;
    bootOptions.journal.dir = options.journalDir;
    bootOptions.preRunHook = [&](const service::JobRequest& request, int) {
      const std::string key = service::ResultCache::keyFor(
          request.options, request.specs, request.corner, techPrint);
      if (durableKeys.count(key) > 0) {
        const std::lock_guard<std::mutex> lock(violationsMutex);
        report.violations.push_back(
            "duplicated result: the engine re-ran cache key " + key +
            " whose result already survived the crash");
      }
    };

    service::JobScheduler recovered(technology, bootOptions);
    report.recovery.replayedRecords = recovered.health().journal.replayedRecords;

    const auto recoverDeadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(
                               options.drainTimeoutSeconds));
    while (Clock::now() < recoverDeadline) {
      const service::HealthSnapshot h = recovered.health();
      if (h.journal.recoveredRemaining == 0 && h.queueDepth == 0 &&
          h.running == 0) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }

    for (const service::JournalRecord& rec : digest.pending) {
      const auto status = recovered.status(rec.id);
      if (!status.has_value() || !service::isTerminal(status->state)) {
        report.violations.push_back(
            "lost after recovery: journalled job " + std::to_string(rec.id) +
            " never reached a terminal state in the restarted daemon");
        continue;
      }
      if (status->cacheHit) {
        ++report.recovery.servedFromCache;
      } else {
        ++report.recovery.reRun;
      }
    }

    const service::HealthSnapshot h = recovered.health();
    report.recovery.compactions = h.journal.compactions;
    if (report.recovery.pendingAtBoot > 0 && h.journal.compactions == 0) {
      report.violations.push_back(
          "journal never compacted after the replayed backlog drained");
    }
  }

  report.elapsedSeconds = seconds(started, Clock::now());
  return report;
}

}  // namespace lo::testkit
