#include "testkit/faults.hpp"

#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>

namespace lo::testkit {

namespace {

/// splitmix64: a few rounds of strong mixing, so consecutive operation
/// indices decide independently.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

const std::vector<FaultSite>& allFaultSites() {
  static const std::vector<FaultSite> kSites = {
      FaultSite::kEngineTransient, FaultSite::kStageTransient,
      FaultSite::kDeadlineOverrun, FaultSite::kCacheWrite,
      FaultSite::kResponseTruncate, FaultSite::kJournalTornWrite,
      FaultSite::kProcessKill};
  return kSites;
}

FaultPlanOptions FaultPlanOptions::basic(std::uint64_t seed) {
  FaultPlanOptions options;
  options.seed = seed;
  options.rate = 0.1;
  for (const FaultSite site : allFaultSites()) options.sites.insert(site);
  // The two crash sites are one-shot by nature (the first firing freezes
  // the journal), so the blanket rate would make every soak die in its
  // first seconds.  They stay opt-in via explicitOps / journal_torn etc.
  options.sites.erase(FaultSite::kJournalTornWrite);
  options.sites.erase(FaultSite::kProcessKill);
  return options;
}

FaultPlanOptions FaultPlanOptions::none(std::uint64_t seed) {
  FaultPlanOptions options;
  options.seed = seed;
  return options;
}

FaultPlanOptions FaultPlanOptions::journalTorn(std::uint64_t seed) {
  FaultPlanOptions options;
  options.seed = seed;
  options.rate = 0.25;
  options.sites.insert(FaultSite::kJournalTornWrite);
  return options;
}

FaultPlanOptions FaultPlanOptions::preset(const std::string& name,
                                          std::uint64_t seed) {
  if (name == "basic") return basic(seed);
  if (name == "none") return none(seed);
  if (name == "journal_torn_write") return journalTorn(seed);
  throw std::invalid_argument("unknown fault preset \"" + name +
                              "\" (basic, none, journal_torn_write)");
}

FaultPlan::FaultPlan(FaultPlanOptions options) : options_(std::move(options)) {}

bool FaultPlan::fires(FaultSite site, std::uint64_t opIndex) const {
  const auto explicitOps = options_.explicitOps.find(site);
  if (explicitOps != options_.explicitOps.end()) {
    for (const std::uint64_t op : explicitOps->second) {
      if (op == opIndex) return true;
    }
  }
  if (options_.rate <= 0.0 || options_.sites.count(site) == 0) return false;
  const std::uint64_t h = mix64(options_.seed ^ mix64(
      (static_cast<std::uint64_t>(site) << 56) ^ opIndex));
  // Top 53 bits -> uniform double in [0, 1).
  const double u = static_cast<double>(h >> 11) * 0x1p-53;
  return u < options_.rate;
}

bool FaultPlan::shouldFire(FaultSite site) {
  std::uint64_t opIndex = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    opIndex = next_[site]++;
  }
  if (!fires(site, opIndex)) return false;
  const std::lock_guard<std::mutex> lock(mutex_);
  ++fired_[site];
  events_.push_back({site, opIndex});
  return true;
}

std::uint64_t FaultPlan::operations(FaultSite site) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = next_.find(site);
  return it == next_.end() ? 0 : it->second;
}

std::uint64_t FaultPlan::fired(FaultSite site) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = fired_.find(site);
  return it == fired_.end() ? 0 : it->second;
}

std::uint64_t FaultPlan::firedTotal() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::vector<FaultEvent> FaultPlan::events() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

void installSchedulerFaults(service::SchedulerOptions& options, FaultPlan& plan) {
  options.preRunHook = [&plan, upstream = std::move(options.preRunHook)](
                           const service::JobRequest& request, int attempt) {
    if (upstream) upstream(request, attempt);
    if (plan.shouldFire(FaultSite::kDeadlineOverrun)) {
      std::this_thread::sleep_for(std::chrono::duration<double>(
          plan.options().overrunSeconds));
    }
    if (plan.shouldFire(FaultSite::kEngineTransient)) {
      throw service::TransientError("injected fault: engine_transient");
    }
  };
  options.cache.diskWriteFault =
      [&plan, upstream = std::move(options.cache.diskWriteFault)](
          const std::string& key) {
        const bool upstreamFired = upstream && upstream(key);
        return plan.shouldFire(FaultSite::kCacheWrite) || upstreamFired;
      };
}

void installJournalFaults(service::SchedulerOptions& options, FaultPlan& plan) {
  if (options.journal.dir.empty()) {
    throw std::invalid_argument(
        "installJournalFaults: options.journal.dir is empty (journalling off)");
  }
  options.journal.tornWriteFault =
      [&plan, upstream = std::move(options.journal.tornWriteFault)]() {
        const bool upstreamFired = upstream && upstream();
        return plan.shouldFire(FaultSite::kJournalTornWrite) || upstreamFired;
      };
}

void installEngineFaults(core::EngineOptions& options, FaultPlan& plan) {
  options.hooks.onStageStart =
      [&plan, upstream = std::move(options.hooks.onStageStart)](
          core::EngineStage stage) {
        if (upstream) upstream(stage);
        if (plan.shouldFire(FaultSite::kStageTransient)) {
          throw service::TransientError(
              std::string("injected fault: stage_transient at ") +
              core::engineStageName(stage));
        }
      };
}

void installProtocolFaults(service::ServiceProtocol& protocol, FaultPlan& plan) {
  protocol.setResponseTransform([&plan](std::string line) {
    if (plan.shouldFire(FaultSite::kResponseTruncate)) {
      line.resize(line.size() / 2);
    }
    return line;
  });
}

}  // namespace lo::testkit
