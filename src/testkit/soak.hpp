// Concurrent soak of the service stack under a fault plan.
//
// runSoak drives one in-process daemon (JobScheduler + ServiceProtocol,
// the exact objects losynthd serves) with N client threads speaking the
// line protocol: async submissions, waits, cancellations and stats
// requests, over a small pool of distinct design points so coalescing and
// the result cache actually engage.  A fault plan may be armed across
// every seam (transient engine errors, deadline overruns, cache-store
// write failures, truncated responses).  Whatever fires, these invariants
// must hold at the end:
//
//   * no lost jobs -- everything submitted reaches a definite terminal
//     state: submitted == done + failed + cancelled + expired, with the
//     queue empty and nothing running;
//   * stats monotonicity -- a monitor thread snapshots the metrics
//     throughout and no counter ever decreases;
//   * cache-hit accounting -- inserts <= misses + disk hits (engine runs
//     and disk-hit promotions are the only sources), evictions <= inserts,
//     disk hits <= hits, and the memory tier never exceeds its capacity;
//   * bounded time -- the drain completes within drainTimeoutSeconds.
//
// Violations come back as human-readable strings in the report; an empty
// list is a pass.  tools/lostress is the CLI over this.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "service/json.hpp"
#include "service/metrics.hpp"
#include "testkit/faults.hpp"

namespace lo::testkit {

struct SoakOptions {
  std::uint64_t seed = 1;
  int clients = 4;
  int schedulerThreads = 2;
  double durationSeconds = 5.0;
  /// Per-client request cap; 0 = duration-limited only.
  int maxRequestsPerClient = 0;
  /// Distinct design points the clients draw from (small, so duplicates
  /// exercise coalescing and the cache).
  int poolSize = 12;
  FaultPlanOptions faults;
  std::string cacheDir;  ///< Optional on-disk store; empty = memory only.
  /// Write-ahead journal directory; set, the soak arms the crash sites
  /// (kProcessKill freezes the journal mid-run, kJournalTornWrite tears an
  /// append) and finishes with a *recovery phase*: the daemon is torn
  /// down, a second one boots on the same journal + cache directories, and
  /// the report asserts zero lost and zero duplicated results at the
  /// cache-key level.  Empty = journalling off, no recovery phase.
  std::string journalDir;
  /// Fraction of submissions carrying a tight deadline.
  double deadlineFraction = 0.2;
  double deadlineSeconds = 0.03;
  int maxRetries = 2;  ///< Forwarded on every submission.
  double drainTimeoutSeconds = 60.0;
};

/// What the post-crash restart found and did (journalDir soaks only).
struct RecoveryReport {
  bool ran = false;      ///< A recovery phase executed.
  bool crashed = false;  ///< The journal actually froze during phase 1.
  std::uint64_t replayedRecords = 0;  ///< Intact frames read at reboot.
  std::uint64_t pendingAtBoot = 0;    ///< Jobs the dead daemon still owed.
  std::uint64_t servedFromCache = 0;  ///< Pending jobs answered without re-running.
  std::uint64_t reRun = 0;            ///< Pending jobs that needed the engine.
  std::uint64_t compactions = 0;
  bool tornTail = false;  ///< The reboot truncated a torn final frame.
};

struct SoakReport {
  std::uint64_t requests = 0;         ///< Protocol lines sent by clients.
  std::uint64_t rejected = 0;         ///< {"ok":false} responses (queue full, ...).
  std::uint64_t transportErrors = 0;  ///< Unparseable (truncated) responses.
  std::uint64_t trackedJobs = 0;      ///< Ids the clients saw in responses.
  std::map<std::string, std::uint64_t> terminalStates;  ///< Over tracked jobs.
  service::MetricsSnapshot metrics;
  service::CacheStats cache;
  std::map<std::string, std::uint64_t> faultsFired;  ///< Site name -> count.
  RecoveryReport recovery;
  std::vector<std::string> violations;
  double elapsedSeconds = 0.0;

  [[nodiscard]] bool ok() const { return violations.empty(); }
  /// Full report as JSON (what lostress prints).
  [[nodiscard]] service::Json toJson() const;
};

[[nodiscard]] SoakReport runSoak(const tech::Technology& technology,
                                 const SoakOptions& options);

}  // namespace lo::testkit
