#include "testkit/generators.hpp"

#include <sstream>

#include "core/topology.hpp"

namespace lo::testkit {

service::JobRequest CorpusPoint::toJobRequest() const {
  service::JobRequest request;
  request.label = label;
  request.options = options;
  request.specs = specs;
  request.corner = corner;
  return request;
}

double SpecGen::uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(rng_);
}

int SpecGen::pick(int n) {
  return std::uniform_int_distribution<int>(0, n - 1)(rng_);
}

sizing::OtaSpecs SpecGen::specs(const std::string& topology) {
  sizing::OtaSpecs s;  // Start from the paper's Table 1 baseline.
  if (topology == core::kTwoStageTopologyName) {
    s.gbw = uniform(20e6, 35e6);
  } else {
    s.gbw = uniform(40e6, 70e6);
  }
  s.cload = uniform(2e-12, 4e-12);
  s.phaseMarginDeg = uniform(55.0, 66.0);
  return s;
}

tech::ProcessCorner SpecGen::corner(bool includeNonTypical) {
  if (!includeNonTypical || pick(4) != 0) return tech::ProcessCorner::kTypical;
  static const tech::ProcessCorner kOthers[] = {
      tech::ProcessCorner::kSlow, tech::ProcessCorner::kFast,
      tech::ProcessCorner::kSlowNFastP, tech::ProcessCorner::kFastNSlowP};
  return kOthers[pick(4)];
}

CorpusPoint SpecGen::point(const CorpusOptions& options) {
  CorpusPoint p;
  const std::vector<std::string> topologies =
      options.topologies.empty()
          ? std::vector<std::string>{core::kFoldedCascodeOtaTopologyName,
                                     core::kTwoStageTopologyName}
          : options.topologies;
  const std::vector<core::SizingCase> cases =
      options.cases.empty()
          ? std::vector<core::SizingCase>{core::SizingCase::kCase1,
                                          core::SizingCase::kCase1,
                                          core::SizingCase::kCase2,
                                          core::SizingCase::kCase2,
                                          core::SizingCase::kCase3,
                                          core::SizingCase::kCase4}
          : options.cases;
  p.options.topology = topologies[static_cast<std::size_t>(
      pick(static_cast<int>(topologies.size())))];
  p.options.sizingCase = cases[static_cast<std::size_t>(
      pick(static_cast<int>(cases.size())))];
  p.specs = specs(p.options.topology);
  p.corner = corner(options.includeCorners);

  std::ostringstream label;
  label << p.options.topology << "/"
        << core::sizingCaseName(p.options.sizingCase) << "/"
        << static_cast<int>(p.specs.gbw / 1e6) << "MHz/"
        << tech::cornerName(p.corner);
  p.label = label.str();
  return p;
}

std::vector<CorpusPoint> generateCorpus(std::uint64_t seed, CorpusOptions options) {
  SpecGen gen(seed);
  std::vector<CorpusPoint> corpus;
  corpus.reserve(static_cast<std::size_t>(options.size));
  for (int i = 0; i < options.size; ++i) {
    CorpusPoint p = gen.point(options);
    p.label = "corpus" + std::to_string(i) + ":" + p.label;
    corpus.push_back(std::move(p));
  }
  return corpus;
}

}  // namespace lo::testkit
