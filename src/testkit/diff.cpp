#include "testkit/diff.hpp"

#include <cmath>

#include "service/serialize.hpp"

namespace lo::testkit {

namespace {

using service::Json;

std::string typeName(Json::Type t) {
  switch (t) {
    case Json::Type::kNull: return "null";
    case Json::Type::kBool: return "bool";
    case Json::Type::kNumber: return "number";
    case Json::Type::kString: return "string";
    case Json::Type::kArray: return "array";
    case Json::Type::kObject: return "object";
  }
  return "?";
}

std::string join(const std::string& base, const std::string& leaf) {
  return base.empty() ? leaf : base + "." + leaf;
}

std::optional<FieldDiff> walk(const Json& a, const Json& b,
                              const std::string& path, double relTol) {
  if (a.type() != b.type()) {
    return FieldDiff{path, typeName(a.type()), typeName(b.type()), 0.0};
  }
  switch (a.type()) {
    case Json::Type::kNull:
      return std::nullopt;
    case Json::Type::kBool:
      if (a.asBool() != b.asBool()) {
        return FieldDiff{path, a.asBool() ? "true" : "false",
                         b.asBool() ? "true" : "false", 0.0};
      }
      return std::nullopt;
    case Json::Type::kNumber: {
      const double x = a.asDouble();
      const double y = b.asDouble();
      if (x == y) return std::nullopt;
      const double scale = std::max(std::abs(x), std::abs(y));
      const double rel = scale > 0 ? std::abs(x - y) / scale : 0.0;
      if (rel <= relTol && std::isfinite(rel)) return std::nullopt;
      return FieldDiff{path, Json::formatNumber(x), Json::formatNumber(y), rel};
    }
    case Json::Type::kString:
      if (a.asString() != b.asString()) {
        return FieldDiff{path, a.asString(), b.asString(), 0.0};
      }
      return std::nullopt;
    case Json::Type::kArray: {
      if (a.items().size() != b.items().size()) {
        return FieldDiff{path,
                         "array[" + std::to_string(a.items().size()) + "]",
                         "array[" + std::to_string(b.items().size()) + "]", 0.0};
      }
      for (std::size_t i = 0; i < a.items().size(); ++i) {
        if (auto d = walk(a.items()[i], b.items()[i],
                          join(path, std::to_string(i)), relTol)) {
          return d;
        }
      }
      return std::nullopt;
    }
    case Json::Type::kObject: {
      // Both sides come from the same serialiser, so member order is the
      // canonical order; compare pairwise and fall back to a key diff.
      const auto& am = a.members();
      const auto& bm = b.members();
      const std::size_t n = std::min(am.size(), bm.size());
      for (std::size_t i = 0; i < n; ++i) {
        if (am[i].first != bm[i].first) {
          return FieldDiff{join(path, "<keys>"), am[i].first, bm[i].first, 0.0};
        }
        if (auto d = walk(am[i].second, bm[i].second,
                          join(path, am[i].first), relTol)) {
          return d;
        }
      }
      if (am.size() != bm.size()) {
        const auto& extra = am.size() > bm.size() ? am : bm;
        return FieldDiff{join(path, extra[n].first),
                         am.size() > bm.size() ? "present" : "missing",
                         am.size() > bm.size() ? "missing" : "present", 0.0};
      }
      return std::nullopt;
    }
  }
  return std::nullopt;
}

}  // namespace

std::string FieldDiff::describe() const {
  std::string out = path.empty() ? std::string("<root>") : path;
  out += ": " + lhs + " vs " + rhs;
  if (relError > 0.0) {
    out += " (rel " + Json::formatNumber(relError) + ")";
  }
  return out;
}

std::optional<FieldDiff> diffJson(const Json& a, const Json& b, double relTol) {
  return walk(a, b, "", relTol);
}

std::optional<FieldDiff> diffResults(const core::EngineResult& a,
                                     const core::EngineResult& b,
                                     double relTol) {
  return diffJson(service::toJson(a), service::toJson(b), relTol);
}

}  // namespace lo::testkit
