// Seeded, property-style generators for synthesis inputs.
//
// Built on the same std::mt19937 family as sizing::montecarlo, so a corpus
// is a pure function of its seed: generateCorpus(seed, n) returns the same
// n (topology, sizing case, spec, corner) points on every machine and every
// run.  Ranges are chosen so most points synthesise successfully while a
// tail stresses the spec envelope -- a point that fails is fine (the
// differential oracle then requires every path to fail identically), a
// point that hangs is not.
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "service/scheduler.hpp"

namespace lo::testkit {

/// One corpus entry: everything that identifies a synthesis job.
struct CorpusPoint {
  std::string label;
  core::EngineOptions options;
  sizing::OtaSpecs specs;
  tech::ProcessCorner corner = tech::ProcessCorner::kTypical;

  /// The same point as a scheduler request (cache enabled, no deadline).
  [[nodiscard]] service::JobRequest toJobRequest() const;
};

struct CorpusOptions {
  int size = 50;
  /// Registry names drawn from; defaults to both built-in topologies.
  std::vector<std::string> topologies;
  /// Sizing cases drawn from, with repetition acting as weight; defaults
  /// to {1, 1, 2, 2, 3, 4} -- biased toward the cheap cases so a 50-point
  /// corpus stays test-suite fast while still covering the full loop.
  std::vector<core::SizingCase> cases;
  /// Draw non-typical process corners for ~1 point in 4.
  bool includeCorners = true;
};

/// Seeded generator over specs / corners / corpus points.  Every draw
/// advances one shared mt19937, so interleaving draws stays deterministic.
class SpecGen {
 public:
  explicit SpecGen(std::uint64_t seed) : rng_(static_cast<std::uint32_t>(seed)) {}

  [[nodiscard]] double uniform(double lo, double hi);
  [[nodiscard]] int pick(int n);  ///< Uniform integer in [0, n).

  /// Specs with GBW / load / phase margin drawn from a range the given
  /// topology can usually meet (two_stage targets lower GBW).
  [[nodiscard]] sizing::OtaSpecs specs(const std::string& topology);
  [[nodiscard]] tech::ProcessCorner corner(bool includeNonTypical = true);
  [[nodiscard]] CorpusPoint point(const CorpusOptions& options);

 private:
  std::mt19937 rng_;
};

/// The seeded corpus the differential oracle and the soak runner share.
[[nodiscard]] std::vector<CorpusPoint> generateCorpus(std::uint64_t seed,
                                                      CorpusOptions options = {});

}  // namespace lo::testkit
