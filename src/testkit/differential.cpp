#include "testkit/differential.hpp"

#include <stdexcept>

#include "explore/diffpath.hpp"
#include "service/serialize.hpp"

namespace lo::testkit {

namespace {

PathOutcome outcomeFromStatus(const service::JobStatus& status) {
  PathOutcome out;
  out.ok = status.state == service::JobState::kDone;
  out.cacheHit = status.cacheHit;
  if (out.ok) {
    out.result = status.result;
    out.canonical = service::toJson(status.result).dump();
  } else {
    out.error = status.error.empty() ? service::jobStateName(status.state)
                                     : status.error;
  }
  return out;
}

/// Compare `candidate` against the reference path's outcome; empty string
/// when they agree.
std::string compareOutcomes(const std::string& refName, const PathOutcome& ref,
                            const std::string& name, const PathOutcome& candidate,
                            double relTol) {
  if (ref.ok != candidate.ok) {
    return name + " " + (candidate.ok ? "succeeded" : "failed (" +
                         candidate.error + ")") + " but " + refName + " " +
           (ref.ok ? "succeeded" : "failed (" + ref.error + ")");
  }
  if (!ref.ok) {
    if (ref.error != candidate.error) {
      return name + " error \"" + candidate.error + "\" != " + refName +
             " error \"" + ref.error + "\"";
    }
    return {};
  }
  if (ref.canonical == candidate.canonical) return {};
  if (relTol > 0.0) {
    const auto d = diffResults(ref.result, candidate.result, relTol);
    if (!d) return {};  // Within tolerance.
    return name + " vs " + refName + ": " + d->describe();
  }
  const auto d = diffResults(ref.result, candidate.result, 0.0);
  return name + " vs " + refName + ": " +
         (d ? d->describe() : "serialisations differ");
}

}  // namespace

void DifferentialDriver::registerPath(std::string name, PathRunner runner) {
  if (!runner) {
    throw std::invalid_argument("null runner for path \"" + name + "\"");
  }
  for (const auto& [existing, unused] : paths_) {
    if (existing == name) {
      throw std::invalid_argument("path \"" + name + "\" is already registered");
    }
  }
  paths_.emplace_back(std::move(name), std::move(runner));
}

std::vector<std::string> DifferentialDriver::pathNames() const {
  std::vector<std::string> names;
  names.reserve(paths_.size());
  for (const auto& [name, unused] : paths_) names.push_back(name);
  return names;
}

DiffReport DifferentialDriver::run(const std::vector<CorpusPoint>& corpus,
                                   double relTol) const {
  if (paths_.size() < 2) {
    throw std::logic_error("differential driver needs at least two paths");
  }
  DiffReport report;
  for (const CorpusPoint& point : corpus) {
    PointReport pr;
    pr.label = point.label;
    for (const auto& [name, runner] : paths_) {
      pr.outcomes.emplace_back(name, runner(point));
    }
    pr.agree = true;
    const auto& [refName, ref] = pr.outcomes.front();
    for (std::size_t i = 1; i < pr.outcomes.size(); ++i) {
      const std::string detail = compareOutcomes(
          refName, ref, pr.outcomes[i].first, pr.outcomes[i].second, relTol);
      if (!detail.empty()) {
        pr.agree = false;
        pr.detail = pr.label + ": " + detail;
        break;
      }
    }
    ++report.points;
    if (pr.agree) {
      ++report.agreements;
    } else {
      report.divergences.push_back(std::move(pr));
    }
  }
  return report;
}

DifferentialDriver standardDriver(service::JobScheduler& scheduler) {
  DifferentialDriver driver;

  driver.registerPath("engine_direct", [&scheduler](const CorpusPoint& point) {
    PathOutcome out;
    try {
      const tech::Technology jobTech =
          scheduler.baseTechnology().atCorner(point.corner);
      const core::SynthesisEngine engine(jobTech, point.options);
      out.result = engine.run(point.specs);
      out.canonical = service::toJson(out.result).dump();
      out.ok = true;
    } catch (const std::exception& e) {
      out.error = e.what();
    }
    return out;
  });

  driver.registerPath("engine_reference_solver", [&scheduler](const CorpusPoint& point) {
    // The same direct engine run forced onto the simulator's
    // pre-optimization reference solve path: any bitwise divergence from
    // engine_direct means the fast solver broke the bit-identity contract.
    PathOutcome out;
    try {
      const tech::Technology jobTech =
          scheduler.baseTechnology().atCorner(point.corner);
      core::EngineOptions options = point.options;
      options.verifyOptions.referenceSolver = true;
      options.postLayoutVerify.referenceSolver = true;
      const core::SynthesisEngine engine(jobTech, options);
      out.result = engine.run(point.specs);
      out.canonical = service::toJson(out.result).dump();
      out.ok = true;
    } catch (const std::exception& e) {
      out.error = e.what();
    }
    return out;
  });

  driver.registerPath("scheduler", [&scheduler](const CorpusPoint& point) {
    const std::uint64_t id = scheduler.submit(point.toJobRequest());
    return outcomeFromStatus(scheduler.wait(id));
  });

  driver.registerPath("cache_warm", [&scheduler](const CorpusPoint& point) {
    // With an on-disk store, drop the memory tier first so this hit
    // round-trips through the JSON serialisation on disk.
    if (!scheduler.cache().options().diskDir.empty()) {
      scheduler.cache().clear();
    }
    const std::uint64_t id = scheduler.submit(point.toJobRequest());
    return outcomeFromStatus(scheduler.wait(id));
  });

  driver.registerPath("explore_cell", [&scheduler](const CorpusPoint& point) {
    PathOutcome out;
    const explore::PointEval eval = explore::evaluateSinglePoint(
        scheduler, point.options, point.specs, point.corner);
    out.ok = eval.ok;
    out.cacheHit = eval.cacheHit;
    if (!eval.ok) {
      out.error = eval.error;
      return out;
    }
    // The explorer evaluated the point through the scheduler, so the
    // result sits in the cache under the point's content-addressed key --
    // unless the explorer's spec reconstruction drifted, which is exactly
    // the divergence this path exists to catch.
    const std::string key = service::ResultCache::keyFor(
        point.options, point.specs, point.corner,
        service::ResultCache::techFingerprint(scheduler.baseTechnology()));
    if (auto hit = scheduler.cache().lookup(key)) {
      out.result = std::move(*hit);
      out.canonical = service::toJson(out.result).dump();
    } else {
      out.ok = false;
      out.error = "explore_cell evaluated a different cache key than the "
                  "point's canonical key";
    }
    return out;
  });

  return driver;
}

}  // namespace lo::testkit
