// The differential oracle: one corpus, every path, byte-identical results.
//
// The paper's claim -- sizing against estimated parasitics converges to
// what the generated layout exhibits -- only survives scaling if every
// route through the stack computes the same numbers.  This driver runs
// each corpus point through a set of named paths and requires them to
// agree exactly:
//
//   engine_direct  a private SynthesisEngine, no service layer at all;
//   scheduler      a JobScheduler submission (worker pool, job isolation);
//   cache_warm     the same submission served back from the result cache
//                  (via the on-disk JSON store when the scheduler has one,
//                  so the serialisation round trip is part of the check);
//   explore_cell   a budget-1 exploration anchored at the point, so the
//                  explorer's space/coordinate machinery is on the hook
//                  for reproducing the exact specs.
//
// Agreement means: all paths succeed with byte-identical canonical JSON,
// or all paths fail with the same error text.  On divergence the report
// carries testkit::FieldDiff's first-diverging-field description instead
// of a bare "bytes differ".  Extra paths register through registerPath().
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "service/scheduler.hpp"
#include "testkit/diff.hpp"
#include "testkit/generators.hpp"

namespace lo::testkit {

/// What one path produced for one corpus point.
struct PathOutcome {
  bool ok = false;
  std::string error;      ///< Failure text when !ok.
  std::string canonical;  ///< toJson(result).dump() when ok.
  core::EngineResult result;
  bool cacheHit = false;
};

using PathRunner = std::function<PathOutcome(const CorpusPoint&)>;

/// Per-point verdict: every path's outcome plus the first divergence.
struct PointReport {
  std::string label;
  bool agree = false;
  std::string detail;  ///< Human-readable first divergence (empty if agree).
  std::vector<std::pair<std::string, PathOutcome>> outcomes;
};

struct DiffReport {
  int points = 0;
  int agreements = 0;
  std::vector<PointReport> divergences;
  [[nodiscard]] bool allAgree() const {
    return points > 0 && agreements == points;
  }
};

class DifferentialDriver {
 public:
  /// Register a path; order of registration is comparison order (the first
  /// path is the reference).  Throws std::invalid_argument on a duplicate
  /// name or a null runner.
  void registerPath(std::string name, PathRunner runner);

  [[nodiscard]] std::vector<std::string> pathNames() const;

  /// Run every corpus point through every path.  relTol > 0 loosens the
  /// number comparison (for cross-platform corpora); the default demands
  /// byte identity.
  [[nodiscard]] DiffReport run(const std::vector<CorpusPoint>& corpus,
                               double relTol = 0.0) const;

 private:
  std::vector<std::pair<std::string, PathRunner>> paths_;
};

/// The four standard paths over one scheduler.  The scheduler should be
/// single-threaded and cold for exact reproducibility; when it has an
/// on-disk store the cache_warm path reads through it (memory tier
/// cleared), otherwise it serves from memory.
[[nodiscard]] DifferentialDriver standardDriver(service::JobScheduler& scheduler);

}  // namespace lo::testkit
