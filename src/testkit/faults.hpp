// Deterministic fault injection for the synthesis stack.
//
// A FaultPlan is a pure function from (seed, site, operation index) to
// "fire / don't fire": the decision for operation #k at a site is fixed by
// the seed alone, so a fault schedule replays identically across runs no
// matter how threads interleave -- only the *assignment* of indices to
// operations depends on arrival order.  Under a single-threaded scheduler
// the whole schedule is exactly reproducible, which is what the
// differential oracle runs; the soak runner uses the same plan under
// concurrency, where the invariants it checks are order-independent.
//
// The plan plugs into the production seams added for it:
//   * service::SchedulerOptions::preRunHook   -> kEngineTransient (throws
//     TransientError before an attempt), kDeadlineOverrun (sleeps so a
//     deadline lapses mid-run);
//   * core::EngineHooks::onStageStart         -> kStageTransient (throws
//     TransientError between engine stages, after real work happened);
//   * service::CacheOptions::diskWriteFault   -> kCacheWrite (the on-disk
//     store write fails, leaving a truncated entry);
//   * service::ServiceProtocol response seam  -> kResponseTruncate (the
//     daemon's response line is cut mid-JSON).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "service/protocol.hpp"
#include "service/scheduler.hpp"

namespace lo::testkit {

enum class FaultSite {
  kEngineTransient,   ///< TransientError thrown before an engine attempt.
  kStageTransient,    ///< TransientError thrown between engine stages.
  kDeadlineOverrun,   ///< Sleep before the attempt so deadlines lapse.
  kCacheWrite,        ///< On-disk cache store write fails (truncated file).
  kResponseTruncate,  ///< Daemon response line truncated mid-JSON.
  kJournalTornWrite,  ///< Journal append writes half a frame and freezes.
  kProcessKill,       ///< Simulated SIGKILL: the journal stops recording.
};

[[nodiscard]] constexpr const char* faultSiteName(FaultSite s) {
  switch (s) {
    case FaultSite::kEngineTransient: return "engine_transient";
    case FaultSite::kStageTransient: return "stage_transient";
    case FaultSite::kDeadlineOverrun: return "deadline_overrun";
    case FaultSite::kCacheWrite: return "cache_write";
    case FaultSite::kResponseTruncate: return "response_truncate";
    case FaultSite::kJournalTornWrite: return "journal_torn_write";
    case FaultSite::kProcessKill: return "process_kill";
  }
  return "?";
}

/// Every injectable site, in enum order.
[[nodiscard]] const std::vector<FaultSite>& allFaultSites();

struct FaultPlanOptions {
  std::uint64_t seed = 1;
  /// Per-operation firing probability at every enabled site.
  double rate = 0.0;
  /// Sites the rate applies to (empty = none; explicitOps still fire).
  std::set<FaultSite> sites;
  /// Exact 0-based operation indices that fire regardless of the rate --
  /// the way unit tests pin a fault onto "the third engine attempt".
  std::map<FaultSite, std::vector<std::uint64_t>> explicitOps;
  /// Sleep length of a kDeadlineOverrun firing [s].
  double overrunSeconds = 0.05;

  /// The standard `--faults basic` plan: every recoverable site enabled at
  /// 10%.  The crash sites (kJournalTornWrite, kProcessKill) stay off --
  /// the first firing freezes the journal for good, which is a dedicated
  /// scenario, not background noise.
  [[nodiscard]] static FaultPlanOptions basic(std::uint64_t seed);
  /// No faults at all (the identity plan).
  [[nodiscard]] static FaultPlanOptions none(std::uint64_t seed = 1);
  /// The `--faults journal_torn_write` plan: only the journal torn-write
  /// site, at 25% -- the first firing tears a frame mid-append.
  [[nodiscard]] static FaultPlanOptions journalTorn(std::uint64_t seed);
  /// Parse a CLI name: "basic", "none" or "journal_torn_write"; throws
  /// std::invalid_argument.
  [[nodiscard]] static FaultPlanOptions preset(const std::string& name,
                                               std::uint64_t seed);
};

/// One fired fault, for post-run reporting.
struct FaultEvent {
  FaultSite site = FaultSite::kEngineTransient;
  std::uint64_t opIndex = 0;
};

class FaultPlan {
 public:
  explicit FaultPlan(FaultPlanOptions options = {});

  /// The pure decision function: does operation #opIndex at `site` fire?
  /// Depends only on (seed, site, opIndex); thread-free and replayable.
  [[nodiscard]] bool fires(FaultSite site, std::uint64_t opIndex) const;

  /// Assign the next operation index for `site` and decide; records the
  /// event when it fires.  Thread-safe.
  bool shouldFire(FaultSite site);

  [[nodiscard]] const FaultPlanOptions& options() const { return options_; }
  /// Operations seen at `site` so far.
  [[nodiscard]] std::uint64_t operations(FaultSite site) const;
  /// Faults fired at `site` so far.
  [[nodiscard]] std::uint64_t fired(FaultSite site) const;
  /// Total faults fired across all sites.
  [[nodiscard]] std::uint64_t firedTotal() const;
  [[nodiscard]] std::vector<FaultEvent> events() const;

 private:
  FaultPlanOptions options_;
  mutable std::mutex mutex_;
  std::map<FaultSite, std::uint64_t> next_;
  std::map<FaultSite, std::uint64_t> fired_;
  std::vector<FaultEvent> events_;
};

/// Chain the plan's scheduler-side faults onto options.preRunHook
/// (kEngineTransient, kDeadlineOverrun) and its cache-store fault onto
/// options.cache.diskWriteFault (kCacheWrite).  Existing hooks keep
/// running first.  The plan must outlive every scheduler built from the
/// options.
void installSchedulerFaults(service::SchedulerOptions& options, FaultPlan& plan);

/// Arm kStageTransient on a single job's engine hooks: onStageStart throws
/// service::TransientError when the plan fires, which the scheduler's
/// retry path handles like any backend hiccup.
void installEngineFaults(core::EngineOptions& options, FaultPlan& plan);

/// Arm kResponseTruncate on the protocol: fired responses are cut to half
/// length (mid-JSON), exercising client transport-error handling while the
/// daemon's own state advances normally.
void installProtocolFaults(service::ServiceProtocol& protocol, FaultPlan& plan);

/// Arm kJournalTornWrite on the scheduler's write-ahead journal: a fired
/// append writes only the first half of its frame and freezes the journal,
/// byte-for-byte what a SIGKILL mid-append leaves behind.  Requires
/// options.journal.dir to be set.
void installJournalFaults(service::SchedulerOptions& options, FaultPlan& plan);

}  // namespace lo::testkit
