// Tolerance-aware structured diff over canonical result serialisations.
//
// The differential oracle's byte-equality check is binary: it tells you
// *that* two paths diverged, not *where*.  diffJson walks two values in
// canonical member order and reports the first diverging field with its
// JSON-pointer-style path ("measured.gbw_hz", "iterations.2.net_caps.0"),
// both formatted values and the relative error -- enough to tell a real
// numerical divergence from a schema drift at a glance.  relTol = 0 is
// exact (bit-identical doubles); a positive relTol accepts numbers within
// that relative distance, for cross-platform comparisons.
#pragma once

#include <optional>
#include <string>

#include "core/engine.hpp"
#include "service/json.hpp"

namespace lo::testkit {

/// The first point where two values diverge.
struct FieldDiff {
  std::string path;  ///< Dotted path from the root ("measured.gbw_hz").
  std::string lhs;   ///< Formatted left value (or type/arity description).
  std::string rhs;
  double relError = 0.0;  ///< Relative error when both sides are numbers.

  [[nodiscard]] std::string describe() const;
};

/// First divergence between two JSON values, walking objects in member
/// order and arrays by index; std::nullopt when they match under relTol.
[[nodiscard]] std::optional<FieldDiff> diffJson(const service::Json& a,
                                                const service::Json& b,
                                                double relTol = 0.0);

/// Same, over the canonical serialisation of two engine results.
[[nodiscard]] std::optional<FieldDiff> diffResults(const core::EngineResult& a,
                                                   const core::EngineResult& b,
                                                   double relTol = 0.0);

}  // namespace lo::testkit
