#include "circuit/circuit.hpp"

#include <stdexcept>

namespace lo::circuit {

Waveform Waveform::makePulse(double v1, double v2, double delay, double rise, double fall,
                             double width, double period) {
  Waveform w;
  w.kind = Kind::kPulse;
  w.v1 = v1;
  w.v2 = v2;
  w.delay = delay;
  w.rise = rise > 0 ? rise : 1e-12;
  w.fall = fall > 0 ? fall : 1e-12;
  w.width = width;
  w.period = period;
  w.dc = v1;
  return w;
}

Waveform Waveform::makeSin(double offset, double amplitude, double freq) {
  Waveform w;
  w.kind = Kind::kSin;
  w.offset = offset;
  w.amplitude = amplitude;
  w.freq = freq;
  w.dc = offset;
  return w;
}

double Waveform::at(double t) const {
  switch (kind) {
    case Kind::kDc:
      return dc;
    case Kind::kPulse: {
      if (t < delay) return v1;
      double tt = t - delay;
      if (period > 0) tt = std::fmod(tt, period);
      if (tt < rise) return v1 + (v2 - v1) * tt / rise;
      tt -= rise;
      if (tt < width) return v2;
      tt -= width;
      if (tt < fall) return v2 + (v1 - v2) * tt / fall;
      return v1;
    }
    case Kind::kSin:
      return offset + amplitude * std::sin(2.0 * M_PI * freq * t);
  }
  return dc;
}

double Waveform::dcValue() const {
  switch (kind) {
    case Kind::kDc: return dc;
    case Kind::kPulse: return v1;
    case Kind::kSin: return offset;
  }
  return dc;
}

NodeId Circuit::node(const std::string& name) {
  auto it = nodesByName_.find(name);
  if (it != nodesByName_.end()) return it->second;
  const NodeId id = static_cast<NodeId>(nodeNames_.size());
  nodeNames_.push_back(name);
  nodesByName_.emplace(name, id);
  return id;
}

std::optional<NodeId> Circuit::findNode(const std::string& name) const {
  auto it = nodesByName_.find(name);
  if (it == nodesByName_.end()) return std::nullopt;
  return it->second;
}

Mos& Circuit::addMos(std::string name, NodeId d, NodeId g, NodeId s, NodeId b,
                     tech::MosType type, const device::MosGeometry& geo, double mult) {
  Mos m;
  m.name = std::move(name);
  m.drain = d;
  m.gate = g;
  m.source = s;
  m.bulk = b;
  m.type = type;
  m.geo = geo;
  m.mult = mult;
  mosfets.push_back(std::move(m));
  return mosfets.back();
}

Resistor& Circuit::addResistor(std::string name, NodeId a, NodeId b, double ohms) {
  if (ohms <= 0) throw std::invalid_argument("resistor must have positive resistance");
  resistors.push_back({std::move(name), a, b, ohms});
  return resistors.back();
}

Capacitor& Circuit::addCapacitor(std::string name, NodeId a, NodeId b, double farads) {
  if (farads < 0) throw std::invalid_argument("capacitor must be non-negative");
  capacitors.push_back({std::move(name), a, b, farads});
  return capacitors.back();
}

VSource& Circuit::addVSource(std::string name, NodeId pos, NodeId neg, Waveform wave,
                             double acMag, double acPhase) {
  vsources.push_back({std::move(name), pos, neg, wave, acMag, acPhase});
  return vsources.back();
}

ISource& Circuit::addISource(std::string name, NodeId pos, NodeId neg, Waveform wave,
                             double acMag) {
  isources.push_back({std::move(name), pos, neg, wave, acMag});
  return isources.back();
}

Vcvs& Circuit::addVcvs(std::string name, NodeId pos, NodeId neg, NodeId cp, NodeId cn,
                       double gain) {
  vcvs.push_back({std::move(name), pos, neg, cp, cn, gain});
  return vcvs.back();
}

Mos* Circuit::findMos(const std::string& name) {
  for (Mos& m : mosfets) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

const Mos* Circuit::findMos(const std::string& name) const {
  for (const Mos& m : mosfets) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

VSource* Circuit::findVSource(const std::string& name) {
  for (VSource& v : vsources) {
    if (v.name == name) return &v;
  }
  return nullptr;
}

Capacitor* Circuit::findCapacitor(const std::string& name) {
  for (Capacitor& c : capacitors) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

double Circuit::explicitCapAt(NodeId node) const {
  double total = 0.0;
  for (const Capacitor& c : capacitors) {
    if (c.a == node || c.b == node) total += c.farads;
  }
  return total;
}

}  // namespace lo::circuit
