#include "circuit/spice_io.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <sstream>
#include <vector>

namespace lo::circuit {

namespace {

std::string lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

/// Split a card into tokens; '(' and ')' become separators so that
/// "PULSE(0 1 0" parses as PULSE ( 0 1 0.
std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> out;
  std::string cur;
  auto flush = [&] {
    if (!cur.empty()) {
      out.push_back(cur);
      cur.clear();
    }
  };
  for (char c : line) {
    if (std::isspace(static_cast<unsigned char>(c)) || c == '(' || c == ')' || c == ',') {
      flush();
    } else {
      cur.push_back(c);
    }
  }
  flush();
  return out;
}

}  // namespace

double parseSpiceNumber(std::string_view token) {
  const std::string t = lower(token);
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(t, &pos);
  } catch (const std::exception&) {
    throw NetlistParseError("bad number: '" + std::string(token) + "'");
  }
  const std::string_view suffix = std::string_view(t).substr(pos);
  if (suffix.empty()) return value;
  // Suffixes must match exactly: "3meg" scales, "3megx" (or "5kk", "1m5")
  // is an error rather than silently parsing as the recognised prefix.
  if (suffix == "meg") return value * 1e6;
  if (suffix.size() == 1) {
    switch (suffix.front()) {
      case 'f': return value * 1e-15;
      case 'p': return value * 1e-12;
      case 'n': return value * 1e-9;
      case 'u': return value * 1e-6;
      case 'm': return value * 1e-3;
      case 'k': return value * 1e3;
      case 'g': return value * 1e9;
      case 't': return value * 1e12;
      default: break;
    }
  }
  throw NetlistParseError("bad number suffix: '" + std::string(token) + "'");
}

std::string formatSpiceNumber(double value) {
  if (value == 0.0) return "0";
  struct Scale {
    double mult;
    const char* suffix;
  };
  static constexpr Scale kScales[] = {
      {1e12, "t"}, {1e9, "g"}, {1e6, "meg"}, {1e3, "k"}, {1.0, ""},
      {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"}, {1e-15, "f"},
  };
  const double mag = std::abs(value);
  for (const Scale& s : kScales) {
    if (mag >= s.mult * 0.999999) {
      std::ostringstream os;
      os << value / s.mult << s.suffix;
      return os.str();
    }
  }
  std::ostringstream os;
  os << value;
  return os.str();
}

namespace {

/// Parse "DC v | AC mag [phase] | PULSE(...) | SIN(...)" source tail.
void parseSourceTail(const std::vector<std::string>& tok, std::size_t i, Waveform& wave,
                     double& acMag, double& acPhase, const std::string& card) {
  auto isNumber = [](const std::string& s) {
    return !s.empty() && (std::isdigit(static_cast<unsigned char>(s[0])) || s[0] == '-' ||
                          s[0] == '+' || s[0] == '.');
  };
  while (i < tok.size()) {
    const std::string key = lower(tok[i]);
    if (key == "dc") {
      if (i + 1 >= tok.size()) throw NetlistParseError("DC needs a value: " + card);
      wave = Waveform::makeDc(parseSpiceNumber(tok[i + 1]));
      i += 2;
    } else if (key == "ac") {
      if (i + 1 >= tok.size()) throw NetlistParseError("AC needs a magnitude: " + card);
      acMag = parseSpiceNumber(tok[i + 1]);
      i += 2;
      if (i < tok.size() && isNumber(tok[i])) {
        acPhase = parseSpiceNumber(tok[i]);
        ++i;
      }
    } else if (key == "pulse") {
      if (i + 7 >= tok.size()) throw NetlistParseError("PULSE needs 7 values: " + card);
      wave = Waveform::makePulse(parseSpiceNumber(tok[i + 1]), parseSpiceNumber(tok[i + 2]),
                                 parseSpiceNumber(tok[i + 3]), parseSpiceNumber(tok[i + 4]),
                                 parseSpiceNumber(tok[i + 5]), parseSpiceNumber(tok[i + 6]),
                                 parseSpiceNumber(tok[i + 7]));
      i += 8;
    } else if (key == "sin") {
      if (i + 3 >= tok.size()) throw NetlistParseError("SIN needs 3 values: " + card);
      wave = Waveform::makeSin(parseSpiceNumber(tok[i + 1]), parseSpiceNumber(tok[i + 2]),
                               parseSpiceNumber(tok[i + 3]));
      i += 4;
    } else if (isNumber(tok[i])) {
      // Bare value means DC.
      wave = Waveform::makeDc(parseSpiceNumber(tok[i]));
      ++i;
    } else {
      throw NetlistParseError("unexpected token '" + tok[i] + "' in: " + card);
    }
  }
}

}  // namespace

Circuit parseNetlist(std::string_view text) {
  Circuit c;
  std::size_t pos = 0;
  int lineNo = 0;
  bool firstLine = true;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string line(text.substr(pos, eol - pos));
    pos = eol + 1;
    ++lineNo;

    // SPICE convention: the first line is the title.
    if (firstLine) {
      firstLine = false;
      if (!line.empty() && line[0] == '*') {
        c.title = line.substr(1);
        // Trim leading whitespace from the title.
        c.title.erase(0, c.title.find_first_not_of(" \t"));
        continue;
      }
    }
    if (line.empty() || line[0] == '*') continue;
    const std::vector<std::string> tok = tokenize(line);
    if (tok.empty()) continue;
    const std::string head = lower(tok[0]);
    if (head == ".end" || head == ".ends") break;
    if (head[0] == '.') continue;  // Ignore other dot cards.

    const std::string name = tok[0];
    auto ctx = [&] { return "line " + std::to_string(lineNo) + ": " + line; };
    switch (head[0]) {
      case 'm': {
        if (tok.size() < 6) throw NetlistParseError("MOS card too short: " + ctx());
        const NodeId d = c.node(tok[1]), g = c.node(tok[2]), s = c.node(tok[3]),
                     b = c.node(tok[4]);
        const std::string model = lower(tok[5]);
        tech::MosType type;
        if (model == "nmos" || model.starts_with("nmos")) type = tech::MosType::kNmos;
        else if (model == "pmos" || model.starts_with("pmos")) type = tech::MosType::kPmos;
        else throw NetlistParseError("unknown MOS model '" + tok[5] + "': " + ctx());
        device::MosGeometry geo;
        double mult = 1.0;
        for (std::size_t i = 6; i < tok.size(); ++i) {
          const std::size_t eq = tok[i].find('=');
          if (eq == std::string::npos) {
            throw NetlistParseError("expected key=value: " + ctx());
          }
          const std::string key = lower(tok[i].substr(0, eq));
          const double val = parseSpiceNumber(tok[i].substr(eq + 1));
          if (key == "w") geo.w = val;
          else if (key == "l") geo.l = val;
          else if (key == "nf") geo.nf = static_cast<int>(val);
          else if (key == "ad") geo.ad = val;
          else if (key == "as") geo.as = val;
          else if (key == "pd") geo.pd = val;
          else if (key == "ps") geo.ps = val;
          else if (key == "m") mult = val;
          else throw NetlistParseError("unknown MOS parameter '" + key + "': " + ctx());
        }
        c.addMos(name, d, g, s, b, type, geo, mult);
        break;
      }
      case 'r': {
        if (tok.size() < 4) throw NetlistParseError("R card too short: " + ctx());
        c.addResistor(name, c.node(tok[1]), c.node(tok[2]), parseSpiceNumber(tok[3]));
        break;
      }
      case 'c': {
        if (tok.size() < 4) throw NetlistParseError("C card too short: " + ctx());
        c.addCapacitor(name, c.node(tok[1]), c.node(tok[2]), parseSpiceNumber(tok[3]));
        break;
      }
      case 'v': {
        if (tok.size() < 3) throw NetlistParseError("V card too short: " + ctx());
        Waveform wave;
        double acMag = 0.0, acPhase = 0.0;
        parseSourceTail(tok, 3, wave, acMag, acPhase, ctx());
        c.addVSource(name, c.node(tok[1]), c.node(tok[2]), wave, acMag, acPhase);
        break;
      }
      case 'i': {
        if (tok.size() < 3) throw NetlistParseError("I card too short: " + ctx());
        Waveform wave;
        double acMag = 0.0, acPhase = 0.0;
        parseSourceTail(tok, 3, wave, acMag, acPhase, ctx());
        c.addISource(name, c.node(tok[1]), c.node(tok[2]), wave, acMag);
        break;
      }
      case 'e': {
        if (tok.size() < 6) throw NetlistParseError("E card too short: " + ctx());
        c.addVcvs(name, c.node(tok[1]), c.node(tok[2]), c.node(tok[3]), c.node(tok[4]),
                  parseSpiceNumber(tok[5]));
        break;
      }
      default:
        throw NetlistParseError("unknown element type: " + ctx());
    }
  }
  return c;
}

std::string writeNetlist(const Circuit& c) {
  std::ostringstream os;
  os << "* " << c.title << "\n";
  auto nn = [&](NodeId n) { return c.nodeName(n); };
  for (const Mos& m : c.mosfets) {
    os << m.name << " " << nn(m.drain) << " " << nn(m.gate) << " " << nn(m.source) << " "
       << nn(m.bulk) << " " << (m.type == tech::MosType::kNmos ? "nmos" : "pmos")
       << " W=" << formatSpiceNumber(m.geo.w) << " L=" << formatSpiceNumber(m.geo.l)
       << " NF=" << m.geo.nf << " AD=" << formatSpiceNumber(m.geo.ad)
       << " AS=" << formatSpiceNumber(m.geo.as) << " PD=" << formatSpiceNumber(m.geo.pd)
       << " PS=" << formatSpiceNumber(m.geo.ps) << " M=" << m.mult << "\n";
  }
  for (const Resistor& r : c.resistors) {
    os << r.name << " " << nn(r.a) << " " << nn(r.b) << " " << formatSpiceNumber(r.ohms)
       << "\n";
  }
  for (const Capacitor& cap : c.capacitors) {
    os << cap.name << " " << nn(cap.a) << " " << nn(cap.b) << " "
       << formatSpiceNumber(cap.farads) << "\n";
  }
  auto writeWave = [&](std::ostream& out, const Waveform& w) {
    switch (w.kind) {
      case Waveform::Kind::kDc:
        out << " DC " << formatSpiceNumber(w.dc);
        break;
      case Waveform::Kind::kPulse:
        out << " PULSE(" << formatSpiceNumber(w.v1) << " " << formatSpiceNumber(w.v2) << " "
            << formatSpiceNumber(w.delay) << " " << formatSpiceNumber(w.rise) << " "
            << formatSpiceNumber(w.fall) << " " << formatSpiceNumber(w.width) << " "
            << formatSpiceNumber(w.period) << ")";
        break;
      case Waveform::Kind::kSin:
        out << " SIN(" << formatSpiceNumber(w.offset) << " "
            << formatSpiceNumber(w.amplitude) << " " << formatSpiceNumber(w.freq) << ")";
        break;
    }
  };
  for (const VSource& v : c.vsources) {
    os << v.name << " " << nn(v.pos) << " " << nn(v.neg);
    writeWave(os, v.wave);
    if (v.acMag != 0.0) os << " AC " << formatSpiceNumber(v.acMag) << " " << v.acPhase;
    os << "\n";
  }
  for (const ISource& i : c.isources) {
    os << i.name << " " << nn(i.pos) << " " << nn(i.neg);
    writeWave(os, i.wave);
    if (i.acMag != 0.0) os << " AC " << formatSpiceNumber(i.acMag);
    os << "\n";
  }
  for (const Vcvs& e : c.vcvs) {
    os << e.name << " " << nn(e.pos) << " " << nn(e.neg) << " " << nn(e.cp) << " "
       << nn(e.cn) << " " << e.gain << "\n";
  }
  os << ".end\n";
  return os.str();
}

}  // namespace lo::circuit
