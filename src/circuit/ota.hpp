// Folded-cascode OTA topology (paper Fig. 4).
//
// PMOS input pair MP1/MP2 fed by tail source MP5, folding into NMOS sinks
// MN5/MN6, NMOS cascodes MN1C/MN2C, and a cascoded PMOS current-mirror load
// MP3/MP4 + MP3C/MP4C whose mirror node drives the MP3/MP4 gates; the
// output is taken at the MP4C/MN2C junction.  The input pair sits in its
// own N-well tied to the tail node (kills body effect, adds the floating
// well capacitance the paper's extraction step reports).
#pragma once

#include <array>
#include <string>

#include "circuit/circuit.hpp"

namespace lo::circuit {

/// Matched-group identifiers; every device in a group shares geometry.
enum class OtaGroup { kInputPair, kTail, kSink, kNCascode, kPSource, kPCascode };
inline constexpr std::array<OtaGroup, 6> kAllOtaGroups = {
    OtaGroup::kInputPair, OtaGroup::kTail,    OtaGroup::kSink,
    OtaGroup::kNCascode,  OtaGroup::kPSource, OtaGroup::kPCascode,
};

[[nodiscard]] constexpr const char* otaGroupName(OtaGroup g) {
  switch (g) {
    case OtaGroup::kInputPair: return "input_pair";
    case OtaGroup::kTail: return "tail";
    case OtaGroup::kSink: return "sink";
    case OtaGroup::kNCascode: return "n_cascode";
    case OtaGroup::kPSource: return "p_source";
    case OtaGroup::kPCascode: return "p_cascode";
  }
  return "?";
}

[[nodiscard]] constexpr tech::MosType otaGroupType(OtaGroup g) {
  switch (g) {
    case OtaGroup::kSink:
    case OtaGroup::kNCascode: return tech::MosType::kNmos;
    default: return tech::MosType::kPmos;
  }
}

/// Complete electrical design of the OTA: geometries per matched group,
/// bias voltages, supplies and load.  Produced by the sizing tool, consumed
/// by the netlist builder and the layout generator.
struct FoldedCascodeOtaDesign {
  device::MosGeometry inputPair;  ///< MP1 = MP2.
  device::MosGeometry tail;       ///< MP5.
  device::MosGeometry sink;       ///< MN5 = MN6.
  device::MosGeometry nCascode;   ///< MN1C = MN2C.
  device::MosGeometry pSource;    ///< MP3 = MP4.
  device::MosGeometry pCascode;   ///< MP3C = MP4C.

  // Bias node voltages (to ground).
  double vp1 = 2.2;  ///< Tail gate.
  double vbn = 1.0;  ///< Sink gates.
  double vc1 = 1.6;  ///< NMOS cascode gates.
  double vc3 = 1.8;  ///< PMOS cascode gates.

  double vdd = 3.3;
  double cload = 3e-12;
  double inputCm = 1.2;  ///< Nominal input common-mode voltage.

  // Branch currents decided by the sizing plan [A].
  double tailCurrent = 200e-6;
  double cascodeCurrent = 100e-6;  ///< Current in each folded branch.

  [[nodiscard]] device::MosGeometry& geometry(OtaGroup g);
  [[nodiscard]] const device::MosGeometry& geometry(OtaGroup g) const;

  /// Sink branch current: tail/2 recombines with the folded branch.
  [[nodiscard]] double sinkCurrent() const { return tailCurrent / 2.0 + cascodeCurrent; }
  /// Total supply current (no bias generator modelled).
  [[nodiscard]] double supplyCurrent() const { return tailCurrent + 2.0 * cascodeCurrent; }
};

/// Node handles returned by instantiateOta.
struct OtaNodes {
  NodeId vdd, inp, inn, out, tail, x1, x2, y1;
};

/// Add the OTA (11 transistors), its bias voltage sources, the VDD supply
/// source (named "VDD<prefix>") and the load capacitor to `c`.  Node names
/// get `prefix` appended so multiple instances can coexist.
OtaNodes instantiateOta(Circuit& c, const FoldedCascodeOtaDesign& design,
                        const std::string& prefix = "");

/// Transistor-level bias generator: diode/mirror legs fed by one reference
/// current that regenerate vbn, vp1, vc1 and vc3 so they track the process
/// (fixed ideal bias voltages fall apart at cross corners; see
/// sizing::designOtaBias).
struct OtaBiasDesign {
  device::MosGeometry nDiode;     ///< MNB1/MNB2/MNB5: vbn diode + mirror legs.
  device::MosGeometry pDiode;     ///< MPB1/MPB4: vp1 diode + mirror leg.
  device::MosGeometry nCascDiode; ///< MNB3: large-VGS diode producing vc1.
  device::MosGeometry pCascDiode; ///< MPB2: large-VGS diode producing vdd - vc3.
  double biasCurrent = 5e-6;      ///< Reference current per leg [A].

  /// Supply current of the generator (four Ib legs).
  [[nodiscard]] double supplyCurrent() const { return 4.0 * biasCurrent; }
};

/// Add the OTA plus the bias generator (the four bias voltage sources are
/// replaced by the generator's nodes; an ideal current reference "IREF"
/// remains, as is standard practice).
OtaNodes instantiateOtaWithBias(Circuit& c, const FoldedCascodeOtaDesign& design,
                                const OtaBiasDesign& bias,
                                const std::string& prefix = "");

/// DC current each device of a group carries in the balanced state [A]
/// (magnitudes; used for electromigration wire sizing in the layout).
[[nodiscard]] double otaGroupCurrent(const FoldedCascodeOtaDesign& design, OtaGroup g);

}  // namespace lo::circuit
