// SPICE-flavoured netlist reader/writer.
//
// The extractor emits parasitic-annotated netlists in this format and the
// test suite round-trips circuits through it.  Supported cards:
//
//   * comment lines, .end
//   M<name> d g s b <nmos|pmos> W= L= [NF= AD= AS= PD= PS= M=]
//   R<name> a b <ohms>
//   C<name> a b <farads>
//   V<name> p n [DC <v>] [AC <mag> [phase]] [PULSE(v1 v2 td tr tf pw per)]
//            [SIN(off ampl freq)]
//   I<name> p n [DC <v>] [AC <mag>]
//   E<name> p n cp cn <gain>
//
// Numbers accept the usual SI suffixes (f p n u m k meg g t).
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "circuit/circuit.hpp"

namespace lo::circuit {

class NetlistParseError : public std::runtime_error {
 public:
  explicit NetlistParseError(const std::string& what) : std::runtime_error(what) {}
};

/// Parse a netlist; throws NetlistParseError on malformed input.
[[nodiscard]] Circuit parseNetlist(std::string_view text);

/// Serialise a circuit to netlist text (round-trippable through
/// parseNetlist).
[[nodiscard]] std::string writeNetlist(const Circuit& circuit);

/// Parse one SPICE number with optional SI suffix ("2.5u", "3MEG", "10k"),
/// case-insensitively.  The suffix must match exactly: trailing characters
/// after a recognised suffix ("10megx", "1m5") throw NetlistParseError
/// instead of silently parsing as the prefix.
[[nodiscard]] double parseSpiceNumber(std::string_view token);

/// Format a value in engineering notation with SI suffix (e.g. "2.5u").
[[nodiscard]] std::string formatSpiceNumber(double value);

}  // namespace lo::circuit
