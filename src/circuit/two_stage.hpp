// Two-stage Miller-compensated OTA -- the second topology of the tool.
//
// The paper stresses that COMDIAC's hierarchy of building-block routines
// "simplifies the addition of new topologies" (section 4); this topology
// exercises that claim end to end: its own design plan (src/sizing), its
// own layout program (src/layout) including a plate capacitor for the
// Miller compensation, and the same flow machinery.
//
// Schematic (classic five-transistor first stage + common-source second):
//   MN1/MN2  NMOS input pair (gates inp/inn), sources at the tail node
//   MP3/MP4  PMOS mirror load (MP3 diode-connected), drains = pair drains
//   MN5      NMOS tail current source (gate vbn)
//   MP6      PMOS second-stage driver (gate = first-stage output, node o1)
//   MN7      NMOS second-stage sink (gate vbn, mirrors the tail)
//   CC + RZ  Miller compensation with nulling resistor from o1 to out
#pragma once

#include <array>

#include "circuit/circuit.hpp"

namespace lo::circuit {

enum class TwoStageGroup { kInputPair, kMirror, kTail, kDriver, kSink2 };
inline constexpr std::array<TwoStageGroup, 5> kAllTwoStageGroups = {
    TwoStageGroup::kInputPair, TwoStageGroup::kMirror, TwoStageGroup::kTail,
    TwoStageGroup::kDriver, TwoStageGroup::kSink2,
};

[[nodiscard]] constexpr const char* twoStageGroupName(TwoStageGroup g) {
  switch (g) {
    case TwoStageGroup::kInputPair: return "input_pair";
    case TwoStageGroup::kMirror: return "mirror";
    case TwoStageGroup::kTail: return "tail";
    case TwoStageGroup::kDriver: return "driver";
    case TwoStageGroup::kSink2: return "sink2";
  }
  return "?";
}

[[nodiscard]] constexpr tech::MosType twoStageGroupType(TwoStageGroup g) {
  switch (g) {
    case TwoStageGroup::kMirror:
    case TwoStageGroup::kDriver: return tech::MosType::kPmos;
    default: return tech::MosType::kNmos;
  }
}

struct TwoStageOtaDesign {
  device::MosGeometry inputPair;  ///< MN1 = MN2.
  device::MosGeometry mirror;     ///< MP3 = MP4.
  device::MosGeometry tail;       ///< MN5.
  device::MosGeometry driver;     ///< MP6.
  device::MosGeometry sink2;      ///< MN7.

  double cc = 0.8e-12;    ///< Miller compensation capacitor [F].
  double rz = 1e3;        ///< Nulling resistor [ohm].
  double vbn = 1.0;       ///< Tail / sink bias voltage.

  double vdd = 3.3;
  double cload = 3e-12;
  double inputCm = 1.2;

  double tailCurrent = 100e-6;
  double stage2Current = 300e-6;

  [[nodiscard]] device::MosGeometry& geometry(TwoStageGroup g);
  [[nodiscard]] const device::MosGeometry& geometry(TwoStageGroup g) const;

  [[nodiscard]] double supplyCurrent() const { return tailCurrent + stage2Current; }
};

struct TwoStageNodes {
  NodeId vdd, inp, inn, out, tail, o1, d1;
};

/// Add the amplifier (7 transistors + CC/RZ), its bias source, the VDD
/// supply source and the load capacitor to `c`.
TwoStageNodes instantiateTwoStage(Circuit& c, const TwoStageOtaDesign& d,
                                  const std::string& prefix = "");

/// Balanced-state DC current of each device in a group [A].
[[nodiscard]] double twoStageGroupCurrent(const TwoStageOtaDesign& d, TwoStageGroup g);

}  // namespace lo::circuit
