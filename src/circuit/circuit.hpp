// Flat netlist representation shared by the sizing tool, the layout
// extractor and the simulator.
//
// Node 0 is always ground ("0" and "gnd" both map to it).  Devices are plain
// structs in per-type vectors; the simulator walks these directly, which
// keeps the MNA assembly simple and fast.
#pragma once

#include <cmath>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "device/mos_op.hpp"
#include "tech/model_card.hpp"

namespace lo::circuit {

using NodeId = int;
inline constexpr NodeId kGround = 0;

/// Time-domain waveform of an independent source.
struct Waveform {
  enum class Kind { kDc, kPulse, kSin };
  Kind kind = Kind::kDc;
  double dc = 0.0;
  // PULSE(v1 v2 delay rise fall width period)
  double v1 = 0.0, v2 = 0.0, delay = 0.0, rise = 1e-9, fall = 1e-9, width = 1e-3,
         period = 2e-3;
  // SIN(offset amplitude freq)
  double offset = 0.0, amplitude = 0.0, freq = 1e3;

  [[nodiscard]] static Waveform makeDc(double value) {
    Waveform w;
    w.dc = value;
    return w;
  }
  [[nodiscard]] static Waveform makePulse(double v1, double v2, double delay, double rise,
                                          double fall, double width, double period);
  [[nodiscard]] static Waveform makeSin(double offset, double amplitude, double freq);

  /// Instantaneous value at time t (kDc returns dc for all t).
  [[nodiscard]] double at(double t) const;
  /// Value used for the DC operating point.
  [[nodiscard]] double dcValue() const;
};

struct Mos {
  std::string name;
  NodeId drain = kGround, gate = kGround, source = kGround, bulk = kGround;
  tech::MosType type = tech::MosType::kNmos;
  device::MosGeometry geo;
  double mult = 1.0;      ///< Parallel device multiplier.
  double vtoDelta = 0.0;  ///< Per-device threshold mismatch [V] (Monte Carlo).
  double kpScale = 1.0;   ///< Per-device transconductance mismatch factor.
};

struct Resistor {
  std::string name;
  NodeId a = kGround, b = kGround;
  double ohms = 1e3;
};

struct Capacitor {
  std::string name;
  NodeId a = kGround, b = kGround;
  double farads = 1e-12;
};

struct VSource {
  std::string name;
  NodeId pos = kGround, neg = kGround;
  Waveform wave;
  double acMag = 0.0;    ///< AC analysis magnitude [V].
  double acPhase = 0.0;  ///< AC analysis phase [degrees].
};

struct ISource {
  std::string name;
  NodeId pos = kGround, neg = kGround;  ///< Current flows pos -> neg through the source.
  Waveform wave;
  double acMag = 0.0;
};

/// Voltage-controlled voltage source: V(pos,neg) = gain * V(cp,cn).
struct Vcvs {
  std::string name;
  NodeId pos = kGround, neg = kGround, cp = kGround, cn = kGround;
  double gain = 1.0;
};

class Circuit {
 public:
  Circuit() { nodeNames_ = {"0"}; }

  std::string title = "untitled";

  /// Find-or-create a named node.  "0" and "gnd" are ground.
  NodeId node(const std::string& name);
  /// Look up an existing node; nullopt if absent.
  [[nodiscard]] std::optional<NodeId> findNode(const std::string& name) const;
  [[nodiscard]] const std::string& nodeName(NodeId id) const { return nodeNames_.at(id); }
  /// Number of nodes including ground.
  [[nodiscard]] int nodeCount() const { return static_cast<int>(nodeNames_.size()); }

  Mos& addMos(std::string name, NodeId d, NodeId g, NodeId s, NodeId b,
              tech::MosType type, const device::MosGeometry& geo, double mult = 1.0);
  Resistor& addResistor(std::string name, NodeId a, NodeId b, double ohms);
  Capacitor& addCapacitor(std::string name, NodeId a, NodeId b, double farads);
  VSource& addVSource(std::string name, NodeId pos, NodeId neg, Waveform wave,
                      double acMag = 0.0, double acPhase = 0.0);
  ISource& addISource(std::string name, NodeId pos, NodeId neg, Waveform wave,
                      double acMag = 0.0);
  Vcvs& addVcvs(std::string name, NodeId pos, NodeId neg, NodeId cp, NodeId cn,
                double gain);

  [[nodiscard]] Mos* findMos(const std::string& name);
  [[nodiscard]] const Mos* findMos(const std::string& name) const;
  [[nodiscard]] VSource* findVSource(const std::string& name);
  [[nodiscard]] Capacitor* findCapacitor(const std::string& name);

  /// Total capacitance attached between `node` and any other node by
  /// explicit capacitor elements.
  [[nodiscard]] double explicitCapAt(NodeId node) const;

  std::vector<Mos> mosfets;
  std::vector<Resistor> resistors;
  std::vector<Capacitor> capacitors;
  std::vector<VSource> vsources;
  std::vector<ISource> isources;
  std::vector<Vcvs> vcvs;

 private:
  std::vector<std::string> nodeNames_;
  std::unordered_map<std::string, NodeId> nodesByName_{{"0", 0}, {"gnd", 0}};
};

}  // namespace lo::circuit
