#include "circuit/ota.hpp"

namespace lo::circuit {

device::MosGeometry& FoldedCascodeOtaDesign::geometry(OtaGroup g) {
  switch (g) {
    case OtaGroup::kInputPair: return inputPair;
    case OtaGroup::kTail: return tail;
    case OtaGroup::kSink: return sink;
    case OtaGroup::kNCascode: return nCascode;
    case OtaGroup::kPSource: return pSource;
    case OtaGroup::kPCascode: return pCascode;
  }
  return inputPair;
}

const device::MosGeometry& FoldedCascodeOtaDesign::geometry(OtaGroup g) const {
  return const_cast<FoldedCascodeOtaDesign*>(this)->geometry(g);
}

double otaGroupCurrent(const FoldedCascodeOtaDesign& d, OtaGroup g) {
  switch (g) {
    case OtaGroup::kInputPair: return d.tailCurrent / 2.0;
    case OtaGroup::kTail: return d.tailCurrent;
    case OtaGroup::kSink: return d.sinkCurrent();
    case OtaGroup::kNCascode:
    case OtaGroup::kPSource:
    case OtaGroup::kPCascode: return d.cascodeCurrent;
  }
  return 0.0;
}

namespace {

/// Shared body: the 11 core transistors, the supply source and the load.
/// Bias nodes are created but left undriven for the caller to bias.
OtaNodes instantiateCore(Circuit& c, const FoldedCascodeOtaDesign& d,
                         const std::string& prefix, NodeId& vp1, NodeId& vbn,
                         NodeId& vc1, NodeId& vc3) {
  auto n = [&](const std::string& base) { return c.node(base + prefix); };
  OtaNodes nodes;
  nodes.vdd = n("vdd");
  nodes.inp = n("inp");
  nodes.inn = n("inn");
  nodes.out = n("out");
  nodes.tail = n("tail");
  nodes.x1 = n("x1");
  nodes.x2 = n("x2");
  nodes.y1 = n("y1");
  vp1 = n("vp1");
  vbn = n("vbn");
  vc1 = n("vc1");
  vc3 = n("vc3");
  const NodeId gnd = kGround;

  using tech::MosType;
  // Tail current source.
  c.addMos("MP5" + prefix, nodes.tail, vp1, nodes.vdd, nodes.vdd, MosType::kPmos, d.tail);
  // Input pair; bulks tied to the tail node (dedicated floating N-well).
  c.addMos("MP1" + prefix, nodes.x1, nodes.inp, nodes.tail, nodes.tail, MosType::kPmos,
           d.inputPair);
  c.addMos("MP2" + prefix, nodes.x2, nodes.inn, nodes.tail, nodes.tail, MosType::kPmos,
           d.inputPair);
  // Folding-node current sinks.
  c.addMos("MN5" + prefix, nodes.x1, vbn, gnd, gnd, MosType::kNmos, d.sink);
  c.addMos("MN6" + prefix, nodes.x2, vbn, gnd, gnd, MosType::kNmos, d.sink);
  // NMOS cascodes up to the mirror node / output.
  c.addMos("MN1C" + prefix, nodes.y1, vc1, nodes.x1, gnd, MosType::kNmos, d.nCascode);
  c.addMos("MN2C" + prefix, nodes.out, vc1, nodes.x2, gnd, MosType::kNmos, d.nCascode);
  // Cascoded PMOS mirror load: MP3/MP4 gates driven by the mirror node y1.
  const NodeId z1 = n("z1"), z2 = n("z2");
  c.addMos("MP3" + prefix, z1, nodes.y1, nodes.vdd, nodes.vdd, MosType::kPmos, d.pSource);
  c.addMos("MP4" + prefix, z2, nodes.y1, nodes.vdd, nodes.vdd, MosType::kPmos, d.pSource);
  c.addMos("MP3C" + prefix, nodes.y1, vc3, z1, nodes.vdd, MosType::kPmos, d.pCascode);
  c.addMos("MP4C" + prefix, nodes.out, vc3, z2, nodes.vdd, MosType::kPmos, d.pCascode);

  // Supply source and load capacitance.
  c.addVSource("VDD" + prefix, nodes.vdd, gnd, Waveform::makeDc(d.vdd));
  c.addCapacitor("CL" + prefix, nodes.out, gnd, d.cload);
  return nodes;
}

}  // namespace

OtaNodes instantiateOta(Circuit& c, const FoldedCascodeOtaDesign& d,
                        const std::string& prefix) {
  NodeId vp1, vbn, vc1, vc3;
  const OtaNodes nodes = instantiateCore(c, d, prefix, vp1, vbn, vc1, vc3);
  c.addVSource("VP1" + prefix, vp1, kGround, Waveform::makeDc(d.vp1));
  c.addVSource("VBN" + prefix, vbn, kGround, Waveform::makeDc(d.vbn));
  c.addVSource("VC1" + prefix, vc1, kGround, Waveform::makeDc(d.vc1));
  c.addVSource("VC3" + prefix, vc3, kGround, Waveform::makeDc(d.vc3));
  return nodes;
}

OtaNodes instantiateOtaWithBias(Circuit& c, const FoldedCascodeOtaDesign& d,
                                const OtaBiasDesign& bias, const std::string& prefix) {
  NodeId vp1, vbn, vc1, vc3;
  const OtaNodes nodes = instantiateCore(c, d, prefix, vp1, vbn, vc1, vc3);
  const NodeId gnd = kGround;
  using tech::MosType;
  const double ib = bias.biasCurrent;

  // vbn: reference current into an NMOS diode; the sinks mirror it.
  c.addISource("IREF" + prefix, nodes.vdd, vbn, Waveform::makeDc(ib));
  c.addMos("MNB1" + prefix, vbn, vbn, gnd, gnd, MosType::kNmos, bias.nDiode);

  // vp1: mirrored leg pulls the reference through a PMOS diode.
  c.addMos("MNB2" + prefix, vp1, vbn, gnd, gnd, MosType::kNmos, bias.nDiode);
  c.addMos("MPB1" + prefix, vp1, vp1, nodes.vdd, nodes.vdd, MosType::kPmos, bias.pDiode);

  // vc1: PMOS mirror leg feeds a large-VGS NMOS diode.
  c.addMos("MPB4" + prefix, vc1, vp1, nodes.vdd, nodes.vdd, MosType::kPmos, bias.pDiode);
  c.addMos("MNB3" + prefix, vc1, vc1, gnd, gnd, MosType::kNmos, bias.nCascDiode);

  // vc3: NMOS mirror leg pulls the reference through a large-VGS PMOS diode.
  c.addMos("MPB2" + prefix, vc3, vc3, nodes.vdd, nodes.vdd, MosType::kPmos,
           bias.pCascDiode);
  c.addMos("MNB5" + prefix, vc3, vbn, gnd, gnd, MosType::kNmos, bias.nDiode);
  return nodes;
}

}  // namespace lo::circuit
