#include "circuit/two_stage.hpp"

namespace lo::circuit {

device::MosGeometry& TwoStageOtaDesign::geometry(TwoStageGroup g) {
  switch (g) {
    case TwoStageGroup::kInputPair: return inputPair;
    case TwoStageGroup::kMirror: return mirror;
    case TwoStageGroup::kTail: return tail;
    case TwoStageGroup::kDriver: return driver;
    case TwoStageGroup::kSink2: return sink2;
  }
  return inputPair;
}

const device::MosGeometry& TwoStageOtaDesign::geometry(TwoStageGroup g) const {
  return const_cast<TwoStageOtaDesign*>(this)->geometry(g);
}

double twoStageGroupCurrent(const TwoStageOtaDesign& d, TwoStageGroup g) {
  switch (g) {
    case TwoStageGroup::kInputPair:
    case TwoStageGroup::kMirror: return d.tailCurrent / 2.0;
    case TwoStageGroup::kTail: return d.tailCurrent;
    case TwoStageGroup::kDriver:
    case TwoStageGroup::kSink2: return d.stage2Current;
  }
  return 0.0;
}

TwoStageNodes instantiateTwoStage(Circuit& c, const TwoStageOtaDesign& d,
                                  const std::string& prefix) {
  auto n = [&](const std::string& base) { return c.node(base + prefix); };
  TwoStageNodes nodes;
  nodes.vdd = n("vdd");
  nodes.inp = n("inp");
  nodes.inn = n("inn");
  nodes.out = n("out");
  nodes.tail = n("tail");
  nodes.o1 = n("o1");
  nodes.d1 = n("d1");
  const NodeId vbn = n("vbn");
  const NodeId rzm = n("rzm");
  const NodeId gnd = kGround;

  using tech::MosType;
  // First stage: NMOS pair into a PMOS mirror; o1 is the high-impedance
  // output on the MN2/MP4 side, d1 the diode side.  The non-inverting input
  // (inp) drives MN2 so that two inversions later the output follows it.
  c.addMos("MN1" + prefix, nodes.d1, nodes.inn, nodes.tail, gnd, MosType::kNmos,
           d.inputPair);
  c.addMos("MN2" + prefix, nodes.o1, nodes.inp, nodes.tail, gnd, MosType::kNmos,
           d.inputPair);
  c.addMos("MP3" + prefix, nodes.d1, nodes.d1, nodes.vdd, nodes.vdd, MosType::kPmos,
           d.mirror);
  c.addMos("MP4" + prefix, nodes.o1, nodes.d1, nodes.vdd, nodes.vdd, MosType::kPmos,
           d.mirror);
  c.addMos("MN5" + prefix, nodes.tail, vbn, gnd, gnd, MosType::kNmos, d.tail);

  // Second stage with Miller compensation (nulling resistor in series).
  c.addMos("MP6" + prefix, nodes.out, nodes.o1, nodes.vdd, nodes.vdd, MosType::kPmos,
           d.driver);
  c.addMos("MN7" + prefix, nodes.out, vbn, gnd, gnd, MosType::kNmos, d.sink2);
  c.addResistor("RZ" + prefix, nodes.o1, rzm, d.rz);
  c.addCapacitor("CC" + prefix, rzm, nodes.out, d.cc);

  c.addVSource("VDD" + prefix, nodes.vdd, gnd, Waveform::makeDc(d.vdd));
  c.addVSource("VBN" + prefix, vbn, gnd, Waveform::makeDc(d.vbn));
  c.addCapacitor("CL" + prefix, nodes.out, gnd, d.cload);
  return nodes;
}

}  // namespace lo::circuit
