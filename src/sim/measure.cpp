#include "sim/measure.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace lo::sim {

AcCurve curveAt(const std::vector<AcPoint>& ac, circuit::NodeId node) {
  AcCurve c;
  c.freq.reserve(ac.size());
  c.h.reserve(ac.size());
  for (const AcPoint& p : ac) {
    c.freq.push_back(p.freq);
    c.h.push_back(p.at(node));
  }
  return c;
}

AcCurve curveDiff(const std::vector<AcPoint>& ac, circuit::NodeId p, circuit::NodeId n) {
  AcCurve c;
  c.freq.reserve(ac.size());
  c.h.reserve(ac.size());
  for (const AcPoint& pt : ac) {
    c.freq.push_back(pt.freq);
    c.h.push_back(pt.at(p) - pt.at(n));
  }
  return c;
}

double toDb(double magnitude) { return 20.0 * std::log10(std::max(magnitude, 1e-30)); }

double dcGain(const AcCurve& curve) {
  return curve.h.empty() ? 0.0 : std::abs(curve.h.front());
}

std::vector<double> unwrappedPhaseDeg(const AcCurve& curve) {
  std::vector<double> out;
  out.reserve(curve.size());
  double prev = 0.0;
  for (std::size_t i = 0; i < curve.size(); ++i) {
    double ph = std::arg(curve.h[i]) * 180.0 / M_PI;
    if (i > 0) {
      while (ph - prev > 180.0) ph -= 360.0;
      while (ph - prev < -180.0) ph += 360.0;
    }
    out.push_back(ph);
    prev = ph;
  }
  return out;
}

double unityGainFrequency(const AcCurve& curve) {
  for (std::size_t i = 0; i + 1 < curve.size(); ++i) {
    const double m0 = std::abs(curve.h[i]);
    const double m1 = std::abs(curve.h[i + 1]);
    if (m0 >= 1.0 && m1 < 1.0) {
      // Log-log interpolation between the bracketing points.
      const double l0 = std::log10(m0), l1 = std::log10(m1);
      const double t = l0 / (l0 - l1);
      return curve.freq[i] * std::pow(curve.freq[i + 1] / curve.freq[i], t);
    }
  }
  return 0.0;
}

double phaseMarginDeg(const AcCurve& curve) {
  const double fu = unityGainFrequency(curve);
  if (fu <= 0.0) return 180.0;
  const std::vector<double> phase = unwrappedPhaseDeg(curve);
  // Normalise so that the low-frequency phase is 0 (inverting gains report
  // margins relative to their own DC phase).
  const double ref = phase.front();
  for (std::size_t i = 0; i + 1 < curve.size(); ++i) {
    if (curve.freq[i] <= fu && fu <= curve.freq[i + 1]) {
      const double t = std::log(fu / curve.freq[i]) /
                       std::log(curve.freq[i + 1] / curve.freq[i]);
      const double ph = phase[i] + t * (phase[i + 1] - phase[i]) - ref;
      return 180.0 + ph;
    }
  }
  return 180.0;
}

double gainAt(const AcCurve& curve, double freq) {
  if (curve.size() == 0) return 0.0;
  if (freq <= curve.freq.front()) return std::abs(curve.h.front());
  if (freq >= curve.freq.back()) return std::abs(curve.h.back());
  for (std::size_t i = 0; i + 1 < curve.size(); ++i) {
    if (curve.freq[i] <= freq && freq <= curve.freq[i + 1]) {
      const double t = std::log(freq / curve.freq[i]) /
                       std::log(curve.freq[i + 1] / curve.freq[i]);
      const double m0 = std::abs(curve.h[i]), m1 = std::abs(curve.h[i + 1]);
      return m0 * std::pow(m1 / std::max(m0, 1e-30), t);
    }
  }
  return std::abs(curve.h.back());
}

std::string acToCsv(const std::vector<AcPoint>& ac, circuit::NodeId node) {
  std::string out = "freq,mag,mag_db,phase_deg\n";
  char line[128];
  for (const AcPoint& p : ac) {
    const std::complex<double> h = p.at(node);
    std::snprintf(line, sizeof line, "%.6e,%.6e,%.3f,%.3f\n", p.freq, std::abs(h),
                  toDb(std::abs(h)), std::arg(h) * 180.0 / M_PI);
    out += line;
  }
  return out;
}

std::string tranToCsv(const std::vector<TranPoint>& tran, circuit::NodeId node) {
  std::string out = "time,v\n";
  char line[64];
  for (const TranPoint& p : tran) {
    std::snprintf(line, sizeof line, "%.6e,%.6e\n", p.time, p.nodeV[node]);
    out += line;
  }
  return out;
}

SlewRates slewRates(const std::vector<TranPoint>& tran, circuit::NodeId node,
                    double tStart, double tStop) {
  SlewRates out;
  if (tran.size() < 2 || tStop <= tStart) return out;
  bool sawInterval = false;
  for (std::size_t i = 0; i + 1 < tran.size(); ++i) {
    const double t0 = tran[i].time, t1 = tran[i + 1].time;
    if (t0 < tStart || t1 > tStop || t1 <= t0) continue;
    const double dv = tran[i + 1].nodeV[node] - tran[i].nodeV[node];
    const double slope = dv / (t1 - t0);
    if (!std::isfinite(slope)) continue;
    sawInterval = true;
    out.rising = std::max(out.rising, slope);
    out.falling = std::max(out.falling, -slope);
  }
  if (!sawInterval) {
    // Degenerate window: the step is coarser than [tStart, tStop], so no
    // interval lies entirely inside it.  Fall back to intervals merely
    // overlapping the window -- a coarse transient then reports the
    // bounding slope instead of a silent 0/0.
    for (std::size_t i = 0; i + 1 < tran.size(); ++i) {
      const double t0 = tran[i].time, t1 = tran[i + 1].time;
      if (t1 <= t0 || t1 < tStart || t0 > tStop) continue;
      const double dv = tran[i + 1].nodeV[node] - tran[i].nodeV[node];
      const double slope = dv / (t1 - t0);
      if (!std::isfinite(slope)) continue;
      out.rising = std::max(out.rising, slope);
      out.falling = std::max(out.falling, -slope);
    }
  }
  return out;
}

std::vector<double> tailSamples(const std::vector<TranPoint>& tran,
                                circuit::NodeId node, std::size_t count) {
  if (tran.size() < count) {
    throw std::invalid_argument("tailSamples: transient has " +
                                std::to_string(tran.size()) + " points, need " +
                                std::to_string(count));
  }
  std::vector<double> out;
  out.reserve(count);
  for (std::size_t i = tran.size() - count; i < tran.size(); ++i) {
    out.push_back(tran[i].nodeV[node]);
  }
  return out;
}

}  // namespace lo::sim
