// Measurement utilities over simulator outputs: Bode quantities (DC gain,
// unity-gain bandwidth, phase margin) from AC sweeps and slew rate from
// transient waveforms.  These are the raw measurements behind Table 1.
#pragma once

#include <complex>
#include <vector>

#include "sim/simulator.hpp"

namespace lo::sim {

/// A single-node transfer function extracted from an AC sweep.
struct AcCurve {
  std::vector<double> freq;
  std::vector<std::complex<double>> h;

  [[nodiscard]] std::size_t size() const { return freq.size(); }
};

/// Extract H(f) = V(node)/V(reference excitation) from an AC run (the run
/// already contains the excitation, so this is just the node voltage).
[[nodiscard]] AcCurve curveAt(const std::vector<AcPoint>& ac, circuit::NodeId node);

/// Differential curve V(p) - V(n).
[[nodiscard]] AcCurve curveDiff(const std::vector<AcPoint>& ac, circuit::NodeId p,
                                circuit::NodeId n);

[[nodiscard]] double toDb(double magnitude);

/// Magnitude of the first point (taken as the DC/low-frequency gain).
[[nodiscard]] double dcGain(const AcCurve& curve);

/// Unwrapped phase in degrees at index i (continuous across the sweep,
/// starting from the principal value of the first point).
[[nodiscard]] std::vector<double> unwrappedPhaseDeg(const AcCurve& curve);

/// Frequency where |H| crosses 1, log-interpolated; 0 if it never does.
[[nodiscard]] double unityGainFrequency(const AcCurve& curve);

/// Phase margin: 180 + phase(H) at the unity crossing [degrees]; returns
/// 180 when the curve never reaches unity.
[[nodiscard]] double phaseMarginDeg(const AcCurve& curve);

/// Gain magnitude at a specific frequency (log-interpolated).
[[nodiscard]] double gainAt(const AcCurve& curve, double freq);

/// CSV export of an AC sweep at one node: "freq,mag,mag_db,phase_deg".
[[nodiscard]] std::string acToCsv(const std::vector<AcPoint>& ac, circuit::NodeId node);

/// CSV export of a transient waveform at one node: "time,v".
[[nodiscard]] std::string tranToCsv(const std::vector<TranPoint>& tran,
                                    circuit::NodeId node);

/// Maximum rising and falling slopes of a node's transient waveform [V/s].
struct SlewRates {
  double rising = 0.0;   ///< Max positive dV/dt.
  double falling = 0.0;  ///< Max negative dV/dt (magnitude).
};
[[nodiscard]] SlewRates slewRates(const std::vector<TranPoint>& tran, circuit::NodeId node,
                                  double tStart = 0.0, double tStop = 1e12);

/// The last `count` samples of a node's transient waveform, oldest first
/// (the steady-state slice the THD measurement hands to the FFT).  Throws
/// std::invalid_argument when the transient is shorter than `count`.
[[nodiscard]] std::vector<double> tailSamples(const std::vector<TranPoint>& tran,
                                              circuit::NodeId node, std::size_t count);

}  // namespace lo::sim
