#include "sim/fft.hpp"

#include <cmath>
#include <stdexcept>

namespace lo::sim {

void fftRadix2(std::vector<std::complex<double>>& data) {
  const std::size_t n = data.size();
  if (!isPowerOfTwo(n)) {
    throw std::invalid_argument("fftRadix2: size " + std::to_string(n) +
                                " is not a power of two");
  }
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = -2.0 * M_PI / static_cast<double>(len);
    const std::complex<double> wlen{std::cos(ang), std::sin(ang)};
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w{1.0, 0.0};
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

std::vector<double> hannWindow(std::size_t n) {
  std::vector<double> w(n);
  for (std::size_t k = 0; k < n; ++k) {
    w[k] = 0.5 - 0.5 * std::cos(2.0 * M_PI * static_cast<double>(k) /
                                static_cast<double>(n));
  }
  return w;
}

std::vector<double> amplitudeSpectrum(const std::vector<double>& samples) {
  const std::size_t n = samples.size();
  std::vector<std::complex<double>> spec(n);
  for (std::size_t i = 0; i < n; ++i) spec[i] = {samples[i], 0.0};
  fftRadix2(spec);
  std::vector<double> amp(n / 2 + 1);
  amp[0] = std::abs(spec[0]) / static_cast<double>(n);
  for (std::size_t k = 1; k < amp.size(); ++k) {
    const double scale = (k == n / 2 ? 1.0 : 2.0) / static_cast<double>(n);
    amp[k] = std::abs(spec[k]) * scale;
  }
  return amp;
}

double thdPercent(const std::vector<double>& samples, std::size_t fundamentalBin,
                  int maxHarmonic) {
  const std::vector<double> amp = amplitudeSpectrum(samples);
  if (fundamentalBin == 0 || fundamentalBin >= amp.size()) {
    throw std::invalid_argument("thdPercent: fundamental bin out of range");
  }
  const double fund = amp[fundamentalBin];
  if (fund <= 0.0) return 0.0;
  double harmSq = 0.0;
  for (int h = 2; h <= maxHarmonic; ++h) {
    const std::size_t bin = fundamentalBin * static_cast<std::size_t>(h);
    if (bin >= amp.size()) break;  // Beyond Nyquist.
    harmSq += amp[bin] * amp[bin];
  }
  return std::sqrt(harmSq) / fund * 100.0;
}

}  // namespace lo::sim
