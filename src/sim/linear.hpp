// Dense linear algebra for the MNA engine.
//
// Circuit matrices here are tens of unknowns, so dense LU with partial
// pivoting is both simpler and faster than a sparse package.  The template
// is instantiated with double (DC, transient) and std::complex<double> (AC,
// noise).
#pragma once

#include <cmath>
#include <complex>
#include <stdexcept>
#include <vector>

namespace lo::sim {

template <typename T>
class DenseMatrix {
 public:
  DenseMatrix() = default;
  explicit DenseMatrix(std::size_t n) : n_(n), data_(n * n, T{}) {}

  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] T& at(std::size_t r, std::size_t c) { return data_[r * n_ + c]; }
  [[nodiscard]] const T& at(std::size_t r, std::size_t c) const { return data_[r * n_ + c]; }

  void clear() { std::fill(data_.begin(), data_.end(), T{}); }

  /// Additive stamp helper (ignores out-of-range index -1 used for ground).
  void stamp(std::ptrdiff_t r, std::ptrdiff_t c, T value) {
    if (r < 0 || c < 0) return;
    data_[static_cast<std::size_t>(r) * n_ + static_cast<std::size_t>(c)] += value;
  }

 private:
  std::size_t n_ = 0;
  std::vector<T> data_;
};

template <typename T>
[[nodiscard]] double magnitudeOf(const T& v) {
  if constexpr (std::is_same_v<T, std::complex<double>>) {
    return std::abs(v);
  } else {
    return std::abs(static_cast<double>(v));
  }
}

/// Factor A in place by LU with partial pivoting so one factorization can
/// serve many right-hand sides.  After success the diagonal and strict
/// upper triangle hold U, the strict lower triangle holds the elimination
/// multipliers, and perm[col] is the row swapped into `col` at that step.
///
/// The pivot search, swap and elimination updates run in exactly the order
/// luSolve interleaves them with its RHS updates, so
/// luFactorize + luSolveFactored is bit-identical to the one-shot path --
/// the property the solver regression tests lock down.  Returns false (A
/// partially modified) on numerical singularity.
template <typename T>
[[nodiscard]] bool luFactorize(DenseMatrix<T>& a, std::vector<std::size_t>& perm) {
  const std::size_t n = a.size();
  perm.assign(n, 0);
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    double best = magnitudeOf(a.at(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double m = magnitudeOf(a.at(r, col));
      if (m > best) {
        best = m;
        pivot = r;
      }
    }
    if (best < 1e-300) return false;
    perm[col] = pivot;
    if (pivot != col) {
      // Swap only the active submatrix (columns >= col).  Multipliers
      // already stored in earlier columns stay pinned to the row position
      // where the one-shot path applied them to b: luSolveFactored replays
      // swap / update interleaved per column, so a multiplier moved by a
      // later pivot swap would be applied at the wrong position.  The
      // active part -- and therefore U and every pivot decision -- is
      // unaffected, since those earlier columns are never read again.
      for (std::size_t c = col; c < n; ++c) std::swap(a.at(col, c), a.at(pivot, c));
    }
    // Eliminate below, storing each multiplier where the zero it creates
    // would live.  A multiplier that is exactly zero is stored as-is; the
    // solve skips it just as luSolve skips the whole update.
    const T diag = a.at(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const T factor = a.at(r, col) / diag;
      a.at(r, col) = factor;
      if (factor == T{}) continue;
      for (std::size_t c = col + 1; c < n; ++c) a.at(r, c) -= factor * a.at(col, c);
    }
  }
  return true;
}

/// Apply a luFactorize result to one RHS in place: b becomes x.  Replays
/// the exact swap / update / skip sequence luSolve performs during its
/// elimination, then the same back substitution, so the solution is
/// bit-identical to the one-shot path.
template <typename T>
void luSolveFactored(const DenseMatrix<T>& lu, const std::vector<std::size_t>& perm,
                     std::vector<T>& b) {
  const std::size_t n = lu.size();
  if (b.size() != n || perm.size() != n) {
    throw std::invalid_argument("luSolveFactored: dimension mismatch");
  }
  for (std::size_t col = 0; col < n; ++col) {
    if (perm[col] != col) std::swap(b[col], b[perm[col]]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const T factor = lu.at(r, col);
      if (factor == T{}) continue;
      b[r] -= factor * b[col];
    }
  }
  // Back substitution.
  for (std::size_t i = n; i-- > 0;) {
    T sum = b[i];
    for (std::size_t c = i + 1; c < n; ++c) sum -= lu.at(i, c) * b[c];
    b[i] = sum / lu.at(i, i);
  }
}

/// Solve A x = b in place by LU with partial pivoting; returns false when
/// the matrix is numerically singular.  A is destroyed; b becomes x.
template <typename T>
[[nodiscard]] bool luSolve(DenseMatrix<T>& a, std::vector<T>& b) {
  const std::size_t n = a.size();
  if (b.size() != n) throw std::invalid_argument("luSolve: dimension mismatch");
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    double best = magnitudeOf(a.at(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double m = magnitudeOf(a.at(r, col));
      if (m > best) {
        best = m;
        pivot = r;
      }
    }
    if (best < 1e-300) return false;
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a.at(col, c), a.at(pivot, c));
      std::swap(b[col], b[pivot]);
    }
    // Eliminate below.
    const T diag = a.at(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const T factor = a.at(r, col) / diag;
      if (factor == T{}) continue;
      a.at(r, col) = T{};
      for (std::size_t c = col + 1; c < n; ++c) a.at(r, c) -= factor * a.at(col, c);
      b[r] -= factor * b[col];
    }
  }
  // Back substitution.
  for (std::size_t i = n; i-- > 0;) {
    T sum = b[i];
    for (std::size_t c = i + 1; c < n; ++c) sum -= a.at(i, c) * b[c];
    b[i] = sum / a.at(i, i);
  }
  return true;
}

}  // namespace lo::sim
