// Radix-2 FFT and spectral helpers for the transient-based measurements
// (THD).  Deliberately tiny: the verification tier samples an integer
// number of steady-state cycles at a power-of-two rate, so a textbook
// in-place Cooley-Tukey with exact bin alignment is all that is needed --
// no zero padding, no general-length transforms.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace lo::sim {

[[nodiscard]] constexpr bool isPowerOfTwo(std::size_t n) {
  return n != 0 && (n & (n - 1)) == 0;
}

/// In-place radix-2 decimation-in-time FFT.  Throws std::invalid_argument
/// unless data.size() is a power of two.
void fftRadix2(std::vector<std::complex<double>>& data);

/// Periodic Hann window of length n (w[k] = 0.5 - 0.5 cos(2 pi k / n)),
/// the right variant for FFT analysis of periodic captures.
[[nodiscard]] std::vector<double> hannWindow(std::size_t n);

/// Single-sided amplitude spectrum of a real signal: result[k] is the
/// amplitude of the k-th bin (result[0] is the DC level; interior bins are
/// scaled by 2/N so a pure tone of amplitude A reports A in its bin).
/// samples.size() must be a power of two.
[[nodiscard]] std::vector<double> amplitudeSpectrum(const std::vector<double>& samples);

/// Total harmonic distortion [%] of a sampled waveform whose fundamental
/// falls exactly on `fundamentalBin`: RMS of harmonics 2..maxHarmonic over
/// the fundamental amplitude.  Harmonic bins beyond Nyquist are ignored.
/// Returns 0 when the fundamental bin is empty (no tone to distort).
[[nodiscard]] double thdPercent(const std::vector<double>& samples,
                                std::size_t fundamentalBin, int maxHarmonic);

}  // namespace lo::sim
