// Human-readable operating-point report, in the spirit of SPICE's .op
// printout: per-device bias, region, small-signal parameters, plus node
// voltages and source currents.  COMDIAC-style interactive exploration
// (paper section 4) leans on exactly this view of a design.
#pragma once

#include <string>

#include "sim/simulator.hpp"

namespace lo::sim {

/// Format the DC solution of `circuit` as a fixed-width text table.
[[nodiscard]] std::string opReport(const circuit::Circuit& circuit,
                                   const DcSolution& solution);

}  // namespace lo::sim
