#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "sim/linear.hpp"
#include "tech/units.hpp"

namespace lo::sim {

namespace {

using circuit::NodeId;
using Cplx = std::complex<double>;

/// Scale an op point so it describes `mult` identical devices in parallel.
device::MosOpPoint scaleByMult(device::MosOpPoint op, double mult) {
  op.id *= mult;
  op.gm *= mult;
  op.gds *= mult;
  op.gmb *= mult;
  op.cgs *= mult;
  op.cgd *= mult;
  op.cgb *= mult;
  op.cdb *= mult;
  op.csb *= mult;
  op.thermalNoisePsd *= mult;
  op.flickerCoeff *= mult;
  return op;
}

/// Log-spaced frequency grid, inclusive of both endpoints.
std::vector<double> logGrid(double fStart, double fStop, int pointsPerDecade) {
  if (fStart <= 0 || fStop <= fStart || pointsPerDecade < 1) {
    throw std::invalid_argument("bad frequency grid");
  }
  std::vector<double> freqs;
  const double decades = std::log10(fStop / fStart);
  const int n = std::max(2, static_cast<int>(std::ceil(decades * pointsPerDecade)) + 1);
  for (int i = 0; i < n; ++i) {
    freqs.push_back(fStart * std::pow(10.0, decades * i / (n - 1)));
  }
  return freqs;
}

/// One reactive entry of the AC system: the fast solve path replays these
/// per frequency as `a(r, c) += j * w * value` over a frequency-independent
/// skeleton, in the exact program order assembleAc stamps them.  That
/// replay is bit-identical to a full re-stamp: capacitor stamps add a pure
/// imaginary to the accumulating entry, and the +0.0 real additions they
/// carry along in assembleAc are IEEE no-ops (no skeleton entry's real
/// part can be -0.0: every entry starts at +0.0 and addition never turns
/// +0.0 negative).
struct CapStampOp {
  std::size_t r = 0;
  std::size_t c = 0;
  double value = 0.0;  ///< Signed capacitance [F].
};

}  // namespace

/// Per-instance scratch arena.  kFast solves run entirely inside these
/// buffers, so steady-state Newton iterations and AC frequency points
/// perform no heap allocation; kReference deliberately keeps the original
/// per-call allocation shape instead.
struct Simulator::Workspace {
  // DC / transient Newton buffers.
  DenseMatrix<double> a;
  std::vector<double> rhs;
  std::vector<double> xNew;
  // AC skeleton: frequency-independent stamps plus the reactive replay
  // list and the excite-mode source vector.
  DenseMatrix<Cplx> acBase;
  std::vector<CapStampOp> capOps;
  std::vector<Cplx> acSourceRhs;
  // Per-frequency realised matrix, factorization pivots and RHS.
  DenseMatrix<Cplx> acA;
  DenseMatrix<Cplx> acAdj;
  std::vector<Cplx> acRhs;
  std::vector<std::size_t> perm;
  std::vector<std::size_t> permAdj;
};

Simulator::Simulator(const circuit::Circuit& circuit, const tech::Technology& technology,
                     const device::MosModel& model, SimOptions options)
    : circuit_(circuit), tech_(technology), model_(model), options_(options) {}

Simulator::~Simulator() = default;

Simulator::Workspace& Simulator::ws() const {
  if (!ws_) ws_ = std::make_unique<Workspace>();
  return *ws_;
}

std::size_t Simulator::unknownCount() const {
  return static_cast<std::size_t>(circuit_.nodeCount() - 1) + circuit_.vsources.size() +
         circuit_.vcvs.size();
}

device::MosOpPoint Simulator::evalMos(const circuit::Mos& mos,
                                      const std::vector<double>& x) const {
  auto v = [&](NodeId n) { return n == circuit::kGround ? 0.0 : x[n - 1]; };
  const double vd = v(mos.drain), vg = v(mos.gate), vs = v(mos.source), vb = v(mos.bulk);
  if (mos.vtoDelta != 0.0 || mos.kpScale != 1.0) {
    // Per-device mismatch knobs (Monte Carlo statistical verification).
    tech::MosModelCard card = tech_.card(mos.type);
    card.vto += mos.vtoDelta;
    card.kp *= mos.kpScale;
    const device::MosOpPoint op =
        model_.evaluate(card, mos.geo, vg - vs, vd - vs, vb - vs, options_.tempK);
    return scaleByMult(op, mos.mult);
  }
  const device::MosOpPoint op = model_.evaluate(tech_.card(mos.type), mos.geo, vg - vs,
                                                vd - vs, vb - vs, options_.tempK);
  return scaleByMult(op, mos.mult);
}

// ---------------------------------------------------------------------------
// DC: Newton iteration with companion-model stamping.
// ---------------------------------------------------------------------------

bool Simulator::newtonSolve(std::vector<double>& x, double gmin, double srcScale,
                            int maxIters, int* itersOut) const {
  const std::size_t nUnknowns = unknownCount();
  const std::size_t nNodes = static_cast<std::size_t>(circuit_.nodeCount() - 1);
  // kFast iterates inside the workspace arena; kReference keeps the
  // original buffers-per-call shape.  Both run the same arithmetic on the
  // same values, so the solutions are bit-identical.
  const bool fast = options_.solver == SolverMode::kFast;
  DenseMatrix<double> aLocal;
  std::vector<double> rhsLocal;
  DenseMatrix<double>& a = fast ? ws().a : aLocal;
  std::vector<double>& rhs = fast ? ws().rhs : rhsLocal;
  if (a.size() != nUnknowns) a = DenseMatrix<double>(nUnknowns);
  rhs.resize(nUnknowns);

  auto idx = [](NodeId n) -> std::ptrdiff_t { return n - 1; };  // Ground maps to -1.
  auto v = [&](NodeId n) { return n == circuit::kGround ? 0.0 : x[n - 1]; };

  for (int iter = 0; iter < maxIters; ++iter) {
    a.clear();
    std::fill(rhs.begin(), rhs.end(), 0.0);

    for (std::size_t i = 0; i < nNodes; ++i) a.stamp(i, i, gmin);

    for (const circuit::Resistor& r : circuit_.resistors) {
      const double g = 1.0 / r.ohms;
      a.stamp(idx(r.a), idx(r.a), g);
      a.stamp(idx(r.b), idx(r.b), g);
      a.stamp(idx(r.a), idx(r.b), -g);
      a.stamp(idx(r.b), idx(r.a), -g);
    }

    for (const circuit::ISource& s : circuit_.isources) {
      const double i0 = srcScale * s.wave.dcValue();
      if (idx(s.pos) >= 0) rhs[idx(s.pos)] -= i0;
      if (idx(s.neg) >= 0) rhs[idx(s.neg)] += i0;
    }

    std::size_t branch = nNodes;
    for (const circuit::VSource& s : circuit_.vsources) {
      a.stamp(idx(s.pos), branch, 1.0);
      a.stamp(idx(s.neg), branch, -1.0);
      a.stamp(branch, idx(s.pos), 1.0);
      a.stamp(branch, idx(s.neg), -1.0);
      rhs[branch] = srcScale * s.wave.dcValue();
      ++branch;
    }
    for (const circuit::Vcvs& e : circuit_.vcvs) {
      a.stamp(idx(e.pos), branch, 1.0);
      a.stamp(idx(e.neg), branch, -1.0);
      a.stamp(branch, idx(e.pos), 1.0);
      a.stamp(branch, idx(e.neg), -1.0);
      a.stamp(branch, idx(e.cp), -e.gain);
      a.stamp(branch, idx(e.cn), e.gain);
      ++branch;
    }

    for (const circuit::Mos& m : circuit_.mosfets) {
      const device::MosOpPoint op = evalMos(m, x);
      const double vgs = v(m.gate) - v(m.source);
      const double vds = v(m.drain) - v(m.source);
      const double vbs = v(m.bulk) - v(m.source);
      // Linearised drain current i_d = Ieq + gm vgs + gds vds + gmb vbs.
      const double ieq = op.id - op.gm * vgs - op.gds * vds - op.gmb * vbs;
      const auto d = idx(m.drain), g = idx(m.gate), s = idx(m.source), b = idx(m.bulk);
      a.stamp(d, g, op.gm);
      a.stamp(d, d, op.gds);
      a.stamp(d, b, op.gmb);
      a.stamp(d, s, -(op.gm + op.gds + op.gmb));
      a.stamp(s, g, -op.gm);
      a.stamp(s, d, -op.gds);
      a.stamp(s, b, -op.gmb);
      a.stamp(s, s, op.gm + op.gds + op.gmb);
      if (d >= 0) rhs[d] -= ieq;
      if (s >= 0) rhs[s] += ieq;
    }

    std::vector<double> xNewLocal;
    std::vector<double>& xNew = fast ? ws().xNew : xNewLocal;
    if (fast) {
      xNew.assign(rhs.begin(), rhs.end());
    } else {
      xNewLocal = rhs;
    }
    if (!luSolve(a, xNew)) return false;

    double maxDelta = 0.0;
    for (std::size_t i = 0; i < nUnknowns; ++i) {
      double delta = xNew[i] - x[i];
      const double limit = i < nNodes ? options_.maxStepV : 1e9;  // Damp voltages only.
      delta = std::clamp(delta, -limit, limit);
      x[i] += delta;
      maxDelta = std::max(maxDelta, std::abs(delta) /
                                        (options_.absTolV + options_.relTol * std::abs(x[i])));
    }
    ++stats_.newtonIterations;
    if (itersOut) ++*itersOut;
    if (maxDelta < 1.0 && iter > 0) return true;
  }
  return false;
}

DcSolution Simulator::finalizeSolution(const std::vector<double>& x, int iters) const {
  DcSolution sol;
  sol.converged = true;
  sol.iterations = iters;
  sol.nodeVoltages.assign(circuit_.nodeCount(), 0.0);
  for (int n = 1; n < circuit_.nodeCount(); ++n) sol.nodeVoltages[n] = x[n - 1];
  const std::size_t nNodes = static_cast<std::size_t>(circuit_.nodeCount() - 1);
  sol.vsourceCurrents.resize(circuit_.vsources.size());
  for (std::size_t i = 0; i < circuit_.vsources.size(); ++i) {
    sol.vsourceCurrents[i] = x[nNodes + i];
  }
  sol.mosOps.reserve(circuit_.mosfets.size());
  for (const circuit::Mos& m : circuit_.mosfets) sol.mosOps.push_back(evalMos(m, x));
  return sol;
}

DcSolution Simulator::dcOperatingPoint() const {
  std::vector<double> x(unknownCount(), 0.0);
  int iters = 0;

  // Gmin stepping.
  bool ok = true;
  for (double gmin = 1e-2; gmin >= options_.gminFloor * 0.99; gmin /= 10.0) {
    ok = newtonSolve(x, gmin, 1.0, options_.maxNewtonIters, &iters);
    if (!ok) break;
  }
  if (!ok) {
    // Source stepping fallback.
    std::fill(x.begin(), x.end(), 0.0);
    ok = true;
    for (int step = 1; step <= 20 && ok; ++step) {
      ok = newtonSolve(x, options_.gminFloor, step / 20.0, options_.maxNewtonIters, &iters);
    }
  }
  if (!ok) throw SimulationError("DC operating point did not converge");
  return finalizeSolution(x, iters);
}

void Simulator::packContinuation(const DcSolution& sol, std::vector<double>& x) const {
  // Only node voltages and V-source branch currents carry over; dependent
  // source branch entries keep whatever the previous Newton left (the
  // continuation seeding the DC sweep has always used).
  for (int n = 1; n < circuit_.nodeCount(); ++n) x[n - 1] = sol.nodeVoltages[n];
  const std::size_t nNodes = static_cast<std::size_t>(circuit_.nodeCount() - 1);
  for (std::size_t k = 0; k < circuit_.vsources.size(); ++k) {
    x[nNodes + k] = sol.vsourceCurrents[k];
  }
}

Simulator::WarmStart Simulator::warmStartFrom(const DcSolution& seed) const {
  if (seed.nodeVoltages.size() != static_cast<std::size_t>(circuit_.nodeCount()) ||
      seed.vsourceCurrents.size() != circuit_.vsources.size()) {
    throw std::invalid_argument("warmStartFrom: solution does not match circuit layout");
  }
  WarmStart warm;
  warm.x_.assign(unknownCount(), 0.0);
  packContinuation(seed, warm.x_);
  warm.valid_ = true;
  return warm;
}

DcSolution Simulator::dcOperatingPoint(WarmStart& warm) const {
  if (warm.valid_ && warm.x_.size() == unknownCount()) {
    // One Newton run at the final gmin, straight from the seed.
    int iters = 0;
    if (newtonSolve(warm.x_, options_.gminFloor, 1.0, options_.maxNewtonIters, &iters)) {
      ++stats_.warmStartHits;
      return finalizeSolution(warm.x_, iters);
    }
  }
  ++stats_.warmStartMisses;
  DcSolution sol = dcOperatingPoint();  // Throws when the cold ladder fails too.
  if (warm.x_.size() != unknownCount()) warm.x_.assign(unknownCount(), 0.0);
  packContinuation(sol, warm.x_);
  warm.valid_ = true;
  return sol;
}

std::vector<Simulator::SweepPoint> Simulator::dcSweep(const std::string& vsrcName,
                                                      double start, double stop,
                                                      int points) const {
  if (points < 2) throw std::invalid_argument("dcSweep needs at least 2 points");
  circuit::Circuit copy = circuit_;
  circuit::VSource* src = copy.findVSource(vsrcName);
  if (!src) throw SimulationError("dcSweep: no V source named " + vsrcName);

  // Each point continues from its neighbour through the warm-start seam;
  // the first point (and any point the warm Newton refuses) runs the full
  // cold ladder inside dcOperatingPoint(WarmStart&).
  Simulator sub(copy, tech_, model_, options_);
  std::vector<SweepPoint> out;
  out.reserve(points);
  WarmStart warm;
  for (int i = 0; i < points; ++i) {
    const double value = start + (stop - start) * i / (points - 1);
    src->wave = circuit::Waveform::makeDc(value);
    out.push_back({value, sub.dcOperatingPoint(warm)});
  }
  return out;
}

// ---------------------------------------------------------------------------
// AC.
// ---------------------------------------------------------------------------

namespace {

/// Assemble the complex MNA matrix at angular frequency w about `op`.
/// When `excite` is false all independent sources are zeroed (noise use).
void assembleAc(const circuit::Circuit& ckt, const std::vector<device::MosOpPoint>& ops,
                double w, double gmin, bool excite, DenseMatrix<Cplx>& a,
                std::vector<Cplx>& rhs) {
  const std::size_t nNodes = static_cast<std::size_t>(ckt.nodeCount() - 1);
  a.clear();
  std::fill(rhs.begin(), rhs.end(), Cplx{});
  auto idx = [](NodeId n) -> std::ptrdiff_t { return n - 1; };

  for (std::size_t i = 0; i < nNodes; ++i) a.stamp(i, i, Cplx{gmin, 0});

  auto stampAdmittance = [&](NodeId p, NodeId q, Cplx y) {
    a.stamp(idx(p), idx(p), y);
    a.stamp(idx(q), idx(q), y);
    a.stamp(idx(p), idx(q), -y);
    a.stamp(idx(q), idx(p), -y);
  };

  for (const circuit::Resistor& r : ckt.resistors) {
    stampAdmittance(r.a, r.b, Cplx{1.0 / r.ohms, 0});
  }
  for (const circuit::Capacitor& c : ckt.capacitors) {
    stampAdmittance(c.a, c.b, Cplx{0, w * c.farads});
  }

  for (std::size_t i = 0; i < ckt.mosfets.size(); ++i) {
    const circuit::Mos& m = ckt.mosfets[i];
    const device::MosOpPoint& op = ops[i];
    const auto d = idx(m.drain), g = idx(m.gate), s = idx(m.source), b = idx(m.bulk);
    // Transconductances: current into drain controlled by vgs / vbs.
    a.stamp(d, g, Cplx{op.gm, 0});
    a.stamp(d, s, Cplx{-op.gm, 0});
    a.stamp(s, g, Cplx{-op.gm, 0});
    a.stamp(s, s, Cplx{op.gm, 0});
    a.stamp(d, b, Cplx{op.gmb, 0});
    a.stamp(d, s, Cplx{-op.gmb, 0});
    a.stamp(s, b, Cplx{-op.gmb, 0});
    a.stamp(s, s, Cplx{op.gmb, 0});
    stampAdmittance(m.drain, m.source, Cplx{op.gds, 0});
    // Capacitances.
    stampAdmittance(m.gate, m.source, Cplx{0, w * op.cgs});
    stampAdmittance(m.gate, m.drain, Cplx{0, w * op.cgd});
    stampAdmittance(m.gate, m.bulk, Cplx{0, w * op.cgb});
    stampAdmittance(m.drain, m.bulk, Cplx{0, w * op.cdb});
    stampAdmittance(m.source, m.bulk, Cplx{0, w * op.csb});
  }

  std::size_t branch = nNodes;
  for (const circuit::VSource& s : ckt.vsources) {
    a.stamp(idx(s.pos), branch, Cplx{1, 0});
    a.stamp(idx(s.neg), branch, Cplx{-1, 0});
    a.stamp(branch, idx(s.pos), Cplx{1, 0});
    a.stamp(branch, idx(s.neg), Cplx{-1, 0});
    if (excite && s.acMag != 0.0) {
      rhs[branch] = std::polar(s.acMag, s.acPhase * M_PI / 180.0);
    }
    ++branch;
  }
  for (const circuit::Vcvs& e : ckt.vcvs) {
    a.stamp(idx(e.pos), branch, Cplx{1, 0});
    a.stamp(idx(e.neg), branch, Cplx{-1, 0});
    a.stamp(branch, idx(e.pos), Cplx{1, 0});
    a.stamp(branch, idx(e.neg), Cplx{-1, 0});
    a.stamp(branch, idx(e.cp), Cplx{-e.gain, 0});
    a.stamp(branch, idx(e.cn), Cplx{e.gain, 0});
    ++branch;
  }
  if (excite) {
    for (const circuit::ISource& s : ckt.isources) {
      if (s.acMag == 0.0) continue;
      if (idx(s.pos) >= 0) rhs[idx(s.pos)] -= Cplx{s.acMag, 0};
      if (idx(s.neg) >= 0) rhs[idx(s.neg)] += Cplx{s.acMag, 0};
    }
  }
}

/// Frequency-independent half of assembleAc: every stamp except the
/// capacitive ones lands in `base` (their imaginary parts are all +0.0);
/// the capacitive stamps are recorded in `capOps` in assembleAc's program
/// order for per-frequency replay; `sourceRhs` is the excite-mode RHS,
/// which carries no frequency dependence either.  realizeAcMatrix(base,
/// capOps, w) then reproduces assembleAc's matrix bit for bit.
void buildAcSkeleton(const circuit::Circuit& ckt, const std::vector<device::MosOpPoint>& ops,
                     double gmin, DenseMatrix<Cplx>& base, std::vector<CapStampOp>& capOps,
                     std::vector<Cplx>& sourceRhs) {
  const std::size_t nNodes = static_cast<std::size_t>(ckt.nodeCount() - 1);
  base.clear();
  capOps.clear();
  std::fill(sourceRhs.begin(), sourceRhs.end(), Cplx{});
  auto idx = [](NodeId n) -> std::ptrdiff_t { return n - 1; };

  for (std::size_t i = 0; i < nNodes; ++i) base.stamp(i, i, Cplx{gmin, 0});

  auto stampAdmittance = [&](NodeId p, NodeId q, Cplx y) {
    base.stamp(idx(p), idx(p), y);
    base.stamp(idx(q), idx(q), y);
    base.stamp(idx(p), idx(q), -y);
    base.stamp(idx(q), idx(p), -y);
  };
  auto recordCap = [&](NodeId p, NodeId q, double c) {
    auto rec = [&](std::ptrdiff_t r, std::ptrdiff_t col, double v) {
      if (r < 0 || col < 0) return;  // Ground, as DenseMatrix::stamp skips it.
      capOps.push_back({static_cast<std::size_t>(r), static_cast<std::size_t>(col), v});
    };
    rec(idx(p), idx(p), c);
    rec(idx(q), idx(q), c);
    rec(idx(p), idx(q), -c);
    rec(idx(q), idx(p), -c);
  };

  for (const circuit::Resistor& r : ckt.resistors) {
    stampAdmittance(r.a, r.b, Cplx{1.0 / r.ohms, 0});
  }
  for (const circuit::Capacitor& c : ckt.capacitors) {
    recordCap(c.a, c.b, c.farads);
  }

  for (std::size_t i = 0; i < ckt.mosfets.size(); ++i) {
    const circuit::Mos& m = ckt.mosfets[i];
    const device::MosOpPoint& op = ops[i];
    const auto d = idx(m.drain), g = idx(m.gate), s = idx(m.source), b = idx(m.bulk);
    base.stamp(d, g, Cplx{op.gm, 0});
    base.stamp(d, s, Cplx{-op.gm, 0});
    base.stamp(s, g, Cplx{-op.gm, 0});
    base.stamp(s, s, Cplx{op.gm, 0});
    base.stamp(d, b, Cplx{op.gmb, 0});
    base.stamp(d, s, Cplx{-op.gmb, 0});
    base.stamp(s, b, Cplx{-op.gmb, 0});
    base.stamp(s, s, Cplx{op.gmb, 0});
    stampAdmittance(m.drain, m.source, Cplx{op.gds, 0});
    recordCap(m.gate, m.source, op.cgs);
    recordCap(m.gate, m.drain, op.cgd);
    recordCap(m.gate, m.bulk, op.cgb);
    recordCap(m.drain, m.bulk, op.cdb);
    recordCap(m.source, m.bulk, op.csb);
  }

  std::size_t branch = nNodes;
  for (const circuit::VSource& s : ckt.vsources) {
    base.stamp(idx(s.pos), branch, Cplx{1, 0});
    base.stamp(idx(s.neg), branch, Cplx{-1, 0});
    base.stamp(branch, idx(s.pos), Cplx{1, 0});
    base.stamp(branch, idx(s.neg), Cplx{-1, 0});
    if (s.acMag != 0.0) {
      sourceRhs[branch] = std::polar(s.acMag, s.acPhase * M_PI / 180.0);
    }
    ++branch;
  }
  for (const circuit::Vcvs& e : ckt.vcvs) {
    base.stamp(idx(e.pos), branch, Cplx{1, 0});
    base.stamp(idx(e.neg), branch, Cplx{-1, 0});
    base.stamp(branch, idx(e.pos), Cplx{1, 0});
    base.stamp(branch, idx(e.neg), Cplx{-1, 0});
    base.stamp(branch, idx(e.cp), Cplx{-e.gain, 0});
    base.stamp(branch, idx(e.cn), Cplx{e.gain, 0});
    ++branch;
  }
  for (const circuit::ISource& s : ckt.isources) {
    if (s.acMag == 0.0) continue;
    if (idx(s.pos) >= 0) sourceRhs[idx(s.pos)] -= Cplx{s.acMag, 0};
    if (idx(s.neg) >= 0) sourceRhs[idx(s.neg)] += Cplx{s.acMag, 0};
  }
}

/// Realise the AC matrix at angular frequency w: copy the skeleton and
/// replay the recorded capacitive stamps.  w * (-c) == -(w * c) exactly in
/// IEEE arithmetic, so signed replay values reproduce assembleAc's
/// negated-admittance stamps bit for bit.
void realizeAcMatrix(const DenseMatrix<Cplx>& base, const std::vector<CapStampOp>& capOps,
                     double w, DenseMatrix<Cplx>& a) {
  a = base;
  for (const CapStampOp& op : capOps) {
    a.at(op.r, op.c) += Cplx{0.0, w * op.value};
  }
}

}  // namespace

AcPoint Simulator::extractAcPoint(double freq, const std::vector<Cplx>& sol) const {
  AcPoint p;
  p.freq = freq;
  p.nodeV.assign(circuit_.nodeCount(), Cplx{});
  for (int n = 1; n < circuit_.nodeCount(); ++n) p.nodeV[n] = sol[n - 1];
  const std::size_t nNodes = static_cast<std::size_t>(circuit_.nodeCount() - 1);
  p.vsourceI.resize(circuit_.vsources.size());
  for (std::size_t i = 0; i < circuit_.vsources.size(); ++i) {
    p.vsourceI[i] = sol[nNodes + i];
  }
  return p;
}

std::size_t Simulator::vsourceIndexOrThrow(const std::string& name,
                                           const char* context) const {
  for (std::size_t i = 0; i < circuit_.vsources.size(); ++i) {
    if (circuit_.vsources[i].name == name) return i;
  }
  throw SimulationError(std::string(context) + ": no V source named " + name);
}

std::vector<std::vector<AcPoint>> Simulator::acSolveGridFast(
    const DcSolution& op, const std::vector<AcExcitation>& excitations,
    const std::vector<double>& freqs, const std::string& failPrefix) const {
  const std::size_t nUnknowns = unknownCount();
  const std::size_t nNodes = static_cast<std::size_t>(circuit_.nodeCount() - 1);
  Workspace& w = ws();
  if (w.acBase.size() != nUnknowns) w.acBase = DenseMatrix<Cplx>(nUnknowns);
  w.acSourceRhs.resize(nUnknowns);
  w.acRhs.resize(nUnknowns);
  buildAcSkeleton(circuit_, op.mosOps, options_.gminFloor, w.acBase, w.capOps,
                  w.acSourceRhs);

  // Resolve excitation targets once (the public callers validated names).
  std::vector<std::size_t> branchOf(excitations.size(), 0);
  for (std::size_t e = 0; e < excitations.size(); ++e) {
    const AcExcitation& ex = excitations[e];
    if (ex.kind == AcExcitation::Kind::kVsourceBranch) {
      branchOf[e] = nNodes + vsourceIndexOrThrow(ex.vsource, "acBatch");
    } else if (ex.kind == AcExcitation::Kind::kCurrentInjection) {
      if (ex.pos >= circuit_.nodeCount() || ex.neg >= circuit_.nodeCount()) {
        throw SimulationError("acBatch: injection node out of range");
      }
    }
  }

  std::vector<std::vector<AcPoint>> out(excitations.size());
  for (auto& curve : out) curve.reserve(freqs.size());
  for (double f : freqs) {
    // One factorization per frequency; every excitation reuses it.
    realizeAcMatrix(w.acBase, w.capOps, 2.0 * M_PI * f, w.acA);
    if (!luFactorize(w.acA, w.perm)) {
      throw SimulationError(failPrefix + std::to_string(f));
    }
    ++stats_.luFactorizations;
    for (std::size_t e = 0; e < excitations.size(); ++e) {
      const AcExcitation& ex = excitations[e];
      switch (ex.kind) {
        case AcExcitation::Kind::kCircuitSources:
          w.acRhs.assign(w.acSourceRhs.begin(), w.acSourceRhs.end());
          break;
        case AcExcitation::Kind::kVsourceBranch:
          std::fill(w.acRhs.begin(), w.acRhs.end(), Cplx{});
          w.acRhs[branchOf[e]] = Cplx{1.0, 0.0};
          break;
        case AcExcitation::Kind::kCurrentInjection:
          std::fill(w.acRhs.begin(), w.acRhs.end(), Cplx{});
          if (ex.pos != circuit::kGround) w.acRhs[ex.pos - 1] -= Cplx{1.0, 0};
          if (ex.neg != circuit::kGround) w.acRhs[ex.neg - 1] += Cplx{1.0, 0};
          break;
      }
      luSolveFactored(w.acA, w.perm, w.acRhs);
      ++stats_.luSolves;
      ++stats_.acPoints;
      out[e].push_back(extractAcPoint(f, w.acRhs));
    }
  }
  return out;
}

std::vector<AcPoint> Simulator::ac(const DcSolution& op, double fStart, double fStop,
                                   int pointsPerDecade) const {
  const std::vector<double> freqs = logGrid(fStart, fStop, pointsPerDecade);
  if (options_.solver == SolverMode::kFast) {
    return std::move(acSolveGridFast(op, {AcExcitation::circuitSources()}, freqs,
                                     "AC solve failed at f=")[0]);
  }
  const std::size_t nUnknowns = unknownCount();
  std::vector<AcPoint> out;
  out.reserve(freqs.size());
  DenseMatrix<Cplx> a(nUnknowns);
  std::vector<Cplx> rhs(nUnknowns);
  for (double f : freqs) {
    assembleAc(circuit_, op.mosOps, 2.0 * M_PI * f, options_.gminFloor, true, a, rhs);
    if (!luSolve(a, rhs)) throw SimulationError("AC solve failed at f=" + std::to_string(f));
    ++stats_.acPoints;
    out.push_back(extractAcPoint(f, rhs));
  }
  return out;
}

std::vector<AcPoint> Simulator::acFrom(const DcSolution& op,
                                       const std::string& sourceName, double fStart,
                                       double fStop, int pointsPerDecade) const {
  const std::size_t srcIndex = vsourceIndexOrThrow(sourceName, "acFrom");
  const std::vector<double> freqs = logGrid(fStart, fStop, pointsPerDecade);
  if (options_.solver == SolverMode::kFast) {
    return std::move(acSolveGridFast(op, {AcExcitation::unitVsource(sourceName)}, freqs,
                                     "acFrom solve failed at f=")[0]);
  }
  const std::size_t nUnknowns = unknownCount();
  const std::size_t nNodes = static_cast<std::size_t>(circuit_.nodeCount() - 1);
  std::vector<AcPoint> out;
  out.reserve(freqs.size());
  DenseMatrix<Cplx> a(nUnknowns);
  std::vector<Cplx> rhs(nUnknowns);
  for (double f : freqs) {
    // Assemble with every source silenced, then drive the selected branch
    // equation with the unit excitation (the same seam the noise analysis
    // uses for its forward solve).
    assembleAc(circuit_, op.mosOps, 2.0 * M_PI * f, options_.gminFloor, false, a, rhs);
    rhs[nNodes + srcIndex] = Cplx{1.0, 0.0};
    if (!luSolve(a, rhs)) {
      throw SimulationError("acFrom solve failed at f=" + std::to_string(f));
    }
    ++stats_.acPoints;
    out.push_back(extractAcPoint(f, rhs));
  }
  return out;
}

std::vector<std::vector<AcPoint>> Simulator::acBatch(
    const DcSolution& op, const std::vector<AcExcitation>& excitations, double fStart,
    double fStop, int pointsPerDecade) const {
  for (const AcExcitation& ex : excitations) {
    if (ex.kind == AcExcitation::Kind::kVsourceBranch) {
      (void)vsourceIndexOrThrow(ex.vsource, "acBatch");
    }
  }
  const std::vector<double> freqs = logGrid(fStart, fStop, pointsPerDecade);
  if (options_.solver == SolverMode::kFast) {
    return acSolveGridFast(op, excitations, freqs, "acBatch solve failed at f=");
  }
  // Reference mode decomposes the batch into the one-shot primitives it
  // replaces; the fast path above is bit-identical to this.
  const std::size_t nUnknowns = unknownCount();
  std::vector<std::vector<AcPoint>> out;
  out.reserve(excitations.size());
  for (const AcExcitation& ex : excitations) {
    switch (ex.kind) {
      case AcExcitation::Kind::kCircuitSources:
        out.push_back(ac(op, fStart, fStop, pointsPerDecade));
        break;
      case AcExcitation::Kind::kVsourceBranch:
        out.push_back(acFrom(op, ex.vsource, fStart, fStop, pointsPerDecade));
        break;
      case AcExcitation::Kind::kCurrentInjection: {
        if (ex.pos >= circuit_.nodeCount() || ex.neg >= circuit_.nodeCount()) {
          throw SimulationError("acBatch: injection node out of range");
        }
        std::vector<AcPoint> curve;
        curve.reserve(freqs.size());
        DenseMatrix<Cplx> a(nUnknowns);
        std::vector<Cplx> rhs(nUnknowns);
        for (double f : freqs) {
          assembleAc(circuit_, op.mosOps, 2.0 * M_PI * f, options_.gminFloor, false, a, rhs);
          if (ex.pos != circuit::kGround) rhs[ex.pos - 1] -= Cplx{1.0, 0};
          if (ex.neg != circuit::kGround) rhs[ex.neg - 1] += Cplx{1.0, 0};
          if (!luSolve(a, rhs)) {
            throw SimulationError("acBatch solve failed at f=" + std::to_string(f));
          }
          ++stats_.acPoints;
          curve.push_back(extractAcPoint(f, rhs));
        }
        out.push_back(std::move(curve));
        break;
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Noise (adjoint method).
// ---------------------------------------------------------------------------

std::vector<NoisePoint> Simulator::noise(const DcSolution& op, circuit::NodeId out,
                                         const std::string& inputVsrc, double fStart,
                                         double fStop, int pointsPerDecade) const {
  std::size_t inputIndex = circuit_.vsources.size();
  for (std::size_t i = 0; i < circuit_.vsources.size(); ++i) {
    if (circuit_.vsources[i].name == inputVsrc) {
      inputIndex = i;
      break;
    }
  }
  if (inputIndex == circuit_.vsources.size()) {
    throw SimulationError("noise: no V source named " + inputVsrc);
  }

  const std::vector<double> freqs = logGrid(fStart, fStop, pointsPerDecade);
  const std::size_t nUnknowns = unknownCount();
  const std::size_t nNodes = static_cast<std::size_t>(circuit_.nodeCount() - 1);
  const double kT4 = 4.0 * kBoltzmann * options_.tempK;

  const bool fast = options_.solver == SolverMode::kFast;
  std::vector<NoisePoint> result;
  result.reserve(freqs.size());
  DenseMatrix<Cplx> aLocal;
  std::vector<Cplx> workLocal;
  DenseMatrix<Cplx>& a = fast ? ws().acA : aLocal;
  std::vector<Cplx>& work = fast ? ws().acRhs : workLocal;
  if (a.size() != nUnknowns) a = DenseMatrix<Cplx>(nUnknowns);
  work.resize(nUnknowns);
  if (fast) {
    // Assemble once; each frequency point re-realises only the reactive
    // entries.  The adjoint still needs its own factorization (pivoting on
    // the transposed matrix differs), but the assembly is shared and the
    // transpose starts from the realised copy.
    Workspace& w = ws();
    if (w.acBase.size() != nUnknowns) w.acBase = DenseMatrix<Cplx>(nUnknowns);
    w.acSourceRhs.resize(nUnknowns);
    buildAcSkeleton(circuit_, op.mosOps, options_.gminFloor, w.acBase, w.capOps,
                    w.acSourceRhs);
  }

  for (double f : freqs) {
    const double w = 2.0 * M_PI * f;

    Cplx gain;
    if (fast) {
      Workspace& wk = ws();
      realizeAcMatrix(wk.acBase, wk.capOps, w, a);
      wk.acAdj = a;  // Keep the realised matrix for the adjoint transpose.
      std::fill(work.begin(), work.end(), Cplx{});
      work[nNodes + inputIndex] = Cplx{1.0, 0.0};
      if (!luFactorize(a, wk.perm)) throw SimulationError("noise: forward solve failed");
      ++stats_.luFactorizations;
      luSolveFactored(a, wk.perm, work);
      ++stats_.luSolves;
      gain = out == circuit::kGround ? Cplx{} : work[out - 1];

      // Adjoint: solve Y^T z = e_out; |z_p - z_q|^2 is the squared
      // transfer from a unit current injected between (p, q) to the
      // output voltage.
      for (std::size_t r = 0; r < nUnknowns; ++r) {
        for (std::size_t c = r + 1; c < nUnknowns; ++c) {
          std::swap(wk.acAdj.at(r, c), wk.acAdj.at(c, r));
        }
      }
      std::fill(work.begin(), work.end(), Cplx{});
      if (out != circuit::kGround) work[out - 1] = Cplx{1.0, 0.0};
      if (!luFactorize(wk.acAdj, wk.permAdj)) {
        throw SimulationError("noise: adjoint solve failed");
      }
      ++stats_.luFactorizations;
      luSolveFactored(wk.acAdj, wk.permAdj, work);
      ++stats_.luSolves;
    } else {
      // Forward gain: unit excitation on the designated input source only.
      assembleAc(circuit_, op.mosOps, w, options_.gminFloor, false, a, work);
      work[nNodes + inputIndex] = Cplx{1.0, 0.0};
      if (!luSolve(a, work)) throw SimulationError("noise: forward solve failed");
      gain = out == circuit::kGround ? Cplx{} : work[out - 1];

      // Adjoint: solve Y^T z = e_out; |z_p - z_q|^2 is the squared transfer
      // from a unit current injected between (p, q) to the output voltage.
      assembleAc(circuit_, op.mosOps, w, options_.gminFloor, false, a, work);
      // Transpose in place.
      for (std::size_t r = 0; r < nUnknowns; ++r) {
        for (std::size_t c = r + 1; c < nUnknowns; ++c) std::swap(a.at(r, c), a.at(c, r));
      }
      std::fill(work.begin(), work.end(), Cplx{});
      if (out != circuit::kGround) work[out - 1] = Cplx{1.0, 0.0};
      if (!luSolve(a, work)) throw SimulationError("noise: adjoint solve failed");
    }

    auto z = [&](NodeId n) { return n == circuit::kGround ? Cplx{} : work[n - 1]; };
    double psd = 0.0;
    for (std::size_t i = 0; i < circuit_.mosfets.size(); ++i) {
      const circuit::Mos& m = circuit_.mosfets[i];
      const device::MosOpPoint& mos = op.mosOps[i];
      const double s = mos.thermalNoisePsd + mos.flickerCoeff / f;
      psd += s * std::norm(z(m.drain) - z(m.source));
    }
    for (const circuit::Resistor& r : circuit_.resistors) {
      psd += kT4 / r.ohms * std::norm(z(r.a) - z(r.b));
    }

    NoisePoint p;
    p.freq = f;
    p.outputPsd = psd;
    p.gainMag = std::abs(gain);
    p.inputRefPsd = p.gainMag > 1e-30 ? psd / (p.gainMag * p.gainMag) : 0.0;
    result.push_back(p);
  }
  return result;
}

double integratePsd(const std::vector<NoisePoint>& points, double f0, double f1,
                    bool inputReferred) {
  double total = 0.0;
  for (std::size_t i = 0; i + 1 < points.size(); ++i) {
    const double fa = points[i].freq, fb = points[i + 1].freq;
    if (fb <= f0 || fa >= f1) continue;
    const double a = inputReferred ? points[i].inputRefPsd : points[i].outputPsd;
    const double b = inputReferred ? points[i + 1].inputRefPsd : points[i + 1].outputPsd;
    const double lo = std::max(fa, f0), hi = std::min(fb, f1);
    total += 0.5 * (a + b) * (hi - lo);
  }
  return total;
}

// ---------------------------------------------------------------------------
// Transient (fixed-step trapezoidal).
// ---------------------------------------------------------------------------

std::vector<TranPoint> Simulator::transient(double tStop, double dt) const {
  if (tStop <= 0 || dt <= 0) throw std::invalid_argument("transient: bad time arguments");

  // Capacitor branch bookkeeping: explicit caps first, then 5 per MOS.
  struct CapBranch {
    NodeId a = circuit::kGround, b = circuit::kGround;
    double c = 0.0;
    double iPrev = 0.0;
  };
  std::vector<CapBranch> caps;
  for (const circuit::Capacitor& c : circuit_.capacitors) caps.push_back({c.a, c.b, c.farads, 0});
  const std::size_t mosCapBase = caps.size();
  for (const circuit::Mos& m : circuit_.mosfets) {
    caps.push_back({m.gate, m.source, 0, 0});
    caps.push_back({m.gate, m.drain, 0, 0});
    caps.push_back({m.gate, m.bulk, 0, 0});
    caps.push_back({m.drain, m.bulk, 0, 0});
    caps.push_back({m.source, m.bulk, 0, 0});
  }

  const std::size_t nUnknowns = unknownCount();
  const std::size_t nNodes = static_cast<std::size_t>(circuit_.nodeCount() - 1);
  auto idx = [](NodeId n) -> std::ptrdiff_t { return n - 1; };

  // Start from the DC operating point (sources at their t=0 values; the
  // Waveform DC value is the t=0 value for all supported kinds).
  DcSolution op0 = dcOperatingPoint();
  std::vector<double> x(nUnknowns, 0.0);
  for (int n = 1; n < circuit_.nodeCount(); ++n) x[n - 1] = op0.nodeVoltages[n];
  for (std::size_t i = 0; i < circuit_.vsources.size(); ++i) {
    x[nNodes + i] = op0.vsourceCurrents[i];
  }

  std::vector<TranPoint> out;
  auto record = [&](double t) {
    TranPoint p;
    p.time = t;
    p.nodeV.assign(circuit_.nodeCount(), 0.0);
    for (int n = 1; n < circuit_.nodeCount(); ++n) p.nodeV[n] = x[n - 1];
    out.push_back(std::move(p));
  };
  record(0.0);

  DenseMatrix<double> a(nUnknowns);
  std::vector<double> rhs(nUnknowns);
  auto vOf = [&](const std::vector<double>& vec, NodeId n) {
    return n == circuit::kGround ? 0.0 : vec[n - 1];
  };

  const int steps = static_cast<int>(std::ceil(tStop / dt));
  for (int step = 1; step <= steps; ++step) {
    const double t = std::min(step * dt, tStop);
    // Update MOS capacitance values at the start-of-step bias.
    for (std::size_t i = 0; i < circuit_.mosfets.size(); ++i) {
      const device::MosOpPoint op = evalMos(circuit_.mosfets[i], x);
      caps[mosCapBase + 5 * i + 0].c = op.cgs;
      caps[mosCapBase + 5 * i + 1].c = op.cgd;
      caps[mosCapBase + 5 * i + 2].c = op.cgb;
      caps[mosCapBase + 5 * i + 3].c = op.cdb;
      caps[mosCapBase + 5 * i + 4].c = op.csb;
    }
    const std::vector<double> xPrev = x;

    bool converged = false;
    for (int iter = 0; iter < options_.maxNewtonIters; ++iter) {
      a.clear();
      std::fill(rhs.begin(), rhs.end(), 0.0);
      for (std::size_t i = 0; i < nNodes; ++i) a.stamp(i, i, options_.gminFloor);

      for (const circuit::Resistor& r : circuit_.resistors) {
        const double g = 1.0 / r.ohms;
        a.stamp(idx(r.a), idx(r.a), g);
        a.stamp(idx(r.b), idx(r.b), g);
        a.stamp(idx(r.a), idx(r.b), -g);
        a.stamp(idx(r.b), idx(r.a), -g);
      }
      for (const circuit::ISource& s : circuit_.isources) {
        const double i0 = s.wave.at(t);
        if (idx(s.pos) >= 0) rhs[idx(s.pos)] -= i0;
        if (idx(s.neg) >= 0) rhs[idx(s.neg)] += i0;
      }
      std::size_t branch = nNodes;
      for (const circuit::VSource& s : circuit_.vsources) {
        a.stamp(idx(s.pos), branch, 1.0);
        a.stamp(idx(s.neg), branch, -1.0);
        a.stamp(branch, idx(s.pos), 1.0);
        a.stamp(branch, idx(s.neg), -1.0);
        rhs[branch] = s.wave.at(t);
        ++branch;
      }
      for (const circuit::Vcvs& e : circuit_.vcvs) {
        a.stamp(idx(e.pos), branch, 1.0);
        a.stamp(idx(e.neg), branch, -1.0);
        a.stamp(branch, idx(e.pos), 1.0);
        a.stamp(branch, idx(e.neg), -1.0);
        a.stamp(branch, idx(e.cp), -e.gain);
        a.stamp(branch, idx(e.cn), e.gain);
        ++branch;
      }
      for (const circuit::Mos& m : circuit_.mosfets) {
        const device::MosOpPoint op = evalMos(m, x);
        const double vgs = vOf(x, m.gate) - vOf(x, m.source);
        const double vds = vOf(x, m.drain) - vOf(x, m.source);
        const double vbs = vOf(x, m.bulk) - vOf(x, m.source);
        const double ieq = op.id - op.gm * vgs - op.gds * vds - op.gmb * vbs;
        const auto d = idx(m.drain), g = idx(m.gate), s = idx(m.source), b = idx(m.bulk);
        a.stamp(d, g, op.gm);
        a.stamp(d, d, op.gds);
        a.stamp(d, b, op.gmb);
        a.stamp(d, s, -(op.gm + op.gds + op.gmb));
        a.stamp(s, g, -op.gm);
        a.stamp(s, d, -op.gds);
        a.stamp(s, b, -op.gmb);
        a.stamp(s, s, op.gm + op.gds + op.gmb);
        if (d >= 0) rhs[d] -= ieq;
        if (s >= 0) rhs[s] += ieq;
      }
      // Trapezoidal capacitor companions.
      for (const CapBranch& cb : caps) {
        if (cb.c <= 0) continue;
        const double geq = 2.0 * cb.c / dt;
        const double vPrev = vOf(xPrev, cb.a) - vOf(xPrev, cb.b);
        const double ieq = geq * vPrev + cb.iPrev;
        a.stamp(idx(cb.a), idx(cb.a), geq);
        a.stamp(idx(cb.b), idx(cb.b), geq);
        a.stamp(idx(cb.a), idx(cb.b), -geq);
        a.stamp(idx(cb.b), idx(cb.a), -geq);
        if (idx(cb.a) >= 0) rhs[idx(cb.a)] += ieq;
        if (idx(cb.b) >= 0) rhs[idx(cb.b)] -= ieq;
      }

      std::vector<double> xNewLocal;
      std::vector<double>& xNew =
          options_.solver == SolverMode::kFast ? ws().xNew : xNewLocal;
      if (options_.solver == SolverMode::kFast) {
        xNew.assign(rhs.begin(), rhs.end());
      } else {
        xNewLocal = rhs;
      }
      if (!luSolve(a, xNew)) throw SimulationError("transient: singular matrix");
      double maxDelta = 0.0;
      for (std::size_t i = 0; i < nUnknowns; ++i) {
        double delta = xNew[i] - x[i];
        const double limit = i < nNodes ? options_.maxStepV : 1e9;
        delta = std::clamp(delta, -limit, limit);
        x[i] += delta;
        maxDelta = std::max(maxDelta, std::abs(delta) / (options_.absTolV +
                                                         options_.relTol * std::abs(x[i])));
      }
      if (maxDelta < 1.0 && iter > 0) {
        converged = true;
        break;
      }
    }
    if (!converged) {
      throw SimulationError("transient: Newton failed at t=" + std::to_string(t));
    }
    // Commit capacitor branch currents for the next step.
    for (CapBranch& cb : caps) {
      if (cb.c <= 0) continue;
      const double geq = 2.0 * cb.c / dt;
      const double vPrev = vOf(xPrev, cb.a) - vOf(xPrev, cb.b);
      const double vNow = vOf(x, cb.a) - vOf(x, cb.b);
      cb.iPrev = geq * (vNow - vPrev) - cb.iPrev;
    }
    record(t);
  }
  return out;
}

}  // namespace lo::sim
