#include "sim/op_report.hpp"

#include <cstdio>
#include <sstream>

namespace lo::sim {

std::string opReport(const circuit::Circuit& c, const DcSolution& sol) {
  std::ostringstream os;
  char line[256];

  os << "--- node voltages ---\n";
  for (int n = 1; n < c.nodeCount(); ++n) {
    std::snprintf(line, sizeof line, "  %-10s %10.4f V\n", c.nodeName(n).c_str(),
                  sol.voltage(n));
    os << line;
  }

  os << "--- sources ---\n";
  for (std::size_t i = 0; i < c.vsources.size(); ++i) {
    std::snprintf(line, sizeof line, "  %-10s %10.4f V  %12.4f uA\n",
                  c.vsources[i].name.c_str(), c.vsources[i].wave.dcValue(),
                  sol.vsourceCurrents[i] * 1e6);
    os << line;
  }

  os << "--- devices ---\n";
  std::snprintf(line, sizeof line, "  %-8s %10s %10s %10s %10s %10s %6s %12s\n", "name",
                "id [uA]", "vgs [V]", "vds [V]", "gm [uS]", "gds [uS]", "gm/id",
                "region");
  os << line;
  for (std::size_t i = 0; i < c.mosfets.size(); ++i) {
    const auto& m = c.mosfets[i];
    const auto& op = sol.mosOps[i];
    std::snprintf(line, sizeof line,
                  "  %-8s %10.2f %10.3f %10.3f %10.2f %10.3f %6.1f %12s\n",
                  m.name.c_str(), op.id * 1e6, op.vgs, op.vds, op.gm * 1e6, op.gds * 1e6,
                  op.gmOverId(), device::regionName(op.region));
    os << line;
  }
  return os.str();
}

}  // namespace lo::sim
