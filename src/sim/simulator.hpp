// lospice: the MNA circuit simulator.
//
// Stands in for the commercial simulator the paper verifies with.  Supports
// DC operating point (Newton with gmin and source stepping), DC sweeps, AC
// small-signal analysis, small-signal noise analysis (adjoint method) and
// transient analysis (trapezoidal).  MOS devices are evaluated through the
// exact same device::MosModel code the sizing tool uses.
#pragma once

#include <complex>
#include <memory>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "device/mos_model.hpp"
#include "tech/technology.hpp"

namespace lo::sim {

/// Solve-path selector.  Both modes produce bit-identical results (the
/// golden solver tests prove it); they differ only in how much work and
/// memory traffic they spend getting there.
enum class SolverMode {
  /// LU factor reuse across the AC excitation block, skeleton re-stamping
  /// of only the reactive matrix entries per frequency, and a
  /// simulator-owned workspace so the Newton loop allocates nothing.
  kFast,
  /// The pre-optimization path: one-shot LU per solve, full re-assembly
  /// per frequency, fresh buffers per call.  Kept alive verbatim as the
  /// golden baseline the fast path is benchmarked and bit-compared
  /// against.
  kReference,
};

struct SimOptions {
  double gminFloor = 1e-12;   ///< Final gmin left on every node [S].
  double absTolV = 1e-9;      ///< Newton voltage-update tolerance [V].
  double relTol = 1e-6;
  int maxNewtonIters = 150;
  double maxStepV = 0.3;      ///< Per-iteration voltage damping limit [V].
  double tempK = 300.15;
  SolverMode solver = SolverMode::kFast;
};

/// Cumulative hot-path counters, per Simulator instance.  Instrumentation
/// only -- never part of any analysis result.
struct SimStats {
  long newtonIterations = 0;  ///< Newton steps across every DC solve.
  long luFactorizations = 0;  ///< Complex factorizations (fast AC/noise path).
  long luSolves = 0;          ///< Triangular solves against reused factors.
  long acPoints = 0;          ///< (frequency, excitation) pairs solved.
  long warmStartHits = 0;     ///< Warm operating points solved from the seed.
  long warmStartMisses = 0;   ///< Warm attempts that fell back to the cold ladder.
};

/// One excitation of the shared AC small-signal system.  The system matrix
/// is excitation-independent, so a batch of these shares each frequency
/// point's factorization (Simulator::acBatch).
struct AcExcitation {
  enum class Kind {
    kCircuitSources,    ///< The circuit's own acMag/acPhase fields (ac()).
    kVsourceBranch,     ///< Unit (1 V, 0 deg) drive on one V-source branch (acFrom()).
    kCurrentInjection,  ///< Unit AC current from `pos` into `neg` (output-impedance probe).
  };
  Kind kind = Kind::kCircuitSources;
  std::string vsource;                      ///< kVsourceBranch: the driven source.
  circuit::NodeId pos = circuit::kGround;   ///< kCurrentInjection terminals.
  circuit::NodeId neg = circuit::kGround;

  [[nodiscard]] static AcExcitation circuitSources() { return {}; }
  [[nodiscard]] static AcExcitation unitVsource(std::string name) {
    AcExcitation e;
    e.kind = Kind::kVsourceBranch;
    e.vsource = std::move(name);
    return e;
  }
  [[nodiscard]] static AcExcitation unitCurrent(circuit::NodeId pos, circuit::NodeId neg) {
    AcExcitation e;
    e.kind = Kind::kCurrentInjection;
    e.pos = pos;
    e.neg = neg;
    return e;
  }
};

/// DC operating point: node voltages, source branch currents, and the full
/// per-device small-signal picture.  Mos op entries are scaled by the device
/// multiplier (they describe the whole parallel combination).
struct DcSolution {
  bool converged = false;
  int iterations = 0;
  std::vector<double> nodeVoltages;              ///< Indexed by NodeId.
  std::vector<double> vsourceCurrents;           ///< Per circuit.vsources entry.
  std::vector<device::MosOpPoint> mosOps;        ///< Per circuit.mosfets entry.

  [[nodiscard]] double voltage(circuit::NodeId n) const { return nodeVoltages.at(n); }
};

struct AcPoint {
  double freq = 0.0;
  std::vector<std::complex<double>> nodeV;   ///< Indexed by NodeId; [0] is 0.
  std::vector<std::complex<double>> vsourceI;  ///< Branch current per V source.

  [[nodiscard]] std::complex<double> at(circuit::NodeId n) const { return nodeV.at(n); }
};

struct NoisePoint {
  double freq = 0.0;
  double outputPsd = 0.0;    ///< Output noise voltage PSD [V^2/Hz].
  double inputRefPsd = 0.0;  ///< Input-referred PSD [V^2/Hz].
  double gainMag = 0.0;      ///< |vout / vin| used for input referral.
};

struct TranPoint {
  double time = 0.0;
  std::vector<double> nodeV;  ///< Indexed by NodeId.
};

class SimulationError : public std::runtime_error {
 public:
  explicit SimulationError(const std::string& what) : std::runtime_error(what) {}
};

class Simulator {
 public:
  /// The circuit, technology and model must outlive the simulator.
  /// A Simulator owns per-instance scratch buffers: share one instance
  /// across threads only with external synchronisation (the codebase
  /// convention is one local Simulator per worker).
  Simulator(const circuit::Circuit& circuit, const tech::Technology& technology,
            const device::MosModel& model, SimOptions options = {});
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// DC operating point with gmin stepping and, on failure, source stepping.
  /// Throws SimulationError when no continuation converges.
  [[nodiscard]] DcSolution dcOperatingPoint() const;

  /// Carry-over Newton state for warm-started operating points.  Opaque:
  /// obtain one default-constructed (invalid, first solve runs cold) or
  /// from warmStartFrom(), and pass it to successive dcOperatingPoint()
  /// calls over the same circuit -- or over equal-layout neighbours, as a
  /// DC sweep or a Monte Carlo trial sequence produces.
  class WarmStart {
   public:
    WarmStart() = default;
    [[nodiscard]] bool valid() const { return valid_; }
    void reset() {
      x_.clear();
      valid_ = false;
    }

   private:
    friend class Simulator;
    std::vector<double> x_;
    bool valid_ = false;
  };

  /// Seed carry-over state from a converged solution of this circuit (or
  /// one with the identical unknown layout).  Node voltages and V-source
  /// branch currents are carried; dependent-source branch currents start
  /// at zero, exactly as the DC sweep continuation has always seeded
  /// them.  Throws std::invalid_argument on a layout mismatch.
  [[nodiscard]] WarmStart warmStartFrom(const DcSolution& seed) const;

  /// Warm-started operating point: when `warm` holds usable state, run
  /// Newton directly from it at the final gmin; otherwise -- or when that
  /// refuses to converge -- fall back to the full cold continuation
  /// ladder.  On return `warm` carries this solution, ready for the next
  /// neighbouring point.  Throws SimulationError only if the cold path
  /// fails too.
  [[nodiscard]] DcSolution dcOperatingPoint(WarmStart& warm) const;

  /// Sweep the DC value of V source `vsrcName` and solve at each point
  /// (continuation from the previous point).
  struct SweepPoint {
    double value = 0.0;
    DcSolution solution;
  };
  [[nodiscard]] std::vector<SweepPoint> dcSweep(const std::string& vsrcName, double start,
                                                double stop, int points) const;

  /// AC analysis about `op` over a log frequency grid.
  [[nodiscard]] std::vector<AcPoint> ac(const DcSolution& op, double fStart, double fStop,
                                        int pointsPerDecade) const;

  /// AC analysis with the excitation moved onto one named V source: every
  /// source's own acMag/acPhase is ignored and a unit (1 V, 0 deg)
  /// excitation drives `sourceName`'s branch instead.  Numerically
  /// identical to ac() on a copy of the circuit whose only non-zero acMag
  /// is 1.0 on that source -- supply-rejection measurements (PSRR) without
  /// mutating the netlist.  Throws SimulationError on an unknown source.
  [[nodiscard]] std::vector<AcPoint> acFrom(const DcSolution& op,
                                            const std::string& sourceName,
                                            double fStart, double fStop,
                                            int pointsPerDecade) const;

  /// Solve a whole excitation block over one frequency grid: the system
  /// matrix does not depend on the excitation, so in the fast solver mode
  /// every frequency point is factored once and each excitation costs only
  /// a pair of triangular solves.  Returns one curve per excitation, in
  /// order; each is bit-identical to the equivalent ac()/acFrom() call.
  [[nodiscard]] std::vector<std::vector<AcPoint>> acBatch(
      const DcSolution& op, const std::vector<AcExcitation>& excitations,
      double fStart, double fStop, int pointsPerDecade) const;

  /// Small-signal noise at node `out`, input-referred to V source
  /// `inputVsrc` (adjoint network method: one extra solve per frequency).
  [[nodiscard]] std::vector<NoisePoint> noise(const DcSolution& op, circuit::NodeId out,
                                              const std::string& inputVsrc, double fStart,
                                              double fStop, int pointsPerDecade) const;

  /// Fixed-step trapezoidal transient from the DC operating point.
  [[nodiscard]] std::vector<TranPoint> transient(double tStop, double dt) const;

  [[nodiscard]] const SimOptions& options() const { return options_; }

  /// Hot-path counters accumulated since construction (instrumentation
  /// for bench/ext_sim; results never depend on them).
  [[nodiscard]] const SimStats& stats() const { return stats_; }

 private:
  struct Workspace;
  [[nodiscard]] Workspace& ws() const;
  [[nodiscard]] bool newtonSolve(std::vector<double>& x, double gmin, double srcScale,
                                 int maxIters, int* itersOut) const;
  [[nodiscard]] DcSolution finalizeSolution(const std::vector<double>& x, int iters) const;
  [[nodiscard]] device::MosOpPoint evalMos(const circuit::Mos& mos,
                                           const std::vector<double>& x) const;
  [[nodiscard]] std::size_t unknownCount() const;
  void packContinuation(const DcSolution& sol, std::vector<double>& x) const;
  [[nodiscard]] AcPoint extractAcPoint(double freq,
                                       const std::vector<std::complex<double>>& sol) const;
  [[nodiscard]] std::size_t vsourceIndexOrThrow(const std::string& name,
                                                const char* context) const;
  [[nodiscard]] std::vector<std::vector<AcPoint>> acSolveGridFast(
      const DcSolution& op, const std::vector<AcExcitation>& excitations,
      const std::vector<double>& freqs, const std::string& failPrefix) const;

  const circuit::Circuit& circuit_;
  const tech::Technology& tech_;
  const device::MosModel& model_;
  SimOptions options_;
  mutable std::unique_ptr<Workspace> ws_;
  mutable SimStats stats_;
};

/// Trapezoidal integration of a tabulated PSD over [f0, f1] on the log grid
/// the analysis produced; returns total mean-square value [V^2].
[[nodiscard]] double integratePsd(const std::vector<NoisePoint>& points, double f0,
                                  double f1, bool inputReferred);

}  // namespace lo::sim
