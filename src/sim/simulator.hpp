// lospice: the MNA circuit simulator.
//
// Stands in for the commercial simulator the paper verifies with.  Supports
// DC operating point (Newton with gmin and source stepping), DC sweeps, AC
// small-signal analysis, small-signal noise analysis (adjoint method) and
// transient analysis (trapezoidal).  MOS devices are evaluated through the
// exact same device::MosModel code the sizing tool uses.
#pragma once

#include <complex>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "device/mos_model.hpp"
#include "tech/technology.hpp"

namespace lo::sim {

struct SimOptions {
  double gminFloor = 1e-12;   ///< Final gmin left on every node [S].
  double absTolV = 1e-9;      ///< Newton voltage-update tolerance [V].
  double relTol = 1e-6;
  int maxNewtonIters = 150;
  double maxStepV = 0.3;      ///< Per-iteration voltage damping limit [V].
  double tempK = 300.15;
};

/// DC operating point: node voltages, source branch currents, and the full
/// per-device small-signal picture.  Mos op entries are scaled by the device
/// multiplier (they describe the whole parallel combination).
struct DcSolution {
  bool converged = false;
  int iterations = 0;
  std::vector<double> nodeVoltages;              ///< Indexed by NodeId.
  std::vector<double> vsourceCurrents;           ///< Per circuit.vsources entry.
  std::vector<device::MosOpPoint> mosOps;        ///< Per circuit.mosfets entry.

  [[nodiscard]] double voltage(circuit::NodeId n) const { return nodeVoltages.at(n); }
};

struct AcPoint {
  double freq = 0.0;
  std::vector<std::complex<double>> nodeV;   ///< Indexed by NodeId; [0] is 0.
  std::vector<std::complex<double>> vsourceI;  ///< Branch current per V source.

  [[nodiscard]] std::complex<double> at(circuit::NodeId n) const { return nodeV.at(n); }
};

struct NoisePoint {
  double freq = 0.0;
  double outputPsd = 0.0;    ///< Output noise voltage PSD [V^2/Hz].
  double inputRefPsd = 0.0;  ///< Input-referred PSD [V^2/Hz].
  double gainMag = 0.0;      ///< |vout / vin| used for input referral.
};

struct TranPoint {
  double time = 0.0;
  std::vector<double> nodeV;  ///< Indexed by NodeId.
};

class SimulationError : public std::runtime_error {
 public:
  explicit SimulationError(const std::string& what) : std::runtime_error(what) {}
};

class Simulator {
 public:
  /// The circuit, technology and model must outlive the simulator.
  Simulator(const circuit::Circuit& circuit, const tech::Technology& technology,
            const device::MosModel& model, SimOptions options = {});

  /// DC operating point with gmin stepping and, on failure, source stepping.
  /// Throws SimulationError when no continuation converges.
  [[nodiscard]] DcSolution dcOperatingPoint() const;

  /// Sweep the DC value of V source `vsrcName` and solve at each point
  /// (continuation from the previous point).
  struct SweepPoint {
    double value = 0.0;
    DcSolution solution;
  };
  [[nodiscard]] std::vector<SweepPoint> dcSweep(const std::string& vsrcName, double start,
                                                double stop, int points) const;

  /// AC analysis about `op` over a log frequency grid.
  [[nodiscard]] std::vector<AcPoint> ac(const DcSolution& op, double fStart, double fStop,
                                        int pointsPerDecade) const;

  /// AC analysis with the excitation moved onto one named V source: every
  /// source's own acMag/acPhase is ignored and a unit (1 V, 0 deg)
  /// excitation drives `sourceName`'s branch instead.  Numerically
  /// identical to ac() on a copy of the circuit whose only non-zero acMag
  /// is 1.0 on that source -- supply-rejection measurements (PSRR) without
  /// mutating the netlist.  Throws SimulationError on an unknown source.
  [[nodiscard]] std::vector<AcPoint> acFrom(const DcSolution& op,
                                            const std::string& sourceName,
                                            double fStart, double fStop,
                                            int pointsPerDecade) const;

  /// Small-signal noise at node `out`, input-referred to V source
  /// `inputVsrc` (adjoint network method: one extra solve per frequency).
  [[nodiscard]] std::vector<NoisePoint> noise(const DcSolution& op, circuit::NodeId out,
                                              const std::string& inputVsrc, double fStart,
                                              double fStop, int pointsPerDecade) const;

  /// Fixed-step trapezoidal transient from the DC operating point.
  [[nodiscard]] std::vector<TranPoint> transient(double tStop, double dt) const;

  [[nodiscard]] const SimOptions& options() const { return options_; }

 private:
  struct Workspace;
  [[nodiscard]] bool newtonSolve(std::vector<double>& x, double gmin, double srcScale,
                                 int maxIters, int* itersOut) const;
  [[nodiscard]] DcSolution finalizeSolution(const std::vector<double>& x, int iters) const;
  [[nodiscard]] device::MosOpPoint evalMos(const circuit::Mos& mos,
                                           const std::vector<double>& x) const;
  [[nodiscard]] std::size_t unknownCount() const;

  const circuit::Circuit& circuit_;
  const tech::Technology& tech_;
  const device::MosModel& model_;
  SimOptions options_;
};

/// Trapezoidal integration of a tabulated PSD over [f0, f1] on the log grid
/// the analysis produced; returns total mean-square value [V^2].
[[nodiscard]] double integratePsd(const std::vector<NoisePoint>& points, double f0,
                                  double f1, bool inputReferred);

}  // namespace lo::sim
