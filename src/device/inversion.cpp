#include "device/inversion.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tech/units.hpp"

namespace lo::device {

double widthForCurrent(const MosModel& model, const tech::MosModelCard& card,
                       MosGeometry geo, double targetId, double vgs, double vds,
                       double vbs, double tempK) {
  if (targetId <= 0.0) throw std::invalid_argument("widthForCurrent: targetId must be > 0");
  // Both models are strictly proportional to W, so one scaling step suffices;
  // a second pass guards against future models with W-dependent terms.
  for (int pass = 0; pass < 2; ++pass) {
    const double id = std::abs(model.currentNormalized(card, geo, vgs, vds, vbs, tempK));
    if (id <= 0.0) {
      throw std::runtime_error("widthForCurrent: device off at the requested bias");
    }
    geo.w = std::max(geo.w * targetId / id, 0.1e-6);
  }
  return geo.w;
}

double vgsForCurrent(const MosModel& model, const tech::MosModelCard& card,
                     const MosGeometry& geo, double targetId, double vds, double vbs,
                     double vmax, double tempK) {
  if (targetId <= 0.0) throw std::invalid_argument("vgsForCurrent: targetId must be > 0");
  double lo = 0.0, hi = vmax;
  const double iHi = std::abs(model.currentNormalized(card, geo, hi, vds, vbs, tempK));
  if (iHi < targetId) {
    throw std::runtime_error("vgsForCurrent: target current unreachable at vmax");
  }
  for (int i = 0; i < 80; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double id = std::abs(model.currentNormalized(card, geo, mid, vds, vbs, tempK));
    (id < targetId ? lo : hi) = mid;
  }
  return 0.5 * (lo + hi);
}

GmSizing sizeForGm(const MosModel& model, const tech::MosModelCard& card, MosGeometry geo,
                   double targetGm, double targetId, double vds, double vbs,
                   double tempK) {
  if (targetGm <= 0.0 || targetId <= 0.0) {
    throw std::invalid_argument("sizeForGm: targets must be > 0");
  }
  const double vt = kBoltzmann * tempK / kElectronCharge;
  const double vth = model.threshold(card, std::min(vbs, card.phi - 0.05));
  // Square-law seed: veff = 2 ID / gm, clamped into a physical window.
  double veff = std::clamp(2.0 * targetId / targetGm, 3.0 * vt, 1.5);

  GmSizing out;
  for (int iter = 0; iter < 40; ++iter) {
    const double vgs = vth + veff;
    geo.w = widthForCurrent(model, card, geo, targetId, vgs, vds, vbs, tempK);
    const MosOpPoint op = model.evaluate(card, geo, vgs, vds, vbs, tempK);
    out.w = geo.w;
    out.vgs = vgs;
    out.gm = op.gm;
    const double err = op.gm / targetGm;
    if (std::abs(err - 1.0) < 1e-6) break;
    // At fixed ID, gm falls as veff rises; scale veff by the gm excess.
    veff = std::clamp(veff * err, 3.0 * vt, 1.5);
  }
  return out;
}

}  // namespace lo::device
