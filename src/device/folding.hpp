// Transistor folding and diffusion-capacitance geometry.
//
// Implements the paper's capacitance reduction factor F (Fig. 2): folding a
// transistor into Nf fingers shares source/drain diffusion strips between
// fingers, so the effective diffusion width on a terminal becomes
// Weff = F * W with
//
//         | 1/2              Nf even, terminal on internal strips only   (a)
//     F = | (Nf + 2) / 2Nf   Nf even, terminal on external strips        (b)
//         | (Nf + 1) / 2Nf   Nf odd                                      (c)
//
// and F = 1 for an unfolded device.  The layout tool exploits case (a) by
// choosing even fold counts and connecting the sensitive net (usually the
// drain) to the internal strips.
#pragma once

#include "device/mos_op.hpp"
#include "tech/design_rules.hpp"

namespace lo::device {

/// How the fold planner assigns the drain terminal to diffusion strips.
enum class FoldStyle {
  kDrainInternal,  ///< Even Nf preferred; drain on shared strips (case a).
  kDrainExternal,  ///< Drain on the outer strips (case b / c).
  kAlternating,    ///< No preference; first strip is a source.
};

/// A fully decided fold plan for one transistor.
struct FoldPlan {
  int nf = 1;                 ///< Number of fingers.
  double foldWidth = 0.0;     ///< Width of each finger [m] (grid-snapped).
  double totalWidth = 0.0;    ///< nf * foldWidth; may differ slightly from
                              ///< the requested W because of grid snapping
                              ///< (the paper notes the resulting offset).
  FoldStyle style = FoldStyle::kDrainInternal;
  bool drainInternal = true;  ///< True when no drain strip is external.
};

/// The paper's capacitance reduction factor F for a terminal of a device
/// folded Nf times.  `internal` selects case (a) vs (b) for even Nf; it is
/// ignored for odd Nf (case c applies to both terminals).
[[nodiscard]] double capReductionFactor(int nf, DiffusionPosition position);

/// Effective diffusion width Weff = F * W [m].
[[nodiscard]] double effectiveDiffusionWidth(double w, int nf, DiffusionPosition position);

/// Exact per-terminal junction geometry (AD/AS/PD/PS) of a folded device.
///
/// Strip extents come from the design rules: an external strip carries a
/// contact row and is rules.contactedDiffusionExtent() wide; an internal
/// strip shared between two gates is rules.sharedContactedDiffusionExtent()
/// wide.  Perimeters exclude the gate edges (standard extraction
/// convention).  Populates geo.ad/as/pd/ps from geo.w/geo.l and the plan.
void applyDiffusionGeometry(const tech::DesignRules& rules, const FoldPlan& plan,
                            MosGeometry& geo);

/// Decide a fold plan for a device of drawn width `w` so that each finger is
/// no wider than `maxFoldWidth`, honouring the requested style (even fold
/// counts for kDrainInternal) and snapping finger widths to the layout grid.
[[nodiscard]] FoldPlan planFolds(const tech::DesignRules& rules, double w,
                                 double maxFoldWidth, FoldStyle style);

/// Fold plan with an explicit finger count (used when the area optimiser has
/// already chosen Nf from the shape functions).
[[nodiscard]] FoldPlan planFoldsExact(const tech::DesignRules& rules, double w, int nf,
                                      FoldStyle style);

/// Default single-fold geometry used before any layout information exists
/// (first sizing pass: "one fold per transistor, only diffusion
/// capacitances").  Both terminals get a full contacted strip.
void applyUnfoldedGeometry(const tech::DesignRules& rules, MosGeometry& geo);

}  // namespace lo::device
