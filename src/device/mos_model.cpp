#include "device/mos_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "tech/units.hpp"

namespace lo::device {

namespace {

/// Softplus with scale `a`: smooth max(x, 0) that tends to x for x >> a.
double softplus(double x, double a) {
  const double r = x / a;
  if (r > 40.0) return x;
  if (r < -40.0) return 0.0;
  return a * std::log1p(std::exp(r));
}

/// Junction capacitance with reverse bias `vr` (>= 0 reverse); clamps the
/// forward-bias singularity at half the built-in potential.
double junctionCap(double c0, double vr, double pb, double m) {
  const double x = std::max(1.0 - (-vr) / pb, 0.5);  // vr < 0 means forward bias.
  return c0 / std::pow(x, m);
}

}  // namespace

// ---------------------------------------------------------------------------
// Base class: symmetry handling, derivatives, capacitances, noise.
// ---------------------------------------------------------------------------

double MosModel::currentNormalized(const tech::MosModelCard& card, const MosGeometry& geo,
                                   double vgs, double vds, double vbs, double tempK) const {
  if (vds >= 0.0) return forwardCurrent(card, geo, vgs, vds, vbs, tempK);
  // Source/drain symmetry: with vds < 0 the drain acts as the source.
  return -forwardCurrent(card, geo, vgs - vds, -vds, vbs - vds, tempK);
}

double MosModel::drainCurrent(const tech::MosModelCard& card, const MosGeometry& geo,
                              double vgs, double vds, double vbs, double tempK) const {
  const double p = card.polarity();
  return p * currentNormalized(card, geo, p * vgs, p * vds, p * vbs, tempK);
}

MosOpPoint MosModel::evaluate(const tech::MosModelCard& card, const MosGeometry& geo,
                              double vgs, double vds, double vbs, double tempK) const {
  const double p = card.polarity();
  const double nvgs = p * vgs, nvds = p * vds, nvbs = p * vbs;

  MosOpPoint op;
  op.vgs = vgs;
  op.vds = vds;
  op.vbs = vbs;

  const double idN = currentNormalized(card, geo, nvgs, nvds, nvbs, tempK);
  op.id = p * idN;

  // Conductances by central differences on the normalised current; the
  // magnitudes are polarity independent.
  const double h = 1e-6;
  auto cur = [&](double g, double d, double b) {
    return currentNormalized(card, geo, g, d, b, tempK);
  };
  op.gm = (cur(nvgs + h, nvds, nvbs) - cur(nvgs - h, nvds, nvbs)) / (2 * h);
  op.gds = (cur(nvgs, nvds + h, nvbs) - cur(nvgs, nvds - h, nvbs)) / (2 * h);
  op.gmb = (cur(nvgs, nvds, nvbs + h) - cur(nvgs, nvds, nvbs - h)) / (2 * h);
  // Numerical noise floor: clamp tiny negatives from differencing.
  op.gm = std::max(op.gm, 0.0);
  op.gds = std::max(op.gds, 1e-15);
  op.gmb = std::max(op.gmb, 0.0);

  const double vthN = threshold(card, std::min(nvbs, card.phi - 0.05));
  op.vth = p * vthN;
  op.veff = nvgs - vthN;
  op.vdsat = saturationVoltage(card, nvgs, nvbs, tempK);

  const double vt = kBoltzmann * tempK / kElectronCharge;
  if (op.veff < -3.0 * vt) {
    op.region = MosRegion::kCutoff;
  } else if (op.veff < 3.0 * vt) {
    op.region = MosRegion::kWeak;
  } else if (nvds < op.vdsat) {
    op.region = MosRegion::kTriode;
  } else {
    op.region = MosRegion::kSaturation;
  }

  // --- Meyer gate capacitances + overlaps. ---
  const double leff = card.leff(geo.l);
  const double coxTotal = card.cox() * geo.w * leff;
  const double ovlS = card.cgso * geo.w;
  const double ovlD = card.cgdo * geo.w;
  const double ovlB = card.cgbo * geo.l;
  switch (op.region) {
    case MosRegion::kCutoff:
    case MosRegion::kWeak:
      op.cgs = ovlS;
      op.cgd = ovlD;
      op.cgb = coxTotal + ovlB;
      break;
    case MosRegion::kTriode:
      op.cgs = 0.5 * coxTotal + ovlS;
      op.cgd = 0.5 * coxTotal + ovlD;
      op.cgb = ovlB;
      break;
    case MosRegion::kSaturation:
      op.cgs = (2.0 / 3.0) * coxTotal + ovlS;
      op.cgd = ovlD;
      op.cgb = ovlB;
      break;
  }

  // --- Junction capacitances (reverse bias increases with drain voltage). ---
  const double vrSb = -nvbs;            // reverse bias source-bulk
  const double vrDb = -(nvbs - nvds);   // reverse bias drain-bulk
  op.csb = junctionCap(card.cj * geo.as, vrSb, card.pb, card.mj) +
           junctionCap(card.cjsw * geo.ps, vrSb, card.pb, card.mjsw);
  op.cdb = junctionCap(card.cj * geo.ad, vrDb, card.pb, card.mj) +
           junctionCap(card.cjsw * geo.pd, vrDb, card.pb, card.mjsw);

  // --- Noise. ---
  // Thermal: 4kT*(2/3)*gm in saturation, 4kT*gds-like channel conductance in
  // triode; take the larger so the expression covers both regions.
  const double kT4 = 4.0 * kBoltzmann * tempK;
  op.thermalNoisePsd = kT4 * std::max((2.0 / 3.0) * op.gm, op.gds * (op.region == MosRegion::kTriode ? 1.0 : 0.0));
  // Flicker: SPICE convention KF * |ID|^AF / (Cox * Leff^2) / f.
  const double absId = std::abs(op.id);
  op.flickerCoeff = card.kf * std::pow(std::max(absId, 1e-15), card.af) /
                    (card.cox() * leff * leff);
  return op;
}

std::unique_ptr<MosModel> MosModel::create(std::string_view name) {
  if (name == "level1") return std::make_unique<Level1Model>();
  if (name == "ekv") return std::make_unique<EkvModel>();
  throw std::invalid_argument("unknown MOS model: " + std::string(name));
}

// ---------------------------------------------------------------------------
// Level 1.
// ---------------------------------------------------------------------------

double Level1Model::threshold(const tech::MosModelCard& card, double vbs) const {
  const double phiEff = std::max(card.phi - vbs, 0.05);
  return card.vto + card.gamma * (std::sqrt(phiEff) - std::sqrt(card.phi));
}

double Level1Model::saturationVoltage(const tech::MosModelCard& card, double vgs,
                                      double vbs, double tempK) const {
  const double vt = kBoltzmann * tempK / kElectronCharge;
  const double veff = vgs - threshold(card, vbs);
  return softplus(veff, card.slopeFactor * vt);
}

double Level1Model::forwardCurrent(const tech::MosModelCard& card, const MosGeometry& geo,
                                   double vgs, double vds, double vbs,
                                   double tempK) const {
  const double vt = kBoltzmann * tempK / kElectronCharge;
  const double nvt = card.slopeFactor * vt;
  const double phiEff = std::max(card.phi - vbs, 0.05);
  const double vth = card.vtoAt(tempK) +
                     card.gamma * (std::sqrt(phiEff) - std::sqrt(card.phi));
  const double veff = vgs - vth;
  // Smooth gate drive: equals veff in strong inversion, exponential below
  // threshold, keeping Newton iterations well conditioned near cutoff.
  const double q = softplus(veff, nvt);
  const double leff = card.leff(geo.l);
  const double beta = card.kpAt(tempK) / (1.0 + card.theta * q) * geo.w / leff;
  // Smooth triode-to-saturation transition through an effective vds that
  // saturates at q (k = 6 keeps the error near the knee around 1%).
  const double ratio = vds / std::max(q, 1e-9);
  const double vdse = vds / std::pow(1.0 + std::pow(ratio, 6.0), 1.0 / 6.0);
  const double va = card.earlyPerMeter * leff;
  return beta * (q - 0.5 * vdse) * vdse * (1.0 + vds / va);
}

// ---------------------------------------------------------------------------
// EKV.
// ---------------------------------------------------------------------------

double EkvModel::pinchOff(const tech::MosModelCard& card, double vg) {
  const double sqrtPhi = std::sqrt(card.phi);
  const double vgp = vg - card.vto + card.phi + card.gamma * sqrtPhi;
  if (vgp <= 0.0) return -card.phi;
  const double half = card.gamma / 2.0;
  return vgp - card.phi - card.gamma * (std::sqrt(vgp + half * half) - half);
}

double EkvModel::slopeFactorAt(const tech::MosModelCard& card, double vp) {
  return 1.0 + card.gamma / (2.0 * std::sqrt(std::max(card.phi + vp, 0.1)));
}

double EkvModel::threshold(const tech::MosModelCard& card, double vbs) const {
  const double phiEff = std::max(card.phi - vbs, 0.05);
  return card.vto + card.gamma * (std::sqrt(phiEff) - std::sqrt(card.phi));
}

namespace {
/// EKV interpolation function F(v) = ln^2(1 + exp(v / 2)).
double ekvF(double v) {
  const double l = softplus(v / 2.0, 1.0);
  return l * l;
}
}  // namespace

double EkvModel::saturationVoltage(const tech::MosModelCard& card, double vgs,
                                   double vbs, double tempK) const {
  const double vt = kBoltzmann * tempK / kElectronCharge;
  const double vg = vgs - vbs;
  const double vs = -vbs;
  const double vp = pinchOff(card, vg);
  const double iff = ekvF((vp - vs) / vt);
  return vt * (2.0 * std::sqrt(iff) + 4.0);
}

double EkvModel::forwardCurrent(const tech::MosModelCard& card, const MosGeometry& geo,
                                double vgs, double vds, double vbs,
                                double tempK) const {
  const double vt = kBoltzmann * tempK / kElectronCharge;
  // Bulk-referenced node voltages; the pinch-off uses the temperature-
  // shifted threshold.
  const double vg = vgs - vbs + (card.vto - card.vtoAt(tempK));
  const double vs = -vbs;
  const double vd = vds - vbs;

  const double vp = pinchOff(card, vg);
  const double n = slopeFactorAt(card, vp);
  const double leff = card.leff(geo.l);
  const double drive = std::max(vp - vs, 0.0);
  const double beta = card.kpAt(tempK) / (1.0 + card.theta * drive) * geo.w / leff;
  const double ispec = 2.0 * n * beta * vt * vt;

  const double iff = ekvF((vp - vs) / vt);
  const double irr = ekvF((vp - vd) / vt);
  double id = ispec * (iff - irr);

  // Channel-length modulation on the saturated excess drain voltage.
  const double vdsat = vt * (2.0 * std::sqrt(iff) + 4.0);
  const double va = card.earlyPerMeter * leff;
  id *= 1.0 + softplus(vds - vdsat, 2.0 * vt) / va;
  return id;
}

}  // namespace lo::device
