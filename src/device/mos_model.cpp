#include "device/mos_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "tech/units.hpp"

namespace lo::device {

namespace {

/// Softplus with scale `a`: smooth max(x, 0) that tends to x for x >> a.
double softplus(double x, double a) {
  const double r = x / a;
  if (r > 40.0) return x;
  if (r < -40.0) return 0.0;
  return a * std::log1p(std::exp(r));
}

/// Junction capacitance with reverse bias `vr` (>= 0 reverse); clamps the
/// forward-bias singularity at half the built-in potential.
double junctionCap(double c0, double vr, double pb, double m) {
  const double x = std::max(1.0 - (-vr) / pb, 0.5);  // vr < 0 means forward bias.
  return c0 / std::pow(x, m);
}

}  // namespace

// ---------------------------------------------------------------------------
// Base class: symmetry handling, derivatives, capacitances, noise.
// ---------------------------------------------------------------------------

double MosModel::currentNormalized(const tech::MosModelCard& card, const MosGeometry& geo,
                                   double vgs, double vds, double vbs, double tempK) const {
  if (vds >= 0.0) return forwardCurrent(card, geo, vgs, vds, vbs, tempK);
  // Source/drain symmetry: with vds < 0 the drain acts as the source.
  return -forwardCurrent(card, geo, vgs - vds, -vds, vbs - vds, tempK);
}

void MosModel::forwardCurrentBatch(const tech::MosModelCard& card, const MosGeometry& geo,
                                   const double* vgs, const double* vds, const double* vbs,
                                   double* idOut, std::size_t n, double tempK) const {
  for (std::size_t i = 0; i < n; ++i) {
    idOut[i] = forwardCurrent(card, geo, vgs[i], vds[i], vbs[i], tempK);
  }
}

void MosModel::currentNormalizedBatch(const tech::MosModelCard& card, const MosGeometry& geo,
                                      const double* vgs, const double* vds, const double* vbs,
                                      double* idOut, std::size_t n, double tempK) const {
  // Derivative stencils are 7 points, so the common case stays on the stack.
  constexpr std::size_t kStack = 8;
  double sg[kStack], sd[kStack], sb[kStack];
  std::vector<double> heap;
  double* fg = sg;
  double* fd = sd;
  double* fb = sb;
  if (n > kStack) {
    heap.resize(3 * n);
    fg = heap.data();
    fd = fg + n;
    fb = fd + n;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (vds[i] >= 0.0) {
      fg[i] = vgs[i];
      fd[i] = vds[i];
      fb[i] = vbs[i];
    } else {
      // Source/drain symmetry, exactly as the scalar currentNormalized.
      fg[i] = vgs[i] - vds[i];
      fd[i] = -vds[i];
      fb[i] = vbs[i] - vds[i];
    }
  }
  forwardCurrentBatch(card, geo, fg, fd, fb, idOut, n, tempK);
  for (std::size_t i = 0; i < n; ++i) {
    if (vds[i] < 0.0) idOut[i] = -idOut[i];
  }
}

double MosModel::drainCurrent(const tech::MosModelCard& card, const MosGeometry& geo,
                              double vgs, double vds, double vbs, double tempK) const {
  const double p = card.polarity();
  return p * currentNormalized(card, geo, p * vgs, p * vds, p * vbs, tempK);
}

MosOpPoint MosModel::evaluate(const tech::MosModelCard& card, const MosGeometry& geo,
                              double vgs, double vds, double vbs, double tempK) const {
  const double p = card.polarity();
  const double nvgs = p * vgs, nvds = p * vds, nvbs = p * vbs;

  MosOpPoint op;
  op.vgs = vgs;
  op.vds = vds;
  op.vbs = vbs;

  // Value plus central-difference stencil in one batch: one pass through
  // the model with the card invariants hoisted, instead of seven scalar
  // calls.  Each point is bit-identical to the scalar evaluation.
  const double h = 1e-6;
  const double vg7[7] = {nvgs, nvgs + h, nvgs - h, nvgs, nvgs, nvgs, nvgs};
  const double vd7[7] = {nvds, nvds, nvds, nvds + h, nvds - h, nvds, nvds};
  const double vb7[7] = {nvbs, nvbs, nvbs, nvbs, nvbs, nvbs + h, nvbs - h};
  double id7[7];
  currentNormalizedBatch(card, geo, vg7, vd7, vb7, id7, 7, tempK);
  op.id = p * id7[0];

  // Conductances by central differences on the normalised current; the
  // magnitudes are polarity independent.
  op.gm = (id7[1] - id7[2]) / (2 * h);
  op.gds = (id7[3] - id7[4]) / (2 * h);
  op.gmb = (id7[5] - id7[6]) / (2 * h);
  // Numerical noise floor: clamp tiny negatives from differencing.
  op.gm = std::max(op.gm, 0.0);
  op.gds = std::max(op.gds, 1e-15);
  op.gmb = std::max(op.gmb, 0.0);

  const double vthN = threshold(card, std::min(nvbs, card.phi - 0.05));
  op.vth = p * vthN;
  op.veff = nvgs - vthN;
  op.vdsat = saturationVoltage(card, nvgs, nvbs, tempK);

  const double vt = kBoltzmann * tempK / kElectronCharge;
  if (op.veff < -3.0 * vt) {
    op.region = MosRegion::kCutoff;
  } else if (op.veff < 3.0 * vt) {
    op.region = MosRegion::kWeak;
  } else if (nvds < op.vdsat) {
    op.region = MosRegion::kTriode;
  } else {
    op.region = MosRegion::kSaturation;
  }

  // --- Meyer gate capacitances + overlaps. ---
  const double leff = card.leff(geo.l);
  const double coxTotal = card.cox() * geo.w * leff;
  const double ovlS = card.cgso * geo.w;
  const double ovlD = card.cgdo * geo.w;
  const double ovlB = card.cgbo * geo.l;
  switch (op.region) {
    case MosRegion::kCutoff:
    case MosRegion::kWeak:
      op.cgs = ovlS;
      op.cgd = ovlD;
      op.cgb = coxTotal + ovlB;
      break;
    case MosRegion::kTriode:
      op.cgs = 0.5 * coxTotal + ovlS;
      op.cgd = 0.5 * coxTotal + ovlD;
      op.cgb = ovlB;
      break;
    case MosRegion::kSaturation:
      op.cgs = (2.0 / 3.0) * coxTotal + ovlS;
      op.cgd = ovlD;
      op.cgb = ovlB;
      break;
  }

  // --- Junction capacitances (reverse bias increases with drain voltage). ---
  const double vrSb = -nvbs;            // reverse bias source-bulk
  const double vrDb = -(nvbs - nvds);   // reverse bias drain-bulk
  op.csb = junctionCap(card.cj * geo.as, vrSb, card.pb, card.mj) +
           junctionCap(card.cjsw * geo.ps, vrSb, card.pb, card.mjsw);
  op.cdb = junctionCap(card.cj * geo.ad, vrDb, card.pb, card.mj) +
           junctionCap(card.cjsw * geo.pd, vrDb, card.pb, card.mjsw);

  // --- Noise. ---
  // Thermal: 4kT*(2/3)*gm in saturation, 4kT*gds-like channel conductance in
  // triode; take the larger so the expression covers both regions.
  const double kT4 = 4.0 * kBoltzmann * tempK;
  op.thermalNoisePsd = kT4 * std::max((2.0 / 3.0) * op.gm, op.gds * (op.region == MosRegion::kTriode ? 1.0 : 0.0));
  // Flicker: SPICE convention KF * |ID|^AF / (Cox * Leff^2) / f.
  const double absId = std::abs(op.id);
  op.flickerCoeff = card.kf * std::pow(std::max(absId, 1e-15), card.af) /
                    (card.cox() * leff * leff);
  return op;
}

std::unique_ptr<MosModel> MosModel::create(std::string_view name) {
  if (name == "level1") return std::make_unique<Level1Model>();
  if (name == "ekv") return std::make_unique<EkvModel>();
  throw std::invalid_argument("unknown MOS model: " + std::string(name));
}

// ---------------------------------------------------------------------------
// Level 1.
// ---------------------------------------------------------------------------

double Level1Model::threshold(const tech::MosModelCard& card, double vbs) const {
  const double phiEff = std::max(card.phi - vbs, 0.05);
  return card.vto + card.gamma * (std::sqrt(phiEff) - std::sqrt(card.phi));
}

double Level1Model::saturationVoltage(const tech::MosModelCard& card, double vgs,
                                      double vbs, double tempK) const {
  const double vt = kBoltzmann * tempK / kElectronCharge;
  const double veff = vgs - threshold(card, vbs);
  return softplus(veff, card.slopeFactor * vt);
}

double Level1Model::forwardCurrent(const tech::MosModelCard& card, const MosGeometry& geo,
                                   double vgs, double vds, double vbs,
                                   double tempK) const {
  const double vt = kBoltzmann * tempK / kElectronCharge;
  const double nvt = card.slopeFactor * vt;
  const double phiEff = std::max(card.phi - vbs, 0.05);
  const double vth = card.vtoAt(tempK) +
                     card.gamma * (std::sqrt(phiEff) - std::sqrt(card.phi));
  const double veff = vgs - vth;
  // Smooth gate drive: equals veff in strong inversion, exponential below
  // threshold, keeping Newton iterations well conditioned near cutoff.
  const double q = softplus(veff, nvt);
  const double leff = card.leff(geo.l);
  const double beta = card.kpAt(tempK) / (1.0 + card.theta * q) * geo.w / leff;
  // Smooth triode-to-saturation transition through an effective vds that
  // saturates at q (k = 6 keeps the error near the knee around 1%).
  const double ratio = vds / std::max(q, 1e-9);
  const double vdse = vds / std::pow(1.0 + std::pow(ratio, 6.0), 1.0 / 6.0);
  const double va = card.earlyPerMeter * leff;
  return beta * (q - 0.5 * vdse) * vdse * (1.0 + vds / va);
}

void Level1Model::forwardCurrentBatch(const tech::MosModelCard& card, const MosGeometry& geo,
                                      const double* vgs, const double* vds, const double* vbs,
                                      double* idOut, std::size_t n, double tempK) const {
  // Every bias-independent term of forwardCurrent hoisted out of the loop;
  // the per-point operation order is unchanged, so each result is
  // bit-identical to the scalar path.
  const double vt = kBoltzmann * tempK / kElectronCharge;
  const double nvt = card.slopeFactor * vt;
  const double vtoT = card.vtoAt(tempK);
  const double sqrtPhi = std::sqrt(card.phi);
  const double kpT = card.kpAt(tempK);
  const double leff = card.leff(geo.l);
  const double va = card.earlyPerMeter * leff;
  for (std::size_t i = 0; i < n; ++i) {
    const double phiEff = std::max(card.phi - vbs[i], 0.05);
    const double vth = vtoT + card.gamma * (std::sqrt(phiEff) - sqrtPhi);
    const double veff = vgs[i] - vth;
    const double q = softplus(veff, nvt);
    const double beta = kpT / (1.0 + card.theta * q) * geo.w / leff;
    const double ratio = vds[i] / std::max(q, 1e-9);
    const double vdse = vds[i] / std::pow(1.0 + std::pow(ratio, 6.0), 1.0 / 6.0);
    idOut[i] = beta * (q - 0.5 * vdse) * vdse * (1.0 + vds[i] / va);
  }
}

// ---------------------------------------------------------------------------
// EKV.
// ---------------------------------------------------------------------------

double EkvModel::pinchOff(const tech::MosModelCard& card, double vg) {
  const double sqrtPhi = std::sqrt(card.phi);
  const double vgp = vg - card.vto + card.phi + card.gamma * sqrtPhi;
  if (vgp <= 0.0) return -card.phi;
  const double half = card.gamma / 2.0;
  return vgp - card.phi - card.gamma * (std::sqrt(vgp + half * half) - half);
}

double EkvModel::slopeFactorAt(const tech::MosModelCard& card, double vp) {
  return 1.0 + card.gamma / (2.0 * std::sqrt(std::max(card.phi + vp, 0.1)));
}

double EkvModel::threshold(const tech::MosModelCard& card, double vbs) const {
  const double phiEff = std::max(card.phi - vbs, 0.05);
  return card.vto + card.gamma * (std::sqrt(phiEff) - std::sqrt(card.phi));
}

namespace {
/// EKV interpolation function F(v) = ln^2(1 + exp(v / 2)).
double ekvF(double v) {
  const double l = softplus(v / 2.0, 1.0);
  return l * l;
}
}  // namespace

double EkvModel::saturationVoltage(const tech::MosModelCard& card, double vgs,
                                   double vbs, double tempK) const {
  const double vt = kBoltzmann * tempK / kElectronCharge;
  const double vg = vgs - vbs;
  const double vs = -vbs;
  const double vp = pinchOff(card, vg);
  const double iff = ekvF((vp - vs) / vt);
  return vt * (2.0 * std::sqrt(iff) + 4.0);
}

double EkvModel::forwardCurrent(const tech::MosModelCard& card, const MosGeometry& geo,
                                double vgs, double vds, double vbs,
                                double tempK) const {
  const double vt = kBoltzmann * tempK / kElectronCharge;
  // Bulk-referenced node voltages; the pinch-off uses the temperature-
  // shifted threshold.
  const double vg = vgs - vbs + (card.vto - card.vtoAt(tempK));
  const double vs = -vbs;
  const double vd = vds - vbs;

  const double vp = pinchOff(card, vg);
  const double n = slopeFactorAt(card, vp);
  const double leff = card.leff(geo.l);
  const double drive = std::max(vp - vs, 0.0);
  const double beta = card.kpAt(tempK) / (1.0 + card.theta * drive) * geo.w / leff;
  const double ispec = 2.0 * n * beta * vt * vt;

  const double iff = ekvF((vp - vs) / vt);
  const double irr = ekvF((vp - vd) / vt);
  double id = ispec * (iff - irr);

  // Channel-length modulation on the saturated excess drain voltage.
  const double vdsat = vt * (2.0 * std::sqrt(iff) + 4.0);
  const double va = card.earlyPerMeter * leff;
  id *= 1.0 + softplus(vds - vdsat, 2.0 * vt) / va;
  return id;
}

void EkvModel::forwardCurrentBatch(const tech::MosModelCard& card, const MosGeometry& geo,
                                   const double* vgs, const double* vds, const double* vbs,
                                   double* idOut, std::size_t n, double tempK) const {
  // Same hoisting contract as the Level-1 batch: invariants out, per-point
  // operation order preserved bit-for-bit.
  const double vt = kBoltzmann * tempK / kElectronCharge;
  const double dvto = card.vto - card.vtoAt(tempK);
  const double kpT = card.kpAt(tempK);
  const double leff = card.leff(geo.l);
  const double va = card.earlyPerMeter * leff;
  for (std::size_t i = 0; i < n; ++i) {
    const double vg = vgs[i] - vbs[i] + dvto;
    const double vs = -vbs[i];
    const double vd = vds[i] - vbs[i];

    const double vp = pinchOff(card, vg);
    const double nf = slopeFactorAt(card, vp);
    const double drive = std::max(vp - vs, 0.0);
    const double beta = kpT / (1.0 + card.theta * drive) * geo.w / leff;
    const double ispec = 2.0 * nf * beta * vt * vt;

    const double iff = ekvF((vp - vs) / vt);
    const double irr = ekvF((vp - vd) / vt);
    double id = ispec * (iff - irr);

    const double vdsat = vt * (2.0 * std::sqrt(iff) + 4.0);
    id *= 1.0 + softplus(vds[i] - vdsat, 2.0 * vt) / va;
    idOut[i] = id;
  }
}

}  // namespace lo::device
