#include "device/folding.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tech/units.hpp"

namespace lo::device {

double capReductionFactor(int nf, DiffusionPosition position) {
  if (nf < 1) throw std::invalid_argument("capReductionFactor: nf must be >= 1");
  if (nf == 1) return 1.0;
  const double n = nf;
  if (nf % 2 == 0) {
    return position == DiffusionPosition::kInternal ? 0.5 : (n + 2.0) / (2.0 * n);
  }
  return (n + 1.0) / (2.0 * n);
}

double effectiveDiffusionWidth(double w, int nf, DiffusionPosition position) {
  return w * capReductionFactor(nf, position);
}

namespace {

/// Numbers of internal and external diffusion strips owned by a terminal.
struct StripCount {
  int internal = 0;
  int external = 0;
};

struct StripSplit {
  StripCount drain;
  StripCount source;
};

StripSplit splitStrips(int nf, bool drainInternal) {
  StripSplit s;
  if (nf == 1) {
    s.drain = {0, 1};
    s.source = {0, 1};
  } else if (nf % 2 == 0) {
    // nf+1 strips; the terminal that starts the sequence owns both ends.
    if (drainInternal) {
      s.drain = {nf / 2, 0};
      s.source = {nf / 2 - 1, 2};
    } else {
      s.drain = {nf / 2 - 1, 2};
      s.source = {nf / 2, 0};
    }
  } else {
    // Odd nf: both terminals own (nf+1)/2 strips, exactly one external each.
    s.drain = {(nf + 1) / 2 - 1, 1};
    s.source = {(nf + 1) / 2 - 1, 1};
  }
  return s;
}

}  // namespace

void applyDiffusionGeometry(const tech::DesignRules& rules, const FoldPlan& plan,
                            MosGeometry& geo) {
  geo.nf = plan.nf;
  geo.w = plan.totalWidth;
  const double wf = plan.foldWidth;
  const double eExt = nmToMeters(rules.contactedDiffusionExtent());
  const double eInt = nmToMeters(rules.sharedContactedDiffusionExtent());

  const StripSplit s = splitStrips(plan.nf, plan.drainInternal);
  auto area = [&](const StripCount& c) {
    return (c.internal * eInt + c.external * eExt) * wf;
  };
  auto perim = [&](const StripCount& c) {
    // Internal strip: two strip ends.  External strip: two ends + the outer
    // edge parallel to the gate.  Gate-adjacent edges are excluded.
    return c.internal * 2.0 * eInt + c.external * (2.0 * eExt + wf);
  };
  geo.ad = area(s.drain);
  geo.as = area(s.source);
  geo.pd = perim(s.drain);
  geo.ps = perim(s.source);
}

FoldPlan planFoldsExact(const tech::DesignRules& rules, double w, int nf, FoldStyle style) {
  if (nf < 1) throw std::invalid_argument("planFoldsExact: nf must be >= 1");
  FoldPlan plan;
  plan.nf = nf;
  plan.style = style;
  // Snap the finger width to the layout grid; the tiny resulting width change
  // is the grid-quantisation effect the paper blames for the residual offset
  // voltage after folding (Table 1, case 2 note).
  const tech::Nm wfNm =
      std::max(rules.activeMinWidth,
               rules.snapNearest(static_cast<tech::Nm>(std::llround(w / nf * 1e9))));
  plan.foldWidth = nmToMeters(wfNm);
  plan.totalWidth = plan.foldWidth * nf;
  plan.drainInternal = (style == FoldStyle::kDrainInternal) && (nf % 2 == 0);
  return plan;
}

FoldPlan planFolds(const tech::DesignRules& rules, double w, double maxFoldWidth,
                   FoldStyle style) {
  if (w <= 0.0 || maxFoldWidth <= 0.0) {
    throw std::invalid_argument("planFolds: width arguments must be positive");
  }
  int nf = static_cast<int>(std::ceil(w / maxFoldWidth));
  if (style == FoldStyle::kDrainInternal) {
    // Internal drains need an even finger count (paper Fig. 2, case a); use
    // at least two fingers so the drain has an internal strip at all.
    nf = std::max(2, nf + (nf % 2));
  }
  // Never let a finger fall below the minimum active width.
  const double minW = nmToMeters(rules.activeMinWidth);
  while (nf > 1 && w / nf < minW) {
    nf -= (style == FoldStyle::kDrainInternal && nf > 2) ? 2 : 1;
  }
  nf = std::max(1, nf);
  return planFoldsExact(rules, w, nf, style);
}

void applyUnfoldedGeometry(const tech::DesignRules& rules, MosGeometry& geo) {
  FoldPlan plan;
  plan.nf = 1;
  plan.style = FoldStyle::kAlternating;
  plan.drainInternal = false;
  plan.foldWidth = geo.w;
  plan.totalWidth = geo.w;
  applyDiffusionGeometry(rules, plan, geo);
}

}  // namespace lo::device
