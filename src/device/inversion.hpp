// Model-inversion helpers used by the knowledge-based sizing procedures.
//
// COMDIAC fixes each transistor's operating point (effective gate drive and
// drain current) and derives geometry from it (paper, section 4).  These
// routines invert the device model for the quantities the design plans need:
// channel width for a target current, gate bias for a target current, and
// the gate drive that realises a target gm.
#pragma once

#include "device/mos_model.hpp"

namespace lo::device {

/// Width [m] such that the device carries |id| = `targetId` at the given
/// bias.  Exploits the strict W-proportionality of both models (one scaling
/// step, then a verification refinement).  `geo` supplies L and the junction
/// geometry template; its W is used as the starting point.
[[nodiscard]] double widthForCurrent(const MosModel& model, const tech::MosModelCard& card,
                                     MosGeometry geo, double targetId, double vgs,
                                     double vds, double vbs, double tempK = 300.15);

/// Polarity-normalised gate-source voltage at which the device carries
/// |id| = `targetId`.  Bisection over [0, vmax]; throws std::runtime_error
/// if the target is unreachable at vmax.
[[nodiscard]] double vgsForCurrent(const MosModel& model, const tech::MosModelCard& card,
                                   const MosGeometry& geo, double targetId, double vds,
                                   double vbs, double vmax, double tempK = 300.15);

/// Width [m] such that the device achieves transconductance `targetGm` while
/// carrying |id| = `targetId` in saturation: solves simultaneously for the
/// (W, VGS) pair by iterating vgsForCurrent and gm evaluation.
struct GmSizing {
  double w = 0.0;     ///< Required width [m].
  double vgs = 0.0;   ///< Normalised gate-source bias [V].
  double gm = 0.0;    ///< Achieved transconductance [S].
};
[[nodiscard]] GmSizing sizeForGm(const MosModel& model, const tech::MosModelCard& card,
                                 MosGeometry geo, double targetGm, double targetId,
                                 double vds, double vbs, double tempK = 300.15);

}  // namespace lo::device
