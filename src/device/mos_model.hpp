// MOS transistor models.
//
// Two models are provided behind one interface:
//   * Level1  - Shichman-Hodges square law with body effect, mobility
//     degradation, length-scaled Early voltage and a smooth subthreshold
//     tail (the classic SPICE levels 1-3 family the paper's tool supports).
//   * Ekv     - an EKV-style all-region charge model (the "advanced model"
//     counterpart of the paper's BSIM3v3/MM9 support).
//
// Both the sizing tool (src/sizing) and the simulator (src/sim) evaluate
// devices exclusively through this interface, reproducing the paper's key
// accuracy claim: "Accuracy with respect to simulation is greatly improved
// by using the same transistor models implemented in the latter."
#pragma once

#include <cstddef>
#include <memory>
#include <string_view>

#include "device/mos_op.hpp"
#include "tech/model_card.hpp"

namespace lo::device {

class MosModel {
 public:
  virtual ~MosModel() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Threshold voltage magnitude at bulk-source bias `vbs` (normalised,
  /// i.e. vbs is <= 0 in normal operation for both polarities).
  [[nodiscard]] virtual double threshold(const tech::MosModelCard& card, double vbs) const = 0;

  /// Drain current of a polarity-normalised device (NMOS conventions,
  /// arbitrary vds sign handled by source/drain symmetry).  [A]
  [[nodiscard]] double currentNormalized(const tech::MosModelCard& card,
                                         const MosGeometry& geo, double vgs, double vds,
                                         double vbs, double tempK) const;

  /// Batched currentNormalized over `n` bias points of one device: applies
  /// the source/drain symmetry per point, then evaluates the whole block
  /// through forwardCurrentBatch so bias-independent card terms are hoisted
  /// out of the inner loop.  Each output is bit-identical to the scalar
  /// call; evaluate()'s derivative stencil runs through this path.
  void currentNormalizedBatch(const tech::MosModelCard& card, const MosGeometry& geo,
                              const double* vgs, const double* vds, const double* vbs,
                              double* idOut, std::size_t n, double tempK) const;

  /// Drain terminal current with real polarity: pass actual terminal
  /// voltages; PMOS returns negative current in normal operation.  [A]
  [[nodiscard]] double drainCurrent(const tech::MosModelCard& card, const MosGeometry& geo,
                                    double vgs, double vds, double vbs,
                                    double tempK = 300.15) const;

  /// Full DC + small-signal operating point (conductances by numeric
  /// differentiation of the current equation, Meyer gate capacitances,
  /// bias-dependent junction capacitances, thermal + flicker noise PSDs).
  [[nodiscard]] MosOpPoint evaluate(const tech::MosModelCard& card, const MosGeometry& geo,
                                    double vgs, double vds, double vbs,
                                    double tempK = 300.15) const;

  /// evaluate() with polarity-normalised voltages (positive for a conducting
  /// device of either type); the returned op still carries real signs.
  [[nodiscard]] MosOpPoint evaluateNormalized(const tech::MosModelCard& card,
                                              const MosGeometry& geo, double vgs,
                                              double vds, double vbs,
                                              double tempK = 300.15) const {
    const double p = card.polarity();
    return evaluate(card, geo, p * vgs, p * vds, p * vbs, tempK);
  }

  /// Factory: "level1" or "ekv"; throws std::invalid_argument otherwise.
  [[nodiscard]] static std::unique_ptr<MosModel> create(std::string_view name);

 protected:
  /// Forward-mode current (vds >= 0, polarity-normalised).  [A]
  [[nodiscard]] virtual double forwardCurrent(const tech::MosModelCard& card,
                                              const MosGeometry& geo, double vgs,
                                              double vds, double vbs,
                                              double tempK) const = 0;

  /// Forward-mode current over `n` bias points (all vds >= 0).  The base
  /// implementation loops forwardCurrent; models override it with a
  /// branch-light loop that hoists every bias-independent term while
  /// keeping the per-point operation order identical to the scalar path
  /// (the batch-vs-scalar property test locks this down bit-for-bit).
  virtual void forwardCurrentBatch(const tech::MosModelCard& card, const MosGeometry& geo,
                                   const double* vgs, const double* vds, const double* vbs,
                                   double* idOut, std::size_t n, double tempK) const;

  /// Saturation voltage of the normalised device at this bias [V].
  [[nodiscard]] virtual double saturationVoltage(const tech::MosModelCard& card,
                                                 double vgs, double vbs,
                                                 double tempK) const = 0;
};

/// SPICE-level-1-class square-law model.
class Level1Model final : public MosModel {
 public:
  [[nodiscard]] std::string_view name() const override { return "level1"; }
  [[nodiscard]] double threshold(const tech::MosModelCard& card, double vbs) const override;

 protected:
  [[nodiscard]] double forwardCurrent(const tech::MosModelCard& card, const MosGeometry& geo,
                                      double vgs, double vds, double vbs,
                                      double tempK) const override;
  void forwardCurrentBatch(const tech::MosModelCard& card, const MosGeometry& geo,
                           const double* vgs, const double* vds, const double* vbs,
                           double* idOut, std::size_t n, double tempK) const override;
  [[nodiscard]] double saturationVoltage(const tech::MosModelCard& card, double vgs,
                                         double vbs, double tempK) const override;
};

/// EKV-style all-region model.
class EkvModel final : public MosModel {
 public:
  [[nodiscard]] std::string_view name() const override { return "ekv"; }
  [[nodiscard]] double threshold(const tech::MosModelCard& card, double vbs) const override;

  /// Pinch-off voltage VP for a bulk-referenced gate voltage [V].
  [[nodiscard]] static double pinchOff(const tech::MosModelCard& card, double vg);
  /// Slope factor n at pinch-off voltage vp.
  [[nodiscard]] static double slopeFactorAt(const tech::MosModelCard& card, double vp);

 protected:
  [[nodiscard]] double forwardCurrent(const tech::MosModelCard& card, const MosGeometry& geo,
                                      double vgs, double vds, double vbs,
                                      double tempK) const override;
  void forwardCurrentBatch(const tech::MosModelCard& card, const MosGeometry& geo,
                           const double* vgs, const double* vds, const double* vbs,
                           double* idOut, std::size_t n, double tempK) const override;
  [[nodiscard]] double saturationVoltage(const tech::MosModelCard& card, double vgs,
                                         double vbs, double tempK) const override;
};

}  // namespace lo::device
