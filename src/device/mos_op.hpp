// MOS device geometry and DC operating-point records.
//
// MosGeometry carries everything layout-dependent about a device instance:
// drawn W/L, the fold plan, and the source/drain diffusion area/perimeter
// figures the junction-capacitance model needs.  MosOpPoint is the full
// small-signal picture at a bias point; it is produced identically by the
// sizing tool and the simulator (shared model code).
#pragma once

#include <string>

namespace lo::device {

/// Which side of a folded transistor a diffusion terminal occupies.
/// Internal diffusions are shared between two gate fingers and have roughly
/// half the capacitance per unit width (paper, Fig. 2 discussion).
enum class DiffusionPosition {
  kInternal,  ///< Terminal uses only shared (inter-finger) strips.
  kExternal,  ///< Terminal uses the two outer strips as well.
};

/// Physical geometry of one MOS instance as the layout determines it.
struct MosGeometry {
  double w = 10e-6;   ///< Total drawn channel width [m] (sum over folds).
  double l = 1e-6;    ///< Drawn channel length [m].
  int nf = 1;         ///< Number of folds (gate fingers), >= 1.

  // Junction geometry (set by the fold planner or defaulted for nf = 1).
  double ad = 0.0;    ///< Drain diffusion area [m^2].
  double as = 0.0;    ///< Source diffusion area [m^2].
  double pd = 0.0;    ///< Drain diffusion sidewall perimeter [m] (gate edge excluded).
  double ps = 0.0;    ///< Source diffusion sidewall perimeter [m].

  /// Width per fold [m].
  [[nodiscard]] double foldWidth() const { return w / nf; }
};

enum class MosRegion { kCutoff, kWeak, kTriode, kSaturation };

[[nodiscard]] constexpr const char* regionName(MosRegion r) {
  switch (r) {
    case MosRegion::kCutoff: return "cutoff";
    case MosRegion::kWeak: return "weak";
    case MosRegion::kTriode: return "triode";
    case MosRegion::kSaturation: return "saturation";
  }
  return "?";
}

/// Complete DC + small-signal operating point of one MOS device.
/// Sign conventions follow the device polarity: `id` is the current into the
/// drain terminal (negative for PMOS in normal operation).
struct MosOpPoint {
  double id = 0.0;     ///< Drain terminal current [A].
  double vgs = 0.0;    ///< Applied gate-source voltage [V].
  double vds = 0.0;    ///< Applied drain-source voltage [V].
  double vbs = 0.0;    ///< Applied bulk-source voltage [V].
  double vth = 0.0;    ///< Threshold voltage at this bias [V] (signed).
  double veff = 0.0;   ///< Effective gate drive |VGS| - |VTH| [V].
  double vdsat = 0.0;  ///< Saturation voltage [V] (magnitude).
  MosRegion region = MosRegion::kCutoff;

  // Small-signal conductances (all positive magnitudes) [S].
  double gm = 0.0;
  double gds = 0.0;
  double gmb = 0.0;

  // Small-signal capacitances [F] (intrinsic + overlap for the gate ones,
  // bias-dependent junction for the bulk ones).
  double cgs = 0.0;
  double cgd = 0.0;
  double cgb = 0.0;
  double cdb = 0.0;
  double csb = 0.0;

  // Noise power spectral densities referred to a drain-source current
  // source: thermal is white [A^2/Hz]; flicker is flickerCoeff / f.
  double thermalNoisePsd = 0.0;
  double flickerCoeff = 0.0;

  /// gm / ID efficiency [1/V]; 0 if the device is off.
  [[nodiscard]] double gmOverId() const {
    const double absId = id < 0 ? -id : id;
    return absId > 0.0 ? gm / absId : 0.0;
  }
};

}  // namespace lo::device
