#include "service/serialize.hpp"

#include <stdexcept>

namespace lo::service {

namespace {

// One row per OtaPerformance member; keeps toJson/fromJson and the field
// list in a single place.
struct PerfField {
  const char* name;
  double sizing::OtaPerformance::* member;
};

constexpr PerfField kPerfFields[] = {
    {"dc_gain_db", &sizing::OtaPerformance::dcGainDb},
    {"gbw_hz", &sizing::OtaPerformance::gbwHz},
    {"phase_margin_deg", &sizing::OtaPerformance::phaseMarginDeg},
    {"slew_rate_v_per_us", &sizing::OtaPerformance::slewRateVPerUs},
    {"cmrr_db", &sizing::OtaPerformance::cmrrDb},
    {"offset_mv", &sizing::OtaPerformance::offsetMv},
    {"output_resistance_mohm", &sizing::OtaPerformance::outputResistanceMOhm},
    {"input_noise_uv", &sizing::OtaPerformance::inputNoiseUv},
    {"thermal_noise_density_nv", &sizing::OtaPerformance::thermalNoiseDensityNv},
    {"flicker_noise_uv", &sizing::OtaPerformance::flickerNoiseUv},
    {"power_mw", &sizing::OtaPerformance::powerMw},
    {"psrr_db", &sizing::OtaPerformance::psrrDb},
    {"settling_time_ns", &sizing::OtaPerformance::settlingTimeNs},
};

struct SpecField {
  const char* name;
  double sizing::OtaSpecs::* member;
};

constexpr SpecField kSpecFields[] = {
    {"vdd", &sizing::OtaSpecs::vdd},
    {"gbw", &sizing::OtaSpecs::gbw},
    {"phase_margin_deg", &sizing::OtaSpecs::phaseMarginDeg},
    {"cload", &sizing::OtaSpecs::cload},
    {"input_cm_low", &sizing::OtaSpecs::inputCmLow},
    {"input_cm_high", &sizing::OtaSpecs::inputCmHigh},
    {"output_low", &sizing::OtaSpecs::outputLow},
    {"output_high", &sizing::OtaSpecs::outputHigh},
    // Extended spec surface judged by the post-layout verification tier.
    {"thd_max_percent", &sizing::OtaSpecs::thdMaxPercent},
    {"psrr_min_db", &sizing::OtaSpecs::psrrMinDb},
    {"offset_max_mv", &sizing::OtaSpecs::offsetMaxMv},
};

}  // namespace

Json toJson(const sizing::OtaPerformance& perf) {
  Json j = Json::object();
  for (const PerfField& f : kPerfFields) j.set(f.name, perf.*(f.member));
  return j;
}

sizing::OtaPerformance performanceFromJson(const Json& j) {
  sizing::OtaPerformance perf;
  for (const PerfField& f : kPerfFields) perf.*(f.member) = j.at(f.name).asDouble();
  return perf;
}

namespace {

core::ConvergenceVerdict verdictFromName(const std::string& name) {
  for (const core::ConvergenceVerdict v :
       {core::ConvergenceVerdict::kConverged, core::ConvergenceVerdict::kOscillating,
        core::ConvergenceVerdict::kDrifting}) {
    if (name == core::convergenceVerdictName(v)) return v;
  }
  throw std::invalid_argument("unknown convergence verdict \"" + name + "\"");
}

Json toJson(const core::ConvergenceReport& report) {
  Json j = Json::object();
  j.set("verdict", core::convergenceVerdictName(report.verdict));
  j.set("loop_ran", report.loopRan);
  j.set("worst_residual", report.worstResidual);
  Json deltas = Json::array();
  for (const double d : report.callDeltas) deltas.push(d);
  j.set("call_deltas", std::move(deltas));
  j.set("cycle_length", report.cycleLength);
  return j;
}

core::ConvergenceReport convergenceFromJson(const Json& j) {
  core::ConvergenceReport report;
  report.verdict = verdictFromName(j.at("verdict").asString());
  report.loopRan = j.at("loop_ran").asBool();
  report.worstResidual = j.at("worst_residual").asDouble();
  for (const Json& d : j.at("call_deltas").items()) {
    report.callDeltas.push_back(d.asDouble());
  }
  report.cycleLength = j.at("cycle_length").asInt();
  return report;
}

struct ExtendedField {
  const char* name;
  double verify::ExtendedMeasures::* member;
};

constexpr ExtendedField kExtendedFields[] = {
    {"thd_percent", &verify::ExtendedMeasures::thdPercent},
    {"psrr_db", &verify::ExtendedMeasures::psrrDb},
    {"output_swing_low", &verify::ExtendedMeasures::outputSwingLow},
    {"output_swing_high", &verify::ExtendedMeasures::outputSwingHigh},
    {"icmr_low", &verify::ExtendedMeasures::icmrLow},
    {"icmr_high", &verify::ExtendedMeasures::icmrHigh},
    {"offset_mv", &verify::ExtendedMeasures::offsetMv},
};

Json toJson(const verify::ExtendedMeasures& m) {
  Json j = Json::object();
  for (const ExtendedField& f : kExtendedFields) j.set(f.name, m.*(f.member));
  return j;
}

verify::ExtendedMeasures extendedFromJson(const Json& j) {
  verify::ExtendedMeasures m;
  for (const ExtendedField& f : kExtendedFields) m.*(f.member) = j.at(f.name).asDouble();
  return m;
}

}  // namespace

Json toJson(const verify::VerificationReport& report) {
  Json j = Json::object();
  j.set("ran", report.ran);
  j.set("pass", report.pass);
  j.set("pre_layout", toJson(report.preLayout));
  j.set("post_layout", toJson(report.postLayout));
  j.set("pre_extended", toJson(report.preExtended));
  j.set("post_extended", toJson(report.postExtended));
  Json deltas = Json::array();
  for (const verify::SpecDelta& d : report.deltas) {
    Json row = Json::object();
    row.set("name", d.name);
    row.set("pre_layout", d.preLayout);
    row.set("post_layout", d.postLayout);
    row.set("limit", d.limit);
    row.set("constrained", d.constrained);
    row.set("pass", d.pass);
    deltas.push(std::move(row));
  }
  j.set("deltas", std::move(deltas));
  return j;
}

verify::VerificationReport verificationFromJson(const Json& j) {
  verify::VerificationReport report;
  report.ran = j.at("ran").asBool();
  report.pass = j.at("pass").asBool();
  report.preLayout = performanceFromJson(j.at("pre_layout"));
  report.postLayout = performanceFromJson(j.at("post_layout"));
  report.preExtended = extendedFromJson(j.at("pre_extended"));
  report.postExtended = extendedFromJson(j.at("post_extended"));
  for (const Json& row : j.at("deltas").items()) {
    verify::SpecDelta d;
    d.name = row.at("name").asString();
    d.preLayout = row.at("pre_layout").asDouble();
    d.postLayout = row.at("post_layout").asDouble();
    d.limit = row.at("limit").asDouble();
    d.constrained = row.at("constrained").asBool();
    d.pass = row.at("pass").asBool();
    report.deltas.push_back(std::move(d));
  }
  return report;
}

Json toJson(const core::EngineResult& result) {
  Json j = Json::object();
  Json nets = Json::array();
  for (const std::string& net : result.criticalNets) nets.push(net);
  j.set("critical_nets", std::move(nets));
  Json iterations = Json::array();
  for (const core::EngineIteration& it : result.iterations) {
    Json row = Json::object();
    row.set("layout_call", it.layoutCall);
    Json caps = Json::array();
    for (const double c : it.netCaps) caps.push(c);
    row.set("net_caps", std::move(caps));
    row.set("primary_current", it.primaryCurrent);
    row.set("pair_width", it.pairWidth);
    iterations.push(std::move(row));
  }
  j.set("iterations", std::move(iterations));
  j.set("layout_calls", result.layoutCalls);
  j.set("parasitic_converged", result.parasiticConverged);
  j.set("convergence", toJson(result.convergence));
  j.set("layout_width_um", result.layoutWidthUm);
  j.set("layout_height_um", result.layoutHeightUm);
  j.set("predicted", toJson(result.predicted));
  j.set("measured", toJson(result.measured));
  // Only present when the post-layout tier ran: results from existing
  // configurations keep their exact bytes (differential-oracle contract).
  if (result.verification.ran) {
    j.set("verification", toJson(result.verification));
  }
  return j;
}

core::EngineResult resultFromJson(const Json& j) {
  core::EngineResult result;
  for (const Json& net : j.at("critical_nets").items()) {
    result.criticalNets.push_back(net.asString());
  }
  for (const Json& row : j.at("iterations").items()) {
    core::EngineIteration it;
    it.layoutCall = row.at("layout_call").asInt();
    for (const Json& c : row.at("net_caps").items()) it.netCaps.push_back(c.asDouble());
    it.primaryCurrent = row.at("primary_current").asDouble();
    it.pairWidth = row.at("pair_width").asDouble();
    result.iterations.push_back(std::move(it));
  }
  result.layoutCalls = j.at("layout_calls").asInt();
  result.parasiticConverged = j.at("parasitic_converged").asBool();
  result.convergence = convergenceFromJson(j.at("convergence"));
  result.layoutWidthUm = j.at("layout_width_um").asDouble();
  result.layoutHeightUm = j.at("layout_height_um").asDouble();
  result.predicted = performanceFromJson(j.at("predicted"));
  result.measured = performanceFromJson(j.at("measured"));
  if (const Json* verification = j.find("verification")) {
    result.verification = verificationFromJson(*verification);
  }
  return result;
}

Json toJson(const sizing::OtaSpecs& specs) {
  Json j = Json::object();
  for (const SpecField& f : kSpecFields) j.set(f.name, specs.*(f.member));
  return j;
}

const std::vector<std::string>& specFieldNames() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const SpecField& f : kSpecFields) out.emplace_back(f.name);
    return out;
  }();
  return names;
}

void setSpecField(sizing::OtaSpecs& specs, const std::string& name, double value) {
  for (const SpecField& f : kSpecFields) {
    if (name == f.name) {
      specs.*(f.member) = value;
      return;
    }
  }
  throw std::invalid_argument("unknown spec field \"" + name + "\"");
}

double specField(const sizing::OtaSpecs& specs, const std::string& name) {
  for (const SpecField& f : kSpecFields) {
    if (name == f.name) return specs.*(f.member);
  }
  throw std::invalid_argument("unknown spec field \"" + name + "\"");
}

void specsFromJson(const Json& j, sizing::OtaSpecs& specs) {
  if (!j.isObject()) throw std::invalid_argument("\"spec\" must be a JSON object");
  for (const auto& [key, value] : j.members()) {
    bool known = false;
    for (const SpecField& f : kSpecFields) {
      if (key == f.name) {
        specs.*(f.member) = value.asDouble();
        known = true;
        break;
      }
    }
    if (!known) throw std::invalid_argument("unknown spec field \"" + key + "\"");
  }
}

Json toJson(const JobRequest& request) {
  const core::EngineOptions& o = request.options;
  Json j = Json::object();
  j.set("label", request.label);
  j.set("topology", o.topology);
  j.set("case", core::sizingCaseName(o.sizingCase));
  j.set("model", o.modelName);
  j.set("bias", o.includeBiasGenerator);
  j.set("max_layout_calls", o.maxLayoutCalls);
  j.set("convergence_tol", o.convergenceTol);
  const sizing::VerifyOptions& v = o.verifyOptions;
  Json verify = Json::object();
  verify.set("f_start", v.fStart);
  verify.set("f_stop", v.fStop);
  verify.set("points_per_decade", v.pointsPerDecade);
  verify.set("tran_step", v.tranStep);
  verify.set("tran_stop", v.tranStop);
  verify.set("step_amplitude", v.stepAmplitude);
  j.set("verify", std::move(verify));
  // Gated on enabled so journals written by verification-free configs keep
  // their exact bytes.
  if (o.postLayoutVerify.enabled) {
    const ::lo::verify::VerificationOptions& pv = o.postLayoutVerify;
    Json plv = Json::object();
    plv.set("enabled", true);
    plv.set("rel_tolerance", pv.relTolerance);
    plv.set("thd_fundamental_hz", pv.thdFundamentalHz);
    plv.set("thd_amplitude_v", pv.thdAmplitudeV);
    plv.set("thd_settle_cycles", pv.thdSettleCycles);
    plv.set("thd_cycles", pv.thdCycles);
    plv.set("thd_samples_per_cycle", pv.thdSamplesPerCycle);
    plv.set("harmonics", pv.harmonics);
    plv.set("sweep_points", pv.sweepPoints);
    plv.set("tracking_tolerance", pv.trackingTolerance);
    j.set("post_layout_verify", std::move(plv));
  }
  j.set("spec", toJson(request.specs));
  j.set("corner", tech::cornerName(request.corner));
  j.set("priority", request.priority);
  j.set("deadline_seconds", request.deadlineSeconds);
  j.set("max_retries", request.maxRetries);
  j.set("no_cache", request.bypassCache);
  return j;
}

JobRequest jobRequestFromJson(const Json& j) {
  JobRequest request;
  request.label = j.at("label").asString();
  core::EngineOptions& o = request.options;
  o.topology = j.at("topology").asString();
  o.sizingCase = sizingCaseFromJson(j.at("case"));
  o.modelName = j.at("model").asString();
  o.includeBiasGenerator = j.at("bias").asBool();
  o.maxLayoutCalls = j.at("max_layout_calls").asInt();
  o.convergenceTol = j.at("convergence_tol").asDouble();
  const Json& verify = j.at("verify");
  sizing::VerifyOptions& v = o.verifyOptions;
  v.fStart = verify.at("f_start").asDouble();
  v.fStop = verify.at("f_stop").asDouble();
  v.pointsPerDecade = verify.at("points_per_decade").asInt();
  v.tranStep = verify.at("tran_step").asDouble();
  v.tranStop = verify.at("tran_stop").asDouble();
  v.stepAmplitude = verify.at("step_amplitude").asDouble();
  if (const Json* plv = j.find("post_layout_verify")) {
    ::lo::verify::VerificationOptions& pv = o.postLayoutVerify;
    pv.enabled = plv->at("enabled").asBool();
    pv.relTolerance = plv->at("rel_tolerance").asDouble();
    pv.thdFundamentalHz = plv->at("thd_fundamental_hz").asDouble();
    pv.thdAmplitudeV = plv->at("thd_amplitude_v").asDouble();
    pv.thdSettleCycles = plv->at("thd_settle_cycles").asInt();
    pv.thdCycles = plv->at("thd_cycles").asInt();
    pv.thdSamplesPerCycle = plv->at("thd_samples_per_cycle").asInt();
    pv.harmonics = plv->at("harmonics").asInt();
    pv.sweepPoints = plv->at("sweep_points").asInt();
    pv.trackingTolerance = plv->at("tracking_tolerance").asDouble();
  }
  specsFromJson(j.at("spec"), request.specs);
  request.corner = cornerFromName(j.at("corner").asString());
  request.priority = j.at("priority").asInt();
  request.deadlineSeconds = j.at("deadline_seconds").asDouble();
  request.maxRetries = j.at("max_retries").asInt();
  request.bypassCache = j.at("no_cache").asBool();
  return request;
}

core::SizingCase sizingCaseFromJson(const Json& j) {
  const std::string text =
      j.type() == Json::Type::kNumber ? "case" + std::to_string(j.asInt())
                                      : j.asString();
  for (const core::SizingCase c :
       {core::SizingCase::kCase1, core::SizingCase::kCase2, core::SizingCase::kCase3,
        core::SizingCase::kCase4}) {
    if (text == core::sizingCaseName(c)) return c;
  }
  throw std::invalid_argument("unknown sizing case \"" + text +
                              "\" (expected 1..4 or \"case1\"..\"case4\")");
}

tech::ProcessCorner cornerFromName(const std::string& name) {
  for (const tech::ProcessCorner c :
       {tech::ProcessCorner::kTypical, tech::ProcessCorner::kSlow,
        tech::ProcessCorner::kFast, tech::ProcessCorner::kSlowNFastP,
        tech::ProcessCorner::kFastNSlowP}) {
    if (name == tech::cornerName(c)) return c;
  }
  throw std::invalid_argument("unknown process corner \"" + name +
                              "\" (expected tt/ss/ff/sf/fs)");
}

}  // namespace lo::service
