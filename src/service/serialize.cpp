#include "service/serialize.hpp"

#include <stdexcept>

namespace lo::service {

namespace {

// One row per OtaPerformance member; keeps toJson/fromJson and the field
// list in a single place.
struct PerfField {
  const char* name;
  double sizing::OtaPerformance::* member;
};

constexpr PerfField kPerfFields[] = {
    {"dc_gain_db", &sizing::OtaPerformance::dcGainDb},
    {"gbw_hz", &sizing::OtaPerformance::gbwHz},
    {"phase_margin_deg", &sizing::OtaPerformance::phaseMarginDeg},
    {"slew_rate_v_per_us", &sizing::OtaPerformance::slewRateVPerUs},
    {"cmrr_db", &sizing::OtaPerformance::cmrrDb},
    {"offset_mv", &sizing::OtaPerformance::offsetMv},
    {"output_resistance_mohm", &sizing::OtaPerformance::outputResistanceMOhm},
    {"input_noise_uv", &sizing::OtaPerformance::inputNoiseUv},
    {"thermal_noise_density_nv", &sizing::OtaPerformance::thermalNoiseDensityNv},
    {"flicker_noise_uv", &sizing::OtaPerformance::flickerNoiseUv},
    {"power_mw", &sizing::OtaPerformance::powerMw},
    {"psrr_db", &sizing::OtaPerformance::psrrDb},
    {"settling_time_ns", &sizing::OtaPerformance::settlingTimeNs},
};

struct SpecField {
  const char* name;
  double sizing::OtaSpecs::* member;
};

constexpr SpecField kSpecFields[] = {
    {"vdd", &sizing::OtaSpecs::vdd},
    {"gbw", &sizing::OtaSpecs::gbw},
    {"phase_margin_deg", &sizing::OtaSpecs::phaseMarginDeg},
    {"cload", &sizing::OtaSpecs::cload},
    {"input_cm_low", &sizing::OtaSpecs::inputCmLow},
    {"input_cm_high", &sizing::OtaSpecs::inputCmHigh},
    {"output_low", &sizing::OtaSpecs::outputLow},
    {"output_high", &sizing::OtaSpecs::outputHigh},
};

}  // namespace

Json toJson(const sizing::OtaPerformance& perf) {
  Json j = Json::object();
  for (const PerfField& f : kPerfFields) j.set(f.name, perf.*(f.member));
  return j;
}

sizing::OtaPerformance performanceFromJson(const Json& j) {
  sizing::OtaPerformance perf;
  for (const PerfField& f : kPerfFields) perf.*(f.member) = j.at(f.name).asDouble();
  return perf;
}

namespace {

core::ConvergenceVerdict verdictFromName(const std::string& name) {
  for (const core::ConvergenceVerdict v :
       {core::ConvergenceVerdict::kConverged, core::ConvergenceVerdict::kOscillating,
        core::ConvergenceVerdict::kDrifting}) {
    if (name == core::convergenceVerdictName(v)) return v;
  }
  throw std::invalid_argument("unknown convergence verdict \"" + name + "\"");
}

Json toJson(const core::ConvergenceReport& report) {
  Json j = Json::object();
  j.set("verdict", core::convergenceVerdictName(report.verdict));
  j.set("loop_ran", report.loopRan);
  j.set("worst_residual", report.worstResidual);
  Json deltas = Json::array();
  for (const double d : report.callDeltas) deltas.push(d);
  j.set("call_deltas", std::move(deltas));
  j.set("cycle_length", report.cycleLength);
  return j;
}

core::ConvergenceReport convergenceFromJson(const Json& j) {
  core::ConvergenceReport report;
  report.verdict = verdictFromName(j.at("verdict").asString());
  report.loopRan = j.at("loop_ran").asBool();
  report.worstResidual = j.at("worst_residual").asDouble();
  for (const Json& d : j.at("call_deltas").items()) {
    report.callDeltas.push_back(d.asDouble());
  }
  report.cycleLength = j.at("cycle_length").asInt();
  return report;
}

}  // namespace

Json toJson(const core::EngineResult& result) {
  Json j = Json::object();
  Json nets = Json::array();
  for (const std::string& net : result.criticalNets) nets.push(net);
  j.set("critical_nets", std::move(nets));
  Json iterations = Json::array();
  for (const core::EngineIteration& it : result.iterations) {
    Json row = Json::object();
    row.set("layout_call", it.layoutCall);
    Json caps = Json::array();
    for (const double c : it.netCaps) caps.push(c);
    row.set("net_caps", std::move(caps));
    row.set("primary_current", it.primaryCurrent);
    row.set("pair_width", it.pairWidth);
    iterations.push(std::move(row));
  }
  j.set("iterations", std::move(iterations));
  j.set("layout_calls", result.layoutCalls);
  j.set("parasitic_converged", result.parasiticConverged);
  j.set("convergence", toJson(result.convergence));
  j.set("layout_width_um", result.layoutWidthUm);
  j.set("layout_height_um", result.layoutHeightUm);
  j.set("predicted", toJson(result.predicted));
  j.set("measured", toJson(result.measured));
  return j;
}

core::EngineResult resultFromJson(const Json& j) {
  core::EngineResult result;
  for (const Json& net : j.at("critical_nets").items()) {
    result.criticalNets.push_back(net.asString());
  }
  for (const Json& row : j.at("iterations").items()) {
    core::EngineIteration it;
    it.layoutCall = row.at("layout_call").asInt();
    for (const Json& c : row.at("net_caps").items()) it.netCaps.push_back(c.asDouble());
    it.primaryCurrent = row.at("primary_current").asDouble();
    it.pairWidth = row.at("pair_width").asDouble();
    result.iterations.push_back(std::move(it));
  }
  result.layoutCalls = j.at("layout_calls").asInt();
  result.parasiticConverged = j.at("parasitic_converged").asBool();
  result.convergence = convergenceFromJson(j.at("convergence"));
  result.layoutWidthUm = j.at("layout_width_um").asDouble();
  result.layoutHeightUm = j.at("layout_height_um").asDouble();
  result.predicted = performanceFromJson(j.at("predicted"));
  result.measured = performanceFromJson(j.at("measured"));
  return result;
}

Json toJson(const sizing::OtaSpecs& specs) {
  Json j = Json::object();
  for (const SpecField& f : kSpecFields) j.set(f.name, specs.*(f.member));
  return j;
}

const std::vector<std::string>& specFieldNames() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const SpecField& f : kSpecFields) out.emplace_back(f.name);
    return out;
  }();
  return names;
}

void setSpecField(sizing::OtaSpecs& specs, const std::string& name, double value) {
  for (const SpecField& f : kSpecFields) {
    if (name == f.name) {
      specs.*(f.member) = value;
      return;
    }
  }
  throw std::invalid_argument("unknown spec field \"" + name + "\"");
}

double specField(const sizing::OtaSpecs& specs, const std::string& name) {
  for (const SpecField& f : kSpecFields) {
    if (name == f.name) return specs.*(f.member);
  }
  throw std::invalid_argument("unknown spec field \"" + name + "\"");
}

void specsFromJson(const Json& j, sizing::OtaSpecs& specs) {
  if (!j.isObject()) throw std::invalid_argument("\"spec\" must be a JSON object");
  for (const auto& [key, value] : j.members()) {
    bool known = false;
    for (const SpecField& f : kSpecFields) {
      if (key == f.name) {
        specs.*(f.member) = value.asDouble();
        known = true;
        break;
      }
    }
    if (!known) throw std::invalid_argument("unknown spec field \"" + key + "\"");
  }
}

Json toJson(const JobRequest& request) {
  const core::EngineOptions& o = request.options;
  Json j = Json::object();
  j.set("label", request.label);
  j.set("topology", o.topology);
  j.set("case", core::sizingCaseName(o.sizingCase));
  j.set("model", o.modelName);
  j.set("bias", o.includeBiasGenerator);
  j.set("max_layout_calls", o.maxLayoutCalls);
  j.set("convergence_tol", o.convergenceTol);
  const sizing::VerifyOptions& v = o.verifyOptions;
  Json verify = Json::object();
  verify.set("f_start", v.fStart);
  verify.set("f_stop", v.fStop);
  verify.set("points_per_decade", v.pointsPerDecade);
  verify.set("tran_step", v.tranStep);
  verify.set("tran_stop", v.tranStop);
  verify.set("step_amplitude", v.stepAmplitude);
  j.set("verify", std::move(verify));
  j.set("spec", toJson(request.specs));
  j.set("corner", tech::cornerName(request.corner));
  j.set("priority", request.priority);
  j.set("deadline_seconds", request.deadlineSeconds);
  j.set("max_retries", request.maxRetries);
  j.set("no_cache", request.bypassCache);
  return j;
}

JobRequest jobRequestFromJson(const Json& j) {
  JobRequest request;
  request.label = j.at("label").asString();
  core::EngineOptions& o = request.options;
  o.topology = j.at("topology").asString();
  o.sizingCase = sizingCaseFromJson(j.at("case"));
  o.modelName = j.at("model").asString();
  o.includeBiasGenerator = j.at("bias").asBool();
  o.maxLayoutCalls = j.at("max_layout_calls").asInt();
  o.convergenceTol = j.at("convergence_tol").asDouble();
  const Json& verify = j.at("verify");
  sizing::VerifyOptions& v = o.verifyOptions;
  v.fStart = verify.at("f_start").asDouble();
  v.fStop = verify.at("f_stop").asDouble();
  v.pointsPerDecade = verify.at("points_per_decade").asInt();
  v.tranStep = verify.at("tran_step").asDouble();
  v.tranStop = verify.at("tran_stop").asDouble();
  v.stepAmplitude = verify.at("step_amplitude").asDouble();
  specsFromJson(j.at("spec"), request.specs);
  request.corner = cornerFromName(j.at("corner").asString());
  request.priority = j.at("priority").asInt();
  request.deadlineSeconds = j.at("deadline_seconds").asDouble();
  request.maxRetries = j.at("max_retries").asInt();
  request.bypassCache = j.at("no_cache").asBool();
  return request;
}

core::SizingCase sizingCaseFromJson(const Json& j) {
  const std::string text =
      j.type() == Json::Type::kNumber ? "case" + std::to_string(j.asInt())
                                      : j.asString();
  for (const core::SizingCase c :
       {core::SizingCase::kCase1, core::SizingCase::kCase2, core::SizingCase::kCase3,
        core::SizingCase::kCase4}) {
    if (text == core::sizingCaseName(c)) return c;
  }
  throw std::invalid_argument("unknown sizing case \"" + text +
                              "\" (expected 1..4 or \"case1\"..\"case4\")");
}

tech::ProcessCorner cornerFromName(const std::string& name) {
  for (const tech::ProcessCorner c :
       {tech::ProcessCorner::kTypical, tech::ProcessCorner::kSlow,
        tech::ProcessCorner::kFast, tech::ProcessCorner::kSlowNFastP,
        tech::ProcessCorner::kFastNSlowP}) {
    if (name == tech::cornerName(c)) return c;
  }
  throw std::invalid_argument("unknown process corner \"" + name +
                              "\" (expected tt/ss/ff/sf/fs)");
}

}  // namespace lo::service
