#include "service/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace lo::service {

void Json::set(const std::string& key, Json v) {
  type_ = Type::kObject;
  for (auto& [k, value] : object_) {
    if (k == key) {
      value = std::move(v);
      return;
    }
  }
  object_.emplace_back(key, std::move(v));
}

const Json* Json::find(const std::string& key) const {
  for (const auto& [k, value] : object_) {
    if (k == key) return &value;
  }
  return nullptr;
}

const Json& Json::at(const std::string& key) const {
  static const Json kNull;
  const Json* found = find(key);
  return found ? *found : kNull;
}

std::string Json::formatNumber(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no inf/nan.
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

namespace {

void escapeInto(const std::string& s, std::string& out) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dumpInto(const Json& j, std::string& out) {
  switch (j.type()) {
    case Json::Type::kNull: out += "null"; break;
    case Json::Type::kBool: out += j.asBool() ? "true" : "false"; break;
    case Json::Type::kNumber: out += Json::formatNumber(j.asDouble()); break;
    case Json::Type::kString: escapeInto(j.asString(), out); break;
    case Json::Type::kArray: {
      out += '[';
      bool first = true;
      for (const Json& item : j.items()) {
        if (!first) out += ',';
        first = false;
        dumpInto(item, out);
      }
      out += ']';
      break;
    }
    case Json::Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, value] : j.members()) {
        if (!first) out += ',';
        first = false;
        escapeInto(key, out);
        out += ':';
        dumpInto(value, out);
      }
      out += '}';
      break;
    }
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json document() {
    const Json value = parseValue();
    skipWs();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw JsonParseError("JSON parse error at offset " + std::to_string(pos_) +
                         ": " + why);
  }

  void skipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      fail("expected \"" + std::string(literal) + "\"");
    }
    pos_ += literal.size();
  }

  Json parseValue() {
    skipWs();
    switch (peek()) {
      case '{': return parseObject();
      case '[': return parseArray();
      case '"': return Json(parseString());
      case 't': expect("true"); return Json(true);
      case 'f': expect("false"); return Json(false);
      case 'n': expect("null"); return Json();
      default: return parseNumber();
    }
  }

  Json parseObject() {
    ++pos_;  // '{'
    Json obj = Json::object();
    skipWs();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skipWs();
      if (peek() != '"') fail("expected object key string");
      std::string key = parseString();
      skipWs();
      if (peek() != ':') fail("expected ':' after object key");
      ++pos_;
      obj.set(key, parseValue());
      skipWs();
      const char c = peek();
      ++pos_;
      if (c == '}') return obj;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Json parseArray() {
    ++pos_;  // '['
    Json arr = Json::array();
    skipWs();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push(parseValue());
      skipWs();
      const char c = peek();
      ++pos_;
      if (c == ']') return arr;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parseString() {
    ++pos_;  // opening quote
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs unsupported).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape character");
      }
    }
  }

  Json parseNumber() {
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' || c == 'e' ||
          c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("malformed number");
    return Json(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string Json::dump() const {
  std::string out;
  dumpInto(*this, out);
  return out;
}

Json Json::parse(std::string_view text) { return Parser(text).document(); }

}  // namespace lo::service
