#include "service/verify_ops.hpp"

#include "service/serialize.hpp"

namespace lo::service {

void installVerifyOps(ServiceProtocol& protocol, JobScheduler& scheduler) {
  protocol.registerOp("verify", [&scheduler](const Json& request) {
    JobRequest job = parseJobRequest(request);
    // The op's whole point is the post-layout tier; any tuning from the
    // request's "post_layout_verify" object is kept, only the switch is
    // forced.
    job.options.postLayoutVerify.enabled = true;
    const std::uint64_t id = scheduler.submit(job);
    const JobStatus status = scheduler.wait(id);

    Json out = Json::object();
    out.set("ok", true);
    out.set("id", status.id);
    if (!status.label.empty()) out.set("label", status.label);
    out.set("state", jobStateName(status.state));
    out.set("cache_hit", status.cacheHit);
    if (!status.cacheKey.empty()) out.set("cache_key", status.cacheKey);
    if (status.state == JobState::kDone) {
      const verify::VerificationReport& report = status.result.verification;
      out.set("post_layout_ran", report.ran);
      if (report.ran) {
        out.set("post_layout_pass", report.pass);
        out.set("verification", toJson(report));
      }
      if (!request.at("summary").asBool()) {
        out.set("result", toJson(status.result));
      }
    } else if (!status.error.empty()) {
      out.set("error", status.error);
    }
    return out;
  });
}

}  // namespace lo::service
