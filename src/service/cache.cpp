#include "service/cache.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "service/serialize.hpp"

namespace lo::service {

namespace {

/// Bumped whenever the canonical text or the stored JSON layout changes,
/// so stale disk entries miss instead of misparsing.
constexpr int kCacheSchemaVersion = 2;

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

std::string CacheOptions::defaultDiskDir() {
  if (const char* dir = std::getenv("LOS_CACHE_DIR")) return dir;
  if (const char* xdg = std::getenv("XDG_CACHE_HOME")) {
    return std::string(xdg) + "/lo_service";
  }
  if (const char* home = std::getenv("HOME")) {
    return std::string(home) + "/.cache/lo_service";
  }
  return ".lo_service_cache";
}

ResultCache::ResultCache(CacheOptions options) : options_(std::move(options)) {
  if (options_.capacity == 0) options_.capacity = 1;
  if (!options_.diskDir.empty()) {
    std::filesystem::create_directories(options_.diskDir);
  }
}

std::uint64_t ResultCache::fnv1a(std::string_view text) {
  std::uint64_t hash = 14695981039346656037ull;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

std::string ResultCache::techFingerprint(const tech::Technology& t) {
  return hex64(fnv1a(t.toText()));
}

std::string ResultCache::canonicalText(const core::EngineOptions& options,
                                       const sizing::OtaSpecs& specs,
                                       tech::ProcessCorner corner,
                                       const std::string& techPrint) {
  const auto num = [](double v) { return Json::formatNumber(v); };
  std::ostringstream out;
  out << "v" << kCacheSchemaVersion
      << "|topology=" << options.topology
      << "|case=" << core::sizingCaseName(options.sizingCase)
      << "|model=" << options.modelName
      << "|bias=" << (options.includeBiasGenerator ? 1 : 0)
      << "|max_layout_calls=" << options.maxLayoutCalls
      << "|tol=" << num(options.convergenceTol);
  const sizing::VerifyOptions& v = options.verifyOptions;
  out << "|verify=" << num(v.fStart) << "," << num(v.fStop) << ","
      << v.pointsPerDecade << "," << num(v.tranStep) << "," << num(v.tranStop)
      << "," << num(v.stepAmplitude);
  out << "|spec=" << num(specs.vdd) << "," << num(specs.gbw) << ","
      << num(specs.phaseMarginDeg) << "," << num(specs.cload) << ","
      << num(specs.inputCmLow) << "," << num(specs.inputCmHigh) << ","
      << num(specs.outputLow) << "," << num(specs.outputHigh);
  out << "|corner=" << tech::cornerName(corner) << "|tech=" << techPrint;
  return out.str();
}

std::string ResultCache::keyFor(const core::EngineOptions& options,
                                const sizing::OtaSpecs& specs,
                                tech::ProcessCorner corner,
                                const std::string& techPrint) {
  return hex64(fnv1a(canonicalText(options, specs, corner, techPrint)));
}

std::optional<core::EngineResult> ResultCache::lookup(const std::string& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);  // Refresh recency.
    ++stats_.hits;
    return it->second->second;
  }
  if (!options_.diskDir.empty()) {
    const std::filesystem::path path =
        std::filesystem::path(options_.diskDir) / (key + ".json");
    std::ifstream in(path);
    if (in) {
      std::ostringstream text;
      text << in.rdbuf();
      try {
        core::EngineResult result = resultFromJson(Json::parse(text.str()));
        insertLocked(key, result);
        ++stats_.hits;
        ++stats_.diskHits;
        return result;
      } catch (const std::exception&) {
        // Corrupt / stale entry: treat as a miss and let the insert
        // overwrite it.
      }
    }
  }
  ++stats_.misses;
  return std::nullopt;
}

void ResultCache::insert(const std::string& key, const core::EngineResult& result) {
  const std::lock_guard<std::mutex> lock(mutex_);
  insertLocked(key, result);
  if (!options_.diskDir.empty()) {
    const std::filesystem::path path =
        std::filesystem::path(options_.diskDir) / (key + ".json");
    // Write-then-rename so a concurrent reader never sees a half file.
    const std::filesystem::path tmp = path.string() + ".tmp";
    {
      std::ofstream out(tmp, std::ios::trunc);
      out << toJson(result).dump() << "\n";
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (!ec) ++stats_.diskWrites;
  }
}

void ResultCache::insertLocked(const std::string& key,
                               const core::EngineResult& result) {
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = result;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, result);
  index_[key] = lru_.begin();
  ++stats_.inserts;
  while (lru_.size() > options_.capacity) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

CacheStats ResultCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t ResultCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

void ResultCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
}

}  // namespace lo::service
