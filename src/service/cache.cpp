#include "service/cache.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "service/serialize.hpp"

namespace lo::service {

namespace {

/// Bumped whenever the canonical text or the stored JSON layout changes,
/// so stale disk entries miss instead of misparsing.
constexpr int kCacheSchemaVersion = 3;  // v3: EngineResult carries ConvergenceReport.

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

/// Write `text` to `path` durably: fwrite + fflush + fsync before close,
/// so the subsequent rename publishes a file whose bytes have actually
/// reached the device.  Returns false on any I/O failure.
bool writeDurably(const std::filesystem::path& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  ok = std::fflush(f) == 0 && ok;
#ifndef _WIN32
  ok = fsync(fileno(f)) == 0 && ok;
#endif
  ok = std::fclose(f) == 0 && ok;
  return ok;
}

/// Per-writer unique temp path for `path`.  Multiple daemons share one
/// store directory (the cluster's peer-fill contract), so the staging file
/// must be unique per process *and* per in-process writer: two writers
/// racing the same fixed ".tmp" name would interleave into a corrupt file
/// and publish it with a rename.  pid + a process-wide counter keeps every
/// staging write private until its atomic rename.
std::filesystem::path uniqueTmpPath(const std::filesystem::path& path) {
  static std::atomic<std::uint64_t> counter{0};
#ifndef _WIN32
  const long pid = static_cast<long>(::getpid());
#else
  const long pid = 0;
#endif
  return path.string() + "." + std::to_string(pid) + "." +
         std::to_string(counter.fetch_add(1, std::memory_order_relaxed)) +
         ".tmp";
}

}  // namespace

std::string CacheOptions::defaultDiskDir() {
  if (const char* dir = std::getenv("LOS_CACHE_DIR")) return dir;
  if (const char* xdg = std::getenv("XDG_CACHE_HOME")) {
    return std::string(xdg) + "/lo_service";
  }
  if (const char* home = std::getenv("HOME")) {
    return std::string(home) + "/.cache/lo_service";
  }
  return ".lo_service_cache";
}

ResultCache::ResultCache(CacheOptions options) : options_(std::move(options)) {
  if (options_.capacity == 0) options_.capacity = 1;
  if (!options_.diskDir.empty()) {
    std::filesystem::create_directories(options_.diskDir);
  }
}

std::uint64_t ResultCache::fnv1a(std::string_view text) {
  std::uint64_t hash = 14695981039346656037ull;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

std::string ResultCache::techFingerprint(const tech::Technology& t) {
  return hex64(fnv1a(t.toText()));
}

std::string ResultCache::canonicalText(const core::EngineOptions& options,
                                       const sizing::OtaSpecs& specs,
                                       tech::ProcessCorner corner,
                                       const std::string& techPrint) {
  const auto num = [](double v) { return Json::formatNumber(v); };
  std::ostringstream out;
  out << "v" << kCacheSchemaVersion
      << "|topology=" << options.topology
      << "|case=" << core::sizingCaseName(options.sizingCase)
      << "|model=" << options.modelName
      << "|bias=" << (options.includeBiasGenerator ? 1 : 0)
      << "|max_layout_calls=" << options.maxLayoutCalls
      << "|tol=" << num(options.convergenceTol);
  const sizing::VerifyOptions& v = options.verifyOptions;
  out << "|verify=" << num(v.fStart) << "," << num(v.fStop) << ","
      << v.pointsPerDecade << "," << num(v.tranStep) << "," << num(v.tranStop)
      << "," << num(v.stepAmplitude);
  out << "|spec=" << num(specs.vdd) << "," << num(specs.gbw) << ","
      << num(specs.phaseMarginDeg) << "," << num(specs.cload) << ","
      << num(specs.inputCmLow) << "," << num(specs.inputCmHigh) << ","
      << num(specs.outputLow) << "," << num(specs.outputHigh);
  // Gated segments: configurations that never touch the extended spec axes
  // or the post-layout tier keep their pre-existing keys (so warm caches
  // stay warm across the upgrade), while any non-default use gets its own
  // key space.
  if (specs.thdMaxPercent != 0.0 || specs.psrrMinDb != 0.0 ||
      specs.offsetMaxMv != 0.0) {
    out << "|xspec=" << num(specs.thdMaxPercent) << ","
        << num(specs.psrrMinDb) << "," << num(specs.offsetMaxMv);
  }
  const ::lo::verify::VerificationOptions& pv = options.postLayoutVerify;
  if (pv.enabled) {
    out << "|plv=" << num(pv.relTolerance) << "," << num(pv.thdFundamentalHz)
        << "," << num(pv.thdAmplitudeV) << "," << pv.thdSettleCycles << ","
        << pv.thdCycles << "," << pv.thdSamplesPerCycle << "," << pv.harmonics
        << "," << pv.sweepPoints << "," << num(pv.trackingTolerance);
  }
  out << "|corner=" << tech::cornerName(corner) << "|tech=" << techPrint;
  return out.str();
}

std::string ResultCache::keyFor(const core::EngineOptions& options,
                                const sizing::OtaSpecs& specs,
                                tech::ProcessCorner corner,
                                const std::string& techPrint) {
  return hex64(fnv1a(canonicalText(options, specs, corner, techPrint)));
}

std::optional<core::EngineResult> ResultCache::lookup(const std::string& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);  // Refresh recency.
    ++stats_.hits;
    return it->second->second;
  }
  if (!options_.diskDir.empty()) {
    const std::filesystem::path path =
        std::filesystem::path(options_.diskDir) / (key + ".json");
    std::ifstream in(path);
    if (in) {
      std::ostringstream text;
      text << in.rdbuf();
      try {
        core::EngineResult result = resultFromJson(Json::parse(text.str()));
        insertLocked(key, result);
        ++stats_.hits;
        ++stats_.diskHits;
        return result;
      } catch (const std::exception&) {
        // Corrupt / truncated / stale entry: treat as a miss and let the
        // insert overwrite it.  A half-written file from a crashed writer
        // must never poison the cache.
        ++stats_.diskCorrupt;
      }
    }
  }
  ++stats_.misses;
  return std::nullopt;
}

void ResultCache::insert(const std::string& key, const core::EngineResult& result) {
  const std::lock_guard<std::mutex> lock(mutex_);
  insertLocked(key, result);
  if (!options_.diskDir.empty()) {
    const std::filesystem::path path =
        std::filesystem::path(options_.diskDir) / (key + ".json");
    const std::string text = toJson(result).dump() + "\n";
    if (options_.diskWriteFault && options_.diskWriteFault(key)) {
      // Injected fault: leave the kind of wreckage a writer that died
      // mid-write (without the tmp-rename discipline) would -- a truncated
      // entry at the final path.  lookup() must treat it as a miss.
      (void)writeDurably(path, text.substr(0, text.size() / 2));
      ++stats_.diskWriteFailures;
      return;
    }
    // Durable write, then rename: fsync before publishing so a crash
    // between rename and writeback cannot surface a half file, and a
    // concurrent reader only ever sees complete entries.
    const std::filesystem::path tmp = uniqueTmpPath(path);
    bool ok = writeDurably(tmp, text);
    std::error_code ec;
    if (ok) {
      std::filesystem::rename(tmp, path, ec);
      ok = !ec;
    } else {
      std::filesystem::remove(tmp, ec);
    }
    if (ok) {
      ++stats_.diskWrites;
    } else {
      ++stats_.diskWriteFailures;
    }
  }
}

void ResultCache::insertLocked(const std::string& key,
                               const core::EngineResult& result) {
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = result;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, result);
  index_[key] = lru_.begin();
  ++stats_.inserts;
  while (lru_.size() > options_.capacity) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

CacheStats ResultCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t ResultCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

void ResultCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
}

}  // namespace lo::service
