#include "service/protocol.hpp"

#include <istream>
#include <ostream>

#include "core/topology.hpp"
#include "service/serialize.hpp"

namespace lo::service {

namespace {

Json errorResponse(const std::string& why) {
  Json out = Json::object();
  out.set("ok", false);
  out.set("error", why);
  return out;
}

/// Admission rejections answer with a machine-readable error object so
/// clients can distinguish "back off and retry" from a real failure.
Json structuredError(const std::string& code, const std::string& message,
                     std::size_t queueDepth, int retryAfterMs) {
  Json err = Json::object();
  err.set("code", code);
  err.set("message", message);
  err.set("queue_depth", static_cast<std::uint64_t>(queueDepth));
  err.set("retry_after_ms", retryAfterMs);
  Json out = Json::object();
  out.set("ok", false);
  out.set("error", std::move(err));
  return out;
}

}  // namespace

JobRequest parseJobRequest(const Json& request) {
  JobRequest job;
  job.label = request.at("label").asString();
  if (const Json* topology = request.find("topology")) {
    job.options.topology = topology->asString();
  }
  if (const Json* sizingCase = request.find("case")) {
    job.options.sizingCase = sizingCaseFromJson(*sizingCase);
  }
  if (const Json* model = request.find("model")) {
    job.options.modelName = model->asString();
  }
  if (const Json* bias = request.find("bias")) {
    job.options.includeBiasGenerator = bias->asBool();
  }
  if (const Json* spec = request.find("spec")) specsFromJson(*spec, job.specs);
  if (const Json* plv = request.find("post_layout_verify")) {
    // Accepts a bare bool for the common case and an object for tuning:
    // {"post_layout_verify": true} or
    // {"post_layout_verify": {"enabled": true, "rel_tolerance": 0.05, ...}}.
    verify::VerificationOptions& pv = job.options.postLayoutVerify;
    if (plv->isObject()) {
      pv.enabled = plv->at("enabled").asBool(true);
      if (const Json* f = plv->find("rel_tolerance")) pv.relTolerance = f->asDouble();
      if (const Json* f = plv->find("thd_fundamental_hz")) {
        pv.thdFundamentalHz = f->asDouble();
      }
      if (const Json* f = plv->find("thd_amplitude_v")) pv.thdAmplitudeV = f->asDouble();
      if (const Json* f = plv->find("thd_settle_cycles")) pv.thdSettleCycles = f->asInt();
      if (const Json* f = plv->find("thd_cycles")) pv.thdCycles = f->asInt();
      if (const Json* f = plv->find("thd_samples_per_cycle")) {
        pv.thdSamplesPerCycle = f->asInt();
      }
      if (const Json* f = plv->find("harmonics")) pv.harmonics = f->asInt();
      if (const Json* f = plv->find("sweep_points")) pv.sweepPoints = f->asInt();
      if (const Json* f = plv->find("tracking_tolerance")) {
        pv.trackingTolerance = f->asDouble();
      }
    } else {
      pv.enabled = plv->asBool();
    }
  }
  if (const Json* corner = request.find("corner")) {
    job.corner = cornerFromName(corner->asString());
  }
  job.priority = request.at("priority").asInt();
  job.deadlineSeconds = request.at("deadline_seconds").asDouble();
  job.maxRetries = request.at("max_retries").asInt();
  job.bypassCache = request.at("no_cache").asBool();
  return job;
}

std::string ServiceProtocol::handleLine(const std::string& line) {
  Json response;
  try {
    if (line.size() > kMaxRequestLineBytes) {
      response = errorResponse("request line too long (" +
                               std::to_string(line.size()) + " bytes, limit " +
                               std::to_string(kMaxRequestLineBytes) + ")");
    } else {
      response = handle(Json::parse(line));
    }
  } catch (const OverloadedError& e) {
    response = structuredError("overloaded", e.what(), e.queueDepth(),
                               e.retryAfterMs());
  } catch (const QueueFullError& e) {
    response = structuredError("queue_full", e.what(), e.queueDepth(), 0);
  } catch (const CircuitOpenError& e) {
    response = structuredError("circuit_open", e.what(),
                               scheduler_.queueDepth(), e.retryAfterMs());
  } catch (const std::exception& e) {
    response = errorResponse(e.what());
  }
  std::string text = response.dump();
  if (responseTransform_) text = responseTransform_(std::move(text));
  return text;
}

void ServiceProtocol::registerOp(const std::string& op, OpHandler handler) {
  if (!handler) throw std::invalid_argument("null handler for op \"" + op + "\"");
  static const char* kBuiltins[] = {"synthesize", "sweep",      "wait",
                                    "cancel",     "stats",      "health",
                                    "topologies", "shutdown"};
  for (const char* builtin : kBuiltins) {
    if (op == builtin) {
      throw std::invalid_argument("cannot override built-in op \"" + op + "\"");
    }
  }
  if (!extraOps_.emplace(op, std::move(handler)).second) {
    throw std::invalid_argument("op \"" + op + "\" is already registered");
  }
}

void ServiceProtocol::registerStatsSection(const std::string& key,
                                           StatsProvider provider) {
  if (!provider) {
    throw std::invalid_argument("null stats provider for \"" + key + "\"");
  }
  if (!statsSections_.emplace(key, std::move(provider)).second) {
    throw std::invalid_argument("stats section \"" + key +
                                "\" is already registered");
  }
}

void ServiceProtocol::serve(std::istream& in, std::ostream& out) {
  std::string line;
  while (!shutdown_ && std::getline(in, line)) {
    if (line.empty()) continue;
    out << handleLine(line) << "\n" << std::flush;
  }
}

Json ServiceProtocol::handle(const Json& request) {
  if (!request.isObject()) return errorResponse("request must be a JSON object");
  const std::string op = request.at("op").asString();
  if (op == "synthesize") return handleSynthesize(request);
  if (op == "sweep") return handleSweep(request);
  if (op == "stats") return handleStats();
  if (op == "health") return handleHealth();
  if (op == "wait") {
    const std::uint64_t id = request.at("id").asUint64();
    if (id == 0) return errorResponse("\"wait\" needs a numeric \"id\"");
    return outcomeJson(scheduler_.wait(id), request.at("trace").asBool(),
                       request.at("summary").asBool());
  }
  if (op == "cancel") {
    const std::uint64_t id = request.at("id").asUint64();
    if (id == 0) return errorResponse("\"cancel\" needs a numeric \"id\"");
    Json out = Json::object();
    out.set("ok", true);
    out.set("id", id);
    out.set("cancelled", scheduler_.cancel(id));
    return out;
  }
  if (op == "topologies") {
    Json names = Json::array();
    for (const std::string& name : core::TopologyRegistry::instance().names()) {
      names.push(name);
    }
    Json out = Json::object();
    out.set("ok", true);
    out.set("topologies", std::move(names));
    return out;
  }
  if (op == "shutdown") {
    shutdown_ = true;
    Json out = Json::object();
    out.set("ok", true);
    out.set("shutting_down", true);
    return out;
  }
  const auto extra = extraOps_.find(op);
  if (extra != extraOps_.end()) return extra->second(request);
  // Machine-readable like the admission rejections: routers and clients
  // can distinguish "this daemon does not speak the op" from a failure.
  Json knownOps = Json::array();
  for (const char* builtin :
       {"synthesize", "sweep", "wait", "cancel", "stats", "health",
        "topologies", "shutdown"}) {
    knownOps.push(builtin);
  }
  for (const auto& [name, handler] : extraOps_) knownOps.push(name);
  Json err = Json::object();
  err.set("code", "unknown_op");
  err.set("message", "unknown op \"" + op + "\"");
  err.set("known_ops", std::move(knownOps));
  Json out = Json::object();
  out.set("ok", false);
  out.set("error", std::move(err));
  return out;
}

Json ServiceProtocol::outcomeJson(const JobStatus& status, bool includeTrace,
                                  bool summary) const {
  Json out = Json::object();
  out.set("ok", true);
  out.set("id", status.id);
  if (!status.label.empty()) out.set("label", status.label);
  out.set("state", jobStateName(status.state));
  out.set("cache_hit", status.cacheHit);
  if (status.coalesced) out.set("coalesced", true);
  if (status.recovered) out.set("recovered", true);
  out.set("attempts", status.attempts);
  if (status.retries > 0) out.set("retries", status.retries);
  if (!status.cacheKey.empty()) out.set("cache_key", status.cacheKey);
  if (status.state == JobState::kDone) {
    if (!summary) out.set("result", toJson(status.result));
  } else if (!status.error.empty()) {
    out.set("error", status.error);
  }
  if (includeTrace) {
    out.set("trace", traceToJson(status.id, status.label,
                                 jobStateName(status.state), status.cacheHit,
                                 status.attempts, status.retries, status.trace));
  }
  return out;
}

Json ServiceProtocol::handleSynthesize(const Json& request) {
  const JobRequest job = parseJobRequest(request);
  const std::uint64_t id = scheduler_.submit(job);
  if (request.at("async").asBool()) {
    Json out = Json::object();
    out.set("ok", true);
    out.set("id", id);
    out.set("state", "queued");
    const std::string key = scheduler_.cacheKeyFor(job);
    if (!key.empty()) out.set("cache_key", key);
    return out;
  }
  return outcomeJson(scheduler_.wait(id), request.at("trace").asBool(),
                     request.at("summary").asBool());
}

Json ServiceProtocol::handleSweep(const Json& request) {
  const Json* jobsField = request.find("jobs");
  if (jobsField == nullptr || !jobsField->isArray()) {
    return errorResponse("\"sweep\" needs a \"jobs\" array");
  }
  std::vector<JobRequest> jobs;
  jobs.reserve(jobsField->items().size());
  for (const Json& entry : jobsField->items()) {
    jobs.push_back(parseJobRequest(entry));
  }
  const std::vector<JobStatus> statuses = scheduler_.runBatch(jobs);
  const bool includeTrace = request.at("trace").asBool();
  const bool summary = request.at("summary").asBool();
  Json outcomes = Json::array();
  for (const JobStatus& status : statuses) {
    outcomes.push(outcomeJson(status, includeTrace, summary));
  }
  Json out = Json::object();
  out.set("ok", true);
  out.set("outcomes", std::move(outcomes));
  return out;
}

Json ServiceProtocol::handleHealth() const {
  const HealthSnapshot h = scheduler_.health();
  Json queue = Json::object();
  queue.set("depth", static_cast<std::uint64_t>(h.queueDepth));
  queue.set("limit", static_cast<std::uint64_t>(h.queueLimit));
  queue.set("shed_depth", static_cast<std::uint64_t>(h.shedDepth));
  queue.set("running", static_cast<std::uint64_t>(h.running));
  queue.set("workers", h.workers);
  queue.set("overloaded", h.overloaded);

  Json breakers = Json::object();
  for (const BreakerSnapshot& b : h.breakers) {
    Json entry = Json::object();
    entry.set("state", b.state);
    entry.set("consecutive_failures", b.consecutiveFailures);
    entry.set("opens", b.opens);
    entry.set("rejections", b.rejections);
    breakers.set(b.topology, std::move(entry));
  }

  Json journal = Json::object();
  journal.set("enabled", h.journal.enabled);
  if (h.journal.enabled) {
    journal.set("records_in_log", h.journal.recordsInLog);
    journal.set("live_jobs", h.journal.liveJobs);
    journal.set("lag", h.journal.lag);
    journal.set("replayed_records", h.journal.replayedRecords);
    journal.set("recovered_jobs", h.journal.recoveredJobs);
    journal.set("recovered_remaining", h.journal.recoveredRemaining);
    journal.set("compactions", h.journal.compactions);
    journal.set("torn_tail_recovered", h.journal.tornTailRecovered);
  }

  Json health = Json::object();
  health.set("queue", std::move(queue));
  health.set("breakers", std::move(breakers));
  health.set("journal", std::move(journal));
  Json out = Json::object();
  out.set("ok", true);
  out.set("health", std::move(health));
  return out;
}

Json ServiceProtocol::handleStats() const {
  Json stats = metricsToJson(scheduler_.metrics(), scheduler_.cacheStats(),
                             scheduler_.queueDepth(), scheduler_.runningCount(),
                             scheduler_.workerCount());
  for (const auto& [key, provider] : statsSections_) stats.set(key, provider());
  Json out = Json::object();
  out.set("ok", true);
  out.set("stats", std::move(stats));
  return out;
}

}  // namespace lo::service
