#include "service/metrics.hpp"

namespace lo::service {

void ServiceMetrics::onSubmit() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++data_.submitted;
}

void ServiceMetrics::onRetry() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++data_.retries;
}

void ServiceMetrics::onCoalesced() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++data_.coalesced;
}

void ServiceMetrics::onOverloadRejected() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++data_.overloadRejections;
}

void ServiceMetrics::onBreakerRejected() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++data_.breakerRejections;
}

void ServiceMetrics::onBreakerOpened() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++data_.breakerOpens;
}

void ServiceMetrics::onRunning(std::size_t running) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (running > data_.maxRunning) data_.maxRunning = running;
}

void ServiceMetrics::onFinish(const std::string& state, const JobTrace& trace) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (state == "done") ++data_.completed;
  else if (state == "failed") ++data_.failed;
  else if (state == "cancelled") ++data_.cancelled;
  else if (state == "expired") ++data_.expired;
  else if (state == "shed") ++data_.shed;
  data_.totalQueueSeconds += trace.queueSeconds;
  data_.totalRunSeconds += trace.runSeconds;
  for (const StageTiming& st : trace.stages) {
    data_.stageSeconds[st.stage] += st.seconds;
    ++data_.stageCalls[st.stage];
  }
}

MetricsSnapshot ServiceMetrics::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return data_;
}

Json metricsToJson(const MetricsSnapshot& m, const CacheStats& cache,
                   std::size_t queueDepth, std::size_t running, int workers) {
  Json jobs = Json::object();
  jobs.set("submitted", m.submitted);
  jobs.set("completed", m.completed);
  jobs.set("failed", m.failed);
  jobs.set("cancelled", m.cancelled);
  jobs.set("expired", m.expired);
  jobs.set("shed", m.shed);
  jobs.set("retries", m.retries);
  jobs.set("coalesced", m.coalesced);
  jobs.set("overload_rejections", m.overloadRejections);
  jobs.set("breaker_rejections", m.breakerRejections);
  jobs.set("breaker_opens", m.breakerOpens);
  jobs.set("max_running", m.maxRunning);
  jobs.set("total_queue_seconds", m.totalQueueSeconds);
  jobs.set("total_run_seconds", m.totalRunSeconds);

  Json stages = Json::object();
  for (const auto& [stage, seconds] : m.stageSeconds) {
    Json entry = Json::object();
    entry.set("seconds", seconds);
    const auto calls = m.stageCalls.find(stage);
    entry.set("calls", calls == m.stageCalls.end() ? 0 : calls->second);
    stages.set(stage, std::move(entry));
  }

  Json cacheJson = Json::object();
  cacheJson.set("hits", cache.hits);
  cacheJson.set("misses", cache.misses);
  cacheJson.set("inserts", cache.inserts);
  cacheJson.set("evictions", cache.evictions);
  cacheJson.set("disk_hits", cache.diskHits);
  cacheJson.set("disk_writes", cache.diskWrites);
  cacheJson.set("disk_corrupt", cache.diskCorrupt);
  cacheJson.set("disk_write_failures", cache.diskWriteFailures);

  Json out = Json::object();
  out.set("jobs", std::move(jobs));
  out.set("stages", std::move(stages));
  out.set("cache", std::move(cacheJson));
  out.set("queue_depth", static_cast<std::uint64_t>(queueDepth));
  out.set("running", static_cast<std::uint64_t>(running));
  out.set("workers", workers);
  return out;
}

Json traceToJson(std::uint64_t id, const std::string& label,
                 const std::string& state, bool cacheHit, int attempts,
                 int retries, const JobTrace& trace) {
  Json out = Json::object();
  out.set("id", id);
  out.set("label", label);
  out.set("state", state);
  out.set("cache_hit", cacheHit);
  out.set("attempts", attempts);
  out.set("retries", retries);
  out.set("queue_seconds", trace.queueSeconds);
  out.set("run_seconds", trace.runSeconds);
  Json stages = Json::array();
  for (const StageTiming& st : trace.stages) {
    Json entry = Json::object();
    entry.set("stage", st.stage);
    entry.set("seconds", st.seconds);
    stages.push(std::move(entry));
  }
  out.set("stages", std::move(stages));
  return out;
}

}  // namespace lo::service
