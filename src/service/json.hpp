// Minimal JSON value type for the service layer: the result-cache disk
// store, the metrics snapshot and the losynthd line protocol all speak
// JSON, and the container must not grow third-party dependencies.
//
// Design points that matter here:
//  * Objects keep insertion order, so dump() output is deterministic and
//    two serialisations of the same value are byte-identical -- the
//    cache's cold-vs-warm byte-equality check rests on this.
//  * Numbers round-trip exactly: dump() prints integers as integers and
//    everything else with %.17g, which strtod() parses back to the same
//    IEEE double.  A result that goes through the disk store comes back
//    bit-identical.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lo::service {

/// Thrown by Json::parse on malformed input, with a character offset.
class JsonParseError : public std::runtime_error {
 public:
  explicit JsonParseError(const std::string& what) : std::runtime_error(what) {}
};

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double v) : type_(Type::kNumber), number_(v) {}
  Json(int v) : type_(Type::kNumber), number_(v) {}
  Json(std::int64_t v) : type_(Type::kNumber), number_(static_cast<double>(v)) {}
  Json(std::uint64_t v) : type_(Type::kNumber), number_(static_cast<double>(v)) {}
  Json(const char* s) : type_(Type::kString), string_(s) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}

  [[nodiscard]] static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  [[nodiscard]] static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool isNull() const { return type_ == Type::kNull; }
  [[nodiscard]] bool isObject() const { return type_ == Type::kObject; }
  [[nodiscard]] bool isArray() const { return type_ == Type::kArray; }

  /// Typed accessors with a fallback for absent / wrong-typed values.
  [[nodiscard]] bool asBool(bool fallback = false) const {
    return type_ == Type::kBool ? bool_ : fallback;
  }
  [[nodiscard]] double asDouble(double fallback = 0.0) const {
    return type_ == Type::kNumber ? number_ : fallback;
  }
  [[nodiscard]] int asInt(int fallback = 0) const {
    return type_ == Type::kNumber ? static_cast<int>(number_) : fallback;
  }
  [[nodiscard]] std::uint64_t asUint64(std::uint64_t fallback = 0) const {
    return type_ == Type::kNumber ? static_cast<std::uint64_t>(number_) : fallback;
  }
  [[nodiscard]] const std::string& asString(const std::string& fallback = {}) const {
    return type_ == Type::kString ? string_ : fallback;
  }

  /// Array access.
  [[nodiscard]] const std::vector<Json>& items() const { return array_; }
  void push(Json v) {
    type_ = Type::kArray;
    array_.push_back(std::move(v));
  }

  /// Object access.  set() appends or overwrites in place; find() returns
  /// nullptr when the key is absent; at() is find() with a null fallback.
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members() const {
    return object_;
  }
  void set(const std::string& key, Json v);
  [[nodiscard]] const Json* find(const std::string& key) const;
  [[nodiscard]] const Json& at(const std::string& key) const;

  /// Compact serialisation (no whitespace), deterministic member order.
  [[nodiscard]] std::string dump() const;

  /// Exact-round-trip number formatting shared with the cache key builder.
  [[nodiscard]] static std::string formatNumber(double v);

  /// Parse one JSON document; trailing non-whitespace is an error.
  [[nodiscard]] static Json parse(std::string_view text);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

}  // namespace lo::service
