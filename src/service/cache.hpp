// Content-addressed result cache for synthesis jobs.
//
// A job's identity is the canonical text of everything that influences its
// numbers -- topology name, sizing case, model, engine knobs, verify
// options, every spec field, process corner and a fingerprint of the full
// technology description -- hashed with 64-bit FNV-1a.  Anything that does
// not change the result (hooks, labels, priorities, deadlines) is
// deliberately excluded, so a re-submitted sweep point is a hit no matter
// how it is scheduled.
//
// Canonicalisation notes:
//  * fields are emitted in one fixed order, so construction order of the
//    caller's structs cannot matter;
//  * doubles are formatted with the exact-round-trip formatter
//    (Json::formatNumber), so 65e6 and 6.5e7 -- the same IEEE value --
//    produce the same key, while genuinely different values never collide
//    on formatting;
//  * a schema version is baked into the text so a layout change of the
//    cached record invalidates old disk entries instead of misparsing.
//
// Storage is a mutex-guarded in-memory LRU plus an optional on-disk JSON
// store (one file per key) for cross-process reuse: a miss falls through
// to disk before counting as a real miss, and every insert is written
// through.  The store is safe to share between daemons (the cluster's
// peer-fill path): staging files are pid/counter-uniquified before the
// fsync+rename, so concurrent writers of the same key can never
// interleave into one file, and the atomic rename means readers only ever
// see complete entries whichever writer publishes last.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "core/engine.hpp"
#include "core/sweep.hpp"

namespace lo::service {

struct CacheStats {
  std::uint64_t hits = 0;        ///< Served from memory or disk.
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
  std::uint64_t evictions = 0;   ///< LRU evictions from memory.
  std::uint64_t diskHits = 0;    ///< Subset of hits that came from disk.
  std::uint64_t diskWrites = 0;
  /// On-disk entries that failed to parse during lookup and were treated
  /// as misses (corrupt / truncated / stale-schema files).
  std::uint64_t diskCorrupt = 0;
  /// Store writes that failed (I/O error or an injected fault).
  std::uint64_t diskWriteFailures = 0;
};

struct CacheOptions {
  std::size_t capacity = 256;  ///< In-memory entries before LRU eviction.
  /// Directory for the write-through JSON store; empty disables disk.
  std::string diskDir;
  /// Test seam (testkit fault plans): consulted once per attempted disk
  /// store write with the entry's key.  Returning true makes the write
  /// fail the way a crashed writer would -- a truncated file lands at the
  /// final path without the atomic tmp-rename -- so the corrupt-entry
  /// tolerance of lookup() is exercised deterministically.
  std::function<bool(const std::string& key)> diskWriteFault;

  /// XDG-style default store location: $LOS_CACHE_DIR, else
  /// $XDG_CACHE_HOME/lo_service, else $HOME/.cache/lo_service, else
  /// ".lo_service_cache" when no environment is available.
  [[nodiscard]] static std::string defaultDiskDir();
};

class ResultCache {
 public:
  explicit ResultCache(CacheOptions options = {});

  /// 64-bit FNV-1a over `text`.
  [[nodiscard]] static std::uint64_t fnv1a(std::string_view text);

  /// Fingerprint of a full technology description (hash of its
  /// round-trippable text form), as fixed-width hex.
  [[nodiscard]] static std::string techFingerprint(const tech::Technology& t);

  /// The canonical pre-hash text for a job (exposed for tests; keys are
  /// its hash).  `techPrint` is techFingerprint() of the *base*
  /// technology; the corner is part of the text itself.
  [[nodiscard]] static std::string canonicalText(const core::EngineOptions& options,
                                                 const sizing::OtaSpecs& specs,
                                                 tech::ProcessCorner corner,
                                                 const std::string& techPrint);

  /// Content-addressed key (fixed-width hex of the canonical text's hash).
  [[nodiscard]] static std::string keyFor(const core::EngineOptions& options,
                                          const sizing::OtaSpecs& specs,
                                          tech::ProcessCorner corner,
                                          const std::string& techPrint);

  /// Look up a key, refreshing its LRU position; falls through to the disk
  /// store when configured.  std::nullopt counts one miss.
  [[nodiscard]] std::optional<core::EngineResult> lookup(const std::string& key);

  /// Insert (or refresh) a result; writes through to disk when configured.
  void insert(const std::string& key, const core::EngineResult& result);

  [[nodiscard]] CacheStats stats() const;
  [[nodiscard]] std::size_t size() const;
  void clear();  ///< Drops the memory tier only; disk entries survive.

  [[nodiscard]] const CacheOptions& options() const { return options_; }

 private:
  using LruList = std::list<std::pair<std::string, core::EngineResult>>;

  void insertLocked(const std::string& key, const core::EngineResult& result);

  CacheOptions options_;
  mutable std::mutex mutex_;
  LruList lru_;  ///< Front = most recently used.
  std::unordered_map<std::string, LruList::iterator> index_;
  CacheStats stats_;
};

}  // namespace lo::service
