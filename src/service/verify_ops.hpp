// The "verify" protocol op: a synthesize whose post-layout verification
// tier is always on, answering with the verification verdict up front so
// clients can gate on pass/fail without digging through the full result.
//
// Installed through ServiceProtocol::registerOp like the explore ops, so
// lo_service's core protocol keeps no dependency on when (or whether) the
// op is wired in -- losynthd installs it at startup, and cluster routers
// forward it to shards unchanged like any other registered op.
#pragma once

#include "service/protocol.hpp"

namespace lo::service {

/// Register the "verify" op on `protocol`.  Jobs are submitted through
/// `scheduler` with options.postLayoutVerify.enabled forced on; the
/// response mirrors a synchronous synthesize outcome plus
///   "post_layout_ran"   whether the tier produced a report
///   "post_layout_pass"  the report's verdict (absent when it never ran)
///   "verification"      the structured report (absent when it never ran)
/// {"summary":true} omits the full "result" body, keeping the verdict and
/// report.  Throws (-> {"ok":false,...}) on malformed requests.
void installVerifyOps(ServiceProtocol& protocol, JobScheduler& scheduler);

}  // namespace lo::service
