// JobScheduler: the request-serving shell over SynthesisEngine.
//
// A bounded submission queue feeds a worker pool; every job runs with the
// SweepDriver's isolation pattern (a private Technology at the job's
// corner, a private MosModel inside the engine), so workers share no
// mutable engine state.  On top of the plain pool the scheduler adds what
// a service needs and a batch driver does not:
//
//  * priorities -- higher runs first, FIFO within a priority class;
//  * per-job deadlines -- expired jobs are dropped before they run, and a
//    running job polls its deadline through EngineHooks::cancelRequested;
//  * cancellation -- queued jobs die immediately, running jobs abort at
//    the next engine cancellation poll;
//  * retry-on-transient-failure -- a TransientError re-runs the job in
//    place up to JobRequest::maxRetries times;
//  * the content-addressed ResultCache -- a popped job first consults the
//    cache, and identical jobs already running are *coalesced*: followers
//    park until the leader finishes and then share its result, so a
//    duplicate-heavy batch runs each distinct point exactly once;
//  * metrics + per-job traces (metrics.hpp) for the `stats` op and the
//    optional trace log.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/engine.hpp"
#include "service/cache.hpp"
#include "service/journal.hpp"
#include "service/metrics.hpp"

namespace lo::service {

/// Thrown by backends for failures worth retrying (and by test hooks to
/// exercise the retry path); any other exception fails the job at once.
class TransientError : public std::runtime_error {
 public:
  explicit TransientError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown by submit() when the queue is at SchedulerOptions::maxQueueDepth.
class QueueFullError : public std::runtime_error {
 public:
  explicit QueueFullError(std::size_t depth)
      : std::runtime_error("job queue is full (" + std::to_string(depth) +
                           " jobs queued)"),
        depth_(depth) {}

  [[nodiscard]] std::size_t queueDepth() const { return depth_; }

 protected:
  QueueFullError(const std::string& what, std::size_t depth)
      : std::runtime_error(what), depth_(depth) {}

 private:
  std::size_t depth_ = 0;
};

/// The admission-control rejection: the queue is past its shed watermark
/// and the incoming job's priority cannot displace anything queued.
/// Carries a retry hint so clients back off instead of hammering; derives
/// from QueueFullError so callers catching the old error keep working.
class OverloadedError : public QueueFullError {
 public:
  OverloadedError(std::size_t depth, int retryAfterMs)
      : QueueFullError("scheduler overloaded (" + std::to_string(depth) +
                           " jobs queued); retry in " +
                           std::to_string(retryAfterMs) + " ms",
                       depth),
        retryAfterMs_(retryAfterMs) {}

  [[nodiscard]] int retryAfterMs() const { return retryAfterMs_; }

 private:
  int retryAfterMs_ = 0;
};

/// Thrown by submit() while a topology's circuit breaker is open: the
/// engine failed non-transiently N times in a row for this topology, so
/// new work is refused until the half-open probe succeeds.
class CircuitOpenError : public std::runtime_error {
 public:
  CircuitOpenError(const std::string& topology, int retryAfterMs)
      : std::runtime_error("circuit breaker open for topology \"" + topology +
                           "\"; retry in " + std::to_string(retryAfterMs) +
                           " ms"),
        topology_(topology),
        retryAfterMs_(retryAfterMs) {}

  [[nodiscard]] const std::string& topology() const { return topology_; }
  [[nodiscard]] int retryAfterMs() const { return retryAfterMs_; }

 private:
  std::string topology_;
  int retryAfterMs_ = 0;
};

enum class JobState {
  kQueued, kRunning, kDone, kFailed, kCancelled, kExpired,
  kShed,  ///< Displaced from the queue by admission control under overload.
};

[[nodiscard]] constexpr const char* jobStateName(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
    case JobState::kExpired: return "expired";
    case JobState::kShed: return "shed";
  }
  return "?";
}

[[nodiscard]] constexpr bool isTerminal(JobState s) {
  return s == JobState::kDone || s == JobState::kFailed ||
         s == JobState::kCancelled || s == JobState::kExpired ||
         s == JobState::kShed;
}

struct JobRequest {
  std::string label;  ///< Free-form tag echoed into status and traces.
  core::EngineOptions options;
  sizing::OtaSpecs specs;
  tech::ProcessCorner corner = tech::ProcessCorner::kTypical;
  int priority = 0;            ///< Higher runs first; FIFO within a class.
  double deadlineSeconds = 0;  ///< From submission; 0 = no deadline.
  /// Re-runs after a TransientError.  Clamped at submit() to
  /// SchedulerOptions::maxRetryLimit, so a hostile or buggy client cannot
  /// pin a worker on a permanently-flaky job.
  int maxRetries = 0;
  bool bypassCache = false;    ///< Force a fresh engine run (still inserts).
};

/// Snapshot of one job, returned by status()/wait().
struct JobStatus {
  std::uint64_t id = 0;
  std::string label;
  JobState state = JobState::kQueued;
  /// Content-addressed result-cache key ("" for bypass-cache jobs); the
  /// protocol surfaces it so clients and routers address results -- and
  /// shard work -- without re-deriving the canonical hash.
  std::string cacheKey;
  bool cacheHit = false;   ///< Served from the cache (or a coalesced leader).
  bool coalesced = false;  ///< Waited on an identical in-flight job.
  int attempts = 0;        ///< Engine runs performed (0 for pure hits).
  int retries = 0;         ///< Transient-failure re-runs (attempts - 1 when > 0).
  std::string error;       ///< Exception text for kFailed.
  bool recovered = false;  ///< Re-enqueued from the journal at boot.
  core::EngineResult result;  ///< Valid for kDone.
  JobTrace trace;
};

struct SchedulerOptions {
  int threads = 0;  ///< Worker cap; 0 picks hardware_concurrency().
  std::size_t maxQueueDepth = 256;
  /// Hard ceiling on JobRequest::maxRetries (requests asking for more are
  /// clamped), bounding the worker time one flaky job can consume.
  int maxRetryLimit = 8;
  CacheOptions cache;
  /// Write-ahead job journal (journal.hpp).  journal.dir empty = off; set,
  /// the scheduler replays the log at construction, re-enqueues unfinished
  /// jobs under their original ids, and compacts once they drain.
  JournalOptions journal;
  /// Admission control: fraction of maxQueueDepth past which new work must
  /// displace a strictly-lower-priority queued job or be rejected with
  /// OverloadedError.  1.0 = shed only at the hard limit (legacy behaviour).
  double shedWatermark = 1.0;
  /// Per-topology circuit breaker: open after this many *consecutive*
  /// non-transient engine failures for one topology.  0 = disabled.
  int breakerFailureThreshold = 0;
  /// Seconds an open breaker waits before letting one half-open probe
  /// through.
  double breakerResetSeconds = 30.0;
  /// Append one JSON line per finished job to this path (empty = off).
  std::string traceLogPath;
  /// Test seam: runs before every engine attempt (outside the scheduler
  /// lock); may throw TransientError to exercise the retry path.
  std::function<void(const JobRequest&, int attempt)> preRunHook;
};

/// One topology's circuit-breaker state, for health().
struct BreakerSnapshot {
  std::string topology;
  std::string state;  ///< "closed" / "open" / "half_open".
  int consecutiveFailures = 0;
  std::uint64_t opens = 0;
  std::uint64_t rejections = 0;
};

/// Liveness/durability summary served by the `health` protocol op.
struct HealthSnapshot {
  std::size_t queueDepth = 0;
  std::size_t queueLimit = 0;
  std::size_t shedDepth = 0;  ///< Watermark in jobs; >= here sheds/rejects.
  std::size_t running = 0;
  int workers = 0;
  bool overloaded = false;  ///< queueDepth >= shedDepth right now.
  std::vector<BreakerSnapshot> breakers;
  struct Journal {
    bool enabled = false;
    std::uint64_t recordsInLog = 0;  ///< Frames since the last compaction.
    std::uint64_t liveJobs = 0;      ///< Non-terminal jobs in the scheduler.
    std::uint64_t lag = 0;           ///< recordsInLog - liveJobs: compaction debt.
    std::uint64_t replayedRecords = 0;  ///< Frames read at boot.
    std::uint64_t recoveredJobs = 0;    ///< Unfinished jobs re-enqueued at boot.
    std::uint64_t recoveredRemaining = 0;  ///< Recovered jobs not yet terminal.
    std::uint64_t compactions = 0;
    bool tornTailRecovered = false;  ///< Boot replay truncated a torn frame.
  } journal;
};

class JobScheduler {
 public:
  explicit JobScheduler(tech::Technology baseTech, SchedulerOptions options = {});
  /// Cancels queued jobs and joins the workers.  With a journal attached,
  /// acknowledged-but-unfinished jobs stay live in the log (compacted to
  /// exactly that set), so the next boot recovers them.
  ~JobScheduler();

  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  /// Enqueue a job; throws QueueFullError at maxQueueDepth.
  std::uint64_t submit(JobRequest request);

  /// Block until the job reaches a terminal state.
  [[nodiscard]] JobStatus wait(std::uint64_t id) const;

  /// Non-blocking snapshot; nullopt for an unknown id.
  [[nodiscard]] std::optional<JobStatus> status(std::uint64_t id) const;

  /// Request cancellation.  Queued and parked jobs finish as kCancelled
  /// immediately; a running job aborts at its next cancellation poll.
  /// Returns false when the job is unknown or already terminal.
  bool cancel(std::uint64_t id);

  /// Convenience batch driver: submit everything, wait for everything,
  /// return statuses in request order.
  [[nodiscard]] std::vector<JobStatus> runBatch(const std::vector<JobRequest>& requests);

  /// The cache key submit() would assign to `request` ("" when it bypasses
  /// the cache): ResultCache::keyFor against this scheduler's technology.
  [[nodiscard]] std::string cacheKeyFor(const JobRequest& request) const;

  [[nodiscard]] MetricsSnapshot metrics() const { return metrics_.snapshot(); }
  [[nodiscard]] CacheStats cacheStats() const { return cache_.stats(); }
  [[nodiscard]] ResultCache& cache() { return cache_; }
  [[nodiscard]] std::size_t queueDepth() const;
  [[nodiscard]] std::size_t runningCount() const;
  [[nodiscard]] int workerCount() const { return static_cast<int>(workers_.size()); }
  [[nodiscard]] const tech::Technology& baseTechnology() const { return baseTech_; }

  /// Queue, breaker and journal liveness, for the `health` protocol op.
  [[nodiscard]] HealthSnapshot health() const;
  /// The write-ahead journal, or nullptr when journalling is off.  Exposed
  /// for the fault-injection seams (testkit) and tests.
  [[nodiscard]] JobJournal* journal() { return journal_.get(); }

 private:
  using Clock = std::chrono::steady_clock;

  struct JobRecord {
    std::uint64_t id = 0;
    JobRequest request;
    std::string cacheKey;
    JobState state = JobState::kQueued;
    bool cacheHit = false;
    bool coalesced = false;
    bool cancelRequested = false;  ///< Guarded by mutex_; polled via hooks.
    int attempts = 0;
    int retries = 0;
    std::string error;
    core::EngineResult result;
    JobTrace trace;
    Clock::time_point submitted;
    Clock::time_point deadline;  ///< == time_point() when none.
    bool hasDeadline = false;
    bool recovered = false;        ///< Re-enqueued from the journal at boot.
    bool transientFailure = false;  ///< kFailed caused by a TransientError.
    bool breakerProbe = false;      ///< The half-open probe for its topology.
    /// Shutdown interrupted this acknowledged job before it finished: its
    /// terminal record is withheld from the journal and the destructor
    /// compacts it back in as a live submission, so the next boot
    /// recovers it (only honoured when it ends kCancelled).
    bool preserveInJournal = false;
  };
  using RecordPtr = std::shared_ptr<JobRecord>;

  /// Per-topology circuit breaker (guarded by mutex_).
  struct Breaker {
    enum class State { kClosed, kOpen, kHalfOpen };
    State state = State::kClosed;
    int consecutiveFailures = 0;
    Clock::time_point openedAt;
    bool probeInFlight = false;
    std::uint64_t opens = 0;
    std::uint64_t rejections = 0;
  };

  void workerLoop();
  void runJob(const RecordPtr& rec, std::unique_lock<std::mutex>& lock);
  /// Terminal transition; notifies waiters, updates metrics, logs a trace.
  void finishLocked(const RecordPtr& rec, JobState state, const std::string& error);
  void completeWaitersLocked(const std::string& key, const core::EngineResult& result);
  void requeueWaitersLocked(const std::string& key);
  [[nodiscard]] JobStatus snapshotLocked(const JobRecord& rec) const;
  [[nodiscard]] bool deadlinePassed(const JobRecord& rec) const {
    return rec.hasDeadline && Clock::now() >= rec.deadline;
  }

  /// Admission control for submit().  Throws CircuitOpenError /
  /// OverloadedError; on success returns the queued job the submission
  /// must displace (nullptr when the queue has room).  The caller sheds
  /// the victim only after the incoming job is journalled, so a failed
  /// append never destroys queued work for an admission that never
  /// happened.
  [[nodiscard]] RecordPtr admitLocked(const JobRequest& request, JobRecord& rec);
  /// The lowest-priority queued job strictly below `priority`, or nullptr
  /// when nothing can be displaced.
  [[nodiscard]] RecordPtr findShedVictimLocked(int priority) const;
  /// Terminally finish `victim` as kShed, displaced by `priority` work.
  void shedVictimLocked(const RecordPtr& victim, int priority);
  /// Return rec's half-open probe slot to its breaker, if it holds one.
  void releaseProbeLocked(JobRecord& rec);
  [[nodiscard]] std::size_t shedDepthLocked() const;
  [[nodiscard]] int retryAfterMsLocked() const;
  /// Breaker bookkeeping on a terminal transition.
  void breakerOnFinishLocked(const RecordPtr& rec, JobState state);
  /// Re-enqueue unfinished journalled jobs; runs in the constructor before
  /// the workers start.
  void replayJournal();
  void appendJournalLocked(JournalRecordType type, const JobRecord& rec);
  /// Rewrite the journal down to the live (non-terminal) job set.
  void compactJournalLocked();

  tech::Technology baseTech_;
  std::string techPrint_;
  SchedulerOptions options_;
  ResultCache cache_;
  ServiceMetrics metrics_;
  std::unique_ptr<JobJournal> journal_;

  mutable std::mutex mutex_;
  mutable std::condition_variable workCv_;   ///< Queue -> workers.
  mutable std::condition_variable doneCv_;   ///< Terminal transitions -> wait().
  std::map<std::uint64_t, RecordPtr> jobs_;
  /// Ready queue: (-priority, id) so begin() is highest priority, FIFO.
  std::set<std::pair<int, std::uint64_t>> ready_;
  std::unordered_map<std::string, std::uint64_t> inflight_;  ///< key -> leader.
  std::unordered_map<std::string, std::vector<std::uint64_t>> waiters_;
  std::size_t queued_ = 0;   ///< ready_ plus parked waiters.
  std::size_t running_ = 0;
  std::uint64_t nextId_ = 1;
  bool stopping_ = false;

  std::map<std::string, Breaker> breakers_;  ///< Keyed by topology.

  // Journal recovery bookkeeping (guarded by mutex_ after construction).
  std::uint64_t replayedRecords_ = 0;
  std::uint64_t recoveredJobs_ = 0;
  std::uint64_t recoveredRemaining_ = 0;
  bool tornTailRecovered_ = false;

  std::ofstream traceLog_;
  std::mutex traceMutex_;

  std::vector<std::thread> workers_;
};

}  // namespace lo::service
