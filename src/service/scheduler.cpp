#include "service/scheduler.hpp"

#include <algorithm>

namespace lo::service {

namespace {

double secondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

JobScheduler::JobScheduler(tech::Technology baseTech, SchedulerOptions options)
    : baseTech_(std::move(baseTech)),
      techPrint_(ResultCache::techFingerprint(baseTech_)),
      options_(std::move(options)),
      cache_(options_.cache) {
  if (!options_.traceLogPath.empty()) {
    traceLog_.open(options_.traceLogPath, std::ios::app);
  }
  int threads = options_.threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

JobScheduler::~JobScheduler() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    // Queued and parked jobs will never run; running jobs are asked to
    // abort at their next cancellation poll.
    for (auto& [id, rec] : jobs_) {
      if (rec->state == JobState::kQueued) {
        ready_.erase({-rec->request.priority, id});
        finishLocked(rec, JobState::kCancelled, "scheduler shut down");
      } else if (rec->state == JobState::kRunning) {
        rec->cancelRequested = true;
      }
    }
    waiters_.clear();
  }
  workCv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

std::uint64_t JobScheduler::submit(JobRequest request) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (stopping_) throw std::runtime_error("scheduler is shutting down");
  if (queued_ >= options_.maxQueueDepth) throw QueueFullError(queued_);

  auto rec = std::make_shared<JobRecord>();
  rec->id = nextId_++;
  rec->request = std::move(request);
  rec->request.maxRetries =
      std::clamp(rec->request.maxRetries, 0, options_.maxRetryLimit);
  rec->submitted = Clock::now();
  if (rec->request.deadlineSeconds > 0) {
    rec->hasDeadline = true;
    rec->deadline = rec->submitted + std::chrono::duration_cast<Clock::duration>(
                                         std::chrono::duration<double>(
                                             rec->request.deadlineSeconds));
  }
  if (!rec->request.bypassCache) {
    rec->cacheKey = ResultCache::keyFor(rec->request.options, rec->request.specs,
                                        rec->request.corner, techPrint_);
  }
  const std::uint64_t id = rec->id;
  const int priority = rec->request.priority;
  jobs_.emplace(id, std::move(rec));
  ready_.insert({-priority, id});
  ++queued_;
  metrics_.onSubmit();
  workCv_.notify_one();
  return id;
}

void JobScheduler::workerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    workCv_.wait(lock, [this] { return stopping_ || !ready_.empty(); });
    if (stopping_) return;

    const auto it = ready_.begin();
    const std::uint64_t id = it->second;
    ready_.erase(it);
    if (queued_ > 0) --queued_;
    const RecordPtr rec = jobs_.at(id);
    rec->trace.queueSeconds = secondsSince(rec->submitted);

    if (rec->cancelRequested) {
      finishLocked(rec, JobState::kCancelled, "cancelled before start");
      continue;
    }
    if (deadlinePassed(*rec)) {
      finishLocked(rec, JobState::kExpired, "deadline expired before start");
      continue;
    }

    if (!rec->cacheKey.empty()) {
      // Single-flight: if an identical job is already running, park this
      // one until the leader publishes its result.
      const auto leader = inflight_.find(rec->cacheKey);
      if (leader != inflight_.end()) {
        waiters_[rec->cacheKey].push_back(id);
        ++queued_;
        rec->coalesced = true;
        metrics_.onCoalesced();
        continue;
      }
      inflight_[rec->cacheKey] = id;
    }

    rec->state = JobState::kRunning;
    ++running_;
    metrics_.onRunning(running_);
    runJob(rec, lock);  // Unlocks for the engine run, relocks before returning.
  }
}

void JobScheduler::runJob(const RecordPtr& rec, std::unique_lock<std::mutex>& lock) {
  const JobRequest request = rec->request;  // Stable copy for unlocked use.
  const std::string key = rec->cacheKey;
  lock.unlock();

  const auto runStart = Clock::now();
  enum class Outcome { kOk, kFailed, kAborted } outcome = Outcome::kFailed;
  core::EngineResult result;
  std::string error;
  bool fromCache = false;
  std::vector<StageTiming> stages;

  if (!key.empty()) {
    if (std::optional<core::EngineResult> hit = cache_.lookup(key)) {
      result = std::move(*hit);
      fromCache = true;
      outcome = Outcome::kOk;
    }
  }

  if (!fromCache) {
    core::EngineOptions engineOptions = request.options;
    engineOptions.hooks.cancelRequested = [this, rec] {
      {
        const std::lock_guard<std::mutex> guard(mutex_);
        if (rec->cancelRequested) return true;
      }
      return deadlinePassed(*rec);
    };
    engineOptions.hooks.onStage = [&stages, upstream = request.options.hooks.onStage](
                                      core::EngineStage stage, double seconds) {
      stages.push_back({core::engineStageName(stage), seconds});
      if (upstream) upstream(stage, seconds);
    };

    for (int attempt = 1;; ++attempt) {
      {
        const std::lock_guard<std::mutex> guard(mutex_);
        rec->attempts = attempt;
      }
      try {
        if (options_.preRunHook) options_.preRunHook(request, attempt);
        // SweepDriver's isolation pattern: a private Technology at the
        // job's corner and a private MosModel inside the engine.
        const tech::Technology jobTech = baseTech_.atCorner(request.corner);
        const core::SynthesisEngine engine(jobTech, engineOptions);
        result = engine.run(request.specs);
        outcome = Outcome::kOk;
      } catch (const core::JobCancelled&) {
        outcome = Outcome::kAborted;
      } catch (const TransientError& e) {
        if (attempt <= request.maxRetries) {
          {
            const std::lock_guard<std::mutex> guard(mutex_);
            ++rec->retries;
          }
          metrics_.onRetry();
          continue;
        }
        error = std::string("transient failure, retries exhausted: ") + e.what();
        outcome = Outcome::kFailed;
      } catch (const std::exception& e) {
        error = e.what();
        outcome = Outcome::kFailed;
      }
      break;
    }

    if (outcome == Outcome::kOk && !key.empty()) {
      cache_.insert(key, result);  // Disk write-through stays off the lock.
    }
  }

  lock.lock();
  rec->trace.runSeconds = secondsSince(runStart);
  rec->trace.stages = std::move(stages);
  rec->cacheHit = fromCache;
  if (outcome == Outcome::kOk) {
    rec->result = result;
    finishLocked(rec, JobState::kDone, "");
    if (!key.empty()) {
      inflight_.erase(key);
      completeWaitersLocked(key, result);
    }
  } else {
    if (outcome == Outcome::kAborted) {
      // The engine aborted via the cancellation hook: distinguish an
      // explicit cancel from a deadline expiry.
      const JobState state = rec->cancelRequested ? JobState::kCancelled
                                                  : JobState::kExpired;
      finishLocked(rec, state,
                   state == JobState::kExpired ? "deadline expired mid-run" : "");
    } else {
      finishLocked(rec, JobState::kFailed, error);
    }
    if (!key.empty()) {
      inflight_.erase(key);
      requeueWaitersLocked(key);
    }
  }
}

void JobScheduler::finishLocked(const RecordPtr& rec, JobState state,
                                const std::string& error) {
  if (isTerminal(rec->state)) return;
  if (rec->state == JobState::kRunning && running_ > 0) --running_;
  rec->state = state;
  if (!error.empty()) rec->error = error;
  metrics_.onFinish(jobStateName(state), rec->trace);
  if (traceLog_.is_open()) {
    const std::lock_guard<std::mutex> guard(traceMutex_);
    traceLog_ << traceToJson(rec->id, rec->request.label, jobStateName(state),
                             rec->cacheHit, rec->attempts, rec->retries,
                             rec->trace)
                     .dump()
              << "\n";
    traceLog_.flush();
  }
  doneCv_.notify_all();
}

void JobScheduler::completeWaitersLocked(const std::string& key,
                                         const core::EngineResult& result) {
  const auto it = waiters_.find(key);
  if (it == waiters_.end()) return;
  for (const std::uint64_t id : it->second) {
    const auto found = jobs_.find(id);
    if (found == jobs_.end()) continue;
    const RecordPtr& rec = found->second;
    if (isTerminal(rec->state)) continue;  // Cancelled while parked.
    if (queued_ > 0) --queued_;
    rec->cacheHit = true;
    rec->result = result;
    rec->trace.runSeconds = 0.0;
    finishLocked(rec, JobState::kDone, "");
  }
  waiters_.erase(it);
}

void JobScheduler::requeueWaitersLocked(const std::string& key) {
  const auto it = waiters_.find(key);
  if (it == waiters_.end()) return;
  // The leader produced no result: every parked duplicate goes back to the
  // ready queue and runs (or coalesces again) on its own.
  for (const std::uint64_t id : it->second) {
    const auto found = jobs_.find(id);
    if (found == jobs_.end() || isTerminal(found->second->state)) continue;
    ready_.insert({-found->second->request.priority, id});
  }
  waiters_.erase(it);
  workCv_.notify_all();
}

JobStatus JobScheduler::snapshotLocked(const JobRecord& rec) const {
  JobStatus status;
  status.id = rec.id;
  status.label = rec.request.label;
  status.state = rec.state;
  status.cacheHit = rec.cacheHit;
  status.coalesced = rec.coalesced;
  status.attempts = rec.attempts;
  status.retries = rec.retries;
  status.error = rec.error;
  status.result = rec.result;
  status.trace = rec.trace;
  return status;
}

JobStatus JobScheduler::wait(std::uint64_t id) const {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    throw std::invalid_argument("unknown job id " + std::to_string(id));
  }
  const RecordPtr rec = it->second;
  doneCv_.wait(lock, [&rec] { return isTerminal(rec->state); });
  return snapshotLocked(*rec);
}

std::optional<JobStatus> JobScheduler::status(std::uint64_t id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  return snapshotLocked(*it->second);
}

bool JobScheduler::cancel(std::uint64_t id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  const RecordPtr& rec = it->second;
  if (isTerminal(rec->state)) return false;
  rec->cancelRequested = true;
  if (rec->state == JobState::kQueued) {
    ready_.erase({-rec->request.priority, id});
    if (!rec->cacheKey.empty()) {
      const auto w = waiters_.find(rec->cacheKey);
      if (w != waiters_.end()) {
        w->second.erase(std::remove(w->second.begin(), w->second.end(), id),
                        w->second.end());
      }
    }
    if (queued_ > 0) --queued_;
    finishLocked(rec, JobState::kCancelled, "cancelled before start");
  }
  return true;
}

std::vector<JobStatus> JobScheduler::runBatch(
    const std::vector<JobRequest>& requests) {
  std::vector<std::uint64_t> ids;
  ids.reserve(requests.size());
  for (const JobRequest& request : requests) ids.push_back(submit(request));
  std::vector<JobStatus> statuses;
  statuses.reserve(ids.size());
  for (const std::uint64_t id : ids) statuses.push_back(wait(id));
  return statuses;
}

std::size_t JobScheduler::queueDepth() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queued_;
}

std::size_t JobScheduler::runningCount() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return running_;
}

}  // namespace lo::service
