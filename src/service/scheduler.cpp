#include "service/scheduler.hpp"

#include <algorithm>
#include <cmath>

#include "service/serialize.hpp"

namespace lo::service {

namespace {

double secondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

constexpr const char* breakerStateName(int state) {
  switch (state) {
    case 0: return "closed";
    case 1: return "open";
    case 2: return "half_open";
  }
  return "?";
}

}  // namespace

JobScheduler::JobScheduler(tech::Technology baseTech, SchedulerOptions options)
    : baseTech_(std::move(baseTech)),
      techPrint_(ResultCache::techFingerprint(baseTech_)),
      options_(std::move(options)),
      cache_(options_.cache) {
  if (!options_.traceLogPath.empty()) {
    traceLog_.open(options_.traceLogPath, std::ios::app);
  }
  if (!options_.journal.dir.empty()) {
    journal_ = std::make_unique<JobJournal>(options_.journal);
    replayJournal();  // Before the workers exist: no locking subtleties.
  }
  int threads = options_.threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

JobScheduler::~JobScheduler() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    // Queued and parked jobs will never run; running jobs are asked to
    // abort at their next cancellation poll.  In memory they finish as
    // cancelled so blocked wait() callers unblock -- but with a journal
    // attached these jobs were acknowledged and are still owed an answer,
    // so their terminal records are withheld from the log and the compact
    // below keeps them live for the next boot to recover (the --journal
    // restart contract).  A user-cancelled running job is not preserved:
    // the client asked for it to die.
    for (auto& [id, rec] : jobs_) {
      if (rec->state == JobState::kQueued) {
        ready_.erase({-rec->request.priority, id});
        rec->preserveInJournal = journal_ != nullptr;
        finishLocked(rec, JobState::kCancelled, "scheduler shut down");
      } else if (rec->state == JobState::kRunning) {
        if (!rec->cancelRequested) {
          rec->preserveInJournal = journal_ != nullptr;
        }
        rec->cancelRequested = true;
      }
    }
    waiters_.clear();
  }
  workCv_.notify_all();
  for (std::thread& t : workers_) t.join();
  if (journal_) {
    // Compact down to the jobs this shutdown interrupted (a running job
    // that still completed was journalled normally and is excluded); a
    // fully-drained scheduler compacts to an empty log.
    std::vector<JournalRecord> live;
    for (const auto& [id, rec] : jobs_) {
      if (!rec->preserveInJournal || rec->state != JobState::kCancelled) {
        continue;
      }
      JournalRecord record;
      record.type = JournalRecordType::kSubmitted;
      record.id = rec->id;
      record.cacheKey = rec->cacheKey;
      record.job = toJson(rec->request);
      live.push_back(std::move(record));
    }
    try {
      journal_->compact(live);
    } catch (const std::exception&) {
      // A failed compaction leaves the old log; replay handles it.
    }
  }
}

void JobScheduler::replayJournal() {
  const JournalReplay replay = journal_->replay();
  replayedRecords_ = replay.records.size();
  tornTailRecovered_ = replay.tornTail;
  for (const JournalRecord& pending : replay.pending) {
    JobRequest request;
    try {
      request = jobRequestFromJson(pending.job);
    } catch (const std::exception&) {
      continue;  // A record from a newer/older schema: drop, don't crash.
    }
    auto rec = std::make_shared<JobRecord>();
    rec->id = pending.id;
    rec->request = std::move(request);
    rec->request.maxRetries =
        std::clamp(rec->request.maxRetries, 0, options_.maxRetryLimit);
    rec->submitted = Clock::now();
    // Deadlines restart from recovery: the dead process's clock is gone,
    // and punishing a job for downtime it didn't cause helps nobody.
    if (rec->request.deadlineSeconds > 0) {
      rec->hasDeadline = true;
      rec->deadline =
          rec->submitted + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(
                                   rec->request.deadlineSeconds));
    }
    if (!rec->request.bypassCache) {
      // Recompute rather than trust the record: the technology may have
      // changed between restarts, and the key must match what lookup uses.
      rec->cacheKey = ResultCache::keyFor(rec->request.options,
                                          rec->request.specs,
                                          rec->request.corner, techPrint_);
    }
    rec->recovered = true;
    const std::uint64_t id = rec->id;
    const int priority = rec->request.priority;
    jobs_.emplace(id, std::move(rec));
    ready_.insert({-priority, id});
    ++queued_;
    ++recoveredJobs_;
    metrics_.onSubmit();
  }
  recoveredRemaining_ = recoveredJobs_;
  if (replay.maxId >= nextId_) nextId_ = replay.maxId + 1;
  if (recoveredRemaining_ == 0 && replayedRecords_ > 0) {
    // Nothing pending: drop the finished history now instead of waiting
    // for a drain that will never come.
    compactJournalLocked();
  }
}

std::uint64_t JobScheduler::submit(JobRequest request) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (stopping_) throw std::runtime_error("scheduler is shutting down");

  auto rec = std::make_shared<JobRecord>();
  rec->id = nextId_++;
  rec->request = std::move(request);
  rec->request.maxRetries =
      std::clamp(rec->request.maxRetries, 0, options_.maxRetryLimit);
  rec->submitted = Clock::now();
  if (rec->request.deadlineSeconds > 0) {
    rec->hasDeadline = true;
    rec->deadline = rec->submitted + std::chrono::duration_cast<Clock::duration>(
                                         std::chrono::duration<double>(
                                             rec->request.deadlineSeconds));
  }
  if (!rec->request.bypassCache) {
    rec->cacheKey = ResultCache::keyFor(rec->request.options, rec->request.specs,
                                        rec->request.corner, techPrint_);
  }
  // Admission decides first (and may pick a shed victim), but the victim
  // is only displaced after the incoming job's submitted record is
  // durably journalled: a failed append rejects the submission without
  // having destroyed queued work for an admission that never happened.
  const RecordPtr victim = admitLocked(rec->request, *rec);
  try {
    appendJournalLocked(JournalRecordType::kSubmitted, *rec);
  } catch (...) {
    releaseProbeLocked(*rec);
    throw;
  }
  if (victim != nullptr) shedVictimLocked(victim, rec->request.priority);
  const std::uint64_t id = rec->id;
  const int priority = rec->request.priority;
  jobs_.emplace(id, std::move(rec));
  ready_.insert({-priority, id});
  ++queued_;
  metrics_.onSubmit();
  workCv_.notify_one();
  return id;
}

std::size_t JobScheduler::shedDepthLocked() const {
  const double frac = std::clamp(options_.shedWatermark, 0.0, 1.0);
  const auto depth = static_cast<std::size_t>(
      std::ceil(frac * static_cast<double>(options_.maxQueueDepth)));
  return std::clamp<std::size_t>(depth, 1, options_.maxQueueDepth);
}

int JobScheduler::retryAfterMsLocked() const {
  // ETA for the queue to drain one slot: average run time times depth over
  // the pool width.  No history yet -> assume a quarter second per job.
  const MetricsSnapshot m = metrics_.snapshot();
  const std::uint64_t ran = m.completed + m.failed + m.expired;
  double avgRun = ran > 0 ? m.totalRunSeconds / static_cast<double>(ran) : 0.25;
  if (!(avgRun > 0)) avgRun = 0.25;
  const double pool = std::max<std::size_t>(workers_.empty() ? 1 : workers_.size(), 1);
  const double etaMs = avgRun * static_cast<double>(queued_ + 1) / pool * 1000.0;
  return static_cast<int>(std::clamp(etaMs, 100.0, 30000.0));
}

JobScheduler::RecordPtr JobScheduler::findShedVictimLocked(int priority) const {
  if (ready_.empty()) return nullptr;  // Everything queued is parked on a leader.
  // ready_ orders by (-priority, id): rbegin() is the lowest priority, and
  // within that class the newest arrival -- the job that loses least.
  const auto victim = std::prev(ready_.end());
  const RecordPtr rec = jobs_.at(victim->second);
  if (rec->request.priority >= priority) return nullptr;  // Only shed downward.
  return rec;
}

void JobScheduler::shedVictimLocked(const RecordPtr& victim, int priority) {
  ready_.erase({-victim->request.priority, victim->id});
  if (queued_ > 0) --queued_;
  finishLocked(victim, JobState::kShed,
               "shed: displaced by priority " + std::to_string(priority) +
                   " work under overload");
}

void JobScheduler::releaseProbeLocked(JobRecord& rec) {
  if (!rec.breakerProbe) return;
  breakers_[rec.request.options.topology].probeInFlight = false;
  rec.breakerProbe = false;
}

JobScheduler::RecordPtr JobScheduler::admitLocked(const JobRequest& request,
                                                  JobRecord& rec) {
  // Circuit breaker first: an open breaker refuses even when the queue is
  // empty, because the work is known-doomed.
  if (options_.breakerFailureThreshold > 0) {
    Breaker& b = breakers_[request.options.topology];
    switch (b.state) {
      case Breaker::State::kClosed:
        break;
      case Breaker::State::kOpen: {
        const auto resetAt =
            b.openedAt + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(
                                 options_.breakerResetSeconds));
        if (Clock::now() >= resetAt) {
          b.state = Breaker::State::kHalfOpen;
          b.probeInFlight = true;
          rec.breakerProbe = true;
          break;
        }
        ++b.rejections;
        metrics_.onBreakerRejected();
        const double remainMs =
            std::chrono::duration<double, std::milli>(resetAt - Clock::now())
                .count();
        throw CircuitOpenError(
            request.options.topology,
            static_cast<int>(std::clamp(remainMs, 100.0, 3600000.0)));
      }
      case Breaker::State::kHalfOpen:
        if (!b.probeInFlight) {
          b.probeInFlight = true;
          rec.breakerProbe = true;
          break;
        }
        ++b.rejections;
        metrics_.onBreakerRejected();
        throw CircuitOpenError(request.options.topology, retryAfterMsLocked());
    }
  }

  if (queued_ < shedDepthLocked()) return nullptr;
  // Past the watermark: admit only by displacing strictly-lower-priority
  // queued work; otherwise push back with a retry hint.
  const RecordPtr victim = findShedVictimLocked(request.priority);
  if (victim == nullptr) {
    // The probe slot must not leak when admission fails downstream.
    releaseProbeLocked(rec);
    metrics_.onOverloadRejected();
    throw OverloadedError(queued_, retryAfterMsLocked());
  }
  return victim;
}

void JobScheduler::appendJournalLocked(JournalRecordType type,
                                       const JobRecord& rec) {
  if (!journal_) return;
  JournalRecord record;
  record.type = type;
  record.id = rec.id;
  record.cacheKey = rec.cacheKey;
  record.attempt = rec.attempts;
  if (type == JournalRecordType::kSubmitted) {
    record.job = toJson(rec.request);
  } else if (type == JournalRecordType::kFinished) {
    record.state = jobStateName(rec.state);
  }
  // Only the submission needs an fsync before it returns -- that is the
  // ack clients rely on, and it is the one append on the submit path.
  // Lifecycle records from the workers are flushed but not fsynced, so
  // finishing a job never serializes the whole scheduler (this runs under
  // mutex_) on disk-flush latency; losing a tail of them at power loss
  // merely re-enqueues finished work that the content-addressed cache
  // then serves without an engine re-run.
  if (type == JournalRecordType::kSubmitted) {
    journal_->append(record, /*durable=*/true);
    return;
  }
  try {
    journal_->append(record, /*durable=*/false);
  } catch (const std::exception&) {
    // Advisory record on a worker/finish path: a transient append failure
    // must not kill the thread.  The journal already truncated back to a
    // clean boundary; at worst the next boot re-enqueues a finished job
    // and serves it from the cache.
  }
}

void JobScheduler::compactJournalLocked() {
  if (!journal_) return;
  std::vector<JournalRecord> live;
  for (const auto& [id, rec] : jobs_) {
    if (isTerminal(rec->state)) continue;
    JournalRecord record;
    record.type = JournalRecordType::kSubmitted;
    record.id = rec->id;
    record.cacheKey = rec->cacheKey;
    record.job = toJson(rec->request);
    live.push_back(std::move(record));
  }
  journal_->compact(live);
}

void JobScheduler::workerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    workCv_.wait(lock, [this] { return stopping_ || !ready_.empty(); });
    if (stopping_) return;

    const auto it = ready_.begin();
    const std::uint64_t id = it->second;
    ready_.erase(it);
    if (queued_ > 0) --queued_;
    const RecordPtr rec = jobs_.at(id);
    rec->trace.queueSeconds = secondsSince(rec->submitted);

    if (rec->cancelRequested) {
      finishLocked(rec, JobState::kCancelled, "cancelled before start");
      continue;
    }
    if (deadlinePassed(*rec)) {
      finishLocked(rec, JobState::kExpired, "deadline expired before start");
      continue;
    }

    if (!rec->cacheKey.empty()) {
      // Single-flight: if an identical job is already running, park this
      // one until the leader publishes its result.
      const auto leader = inflight_.find(rec->cacheKey);
      if (leader != inflight_.end()) {
        waiters_[rec->cacheKey].push_back(id);
        ++queued_;
        rec->coalesced = true;
        metrics_.onCoalesced();
        continue;
      }
      inflight_[rec->cacheKey] = id;
    }

    rec->state = JobState::kRunning;
    ++running_;
    metrics_.onRunning(running_);
    runJob(rec, lock);  // Unlocks for the engine run, relocks before returning.
  }
}

void JobScheduler::runJob(const RecordPtr& rec, std::unique_lock<std::mutex>& lock) {
  const JobRequest request = rec->request;  // Stable copy for unlocked use.
  const std::string key = rec->cacheKey;
  lock.unlock();

  const auto runStart = Clock::now();
  enum class Outcome { kOk, kFailed, kAborted } outcome = Outcome::kFailed;
  core::EngineResult result;
  std::string error;
  bool fromCache = false;
  std::vector<StageTiming> stages;

  if (!key.empty()) {
    if (std::optional<core::EngineResult> hit = cache_.lookup(key)) {
      result = std::move(*hit);
      fromCache = true;
      outcome = Outcome::kOk;
    }
  }

  if (!fromCache) {
    core::EngineOptions engineOptions = request.options;
    engineOptions.hooks.cancelRequested = [this, rec] {
      {
        const std::lock_guard<std::mutex> guard(mutex_);
        if (rec->cancelRequested) return true;
      }
      return deadlinePassed(*rec);
    };
    engineOptions.hooks.onStage = [&stages, upstream = request.options.hooks.onStage](
                                      core::EngineStage stage, double seconds) {
      stages.push_back({core::engineStageName(stage), seconds});
      if (upstream) upstream(stage, seconds);
    };

    for (int attempt = 1;; ++attempt) {
      {
        const std::lock_guard<std::mutex> guard(mutex_);
        rec->attempts = attempt;
        appendJournalLocked(attempt == 1 ? JournalRecordType::kStarted
                                         : JournalRecordType::kRetried,
                            *rec);
      }
      try {
        if (options_.preRunHook) options_.preRunHook(request, attempt);
        // SweepDriver's isolation pattern: a private Technology at the
        // job's corner and a private MosModel inside the engine.
        const tech::Technology jobTech = baseTech_.atCorner(request.corner);
        const core::SynthesisEngine engine(jobTech, engineOptions);
        result = engine.run(request.specs);
        outcome = Outcome::kOk;
      } catch (const core::JobCancelled&) {
        outcome = Outcome::kAborted;
      } catch (const TransientError& e) {
        if (attempt <= request.maxRetries) {
          {
            const std::lock_guard<std::mutex> guard(mutex_);
            ++rec->retries;
          }
          metrics_.onRetry();
          continue;
        }
        error = std::string("transient failure, retries exhausted: ") + e.what();
        outcome = Outcome::kFailed;
        {
          const std::lock_guard<std::mutex> guard(mutex_);
          rec->transientFailure = true;  // Doesn't count against the breaker.
        }
      } catch (const std::exception& e) {
        error = e.what();
        outcome = Outcome::kFailed;
      }
      break;
    }

    if (outcome == Outcome::kOk && !key.empty()) {
      cache_.insert(key, result);  // Disk write-through stays off the lock.
    }
  }

  lock.lock();
  rec->trace.runSeconds = secondsSince(runStart);
  rec->trace.stages = std::move(stages);
  rec->cacheHit = fromCache;
  if (outcome == Outcome::kOk) {
    rec->result = result;
    finishLocked(rec, JobState::kDone, "");
    if (!key.empty()) {
      inflight_.erase(key);
      completeWaitersLocked(key, result);
    }
  } else {
    if (outcome == Outcome::kAborted) {
      // The engine aborted via the cancellation hook: distinguish an
      // explicit cancel from a deadline expiry.
      const JobState state = rec->cancelRequested ? JobState::kCancelled
                                                  : JobState::kExpired;
      finishLocked(rec, state,
                   state == JobState::kExpired ? "deadline expired mid-run" : "");
    } else {
      finishLocked(rec, JobState::kFailed, error);
    }
    if (!key.empty()) {
      inflight_.erase(key);
      requeueWaitersLocked(key);
    }
  }
}

void JobScheduler::finishLocked(const RecordPtr& rec, JobState state,
                                const std::string& error) {
  if (isTerminal(rec->state)) return;
  if (rec->state == JobState::kRunning && running_ > 0) --running_;
  rec->state = state;
  if (!error.empty()) rec->error = error;
  metrics_.onFinish(jobStateName(state), rec->trace);
  breakerOnFinishLocked(rec, state);
  if (!(rec->preserveInJournal && state == JobState::kCancelled)) {
    // A shutdown-interrupted job keeps its submitted record live in the
    // log instead of being marked terminal: the next boot re-enqueues it.
    appendJournalLocked(state == JobState::kCancelled
                            ? JournalRecordType::kCancelled
                            : JournalRecordType::kFinished,
                        *rec);
  }
  if (rec->recovered && recoveredRemaining_ > 0 && --recoveredRemaining_ == 0) {
    // The replayed backlog has drained: fold the journal down to whatever
    // is still live so it never grows across restarts.
    compactJournalLocked();
  }
  if (traceLog_.is_open()) {
    const std::lock_guard<std::mutex> guard(traceMutex_);
    traceLog_ << traceToJson(rec->id, rec->request.label, jobStateName(state),
                             rec->cacheHit, rec->attempts, rec->retries,
                             rec->trace)
                     .dump()
              << "\n";
    traceLog_.flush();
  }
  doneCv_.notify_all();
}

void JobScheduler::completeWaitersLocked(const std::string& key,
                                         const core::EngineResult& result) {
  const auto it = waiters_.find(key);
  if (it == waiters_.end()) return;
  for (const std::uint64_t id : it->second) {
    const auto found = jobs_.find(id);
    if (found == jobs_.end()) continue;
    const RecordPtr& rec = found->second;
    if (isTerminal(rec->state)) continue;  // Cancelled while parked.
    if (queued_ > 0) --queued_;
    rec->cacheHit = true;
    rec->result = result;
    rec->trace.runSeconds = 0.0;
    finishLocked(rec, JobState::kDone, "");
  }
  waiters_.erase(it);
}

void JobScheduler::requeueWaitersLocked(const std::string& key) {
  const auto it = waiters_.find(key);
  if (it == waiters_.end()) return;
  // The leader produced no result: every parked duplicate goes back to the
  // ready queue and runs (or coalesces again) on its own.
  for (const std::uint64_t id : it->second) {
    const auto found = jobs_.find(id);
    if (found == jobs_.end() || isTerminal(found->second->state)) continue;
    ready_.insert({-found->second->request.priority, id});
  }
  waiters_.erase(it);
  workCv_.notify_all();
}

void JobScheduler::breakerOnFinishLocked(const RecordPtr& rec, JobState state) {
  if (options_.breakerFailureThreshold <= 0) return;
  const auto it = breakers_.find(rec->request.options.topology);
  Breaker* b = it == breakers_.end() ? nullptr : &it->second;
  if (rec->breakerProbe) {
    if (b != nullptr) b->probeInFlight = false;
    rec->breakerProbe = false;
  }
  if (b == nullptr) {
    if (state != JobState::kFailed) return;
    b = &breakers_[rec->request.options.topology];
  }
  if (state == JobState::kDone) {
    b->consecutiveFailures = 0;
    b->state = Breaker::State::kClosed;
  } else if (state == JobState::kFailed && !rec->transientFailure) {
    ++b->consecutiveFailures;
    if (b->state == Breaker::State::kHalfOpen ||
        b->consecutiveFailures >= options_.breakerFailureThreshold) {
      if (b->state != Breaker::State::kOpen) {
        ++b->opens;
        metrics_.onBreakerOpened();
      }
      b->state = Breaker::State::kOpen;
      b->openedAt = Clock::now();
    }
  }
  // Cancelled / expired / shed jobs are no evidence about the topology.
}

std::string JobScheduler::cacheKeyFor(const JobRequest& request) const {
  if (request.bypassCache) return {};
  return ResultCache::keyFor(request.options, request.specs, request.corner,
                             techPrint_);
}

JobStatus JobScheduler::snapshotLocked(const JobRecord& rec) const {
  JobStatus status;
  status.id = rec.id;
  status.label = rec.request.label;
  status.state = rec.state;
  status.cacheKey = rec.cacheKey;
  status.cacheHit = rec.cacheHit;
  status.coalesced = rec.coalesced;
  status.attempts = rec.attempts;
  status.retries = rec.retries;
  status.error = rec.error;
  status.recovered = rec.recovered;
  status.result = rec.result;
  status.trace = rec.trace;
  return status;
}

JobStatus JobScheduler::wait(std::uint64_t id) const {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    throw std::invalid_argument("unknown job id " + std::to_string(id));
  }
  const RecordPtr rec = it->second;
  doneCv_.wait(lock, [&rec] { return isTerminal(rec->state); });
  return snapshotLocked(*rec);
}

std::optional<JobStatus> JobScheduler::status(std::uint64_t id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  return snapshotLocked(*it->second);
}

bool JobScheduler::cancel(std::uint64_t id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  const RecordPtr& rec = it->second;
  if (isTerminal(rec->state)) return false;
  rec->cancelRequested = true;
  if (rec->state == JobState::kQueued) {
    ready_.erase({-rec->request.priority, id});
    if (!rec->cacheKey.empty()) {
      const auto w = waiters_.find(rec->cacheKey);
      if (w != waiters_.end()) {
        w->second.erase(std::remove(w->second.begin(), w->second.end(), id),
                        w->second.end());
      }
    }
    if (queued_ > 0) --queued_;
    finishLocked(rec, JobState::kCancelled, "cancelled before start");
  }
  return true;
}

std::vector<JobStatus> JobScheduler::runBatch(
    const std::vector<JobRequest>& requests) {
  std::vector<std::uint64_t> ids;
  ids.reserve(requests.size());
  for (const JobRequest& request : requests) ids.push_back(submit(request));
  std::vector<JobStatus> statuses;
  statuses.reserve(ids.size());
  for (const std::uint64_t id : ids) statuses.push_back(wait(id));
  return statuses;
}

std::size_t JobScheduler::queueDepth() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queued_;
}

std::size_t JobScheduler::runningCount() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return running_;
}

HealthSnapshot JobScheduler::health() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  HealthSnapshot h;
  h.queueDepth = queued_;
  h.queueLimit = options_.maxQueueDepth;
  h.shedDepth = shedDepthLocked();
  h.running = running_;
  h.workers = static_cast<int>(workers_.size());
  h.overloaded = queued_ >= h.shedDepth;
  for (const auto& [topology, b] : breakers_) {
    BreakerSnapshot s;
    s.topology = topology;
    s.state = breakerStateName(static_cast<int>(b.state));
    s.consecutiveFailures = b.consecutiveFailures;
    s.opens = b.opens;
    s.rejections = b.rejections;
    h.breakers.push_back(std::move(s));
  }
  if (journal_) {
    h.journal.enabled = true;
    h.journal.recordsInLog = journal_->recordsInLog();
    std::uint64_t live = 0;
    for (const auto& [id, rec] : jobs_) {
      if (!isTerminal(rec->state)) ++live;
    }
    h.journal.liveJobs = live;
    h.journal.lag =
        h.journal.recordsInLog > live ? h.journal.recordsInLog - live : 0;
    h.journal.replayedRecords = replayedRecords_;
    h.journal.recoveredJobs = recoveredJobs_;
    h.journal.recoveredRemaining = recoveredRemaining_;
    h.journal.compactions = journal_->compactions();
    h.journal.tornTailRecovered = tornTailRecovered_;
  }
  return h;
}

}  // namespace lo::service
