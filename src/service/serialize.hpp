// JSON (de)serialisation of the engine's value types, shared by the
// result-cache disk store, the losynthd protocol and the service bench.
//
// Round trips are exact: every double survives toJson -> dump -> parse ->
// fromJson bit-identically (see Json::formatNumber), so a result served
// from the disk store is indistinguishable from the cold run that
// produced it.
#pragma once

#include <string>
#include <vector>

#include "core/engine.hpp"
#include "service/json.hpp"
#include "service/scheduler.hpp"

namespace lo::service {

[[nodiscard]] Json toJson(const sizing::OtaPerformance& perf);
[[nodiscard]] sizing::OtaPerformance performanceFromJson(const Json& j);

[[nodiscard]] Json toJson(const core::EngineResult& result);
[[nodiscard]] core::EngineResult resultFromJson(const Json& j);

/// Post-layout verification report round trip.  toJson(EngineResult) only
/// emits the "verification" member when the report actually ran, so
/// results from configurations that never enabled the tier stay
/// byte-identical to what they serialised before the tier existed.
[[nodiscard]] Json toJson(const verify::VerificationReport& report);
[[nodiscard]] verify::VerificationReport verificationFromJson(const Json& j);

/// Full-fidelity JobRequest round trip for the write-ahead job journal:
/// every field that influences the job's result or its scheduling (label,
/// topology, case, model, engine knobs, verify options, specs, corner,
/// priority, deadline, retries, cache bypass) survives exactly, so a
/// replayed job computes the same cache key as the original submission.
[[nodiscard]] Json toJson(const JobRequest& request);
[[nodiscard]] JobRequest jobRequestFromJson(const Json& j);

[[nodiscard]] Json toJson(const sizing::OtaSpecs& specs);
/// Apply the members present in `j` onto `specs` (absent fields keep their
/// defaults); throws std::invalid_argument on an unknown field name, so
/// client typos fail loudly instead of silently synthesising the default.
void specsFromJson(const Json& j, sizing::OtaSpecs& specs);

/// The OtaSpecs field names the protocol understands ("spec" object keys),
/// in their canonical serialisation order.
[[nodiscard]] const std::vector<std::string>& specFieldNames();

/// Get / set one spec field by its protocol name; throws
/// std::invalid_argument on an unknown name.  The explorer sweeps spec
/// axes by name through these instead of hard-coding members.
void setSpecField(sizing::OtaSpecs& specs, const std::string& name, double value);
[[nodiscard]] double specField(const sizing::OtaSpecs& specs, const std::string& name);

/// "case1".."case4" (or bare 1..4) -> SizingCase; throws on anything else.
[[nodiscard]] core::SizingCase sizingCaseFromJson(const Json& j);

/// "tt"/"ss"/"ff"/"sf"/"fs" -> corner; throws std::invalid_argument.
[[nodiscard]] tech::ProcessCorner cornerFromName(const std::string& name);

}  // namespace lo::service
