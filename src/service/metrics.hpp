// Observability for the job service: aggregate counters, per-stage time
// totals and per-job traces, exported as a JSON snapshot (the `stats`
// protocol op) and an optional append-only trace log (one JSON line per
// finished job).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "service/cache.hpp"
#include "service/json.hpp"

namespace lo::service {

/// One timed engine stage inside a job (EngineHooks::onStage events, in
/// call order; stages repeat across loop iterations).
struct StageTiming {
  std::string stage;
  double seconds = 0.0;
};

/// Per-job timing record, kept on the job and summarised into the metrics.
struct JobTrace {
  double queueSeconds = 0.0;  ///< Submission -> first pop.
  double runSeconds = 0.0;    ///< Pop -> terminal state (all attempts).
  std::vector<StageTiming> stages;
};

/// Aggregate counters snapshot.
struct MetricsSnapshot {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;  ///< Reached kDone (cache hits included).
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t expired = 0;
  std::uint64_t shed = 0;       ///< Displaced by admission control under overload.
  std::uint64_t retries = 0;    ///< Transient-failure re-runs.
  std::uint64_t coalesced = 0;  ///< Duplicates served by an in-flight leader.
  /// Submissions rejected at the door: queue overload (OverloadedError /
  /// QueueFullError) and open circuit breakers.  These never became jobs.
  std::uint64_t overloadRejections = 0;
  std::uint64_t breakerRejections = 0;
  std::uint64_t breakerOpens = 0;  ///< Closed/half-open -> open transitions.
  /// High-water mark of simultaneously running jobs: the direct evidence
  /// that a batch (or an exploration) actually spread across the pool.
  std::uint64_t maxRunning = 0;
  double totalQueueSeconds = 0.0;
  double totalRunSeconds = 0.0;
  /// Summed wall-clock and call count per engine stage name.
  std::map<std::string, double> stageSeconds;
  std::map<std::string, std::uint64_t> stageCalls;
};

class ServiceMetrics {
 public:
  void onSubmit();
  void onRetry();
  void onCoalesced();
  void onOverloadRejected();
  void onBreakerRejected();
  void onBreakerOpened();
  /// Called with the live running count after a job starts; records the
  /// high-water mark.
  void onRunning(std::size_t running);
  /// `state` uses the scheduler's terminal-state names ("done", "failed",
  /// "cancelled", "expired").
  void onFinish(const std::string& state, const JobTrace& trace);

  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  MetricsSnapshot data_;
};

/// The `stats` response body: scheduler counters + cache counters + live
/// queue figures, all under stable snake_case keys (documented in
/// DESIGN.md "Service architecture").
[[nodiscard]] Json metricsToJson(const MetricsSnapshot& m, const CacheStats& cache,
                                 std::size_t queueDepth, std::size_t running,
                                 int workers);

/// One trace-log line for a finished job.
[[nodiscard]] Json traceToJson(std::uint64_t id, const std::string& label,
                               const std::string& state, bool cacheHit,
                               int attempts, int retries, const JobTrace& trace);

}  // namespace lo::service
